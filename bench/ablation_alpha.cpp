// Copyright 2026 The PLDP Authors.
//
// Ablation A1: sensitivity of the results to the data-quality parameter α
// of Q = α·Prec + (1−α)·Rec (paper eq. 3; the evaluation fixes α = 0.5).
// Reports MRE per mechanism across α at a fixed budget ε = 1.

#include <cstdio>

#include "bench_util.h"
#include "core/pldp.h"

namespace pldp {
namespace {

int Run(const bench::HarnessArgs& args) {
  size_t repetitions = args.effort == bench::Effort::kQuick ? 6u : 16u;

  SyntheticOptions opt;
  auto generated = GenerateSynthetic(opt, 55);
  if (!generated.ok()) return 1;

  const std::vector<double> alphas = {0.0, 0.25, 0.5, 0.75, 1.0};
  const auto mechanisms = AllMechanismNames();

  std::vector<std::string> headers = {"mechanism"};
  for (double a : alphas) headers.push_back(StrFormat("alpha=%.2f", a));
  ResultTable table(headers);

  for (const std::string& mech : mechanisms) {
    std::vector<double> row;
    for (double alpha : alphas) {
      EvaluationConfig cfg;
      cfg.mechanism = mech;
      cfg.epsilon = 1.0;
      cfg.alpha = alpha;
      cfg.repetitions = repetitions;
      cfg.mechanism_options.adaptive.trials =
          args.effort == bench::Effort::kQuick ? 8u : 24u;
      auto r = RunEvaluation(generated->dataset, cfg);
      if (!r.ok()) {
        std::fprintf(stderr, "%s@alpha=%.2f: %s\n", mech.c_str(), alpha,
                     r.status().ToString().c_str());
        return 1;
      }
      row.push_back(r->mre.mean());
    }
    (void)table.AddRow(mech, row);
  }
  return bench::EmitTable(table, args, "Ablation A1: MRE vs alpha (eps=1)");
}

}  // namespace
}  // namespace pldp

int main(int argc, char** argv) {
  return pldp::Run(pldp::bench::ParseArgs(argc, argv));
}
