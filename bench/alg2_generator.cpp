// Copyright 2026 The PLDP Authors.
//
// Experiment E3: statistics of the Algorithm-2 synthetic generator.
// Validates the workload against the paper's construction: per-type
// occurrence rates track the drawn Pr(e_i); per-pattern detection rates
// equal the product of the member probabilities (independent conjunction);
// private/target roles have the configured sizes.

#include <cstdio>

#include "bench_util.h"
#include "core/pldp.h"

namespace pldp {
namespace {

int Run(const bench::HarnessArgs& args) {
  SyntheticOptions opt;
  opt.num_windows =
      args.effort == bench::Effort::kQuick ? 500u : 5000u;
  auto generated = GenerateSynthetic(opt, 7);
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }
  const Dataset& ds = generated->dataset;

  ResultTable types({"event_type", "Pr(e)", "empirical_rate", "abs_err"});
  for (size_t t = 0; t < opt.num_event_types; ++t) {
    size_t hits = 0;
    for (const Window& w : ds.windows) {
      if (w.ContainsType(static_cast<EventTypeId>(t))) ++hits;
    }
    double rate =
        static_cast<double>(hits) / static_cast<double>(ds.windows.size());
    double p = generated->occurrence_probabilities[t];
    (void)types.AddRow(StrFormat("e%zu", t),
                       {p, rate, std::abs(rate - p)});
  }
  int rc = bench::EmitTable(types, args,
                            "Algorithm 2: occurrence probabilities");

  ResultTable patterns({"pattern(role)", "analytic_rate", "empirical_rate"});
  for (PatternId p = 0; p < ds.patterns.size(); ++p) {
    const Pattern& pat = ds.patterns.Get(p);
    double analytic = 1.0;
    for (EventTypeId t : pat.elements()) {
      analytic *= generated->occurrence_probabilities[t];
    }
    size_t hits = 0;
    for (const Window& w : ds.windows) {
      auto occurs = PatternOccursInWindow(w, pat);
      if (occurs.ok() && occurs.value()) ++hits;
    }
    double rate =
        static_cast<double>(hits) / static_cast<double>(ds.windows.size());
    std::string role = "public";
    for (PatternId id : ds.private_patterns) {
      if (id == p) role = "private";
    }
    for (PatternId id : ds.target_patterns) {
      if (id == p) role = role == "private" ? "private+target" : "target";
    }
    (void)patterns.AddRow(pat.name() + " (" + role + ")",
                          {analytic, rate}, 4);
  }
  // Rename the first column content: AddRow(label,...) already carries role.
  bench::HarnessArgs table_args;
  table_args.effort = args.effort;
  rc |= bench::EmitTable(patterns, table_args,
                         "Algorithm 2: pattern detection rates");
  return rc;
}

}  // namespace
}  // namespace pldp

int main(int argc, char** argv) {
  return pldp::Run(pldp::bench::ParseArgs(argc, argv));
}
