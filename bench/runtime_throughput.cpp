// Copyright 2026 The PLDP Authors.
//
// Scaling benchmark for the sharded parallel streaming runtime, in two
// sections sharing one result table (rows labeled "N" vs "NxN"):
//
//   1. Subject-local workload: ingest a keyed synthetic stream (many data
//      subjects, per-subject event-type alphabets, one sequence + one
//      conjunction query per subject) through ParallelStreamingEngine at
//      shard counts 1/2/4/8 — once per-event (OnEvent) and once batched
//      (OnEventBatch in fixed chunks) — reporting events/sec for both, the
//      batched-vs-per-event ratio, and speedup vs 1 shard.
//   2. Cross-subject workload: the same alphabet structure keyed by a
//      *group* attribute uncorrelated with the subject, so every match
//      spans subjects and must ride the repartition/exchange stage onto
//      NxN merge shards.
//
// Every configuration is cross-checked against the sequential
// StreamingCepEngine's detection count; the bench exits non-zero on a
// mismatch. `--json FILE` persists the table machine-readably (CI uploads
// it as the perf-trajectory artifact).
//
// Acceptance targets: > 1.5x events/sec at 4 shards vs 1 shard (ISSUE 1)
// and batched >= 2x per-event at 4 shards (ISSUE 2) — both on a multi-core
// machine; a 1-core container only measures overhead, not scaling.

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/pldp.h"

namespace pldp {
namespace {

constexpr size_t kTypesPerSubject = 3;
constexpr size_t kIngestBatch = 1024;

EventStream KeyedStream(size_t subjects, size_t num_events, uint64_t seed) {
  Rng rng(seed);
  EventStream stream;
  stream.Reserve(num_events);
  for (size_t i = 0; i < num_events; ++i) {
    const auto subject = static_cast<StreamId>(rng.UniformUint64(subjects));
    const auto type = static_cast<EventTypeId>(
        subject * kTypesPerSubject + rng.UniformUint64(kTypesPerSubject));
    stream.AppendUnchecked(
        Event(type, static_cast<Timestamp>(i / 8), subject));
  }
  return stream;
}

/// Cross-subject variant: the type is drawn from a *group* alphabet while
/// the subject is drawn independently, so group matches span subjects.
/// The correlation key is recoverable from the type (group = type /
/// kTypesPerSubject), which keeps the hot path attribute-free.
EventStream CrossKeyedStream(size_t groups, size_t subjects,
                             size_t num_events, uint64_t seed) {
  Rng rng(seed);
  EventStream stream;
  stream.Reserve(num_events);
  for (size_t i = 0; i < num_events; ++i) {
    const auto group = rng.UniformUint64(groups);
    const auto type = static_cast<EventTypeId>(
        group * kTypesPerSubject + rng.UniformUint64(kTypesPerSubject));
    const auto subject = static_cast<StreamId>(rng.UniformUint64(subjects));
    stream.AppendUnchecked(
        Event(type, static_cast<Timestamp>(i / 8), subject));
  }
  return stream;
}

uint64_t GroupOfType(const Event& e) {
  return static_cast<uint64_t>(e.type()) / kTypesPerSubject;
}

template <typename AddQueryFn>
int RegisterAlphabetQueries(AddQueryFn add, size_t groups, Timestamp window) {
  for (size_t k = 0; k < groups; ++k) {
    const auto base = static_cast<EventTypeId>(k * kTypesPerSubject);
    auto seq = Pattern::Create("seq", {base, base + 1, base + 2},
                               DetectionMode::kSequence);
    auto conj = Pattern::Create("conj", {base + 2, base},
                                DetectionMode::kConjunction);
    if (!seq.ok() || !conj.ok() ||
        !add(std::move(seq).value(), window).ok() ||
        !add(std::move(conj).value(), window).ok()) {
      return 1;
    }
  }
  return 0;
}

double Seconds(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

enum class IngestMode { kPerEvent, kBatched };

Status IngestTimed(ParallelStreamingEngine& engine, const EventStream& stream,
                   IngestMode mode) {
  const std::vector<Event>& events = stream.events();
  if (mode == IngestMode::kPerEvent) {
    for (const Event& e : events) PLDP_RETURN_IF_ERROR(engine.OnEvent(e));
    return Status::OK();
  }
  for (size_t i = 0; i < events.size(); i += kIngestBatch) {
    const size_t n =
        kIngestBatch < events.size() - i ? kIngestBatch : events.size() - i;
    PLDP_RETURN_IF_ERROR(engine.OnEventBatch(EventSpan(events.data() + i, n)));
  }
  return Status::OK();
}

/// Ingests `stream` into a fresh engine; returns events/sec, or a negative
/// value on error. With `exchange`, the queries run as cross queries on an
/// NxN exchange pipeline keyed by group. `waits`/`detections` report the
/// run's counters (waits = stage-1 queue + exchange lane backpressure).
double TimedIngest(const EventStream& stream, size_t groups,
                   Timestamp window, size_t shards, bool exchange,
                   IngestMode mode, size_t* waits, size_t* detections) {
  ParallelEngineOptions options;
  options.shard_count = shards;
  options.queue_capacity = 4096;
  if (exchange) {
    options.exchange.enabled = true;
    options.exchange.shard_count = shards;
    options.exchange.lane_capacity = 4096;
    options.exchange.key_fn = GroupOfType;
  }
  ParallelStreamingEngine engine(options);
  const auto add = [&engine, exchange](Pattern p, Timestamp w) {
    return exchange ? engine.AddCrossQuery(std::move(p), w)
                    : engine.AddQuery(std::move(p), w);
  };
  if (RegisterAlphabetQueries(add, groups, window) != 0) return -1.0;
  if (!engine.Start().ok()) return -1.0;

  const auto t0 = std::chrono::steady_clock::now();
  if (!IngestTimed(engine, stream, mode).ok()) return -1.0;
  if (!engine.Drain().ok()) return -1.0;
  const auto t1 = std::chrono::steady_clock::now();

  *waits = 0;
  for (const ShardStats& s : engine.ShardStatsSnapshot()) {
    *waits += s.backpressure_waits + s.exchange_backpressure_waits;
  }
  *detections =
      exchange ? engine.total_cross_detections() : engine.total_detections();
  if (!engine.Stop().ok()) return -1.0;
  return static_cast<double>(stream.size()) / Seconds(t0, t1);
}

/// Sequential detection-count ground truth + baseline rate.
double SequentialReference(const EventStream& stream, size_t groups,
                           Timestamp window, size_t* detections) {
  StreamingCepEngine reference;
  const auto add = [&reference](Pattern p, Timestamp w) {
    return reference.AddQuery(std::move(p), w);
  };
  if (RegisterAlphabetQueries(add, groups, window) != 0) return -1.0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const Event& e : stream) (void)reference.OnEvent(e);
  const auto t1 = std::chrono::steady_clock::now();
  *detections = reference.total_detections();
  return static_cast<double>(stream.size()) / Seconds(t0, t1);
}

/// Benches one workload (plain or exchange) into `table`; returns false on
/// a detection mismatch.
bool BenchWorkload(const EventStream& stream, size_t groups,
                   Timestamp window, bool exchange, size_t reference_count,
                   ResultTable* table) {
  double one_shard_batched = 0.0;
  bool ok = true;
  for (size_t shards : {1u, 2u, 4u, 8u}) {
    size_t pe_waits = 0, pe_detections = 0;
    const double per_event_eps =
        TimedIngest(stream, groups, window, shards, exchange,
                    IngestMode::kPerEvent, &pe_waits, &pe_detections);
    size_t b_waits = 0, b_detections = 0;
    const double batched_eps =
        TimedIngest(stream, groups, window, shards, exchange,
                    IngestMode::kBatched, &b_waits, &b_detections);
    if (per_event_eps < 0 || batched_eps < 0) return false;
    if (shards == 1) one_shard_batched = batched_eps;

    for (size_t detections : {pe_detections, b_detections}) {
      if (detections != reference_count) {
        std::fprintf(
            stderr,
            "DETECTION MISMATCH (%s) at %zu shards: %zu vs %zu (sequential)\n",
            exchange ? "exchange" : "plain", shards, detections,
            reference_count);
        ok = false;
      }
    }
    const std::string label = exchange
                                  ? StrFormat("%zux%zu", shards, shards)
                                  : StrFormat("%zu", shards);
    (void)table->AddRow(label,
                        {per_event_eps, batched_eps,
                         batched_eps / per_event_eps,
                         batched_eps / one_shard_batched,
                         static_cast<double>(pe_waits + b_waits)});
  }
  return ok;
}

int Run(const bench::HarnessArgs& args) {
  const size_t num_events =
      args.effort == bench::Effort::kQuick
          ? 200000
          : (args.effort == bench::Effort::kFull ? 4000000 : 1000000);
  // Enough subjects that per-event matcher work (2 matchers per subject,
  // every event visits all of its shard's matchers) dominates the routing
  // cost — the regime sharding is for. With few queries the single router
  // thread is the bottleneck and extra shards cannot help.
  const size_t groups = 256;
  const Timestamp window = 4;

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u\n", cores);
  if (cores < 4) {
    std::printf(
        "WARNING: fewer than 4 hardware threads — shards time-slice one "
        "core, so expect speedup ~1.0x (the run then measures runtime "
        "overhead, not scaling).\n");
  }
  std::printf("generating streams: %zu events x 2 workloads, %zu %s...\n",
              num_events, groups, "subjects/groups");
  const EventStream keyed = KeyedStream(groups, num_events, 42);
  const EventStream crossed =
      CrossKeyedStream(groups, /*subjects=*/groups, num_events, 43);

  size_t plain_reference = 0;
  const double seq_eps =
      SequentialReference(keyed, groups, window, &plain_reference);
  std::printf(
      "sequential StreamingCepEngine (subject-local): %.0f events/sec, %zu "
      "detections\n",
      seq_eps, plain_reference);
  size_t cross_reference = 0;
  const double cross_seq_eps =
      SequentialReference(crossed, groups, window, &cross_reference);
  std::printf(
      "sequential StreamingCepEngine (cross-subject): %.0f events/sec, %zu "
      "detections\n",
      cross_seq_eps, cross_reference);
  if (seq_eps < 0 || cross_seq_eps < 0) return 1;

  ResultTable table({"shards", "per_event_eps", "batched_eps",
                     "batched_vs_per_event", "batched_speedup_vs_1",
                     "backpressure_waits"});
  bool ok = BenchWorkload(keyed, groups, window, /*exchange=*/false,
                          plain_reference, &table);
  ok = BenchWorkload(crossed, groups, window, /*exchange=*/true,
                     cross_reference, &table) &&
       ok;

  const int rc = bench::EmitTable(
      table, args,
      "Runtime throughput: per-event vs batched ingest; N = subject-local "
      "shards, NxN = exchange pipeline (stage1 x stage2)");
  return ok ? rc : 1;
}

}  // namespace
}  // namespace pldp

int main(int argc, char** argv) {
  return pldp::Run(pldp::bench::ParseArgs(argc, argv));
}
