// Copyright 2026 The PLDP Authors.
//
// Scaling benchmark for the sharded parallel streaming runtime: ingest a
// keyed synthetic stream (many data subjects, per-subject event-type
// alphabets, one sequence + one conjunction query per subject) through
// ParallelStreamingEngine at shard counts 1/2/4/8 — once per-event
// (OnEvent) and once batched (OnEventBatch in fixed chunks) — report
// events/sec for both, the batched-vs-per-event ratio, and speedup vs
// 1 shard, cross-checking every configuration against the sequential
// StreamingCepEngine's detection count.
//
// Acceptance targets: > 1.5x events/sec at 4 shards vs 1 shard (ISSUE 1)
// and batched >= 2x per-event at 4 shards (ISSUE 2) — both on a multi-core
// machine; a 1-core container only measures overhead, not scaling.

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/pldp.h"

namespace pldp {
namespace {

constexpr size_t kTypesPerSubject = 3;
constexpr size_t kIngestBatch = 1024;

EventStream KeyedStream(size_t subjects, size_t num_events, uint64_t seed) {
  Rng rng(seed);
  EventStream stream;
  stream.Reserve(num_events);
  for (size_t i = 0; i < num_events; ++i) {
    const auto subject = static_cast<StreamId>(rng.UniformUint64(subjects));
    const auto type = static_cast<EventTypeId>(
        subject * kTypesPerSubject + rng.UniformUint64(kTypesPerSubject));
    stream.AppendUnchecked(
        Event(type, static_cast<Timestamp>(i / 8), subject));
  }
  return stream;
}

template <typename EngineT>
int RegisterQueries(EngineT& engine, size_t subjects, Timestamp window) {
  for (size_t k = 0; k < subjects; ++k) {
    const auto base = static_cast<EventTypeId>(k * kTypesPerSubject);
    auto seq = Pattern::Create("seq", {base, base + 1, base + 2},
                               DetectionMode::kSequence);
    auto conj = Pattern::Create("conj", {base + 2, base},
                                DetectionMode::kConjunction);
    if (!seq.ok() || !conj.ok() ||
        !engine.AddQuery(std::move(seq).value(), window).ok() ||
        !engine.AddQuery(std::move(conj).value(), window).ok()) {
      return 1;
    }
  }
  return 0;
}

double Seconds(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

enum class IngestMode { kPerEvent, kBatched };

/// Ingests `stream` into a fresh engine; returns events/sec, or a negative
/// value on error. `waits`/`detections` report the run's counters.
double TimedIngest(const EventStream& stream, size_t subjects,
                   Timestamp window, size_t shards, IngestMode mode,
                   size_t* waits, size_t* detections) {
  ParallelEngineOptions options;
  options.shard_count = shards;
  options.queue_capacity = 4096;
  ParallelStreamingEngine engine(options);
  if (RegisterQueries(engine, subjects, window) != 0) return -1.0;
  if (!engine.Start().ok()) return -1.0;

  const std::vector<Event>& events = stream.events();
  const auto t0 = std::chrono::steady_clock::now();
  if (mode == IngestMode::kPerEvent) {
    for (const Event& e : events) (void)engine.OnEvent(e);
  } else {
    for (size_t i = 0; i < events.size(); i += kIngestBatch) {
      const size_t n = kIngestBatch < events.size() - i ? kIngestBatch
                                                        : events.size() - i;
      (void)engine.OnEventBatch(EventSpan(events.data() + i, n));
    }
  }
  if (!engine.Drain().ok()) return -1.0;
  const auto t1 = std::chrono::steady_clock::now();

  *waits = 0;
  for (const ShardStats& s : engine.ShardStatsSnapshot()) {
    *waits += s.backpressure_waits;
  }
  *detections = engine.total_detections();
  if (!engine.Stop().ok()) return -1.0;
  return static_cast<double>(stream.size()) / Seconds(t0, t1);
}

int Run(const bench::HarnessArgs& args) {
  const size_t num_events =
      args.effort == bench::Effort::kQuick
          ? 200000
          : (args.effort == bench::Effort::kFull ? 4000000 : 1000000);
  // Enough subjects that per-event matcher work (2 matchers per subject,
  // every event visits all of its shard's matchers) dominates the routing
  // cost — the regime sharding is for. With few queries the single router
  // thread is the bottleneck and extra shards cannot help.
  const size_t subjects = 256;
  const Timestamp window = 4;

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u\n", cores);
  if (cores < 4) {
    std::printf(
        "WARNING: fewer than 4 hardware threads — shards time-slice one "
        "core, so expect speedup ~1.0x (the run then measures runtime "
        "overhead, not scaling).\n");
  }
  std::printf("generating keyed stream: %zu events, %zu subjects...\n",
              num_events, subjects);
  const EventStream stream = KeyedStream(subjects, num_events, 42);

  // Sequential reference: detection-count ground truth + baseline rate.
  StreamingCepEngine reference;
  if (RegisterQueries(reference, subjects, window) != 0) return 1;
  auto t0 = std::chrono::steady_clock::now();
  for (const Event& e : stream) (void)reference.OnEvent(e);
  auto t1 = std::chrono::steady_clock::now();
  const double seq_eps = static_cast<double>(num_events) / Seconds(t0, t1);
  std::printf("sequential StreamingCepEngine: %.0f events/sec, %zu detections\n",
              seq_eps, reference.total_detections());

  ResultTable table({"shards", "per_event_eps", "batched_eps",
                     "batched_vs_per_event", "batched_speedup_vs_1",
                     "backpressure_waits"});
  double one_shard_batched = 0.0;
  bool ok = true;
  for (size_t shards : {1u, 2u, 4u, 8u}) {
    size_t pe_waits = 0, pe_detections = 0;
    const double per_event_eps =
        TimedIngest(stream, subjects, window, shards, IngestMode::kPerEvent,
                    &pe_waits, &pe_detections);
    size_t b_waits = 0, b_detections = 0;
    const double batched_eps =
        TimedIngest(stream, subjects, window, shards, IngestMode::kBatched,
                    &b_waits, &b_detections);
    if (per_event_eps < 0 || batched_eps < 0) return 1;
    if (shards == 1) one_shard_batched = batched_eps;

    for (size_t detections : {pe_detections, b_detections}) {
      if (detections != reference.total_detections()) {
        std::fprintf(
            stderr,
            "DETECTION MISMATCH at %zu shards: %zu vs %zu (sequential)\n",
            shards, detections, reference.total_detections());
        ok = false;
      }
    }
    (void)table.AddRow(StrFormat("%zu", shards),
                       {per_event_eps, batched_eps,
                        batched_eps / per_event_eps,
                        batched_eps / one_shard_batched,
                        static_cast<double>(pe_waits + b_waits)});
  }

  const int rc = bench::EmitTable(
      table, args,
      "Runtime throughput: per-event vs batched ingest, by shard count");
  return ok ? rc : 1;
}

}  // namespace
}  // namespace pldp

int main(int argc, char** argv) {
  return pldp::Run(pldp::bench::ParseArgs(argc, argv));
}
