// Copyright 2026 The PLDP Authors.
//
// Scaling + allocation benchmark for the sharded parallel streaming
// runtime, in three sections sharing one result table (rows labeled "N",
// "N+attrs", "NxN"):
//
// All workloads are declared through the PipelineBuilder API (the planner
// compiles the topology: a budget of 1 plans the sequential in-process
// engine — the honest single-core baseline — and the exchange workload's
// custom "group" key compiles into one shared lane-group):
//
//   1. Subject-local workload: ingest a keyed synthetic stream (many data
//      subjects, per-subject event-type alphabets, one sequence + one
//      conjunction query per subject) through the planned pipeline at
//      shard budgets 1/2/4/8 — once per-event (OnEvent) and once batched
//      (OnEventBatch in fixed chunks) — reporting events/sec for both, the
//      batched-vs-per-event ratio, and speedup vs 1 shard.
//   2. Attributed subject-local workload: the same stream shape but every
//      event carries two attributes (an int `cell` and an interned-symbol
//      `zone`), the regime the zero-allocation data plane exists for:
//      before attribute interning + Event's inline attribute buffer this
//      measured ~2 heap allocations per event; now it must be ~0.
//   3. Cross-subject workload: the alphabet keyed by a *group* attribute
//      uncorrelated with the subject, so every match spans subjects and
//      must ride the repartition/exchange stage onto NxN merge shards.
//
// Allocation accounting: the PLDP_ENABLE_ALLOC_HOOK counting hook
// (bench_util.h) measures heap allocations and bytes per event across the
// steady-state segment of each batched run — the first ~6% of the stream
// is ingested and drained as warmup (first-touch growth of staging
// buffers, detection vectors, subject maps), then counting covers the
// rest, including everything the worker threads allocate. The columns land
// in BENCH_runtime.json, which CI archives per push, so allocation
// regressions are as diffable as throughput regressions.
//
// Telemetry columns: each shard budget additionally runs the batched
// ingest once with metrics enabled (EnableMetrics on the builder — every
// counter/histogram/gauge wired). The run reports p50/p99/p999 per-event
// processing latency from the pipeline-wide aggregate of the
// pldp_shard_process_latency_ns histograms, plus the relative throughput
// overhead of instrumentation vs the metrics-off batched run (target:
// under ~2% — instrument updates are relaxed atomics on pre-registered
// slots).
//
// Core affinity: `--cores N` pins workers round-robin to the first N
// cores via WithCoreAffinity (stage-1 shards first, then merge shards).
// The `cores` column records the pinning budget (0 = unpinned) and the
// `parks` column the total doorbell parks across the three runs of each
// row — both land in the schema_version-2 JSON so CI can assert the
// parking path actually engages on idle-heavy runs.
//
// Every configuration is cross-checked against the sequential
// StreamingCepEngine's detection count; the bench exits non-zero on a
// mismatch.
//
// Acceptance targets: > 1.5x events/sec at 4 shards vs 1 shard (ISSUE 1),
// batched >= 2x per-event at 4 shards (ISSUE 2) — both on a multi-core
// machine; a 1-core container only measures overhead, not scaling — and
// ~0 allocations/event steady-state on the attributed plain workload
// (ISSUE 4).

#define PLDP_ENABLE_ALLOC_HOOK

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/pldp.h"

namespace pldp {
namespace {

constexpr size_t kTypesPerSubject = 3;
constexpr size_t kIngestBatch = 1024;

/// Interned zone payloads for the attributed workload (two distinct
/// values, both longer than SSO so the legacy std::string layout really
/// paid heap for them).
const char* ZoneName(size_t i) {
  return i % 2 == 0 ? "district-downtown-3" : "district-uptown-007";
}

EventStream KeyedStream(size_t subjects, size_t num_events, uint64_t seed,
                        bool attributed) {
  // Bind the attribute ids once; per-event attribute writes are then pure
  // integer-keyed inline stores.
  const AttrId cell_attr = AttrNames().Intern("cell");
  const AttrId zone_attr = AttrNames().Intern("zone");
  const Value zones[2] = {Value::Sym(ZoneName(0)), Value::Sym(ZoneName(1))};
  Rng rng(seed);
  EventStream stream;
  stream.Reserve(num_events);
  for (size_t i = 0; i < num_events; ++i) {
    const auto subject = static_cast<StreamId>(rng.UniformUint64(subjects));
    const auto type = static_cast<EventTypeId>(
        subject * kTypesPerSubject + rng.UniformUint64(kTypesPerSubject));
    Event e(type, static_cast<Timestamp>(i / 8), subject);
    if (attributed) {
      e.SetAttribute(cell_attr, Value(static_cast<int64_t>(i % 64)));
      e.SetAttribute(zone_attr, zones[i % 2]);
    }
    stream.AppendUnchecked(std::move(e));
  }
  return stream;
}

/// Cross-subject variant: the type is drawn from a *group* alphabet while
/// the subject is drawn independently, so group matches span subjects.
/// The correlation key is recoverable from the type (group = type /
/// kTypesPerSubject), which keeps the hot path attribute-free.
EventStream CrossKeyedStream(size_t groups, size_t subjects,
                             size_t num_events, uint64_t seed) {
  Rng rng(seed);
  EventStream stream;
  stream.Reserve(num_events);
  for (size_t i = 0; i < num_events; ++i) {
    const auto group = rng.UniformUint64(groups);
    const auto type = static_cast<EventTypeId>(
        group * kTypesPerSubject + rng.UniformUint64(kTypesPerSubject));
    const auto subject = static_cast<StreamId>(rng.UniformUint64(subjects));
    stream.AppendUnchecked(
        Event(type, static_cast<Timestamp>(i / 8), subject));
  }
  return stream;
}

uint64_t GroupOfType(const Event& e) {
  return static_cast<uint64_t>(e.type()) / kTypesPerSubject;
}

template <typename AddQueryFn>
int RegisterAlphabetQueries(AddQueryFn add, size_t groups, Timestamp window) {
  for (size_t k = 0; k < groups; ++k) {
    const auto base = static_cast<EventTypeId>(k * kTypesPerSubject);
    auto seq = Pattern::Create("seq", {base, base + 1, base + 2},
                               DetectionMode::kSequence);
    auto conj = Pattern::Create("conj", {base + 2, base},
                                DetectionMode::kConjunction);
    if (!seq.ok() || !conj.ok() ||
        !add(std::move(seq).value(), window).ok() ||
        !add(std::move(conj).value(), window).ok()) {
      return 1;
    }
  }
  return 0;
}

/// Declares the alphabet queries on a PipelineBuilder: plain per-subject
/// queries, or cross queries sharing the group-keyed lane (one custom key
/// name -> one exchange lane-group for all of them).
void DeclareAlphabetQueries(PipelineBuilder& builder, size_t groups,
                            Timestamp window, bool exchange) {
  for (size_t k = 0; k < groups; ++k) {
    const auto base = static_cast<EventTypeId>(k * kTypesPerSubject);
    auto seq = Pattern::Create("seq", {base, base + 1, base + 2},
                               DetectionMode::kSequence);
    auto conj = Pattern::Create("conj", {base + 2, base},
                                DetectionMode::kConjunction);
    if (exchange) {
      (void)builder.AddCrossQuery(std::move(seq), window,
                                  CorrelationKey::Custom("group",
                                                         GroupOfType));
      (void)builder.AddCrossQuery(std::move(conj), window,
                                  CorrelationKey::Custom("group",
                                                         GroupOfType));
    } else {
      (void)builder.AddQuery(std::move(seq), window);
      (void)builder.AddQuery(std::move(conj), window);
    }
  }
}

double Seconds(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

enum class IngestMode { kPerEvent, kBatched };

Status IngestRange(StreamSubscriber& subscriber,
                   const std::vector<Event>& events, size_t begin, size_t end,
                   IngestMode mode) {
  if (mode == IngestMode::kPerEvent) {
    for (size_t i = begin; i < end; ++i) {
      PLDP_RETURN_IF_ERROR(subscriber.OnEvent(events[i]));
    }
    return Status::OK();
  }
  for (size_t i = begin; i < end; i += kIngestBatch) {
    const size_t n = std::min(kIngestBatch, end - i);
    PLDP_RETURN_IF_ERROR(
        subscriber.OnEventBatch(EventSpan(events.data() + i, n)));
  }
  return Status::OK();
}

/// Per-run allocation readout; negative when the hook is inactive.
struct AllocPerEvent {
  double allocs = -1.0;
  double bytes = -1.0;
};

/// Per-event processing latency quantiles (ns) from the pipeline-wide
/// aggregate of the per-shard latency histograms; negative when the run
/// had metrics disabled.
struct LatencyQuantiles {
  double p50 = -1.0;
  double p99 = -1.0;
  double p999 = -1.0;
};

/// Ingests `stream` into a fresh engine; returns steady-state events/sec,
/// or a negative value on error. With `exchange`, the queries run as cross
/// queries on an NxN exchange pipeline keyed by group. The first ~6% of
/// the stream is untimed, uncounted warmup (see file comment);
/// `waits`/`detections`/`alloc` report the steady-state segment's
/// counters (waits = stage-1 queue + exchange lane backpressure). With
/// `metrics`, the pipeline is built fully instrumented and `latency` (if
/// non-null) receives p50/p99/p999 of the pipeline-wide
/// pldp_shard_process_latency_ns aggregate (warmup events included — the
/// histogram spans the pipeline's whole life, and the steady state
/// dominates the distribution).
double TimedIngest(const EventStream& stream, size_t groups,
                   Timestamp window, size_t shards, bool exchange,
                   IngestMode mode, size_t* waits, size_t* detections,
                   AllocPerEvent* alloc, size_t cores, size_t* parks,
                   bool metrics = false,
                   LatencyQuantiles* latency = nullptr) {
  // Declarative construction: the builder plans the topology from the
  // queries (a shard budget of 1 plans the sequential in-process engine —
  // the honest single-core baseline; the exchange workload's custom
  // "group" key compiles into one shared lane-group).
  PipelineBuilder builder;
  DeclareAlphabetQueries(builder, groups, window, exchange);
  builder.WithShards(shards)
      .WithCrossShards(shards)
      .WithQueueCapacity(4096)
      .WithExchangeCapacity(4096)
      .EnableMetrics(metrics);
  // --cores N: pin workers round-robin to the first N cores (graceful
  // no-op on machines without pthread affinity support).
  if (cores > 0) builder.WithCoreAffinity(cores);
  auto pipeline_or = builder.Build();
  if (!pipeline_or.ok()) return -1.0;
  Pipeline& pipeline = *pipeline_or.value();

  const std::vector<Event>& events = stream.events();
  const size_t warmup = std::min<size_t>(events.size() / 16, 65536);
  if (!IngestRange(pipeline, events, 0, warmup, mode).ok()) return -1.0;
  if (!pipeline.Drain().ok()) return -1.0;

  bench::ResetAllocCounters();
  bench::SetAllocCounting(true);
  const auto t0 = std::chrono::steady_clock::now();
  if (!IngestRange(pipeline, events, warmup, events.size(), mode).ok()) {
    return -1.0;
  }
  if (!pipeline.Drain().ok()) return -1.0;
  const auto t1 = std::chrono::steady_clock::now();
  bench::SetAllocCounting(false);

  const size_t measured = events.size() - warmup;
  if (bench::kAllocHookActive && alloc != nullptr) {
    const bench::AllocCounters counters = bench::GetAllocCounters();
    alloc->allocs =
        static_cast<double>(counters.allocs) / static_cast<double>(measured);
    alloc->bytes =
        static_cast<double>(counters.bytes) / static_cast<double>(measured);
  }

  if (metrics && latency != nullptr) {
    const obs::MetricsSnapshot snapshot = pipeline.MetricsSnapshot();
    const obs::HistogramData hist = obs::AggregateHistogram(
        snapshot.Find("pldp_shard_process_latency_ns"));
    latency->p50 = hist.Quantile(0.50);
    latency->p99 = hist.Quantile(0.99);
    latency->p999 = hist.Quantile(0.999);
  }

  *waits = 0;
  size_t park_total = 0;
  for (const ShardStats& s : pipeline.ShardStatsSnapshot()) {
    *waits += s.backpressure_waits + s.exchange_backpressure_waits;
    park_total += s.parks;
  }
  for (const ShardStats& s : pipeline.CrossShardStatsSnapshot()) {
    park_total += s.parks;
  }
  if (parks != nullptr) *parks = park_total;
  // Detections live behind the typed drain barrier.
  auto finished = pipeline.Finish();
  if (!finished.ok()) return -1.0;
  *detections = exchange ? finished.value().total_cross_detections()
                         : finished.value().total_detections();
  if (!pipeline.Stop().ok()) return -1.0;
  return static_cast<double>(measured) / Seconds(t0, t1);
}

/// Sequential detection-count ground truth + baseline rate.
double SequentialReference(const EventStream& stream, size_t groups,
                           Timestamp window, size_t* detections) {
  StreamingCepEngine reference;
  const auto add = [&reference](Pattern p, Timestamp w) {
    return reference.AddQuery(std::move(p), w);
  };
  if (RegisterAlphabetQueries(add, groups, window) != 0) return -1.0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const Event& e : stream) (void)reference.OnEvent(e);
  const auto t1 = std::chrono::steady_clock::now();
  *detections = reference.total_detections();
  return static_cast<double>(stream.size()) / Seconds(t0, t1);
}

/// Benches one workload into `table` (label_suffix distinguishes the
/// sections: "" plain, "+attrs" attributed, exchange rows are "NxN");
/// returns false on a detection mismatch. Allocation columns come from the
/// metrics-off batched run (the production ingest path); the latency
/// quantiles, the overhead column, and metrics_allocs_per_event (the
/// zero-allocation guarantee must survive full instrumentation) come from
/// a third, fully instrumented batched run against the same stream.
bool BenchWorkload(const EventStream& stream, size_t groups,
                   Timestamp window, bool exchange, size_t reference_count,
                   const char* label_suffix, size_t cores,
                   ResultTable* table) {
  double one_shard_batched = 0.0;
  bool ok = true;
  for (size_t shards : {1u, 2u, 4u, 8u}) {
    size_t pe_waits = 0, pe_detections = 0, pe_parks = 0;
    const double per_event_eps =
        TimedIngest(stream, groups, window, shards, exchange,
                    IngestMode::kPerEvent, &pe_waits, &pe_detections,
                    nullptr, cores, &pe_parks);
    size_t b_waits = 0, b_detections = 0, b_parks = 0;
    AllocPerEvent alloc;
    const double batched_eps = TimedIngest(
        stream, groups, window, shards, exchange, IngestMode::kBatched,
        &b_waits, &b_detections, &alloc, cores, &b_parks);
    size_t m_waits = 0, m_detections = 0, m_parks = 0;
    AllocPerEvent metrics_alloc;
    LatencyQuantiles latency;
    const double metrics_eps = TimedIngest(
        stream, groups, window, shards, exchange, IngestMode::kBatched,
        &m_waits, &m_detections, &metrics_alloc, cores, &m_parks,
        /*metrics=*/true, &latency);
    if (per_event_eps < 0 || batched_eps < 0 || metrics_eps < 0) return false;
    if (shards == 1) one_shard_batched = batched_eps;

    for (size_t detections : {pe_detections, b_detections, m_detections}) {
      if (detections != reference_count) {
        std::fprintf(
            stderr,
            "DETECTION MISMATCH (%s) at %zu shards: %zu vs %zu (sequential)\n",
            exchange ? "exchange" : label_suffix[0] != '\0' ? "attributed"
                                                           : "plain",
            shards, detections, reference_count);
        ok = false;
      }
    }
    const std::string label =
        exchange ? StrFormat("%zux%zu", shards, shards)
                 : StrFormat("%zu%s", shards, label_suffix);
    const double overhead_pct = (batched_eps / metrics_eps - 1.0) * 100.0;
    (void)table->AddRow(label,
                        {per_event_eps, batched_eps,
                         batched_eps / per_event_eps,
                         batched_eps / one_shard_batched,
                         static_cast<double>(pe_waits + b_waits),
                         alloc.allocs, alloc.bytes, metrics_eps,
                         overhead_pct, metrics_alloc.allocs, latency.p50,
                         latency.p99, latency.p999,
                         static_cast<double>(cores),
                         static_cast<double>(pe_parks + b_parks + m_parks)});
  }
  return ok;
}

int Run(const bench::HarnessArgs& args) {
  const size_t num_events =
      args.effort == bench::Effort::kQuick
          ? 200000
          : (args.effort == bench::Effort::kFull ? 4000000 : 1000000);
  // Enough subjects that per-event matcher work (2 matchers per subject,
  // every event visits all of its shard's matchers) dominates the routing
  // cost — the regime sharding is for. With few queries the single router
  // thread is the bottleneck and extra shards cannot help.
  const size_t groups = 256;
  const Timestamp window = 4;

  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u\n", hw_threads);
  if (hw_threads < 4) {
    std::printf(
        "WARNING: fewer than 4 hardware threads — shards time-slice one "
        "core, so expect speedup ~1.0x (the run then measures runtime "
        "overhead, not scaling).\n");
  }
  // The widest configuration below runs 8 stage-1 shards (the exchange
  // rows add 8 merge workers on top); warn when the machine cannot give
  // each worker a hardware thread, because the scaling columns are then
  // measuring time-slicing, not parallelism.
  if (hw_threads < 8) {
    std::fprintf(stderr,
                 "WARNING: hardware_concurrency()=%u < %u worker threads at "
                 "the widest shard budget; throughput/speedup columns "
                 "measure oversubscription on this machine.\n",
                 hw_threads, 8u);
  }
  if (args.cores > 0) {
    std::printf("core affinity: pinning workers round-robin to %zu cores\n",
                args.cores);
    if (hw_threads != 0 && args.cores > hw_threads) {
      std::fprintf(stderr,
                   "WARNING: --cores %zu exceeds hardware_concurrency()=%u; "
                   "pinning is clamped to the cores that exist.\n",
                   args.cores, hw_threads);
    }
  }
  if (!bench::kAllocHookActive) {
    std::printf(
        "NOTE: allocation hook inactive (sanitizer build); allocs/bytes "
        "columns will read -1.\n");
  }
  std::printf("generating streams: %zu events x 3 workloads, %zu %s...\n",
              num_events, groups, "subjects/groups");
  const EventStream keyed =
      KeyedStream(groups, num_events, 42, /*attributed=*/false);
  const EventStream attributed =
      KeyedStream(groups, num_events, 44, /*attributed=*/true);
  const EventStream crossed =
      CrossKeyedStream(groups, /*subjects=*/groups, num_events, 43);

  size_t plain_reference = 0;
  const double seq_eps =
      SequentialReference(keyed, groups, window, &plain_reference);
  std::printf(
      "sequential StreamingCepEngine (subject-local): %.0f events/sec, %zu "
      "detections\n",
      seq_eps, plain_reference);
  size_t attr_reference = 0;
  const double attr_seq_eps =
      SequentialReference(attributed, groups, window, &attr_reference);
  std::printf(
      "sequential StreamingCepEngine (attributed): %.0f events/sec, %zu "
      "detections\n",
      attr_seq_eps, attr_reference);
  size_t cross_reference = 0;
  const double cross_seq_eps =
      SequentialReference(crossed, groups, window, &cross_reference);
  std::printf(
      "sequential StreamingCepEngine (cross-subject): %.0f events/sec, %zu "
      "detections\n",
      cross_seq_eps, cross_reference);
  if (seq_eps < 0 || attr_seq_eps < 0 || cross_seq_eps < 0) return 1;

  ResultTable table({"shards", "per_event_eps", "batched_eps",
                     "batched_vs_per_event", "batched_speedup_vs_1",
                     "backpressure_waits", "allocs_per_event",
                     "bytes_per_event", "metrics_batched_eps",
                     "metrics_overhead_pct", "metrics_allocs_per_event",
                     "latency_p50_ns", "latency_p99_ns", "latency_p999_ns",
                     "cores", "parks"});
  bool ok = BenchWorkload(keyed, groups, window, /*exchange=*/false,
                          plain_reference, "", args.cores, &table);
  ok = BenchWorkload(attributed, groups, window, /*exchange=*/false,
                     attr_reference, "+attrs", args.cores, &table) &&
       ok;
  ok = BenchWorkload(crossed, groups, window, /*exchange=*/true,
                     cross_reference, "", args.cores, &table) &&
       ok;

  const int rc = bench::EmitTable(
      table, args,
      "Runtime throughput + steady-state allocations + telemetry: per-event "
      "vs batched ingest; N = subject-local shards, N+attrs = attributed "
      "events, NxN = exchange pipeline (stage1 x stage2); metrics_* columns "
      "and latency quantiles from a fully instrumented batched run");
  return ok ? rc : 1;
}

}  // namespace
}  // namespace pldp

int main(int argc, char** argv) {
  return pldp::Run(pldp::bench::ParseArgs(argc, argv));
}
