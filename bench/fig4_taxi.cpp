// Copyright 2026 The PLDP Authors.
//
// Reproduces Fig. 4 (Taxi panel): MRE vs privacy budget ε on the simulated
// T-Drive workload (DESIGN.md §4 documents the substitution).
//
// Paper setup: 10357 taxis sampled every 177 s; 20 % of locations private,
// 50 % target with half the private area also target; queries monitor
// entry into the target area. Pattern types are single GPS locations, so
// — as the paper observes — uniform and adaptive coincide and the gap
// between all algorithms narrows relative to the synthetic panel.
//
// Defaults are laptop-scale (the mechanisms only see per-window presence
// statistics; fleet size beyond a few hundred does not change the shape);
// --full runs the paper-scale fleet.

#include <cstdio>

#include "bench_util.h"
#include "core/pldp.h"

namespace pldp {
namespace {

int Run(const bench::HarnessArgs& args) {
  TaxiOptions opt;
  opt.grid_width = 16;
  opt.grid_height = 16;
  opt.num_taxis = 150;
  opt.num_ticks = 500;
  size_t repetitions = 12;
  if (args.effort == bench::Effort::kQuick) {
    opt.grid_width = 10;
    opt.grid_height = 10;
    opt.num_taxis = 40;
    opt.num_ticks = 150;
    repetitions = 5;
  } else if (args.effort == bench::Effort::kFull) {
    opt.grid_width = 32;
    opt.grid_height = 32;
    opt.num_taxis = 10357;  // the paper's fleet
    opt.num_ticks = 1000;
    repetitions = 20;
  }

  auto generated = GenerateTaxi(opt, 2026);
  if (!generated.ok()) {
    std::fprintf(stderr, "taxi simulator failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "taxi substrate: %zu cells, %zu taxis, %zu windows, "
      "%zu private cells, %zu target cells\n",
      opt.grid_width * opt.grid_height, opt.num_taxis,
      generated->dataset.windows.size(), generated->private_cells.size(),
      generated->target_cells.size());

  const std::vector<double> epsilons = {0.1, 0.5, 1.0, 2.0, 5.0, 10.0};
  EvaluationConfig cfg;
  cfg.alpha = 0.5;
  cfg.repetitions = repetitions;
  auto sweep = SweepEpsilons(generated->dataset, AllMechanismNames(),
                             epsilons, cfg);
  if (!sweep.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 sweep.status().ToString().c_str());
    return 1;
  }
  ResultTable table = sweep->ToTable();
  return bench::EmitTable(table, args,
                          "Fig. 4 (Taxi): MRE vs pattern-level ε");
}

}  // namespace
}  // namespace pldp

int main(int argc, char** argv) {
  return pldp::Run(pldp::bench::ParseArgs(argc, argv));
}
