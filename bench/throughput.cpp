// Copyright 2026 The PLDP Authors.
//
// Ablation A4 / engineering benchmark: google-benchmark microbenchmarks of
// the hot paths — pattern matching (batch and incremental), windowing,
// stream merge, and the per-window publication cost of every mechanism.

#include <benchmark/benchmark.h>

#include "core/pldp.h"

namespace pldp {
namespace {

EventStream RandomStream(size_t n, size_t types, uint64_t seed) {
  Rng rng(seed);
  EventStream s;
  s.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    s.AppendUnchecked(
        Event(static_cast<EventTypeId>(rng.UniformUint64(types)),
              static_cast<Timestamp>(i)));
  }
  return s;
}

Window RandomWindow(size_t n, size_t types, uint64_t seed) {
  Window w;
  w.start = 0;
  w.end = static_cast<Timestamp>(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    w.events.emplace_back(
        static_cast<EventTypeId>(rng.UniformUint64(types)),
        static_cast<Timestamp>(i));
  }
  return w;
}

void BM_SequenceMatchInWindow(benchmark::State& state) {
  Window w = RandomWindow(static_cast<size_t>(state.range(0)), 16, 1);
  Pattern p =
      Pattern::Create("p", {1, 2, 3}, DetectionMode::kSequence).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(PatternOccursInWindow(w, p).value());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SequenceMatchInWindow)->Arg(64)->Arg(512)->Arg(4096);

void BM_ConjunctionMatchInWindow(benchmark::State& state) {
  Window w = RandomWindow(static_cast<size_t>(state.range(0)), 16, 2);
  Pattern p =
      Pattern::Create("p", {1, 2, 3}, DetectionMode::kConjunction).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(PatternOccursInWindow(w, p).value());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ConjunctionMatchInWindow)->Arg(64)->Arg(512)->Arg(4096);

void BM_IncrementalSequenceMatcher(benchmark::State& state) {
  EventStream s = RandomStream(static_cast<size_t>(state.range(0)), 16, 3);
  Pattern p =
      Pattern::Create("p", {1, 2, 3}, DetectionMode::kSequence).value();
  for (auto _ : state) {
    auto m = MakeIncrementalMatcher(p, 100);
    for (const Event& e : s) m->OnEvent(e);
    benchmark::DoNotOptimize(m->detections().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IncrementalSequenceMatcher)->Arg(1024)->Arg(16384);

void BM_SpscQueuePushPop(benchmark::State& state) {
  // Single-threaded laps over the runtime's SPSC ring buffer: the floor of
  // the per-event handoff cost on the sharded ingest path (no contention).
  SpscQueue<Event> q(static_cast<size_t>(state.range(0)));
  const Event e(3, 17, /*stream=*/5);
  for (auto _ : state) {
    Event out;
    benchmark::DoNotOptimize(q.TryPush(e));
    benchmark::DoNotOptimize(q.TryPop(out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscQueuePushPop)->Arg(64)->Arg(4096);

void BM_EventRouterShardOf(benchmark::State& state) {
  // The router's hash + range reduction, once per ingested event.
  EventRouter router(static_cast<size_t>(state.range(0)));
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.ShardOfKey(key++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventRouterShardOf)->Arg(4)->Arg(16);

void BM_TumblingWindower(benchmark::State& state) {
  EventStream s = RandomStream(static_cast<size_t>(state.range(0)), 16, 4);
  TumblingWindower w(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.Apply(s).value().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TumblingWindower)->Arg(4096)->Arg(65536);

void BM_MergeStreams(benchmark::State& state) {
  std::vector<EventStream> streams;
  for (uint64_t i = 0; i < 8; ++i) {
    streams.push_back(
        RandomStream(static_cast<size_t>(state.range(0)) / 8, 16, 10 + i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MergeStreams(streams).size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MergeStreams)->Arg(8192)->Arg(65536);

void BM_RandomizedResponseBit(benchmark::State& state) {
  auto rr = RandomizedResponse::FromEpsilon(1.0).value();
  Rng rng(5);
  bool bit = true;
  for (auto _ : state) {
    bit = rr.Perturb(bit, &rng);
    benchmark::DoNotOptimize(bit);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomizedResponseBit);

void BM_LaplaceNoise(benchmark::State& state) {
  auto mech = LaplaceMechanism::Create(1.0, 1.0).value();
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mech.AddNoise(42.0, &rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LaplaceNoise);

/// Per-window publication cost of each mechanism on a synthetic-like
/// context (20 types, 3 private patterns of length 3).
template <typename SetupFn>
void PublishBenchBody(benchmark::State& state, SetupFn make_mechanism) {
  SyntheticOptions opt;
  opt.num_windows = 64;
  auto generated = GenerateSynthetic(opt, 9).value();
  Dataset& ds = generated.dataset;
  auto split = ds.SplitHistory(0.5).value();

  MechanismContext ctx;
  ctx.event_types = &ds.event_types;
  ctx.patterns = &ds.patterns;
  ctx.private_patterns = ds.private_patterns;
  ctx.target_patterns = ds.target_patterns;
  ctx.epsilon = 1.0;
  ctx.history = &split.first;

  auto mech = make_mechanism();
  if (!mech->Initialize(ctx).ok()) {
    state.SkipWithError("initialize failed");
    return;
  }
  Rng rng(11);
  size_t i = 0;
  for (auto _ : state) {
    const Window& w = split.second[i % split.second.size()];
    benchmark::DoNotOptimize(mech->PublishWindow(w, &rng).value());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_PublishUniform(benchmark::State& state) {
  PublishBenchBody(state, [] {
    return std::unique_ptr<PrivacyMechanism>(new UniformPatternPpm());
  });
}
BENCHMARK(BM_PublishUniform);

void BM_PublishBudgetDivision(benchmark::State& state) {
  PublishBenchBody(state, [] {
    return std::unique_ptr<PrivacyMechanism>(new BudgetDivisionPpm());
  });
}
BENCHMARK(BM_PublishBudgetDivision);

void BM_PublishBudgetAbsorption(benchmark::State& state) {
  PublishBenchBody(state, [] {
    return std::unique_ptr<PrivacyMechanism>(new BudgetAbsorptionPpm());
  });
}
BENCHMARK(BM_PublishBudgetAbsorption);

void BM_PublishLandmark(benchmark::State& state) {
  PublishBenchBody(state, [] {
    return std::unique_ptr<PrivacyMechanism>(new LandmarkPpm());
  });
}
BENCHMARK(BM_PublishLandmark);

void BM_EndToEndEvaluation(benchmark::State& state) {
  SyntheticOptions opt;
  opt.num_windows = 200;
  auto generated = GenerateSynthetic(opt, 13).value();
  EvaluationConfig cfg;
  cfg.mechanism = "uniform";
  cfg.repetitions = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunEvaluation(generated.dataset, cfg).value().mre.mean());
  }
}
BENCHMARK(BM_EndToEndEvaluation);

}  // namespace
}  // namespace pldp

BENCHMARK_MAIN();
