// Copyright 2026 The PLDP Authors.
//
// Shared helpers for the experiment harnesses: flag parsing (--quick /
// --full / --out=... / --json ...) and result persistence. Every harness
// prints the paper-style series to stdout, optionally writes a CSV next to
// it, and optionally emits a machine-readable JSON document — the format
// CI archives as an artifact so the performance trajectory of a branch is
// diffable run over run.

#ifndef PLDP_BENCH_BENCH_UTIL_H_
#define PLDP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "quality/report.h"

namespace pldp {
namespace bench {

/// Effort scaling shared by the harnesses.
enum class Effort { kQuick, kDefault, kFull };

struct HarnessArgs {
  Effort effort = Effort::kDefault;
  /// CSV output path; empty = stdout only.
  std::string csv_out;
  /// JSON output path; empty = no JSON.
  std::string json_out;
};

inline HarnessArgs ParseArgs(int argc, char** argv) {
  HarnessArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.effort = Effort::kQuick;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      args.effort = Effort::kFull;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      args.csv_out = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      args.json_out = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s' (supported: --quick --full --out=F "
                   "--json F)\n",
                   argv[i]);
    }
  }
  return args;
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// A cell that fully parses as a finite double is emitted as a bare JSON
/// number; everything else is emitted as a string.
inline std::string JsonCell(const std::string& cell) {
  if (!cell.empty()) {
    char* end = nullptr;
    std::strtod(cell.c_str(), &end);
    if (end != nullptr && *end == '\0' &&
        cell.find_first_of("nN") == std::string::npos) {  // no nan/inf
      return cell;
    }
  }
  return "\"" + JsonEscape(cell) + "\"";
}

/// Writes {"schema_version":1,"title":...,"columns":[...],"rows":[[...]]}.
inline Status WriteJson(const ResultTable& table, const std::string& path,
                        const std::string& title) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open JSON output file: " + path);
  }
  std::fprintf(f, "{\n  \"schema_version\": 1,\n  \"title\": \"%s\",\n",
               JsonEscape(title).c_str());
  std::fprintf(f, "  \"columns\": [");
  for (size_t i = 0; i < table.headers().size(); ++i) {
    std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ",
                 JsonEscape(table.headers()[i]).c_str());
  }
  std::fprintf(f, "],\n  \"rows\": [\n");
  for (size_t r = 0; r < table.rows().size(); ++r) {
    std::fprintf(f, "    [");
    const auto& row = table.rows()[r];
    for (size_t i = 0; i < row.size(); ++i) {
      std::fprintf(f, "%s%s", i == 0 ? "" : ", ", JsonCell(row[i]).c_str());
    }
    std::fprintf(f, "]%s\n", r + 1 == table.rows().size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return Status::OK();
}

/// Prints the table and writes the CSV/JSON when requested. Returns 0/1
/// for main().
inline int EmitTable(const ResultTable& table, const HarnessArgs& args,
                     const std::string& title) {
  std::printf("== %s ==\n%s\n", title.c_str(), table.ToString().c_str());
  if (!args.csv_out.empty()) {
    Status s = table.WriteCsv(args.csv_out);
    if (!s.ok()) {
      std::fprintf(stderr, "CSV write failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("(written to %s)\n", args.csv_out.c_str());
  }
  if (!args.json_out.empty()) {
    Status s = WriteJson(table, args.json_out, title);
    if (!s.ok()) {
      std::fprintf(stderr, "JSON write failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("(JSON written to %s)\n", args.json_out.c_str());
  }
  return 0;
}

}  // namespace bench
}  // namespace pldp

#endif  // PLDP_BENCH_BENCH_UTIL_H_
