// Copyright 2026 The PLDP Authors.
//
// Shared helpers for the experiment harnesses: flag parsing (--quick /
// --full / --out=...) and result persistence. Every harness prints the
// paper-style series to stdout and optionally writes a CSV next to it.

#ifndef PLDP_BENCH_BENCH_UTIL_H_
#define PLDP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <string>

#include "quality/report.h"

namespace pldp {
namespace bench {

/// Effort scaling shared by the harnesses.
enum class Effort { kQuick, kDefault, kFull };

struct HarnessArgs {
  Effort effort = Effort::kDefault;
  /// CSV output path; empty = stdout only.
  std::string csv_out;
};

inline HarnessArgs ParseArgs(int argc, char** argv) {
  HarnessArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.effort = Effort::kQuick;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      args.effort = Effort::kFull;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      args.csv_out = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s' (supported: --quick --full --out=F)\n",
                   argv[i]);
    }
  }
  return args;
}

/// Prints the table and writes the CSV when requested. Returns 0/1 for
/// main().
inline int EmitTable(const ResultTable& table, const HarnessArgs& args,
                     const std::string& title) {
  std::printf("== %s ==\n%s\n", title.c_str(), table.ToString().c_str());
  if (!args.csv_out.empty()) {
    Status s = table.WriteCsv(args.csv_out);
    if (!s.ok()) {
      std::fprintf(stderr, "CSV write failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("(written to %s)\n", args.csv_out.c_str());
  }
  return 0;
}

}  // namespace bench
}  // namespace pldp

#endif  // PLDP_BENCH_BENCH_UTIL_H_
