// Copyright 2026 The PLDP Authors.
//
// Shared helpers for the experiment harnesses: flag parsing (--quick /
// --full / --out=... / --json ...), result persistence, and an opt-in
// operator-new counting hook. Every harness prints the paper-style series
// to stdout, optionally writes a CSV next to it, and optionally emits a
// machine-readable JSON document — the format CI archives as an artifact
// so the performance trajectory of a branch is diffable run over run.
//
// Allocation tracking: define PLDP_ENABLE_ALLOC_HOOK before including this
// header in the main translation unit of a binary (exactly one TU per
// binary — replacement operator new/delete must have a single definition)
// to route global operator new/delete through counting wrappers. The hook
// is how allocations/event and bytes/event get measured without any
// instrumentation in the library itself, and how the allocation-regression
// test asserts the steady-state hot path is allocation-free. It
// auto-disables under sanitizers (they own the allocator);
// `kAllocHookActive` tells callers whether counts are real.

#ifndef PLDP_BENCH_BENCH_UTIL_H_
#define PLDP_BENCH_BENCH_UTIL_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "quality/report.h"

// Sanitizers replace the allocator themselves; a user-replaced operator
// new under ASan/TSan/MSan would fight their interceptors.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PLDP_ALLOC_HOOK_VIABLE 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define PLDP_ALLOC_HOOK_VIABLE 0
#else
#define PLDP_ALLOC_HOOK_VIABLE 1
#endif
#else
#define PLDP_ALLOC_HOOK_VIABLE 1
#endif

namespace pldp {
namespace bench {

/// Snapshot of the counting hook.
struct AllocCounters {
  unsigned long long allocs = 0;
  unsigned long long bytes = 0;
};

#if defined(PLDP_ENABLE_ALLOC_HOOK) && PLDP_ALLOC_HOOK_VIABLE

inline constexpr bool kAllocHookActive = true;

namespace alloc_hook_internal {
// Relaxed atomics: counts only need to be complete at the (synchronized)
// read points, after the pipeline's own drain barriers.
inline std::atomic<bool> g_counting{false};
inline std::atomic<unsigned long long> g_allocs{0};
inline std::atomic<unsigned long long> g_bytes{0};

inline void Note(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    g_bytes.fetch_add(size, std::memory_order_relaxed);
  }
}
}  // namespace alloc_hook_internal

/// Starts/stops counting (process-wide, all threads).
inline void SetAllocCounting(bool on) {
  alloc_hook_internal::g_counting.store(on, std::memory_order_relaxed);
}

inline void ResetAllocCounters() {
  alloc_hook_internal::g_allocs.store(0, std::memory_order_relaxed);
  alloc_hook_internal::g_bytes.store(0, std::memory_order_relaxed);
}

inline AllocCounters GetAllocCounters() {
  return {alloc_hook_internal::g_allocs.load(std::memory_order_relaxed),
          alloc_hook_internal::g_bytes.load(std::memory_order_relaxed)};
}

#else

inline constexpr bool kAllocHookActive = false;
inline void SetAllocCounting(bool) {}
inline void ResetAllocCounters() {}
inline AllocCounters GetAllocCounters() { return {}; }

#endif  // PLDP_ENABLE_ALLOC_HOOK && PLDP_ALLOC_HOOK_VIABLE

/// Effort scaling shared by the harnesses.
enum class Effort { kQuick, kDefault, kFull };

struct HarnessArgs {
  Effort effort = Effort::kDefault;
  /// CSV output path; empty = stdout only.
  std::string csv_out;
  /// JSON output path; empty = no JSON.
  std::string json_out;
  /// Pin worker threads round-robin to this many cores (0 = no pinning).
  /// Harnesses that build pipelines forward this via WithCoreAffinity.
  size_t cores = 0;
};

inline HarnessArgs ParseArgs(int argc, char** argv) {
  HarnessArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.effort = Effort::kQuick;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      args.effort = Effort::kFull;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      args.csv_out = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      args.json_out = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_out = argv[++i];
    } else if (std::strncmp(argv[i], "--cores=", 8) == 0) {
      args.cores = static_cast<size_t>(std::strtoul(argv[i] + 8, nullptr, 10));
    } else if (std::strcmp(argv[i], "--cores") == 0 && i + 1 < argc) {
      args.cores = static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s' (supported: --quick --full --out=F "
                   "--json F --cores N)\n",
                   argv[i]);
    }
  }
  return args;
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// A cell that fully parses as a finite double is emitted as a bare JSON
/// number; everything else is emitted as a string.
inline std::string JsonCell(const std::string& cell) {
  if (!cell.empty()) {
    char* end = nullptr;
    std::strtod(cell.c_str(), &end);
    if (end != nullptr && *end == '\0' &&
        cell.find_first_of("nN") == std::string::npos) {  // no nan/inf
      return cell;
    }
  }
  return "\"" + JsonEscape(cell) + "\"";
}

/// Writes {"schema_version":2,"title":...,"columns":[...],"rows":[[...]]}.
/// Schema history: v1 had no affinity columns; v2 adds `cores` (the
/// --cores pinning budget, 0 = unpinned) and park counters to the
/// runtime-throughput table.
inline Status WriteJson(const ResultTable& table, const std::string& path,
                        const std::string& title) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open JSON output file: " + path);
  }
  std::fprintf(f, "{\n  \"schema_version\": 2,\n  \"title\": \"%s\",\n",
               JsonEscape(title).c_str());
  std::fprintf(f, "  \"columns\": [");
  for (size_t i = 0; i < table.headers().size(); ++i) {
    std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ",
                 JsonEscape(table.headers()[i]).c_str());
  }
  std::fprintf(f, "],\n  \"rows\": [\n");
  for (size_t r = 0; r < table.rows().size(); ++r) {
    std::fprintf(f, "    [");
    const auto& row = table.rows()[r];
    for (size_t i = 0; i < row.size(); ++i) {
      std::fprintf(f, "%s%s", i == 0 ? "" : ", ", JsonCell(row[i]).c_str());
    }
    std::fprintf(f, "]%s\n", r + 1 == table.rows().size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return Status::OK();
}

/// Prints the table and writes the CSV/JSON when requested. Returns 0/1
/// for main().
inline int EmitTable(const ResultTable& table, const HarnessArgs& args,
                     const std::string& title) {
  std::printf("== %s ==\n%s\n", title.c_str(), table.ToString().c_str());
  if (!args.csv_out.empty()) {
    Status s = table.WriteCsv(args.csv_out);
    if (!s.ok()) {
      std::fprintf(stderr, "CSV write failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("(written to %s)\n", args.csv_out.c_str());
  }
  if (!args.json_out.empty()) {
    Status s = WriteJson(table, args.json_out, title);
    if (!s.ok()) {
      std::fprintf(stderr, "JSON write failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("(JSON written to %s)\n", args.json_out.c_str());
  }
  return 0;
}

}  // namespace bench
}  // namespace pldp

#if defined(PLDP_ENABLE_ALLOC_HOOK) && PLDP_ALLOC_HOOK_VIABLE

// Replacement global allocation functions (the full C++17 set, so every
// allocation path is counted and every deallocation matches malloc/free).
// Deliberately not `inline`: the standard forbids inline replacement
// functions, which is why the hook may be enabled in only one translation
// unit per binary.

void* operator new(std::size_t size) {
  pldp::bench::alloc_hook_internal::Note(size);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  pldp::bench::alloc_hook_internal::Note(size);
  return std::malloc(size == 0 ? 1 : size);
}

void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}

void* operator new(std::size_t size, std::align_val_t align) {
  pldp::bench::alloc_hook_internal::Note(size);
  const std::size_t alignment =
      static_cast<std::size_t>(align) < sizeof(void*)
          ? sizeof(void*)
          : static_cast<std::size_t>(align);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  try {
    return ::operator new(size, align);
  } catch (...) {
    return nullptr;
  }
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t& t) noexcept {
  return ::operator new(size, align, t);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // PLDP_ENABLE_ALLOC_HOOK && PLDP_ALLOC_HOOK_VIABLE

#endif  // PLDP_BENCH_BENCH_UTIL_H_
