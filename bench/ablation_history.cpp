// Copyright 2026 The PLDP Authors.
//
// Ablation A5: how much history does the adaptive PPM need?
//
// Algorithm 1 estimates quality on historical windows; with too little
// history the Monte-Carlo estimates are noisy and the search can lock in a
// bad skew. Sweeps the history size and reports the tuned allocation's
// held-out quality vs the uniform baseline.

#include <cstdio>

#include "bench_util.h"
#include "core/pldp.h"

namespace pldp {
namespace {

int Run(const bench::HarnessArgs& args) {
  size_t trials = args.effort == bench::Effort::kQuick ? 16u : 48u;
  size_t probe_trials = args.effort == bench::Effort::kQuick ? 64u : 256u;

  SyntheticOptions opt;
  opt.num_windows = 1200;
  auto generated = GenerateSynthetic(opt, 321);
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }
  Dataset& ds = generated->dataset;

  // Held-out probe set: the last 600 windows, never used for tuning.
  std::vector<Window> probe(ds.windows.begin() + 600, ds.windows.end());

  const Pattern& priv = ds.patterns.Get(ds.private_patterns[0]);

  ResultTable table({"history_windows", "Q_uniform", "Q_adaptive", "gain"});
  for (size_t hist_size : {10u, 25u, 50u, 100u, 200u, 400u, 600u}) {
    std::vector<Window> history(ds.windows.begin(),
                                ds.windows.begin() +
                                    static_cast<ptrdiff_t>(hist_size));
    MechanismContext tune_ctx;
    tune_ctx.event_types = &ds.event_types;
    tune_ctx.patterns = &ds.patterns;
    tune_ctx.private_patterns = ds.private_patterns;
    tune_ctx.target_patterns = ds.target_patterns;
    tune_ctx.epsilon = 2.0;
    tune_ctx.alpha = 0.5;
    tune_ctx.history = &history;

    AdaptivePpmOptions aopt;
    aopt.trials = trials;
    auto tuned = BidirectionalStepwiseSearch(priv, tune_ctx, aopt);
    if (!tuned.ok()) return 1;
    auto uniform = BudgetAllocation::Uniform(tune_ctx.epsilon, priv.length());
    if (!uniform.ok()) return 1;

    // Score both on the held-out probe set.
    MechanismContext probe_ctx = tune_ctx;
    probe_ctx.history = &probe;
    auto qt =
        EvaluateAllocationQuality(*tuned, priv, probe_ctx, probe_trials, 99);
    auto qu = EvaluateAllocationQuality(*uniform, priv, probe_ctx,
                                        probe_trials, 99);
    if (!qt.ok() || !qu.ok()) return 1;
    (void)table.AddRow(StrFormat("%zu", hist_size), {*qu, *qt, *qt - *qu});
  }
  return bench::EmitTable(
      table, args, "Ablation A5: adaptive tuning vs history size (eps=2)");
}

}  // namespace
}  // namespace pldp

int main(int argc, char** argv) {
  return pldp::Run(pldp::bench::ParseArgs(argc, argv));
}
