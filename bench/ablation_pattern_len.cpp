// Copyright 2026 The PLDP Authors.
//
// Ablation A2: effect of private-pattern length m on the uniform PPM at a
// fixed pattern-level budget ε. Theorem 1 splits ε over m elements
// (ε_i = ε/m), so longer private patterns get noisier per-element bits and
// the MRE of overlapping target queries grows with m.
//
// Construction: m event types form the private pattern; the target pattern
// is identical (full overlap) so every element's noise hits the query.

#include <cstdio>

#include "bench_util.h"
#include "core/pldp.h"

namespace pldp {
namespace {

Dataset BuildDataset(size_t m, uint64_t seed) {
  Dataset ds;
  const size_t kTypes = 8;
  ds.event_types = EventTypeRegistry::MakeDense(kTypes, "t");
  std::vector<EventTypeId> elems;
  for (size_t i = 0; i < m; ++i) elems.push_back(static_cast<EventTypeId>(i));
  ds.private_patterns.push_back(
      ds.patterns
          .Register(Pattern::Create("priv", elems,
                                    DetectionMode::kConjunction)
                        .value())
          .value());
  ds.target_patterns.push_back(
      ds.patterns
          .Register(Pattern::Create("tgt", elems,
                                    DetectionMode::kConjunction)
                        .value())
          .value());
  Rng rng(seed);
  for (size_t w = 0; w < 600; ++w) {
    Window win;
    win.start = static_cast<Timestamp>(w);
    win.end = win.start + 1;
    for (size_t t = 0; t < kTypes; ++t) {
      if (rng.Bernoulli(0.7)) {
        win.events.emplace_back(static_cast<EventTypeId>(t), win.start);
      }
    }
    ds.windows.push_back(std::move(win));
  }
  return ds;
}

int Run(const bench::HarnessArgs& args) {
  size_t repetitions = args.effort == bench::Effort::kQuick ? 8u : 24u;
  const std::vector<double> epsilons = {0.5, 1.0, 2.0, 5.0};

  std::vector<std::string> headers = {"pattern_len"};
  for (double e : epsilons) headers.push_back(StrFormat("eps=%.1f", e));
  ResultTable table(headers);

  for (size_t m = 1; m <= 6; ++m) {
    Dataset ds = BuildDataset(m, 400 + m);
    std::vector<double> row;
    for (double eps : epsilons) {
      EvaluationConfig cfg;
      cfg.mechanism = "uniform";
      cfg.epsilon = eps;
      cfg.repetitions = repetitions;
      auto r = RunEvaluation(ds, cfg);
      if (!r.ok()) {
        std::fprintf(stderr, "m=%zu: %s\n", m,
                     r.status().ToString().c_str());
        return 1;
      }
      row.push_back(r->mre.mean());
    }
    (void)table.AddRow(StrFormat("m=%zu", m), row);
  }
  return bench::EmitTable(
      table, args, "Ablation A2: uniform-PPM MRE vs private pattern length");
}

}  // namespace
}  // namespace pldp

int main(int argc, char** argv) {
  return pldp::Run(pldp::bench::ParseArgs(argc, argv));
}
