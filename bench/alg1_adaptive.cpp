// Copyright 2026 The PLDP Authors.
//
// Experiment E4: behaviour of Algorithm 1 (bidirectional stepwise budget
// distribution).
//
//  Part 1 — quality gain: tuned vs uniform allocation quality on held-out
//  windows, across privacy budgets.
//  Part 2 — step-size ablation: the paper suggests δε = m·ε/100; sweep a
//  factor around it and report the tuned quality.

#include <cstdio>

#include "bench_util.h"
#include "core/pldp.h"

namespace pldp {
namespace {

int Run(const bench::HarnessArgs& args) {
  size_t trials = args.effort == bench::Effort::kQuick ? 16u : 48u;
  size_t probe_trials = args.effort == bench::Effort::kQuick ? 64u : 256u;

  // A workload where skew pays: private pattern {0,1,2}; targets overlap
  // only on element 0, so the optimizer should favour ε_0.
  SyntheticOptions opt;
  opt.num_windows = 600;
  auto generated = GenerateSynthetic(opt, 99);
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }
  Dataset& ds = generated->dataset;
  auto split = ds.SplitHistory(0.5);
  if (!split.ok()) return 1;

  MechanismContext ctx;
  ctx.event_types = &ds.event_types;
  ctx.patterns = &ds.patterns;
  ctx.private_patterns = ds.private_patterns;
  ctx.target_patterns = ds.target_patterns;
  ctx.alpha = 0.5;
  ctx.history = &split->first;

  const Pattern& priv = ds.patterns.Get(ds.private_patterns[0]);

  // Part 1: tuned vs uniform quality across budgets.
  ResultTable gain({"epsilon", "Q_uniform", "Q_adaptive", "gain"});
  for (double eps : {0.5, 1.0, 2.0, 5.0}) {
    ctx.epsilon = eps;
    AdaptivePpmOptions aopt;
    aopt.trials = trials;
    auto tuned = BidirectionalStepwiseSearch(priv, ctx, aopt);
    if (!tuned.ok()) return 1;
    auto uniform = BudgetAllocation::Uniform(eps, priv.length());
    if (!uniform.ok()) return 1;
    auto qt = EvaluateAllocationQuality(*tuned, priv, ctx, probe_trials,
                                        31337);
    auto qu = EvaluateAllocationQuality(*uniform, priv, ctx, probe_trials,
                                        31337);
    if (!qt.ok() || !qu.ok()) return 1;
    (void)gain.AddRow(StrFormat("%.1f", eps),
                      {*qu, *qt, *qt - *qu});
  }
  int rc = bench::EmitTable(gain, args,
                            "Algorithm 1: tuned vs uniform quality");

  // Part 2: step-size ablation around the paper's δε = m·ε/100.
  ctx.epsilon = 1.0;
  double paper_step =
      static_cast<double>(priv.length()) * ctx.epsilon / 100.0;
  ResultTable steps({"step_factor", "step_eps", "Q_adaptive"});
  for (double factor : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    AdaptivePpmOptions aopt;
    aopt.trials = trials;
    aopt.step_epsilon = paper_step * factor;
    auto tuned = BidirectionalStepwiseSearch(priv, ctx, aopt);
    if (!tuned.ok()) return 1;
    auto q = EvaluateAllocationQuality(*tuned, priv, ctx, probe_trials,
                                       31337);
    if (!q.ok()) return 1;
    (void)steps.AddRow(StrFormat("%.2fx", factor),
                       {aopt.step_epsilon, *q});
  }
  bench::HarnessArgs step_args;
  step_args.effort = args.effort;
  rc |= bench::EmitTable(steps, step_args,
                         "Algorithm 1: step-size δε ablation (ε=1)");
  return rc;
}

}  // namespace
}  // namespace pldp

int main(int argc, char** argv) {
  return pldp::Run(pldp::bench::ParseArgs(argc, argv));
}
