// Copyright 2026 The PLDP Authors.
//
// Ablation A3: effect of private∩target overlap on data quality.
//
// The paper constructs its datasets so that private and target patterns
// overlap ("the evaluation is meaningful only if they are dependent").
// This ablation quantifies why: the uniform PPM damages a target query only
// through shared element types. With 0 shared types the MRE is ~0; with all
// 3 shared it is maximal. Stream-level baselines stay flat — they noise
// everything regardless of overlap.

#include <cstdio>

#include "bench_util.h"
#include "core/pldp.h"

namespace pldp {
namespace {

/// 9 types; private = {0,1,2}; target shares `k` of its 3 elements.
Dataset BuildDataset(size_t overlap_k, uint64_t seed) {
  Dataset ds;
  const size_t kTypes = 9;
  ds.event_types = EventTypeRegistry::MakeDense(kTypes, "t");
  ds.private_patterns.push_back(
      ds.patterns
          .Register(Pattern::Create("priv", {0, 1, 2},
                                    DetectionMode::kConjunction)
                        .value())
          .value());
  std::vector<EventTypeId> tgt;
  for (size_t i = 0; i < overlap_k; ++i) {
    tgt.push_back(static_cast<EventTypeId>(i));  // shared with private
  }
  for (size_t i = overlap_k; i < 3; ++i) {
    tgt.push_back(static_cast<EventTypeId>(3 + i));  // disjoint
  }
  ds.target_patterns.push_back(
      ds.patterns
          .Register(
              Pattern::Create("tgt", tgt, DetectionMode::kConjunction)
                  .value())
          .value());
  Rng rng(seed);
  for (size_t w = 0; w < 600; ++w) {
    Window win;
    win.start = static_cast<Timestamp>(w);
    win.end = win.start + 1;
    for (size_t t = 0; t < kTypes; ++t) {
      if (rng.Bernoulli(0.7)) {
        win.events.emplace_back(static_cast<EventTypeId>(t), win.start);
      }
    }
    ds.windows.push_back(std::move(win));
  }
  return ds;
}

int Run(const bench::HarnessArgs& args) {
  size_t repetitions = args.effort == bench::Effort::kQuick ? 8u : 24u;
  const std::vector<std::string> mechanisms = {"uniform", "bd"};

  std::vector<std::string> headers = {"shared_elements"};
  for (const auto& m : mechanisms) headers.push_back("mre_" + m);
  ResultTable table(headers);

  for (size_t k = 0; k <= 3; ++k) {
    Dataset ds = BuildDataset(k, 500 + k);
    std::vector<double> row;
    for (const std::string& mech : mechanisms) {
      EvaluationConfig cfg;
      cfg.mechanism = mech;
      cfg.epsilon = 1.0;
      cfg.repetitions = repetitions;
      auto r = RunEvaluation(ds, cfg);
      if (!r.ok()) {
        std::fprintf(stderr, "k=%zu %s: %s\n", k, mech.c_str(),
                     r.status().ToString().c_str());
        return 1;
      }
      row.push_back(r->mre.mean());
    }
    (void)table.AddRow(StrFormat("%zu/3", k), row);
  }
  return bench::EmitTable(
      table, args,
      "Ablation A3: MRE vs private/target overlap (eps=1)");
}

}  // namespace
}  // namespace pldp

int main(int argc, char** argv) {
  return pldp::Run(pldp::bench::ParseArgs(argc, argv));
}
