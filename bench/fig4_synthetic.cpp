// Copyright 2026 The PLDP Authors.
//
// Reproduces Fig. 4 (synthetic panel): MRE vs privacy budget ε for the two
// pattern-level PPMs (uniform, adaptive) and the three stream-DP baselines
// (BD, BA, landmark) on the Algorithm-2 synthetic dataset.
//
// Paper setup: 20 event types with Pr(e_i) ~ U(0,1); 1000 windows; 20
// patterns of 3 events; 3 private, 5 target; α = 0.5. The paper repeats
// Algorithm 2 to produce many dataset instances; we average the MRE over
// several dataset seeds × mechanism repetitions.
//
// Expected shape (not absolute numbers): uniform and adaptive MRE well
// below every baseline at equal pattern-level ε; adaptive <= uniform; all
// series decreasing in ε.
//
// Flags: --quick (CI-speed), --full (more seeds/reps), --out=FILE.csv

#include <cstdio>

#include "bench_util.h"
#include "core/pldp.h"

namespace pldp {
namespace {

int Run(const bench::HarnessArgs& args) {
  size_t dataset_seeds = 3;
  size_t repetitions = 16;
  size_t adaptive_trials = 32;
  if (args.effort == bench::Effort::kQuick) {
    dataset_seeds = 1;
    repetitions = 6;
    adaptive_trials = 8;
  } else if (args.effort == bench::Effort::kFull) {
    dataset_seeds = 10;
    repetitions = 30;
    adaptive_trials = 64;
  }

  const std::vector<double> epsilons = {0.1, 0.5, 1.0, 2.0, 5.0, 10.0};
  const std::vector<std::string> mechanisms = AllMechanismNames();

  // Accumulate mean MRE over dataset instances.
  std::vector<std::vector<RunningStats>> agg(
      mechanisms.size(), std::vector<RunningStats>(epsilons.size()));

  for (size_t seed = 0; seed < dataset_seeds; ++seed) {
    SyntheticOptions opt;  // the paper's defaults
    auto generated = GenerateSynthetic(opt, 1000 + seed);
    if (!generated.ok()) {
      std::fprintf(stderr, "generator failed: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    EvaluationConfig cfg;
    cfg.alpha = 0.5;
    cfg.repetitions = repetitions;
    cfg.seed = 77 + seed;
    cfg.mechanism_options.adaptive.trials = adaptive_trials;
    auto sweep =
        SweepEpsilons(generated->dataset, mechanisms, epsilons, cfg);
    if (!sweep.ok()) {
      std::fprintf(stderr, "sweep failed: %s\n",
                   sweep.status().ToString().c_str());
      return 1;
    }
    for (size_t m = 0; m < mechanisms.size(); ++m) {
      for (size_t e = 0; e < epsilons.size(); ++e) {
        agg[m][e].Add(sweep->mre[m][e]);
      }
    }
    std::printf("dataset seed %zu/%zu done\n", seed + 1, dataset_seeds);
  }

  std::vector<std::string> headers = {"mechanism"};
  for (double e : epsilons) headers.push_back(StrFormat("eps=%.1f", e));
  ResultTable table(headers);
  for (size_t m = 0; m < mechanisms.size(); ++m) {
    std::vector<double> row;
    for (size_t e = 0; e < epsilons.size(); ++e) {
      row.push_back(agg[m][e].mean());
    }
    (void)table.AddRow(mechanisms[m], row);
  }
  return bench::EmitTable(table, args,
                          "Fig. 4 (synthetic): MRE vs pattern-level ε");
}

}  // namespace
}  // namespace pldp

int main(int argc, char** argv) {
  return pldp::Run(pldp::bench::ParseArgs(argc, argv));
}
