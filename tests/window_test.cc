// Copyright 2026 The PLDP Authors.
//
// Tests for windowing: tumbling, sliding, and count windows, including the
// coverage property every windower must satisfy (each event lands in the
// windows whose bounds contain it).

#include "stream/window.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace pldp {
namespace {

EventStream MakeStream(std::initializer_list<Timestamp> timestamps) {
  EventStream s;
  EventTypeId t = 0;
  for (Timestamp ts : timestamps) {
    s.AppendUnchecked(Event(t++ % 3, ts));
  }
  return s;
}

TEST(WindowTest, ContainsAndCountType) {
  Window w;
  w.events = {Event(0, 1), Event(1, 2), Event(0, 3)};
  EXPECT_TRUE(w.ContainsType(0));
  EXPECT_TRUE(w.ContainsType(1));
  EXPECT_FALSE(w.ContainsType(2));
  EXPECT_EQ(w.CountType(0), 2u);
  EXPECT_EQ(w.CountType(2), 0u);
}

TEST(TumblingWindowerTest, PartitionsStream) {
  auto s = MakeStream({0, 1, 9, 10, 11, 25});
  TumblingWindower w(10);
  auto windows = w.Apply(s).value();
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].start, 0);
  EXPECT_EQ(windows[0].end, 10);
  EXPECT_EQ(windows[0].events.size(), 3u);
  EXPECT_EQ(windows[1].events.size(), 2u);
  EXPECT_EQ(windows[2].events.size(), 1u);
}

TEST(TumblingWindowerTest, EmitsEmptyMiddleWindows) {
  auto s = MakeStream({0, 35});
  TumblingWindower w(10);
  auto windows = w.Apply(s).value();
  ASSERT_EQ(windows.size(), 4u);
  EXPECT_TRUE(windows[1].events.empty());
  EXPECT_TRUE(windows[2].events.empty());
  EXPECT_EQ(windows[3].events.size(), 1u);
}

TEST(TumblingWindowerTest, EmptyStreamNoWindows) {
  TumblingWindower w(10);
  EXPECT_TRUE(w.Apply(EventStream()).value().empty());
}

TEST(TumblingWindowerTest, RejectsNonPositiveSize) {
  TumblingWindower w(0);
  EXPECT_FALSE(w.Apply(MakeStream({1})).ok());
}

TEST(TumblingWindowerTest, NegativeTimestampsAligned) {
  auto s = MakeStream({-15, -5, 5});
  TumblingWindower w(10);
  auto windows = w.Apply(s).value();
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].start, -20);
  EXPECT_EQ(windows[0].events.size(), 1u);
  EXPECT_EQ(windows[1].start, -10);
  EXPECT_EQ(windows[2].start, 0);
}

TEST(TumblingWindowerTest, OriginShiftsAlignment) {
  auto s = MakeStream({0, 4, 5, 9});
  TumblingWindower w(10, /*origin=*/5);
  auto windows = w.Apply(s).value();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].start, -5);
  EXPECT_EQ(windows[0].events.size(), 2u);  // ts 0, 4
  EXPECT_EQ(windows[1].start, 5);
  EXPECT_EQ(windows[1].events.size(), 2u);  // ts 5, 9
}

TEST(TumblingWindowerTest, EveryEventCoveredExactlyOnce) {
  Rng rng(3);
  EventStream s;
  Timestamp ts = -50;
  for (int i = 0; i < 300; ++i) {
    ts += static_cast<Timestamp>(rng.UniformUint64(4));
    s.AppendUnchecked(Event(0, ts));
  }
  TumblingWindower w(7);
  auto windows = w.Apply(s).value();
  size_t covered = 0;
  for (const Window& win : windows) {
    EXPECT_EQ(win.end - win.start, 7);
    for (const Event& e : win.events) {
      EXPECT_GE(e.timestamp(), win.start);
      EXPECT_LT(e.timestamp(), win.end);
    }
    covered += win.events.size();
  }
  EXPECT_EQ(covered, s.size());
}

TEST(SlidingWindowerTest, OverlappingWindows) {
  auto s = MakeStream({0, 5, 10, 15});
  SlidingWindower w(/*size=*/10, /*slide=*/5);
  auto windows = w.Apply(s).value();
  // Starts: -5, 0, 5, 10, 15.
  ASSERT_GE(windows.size(), 4u);
  for (size_t i = 1; i < windows.size(); ++i) {
    EXPECT_EQ(windows[i].start - windows[i - 1].start, 5);
  }
  // The event at ts=5 must be in the windows starting at -5, 0, 5.
  int count = 0;
  for (const Window& win : windows) {
    for (const Event& e : win.events) {
      if (e.timestamp() == 5) ++count;
    }
  }
  EXPECT_EQ(count, 2);  // windows [-5,5) exclude 5; [0,10) and [5,15) include
}

TEST(SlidingWindowerTest, SlideEqualsSizeIsTumbling) {
  auto s = MakeStream({0, 3, 12, 19});
  SlidingWindower sw(10, 10);
  TumblingWindower tw(10);
  auto a = sw.Apply(s).value();
  auto b = tw.Apply(s).value();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].events.size(), b[i].events.size());
  }
}

TEST(SlidingWindowerTest, EachEventAppearsInSizeOverSlideWindows) {
  auto s = MakeStream({50});
  SlidingWindower w(/*size=*/12, /*slide=*/3);
  auto windows = w.Apply(s).value();
  size_t appearances = 0;
  for (const Window& win : windows) appearances += win.events.size();
  EXPECT_EQ(appearances, 4u);  // size/slide = 4 covering windows
}

TEST(SlidingWindowerTest, RejectsBadParameters) {
  SlidingWindower w0(0, 5);
  EXPECT_FALSE(w0.Apply(MakeStream({1})).ok());
  SlidingWindower w1(5, 0);
  EXPECT_FALSE(w1.Apply(MakeStream({1})).ok());
}

TEST(CountWindowerTest, FixedSizeChunks) {
  auto s = MakeStream({1, 2, 3, 4, 5, 6, 7});
  CountWindower w(3);
  auto windows = w.Apply(s).value();
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].events.size(), 3u);
  EXPECT_EQ(windows[1].events.size(), 3u);
  EXPECT_EQ(windows[2].events.size(), 1u);  // partial tail kept
}

TEST(CountWindowerTest, DropPartialTail) {
  auto s = MakeStream({1, 2, 3, 4, 5, 6, 7});
  CountWindower w(3, /*drop_partial=*/true);
  EXPECT_EQ(w.Apply(s).value().size(), 2u);
}

TEST(CountWindowerTest, RejectsZeroCount) {
  CountWindower w(0);
  EXPECT_FALSE(w.Apply(MakeStream({1})).ok());
}

TEST(WindowerToStringTest, Descriptions) {
  EXPECT_EQ(TumblingWindower(10).ToString(), "tumbling(size=10)");
  EXPECT_EQ(SlidingWindower(10, 5).ToString(), "sliding(size=10,slide=5)");
  EXPECT_EQ(CountWindower(3).ToString(), "count(n=3)");
}

/// Parameterized coverage sweep: for random streams and window parameters,
/// the union of sliding windows covers each event exactly ceil(size/slide)
/// times (when aligned slides divide size).
class SlidingCoverageSweep
    : public ::testing::TestWithParam<std::pair<Timestamp, Timestamp>> {};

TEST_P(SlidingCoverageSweep, EventCoverageMatchesRatio) {
  auto [size, slide] = GetParam();
  Rng rng(static_cast<uint64_t>(size * 1000 + slide));
  EventStream s;
  Timestamp ts = 0;
  for (int i = 0; i < 100; ++i) {
    ts += 1 + static_cast<Timestamp>(rng.UniformUint64(3));
    s.AppendUnchecked(Event(0, ts));
  }
  SlidingWindower w(size, slide);
  auto windows = w.Apply(s).value();
  size_t appearances = 0;
  for (const Window& win : windows) appearances += win.events.size();
  EXPECT_EQ(appearances, s.size() * static_cast<size_t>(size / slide));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSlides, SlidingCoverageSweep,
    ::testing::Values(std::make_pair<Timestamp, Timestamp>(10, 5),
                      std::make_pair<Timestamp, Timestamp>(12, 3),
                      std::make_pair<Timestamp, Timestamp>(8, 2),
                      std::make_pair<Timestamp, Timestamp>(6, 6),
                      std::make_pair<Timestamp, Timestamp>(20, 4)));

}  // namespace
}  // namespace pldp
