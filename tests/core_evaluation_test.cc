// Copyright 2026 The PLDP Authors.
//
// Tests for the evaluation pipeline: MRE semantics, determinism, ε
// monotonicity, and the sweep table.

#include "core/evaluation.h"

#include <gtest/gtest.h>

#include "datasets/synthetic.h"

namespace pldp {
namespace {

Dataset SmallDataset(uint64_t seed = 3) {
  SyntheticOptions opt;
  opt.num_windows = 200;
  return GenerateSynthetic(opt, seed).value().dataset;
}

EvaluationConfig FastConfig() {
  EvaluationConfig cfg;
  cfg.repetitions = 5;
  cfg.mechanism_options.adaptive.trials = 8;
  cfg.mechanism_options.adaptive.max_rounds = 4;
  return cfg;
}

TEST(RunEvaluationTest, PassthroughHasZeroMre) {
  Dataset ds = SmallDataset();
  EvaluationConfig cfg = FastConfig();
  cfg.mechanism = "passthrough";
  auto r = RunEvaluation(ds, cfg).value();
  EXPECT_DOUBLE_EQ(r.mre.mean(), 0.0);
  EXPECT_DOUBLE_EQ(r.q_ppm.mean(), 1.0);
  EXPECT_DOUBLE_EQ(r.precision.mean(), 1.0);
  EXPECT_DOUBLE_EQ(r.recall.mean(), 1.0);
}

TEST(RunEvaluationTest, ValidatesConfig) {
  Dataset ds = SmallDataset();
  EvaluationConfig cfg = FastConfig();
  cfg.repetitions = 0;
  EXPECT_TRUE(RunEvaluation(ds, cfg).status().IsInvalidArgument());

  Dataset no_priv = SmallDataset();
  no_priv.private_patterns.clear();
  EXPECT_TRUE(
      RunEvaluation(no_priv, FastConfig()).status().IsInvalidArgument());
}

TEST(RunEvaluationTest, UnknownMechanismPropagates) {
  Dataset ds = SmallDataset();
  EvaluationConfig cfg = FastConfig();
  cfg.mechanism = "nonsense";
  EXPECT_TRUE(RunEvaluation(ds, cfg).status().IsNotFound());
}

TEST(RunEvaluationTest, DeterministicGivenSeed) {
  Dataset ds = SmallDataset();
  EvaluationConfig cfg = FastConfig();
  cfg.mechanism = "uniform";
  cfg.epsilon = 1.0;
  auto a = RunEvaluation(ds, cfg).value();
  auto b = RunEvaluation(ds, cfg).value();
  EXPECT_DOUBLE_EQ(a.mre.mean(), b.mre.mean());
  EXPECT_DOUBLE_EQ(a.q_ppm.mean(), b.q_ppm.mean());
}

TEST(RunEvaluationTest, MreInUnitRangeForUniform) {
  Dataset ds = SmallDataset();
  EvaluationConfig cfg = FastConfig();
  cfg.mechanism = "uniform";
  cfg.epsilon = 1.0;
  auto r = RunEvaluation(ds, cfg).value();
  EXPECT_GE(r.mre.mean(), 0.0);
  EXPECT_LE(r.mre.mean(), 1.0);
  EXPECT_GT(r.mre.mean(), 0.0);  // some damage must occur at ε=1
}

TEST(RunEvaluationTest, HigherEpsilonLowersMre) {
  Dataset ds = SmallDataset();
  EvaluationConfig cfg = FastConfig();
  cfg.repetitions = 10;
  cfg.mechanism = "uniform";

  cfg.epsilon = 0.3;
  double tight = RunEvaluation(ds, cfg).value().mre.mean();
  cfg.epsilon = 8.0;
  double loose = RunEvaluation(ds, cfg).value().mre.mean();
  EXPECT_GT(tight, loose);
}

TEST(RunEvaluationTest, RepetitionStatsAccumulate) {
  Dataset ds = SmallDataset();
  EvaluationConfig cfg = FastConfig();
  cfg.repetitions = 7;
  cfg.mechanism = "uniform";
  auto r = RunEvaluation(ds, cfg).value();
  EXPECT_EQ(r.mre.count(), 7u);
  EXPECT_EQ(r.q_ppm.count(), 7u);
}

TEST(SweepEpsilonsTest, ShapeMatchesInputs) {
  Dataset ds = SmallDataset();
  auto sweep = SweepEpsilons(ds, {"uniform", "bd"}, {0.5, 2.0, 5.0},
                             FastConfig())
                   .value();
  ASSERT_EQ(sweep.mechanisms.size(), 2u);
  ASSERT_EQ(sweep.epsilons.size(), 3u);
  ASSERT_EQ(sweep.mre.size(), 2u);
  ASSERT_EQ(sweep.mre[0].size(), 3u);
  ASSERT_EQ(sweep.mre_sem.size(), 2u);
}

TEST(SweepEpsilonsTest, ValidatesInputs) {
  Dataset ds = SmallDataset();
  EXPECT_FALSE(SweepEpsilons(ds, {}, {1.0}, FastConfig()).ok());
  EXPECT_FALSE(SweepEpsilons(ds, {"uniform"}, {}, FastConfig()).ok());
}

TEST(SweepEpsilonsTest, TableHasRowPerMechanism) {
  Dataset ds = SmallDataset();
  auto sweep =
      SweepEpsilons(ds, {"uniform"}, {1.0, 2.0}, FastConfig()).value();
  ResultTable table = sweep.ToTable();
  EXPECT_EQ(table.row_count(), 1u);
  std::string s = table.ToString();
  EXPECT_NE(s.find("uniform"), std::string::npos);
  EXPECT_NE(s.find("eps=1.00"), std::string::npos);
}

TEST(SweepEpsilonsTest, PatternLevelBeatsBaselinesAtModestEpsilon) {
  // The paper's headline claim, as a regression test.
  Dataset ds = SmallDataset();
  EvaluationConfig cfg = FastConfig();
  cfg.repetitions = 8;
  auto sweep = SweepEpsilons(ds, {"uniform", "bd", "ba"}, {1.0}, cfg).value();
  double uniform_mre = sweep.mre[0][0];
  double bd_mre = sweep.mre[1][0];
  double ba_mre = sweep.mre[2][0];
  EXPECT_LT(uniform_mre, bd_mre);
  EXPECT_LT(uniform_mre, ba_mre);
}

}  // namespace
}  // namespace pldp
