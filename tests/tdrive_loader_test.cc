// Copyright 2026 The PLDP Authors.
//
// Tests for the real-data T-Drive loader, using fixture files written in
// the genuine format.

#include "datasets/tdrive_loader.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

namespace pldp {
namespace {

class TDriveFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each TEST in its own parallel process; the directory must
    // be unique per test to avoid SetUp/TearDown races.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("pldp_tdrive_") + info->name() + "_" +
            std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string WriteFile(const std::string& name,
                        const std::string& contents) {
    std::string path = (dir_ / name).string();
    std::ofstream out(path);
    out << contents;
    return path;
  }

  TDriveOptions SmallOptions() {
    TDriveOptions opt;
    opt.grid_width = 4;
    opt.grid_height = 4;
    opt.window_seconds = 300;
    return opt;
  }

  std::filesystem::path dir_;
};

TEST(ParseTDriveLineTest, ParsesGenuineFormat) {
  auto fix = ParseTDriveLine("1131,2008-02-02 13:35:55,116.35743,39.88957")
                 .value();
  EXPECT_EQ(fix.taxi_id, 1131);
  EXPECT_NEAR(fix.longitude, 116.35743, 1e-9);
  EXPECT_NEAR(fix.latitude, 39.88957, 1e-9);
  // 2008-02-02 13:35:55 UTC.
  EXPECT_EQ(fix.unix_seconds, 1201959355);
}

TEST(ParseTDriveLineTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseTDriveLine("").ok());
  EXPECT_FALSE(ParseTDriveLine("1,2,3").ok());
  EXPECT_FALSE(ParseTDriveLine("x,2008-02-02 13:35:55,116.3,39.8").ok());
  EXPECT_FALSE(ParseTDriveLine("1,2008/02/02 13:35:55,116.3,39.8").ok());
  EXPECT_FALSE(ParseTDriveLine("1,2008-13-02 13:35:55,116.3,39.8").ok());
  EXPECT_FALSE(ParseTDriveLine("1,2008-02-02 13:35:55,abc,39.8").ok());
}

TEST(CivilToUnixSecondsTest, KnownValues) {
  EXPECT_EQ(CivilToUnixSeconds(1970, 1, 1, 0, 0, 0).value(), 0);
  EXPECT_EQ(CivilToUnixSeconds(1970, 1, 2, 0, 0, 0).value(), 86400);
  EXPECT_EQ(CivilToUnixSeconds(2000, 1, 1, 0, 0, 0).value(), 946684800);
  // Leap-year day: 2008-02-29 exists.
  EXPECT_TRUE(CivilToUnixSeconds(2008, 2, 29, 0, 0, 0).ok());
  EXPECT_FALSE(CivilToUnixSeconds(2007, 2, 29, 0, 0, 0).ok());
  EXPECT_FALSE(CivilToUnixSeconds(1969, 1, 1, 0, 0, 0).ok());
}

TEST_F(TDriveFixture, LoadsAndGridMapsFixes) {
  // Two taxis; fixes at known positions inside the default Beijing box.
  std::string f1 = WriteFile(
      "1.txt",
      "1,2008-02-02 13:30:00,116.1,39.7\n"
      "1,2008-02-02 13:35:00,116.3,39.7\n"
      "1,2008-02-02 13:40:00,116.3,39.9\n");
  std::string f2 = WriteFile(
      "2.txt", "2,2008-02-02 13:32:00,116.7,40.1\n");
  auto ds = LoadTDriveFiles({f1, f2}, SmallOptions()).value();
  EXPECT_EQ(ds.merged_stream.size(), 4u);
  EXPECT_TRUE(ds.merged_stream.IsTemporallyOrdered());
  // Grid 4x4 over lon [116, 116.8), lat [39.6, 40.2):
  // (116.1, 39.7) -> x=0, y=0 -> cell 0.
  EXPECT_EQ(ds.merged_stream[0].GetAttribute("cell")->AsInt().value(), 0);
  EXPECT_EQ(ds.dataset.event_types.size(), 16u);
  EXPECT_FALSE(ds.dataset.windows.empty());
  EXPECT_FALSE(ds.dataset.private_patterns.empty());
  EXPECT_FALSE(ds.dataset.target_patterns.empty());
}

TEST_F(TDriveFixture, DropsOutOfBoundsFixes) {
  std::string f = WriteFile(
      "1.txt",
      "1,2008-02-02 13:30:00,0.0,0.0\n"          // far outside Beijing
      "1,2008-02-02 13:35:00,116.3,39.9\n");
  auto ds = LoadTDriveFiles({f}, SmallOptions()).value();
  EXPECT_EQ(ds.merged_stream.size(), 1u);
}

TEST_F(TDriveFixture, AllOutOfBoundsIsAnError) {
  std::string f = WriteFile("1.txt", "1,2008-02-02 13:30:00,0.0,0.0\n");
  EXPECT_TRUE(
      LoadTDriveFiles({f}, SmallOptions()).status().IsInvalidArgument());
}

TEST_F(TDriveFixture, SortsClockRegressions) {
  // Real files occasionally contain out-of-order timestamps.
  std::string f = WriteFile(
      "1.txt",
      "1,2008-02-02 13:40:00,116.3,39.9\n"
      "1,2008-02-02 13:30:00,116.1,39.7\n");
  auto ds = LoadTDriveFiles({f}, SmallOptions()).value();
  EXPECT_TRUE(ds.merged_stream.IsTemporallyOrdered());
}

TEST_F(TDriveFixture, MalformedLineReportsFileAndLine) {
  std::string f = WriteFile("7.txt",
                            "1,2008-02-02 13:30:00,116.1,39.7\n"
                            "garbage line\n");
  Status s = LoadTDriveFiles({f}, SmallOptions()).status();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("7.txt:2"), std::string::npos);
}

TEST_F(TDriveFixture, DirectoryLoaderFindsTxtFiles) {
  WriteFile("1.txt", "1,2008-02-02 13:30:00,116.1,39.7\n");
  WriteFile("2.txt", "2,2008-02-02 13:31:00,116.2,39.8\n");
  WriteFile("ignore.csv", "not,a,taxi,file\n");
  auto ds = LoadTDriveDirectory(dir_.string(), SmallOptions()).value();
  EXPECT_EQ(ds.merged_stream.size(), 2u);
}

TEST_F(TDriveFixture, DirectoryLoaderErrors) {
  EXPECT_TRUE(LoadTDriveDirectory("/no/such/dir", SmallOptions())
                  .status()
                  .IsIoError());
  // Empty dir: no .txt files.
  auto empty = dir_ / "empty";
  std::filesystem::create_directories(empty);
  EXPECT_TRUE(LoadTDriveDirectory(empty.string(), SmallOptions())
                  .status()
                  .IsNotFound());
}

TEST_F(TDriveFixture, MaxFilesLimitsLoad) {
  WriteFile("1.txt", "1,2008-02-02 13:30:00,116.1,39.7\n");
  WriteFile("2.txt", "2,2008-02-02 13:31:00,116.2,39.8\n");
  TDriveOptions opt = SmallOptions();
  opt.max_files = 1;
  auto ds = LoadTDriveDirectory(dir_.string(), opt).value();
  EXPECT_EQ(ds.merged_stream.size(), 1u);
}

TEST_F(TDriveFixture, AreaProportionsMatchSimulator) {
  WriteFile("1.txt", "1,2008-02-02 13:30:00,116.1,39.7\n");
  TDriveOptions opt = SmallOptions();
  opt.grid_width = 10;
  opt.grid_height = 10;
  auto ds = LoadTDriveDirectory(dir_.string(), opt).value();
  EXPECT_NEAR(static_cast<double>(ds.private_cells.size()) / 100.0, 0.2,
              0.03);
  EXPECT_NEAR(static_cast<double>(ds.target_cells.size()) / 100.0, 0.5,
              0.03);
}

TEST_F(TDriveFixture, ValidatesOptions) {
  std::string f = WriteFile("1.txt", "1,2008-02-02 13:30:00,116.1,39.7\n");
  TDriveOptions zero_grid = SmallOptions();
  zero_grid.grid_width = 0;
  EXPECT_FALSE(LoadTDriveFiles({f}, zero_grid).ok());

  TDriveOptions bad_box = SmallOptions();
  bad_box.bounds.min_longitude = 117.0;  // > max
  EXPECT_FALSE(LoadTDriveFiles({f}, bad_box).ok());

  TDriveOptions bad_window = SmallOptions();
  bad_window.window_seconds = 0;
  EXPECT_FALSE(LoadTDriveFiles({f}, bad_window).ok());

  EXPECT_FALSE(LoadTDriveFiles({}, SmallOptions()).ok());
}

}  // namespace
}  // namespace pldp
