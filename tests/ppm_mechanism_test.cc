// Copyright 2026 The PLDP Authors.
//
// Tests for the mechanism interface plumbing: true views, the binary-query
// reduction on published views, and the passthrough mechanism.

#include "ppm/mechanism.h"

#include <gtest/gtest.h>

#include "ppm/factory.h"
#include "test_util.h"

namespace pldp {
namespace {

using testing_util::AddPattern;
using testing_util::MakeWindow;
using testing_util::MakeWorld;

TEST(TrueViewTest, MarksPresentTypes) {
  Window w = MakeWindow(0, {1, 3});
  PublishedView v = TrueView(w, 5);
  EXPECT_EQ(v.presence,
            (std::vector<bool>{false, true, false, true, false}));
}

TEST(TrueViewTest, IgnoresOutOfRangeTypes) {
  Window w = MakeWindow(0, {7});
  PublishedView v = TrueView(w, 3);
  EXPECT_EQ(v.presence, (std::vector<bool>{false, false, false}));
}

TEST(PatternDetectedInViewTest, ConjunctionNeedsAllTypes) {
  Pattern p = Pattern::Create("p", {0, 2}, DetectionMode::kConjunction)
                  .value();
  PublishedView v;
  v.presence = {true, false, true};
  EXPECT_TRUE(PatternDetectedInView(v, p));
  v.presence[2] = false;
  EXPECT_FALSE(PatternDetectedInView(v, p));
}

TEST(PatternDetectedInViewTest, SequenceReducesToConjunction) {
  // Presence bits carry no order: SEQ degenerates to AND in the view.
  Pattern p = Pattern::Create("p", {2, 0}, DetectionMode::kSequence).value();
  PublishedView v;
  v.presence = {true, false, true};
  EXPECT_TRUE(PatternDetectedInView(v, p));
}

TEST(PatternDetectedInViewTest, DisjunctionNeedsAnyType) {
  Pattern p = Pattern::Create("p", {0, 1}, DetectionMode::kDisjunction)
                  .value();
  PublishedView v;
  v.presence = {false, true, false};
  EXPECT_TRUE(PatternDetectedInView(v, p));
  v.presence[1] = false;
  EXPECT_FALSE(PatternDetectedInView(v, p));
}

TEST(PatternDetectedInViewTest, OutOfRangeTypeIsAbsent) {
  Pattern p = Pattern::Create("p", {9}, DetectionMode::kConjunction).value();
  PublishedView v;
  v.presence = {true};
  EXPECT_FALSE(PatternDetectedInView(v, p));
}

TEST(PassthroughTest, PublishesTruthExactly) {
  auto world = MakeWorld(4);
  PassthroughMechanism mech;
  ASSERT_TRUE(mech.Initialize(world.Context()).ok());
  Window w = MakeWindow(0, {0, 2});
  Rng rng(1);
  PublishedView v = mech.PublishWindow(w, &rng).value();
  EXPECT_EQ(v.presence, TrueView(w, 4).presence);
}

TEST(PassthroughTest, RequiresInitialize) {
  PassthroughMechanism mech;
  Rng rng(1);
  EXPECT_TRUE(mech.PublishWindow(Window{}, &rng).status()
                  .IsFailedPrecondition());
}

TEST(PassthroughTest, InitializeValidatesContext) {
  PassthroughMechanism mech;
  MechanismContext empty;
  EXPECT_TRUE(mech.Initialize(empty).IsInvalidArgument());
}

TEST(FactoryTest, CreatesEveryKnownMechanism) {
  for (const std::string& name : AllMechanismNames()) {
    auto m = MakeMechanism(name);
    ASSERT_TRUE(m.ok()) << name;
    EXPECT_EQ((*m)->name(), name);
  }
  EXPECT_TRUE(MakeMechanism("passthrough").ok());
}

TEST(FactoryTest, UnknownNameIsNotFound) {
  EXPECT_TRUE(MakeMechanism("definitely_not_a_mechanism").status()
                  .IsNotFound());
}

TEST(FactoryTest, CanonicalOrderStable) {
  auto names = AllMechanismNames();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "uniform");
  EXPECT_EQ(names[1], "adaptive");
}

}  // namespace
}  // namespace pldp
