// Copyright 2026 The PLDP Authors.
//
// Unit tests for Status / StatusOr and the early-return macros.

#include "common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace pldp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument},
      {Status::NotFound("b"), StatusCode::kNotFound},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists},
      {Status::OutOfRange("d"), StatusCode::kOutOfRange},
      {Status::FailedPrecondition("e"), StatusCode::kFailedPrecondition},
      {Status::ResourceExhausted("f"), StatusCode::kResourceExhausted},
      {Status::Unimplemented("g"), StatusCode::kUnimplemented},
      {Status::Internal("h"), StatusCode::kInternal},
      {Status::IoError("i"), StatusCode::kIoError},
      {Status::PrivacyBudgetExceeded("j"),
       StatusCode::kPrivacyBudgetExceeded},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, PredicateHelpers) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::PrivacyBudgetExceeded("x").IsPrivacyBudgetExceeded());
  EXPECT_FALSE(Status::NotFound("x").IsInvalidArgument());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_NE(Status::NotFound("x"), Status::NotFound("y"));
  EXPECT_NE(Status::NotFound("x"), Status::Internal("x"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = Status::Internal("boom");
  Status b = a;  // shares the rep
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.message(), "boom");
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kPrivacyBudgetExceeded),
            "PrivacyBudgetExceeded");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, ValueOrFallsBack) {
  StatusOr<int> err = Status::Internal("x");
  EXPECT_EQ(err.value_or(7), 7);
  StatusOr<int> val = 3;
  EXPECT_EQ(val.value_or(7), 3);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> got = std::move(v).value();
  EXPECT_EQ(*got, 5);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

namespace macros {

Status FailIf(bool fail) {
  if (fail) return Status::Internal("inner failure");
  return Status::OK();
}

Status Outer(bool fail) {
  PLDP_RETURN_IF_ERROR(FailIf(fail));
  return Status::OK();
}

StatusOr<int> MaybeInt(bool fail) {
  if (fail) return Status::NotFound("no int");
  return 10;
}

StatusOr<int> Doubled(bool fail) {
  PLDP_ASSIGN_OR_RETURN(int x, MaybeInt(fail));
  return x * 2;
}

}  // namespace macros

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(macros::Outer(false).ok());
  Status s = macros::Outer(true);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST(StatusMacrosTest, AssignOrReturnAssignsAndPropagates) {
  StatusOr<int> ok = macros::Doubled(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 20);
  StatusOr<int> err = macros::Doubled(true);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace pldp
