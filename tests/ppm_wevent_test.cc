// Copyright 2026 The PLDP Authors.
//
// Tests for the w-event baselines (BD and BA): budget conversion, schedule
// behaviour (division vs absorption/nullification), reset semantics, and
// that — unlike the pattern-level PPMs — their noise hits every event type.

#include "ppm/w_event.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace pldp {
namespace {

using testing_util::AddPattern;
using testing_util::MakeWindow;
using testing_util::MakeWorld;
using testing_util::World;

World BaselineWorld(double epsilon = 2.0) {
  World w = MakeWorld(6);
  AddPattern(&w, "priv", {0, 1, 2}, DetectionMode::kConjunction, true, false);
  AddPattern(&w, "tgt", {3, 4}, DetectionMode::kConjunction, false, true);
  w.epsilon = epsilon;
  return w;
}

TEST(WEventPpmTest, InitializeValidates) {
  BudgetDivisionPpm ppm;
  MechanismContext empty;
  EXPECT_TRUE(ppm.Initialize(empty).IsInvalidArgument());

  World w = BaselineWorld();
  w.epsilon = 0.0;
  EXPECT_TRUE(ppm.Initialize(w.Context()).IsInvalidArgument());

  WEventOptions zero_w;
  zero_w.w = 0;
  BudgetDivisionPpm bad(zero_w);
  World ok = BaselineWorld();
  EXPECT_TRUE(bad.Initialize(ok.Context()).IsInvalidArgument());
}

TEST(WEventPpmTest, NativeBudgetConversionUsesLongestPrivatePattern) {
  // pattern span 3, w = 12: native = ε_p * 12 / 3 = 4 ε_p.
  WEventOptions opt;
  opt.w = 12;
  BudgetDivisionPpm ppm(opt);
  World w = BaselineWorld(/*epsilon=*/1.5);
  ASSERT_TRUE(ppm.Initialize(w.Context()).ok());
  EXPECT_NEAR(ppm.native_epsilon(), 1.5 * 12.0 / 3.0, 1e-12);
}

TEST(WEventPpmTest, FirstWindowAlwaysPublishes) {
  BudgetDivisionPpm ppm;
  World w = BaselineWorld();
  ASSERT_TRUE(ppm.Initialize(w.Context()).ok());
  Rng rng(1);
  ASSERT_TRUE(ppm.PublishWindow(MakeWindow(0, {0, 3}), &rng).ok());
  EXPECT_EQ(ppm.publication_count(), 1u);
}

TEST(WEventPpmTest, RequiresInitialize) {
  BudgetDivisionPpm ppm;
  Rng rng(1);
  EXPECT_TRUE(ppm.PublishWindow(Window{}, &rng).status()
                  .IsFailedPrecondition());
}

TEST(WEventPpmTest, ResetClearsPublicationState) {
  BudgetDivisionPpm ppm;
  World w = BaselineWorld();
  ASSERT_TRUE(ppm.Initialize(w.Context()).ok());
  Rng rng(2);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ppm.PublishWindow(MakeWindow(static_cast<size_t>(i), {0}),
                                  &rng)
                    .ok());
  }
  size_t before = ppm.publication_count();
  EXPECT_GE(before, 1u);
  ppm.Reset();
  EXPECT_EQ(ppm.publication_count(), 0u);
}

TEST(WEventPpmTest, NoiseHitsNonPrivateTypesToo) {
  // The stream-level baselines perturb everything — with a tiny budget the
  // published presence of a *non-private* type must err sometimes.
  World w = BaselineWorld(/*epsilon=*/0.05);
  BudgetDivisionPpm ppm;
  ASSERT_TRUE(ppm.Initialize(w.Context()).ok());
  Rng rng(3);
  int errors = 0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    // Type 5 never occurs; type 3 always occurs.
    PublishedView v =
        ppm.PublishWindow(MakeWindow(static_cast<size_t>(i), {3}), &rng)
            .value();
    if (v.presence[5] || !v.presence[3]) ++errors;
  }
  EXPECT_GT(errors, 10);
}

TEST(WEventPpmTest, LargeBudgetTracksTruthClosely) {
  World w = BaselineWorld(/*epsilon=*/300.0);
  WEventOptions opt;
  opt.w = 4;
  BudgetDivisionPpm ppm(opt);
  ASSERT_TRUE(ppm.Initialize(w.Context()).ok());
  Rng rng(5);
  int errors = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    bool has3 = (i % 2 == 0);
    Window win = has3 ? MakeWindow(static_cast<size_t>(i), {3})
                      : MakeWindow(static_cast<size_t>(i), {4});
    PublishedView v = ppm.PublishWindow(win, &rng).value();
    if (v.presence[3] != has3) ++errors;
  }
  EXPECT_LT(errors, n / 8);
}

TEST(BudgetAbsorptionTest, SkippedBudgetAccumulates) {
  // With a constant stream, BA should skip (dissimilarity ~ 0) and bank
  // budget; its publication count stays low.
  World w = BaselineWorld(/*epsilon=*/1.0);
  WEventOptions opt;
  opt.w = 10;
  BudgetAbsorptionPpm ba(opt);
  BudgetDivisionPpm bd(opt);
  ASSERT_TRUE(ba.Initialize(w.Context()).ok());
  ASSERT_TRUE(bd.Initialize(w.Context()).ok());
  Rng rng_a(7);
  Rng rng_b(7);
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    Window win = MakeWindow(static_cast<size_t>(i), {3});
    ASSERT_TRUE(ba.PublishWindow(win, &rng_a).ok());
    ASSERT_TRUE(bd.PublishWindow(win, &rng_b).ok());
  }
  // Both mechanisms publish at least once and not every timestamp.
  EXPECT_GE(ba.publication_count(), 1u);
  EXPECT_LT(ba.publication_count(), static_cast<size_t>(n));
}

TEST(BudgetAbsorptionTest, ResetClearsBankAndNullification) {
  World w = BaselineWorld();
  BudgetAbsorptionPpm ba;
  ASSERT_TRUE(ba.Initialize(w.Context()).ok());
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        ba.PublishWindow(MakeWindow(static_cast<size_t>(i), {0}), &rng).ok());
  }
  ba.Reset();
  // After reset the first window publishes again (fresh state).
  ASSERT_TRUE(ba.PublishWindow(MakeWindow(0, {0}), &rng).ok());
  EXPECT_EQ(ba.publication_count(), 1u);
}

TEST(WEventPpmTest, DeterministicGivenSeed) {
  World w = BaselineWorld();
  BudgetDivisionPpm a;
  BudgetDivisionPpm b;
  ASSERT_TRUE(a.Initialize(w.Context()).ok());
  ASSERT_TRUE(b.Initialize(w.Context()).ok());
  Rng ra(13);
  Rng rb(13);
  for (int i = 0; i < 30; ++i) {
    Window win = MakeWindow(static_cast<size_t>(i), {0, 3});
    EXPECT_EQ(a.PublishWindow(win, &ra).value().presence,
              b.PublishWindow(win, &rb).value().presence);
  }
}

TEST(WEventPpmTest, NamesDistinguishSchemes) {
  EXPECT_EQ(BudgetDivisionPpm().name(), "bd");
  EXPECT_EQ(BudgetAbsorptionPpm().name(), "ba");
}

/// Conversion sweep: whatever (w, span) combination, initializing with
/// pattern-level ε must produce native = ε·w/span.
class WEventConversionSweep
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(WEventConversionSweep, NativeBudgetMatchesFormula) {
  auto [w_param, span] = GetParam();
  World world = MakeWorld(span + 2);
  std::vector<EventTypeId> elems;
  for (size_t i = 0; i < span; ++i) elems.push_back(static_cast<EventTypeId>(i));
  AddPattern(&world, "priv", elems, DetectionMode::kConjunction, true, false);
  AddPattern(&world, "tgt", {static_cast<EventTypeId>(span)},
             DetectionMode::kConjunction, false, true);
  world.epsilon = 0.8;

  WEventOptions opt;
  opt.w = w_param;
  BudgetDivisionPpm ppm(opt);
  ASSERT_TRUE(ppm.Initialize(world.Context()).ok());
  EXPECT_NEAR(ppm.native_epsilon(),
              0.8 * static_cast<double>(w_param) / static_cast<double>(span),
              1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    WindowsAndSpans, WEventConversionSweep,
    ::testing::Values(std::make_pair(size_t{1}, size_t{1}),
                      std::make_pair(size_t{10}, size_t{3}),
                      std::make_pair(size_t{20}, size_t{5}),
                      std::make_pair(size_t{5}, size_t{5})));

}  // namespace
}  // namespace pldp
