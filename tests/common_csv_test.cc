// Copyright 2026 The PLDP Authors.

#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace pldp {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(CsvEncodeTest, PlainFields) {
  EXPECT_EQ(CsvEncodeRow({"a", "b", "c"}), "a,b,c");
}

TEST(CsvEncodeTest, QuotesSeparator) {
  EXPECT_EQ(CsvEncodeRow({"a,b", "c"}), "\"a,b\",c");
}

TEST(CsvEncodeTest, EscapesQuotes) {
  EXPECT_EQ(CsvEncodeRow({"say \"hi\""}), "\"say \"\"hi\"\"\"");
}

TEST(CsvEncodeTest, CustomSeparator) {
  EXPECT_EQ(CsvEncodeRow({"a", "b;c"}, ';'), "a;\"b;c\"");
}

TEST(CsvDecodeTest, PlainFields) {
  auto f = CsvDecodeRow("a,b,c").value();
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[2], "c");
}

TEST(CsvDecodeTest, QuotedFieldWithSeparator) {
  auto f = CsvDecodeRow("\"a,b\",c").value();
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "a,b");
}

TEST(CsvDecodeTest, EscapedQuotes) {
  auto f = CsvDecodeRow("\"say \"\"hi\"\"\"").value();
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], "say \"hi\"");
}

TEST(CsvDecodeTest, EmptyFields) {
  auto f = CsvDecodeRow(",,").value();
  ASSERT_EQ(f.size(), 3u);
  for (const auto& x : f) EXPECT_TRUE(x.empty());
}

TEST(CsvDecodeTest, ToleratesCarriageReturn) {
  auto f = CsvDecodeRow("a,b\r").value();
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[1], "b");
}

TEST(CsvDecodeTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(CsvDecodeRow("\"abc").ok());
}

TEST(CsvDecodeTest, RejectsQuoteMidField) {
  EXPECT_FALSE(CsvDecodeRow("ab\"c\"").ok());
}

TEST(CsvRoundTripTest, EncodeDecodeIdentity) {
  std::vector<std::string> fields{"plain", "with,comma", "with\"quote",
                                  "", "multi word"};
  auto decoded = CsvDecodeRow(CsvEncodeRow(fields)).value();
  EXPECT_EQ(decoded, fields);
}

TEST(CsvWriterTest, WritesAndReadsBack) {
  std::string path = TempPath("pldp_csv_test.csv");
  {
    CsvWriter w(path);
    ASSERT_TRUE(w.status().ok());
    ASSERT_TRUE(w.WriteRow({"h1", "h2"}).ok());
    ASSERT_TRUE(w.WriteRow({"1", "x,y"}).ok());
    ASSERT_TRUE(w.Close().ok());
  }
  auto rows = ReadCsvFile(path).value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "x,y");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, SkipHeaderOption) {
  std::string path = TempPath("pldp_csv_header.csv");
  {
    CsvWriter w(path);
    ASSERT_TRUE(w.WriteRow({"header"}).ok());
    ASSERT_TRUE(w.WriteRow({"data"}).ok());
    ASSERT_TRUE(w.Close().ok());
  }
  auto rows = ReadCsvFile(path, /*skip_header=*/true).value();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "data");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, OpenFailureReportsIoError) {
  CsvWriter w("/nonexistent_dir_xyz/file.csv");
  EXPECT_TRUE(w.status().IsIoError());
  EXPECT_TRUE(w.WriteRow({"a"}).IsIoError());
}

TEST(ReadCsvFileTest, MissingFileReportsIoError) {
  EXPECT_TRUE(ReadCsvFile("/no/such/file.csv").status().IsIoError());
}

}  // namespace
}  // namespace pldp
