// Copyright 2026 The PLDP Authors.
//
// Fixed-seed equivalence of the sharded service phase: ParallelPrivateEngine
// must produce, for every data subject and every shard count, exactly the
// protected answers a sequential PrivateCepEngine produces on that
// subject's substream with the same per-subject seed (SubjectSeed) and the
// same mechanism configuration. Perturbation happens shard-locally, so this
// pins both the per-subject windowing state machine and the deterministic
// per-subject Rng derivation.

#include "core/parallel_private_engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "core/private_engine.h"
#include "ppm/factory.h"
#include "stream/replay.h"
#include "stream/window.h"

namespace pldp {
namespace {

constexpr Timestamp kWindowSize = 5;
constexpr double kEpsilon = 1.0;
constexpr uint64_t kSeed = 0xfeedULL;

Pattern MakePattern(const char* name, std::vector<EventTypeId> elems,
                    DetectionMode mode) {
  return Pattern::Create(name, std::move(elems), mode).value();
}

/// Registers the same setup phase on any engine with the PrivateCepEngine
/// registration surface: 3 types, one private pattern, two target queries.
template <typename EngineT>
void RegisterSetup(EngineT& engine) {
  const EventTypeId a = engine.InternEventType("door");
  const EventTypeId b = engine.InternEventType("motion");
  const EventTypeId c = engine.InternEventType("kettle");
  ASSERT_TRUE(engine
                  .RegisterPrivatePattern(MakePattern(
                      "private", {a, b}, DetectionMode::kConjunction))
                  .ok());
  ASSERT_TRUE(engine
                  .RegisterTargetQuery("q0", MakePattern("t0", {a, b},
                                                         DetectionMode::kConjunction))
                  .ok());
  ASSERT_TRUE(engine
                  .RegisterTargetQuery("q1", MakePattern("t1", {b, c},
                                                         DetectionMode::kSequence))
                  .ok());
}

/// A multi-subject stream over a shared 3-type alphabet, with timestamp
/// jumps so subjects skip whole windows (empty windows must be published).
EventStream InterleavedStream(size_t subjects, size_t num_events,
                              uint64_t seed) {
  Rng rng(seed);
  EventStream stream;
  Timestamp ts = 0;
  for (size_t i = 0; i < num_events; ++i) {
    if (rng.UniformUint64(8) == 0) {
      ts += static_cast<Timestamp>(rng.UniformUint64(3 * kWindowSize));
    } else if (rng.UniformUint64(2) == 0) {
      ++ts;
    }
    const auto subject = static_cast<StreamId>(rng.UniformUint64(subjects));
    const auto type = static_cast<EventTypeId>(rng.UniformUint64(3));
    stream.AppendUnchecked(Event(type, ts, subject));
  }
  return stream;
}

/// The subject's substream, in order.
EventStream SubstreamOf(const EventStream& stream, StreamId subject) {
  EventStream sub;
  for (const Event& e : stream) {
    if (e.stream() == subject) sub.AppendUnchecked(e);
  }
  return sub;
}

/// Sequential reference: per-subject PrivateCepEngine runs with the
/// per-subject seed the sharded engine derives internally.
std::map<StreamId, PrivateQueryResults> SequentialReference(
    const EventStream& stream, size_t subjects, const std::string& mechanism) {
  std::map<StreamId, PrivateQueryResults> reference;
  for (StreamId subject = 0; subject < subjects; ++subject) {
    const EventStream sub = SubstreamOf(stream, subject);
    if (sub.empty()) continue;
    PrivateCepEngine seq;
    RegisterSetup(seq);
    EXPECT_TRUE(
        seq.Activate(MakeMechanism(mechanism).value(), kEpsilon).ok());
    Rng rng(SubjectSeed(kSeed, subject));
    auto results =
        seq.ProcessStream(sub, TumblingWindower(kWindowSize), &rng);
    EXPECT_TRUE(results.ok());
    reference.emplace(subject, std::move(results).value());
  }
  return reference;
}

void ExpectMatchesReference(
    const ParallelPrivateEngine& parallel,
    const std::map<StreamId, PrivateQueryResults>& reference,
    const char* label) {
  std::vector<StreamId> expected_ids;
  for (const auto& entry : reference) expected_ids.push_back(entry.first);
  EXPECT_EQ(parallel.SubjectIds(), expected_ids) << label;
  for (const auto& entry : reference) {
    StatusOr<SubjectResults> got_or = parallel.ResultsFor(entry.first);
    ASSERT_TRUE(got_or.ok()) << label << " subject=" << entry.first;
    const SubjectResults& got = got_or.value();
    EXPECT_EQ(got.window_count, entry.second.window_count)
        << label << " subject=" << entry.first;
    ASSERT_EQ(got.answers.size(), entry.second.answers.size());
    for (size_t q = 0; q < got.answers.size(); ++q) {
      EXPECT_EQ(got.answers[q].answers(), entry.second.answers[q].answers())
          << label << " subject=" << entry.first << " query=" << q;
    }
  }
}

TEST(ParallelPrivateEngineTest, FixedSeedEquivalenceWithSequentialEngine) {
  constexpr size_t kSubjects = 10;
  const EventStream stream = InterleavedStream(kSubjects, 6000, /*seed=*/17);
  const auto reference = SequentialReference(stream, kSubjects, "uniform");
  ASSERT_FALSE(reference.empty());

  for (size_t shards : {1u, 2u, 4u}) {
    ParallelPrivateOptions options;
    options.shard_count = shards;
    options.window_size = kWindowSize;
    options.seed = kSeed;
    ParallelPrivateEngine parallel(options);
    RegisterSetup(parallel);
    ASSERT_TRUE(
        parallel.Activate(NamedMechanismFactory("uniform"), kEpsilon).ok());

    StreamReplayer replayer;
    replayer.Subscribe(&parallel);
    // Batched per-tick ingestion; Run's OnEnd finishes the service phase.
    ASSERT_TRUE(replayer.Run(stream, ReplayMode::kBatchPerTick).ok());

    EXPECT_EQ(parallel.events_processed(), stream.size());
    ExpectMatchesReference(parallel, reference,
                           shards == 1   ? "shards=1"
                           : shards == 2 ? "shards=2"
                                         : "shards=4");
    ASSERT_TRUE(parallel.Stop().ok());
  }
}

TEST(ParallelPrivateEngineTest, PassthroughEqualsGroundTruthPerSubject) {
  constexpr size_t kSubjects = 6;
  const EventStream stream = InterleavedStream(kSubjects, 3000, /*seed=*/23);

  ParallelPrivateOptions options;
  options.shard_count = 3;
  options.window_size = kWindowSize;
  options.seed = kSeed;
  ParallelPrivateEngine parallel(options);
  RegisterSetup(parallel);
  ASSERT_TRUE(
      parallel.Activate(NamedMechanismFactory("passthrough"), kEpsilon).ok());

  // Per-event ingestion this time (both ingest paths must agree).
  for (const Event& e : stream) ASSERT_TRUE(parallel.OnEvent(e).ok());
  ASSERT_TRUE(parallel.Finish().ok());

  for (StreamId subject = 0; subject < kSubjects; ++subject) {
    const EventStream sub = SubstreamOf(stream, subject);
    if (sub.empty()) continue;
    PrivateCepEngine seq;
    RegisterSetup(seq);
    auto windows = TumblingWindower(kWindowSize).Apply(sub);
    ASSERT_TRUE(windows.ok());
    auto truth = seq.GroundTruth(windows.value());
    ASSERT_TRUE(truth.ok());

    StatusOr<SubjectResults> got_or = parallel.ResultsFor(subject);
    ASSERT_TRUE(got_or.ok());
    const SubjectResults& got = got_or.value();
    ASSERT_EQ(got.answers.size(), truth.value().answers.size());
    for (size_t q = 0; q < got.answers.size(); ++q) {
      EXPECT_EQ(got.answers[q].answers(), truth.value().answers[q].answers())
          << "subject=" << subject << " query=" << q;
    }
  }
  ASSERT_TRUE(parallel.Stop().ok());
}

TEST(ParallelPrivateEngineTest, ResultsIdenticalAcrossShardCounts) {
  constexpr size_t kSubjects = 7;
  const EventStream stream = InterleavedStream(kSubjects, 4000, /*seed=*/41);

  std::map<StreamId, std::vector<std::vector<bool>>> first;
  for (size_t shards : {1u, 3u}) {
    ParallelPrivateOptions options;
    options.shard_count = shards;
    options.window_size = kWindowSize;
    options.seed = kSeed;
    ParallelPrivateEngine engine(options);
    RegisterSetup(engine);
    ASSERT_TRUE(
        engine.Activate(NamedMechanismFactory("uniform"), kEpsilon).ok());
    StreamReplayer replayer;
    replayer.Subscribe(&engine);
    ASSERT_TRUE(replayer.Run(stream, ReplayMode::kBatchPerTick).ok());

    for (StreamId subject : engine.SubjectIds()) {
      StatusOr<SubjectResults> results = engine.ResultsFor(subject);
      ASSERT_TRUE(results.ok());
      std::vector<std::vector<bool>> answers;
      for (const AnswerSeries& series : results.value().answers) {
        answers.push_back(series.answers());
      }
      if (shards == 1) {
        first.emplace(subject, std::move(answers));
      } else {
        ASSERT_EQ(first.count(subject), 1u);
        EXPECT_EQ(answers, first[subject]) << "subject=" << subject;
      }
    }
    ASSERT_TRUE(engine.Stop().ok());
  }
}

TEST(ParallelPrivateEngineTest, LifecycleErrors) {
  {
    // Activate without registrations is refused.
    ParallelPrivateOptions options;
    options.window_size = kWindowSize;
    ParallelPrivateEngine engine(options);
    EXPECT_FALSE(
        engine.Activate(NamedMechanismFactory("uniform"), kEpsilon).ok());
  }
  {
    // window_size is mandatory.
    ParallelPrivateOptions options;
    ParallelPrivateEngine engine(options);
    RegisterSetup(engine);
    EXPECT_FALSE(
        engine.Activate(NamedMechanismFactory("uniform"), kEpsilon).ok());
  }
  {
    ParallelPrivateOptions options;
    options.shard_count = 2;
    options.window_size = kWindowSize;
    ParallelPrivateEngine engine(options);
    // Ingest before Activate is refused.
    EXPECT_FALSE(engine.OnEvent(Event(0, 0)).ok());
    RegisterSetup(engine);
    ASSERT_TRUE(
        engine.Activate(NamedMechanismFactory("uniform"), kEpsilon).ok());
    // Second Activate and post-Activate registration are refused.
    EXPECT_FALSE(
        engine.Activate(NamedMechanismFactory("uniform"), kEpsilon).ok());
    EXPECT_FALSE(engine
                     .RegisterTargetQuery(
                         "late", MakePattern("late", {0},
                                             DetectionMode::kConjunction))
                     .ok());
    ASSERT_TRUE(engine.OnEvent(Event(0, 0, /*stream=*/1)).ok());
    ASSERT_TRUE(engine.Finish().ok());
    ASSERT_TRUE(engine.Finish().ok());  // idempotent
    // Ingest after Finish is refused; results for unseen subjects NotFound.
    EXPECT_FALSE(engine.OnEvent(Event(0, 1)).ok());
    EXPECT_FALSE(engine.ResultsFor(/*subject=*/999).ok());
    EXPECT_TRUE(engine.ResultsFor(/*subject=*/1).ok());
    ASSERT_TRUE(engine.Stop().ok());
  }
}

TEST(ParallelPrivateEngineTest, UnknownQueryNameLookupsAreHardErrors) {
  ParallelPrivateOptions options;
  options.shard_count = 2;
  options.window_size = kWindowSize;
  ParallelPrivateEngine engine(options);
  RegisterSetup(engine);
  // Known names resolve; unknown names are NotFound, never a silent
  // default id or empty result.
  EXPECT_EQ(engine.TargetQueryIdOf("q0").value(), 0u);
  EXPECT_EQ(engine.TargetQueryIdOf("q1").value(), 1u);
  EXPECT_TRUE(engine.TargetQueryIdOf("no-such-query").status().IsNotFound());
  EXPECT_TRUE(engine.CrossQueryIndexOf("no-such-cross").status().IsNotFound());
}

TEST(ParallelPrivateEngineTest, EmptyStreamHasNoSubjects) {
  ParallelPrivateOptions options;
  options.shard_count = 2;
  options.window_size = kWindowSize;
  ParallelPrivateEngine engine(options);
  RegisterSetup(engine);
  ASSERT_TRUE(
      engine.Activate(NamedMechanismFactory("uniform"), kEpsilon).ok());
  ASSERT_TRUE(engine.Finish().ok());
  EXPECT_TRUE(engine.SubjectIds().empty());
  EXPECT_EQ(engine.total_windows(), 0u);
  ASSERT_TRUE(engine.Stop().ok());
}

}  // namespace
}  // namespace pldp
