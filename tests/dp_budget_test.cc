// Copyright 2026 The PLDP Authors.
//
// Tests for budget allocations (including the Algorithm-1 shift move's
// invariants) and the budget accountant.

#include "dp/budget.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pldp {
namespace {

TEST(BudgetAllocationTest, UniformSplitsEvenly) {
  auto a = BudgetAllocation::Uniform(3.0, 4).value();
  ASSERT_EQ(a.size(), 4u);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], 0.75);
  EXPECT_DOUBLE_EQ(a.Total(), 3.0);
}

TEST(BudgetAllocationTest, UniformValidatesInput) {
  EXPECT_FALSE(BudgetAllocation::Uniform(0.0, 3).ok());
  EXPECT_FALSE(BudgetAllocation::Uniform(-1.0, 3).ok());
  EXPECT_FALSE(BudgetAllocation::Uniform(1.0, 0).ok());
  EXPECT_FALSE(
      BudgetAllocation::Uniform(std::numeric_limits<double>::infinity(), 3)
          .ok());
}

TEST(BudgetAllocationTest, FromWeightsValidates) {
  EXPECT_TRUE(BudgetAllocation::FromWeights({0.5, 0.0, 1.5}).ok());
  EXPECT_FALSE(BudgetAllocation::FromWeights({}).ok());
  EXPECT_FALSE(BudgetAllocation::FromWeights({-0.1, 0.2}).ok());
  EXPECT_FALSE(BudgetAllocation::FromWeights({0.0, 0.0}).ok());
}

TEST(BudgetAllocationTest, ShiftPreservesTotal) {
  auto a = BudgetAllocation::Uniform(2.0, 4).value();
  ASSERT_TRUE(a.Shift(1, 0.2).ok());
  EXPECT_NEAR(a.Total(), 2.0, 1e-12);
  // Winner gains, others lose.
  EXPECT_GT(a[1], 0.5);
  EXPECT_LT(a[0], 0.5);
  EXPECT_LT(a[2], 0.5);
  EXPECT_LT(a[3], 0.5);
}

TEST(BudgetAllocationTest, ShiftWinnerNetGainMatchesPaperMove) {
  // Algorithm 1: winner += δε then all -= δε/m, so the winner's net gain is
  // δε(1 − 1/m) and each loser's net loss is δε/m (before clamping).
  auto a = BudgetAllocation::Uniform(4.0, 4).value();
  ASSERT_TRUE(a.Shift(0, 0.4).ok());
  EXPECT_NEAR(a[0], 1.0 + 0.4 * (1.0 - 0.25), 1e-9);
  for (size_t i = 1; i < 4; ++i) EXPECT_NEAR(a[i], 1.0 - 0.1, 1e-9);
}

TEST(BudgetAllocationTest, ShiftClampsAtZero) {
  auto a = BudgetAllocation::FromWeights({0.01, 0.99}).value();
  ASSERT_TRUE(a.Shift(1, 0.5).ok());
  EXPECT_GE(a[0], 0.0);
  EXPECT_GE(a[1], 0.0);
  EXPECT_NEAR(a.Total(), 1.0, 1e-12);
}

TEST(BudgetAllocationTest, RepeatedShiftsStayInBudgetBox) {
  auto a = BudgetAllocation::Uniform(1.0, 3).value();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(a.Shift(static_cast<size_t>(i % 3), 0.03).ok());
    EXPECT_NEAR(a.Total(), 1.0, 1e-9);
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_GE(a[j], 0.0);
      EXPECT_LE(a[j], 1.0 + 1e-9);
    }
  }
}

TEST(BudgetAllocationTest, ShiftValidatesArguments) {
  auto a = BudgetAllocation::Uniform(1.0, 2).value();
  EXPECT_TRUE(a.Shift(5, 0.1).IsOutOfRange());
  EXPECT_TRUE(a.Shift(0, -0.1).IsInvalidArgument());
}

TEST(BudgetAllocationTest, ScaleTo) {
  auto a = BudgetAllocation::FromWeights({1.0, 3.0}).value();
  ASSERT_TRUE(a.ScaleTo(2.0).ok());
  EXPECT_NEAR(a[0], 0.5, 1e-12);
  EXPECT_NEAR(a[1], 1.5, 1e-12);
  EXPECT_FALSE(a.ScaleTo(0.0).ok());
  EXPECT_FALSE(a.ScaleTo(-1.0).ok());
}

TEST(BudgetAllocationTest, ToStringMentionsTotal) {
  auto a = BudgetAllocation::Uniform(1.0, 2).value();
  EXPECT_NE(a.ToString().find("total"), std::string::npos);
}

TEST(BudgetAccountantTest, CreateValidates) {
  EXPECT_TRUE(BudgetAccountant::Create(1.0).ok());
  EXPECT_FALSE(BudgetAccountant::Create(0.0).ok());
  EXPECT_FALSE(BudgetAccountant::Create(-2.0).ok());
}

TEST(BudgetAccountantTest, SpendTracksRemaining) {
  auto acc = BudgetAccountant::Create(1.0).value();
  EXPECT_DOUBLE_EQ(acc.remaining(), 1.0);
  ASSERT_TRUE(acc.Spend(0.4).ok());
  EXPECT_DOUBLE_EQ(acc.spent(), 0.4);
  EXPECT_NEAR(acc.remaining(), 0.6, 1e-12);
  EXPECT_FALSE(acc.Exhausted());
}

TEST(BudgetAccountantTest, OverdraftRejected) {
  auto acc = BudgetAccountant::Create(1.0).value();
  ASSERT_TRUE(acc.Spend(0.8).ok());
  Status s = acc.Spend(0.3);
  EXPECT_TRUE(s.IsPrivacyBudgetExceeded());
  // Failed spend leaves state unchanged.
  EXPECT_DOUBLE_EQ(acc.spent(), 0.8);
}

TEST(BudgetAccountantTest, ExactExhaustion) {
  auto acc = BudgetAccountant::Create(1.0).value();
  ASSERT_TRUE(acc.Spend(1.0).ok());
  EXPECT_TRUE(acc.Exhausted());
  EXPECT_TRUE(acc.Spend(0.001).IsPrivacyBudgetExceeded());
}

TEST(BudgetAccountantTest, ManySmallSpendsTolerateRounding) {
  auto acc = BudgetAccountant::Create(1.0).value();
  // 10 x 0.1 accumulates floating-point error; the tolerance must absorb it.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(acc.Spend(0.1).ok()) << "spend " << i;
  }
  EXPECT_TRUE(acc.Exhausted());
}

TEST(BudgetAccountantTest, SpendValidatesInput) {
  auto acc = BudgetAccountant::Create(1.0).value();
  EXPECT_TRUE(acc.Spend(0.0).IsInvalidArgument());
  EXPECT_TRUE(acc.Spend(-0.5).IsInvalidArgument());
}

}  // namespace
}  // namespace pldp
