// Copyright 2026 The PLDP Authors.
//
// Interned and legacy-constructed events must be indistinguishable to the
// engines: a stream whose attributes are set by name with owned-string
// payloads and the same stream built with pre-bound AttrIds and interned
// symbols must produce identical detections — plain (stage-1), across the
// attribute-keyed exchange (stage-2, where the correlation key hashes the
// payload), and through the private service phase — at 1, 2, and 4 shards.
// Plus the predicate layer: bound predicates must evaluate identically
// against both construction styles.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cep/predicate.h"
#include "core/parallel_private_engine.h"
#include "core/private_engine.h"
#include "event/symbol_table.h"
#include "ppm/factory.h"
#include "runtime/parallel_engine.h"
#include "stream/event_stream.h"
#include "stream/replay.h"

namespace pldp {
namespace {

constexpr size_t kSubjects = 12;
constexpr size_t kZones = 4;
constexpr Timestamp kWindow = 6;

std::string ZoneName(size_t z) { return "equiv-zone-" + std::to_string(z); }

/// One logical stream, materialized in two styles. Types are drawn from a
/// shared 3-letter alphabet; every event carries an int `cell` and a text
/// `zone` drawn from kZones values, uncorrelated with the subject (so
/// attribute-keyed exchange matches span subjects).
EventStream BuildStream(size_t num_events, uint64_t seed, bool interned) {
  const AttrId cell_id = AttrNames().Intern("equiv_cell");
  const AttrId zone_id = AttrNames().Intern("equiv_zone");
  Rng rng(seed);
  EventStream stream;
  stream.Reserve(num_events);
  Timestamp ts = 0;
  for (size_t i = 0; i < num_events; ++i) {
    if (rng.UniformUint64(4) == 0) ++ts;
    const auto subject = static_cast<StreamId>(rng.UniformUint64(kSubjects));
    const auto type = static_cast<EventTypeId>(rng.UniformUint64(3));
    const auto zone = rng.UniformUint64(kZones);
    const auto cell = static_cast<int64_t>(rng.UniformUint64(32));
    Event e(type, ts, subject);
    if (interned) {
      e.SetAttribute(cell_id, Value(cell));
      e.SetAttribute(zone_id, Value::Sym(ZoneName(zone)));
    } else {
      e.SetAttribute("equiv_cell", Value(cell));
      e.SetAttribute("equiv_zone", Value(ZoneName(zone)));
    }
    stream.AppendUnchecked(std::move(e));
  }
  return stream;
}

Pattern MakePattern(const char* name, std::vector<EventTypeId> elems,
                    DetectionMode mode) {
  return Pattern::Create(name, std::move(elems), mode).value();
}

/// Detections of the plain sharded engine (one seq + one conj query).
std::vector<std::vector<Timestamp>> PlainDetections(const EventStream& stream,
                                                    size_t shards) {
  ParallelEngineOptions options;
  options.shard_count = shards;
  ParallelStreamingEngine engine(options);
  EXPECT_TRUE(
      engine
          .AddQuery(MakePattern("seq", {0, 1, 2}, DetectionMode::kSequence),
                    kWindow)
          .ok());
  EXPECT_TRUE(
      engine
          .AddQuery(
              MakePattern("conj", {2, 0}, DetectionMode::kConjunction),
              kWindow)
          .ok());
  EXPECT_TRUE(engine.Start().ok());
  StreamReplayer replayer;
  replayer.Subscribe(&engine);
  EXPECT_TRUE(replayer.Run(stream, ReplayMode::kBatchPerTick).ok());
  std::vector<std::vector<Timestamp>> result;
  for (size_t q = 0; q < engine.query_count(); ++q) {
    result.push_back(engine.DetectionsOf(q).value());
  }
  EXPECT_TRUE(engine.Stop().ok());
  return result;
}

/// Cross detections with the exchange keyed by the `equiv_zone` attribute.
/// Stage-2 grouping is a pure function of the correlation key, so the
/// result must not depend on the stage-1 shard count — and must be
/// identical for the two construction styles (symbols hash like strings).
std::vector<Timestamp> ZoneKeyedCrossDetections(const EventStream& stream,
                                                size_t stage1_shards) {
  ParallelEngineOptions options;
  options.shard_count = stage1_shards;
  options.exchange.enabled = true;
  options.exchange.shard_count = 2;
  options.exchange.key = CorrelationKeySpec::ByAttribute("equiv_zone");
  ParallelStreamingEngine engine(options);
  EXPECT_TRUE(
      engine
          .AddCrossQuery(
              MakePattern("xseq", {0, 1}, DetectionMode::kSequence), kWindow)
          .ok());
  EXPECT_TRUE(engine.Start().ok());
  StreamReplayer replayer;
  replayer.Subscribe(&engine);
  EXPECT_TRUE(replayer.Run(stream, ReplayMode::kBatchPerTick).ok());
  std::vector<Timestamp> result = engine.CrossDetectionsOf(0).value();
  EXPECT_TRUE(engine.Stop().ok());
  return result;
}

TEST(InternEquivalenceTest, PlainDetectionsMatchAcrossConstructionStyles) {
  const EventStream legacy = BuildStream(6000, 0x5eedULL, /*interned=*/false);
  const EventStream interned = BuildStream(6000, 0x5eedULL, /*interned=*/true);
  ASSERT_EQ(legacy.size(), interned.size());

  for (size_t shards : {1u, 2u, 4u}) {
    const auto legacy_detections = PlainDetections(legacy, shards);
    const auto interned_detections = PlainDetections(interned, shards);
    EXPECT_EQ(legacy_detections, interned_detections)
        << "shards=" << shards;
  }
}

TEST(InternEquivalenceTest, AttributeKeyedExchangeRoutesBothStylesAlike) {
  const EventStream legacy = BuildStream(5000, 0xabcULL, /*interned=*/false);
  const EventStream interned = BuildStream(5000, 0xabcULL, /*interned=*/true);

  const std::vector<Timestamp> reference =
      ZoneKeyedCrossDetections(legacy, /*stage1_shards=*/1);
  ASSERT_FALSE(reference.empty());
  for (size_t shards : {1u, 2u, 4u}) {
    EXPECT_EQ(ZoneKeyedCrossDetections(legacy, shards), reference)
        << "legacy, stage1=" << shards;
    EXPECT_EQ(ZoneKeyedCrossDetections(interned, shards), reference)
        << "interned, stage1=" << shards;
  }
}

TEST(InternEquivalenceTest, PrivateServicePhaseMatchesAcrossStyles) {
  const EventStream legacy = BuildStream(4000, 0x777ULL, /*interned=*/false);
  const EventStream interned = BuildStream(4000, 0x777ULL, /*interned=*/true);

  for (size_t shards : {1u, 2u, 4u}) {
    std::vector<std::vector<std::vector<bool>>> answers_by_style;
    for (const EventStream* stream : {&legacy, &interned}) {
      ParallelPrivateOptions options;
      options.shard_count = shards;
      options.window_size = kWindow;
      options.seed = 0xfeedULL;
      ParallelPrivateEngine engine(options);
      const EventTypeId a = engine.InternEventType("equiv_a");
      const EventTypeId b = engine.InternEventType("equiv_b");
      ASSERT_TRUE(engine
                      .RegisterPrivatePattern(MakePattern(
                          "private", {a, b}, DetectionMode::kConjunction))
                      .ok());
      ASSERT_TRUE(engine
                      .RegisterTargetQuery(
                          "q0", MakePattern("t0", {a, b},
                                            DetectionMode::kSequence))
                      .ok());
      ASSERT_TRUE(
          engine.Activate(NamedMechanismFactory("uniform"), /*epsilon=*/1.0)
              .ok());
      StreamReplayer replayer;
      replayer.Subscribe(&engine);
      ASSERT_TRUE(replayer.Run(*stream, ReplayMode::kBatchPerTick).ok());

      std::vector<std::vector<bool>> answers;
      for (StreamId subject : engine.SubjectIds()) {
        const SubjectResults results = engine.ResultsFor(subject).value();
        for (const AnswerSeries& series : results.answers) {
          answers.push_back(series.answers());
        }
      }
      ASSERT_FALSE(answers.empty());
      answers_by_style.push_back(std::move(answers));
      ASSERT_TRUE(engine.Stop().ok());
    }
    EXPECT_EQ(answers_by_style[0], answers_by_style[1])
        << "shards=" << shards;
  }
}

TEST(InternEquivalenceTest, BoundPredicatesEvaluateBothStylesAlike) {
  Event legacy(0, 1);
  legacy.SetAttribute("equiv_cell", Value(int64_t{7}));
  legacy.SetAttribute("equiv_zone", Value(ZoneName(2)));
  Event interned(0, 1);
  interned.SetAttribute(AttrNames().Intern("equiv_cell"), Value(int64_t{7}));
  interned.SetAttribute(AttrNames().Intern("equiv_zone"),
                        Value::Sym(ZoneName(2)));

  const std::vector<PredicatePtr> predicates = {
      MakeNumericCompare("equiv_cell", CompareOp::kGt, 5.0),
      MakeNumericCompare("equiv_cell", CompareOp::kLt, 5.0),
      MakeStringCompare("equiv_zone", CompareOp::kEq, ZoneName(2)),
      MakeStringCompare("equiv_zone", CompareOp::kEq, ZoneName(3)),
      MakeStringCompare("equiv_zone", CompareOp::kNe, ZoneName(3)),
      MakeIntSetMember("equiv_cell", {1, 7, 9}),
      MakeIntSetMember("equiv_cell", {2, 4}),
      MakeStringCompare("equiv_absent", CompareOp::kEq, "x"),
  };
  for (const PredicatePtr& p : predicates) {
    const auto on_legacy = p->Eval(legacy);
    const auto on_interned = p->Eval(interned);
    ASSERT_TRUE(on_legacy.ok()) << p->ToString();
    ASSERT_TRUE(on_interned.ok()) << p->ToString();
    EXPECT_EQ(on_legacy.value(), on_interned.value()) << p->ToString();
  }
  // Kind-mismatch errors propagate identically too.
  const PredicatePtr mismatched =
      MakeStringCompare("equiv_cell", CompareOp::kEq, "not-a-number");
  EXPECT_FALSE(mismatched->Eval(legacy).ok());
  EXPECT_FALSE(mismatched->Eval(interned).ok());
}

}  // namespace
}  // namespace pldp
