// Copyright 2026 The PLDP Authors.
//
// Liveness tests for the adaptive backoff → parking layer
// (runtime/backoff.h): idle workers escalate spin → yield → park on a
// Doorbell, and every work publication (SPSC push, producer floor,
// flush-watermark command, terminal seal) rings the consumer's bell. The
// properties pinned here:
//
//   * a parked worker wakes on the next push — no lost wakeup, including
//     under the rapid park/ring interleavings of the stress test (the CI
//     TSan job runs this file too, checking the fence protocol's memory
//     ordering, not just its logic);
//   * drain barriers and Finish complete from a fully parked pipeline —
//     the barrier paths ring the bells they gate on;
//   * parks/wakes surface through ShardStats and the
//     pldp_shard_parks_total / pldp_shard_wakes_total counters.
//
// Timing discipline: tests assert "eventually parked / eventually woke"
// by polling with a generous deadline, never by asserting exact counts —
// parking is a performance escalation, not a scheduling guarantee.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "runtime/backoff.h"
#include "runtime/parallel_engine.h"
#include "stream/event_stream.h"

namespace pldp {
namespace {

constexpr auto kDeadline = std::chrono::seconds(20);

/// Polls `pred` until it holds or the deadline passes.
template <typename Pred>
bool Eventually(Pred&& pred) {
  const auto start = std::chrono::steady_clock::now();
  while (!pred()) {
    if (std::chrono::steady_clock::now() - start > kDeadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

size_t TotalParks(const ParallelStreamingEngine& engine) {
  size_t parks = 0;
  for (const ShardStats& s : engine.ShardStatsSnapshot()) parks += s.parks;
  return parks;
}

TEST(DoorbellTest, ParkedConsumerWakesOnRing) {
  Doorbell bell;
  std::atomic<bool> work{false};
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    // No work yet: this must actually park...
    const bool parked =
        bell.ParkUnless([&] { return work.load(std::memory_order_acquire); });
    if (parked) woke.store(true);
  });
  ASSERT_TRUE(Eventually([&] { return bell.parks() == 1; }));
  work.store(true, std::memory_order_release);
  bell.Ring();  // ...and this must wake it.
  consumer.join();
  EXPECT_TRUE(woke.load());
  EXPECT_GE(bell.wakes(), 1u);
}

TEST(DoorbellTest, PublishedWorkPreemptsThePark) {
  Doorbell bell;
  std::atomic<bool> work{true};
  // Work already visible: ParkUnless must return without blocking.
  EXPECT_FALSE(
      bell.ParkUnless([&] { return work.load(std::memory_order_acquire); }));
  EXPECT_EQ(bell.parks(), 0u);
}

// The lost-wakeup stress: a producer publishes items and rings while the
// consumer oscillates between draining and parking. If any ring landing
// between the consumer's empty check and its cv wait were lost, the
// consumer would park forever with work pending and the test would hang
// (and fail the deadline assert). Under the TSan job this also verifies
// the fence pairing, not just the logic.
TEST(DoorbellTest, NoLostWakeupUnderStress) {
  constexpr uint64_t kItems = 200000;
  Doorbell bell;
  std::atomic<uint64_t> published{0};
  std::atomic<uint64_t> consumed{0};
  std::atomic<bool> done{false};

  std::thread consumer([&] {
    while (true) {
      if (consumed.load(std::memory_order_relaxed) <
          published.load(std::memory_order_acquire)) {
        consumed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (done.load(std::memory_order_acquire) &&
          consumed.load(std::memory_order_relaxed) ==
              published.load(std::memory_order_acquire)) {
        return;
      }
      bell.ParkUnless([&] {
        return consumed.load(std::memory_order_relaxed) <
                   published.load(std::memory_order_acquire) ||
               done.load(std::memory_order_acquire);
      });
    }
  });

  for (uint64_t i = 0; i < kItems; ++i) {
    published.fetch_add(1, std::memory_order_release);
    bell.Ring();
  }
  done.store(true, std::memory_order_release);
  bell.Ring();
  consumer.join();
  EXPECT_EQ(consumed.load(), kItems);
}

TEST(ParkingTest, IdleWorkersParkAndWakeOnPush) {
  ParallelEngineOptions options;
  options.shard_count = 2;
  options.queue_capacity = 256;
  ParallelStreamingEngine engine(options);
  auto pattern = Pattern::Create("p", {0, 1}, DetectionMode::kSequence);
  ASSERT_TRUE(pattern.ok());
  ASSERT_TRUE(engine.AddQuery(std::move(pattern).value(), 10).ok());
  ASSERT_TRUE(engine.Start().ok());

  // Idle pipeline: every worker exhausts its spin/yield budget and parks.
  ASSERT_TRUE(Eventually([&] { return TotalParks(engine) >= 2; }))
      << "idle workers never parked";

  // A push into a parked pipeline must ring the worker awake; Drain then
  // proves the event was actually processed (a lost wakeup would leave
  // pushed > processed and Drain would hang past the ctest timeout).
  ASSERT_TRUE(engine.OnEvent(Event(0, 0, 7)).ok());
  ASSERT_TRUE(engine.Drain().ok());
  EXPECT_EQ(engine.events_processed(), 1u);

  // Park again, wake again — the escalation must re-arm after work.
  const size_t parks_before = TotalParks(engine);
  ASSERT_TRUE(Eventually([&] { return TotalParks(engine) > parks_before; }))
      << "workers never re-parked after the first wake";
  ASSERT_TRUE(engine.OnEvent(Event(1, 1, 7)).ok());
  ASSERT_TRUE(engine.Drain().ok());
  EXPECT_EQ(engine.events_processed(), 2u);

  // Finish from a parked pipeline: the terminal seal rings every bell.
  ASSERT_TRUE(engine.Finish().ok());
  ASSERT_TRUE(engine.Stop().ok());
}

// Same liveness through the two-stage exchange pipeline: stage-2 merge
// workers park on their own doorbells (gated on lanes AND watermark
// floors), and the drain barrier's flush-watermark command must wake
// them. A missing ring on the command path would hang the first Drain.
TEST(ParkingTest, ExchangePipelineBarriersCompleteFromParkedState) {
  ParallelEngineOptions options;
  options.shard_count = 2;
  options.queue_capacity = 256;
  options.exchange.enabled = true;
  options.exchange.shard_count = 2;
  options.exchange.lane_capacity = 64;
  options.exchange.key = CorrelationKeySpec::ByEventType();
  ParallelStreamingEngine engine(options);
  auto pattern = Pattern::Create("p", {0, 1}, DetectionMode::kSequence);
  ASSERT_TRUE(pattern.ok());
  ASSERT_TRUE(engine.AddCrossQuery(std::move(pattern).value(), 10).ok());
  ASSERT_TRUE(engine.Start().ok());

  // Let both stages go fully idle (parked), then run the barrier.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(engine.Drain().ok());

  for (int round = 0; round < 3; ++round) {
    for (uint64_t i = 0; i < 100; ++i) {
      ASSERT_TRUE(engine.OnEvent(Event(static_cast<EventTypeId>(i % 2),
                                       static_cast<Timestamp>(i), 3))
                      .ok());
    }
    ASSERT_TRUE(engine.Drain().ok());
  }
  EXPECT_EQ(engine.events_processed(), 300u);
  ASSERT_TRUE(engine.Finish().ok());
  ASSERT_TRUE(engine.Stop().ok());
}

TEST(ParkingTest, ParkAndWakeCountersSurfaceThroughMetrics) {
  ParallelEngineOptions options;
  options.shard_count = 2;
  options.queue_capacity = 256;
  ParallelStreamingEngine engine(options);
  auto pattern = Pattern::Create("p", {0, 1}, DetectionMode::kSequence);
  ASSERT_TRUE(pattern.ok());
  ASSERT_TRUE(engine.AddQuery(std::move(pattern).value(), 10).ok());
  obs::MetricsRegistry registry;
  ASSERT_TRUE(engine.EnableMetrics(&registry, "plain").ok());
  ASSERT_TRUE(engine.Start().ok());

  ASSERT_TRUE(Eventually([&] { return TotalParks(engine) >= 2; }));
  ASSERT_TRUE(engine.OnEvent(Event(0, 0, 7)).ok());
  ASSERT_TRUE(engine.Drain().ok());

  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_GT(obs::SumSamples(snapshot.Find("pldp_shard_parks_total")), 0.0);
  EXPECT_GT(obs::SumSamples(snapshot.Find("pldp_shard_wakes_total")), 0.0);
  ASSERT_TRUE(engine.Stop().ok());
}

}  // namespace
}  // namespace pldp
