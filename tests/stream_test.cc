// Copyright 2026 The PLDP Authors.
//
// Tests for event streams: ordering invariants, slicing, k-way merge,
// CSV persistence, and online replay.

#include "stream/event_stream.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/random.h"
#include "stream/replay.h"
#include "stream/stream_io.h"

namespace pldp {
namespace {

EventStream MakeStream(std::initializer_list<std::pair<EventTypeId, Timestamp>>
                           events,
                       StreamId sid = 0) {
  EventStream s;
  for (auto [type, ts] : events) {
    s.AppendUnchecked(Event(type, ts, sid));
  }
  return s;
}

TEST(EventStreamTest, AppendEnforcesOrder) {
  EventStream s;
  EXPECT_TRUE(s.Append(Event(0, 5)).ok());
  EXPECT_TRUE(s.Append(Event(0, 5)).ok());   // equal timestamps allowed
  EXPECT_TRUE(s.Append(Event(0, 10)).ok());
  EXPECT_TRUE(s.Append(Event(0, 9)).IsInvalidArgument());
  EXPECT_EQ(s.size(), 3u);
}

TEST(EventStreamTest, FromEventsValidates) {
  std::vector<Event> good{Event(0, 1), Event(0, 2)};
  EXPECT_TRUE(EventStream::FromEvents(good).ok());
  std::vector<Event> bad{Event(0, 2), Event(0, 1)};
  EXPECT_FALSE(EventStream::FromEvents(bad).ok());
}

TEST(EventStreamTest, MinMaxTimestamps) {
  auto s = MakeStream({{0, 3}, {1, 7}, {0, 9}});
  EXPECT_EQ(s.min_timestamp(), 3);
  EXPECT_EQ(s.max_timestamp(), 9);
  EventStream empty;
  EXPECT_EQ(empty.min_timestamp(), 0);
  EXPECT_EQ(empty.max_timestamp(), 0);
}

TEST(EventStreamTest, CountType) {
  auto s = MakeStream({{0, 1}, {1, 2}, {0, 3}, {2, 4}});
  EXPECT_EQ(s.CountType(0), 2u);
  EXPECT_EQ(s.CountType(1), 1u);
  EXPECT_EQ(s.CountType(9), 0u);
}

TEST(EventStreamTest, SliceHalfOpenInterval) {
  auto s = MakeStream({{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}});
  auto mid = s.Slice(2, 4);
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_EQ(mid[0].timestamp(), 2);
  EXPECT_EQ(mid[1].timestamp(), 3);
  EXPECT_TRUE(s.Slice(10, 20).empty());
  EXPECT_EQ(s.Slice(1, 6).size(), 5u);
}

TEST(EventStreamTest, IsTemporallyOrdered) {
  EXPECT_TRUE(MakeStream({{0, 1}, {0, 1}, {0, 2}}).IsTemporallyOrdered());
  EXPECT_TRUE(EventStream().IsTemporallyOrdered());
}

TEST(MergeStreamsTest, InterleavesByTimestamp) {
  auto a = MakeStream({{0, 1}, {0, 5}, {0, 9}}, 0);
  auto b = MakeStream({{1, 2}, {1, 6}}, 1);
  auto c = MakeStream({{2, 3}}, 2);
  EventStream merged = MergeStreams({a, b, c});
  ASSERT_EQ(merged.size(), 6u);
  EXPECT_TRUE(merged.IsTemporallyOrdered());
  EXPECT_EQ(merged[0].timestamp(), 1);
  EXPECT_EQ(merged[5].timestamp(), 9);
}

TEST(MergeStreamsTest, TiesBrokenByStreamId) {
  auto a = MakeStream({{0, 5}}, 2);
  auto b = MakeStream({{1, 5}}, 1);
  EventStream merged = MergeStreams({a, b});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].stream(), 1u);
  EXPECT_EQ(merged[1].stream(), 2u);
}

TEST(MergeStreamsTest, HandlesEmptyInputs) {
  EXPECT_EQ(MergeStreams({}).size(), 0u);
  EXPECT_EQ(MergeStreams({EventStream(), EventStream()}).size(), 0u);
  auto a = MakeStream({{0, 1}});
  EXPECT_EQ(MergeStreams({a, EventStream()}).size(), 1u);
}

TEST(MergeStreamsTest, MergeOfManyRandomStreamsIsSorted) {
  Rng rng(99);
  std::vector<EventStream> streams(10);
  for (size_t i = 0; i < streams.size(); ++i) {
    Timestamp ts = 0;
    for (int j = 0; j < 50; ++j) {
      ts += static_cast<Timestamp>(rng.UniformUint64(5));
      streams[i].AppendUnchecked(
          Event(static_cast<EventTypeId>(j % 3), ts,
                static_cast<StreamId>(i)));
    }
  }
  EventStream merged = MergeStreams(streams);
  EXPECT_EQ(merged.size(), 500u);
  EXPECT_TRUE(merged.IsTemporallyOrdered());
}

// --- stream_io ---------------------------------------------------------------

TEST(StreamIoTest, TaggedValueRoundTrip) {
  for (const Value& v :
       {Value(true), Value(false), Value(int64_t{-17}), Value(3.25),
        Value("hello world")}) {
    auto decoded = DecodeValueTagged(EncodeValueTagged(v));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), v);
  }
}

TEST(StreamIoTest, TaggedValueRejectsMalformed) {
  EXPECT_FALSE(DecodeValueTagged("").ok());
  EXPECT_FALSE(DecodeValueTagged("x").ok());
  EXPECT_FALSE(DecodeValueTagged("q:1").ok());
  EXPECT_FALSE(DecodeValueTagged("b:maybe").ok());
  EXPECT_FALSE(DecodeValueTagged("i:1.5").ok());
}

TEST(StreamIoTest, CsvRoundTripPreservesStream) {
  EventTypeRegistry reg;
  EventStream s;
  Event e1(reg.Intern("gps"), 100, 3);
  e1.SetAttribute("cell", Value(int64_t{7}));
  e1.SetAttribute("speed", Value(12.5));
  s.AppendUnchecked(e1);
  Event e2(reg.Intern("door"), 200, 4);
  e2.SetAttribute("open", Value(true));
  s.AppendUnchecked(e2);

  std::string path =
      (std::filesystem::temp_directory_path() / "pldp_stream.csv").string();
  ASSERT_TRUE(WriteStreamCsv(path, s, reg).ok());

  EventTypeRegistry reg2;
  auto loaded = ReadStreamCsv(path, &reg2);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].timestamp(), 100);
  EXPECT_EQ((*loaded)[0].stream(), 3u);
  EXPECT_EQ(reg2.Name((*loaded)[0].type()).value(), "gps");
  EXPECT_EQ((*loaded)[0].GetAttribute("cell")->AsInt().value(), 7);
  EXPECT_EQ((*loaded)[1].GetAttribute("open")->AsBool().value(), true);
  std::remove(path.c_str());
}

TEST(StreamIoTest, ReadRejectsNullRegistry) {
  EXPECT_FALSE(ReadStreamCsv("/tmp/whatever.csv", nullptr).ok());
}

// --- replay -------------------------------------------------------------------

class RecordingSubscriber : public StreamSubscriber {
 public:
  Status OnEvent(const Event& e) override {
    events.push_back(e.timestamp());
    return Status::OK();
  }
  Status OnTick(Timestamp t) override {
    ticks.push_back(t);
    return Status::OK();
  }
  Status OnEnd() override {
    ended = true;
    return Status::OK();
  }

  std::vector<Timestamp> events;
  std::vector<Timestamp> ticks;
  bool ended = false;
};

TEST(ReplayTest, DeliversEventsTicksAndEnd) {
  auto s = MakeStream({{0, 1}, {1, 1}, {0, 2}, {0, 5}});
  RecordingSubscriber sub;
  StreamReplayer replayer;
  replayer.Subscribe(&sub);
  ASSERT_TRUE(replayer.Run(s).ok());
  EXPECT_EQ(sub.events, (std::vector<Timestamp>{1, 1, 2, 5}));
  // One tick per distinct timestamp.
  EXPECT_EQ(sub.ticks, (std::vector<Timestamp>{1, 2, 5}));
  EXPECT_TRUE(sub.ended);
}

TEST(ReplayTest, MultipleSubscribersAllServed) {
  auto s = MakeStream({{0, 1}, {0, 2}});
  RecordingSubscriber a;
  RecordingSubscriber b;
  StreamReplayer replayer;
  replayer.Subscribe(&a);
  replayer.Subscribe(&b);
  ASSERT_TRUE(replayer.Run(s).ok());
  EXPECT_EQ(a.events.size(), 2u);
  EXPECT_EQ(b.events.size(), 2u);
}

TEST(ReplayTest, CallbackErrorStopsReplay) {
  auto s = MakeStream({{0, 1}, {0, 2}, {0, 3}});
  int count = 0;
  CallbackSubscriber failing([&count](const Event&) {
    if (++count == 2) return Status::Internal("stop");
    return Status::OK();
  });
  StreamReplayer replayer;
  replayer.Subscribe(&failing);
  Status status = replayer.Run(s);
  EXPECT_TRUE(status.IsInternal());
  EXPECT_EQ(count, 2);
}

TEST(ReplayTest, EmptyStreamFiresOnlyEnd) {
  RecordingSubscriber sub;
  StreamReplayer replayer;
  replayer.Subscribe(&sub);
  ASSERT_TRUE(replayer.Run(EventStream()).ok());
  EXPECT_TRUE(sub.events.empty());
  EXPECT_TRUE(sub.ticks.empty());
  EXPECT_TRUE(sub.ended);
}

TEST(ReplayTest, IgnoresNullSubscriber) {
  StreamReplayer replayer;
  replayer.Subscribe(nullptr);
  EXPECT_EQ(replayer.subscriber_count(), 0u);
}

}  // namespace
}  // namespace pldp
