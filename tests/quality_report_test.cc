// Copyright 2026 The PLDP Authors.

#include "quality/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/csv.h"

namespace pldp {
namespace {

TEST(ResultTableTest, AddRowValidatesWidth) {
  ResultTable t({"a", "b"});
  EXPECT_TRUE(t.AddRow({"1", "2"}).ok());
  EXPECT_FALSE(t.AddRow({"1"}).ok());
  EXPECT_FALSE(t.AddRow({"1", "2", "3"}).ok());
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(ResultTableTest, DoubleRowFormatsWithPrecision) {
  ResultTable t({"name", "x", "y"});
  ASSERT_TRUE(t.AddRow("m", {0.123456, 2.0}, 3).ok());
  std::string s = t.ToString();
  EXPECT_NE(s.find("0.123"), std::string::npos);
  EXPECT_NE(s.find("2.000"), std::string::npos);
}

TEST(ResultTableTest, ToStringAlignsColumns) {
  ResultTable t({"mech", "v"});
  ASSERT_TRUE(t.AddRow({"a", "1"}).ok());
  ASSERT_TRUE(t.AddRow({"longer_name", "2"}).ok());
  std::string s = t.ToString();
  // Header line, rule line, two rows.
  size_t lines = static_cast<size_t>(
      std::count(s.begin(), s.end(), '\n'));
  EXPECT_EQ(lines, 4u);
  // Every line after padding removal: the value column starts at the same
  // offset in both data rows.
  auto pos_a = s.find("\na ");
  auto pos_b = s.find("\nlonger_name");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
}

TEST(ResultTableTest, WriteCsvRoundTrips) {
  ResultTable t({"h1", "h2"});
  ASSERT_TRUE(t.AddRow({"x", "1.5"}).ok());
  std::string path =
      (std::filesystem::temp_directory_path() / "pldp_table.csv").string();
  ASSERT_TRUE(t.WriteCsv(path).ok());
  auto rows = ReadCsvFile(path).value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"h1", "h2"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"x", "1.5"}));
  std::remove(path.c_str());
}

TEST(ResultTableTest, EmptyTableStillRendersHeader) {
  ResultTable t({"only"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("only"), std::string::npos);
}

}  // namespace
}  // namespace pldp
