// Copyright 2026 The PLDP Authors.
//
// The interning layer and the flyweight event layout: InternTable
// publication semantics, symbol Values, Event's inline attribute buffer
// and its heap spill, and the correlation-key hash contract across the two
// text kinds.

#include "event/symbol_table.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "cep/correlation_key.h"
#include "event/event.h"
#include "event/value.h"

namespace pldp {
namespace {

TEST(InternTableTest, InternIsGetOrCreateAndDense) {
  InternTable table;
  const uint32_t a = table.Intern("alpha");
  const uint32_t b = table.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Intern("alpha"), a);
  EXPECT_EQ(table.Intern("beta"), b);
  EXPECT_EQ(table.size(), 2u);
  // Dense: both ids below size.
  EXPECT_LT(a, table.size());
  EXPECT_LT(b, table.size());
}

TEST(InternTableTest, FindNeverGrowsTheTable) {
  InternTable table;
  EXPECT_EQ(table.Find("never-interned"), kInvalidInternId);
  EXPECT_EQ(table.size(), 0u);
  const uint32_t id = table.Intern("present");
  EXPECT_EQ(table.Find("present"), id);
  EXPECT_EQ(table.size(), 1u);
}

TEST(InternTableTest, BudgetCapsNewEntriesWithClearError) {
  InternTable table;
  EXPECT_EQ(table.budget(), InternTable::kMaxEntries);
  table.SetBudget(2);
  EXPECT_EQ(table.budget(), 2u);
  const uint32_t a = table.Intern("alpha");
  const uint32_t b = table.Intern("beta");
  EXPECT_NE(a, kInvalidInternId);
  EXPECT_NE(b, kInvalidInternId);
  // Exhausted: new names fail, existing names keep resolving.
  EXPECT_EQ(table.Intern("gamma"), kInvalidInternId);
  EXPECT_EQ(table.Intern("alpha"), a);
  StatusOr<uint32_t> try_gamma = table.TryIntern("gamma");
  ASSERT_FALSE(try_gamma.ok());
  EXPECT_TRUE(try_gamma.status().IsResourceExhausted());
  EXPECT_EQ(table.TryIntern("beta").value(), b);
  // Raising the budget unblocks registration.
  table.SetBudget(3);
  EXPECT_NE(table.Intern("gamma"), kInvalidInternId);
  EXPECT_EQ(table.size(), 3u);
}

TEST(InternTableTest, LoweringBudgetBelowSizeKeepsExistingIdsValid) {
  InternTable table;
  const uint32_t a = table.Intern("alpha");
  const uint32_t b = table.Intern("beta");
  table.SetBudget(1);  // below current size
  EXPECT_EQ(table.NameOf(a), "alpha");
  EXPECT_EQ(table.NameOf(b), "beta");
  EXPECT_EQ(table.Intern("alpha"), a);
  EXPECT_EQ(table.Intern("gamma"), kInvalidInternId);
  table.SetBudget(0);  // 0 restores the default cap
  EXPECT_EQ(table.budget(), InternTable::kMaxEntries);
  EXPECT_NE(table.Intern("gamma"), kInvalidInternId);
}

TEST(InternTableTest, NameOfRoundTripsAndRejectsInvalid) {
  InternTable table;
  const uint32_t id = table.Intern("cell");
  EXPECT_EQ(table.NameOf(id), "cell");
  EXPECT_EQ(table.NameOf(id + 1), "");
  EXPECT_EQ(table.NameOf(kInvalidInternId), "");
}

TEST(InternTableTest, ViewsStayValidAcrossBlockGrowth) {
  InternTable table;
  const uint32_t first = table.Intern("first");
  const std::string_view view = table.NameOf(first);
  // Force several blocks' worth of entries (block size is 1024).
  for (int i = 0; i < 3000; ++i) {
    table.Intern("filler_" + std::to_string(i));
  }
  EXPECT_EQ(view, "first");  // the early view must not have moved
  EXPECT_EQ(table.NameOf(table.Find("filler_2500")), "filler_2500");
}

TEST(InternTableTest, ConcurrentInternAndNameOfAgree) {
  // Readers race the writer through the lock-free NameOf path; every id a
  // reader observes below size() must resolve to a fully written name.
  InternTable table;
  std::thread writer([&table] {
    for (int i = 0; i < 2000; ++i) {
      table.Intern("w" + std::to_string(i));
    }
  });
  for (int pass = 0; pass < 200; ++pass) {
    const size_t n = table.size();
    for (uint32_t id = 0; id < n; ++id) {
      EXPECT_FALSE(table.NameOf(id).empty());
    }
  }
  writer.join();
  EXPECT_EQ(table.size(), 2000u);
}

TEST(SymbolValueTest, SymInternsAndComparesByContent) {
  const Value sym = Value::Sym("uptown");
  const Value same = Value::Sym("uptown");
  const Value other = Value::Sym("downtown");
  EXPECT_TRUE(sym.is_symbol());
  EXPECT_TRUE(sym.is_text());
  EXPECT_EQ(sym, same);
  EXPECT_EQ(sym.AsSymbol().value(), same.AsSymbol().value());
  EXPECT_NE(sym, other);
  // Cross-kind text equality: interned and owned payloads interchange.
  EXPECT_EQ(sym, Value("uptown"));
  EXPECT_EQ(Value("uptown"), sym);
  EXPECT_NE(sym, Value("downtown"));
}

TEST(SymbolValueTest, AsStringViewCoversBothTextKinds) {
  EXPECT_EQ(Value("owned").AsStringView().value(), "owned");
  EXPECT_EQ(Value::Sym("interned").AsStringView().value(), "interned");
  EXPECT_FALSE(Value(int64_t{3}).AsStringView().ok());
  // AsString materializes for both kinds.
  EXPECT_EQ(Value::Sym("interned").AsString().value(), "interned");
  // AsSymbol is symbol-only.
  EXPECT_FALSE(Value("owned").AsSymbol().ok());
}

TEST(SymbolValueTest, TextNeverEqualsNonText) {
  EXPECT_NE(Value::Sym("1"), Value(int64_t{1}));
  EXPECT_NE(Value::Sym("true"), Value(true));
}

TEST(SymbolValueTest, ToStringRendersContent) {
  EXPECT_EQ(Value::Sym("cell_7").ToString(), "\"cell_7\"");
}

TEST(CorrelationKeyInternTest, SymbolAndStringWithEqualContentShareKeys) {
  EXPECT_EQ(CorrelationValueKey(Value::Sym("region-9")),
            CorrelationValueKey(Value("region-9")));
  EXPECT_NE(CorrelationValueKey(Value::Sym("region-9")),
            CorrelationValueKey(Value::Sym("region-8")));
}

TEST(EventInlineStorageTest, InlineAttributesNeedNoSpill) {
  Event e(0, 10);
  const AttrId cell = AttrNames().Intern("intern_test_cell");
  const AttrId zone = AttrNames().Intern("intern_test_zone");
  e.SetAttribute(cell, Value(int64_t{42}));
  e.SetAttribute(zone, Value::Sym("z1"));
  ASSERT_EQ(e.attribute_count(), Event::kInlineAttrCapacity);
  ASSERT_NE(e.FindAttribute(cell), nullptr);
  EXPECT_EQ(e.FindAttribute(cell)->AsInt().value(), 42);
  EXPECT_EQ(e.FindAttribute(zone)->AsStringView().value(), "z1");
  EXPECT_EQ(e.FindAttribute(AttrNames().Intern("intern_test_absent")),
            nullptr);
}

TEST(EventInlineStorageTest, SpillPreservesOrderAndLookup) {
  Event e(0, 10);
  // One past the inline capacity forces the spill path; several more walk
  // the spilled append path.
  const size_t total = Event::kInlineAttrCapacity + 3;
  std::vector<AttrId> ids;
  for (size_t i = 0; i < total; ++i) {
    ids.push_back(AttrNames().Intern("spill_attr_" + std::to_string(i)));
    e.SetAttribute(ids.back(), Value(static_cast<int64_t>(i)));
  }
  ASSERT_EQ(e.attribute_count(), total);
  for (size_t i = 0; i < total; ++i) {
    // Insertion order is preserved across the spill...
    EXPECT_EQ(e.attribute(i).id, ids[i]);
    // ...and id lookup still works for pre- and post-spill entries.
    ASSERT_NE(e.FindAttribute(ids[i]), nullptr);
    EXPECT_EQ(e.FindAttribute(ids[i])->AsInt().value(),
              static_cast<int64_t>(i));
  }
  // Replacement works in the spilled regime too.
  e.SetAttribute(ids[0], Value(int64_t{99}));
  EXPECT_EQ(e.attribute_count(), total);
  EXPECT_EQ(e.FindAttribute(ids[0])->AsInt().value(), 99);
}

TEST(EventInlineStorageTest, CopyOfSpilledEventIsDeep) {
  Event e(0, 10);
  const size_t total = Event::kInlineAttrCapacity + 1;
  for (size_t i = 0; i < total; ++i) {
    e.SetAttribute("deep_attr_" + std::to_string(i),
                   Value(static_cast<int64_t>(i)));
  }
  Event copy = e;
  EXPECT_EQ(copy, e);
  copy.SetAttribute("deep_attr_0", Value(int64_t{77}));
  EXPECT_NE(copy, e);
  EXPECT_EQ(e.FindAttribute("deep_attr_0")->AsInt().value(), 0);
}

TEST(EventInlineStorageTest, NameAndIdKeyedWritesMeetInOneIdSpace) {
  Event by_name(0, 1);
  by_name.SetAttribute("shared_name", Value::Sym("payload"));
  Event by_id(0, 1);
  by_id.SetAttribute(AttrNames().Intern("shared_name"), Value("payload"));
  // Same id space + cross-kind text equality => identical events.
  EXPECT_EQ(by_name, by_id);
  EXPECT_EQ(by_name.attribute_name(0), "shared_name");
}

TEST(EventInlineStorageTest, MoveLeavesNoSharing) {
  Event e(0, 10);
  e.SetAttribute("move_attr", Value::Sym("v"));
  Event moved = std::move(e);
  ASSERT_NE(moved.FindAttribute("move_attr"), nullptr);
  EXPECT_EQ(moved.FindAttribute("move_attr")->AsStringView().value(), "v");
}

TEST(EventInlineStorageTest, MovedFromSpilledEventStaysValid) {
  // Regression: the defaulted move nulled spill_ but left attr_count_, so
  // touching a moved-from spilled event read past the inline array.
  Event e(0, 10);
  for (size_t i = 0; i < Event::kInlineAttrCapacity + 2; ++i) {
    e.SetAttribute("moved_spill_" + std::to_string(i),
                   Value(static_cast<int64_t>(i)));
  }
  Event sink = std::move(e);
  EXPECT_EQ(sink.attribute_count(), Event::kInlineAttrCapacity + 2);
  // The moved-from event is valid and attribute-free: every accessor is
  // safe to call.
  EXPECT_EQ(e.attribute_count(), 0u);
  EXPECT_EQ(e.FindAttribute("moved_spill_0"), nullptr);
  EXPECT_NE(e.ToString(), "");
  Event reassigned;
  reassigned = std::move(sink);
  EXPECT_EQ(sink.attribute_count(), 0u);
  EXPECT_EQ(reassigned.attribute_count(), Event::kInlineAttrCapacity + 2);
  EXPECT_EQ(
      reassigned.FindAttribute("moved_spill_1")->AsInt().value(), 1);
}

}  // namespace
}  // namespace pldp
