// Copyright 2026 The PLDP Authors.
//
// Tests for window-batch and incremental pattern matching, including the
// cross-check property: the incremental SEQ matcher must agree with the
// window-batch subsequence search on random streams.

#include "cep/matcher.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace pldp {
namespace {

Window MakeWindow(std::initializer_list<std::pair<EventTypeId, Timestamp>>
                      events) {
  Window w;
  for (auto [type, ts] : events) w.events.emplace_back(type, ts);
  if (!w.events.empty()) {
    w.start = w.events.front().timestamp();
    w.end = w.events.back().timestamp() + 1;
  }
  return w;
}

Pattern Seq(std::vector<EventTypeId> elems) {
  return Pattern::Create("seq", std::move(elems), DetectionMode::kSequence)
      .value();
}
Pattern Conj(std::vector<EventTypeId> elems) {
  return Pattern::Create("and", std::move(elems), DetectionMode::kConjunction)
      .value();
}
Pattern Disj(std::vector<EventTypeId> elems) {
  return Pattern::Create("or", std::move(elems), DetectionMode::kDisjunction)
      .value();
}

// --- window-batch: sequence ---------------------------------------------------

TEST(SequenceMatchTest, FindsOrderedSubsequence) {
  Window w = MakeWindow({{0, 1}, {2, 2}, {1, 3}, {2, 4}});
  auto m = FindMatchInWindow(w, Seq({0, 1, 2})).value();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->event_positions, (std::vector<size_t>{0, 2, 3}));
  EXPECT_EQ(m->detected_at, 4);
}

TEST(SequenceMatchTest, OrderMatters) {
  Window w = MakeWindow({{1, 1}, {0, 2}});
  EXPECT_FALSE(PatternOccursInWindow(w, Seq({0, 1})).value());
  EXPECT_TRUE(PatternOccursInWindow(w, Seq({1, 0})).value());
}

TEST(SequenceMatchTest, RepeatedElementNeedsRepeatedEvents) {
  Window w = MakeWindow({{0, 1}, {1, 2}});
  EXPECT_FALSE(PatternOccursInWindow(w, Seq({0, 0})).value());
  Window w2 = MakeWindow({{0, 1}, {0, 2}});
  EXPECT_TRUE(PatternOccursInWindow(w2, Seq({0, 0})).value());
}

TEST(SequenceMatchTest, EmptyWindowNeverMatches) {
  EXPECT_FALSE(PatternOccursInWindow(Window{}, Seq({0})).value());
}

// --- window-batch: conjunction -------------------------------------------------

TEST(ConjunctionMatchTest, AnyOrderSuffices) {
  Window w = MakeWindow({{2, 1}, {0, 2}, {1, 3}});
  EXPECT_TRUE(PatternOccursInWindow(w, Conj({0, 1, 2})).value());
}

TEST(ConjunctionMatchTest, MissingTypeFails) {
  Window w = MakeWindow({{0, 1}, {1, 2}});
  EXPECT_FALSE(PatternOccursInWindow(w, Conj({0, 1, 2})).value());
}

TEST(ConjunctionMatchTest, MultiplicityRequired) {
  Window w = MakeWindow({{0, 1}, {1, 2}});
  EXPECT_FALSE(PatternOccursInWindow(w, Conj({0, 0, 1})).value());
  Window w2 = MakeWindow({{0, 1}, {0, 2}, {1, 3}});
  EXPECT_TRUE(PatternOccursInWindow(w2, Conj({0, 0, 1})).value());
}

TEST(ConjunctionMatchTest, PositionsAreEarliestWitnesses) {
  Window w = MakeWindow({{1, 1}, {0, 2}, {1, 3}, {0, 4}});
  auto m = FindMatchInWindow(w, Conj({0, 1})).value();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->event_positions, (std::vector<size_t>{1, 0}));
}

// --- window-batch: disjunction ---------------------------------------------------

TEST(DisjunctionMatchTest, AnyElementTriggers) {
  Window w = MakeWindow({{5, 1}});
  EXPECT_TRUE(PatternOccursInWindow(w, Disj({3, 5, 7})).value());
  EXPECT_FALSE(PatternOccursInWindow(w, Disj({3, 7})).value());
}

TEST(DisjunctionMatchTest, WitnessIsFirstOccurrence) {
  Window w = MakeWindow({{9, 1}, {3, 2}, {5, 3}});
  auto m = FindMatchInWindow(w, Disj({3, 5})).value();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->event_positions, (std::vector<size_t>{1}));
}

// --- counting ---------------------------------------------------------------------

TEST(CountMatchesTest, SequenceGreedyNonOverlapping) {
  Window w = MakeWindow({{0, 1}, {1, 2}, {0, 3}, {1, 4}, {0, 5}});
  EXPECT_EQ(CountMatchesInWindow(w, Seq({0, 1})).value(), 2u);
}

TEST(CountMatchesTest, ConjunctionBottleneck) {
  Window w = MakeWindow({{0, 1}, {0, 2}, {0, 3}, {1, 4}});
  EXPECT_EQ(CountMatchesInWindow(w, Conj({0, 1})).value(), 1u);
  EXPECT_EQ(CountMatchesInWindow(w, Conj({0})).value(), 3u);
  EXPECT_EQ(CountMatchesInWindow(w, Conj({0, 0})).value(), 1u);
}

TEST(CountMatchesTest, DisjunctionSumsOccurrences) {
  Window w = MakeWindow({{0, 1}, {1, 2}, {0, 3}});
  EXPECT_EQ(CountMatchesInWindow(w, Disj({0, 1})).value(), 3u);
  EXPECT_EQ(CountMatchesInWindow(w, Disj({2})).value(), 0u);
}

// --- incremental: sequence ----------------------------------------------------------

TEST(IncrementalSequenceTest, DetectsWithinTimeWindow) {
  Pattern p = Seq({0, 1, 2});
  auto m = MakeIncrementalMatcher(p, /*window=*/10);
  EXPECT_FALSE(m->OnEvent(Event(0, 1)));
  EXPECT_FALSE(m->OnEvent(Event(1, 3)));
  EXPECT_TRUE(m->OnEvent(Event(2, 8)));
  ASSERT_EQ(m->detections().size(), 1u);
  EXPECT_EQ(m->detections()[0], 8);
}

TEST(IncrementalSequenceTest, ExpiredRunsDoNotMatch) {
  Pattern p = Seq({0, 1});
  auto m = MakeIncrementalMatcher(p, /*window=*/5);
  m->OnEvent(Event(0, 1));
  EXPECT_FALSE(m->OnEvent(Event(1, 7)));  // span 6 > 5
  EXPECT_TRUE(m->detections().empty());
}

TEST(IncrementalSequenceTest, LaterStartKeepsRunAlive) {
  Pattern p = Seq({0, 1});
  auto m = MakeIncrementalMatcher(p, /*window=*/5);
  m->OnEvent(Event(0, 1));
  m->OnEvent(Event(0, 4));          // fresher start supersedes
  EXPECT_TRUE(m->OnEvent(Event(1, 8)));  // 8-4=4 <= 5
}

TEST(IncrementalSequenceTest, OneEventAdvancesOneStep) {
  // Pattern (0, 0): a single event must not complete both steps at once.
  Pattern p = Seq({0, 0});
  auto m = MakeIncrementalMatcher(p, /*window=*/10);
  EXPECT_FALSE(m->OnEvent(Event(0, 1)));
  EXPECT_TRUE(m->OnEvent(Event(0, 2)));
}

TEST(IncrementalSequenceTest, UnboundedWindow) {
  Pattern p = Seq({0, 1});
  auto m = MakeIncrementalMatcher(p, /*window=*/0);
  m->OnEvent(Event(0, 1));
  EXPECT_TRUE(m->OnEvent(Event(1, 1000000)));
}

TEST(IncrementalSequenceTest, ResetClearsState) {
  Pattern p = Seq({0, 1});
  auto m = MakeIncrementalMatcher(p, 10);
  m->OnEvent(Event(0, 1));
  m->Reset();
  EXPECT_FALSE(m->OnEvent(Event(1, 2)));
  EXPECT_TRUE(m->detections().empty());
}

// --- incremental: conjunction ----------------------------------------------------------

TEST(IncrementalConjunctionTest, AllTypesWithinTrailingWindow) {
  Pattern p = Conj({0, 1});
  auto m = MakeIncrementalMatcher(p, /*window=*/5);
  EXPECT_FALSE(m->OnEvent(Event(0, 1)));
  EXPECT_TRUE(m->OnEvent(Event(1, 4)));
  // 0 last seen at 1; event at 9 is too far from it.
  EXPECT_FALSE(m->OnEvent(Event(1, 9)));
  EXPECT_TRUE(m->OnEvent(Event(0, 10)));  // 1 seen at 9, within 5
}

TEST(IncrementalConjunctionTest, IgnoresForeignTypes) {
  Pattern p = Conj({0, 1});
  auto m = MakeIncrementalMatcher(p, 5);
  EXPECT_FALSE(m->OnEvent(Event(7, 1)));
  EXPECT_TRUE(m->detections().empty());
}

// --- incremental: disjunction ------------------------------------------------------------

TEST(IncrementalDisjunctionTest, EveryElementOccurrenceDetects) {
  Pattern p = Disj({0, 1});
  auto m = MakeIncrementalMatcher(p, 5);
  EXPECT_TRUE(m->OnEvent(Event(0, 1)));
  EXPECT_TRUE(m->OnEvent(Event(1, 2)));
  EXPECT_FALSE(m->OnEvent(Event(2, 3)));
  EXPECT_EQ(m->detections().size(), 2u);
}

// --- property: incremental agrees with window-batch ---------------------------------------

class IncrementalVsBatchSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalVsBatchSweep, SequenceExistenceAgrees) {
  Rng rng(GetParam());
  const size_t kTypes = 4;
  // Random pattern of length 2-3 over the type alphabet.
  size_t len = 2 + rng.UniformUint64(2);
  std::vector<EventTypeId> elems;
  for (size_t i = 0; i < len; ++i) {
    elems.push_back(static_cast<EventTypeId>(rng.UniformUint64(kTypes)));
  }
  Pattern p = Seq(elems);

  // Random window of events at consecutive timestamps: the incremental
  // matcher with an unbounded time window and the batch subsequence search
  // must agree on existence.
  Window w;
  w.start = 0;
  size_t n = 1 + rng.UniformUint64(30);
  for (size_t i = 0; i < n; ++i) {
    w.events.emplace_back(static_cast<EventTypeId>(rng.UniformUint64(kTypes)),
                          static_cast<Timestamp>(i));
  }
  w.end = static_cast<Timestamp>(n);

  bool batch = PatternOccursInWindow(w, p).value();

  auto inc = MakeIncrementalMatcher(p, /*window=*/0);
  for (const Event& e : w.events) inc->OnEvent(e);
  bool incremental = !inc->detections().empty();

  EXPECT_EQ(batch, incremental)
      << "pattern=" << p.ToString() << " n=" << n << " seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomStreams, IncrementalVsBatchSweep,
                         ::testing::Range<uint64_t>(0, 50));

}  // namespace
}  // namespace pldp
