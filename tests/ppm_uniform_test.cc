// Copyright 2026 The PLDP Authors.
//
// Tests for the uniform pattern-level PPM — including the paper's central
// data-quality property: event types outside every private pattern are
// never perturbed.

#include "ppm/pattern_level.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace pldp {
namespace {

using testing_util::AddPattern;
using testing_util::MakeWindow;
using testing_util::MakeWorld;
using testing_util::World;

World TwoPatternWorld() {
  // 6 types; private pattern over {0,1,2}; target over {2,3} (overlaps on 2).
  World w = MakeWorld(6);
  AddPattern(&w, "private", {0, 1, 2}, DetectionMode::kConjunction,
             /*is_private=*/true, /*is_target=*/false);
  AddPattern(&w, "target", {2, 3}, DetectionMode::kConjunction,
             /*is_private=*/false, /*is_target=*/true);
  return w;
}

TEST(UniformPpmTest, InitializeValidatesContext) {
  UniformPatternPpm ppm;
  MechanismContext empty;
  EXPECT_TRUE(ppm.Initialize(empty).IsInvalidArgument());

  World w = MakeWorld(3);  // no private patterns
  EXPECT_TRUE(ppm.Initialize(w.Context()).IsInvalidArgument());

  World w2 = TwoPatternWorld();
  w2.epsilon = -1.0;
  EXPECT_TRUE(ppm.Initialize(w2.Context()).IsInvalidArgument());
}

TEST(UniformPpmTest, InitializeRejectsUnknownPrivateId) {
  World w = TwoPatternWorld();
  w.private_ids.push_back(42);
  UniformPatternPpm ppm;
  EXPECT_TRUE(ppm.Initialize(w.Context()).IsNotFound());
}

TEST(UniformPpmTest, AllocationIsUniformEpsilonOverM) {
  World w = TwoPatternWorld();
  w.epsilon = 3.0;
  UniformPatternPpm ppm;
  ASSERT_TRUE(ppm.Initialize(w.Context()).ok());
  ASSERT_EQ(ppm.private_pattern_count(), 1u);
  const BudgetAllocation& alloc = ppm.allocation(0);
  ASSERT_EQ(alloc.size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(alloc[i], 1.0);
  EXPECT_DOUBLE_EQ(ppm.PatternEpsilon(0), 3.0);
}

TEST(UniformPpmTest, RequiresInitializeBeforePublish) {
  UniformPatternPpm ppm;
  Rng rng(1);
  EXPECT_TRUE(ppm.PublishWindow(Window{}, &rng).status()
                  .IsFailedPrecondition());
}

TEST(UniformPpmTest, RejectsNullRng) {
  World w = TwoPatternWorld();
  UniformPatternPpm ppm;
  ASSERT_TRUE(ppm.Initialize(w.Context()).ok());
  EXPECT_TRUE(ppm.PublishWindow(Window{}, nullptr).status()
                  .IsInvalidArgument());
}

TEST(UniformPpmTest, NonPrivateTypesPassThroughUnperturbed) {
  // THE pattern-level property: noise only touches private-pattern types.
  World w = TwoPatternWorld();
  w.epsilon = 0.1;  // heavy noise on private types
  UniformPatternPpm ppm;
  ASSERT_TRUE(ppm.Initialize(w.Context()).ok());
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    Window win = MakeWindow(static_cast<size_t>(trial), {1, 3, 5});
    PublishedView v = ppm.PublishWindow(win, &rng).value();
    // Types 3, 4, 5 are outside the private pattern: exact truth always.
    EXPECT_TRUE(v.presence[3]);
    EXPECT_FALSE(v.presence[4]);
    EXPECT_TRUE(v.presence[5]);
  }
}

TEST(UniformPpmTest, PrivateTypesAreActuallyPerturbed) {
  World w = TwoPatternWorld();
  w.epsilon = 0.1;  // flip probability near 1/2 per element
  UniformPatternPpm ppm;
  ASSERT_TRUE(ppm.Initialize(w.Context()).ok());
  Rng rng(11);
  int flips = 0;
  const int trials = 500;
  for (int trial = 0; trial < trials; ++trial) {
    Window win = MakeWindow(static_cast<size_t>(trial), {0, 1, 2});
    PublishedView v = ppm.PublishWindow(win, &rng).value();
    for (EventTypeId t : {0u, 1u, 2u}) {
      if (!v.presence[t]) ++flips;
    }
  }
  // ε/m = 0.033 → p ≈ 0.49; expect roughly half of the 1500 bits flipped.
  EXPECT_GT(flips, 500);
  EXPECT_LT(flips, 1000);
}

TEST(UniformPpmTest, HighBudgetPreservesTruthAlmostAlways) {
  World w = TwoPatternWorld();
  w.epsilon = 30.0;  // ε_i = 10 → p ≈ 4.5e-5
  UniformPatternPpm ppm;
  ASSERT_TRUE(ppm.Initialize(w.Context()).ok());
  Rng rng(13);
  int errors = 0;
  for (int trial = 0; trial < 300; ++trial) {
    Window win = MakeWindow(static_cast<size_t>(trial), {0, 2});
    PublishedView v = ppm.PublishWindow(win, &rng).value();
    if (!v.presence[0] || v.presence[1] || !v.presence[2]) ++errors;
  }
  EXPECT_LE(errors, 2);
}

TEST(UniformPpmTest, EmpiricalFlipRateMatchesTheory) {
  // Single-element private pattern: flip probability is exactly
  // 1/(1+e^ε).
  World w = MakeWorld(2);
  AddPattern(&w, "priv", {0}, DetectionMode::kConjunction, true, false);
  AddPattern(&w, "tgt", {1}, DetectionMode::kConjunction, false, true);
  w.epsilon = 1.0;
  UniformPatternPpm ppm;
  ASSERT_TRUE(ppm.Initialize(w.Context()).ok());
  double expected_p = 1.0 / (1.0 + std::exp(1.0));
  Rng rng(17);
  const int trials = 100000;
  int flipped = 0;
  Window win = MakeWindow(0, {0});
  for (int i = 0; i < trials; ++i) {
    PublishedView v = ppm.PublishWindow(win, &rng).value();
    if (!v.presence[0]) ++flipped;
  }
  EXPECT_NEAR(static_cast<double>(flipped) / trials, expected_p, 0.005);
}

TEST(UniformPpmTest, OverlappingPrivatePatternsComposeIndependently) {
  // Two private patterns sharing type 1: the shared bit is perturbed twice,
  // which only adds noise (paper §V-A). Verify the empirical flip rate of
  // the shared type exceeds the single-application rate.
  World w = MakeWorld(4);
  AddPattern(&w, "privA", {0, 1}, DetectionMode::kConjunction, true, false);
  AddPattern(&w, "privB", {1, 2}, DetectionMode::kConjunction, true, false);
  AddPattern(&w, "tgt", {3}, DetectionMode::kConjunction, false, true);
  w.epsilon = 2.0;  // ε_i = 1 per element
  UniformPatternPpm ppm;
  ASSERT_TRUE(ppm.Initialize(w.Context()).ok());
  ASSERT_EQ(ppm.private_pattern_count(), 2u);

  double p1 = 1.0 / (1.0 + std::exp(1.0));          // single application
  double p2 = p1 * (1.0 - p1) + (1.0 - p1) * p1;    // two independent
  Rng rng(23);
  const int trials = 100000;
  int flipped_shared = 0;
  int flipped_solo = 0;
  Window win = MakeWindow(0, {0, 1, 2});
  for (int i = 0; i < trials; ++i) {
    PublishedView v = ppm.PublishWindow(win, &rng).value();
    if (!v.presence[1]) ++flipped_shared;
    if (!v.presence[0]) ++flipped_solo;
  }
  EXPECT_NEAR(static_cast<double>(flipped_shared) / trials, p2, 0.006);
  EXPECT_NEAR(static_cast<double>(flipped_solo) / trials, p1, 0.006);
}

TEST(UniformPpmTest, DeterministicGivenSeed) {
  World w = TwoPatternWorld();
  UniformPatternPpm a;
  UniformPatternPpm b;
  ASSERT_TRUE(a.Initialize(w.Context()).ok());
  ASSERT_TRUE(b.Initialize(w.Context()).ok());
  Rng ra(5);
  Rng rb(5);
  for (int i = 0; i < 50; ++i) {
    Window win = MakeWindow(static_cast<size_t>(i), {0, 2, 4});
    EXPECT_EQ(a.PublishWindow(win, &ra).value().presence,
              b.PublishWindow(win, &rb).value().presence);
  }
}

}  // namespace
}  // namespace pldp
