// Copyright 2026 The PLDP Authors.
//
// Model-checks the exchange credit protocol end to end through the REAL
// pipeline objects: ExchangeEmitter::Emit consuming credits (and
// blocking via AcquireCreditSlow when the budget is gone), MergeShard's
// worker loop receiving, gating on watermark bounds, releasing to the
// engine, and returning credits (src/runtime/exchange.{h,cc},
// merge_shard.{h,cc}). The worker runs on a model thread through the
// ModelRunWorker seam — Start()/Stop() would spawn a std::thread the
// cooperative scheduler cannot see.
//
// Properties: a lane's in-flight events never exceed its credit budget
// (the reorder ring's PLDP_PROTOCOL_ASSERT capacity cap checks this at
// every push), a credit-blocked producer eventually unblocks once the
// merge releases (no deadlock/livelock in any explored schedule), and
// after the drain all credits are back and every event was merged.
//
// The PLDP_CHECK_NEGATIVE_CREDITS twin (merge_shard.cc) returns the
// credit at receipt instead of at release: the producer can then put a
// full budget back in flight while the reorder buffer still holds the
// previous one, and the checker must trip the capacity cap.

#include <cstdint>
#include <memory>

#include "check/model.h"
#include "event/event.h"
#include "gtest/gtest.h"
#include "runtime/exchange.h"
#include "runtime/merge_shard.h"

namespace pldp {
namespace {

using check::ModelConfig;
using check::ModelJoin;
using check::ModelResult;
using check::ModelSpawn;
using check::RunModel;

// 2 producers x 1 consumer, budget 1 per lane — the smallest shape that
// still covers every protocol transition. Producer row 1 stays idle (its
// emitter only watermarks) so the merge is genuinely gated on the
// watermark protocol, and the second Emit on row 0 genuinely needs the
// credit returned by a release — the full consume/return cycle,
// including AcquireCreditSlow's wait-and-watermark path. (Budget 1 keeps
// the DFS tractable: the schedule space grows exponentially in atomic
// ops per execution.)
struct Harness {
  Harness()
      : fabric(2, 1, /*lane_capacity=*/4, /*reorder_capacity=*/1),
        shard(0, fabric.Column(0)),
        emitter_a(fabric.Row(0), nullptr, &fabric),
        emitter_b(fabric.Row(1), nullptr, &fabric) {}
  ExchangeFabric fabric;
  MergeShard shard;
  ExchangeEmitter emitter_a;
  ExchangeEmitter emitter_b;
};

#ifndef PLDP_CHECK_NEGATIVE_CREDITS

ModelResult RunCreditCycleHarness(ModelConfig cfg) {
  return RunModel(cfg, [] {
    auto h = std::make_unique<Harness>();

    int worker = ModelSpawn("merge", [&] { h->shard.ModelRunWorker(); });
    int producer = ModelSpawn("producer", [&] {
      // The first event consumes lane 0's whole budget.
      h->emitter_a.BeginTrigger(1);
      PLDP_MODEL_ASSERT(h->emitter_a.Emit(Event(0, 0, 0)).ok());
      // The idle peer seals its lane, unblocking the merge gate for
      // everything on lane 0.
      PLDP_MODEL_ASSERT(h->emitter_b.Broadcast(kExchangeSeqEnd).ok());
      // Second event: over budget until the merge releases the first and
      // returns its credit (AcquireCreditSlow's wait-and-watermark path).
      h->emitter_a.BeginTrigger(2);
      PLDP_MODEL_ASSERT(h->emitter_a.Emit(Event(0, 0, 0)).ok());
      PLDP_MODEL_ASSERT(h->emitter_a.Broadcast(kExchangeSeqEnd).ok());
      h->shard.ModelRequestStop();
    });

    ModelJoin(producer);
    ModelJoin(worker);
    h->shard.ModelFinalize();

    // Drained: both events reached the engine and every credit came back
    // (consume-on-emit / return-on-release balanced out).
    PLDP_MODEL_ASSERT(h->shard.stats().events_processed == 2);
    // order: acquire pairs with the merge's release returns.
    PLDP_MODEL_ASSERT(
        h->fabric.lane(0, 0).credits.load(std::memory_order_acquire) == 1);
    PLDP_MODEL_ASSERT(
        h->fabric.lane(1, 0).credits.load(std::memory_order_acquire) == 1);
  });
}

// Bounded-DFS exploration of the full cycle. The harness is the largest
// model suite by schedule points (every queue index, credit counter,
// doorbell and stop flag access branches), so the preemption bound stays
// at 1 — every single-preemption schedule of the real pipeline code.
TEST(CreditsModel, ConsumeReturnCycleClean) {
  ModelConfig cfg;
  cfg.name = "credits";
  cfg.preemption_bound = 1;
  cfg.max_steps_per_exec = 20000;
  ModelResult r = RunCreditCycleHarness(cfg);
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_TRUE(r.exhausted) << "DFS did not exhaust; executions="
                           << r.executions;
}

// Random-walk soak with unbounded preemptions (CI deepens via
// PLDP_MODEL_RANDOM_ITERS).
TEST(CreditsModel, RandomWalkClean) {
  ModelConfig cfg;
  cfg.name = "credits-random";
  cfg.random = true;
  cfg.random_iterations = 100;
  cfg.seed = 23;
  ModelResult r = RunCreditCycleHarness(cfg);
  EXPECT_FALSE(r.failed) << r.report;
}

#else  // PLDP_CHECK_NEGATIVE_CREDITS

// With credits returned at receipt, producer 0 can emit a second event
// while the reorder buffer still holds the first (the merge is gated on
// the silent peer lane) — the ring's capacity cap must trip under the
// checker.
TEST(CreditsModelNegative, CheckerCatchesEarlyCreditReturn) {
  ModelConfig cfg;
  cfg.name = "credits-early-return";
  cfg.preemption_bound = 1;
  cfg.max_steps_per_exec = 20000;
  ModelResult r = RunModel(cfg, [] {
    auto h = std::make_unique<Harness>();

    int worker = ModelSpawn("merge", [&] { h->shard.ModelRunWorker(); });
    int producer = ModelSpawn("producer", [&] {
      // The peer lane never watermarks, so nothing is ever released:
      // any credit the producer sees after the first emit is one the
      // mutation returned at receipt, and the second emit overfills the
      // reorder ring.
      for (uint64_t seq = 1; seq <= 2; ++seq) {
        h->emitter_a.BeginTrigger(seq);
        PLDP_MODEL_ASSERT(h->emitter_a.Emit(Event(0, 0, 0)).ok());
      }
      h->shard.ModelRequestStop();
    });

    ModelJoin(producer);
    ModelJoin(worker);
  });
  EXPECT_TRUE(r.failed)
      << "seeded early credit return was NOT caught by the checker";
  EXPECT_FALSE(r.replay.empty());
}

#endif  // PLDP_CHECK_NEGATIVE_CREDITS

}  // namespace
}  // namespace pldp
