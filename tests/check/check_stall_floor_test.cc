// Copyright 2026 The PLDP Authors.
//
// Model-checks the stall-floor quiescence handshake
// (src/runtime/stall_floor.{h,cc}) — the protocol that resolved PR 9's
// idle-peer deadlock by letting a stalled producer lift a quiescent
// peer's lane floor on its behalf.
//
// The harness is the protocol's full three-party shape, with the lane
// reduced to a single modeled slot:
//
//   peer      — runs one real stamping call: EnterCall, read the armed
//               resync floor, stamp at/above it, release-publish the
//               stamp into its lane, ExitCall. (IngestProducer::CallScope
//               + MaybeResync in the engine.)
//   staller   — the stalled producer: arms the resync floor at the
//               ingest frontier, runs QuiescenceFence, and claims the
//               floor for the peer iff InCall reads false.
//               (ParallelStreamingEngine::PublishStallFloors.)
//   merge     — the shard worker's gate, in MultiRunLoop's floor-first
//               order: acquire the claimed floor, then the lane head,
//               and release a rival candidate below the floor iff the
//               lane looks empty.
//
// Safety property: the merge must never release a rival candidate that
// the peer's stamp should have preceded. Two ways to get this wrong, and
// the checker covers both:
//   - drop the stall-side fence (PLDP_CHECK_NEGATIVE_STALL): the peer can
//     be "proven" quiescent mid-call and stamp below the claimed floor;
//   - weaken InCall to relaxed: a peer that already exited had its push
//     stripped from the quiescence proof, so the merge sees the lifted
//     floor but not the push (ClaimAfterExitCarriesPushes below is the
//     machine-checked reason InCall is an acquire load).

#include <cstdint>
#include <memory>

#include "check/model.h"
#include "runtime/stall_floor.h"

#include "gtest/gtest.h"

namespace pldp {
namespace {

using check::ModelConfig;
using check::ModelJoin;
using check::ModelResult;
using check::ModelSpawn;
using check::RunModel;

constexpr uint64_t kNoHead = ~uint64_t{0};  // modeled lane: empty slot
constexpr uint64_t kFrontier = 10;          // bound the staller arms
constexpr uint64_t kRival = 5;              // rival candidate's sequence

struct Outcome {
  uint64_t peer_stamp = kNoHead;  // what the peer stamped (if it ran)
  uint64_t merge_floor = 0;       // floor the merge observed
  uint64_t merge_head = kNoHead;  // lane head the merge observed
  bool released_rival = false;    // merge released the kRival candidate
};

ModelResult RunHandshakeHarness(ModelConfig cfg) {
  return RunModel(cfg, [] {
    auto coord = std::make_unique<StallFloorCoordinator>();
    coord->Configure(2);  // producer 0 = staller, producer 1 = peer
    auto lane = std::make_unique<Atomic<uint64_t>>(kNoHead);
    auto floor = std::make_unique<Atomic<uint64_t>>(0);
    auto out = std::make_unique<Outcome>();

    int peer = ModelSpawn("peer", [&] {
      coord->EnterCall(1);
      const uint64_t rf = coord->AcquireResyncFloor();
      const uint64_t stamp = rf > 1 ? rf : 1;
      out->peer_stamp = stamp;
      // order: release — the push is published before the in-call flag
      // clears, exactly like an SpscQueue tail store inside a call.
      lane->store(stamp, std::memory_order_release);
      coord->ExitCall(1);
    });

    int staller = ModelSpawn("staller", [&] {
      coord->ArmResyncFloor(kFrontier);
      coord->QuiescenceFence();
      if (!coord->InCall(1)) {
        // order: release — the claimed floor must carry everything the
        // quiescence proof saw (NoteLaneFloor in the real engine).
        floor->store(kFrontier, std::memory_order_release);
      }
    });

    int merge = ModelSpawn("merge", [&] {
      // MultiRunLoop's refill order: floor first, head second.
      // order: acquire pairs with the staller's claim store.
      out->merge_floor = floor->load(std::memory_order_acquire);
      // order: acquire pairs with the peer's push store.
      out->merge_head = lane->load(std::memory_order_acquire);
      if (out->merge_head == kNoHead && out->merge_floor > kRival) {
        out->released_rival = true;
      }
    });

    ModelJoin(peer);
    ModelJoin(staller);
    ModelJoin(merge);

    // The violation PR 9's fix must exclude: the merge released the rival
    // on the strength of the claimed floor while the peer's stamp — which
    // orders before the rival — was neither visible nor excluded.
    PLDP_MODEL_ASSERT(!(out->released_rival && out->peer_stamp < kRival));
  });
}

#ifndef PLDP_CHECK_NEGATIVE_STALL

// Every interleaving of peer-call vs floor-claim vs merge-gate within the
// bound: the claimed floor is sound. Covers both Dekker outcomes (fence
// order decides: peer sees the armed bound, or staller sees the in-call
// flag) and the exit race (ClaimAfterExitCarriesPushes's subject): a peer
// proven quiescent AFTER exiting has its pre-exit push carried to the
// merge by InCall's acquire + the floor's release chain.
TEST(StallFloorModel, HandshakeExhaustsClean) {
  ModelConfig cfg;
  cfg.name = "stall-floor";
  cfg.preemption_bound = 3;
  ModelResult r = RunHandshakeHarness(cfg);
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_TRUE(r.exhausted);
}

// The exit race in isolation, driven to a deterministic schedule point:
// peer completes its whole call first, then the staller proves it
// quiescent, then the merge evaluates the gate. The peer's stamp is 1
// (it never saw the floor), so the merge must see the push — this is the
// case that fails if InCall is weakened to a relaxed load.
TEST(StallFloorModel, ClaimAfterExitCarriesPushes) {
  ModelConfig cfg;
  cfg.name = "stall-floor-exit";
  cfg.preemption_bound = 2;
  ModelResult r = RunModel(cfg, [] {
    auto coord = std::make_unique<StallFloorCoordinator>();
    coord->Configure(2);
    auto lane = std::make_unique<Atomic<uint64_t>>(kNoHead);
    auto floor = std::make_unique<Atomic<uint64_t>>(0);

    // Peer's call runs to completion on the body thread: stamp 1, push,
    // exit. No concurrency yet — the race under test starts at the claim.
    coord->EnterCall(1);
    const uint64_t rf = coord->AcquireResyncFloor();
    lane->store(rf > 1 ? rf : 1, std::memory_order_release);
    coord->ExitCall(1);

    int staller = ModelSpawn("staller", [&] {
      coord->ArmResyncFloor(kFrontier);
      coord->QuiescenceFence();
      if (!coord->InCall(1)) {
        floor->store(kFrontier, std::memory_order_release);
      }
    });
    int merge = ModelSpawn("merge", [&] {
      const uint64_t f = floor->load(std::memory_order_acquire);
      const uint64_t head = lane->load(std::memory_order_acquire);
      if (f > kRival) {
        // Floor observed ⇒ the quiescence proof observed the exit ⇒ the
        // pre-exit push must be visible: the lane may not look empty.
        PLDP_MODEL_ASSERT(head != kNoHead);
      }
    });
    ModelJoin(staller);
    ModelJoin(merge);
  });
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_TRUE(r.exhausted);
}

// Random-walk soak past the DFS bound (CI deepens via
// PLDP_MODEL_RANDOM_ITERS).
TEST(StallFloorModel, RandomWalkClean) {
  ModelConfig cfg;
  cfg.name = "stall-floor-random";
  cfg.random = true;
  cfg.random_iterations = 400;
  cfg.seed = 11;
  ModelResult r = RunHandshakeHarness(cfg);
  EXPECT_FALSE(r.failed) << r.report;
}

#else  // PLDP_CHECK_NEGATIVE_STALL

// With QuiescenceFence deleted, the Dekker pair is broken: the staller
// can read a stale "out of call" while the mid-call peer reads a stale
// pre-arm floor — the peer stamps 1 under a claimed floor of 10, and the
// merge releases the rival ahead of it. The checker must find it.
TEST(StallFloorModelNegative, CheckerCatchesMissingQuiescenceFence) {
  ModelConfig cfg;
  cfg.name = "stall-floor-unfenced";
  cfg.preemption_bound = 3;
  ModelResult r = RunHandshakeHarness(cfg);
  EXPECT_TRUE(r.failed)
      << "seeded fence deletion was NOT caught by the checker";
  EXPECT_FALSE(r.replay.empty());
}

#endif  // PLDP_CHECK_NEGATIVE_STALL

}  // namespace
}  // namespace pldp
