// Copyright 2026 The PLDP Authors.
//
// Model-checks the SPSC ring (src/runtime/spsc_queue.h): one producer and
// one consumer racing push against pop through the real TryPush/TryPop /
// TryPushN/TryPopN code, with the checker branching over every stale
// index read coherence allows. The properties: no data race on the
// payload slots (RaceCell vector-clock check), values arrive in order,
// and nothing is lost or duplicated.
//
// Compiled twice by CMake: the plain binary asserts the checker exhausts
// the schedule space with zero findings; the PLDP_CHECK_NEGATIVE_SPSC
// twin weakens the tail publication to relaxed (kTailPublishOrder in
// spsc_queue.h) and asserts the checker CATCHES the resulting payload
// race — the machine-checked version of the release/acquire pairing
// argument in the header's protocol comment.

#include <cstdint>
#include <memory>

#include "check/model.h"
#include "gtest/gtest.h"
#include "runtime/spsc_queue.h"

namespace pldp {
namespace {

using check::ModelConfig;
using check::ModelJoin;
using check::ModelResult;
using check::ModelSpawn;
using check::ModelYieldSpin;
using check::RunModel;

// Push kItems through a capacity-2 ring one element at a time. Small on
// purpose: every extra element multiplies the DFS schedule space.
constexpr int kItems = 3;

ModelResult RunSingleElementHarness(ModelConfig cfg) {
  return RunModel(cfg, [] {
    auto q = std::make_unique<SpscQueue<int>>(2);
    auto sum = std::make_unique<int>(0);
    int producer = ModelSpawn("producer", [&] {
      for (int v = 1; v <= kItems; ++v) {
        int item = v;
        while (!q->TryPush(std::move(item))) ModelYieldSpin();
      }
    });
    int consumer = ModelSpawn("consumer", [&] {
      for (int i = 1; i <= kItems; ++i) {
        int out = 0;
        while (!q->TryPop(out)) ModelYieldSpin();
        PLDP_MODEL_ASSERT(out == i);  // FIFO, no loss, no duplication
        *sum += out;
      }
    });
    ModelJoin(producer);
    ModelJoin(consumer);
    PLDP_MODEL_ASSERT(*sum == kItems * (kItems + 1) / 2);
    PLDP_MODEL_ASSERT(q->ApproxEmpty());
  });
}

// Same race surface through the batch entry points the shard hot path
// actually uses (TryPushN / TryPopN).
ModelResult RunBatchHarness(ModelConfig cfg) {
  return RunModel(cfg, [] {
    auto q = std::make_unique<SpscQueue<int>>(2);
    int producer = ModelSpawn("producer", [&] {
      int batch[2] = {1, 2};
      while (q->TryPushN(batch, 2) == 0) ModelYieldSpin();
      int tail[1] = {3};
      while (q->TryPushN(tail, 1) == 0) ModelYieldSpin();
    });
    int consumer = ModelSpawn("consumer", [&] {
      int out[2] = {0, 0};
      int seen = 0;
      int expect = 1;
      while (seen < kItems) {
        size_t n = q->TryPopN(out, 2);
        if (n == 0) {
          ModelYieldSpin();
          continue;
        }
        for (size_t i = 0; i < n; ++i) {
          PLDP_MODEL_ASSERT(out[i] == expect);
          ++expect;
        }
        seen += static_cast<int>(n);
      }
    });
    ModelJoin(producer);
    ModelJoin(consumer);
  });
}

#ifndef PLDP_CHECK_NEGATIVE_SPSC

TEST(SpscModel, SingleElementExhaustsClean) {
  ModelConfig cfg;
  cfg.name = "spsc-single";
  cfg.preemption_bound = 2;
  ModelResult r = RunSingleElementHarness(cfg);
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_TRUE(r.exhausted) << "DFS did not exhaust; executions="
                           << r.executions;
}

TEST(SpscModel, BatchExhaustsClean) {
  ModelConfig cfg;
  cfg.name = "spsc-batch";
  cfg.preemption_bound = 2;
  ModelResult r = RunBatchHarness(cfg);
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_TRUE(r.exhausted);
}

// Random-walk soak beyond the DFS preemption bound; CI deepens this via
// PLDP_MODEL_RANDOM_ITERS without a recompile.
TEST(SpscModel, RandomWalkClean) {
  ModelConfig cfg;
  cfg.name = "spsc-random";
  cfg.random = true;
  cfg.random_iterations = 300;
  cfg.seed = 7;
  ModelResult r = RunSingleElementHarness(cfg);
  EXPECT_FALSE(r.failed) << r.report;
}

#else  // PLDP_CHECK_NEGATIVE_SPSC

// With the tail publication weakened to relaxed, the consumer can observe
// the advanced tail index without the slot write ordered before it — the
// checker must report the payload race (and print a replayable schedule).
TEST(SpscModelNegative, CheckerCatchesWeakTailPublish) {
  ModelConfig cfg;
  cfg.name = "spsc-weak-tail";
  cfg.preemption_bound = 2;
  ModelResult r = RunSingleElementHarness(cfg);
  EXPECT_TRUE(r.failed)
      << "seeded relaxed tail publish was NOT caught by the checker";
  EXPECT_FALSE(r.replay.empty());
}

// The batch path publishes through the same constant — the checker must
// catch it there too.
TEST(SpscModelNegative, CheckerCatchesWeakTailPublishBatch) {
  ModelConfig cfg;
  cfg.name = "spsc-weak-tail-batch";
  cfg.preemption_bound = 2;
  ModelResult r = RunBatchHarness(cfg);
  EXPECT_TRUE(r.failed)
      << "seeded relaxed tail publish (batch) was NOT caught";
}

#endif  // PLDP_CHECK_NEGATIVE_SPSC

}  // namespace
}  // namespace pldp
