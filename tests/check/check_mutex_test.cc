// Copyright 2026 The PLDP Authors.
//
// Re-derives the registry-shaped locking bug class under the model
// checker (the ModelMutex / ModelCondVar layer): a registration path
// appending to a guarded container while an exposition path snapshots
// it. obs::MetricsRegistry guards `entries_` with a mutex on BOTH sides
// (Register* and Snapshot — see src/obs/metrics.h); the suite shows the
// checker proving that shape clean and, in the same binary, catching the
// historical bug shape — snapshotting outside the lock — as a data race.
// No build-time mutation is needed: the buggy shape is a separate
// harness, not a seeded edit to shipped code.

#include <memory>

#include "check/model.h"
#include "check/shadow.h"
#include "gtest/gtest.h"

namespace pldp {
namespace check {
namespace {

// The registry's container, reduced to its race surface: one cell whose
// writes model push_back's vector mutation (size bump + element write).
struct ModelRegistry {
  ModelMutex mu;
  ShadowRaceCell<int> entries{0};
};

// Both sides locked — the shipped MetricsRegistry shape. Must exhaust
// with zero findings.
TEST(RegistryMutexModel, LockedRegisterAndSnapshotClean) {
  ModelConfig cfg;
  cfg.name = "registry-locked";
  cfg.preemption_bound = 3;
  ModelResult r = RunModel(cfg, [] {
    auto reg = std::make_unique<ModelRegistry>();
    int writer = ModelSpawn("register", [&] {
      std::lock_guard<ModelMutex> lock(reg->mu);
      reg->entries = 1;
    });
    int reader = ModelSpawn("snapshot", [&] {
      std::lock_guard<ModelMutex> lock(reg->mu);
      const int& n = reg->entries;
      PLDP_MODEL_ASSERT(n == 0 || n == 1);
    });
    ModelJoin(writer);
    ModelJoin(reader);
  });
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_TRUE(r.exhausted);
}

// The bug shape: Snapshot() reading the container without taking the
// mutex. The checker must report the data race (not merely a wrong
// value — the access itself is unordered).
TEST(RegistryMutexModel, CheckerCatchesSnapshotOutsideMutex) {
  ModelConfig cfg;
  cfg.name = "registry-unlocked-read";
  cfg.preemption_bound = 3;
  ModelResult r = RunModel(cfg, [] {
    auto reg = std::make_unique<ModelRegistry>();
    int writer = ModelSpawn("register", [&] {
      std::lock_guard<ModelMutex> lock(reg->mu);
      reg->entries = 1;
    });
    int reader = ModelSpawn("snapshot", [&] {
      const int& n = reg->entries;  // bug: no lock
      (void)n;
    });
    ModelJoin(writer);
    ModelJoin(reader);
  });
  EXPECT_TRUE(r.failed) << "unlocked snapshot race not found";
}

// Mutex handoff carries visibility: a plain cell written before an
// unlock is safely read by the next lock holder — the property every
// PLDP_GUARDED_BY annotation in the runtime leans on.
TEST(RegistryMutexModel, MutexTransfersHappensBefore) {
  ModelConfig cfg;
  cfg.name = "registry-handoff";
  cfg.preemption_bound = 3;
  ModelResult r = RunModel(cfg, [] {
    auto reg = std::make_unique<ModelRegistry>();
    auto seen = std::make_unique<int>(-1);
    int writer = ModelSpawn("register", [&] {
      std::lock_guard<ModelMutex> lock(reg->mu);
      reg->entries = 7;
    });
    int reader = ModelSpawn("snapshot", [&] {
      std::lock_guard<ModelMutex> lock(reg->mu);
      *seen = reg->entries;
    });
    ModelJoin(writer);
    ModelJoin(reader);
    PLDP_MODEL_ASSERT(*seen == 0 || *seen == 7);
  });
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_TRUE(r.exhausted);
}

}  // namespace
}  // namespace check
}  // namespace pldp
