// Copyright 2026 The PLDP Authors.
//
// Litmus tests for the model checker itself (src/check/model.cc): known
// C++11 memory-model outcomes the checker must find, and known-clean
// protocols it must exhaust without findings. These pin the checker's
// soundness before the protocol suites (check_spsc_test.cc and friends)
// lean on it — a checker that cannot reproduce store buffering or a lost
// wakeup proves nothing about a queue.

#include <cstdlib>
#include <memory>

#include "check/model.h"
#include "check/shadow.h"
#include "gtest/gtest.h"

namespace pldp {
namespace check {
namespace {

// Store buffering, relaxed: both threads may read 0 — the checker must
// find the outcome (it is the weak-memory behavior everything else here
// builds on).
TEST(ModelCore, StoreBufferingRelaxedFindsBothZero) {
  ModelConfig cfg;
  cfg.name = "sb-relaxed";
  cfg.preemption_bound = 2;
  ModelResult r = RunModel(cfg, [] {
    auto x = std::make_unique<ShadowAtomic<int>>(0);
    auto y = std::make_unique<ShadowAtomic<int>>(0);
    auto r1 = std::make_unique<int>(-1);
    auto r2 = std::make_unique<int>(-1);
    int t1 = ModelSpawn("a", [&] {
      x->store(1, std::memory_order_relaxed);
      *r1 = y->load(std::memory_order_relaxed);
    });
    int t2 = ModelSpawn("b", [&] {
      y->store(1, std::memory_order_relaxed);
      *r2 = x->load(std::memory_order_relaxed);
    });
    ModelJoin(t1);
    ModelJoin(t2);
    PLDP_MODEL_ASSERT(*r1 == 1 || *r2 == 1);  // reachable: both 0
  });
  EXPECT_TRUE(r.failed) << "both-zero outcome not found";
}

// Store buffering with seq_cst fences (the Doorbell's Dekker pair shape):
// both-zero must be impossible, and the space must be exhausted.
TEST(ModelCore, StoreBufferingFencedExhaustsClean) {
  ModelConfig cfg;
  cfg.name = "sb-fenced";
  cfg.preemption_bound = 3;
  ModelResult r = RunModel(cfg, [] {
    auto x = std::make_unique<ShadowAtomic<int>>(0);
    auto y = std::make_unique<ShadowAtomic<int>>(0);
    auto r1 = std::make_unique<int>(-1);
    auto r2 = std::make_unique<int>(-1);
    int t1 = ModelSpawn("a", [&] {
      x->store(1, std::memory_order_relaxed);
      ShadowFence(std::memory_order_seq_cst);
      *r1 = y->load(std::memory_order_relaxed);
    });
    int t2 = ModelSpawn("b", [&] {
      y->store(1, std::memory_order_relaxed);
      ShadowFence(std::memory_order_seq_cst);
      *r2 = x->load(std::memory_order_relaxed);
    });
    ModelJoin(t1);
    ModelJoin(t2);
    PLDP_MODEL_ASSERT(*r1 == 1 || *r2 == 1);
  });
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_TRUE(r.exhausted);
}

// Message passing with a relaxed flag: the payload read races (the bug
// class the SPSC negative suite seeds deliberately).
TEST(ModelCore, MessagePassingRelaxedFlagFindsRace) {
  ModelConfig cfg;
  cfg.name = "mp-relaxed";
  ModelResult r = RunModel(cfg, [] {
    auto cell = std::make_unique<ShadowRaceCell<int>>(0);
    auto flag = std::make_unique<ShadowAtomic<int>>(0);
    int t1 = ModelSpawn("w", [&] {
      *cell = 42;
      flag->store(1, std::memory_order_relaxed);  // bug: should be release
    });
    int t2 = ModelSpawn("r", [&] {
      if (flag->load(std::memory_order_acquire) == 1) {
        int v = *cell;
        (void)v;
      }
    });
    ModelJoin(t1);
    ModelJoin(t2);
  });
  EXPECT_TRUE(r.failed) << "payload race not found";
}

// Message passing done right: clean and exhausted.
TEST(ModelCore, MessagePassingReleaseAcquireClean) {
  ModelConfig cfg;
  cfg.name = "mp-rel-acq";
  ModelResult r = RunModel(cfg, [] {
    auto cell = std::make_unique<ShadowRaceCell<int>>(0);
    auto flag = std::make_unique<ShadowAtomic<int>>(0);
    int t1 = ModelSpawn("w", [&] {
      *cell = 42;
      flag->store(1, std::memory_order_release);
    });
    int t2 = ModelSpawn("r", [&] {
      if (flag->load(std::memory_order_acquire) == 1) {
        int v = *cell;
        (void)v;
      }
    });
    ModelJoin(t1);
    ModelJoin(t2);
  });
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_TRUE(r.exhausted);
}

// Flag check outside the lock, unconditional wait: the notify can land in
// the window and the waiter parks forever — reported as a deadlock with a
// lost-wakeup note.
TEST(ModelCore, LostWakeupFindsDeadlock) {
  ModelConfig cfg;
  cfg.name = "lost-wakeup";
  ModelResult r = RunModel(cfg, [] {
    auto mu = std::make_unique<ModelMutex>();
    auto cv = std::make_unique<ModelCondVar>();
    auto flag = std::make_unique<ShadowAtomic<int>>(0);
    int t1 = ModelSpawn("waiter", [&] {
      if (flag->load(std::memory_order_acquire) == 0) {
        std::unique_lock<ModelMutex> lk(*mu);
        cv->wait(lk);  // bug: no predicate re-check under the lock
      }
    });
    int t2 = ModelSpawn("poster", [&] {
      flag->store(1, std::memory_order_release);
      std::unique_lock<ModelMutex> lk(*mu);
      cv->notify_all();
    });
    ModelJoin(t1);
    ModelJoin(t2);
  });
  EXPECT_TRUE(r.failed) << "lost wakeup not found";
}

// A spin loop whose flag IS eventually set must terminate (the eventual-
// visibility rule: a promoted stale reader reads the newest value).
TEST(ModelCore, SpinOnEventuallySetFlagTerminates) {
  ModelConfig cfg;
  cfg.name = "spin-ok";
  ModelResult r = RunModel(cfg, [] {
    auto flag = std::make_unique<ShadowAtomic<int>>(0);
    int t1 = ModelSpawn("spin", [&] {
      while (flag->load(std::memory_order_acquire) == 0) ModelYieldSpin();
    });
    flag->store(1, std::memory_order_release);
    ModelJoin(t1);
  });
  EXPECT_FALSE(r.failed) << r.report;
}

// A spin loop nobody will ever satisfy is a livelock, not an infinite
// test run.
TEST(ModelCore, SpinOnNeverSetFlagFindsLivelock) {
  ModelConfig cfg;
  cfg.name = "spin-stuck";
  ModelResult r = RunModel(cfg, [] {
    auto flag = std::make_unique<ShadowAtomic<int>>(0);
    int t1 = ModelSpawn("spin", [&] {
      while (flag->load(std::memory_order_acquire) == 0) ModelYieldSpin();
    });
    ModelJoin(t1);
  });
  EXPECT_TRUE(r.failed) << "livelock not found";
}

// Seeded random walk: the mode the CI model-check job scales up via
// PLDP_MODEL_RANDOM_ITERS (see .github/workflows/ci.yml).
TEST(ModelCore, RandomWalkRunsCleanIterations) {
  ModelConfig cfg;
  cfg.name = "random-rmw";
  cfg.random = true;
  cfg.random_iterations = 200;
  ModelResult r = RunModel(cfg, [] {
    auto x = std::make_unique<ShadowAtomic<int>>(0);
    int t1 = ModelSpawn("a", [&] {
      x->fetch_add(1, std::memory_order_acq_rel);
    });
    int t2 = ModelSpawn("b", [&] {
      x->fetch_add(1, std::memory_order_acq_rel);
    });
    ModelJoin(t1);
    ModelJoin(t2);
    PLDP_MODEL_ASSERT(x->load(std::memory_order_acquire) == 2);
  });
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_GE(r.executions, 200u);
}

// Replay round trip: a failing run's replay string, fed back through
// PLDP_MODEL_REPLAY-style forcing, reproduces the same failure — the
// mechanism OPERATIONS.md documents for debugging findings.
TEST(ModelCore, ReplayReproducesFailure) {
  auto body = [] {
    auto x = std::make_unique<ShadowAtomic<int>>(0);
    auto y = std::make_unique<ShadowAtomic<int>>(0);
    auto r1 = std::make_unique<int>(-1);
    auto r2 = std::make_unique<int>(-1);
    int t1 = ModelSpawn("a", [&] {
      x->store(1, std::memory_order_relaxed);
      *r1 = y->load(std::memory_order_relaxed);
    });
    int t2 = ModelSpawn("b", [&] {
      y->store(1, std::memory_order_relaxed);
      *r2 = x->load(std::memory_order_relaxed);
    });
    ModelJoin(t1);
    ModelJoin(t2);
    PLDP_MODEL_ASSERT(*r1 == 1 || *r2 == 1);
  };
  ModelConfig cfg;
  cfg.name = "replay-find";
  ModelResult first = RunModel(cfg, body);
  ASSERT_TRUE(first.failed);
  ASSERT_FALSE(first.replay.empty());

  ::setenv("PLDP_MODEL_REPLAY", first.replay.c_str(), 1);
  ModelConfig replay_cfg;
  replay_cfg.name = "replay-rerun";
  ModelResult again = RunModel(replay_cfg, body);
  ::unsetenv("PLDP_MODEL_REPLAY");
  EXPECT_TRUE(again.failed) << "replay did not reproduce the failure";
  EXPECT_EQ(again.executions, 1u);
}

}  // namespace
}  // namespace check
}  // namespace pldp
