// Copyright 2026 The PLDP Authors.
//
// Model-checks the Doorbell park/ring protocol (src/runtime/backoff.h)
// through the real Ring()/ParkUnless() code: a consumer escalating
// through Backoff into a park races a producer publishing work and
// ringing. Every interleaving within the preemption bound is explored —
// including ring-before-park, ring-inside-the-predicate-window, and
// ring-after-park — so a clean run machine-checks the lost-wakeup
// argument written out in backoff.h (the Dekker fence pair plus the
// epoch re-check under the mutex).
//
// The PLDP_CHECK_NEGATIVE_DOORBELL twin deletes Ring's seq_cst fence:
// the producer's waiters_ load can then miss the consumer's increment
// while the consumer's predicate missed the published work — the
// consumer parks forever and the checker must report the deadlock.

#include <cstdint>
#include <memory>

#include "check/model.h"
#include "gtest/gtest.h"
#include "runtime/backoff.h"

namespace pldp {
namespace {

using check::ModelConfig;
using check::ModelJoin;
using check::ModelResult;
using check::ModelSpawn;
using check::RunModel;

// One consumer draining a one-shot work flag, one producer publishing it.
// The consumer uses the exact escalation shape of the shard worker loop:
// spin via Backoff, then ParkUnless with a predicate reading the same
// atomics the producer releases.
ModelResult RunParkVsRingHarness(ModelConfig cfg) {
  return RunModel(cfg, [] {
    auto bell = std::make_unique<Doorbell>();
    auto work = std::make_unique<Atomic<int>>(0);
    auto consumed = std::make_unique<bool>(false);

    int consumer = ModelSpawn("consumer", [&] {
      Backoff backoff;
      // order: acquire pairs with the producer's release publication.
      while (work->load(std::memory_order_acquire) == 0) {
        if (backoff.ShouldPark()) {
          bell->ParkUnless([&] {
            // order: acquire — the predicate must observe the newest
            // publication the ring's fence ordered before it.
            return work->load(std::memory_order_acquire) != 0;
          });
          backoff.Reset();
        } else {
          backoff.Wait();
        }
      }
      *consumed = true;
    });

    int producer = ModelSpawn("producer", [&] {
      // order: release — the publication Ring's contract requires before
      // the ring itself.
      work->store(1, std::memory_order_release);
      bell->Ring();
    });

    ModelJoin(consumer);
    ModelJoin(producer);
    PLDP_MODEL_ASSERT(*consumed);
  });
}

#ifndef PLDP_CHECK_NEGATIVE_DOORBELL

TEST(DoorbellModel, ParkVsRingExhaustsClean) {
  ModelConfig cfg;
  cfg.name = "doorbell";
  cfg.preemption_bound = 3;
  ModelResult r = RunParkVsRingHarness(cfg);
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_TRUE(r.exhausted);
}

// Two rings (one possibly stale, one carrying the work) against one
// parking consumer: exercises the epoch re-check under the mutex — an
// early ring may only cause a spurious wake, never a strand.
TEST(DoorbellModel, EarlyRingIsSpuriousNotLost) {
  ModelConfig cfg;
  cfg.name = "doorbell-early-ring";
  cfg.preemption_bound = 2;
  ModelResult r = RunModel(cfg, [] {
    auto bell = std::make_unique<Doorbell>();
    auto work = std::make_unique<Atomic<int>>(0);

    int consumer = ModelSpawn("consumer", [&] {
      Backoff backoff;
      // order: acquire pairs with the producer's release publication.
      while (work->load(std::memory_order_acquire) == 0) {
        if (backoff.ShouldPark()) {
          bell->ParkUnless([&] {
            // order: acquire — see RunParkVsRingHarness.
            return work->load(std::memory_order_acquire) != 0;
          });
          backoff.Reset();
        } else {
          backoff.Wait();
        }
      }
    });

    int producer = ModelSpawn("producer", [&] {
      bell->Ring();  // empty ring: no work published yet
      // order: release — the real publication.
      work->store(1, std::memory_order_release);
      bell->Ring();
    });

    ModelJoin(consumer);
    ModelJoin(producer);
  });
  EXPECT_FALSE(r.failed) << r.report;
  EXPECT_TRUE(r.exhausted);
}

// Random-walk soak past the DFS bound (CI deepens via
// PLDP_MODEL_RANDOM_ITERS).
TEST(DoorbellModel, RandomWalkClean) {
  ModelConfig cfg;
  cfg.name = "doorbell-random";
  cfg.random = true;
  cfg.random_iterations = 400;
  cfg.seed = 3;
  ModelResult r = RunParkVsRingHarness(cfg);
  EXPECT_FALSE(r.failed) << r.report;
}

#else  // PLDP_CHECK_NEGATIVE_DOORBELL

// Without Ring's fence the Dekker pair is broken: there is a schedule
// where the consumer's predicate misses the work AND the producer's
// waiters_ load misses the consumer — a lost wakeup, reported by the
// checker as a deadlock with the consumer parked on the doorbell.
TEST(DoorbellModelNegative, CheckerCatchesMissingRingFence) {
  ModelConfig cfg;
  cfg.name = "doorbell-unfenced";
  cfg.preemption_bound = 3;
  ModelResult r = RunParkVsRingHarness(cfg);
  EXPECT_TRUE(r.failed)
      << "seeded fence deletion was NOT caught by the checker";
  EXPECT_FALSE(r.replay.empty());
}

#endif  // PLDP_CHECK_NEGATIVE_DOORBELL

}  // namespace
}  // namespace pldp
