// Copyright 2026 The PLDP Authors.
//
// Tests for the numeric-query extension: post-processed counts vs direct
// noisy counts, accuracy behaviour in ε, and input validation.

#include "ppm/numeric.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.h"

#include "ppm/pattern_level.h"
#include "test_util.h"

namespace pldp {
namespace {

using testing_util::AddPattern;
using testing_util::MakeWindow;
using testing_util::MakeWorld;
using testing_util::World;

struct Fixture {
  World world;
  std::vector<Window> windows;
  Pattern target;

  static Fixture Make(size_t n = 200, uint64_t seed = 5) {
    Fixture f;
    f.world = MakeWorld(4);
    AddPattern(&f.world, "priv", {0, 1}, DetectionMode::kConjunction, true,
               false);
    PatternId tgt_id = AddPattern(&f.world, "tgt", {0, 2},
                                  DetectionMode::kConjunction, false, true);
    f.target = f.world.patterns.Get(tgt_id);
    Rng rng(seed);
    for (size_t i = 0; i < n; ++i) {
      Window w;
      w.start = static_cast<Timestamp>(i);
      w.end = w.start + 1;
      for (EventTypeId t = 0; t < 4; ++t) {
        if (rng.Bernoulli(0.5)) w.events.emplace_back(t, w.start);
      }
      f.windows.push_back(std::move(w));
    }
    return f;
  }

  size_t TrueCount() const {
    size_t c = 0;
    for (const Window& w : windows) {
      if (PatternOccursInWindow(w, target).value()) ++c;
    }
    return c;
  }
};

TEST(CountViaPublishedViewsTest, ValidatesArguments) {
  Fixture f = Fixture::Make();
  Rng rng(1);
  EXPECT_TRUE(CountViaPublishedViews(nullptr, f.windows, f.target, &rng)
                  .status()
                  .IsInvalidArgument());
}

TEST(CountViaPublishedViewsTest, HighBudgetMatchesTruth) {
  Fixture f = Fixture::Make();
  f.world.epsilon = 50.0;
  UniformPatternPpm ppm;
  ASSERT_TRUE(ppm.Initialize(f.world.Context()).ok());
  Rng rng(2);
  size_t noisy = CountViaPublishedViews(&ppm, f.windows, f.target, &rng)
                     .value();
  EXPECT_EQ(noisy, f.TrueCount());
}

TEST(CountViaPublishedViewsTest, LowBudgetDeviates) {
  Fixture f = Fixture::Make();
  f.world.epsilon = 0.1;
  UniformPatternPpm ppm;
  ASSERT_TRUE(ppm.Initialize(f.world.Context()).ok());
  Rng rng(3);
  size_t noisy = CountViaPublishedViews(&ppm, f.windows, f.target, &rng)
                     .value();
  size_t truth = f.TrueCount();
  // With per-element flip probability near 1/2, the count drifts toward
  // the all-random baseline; it must differ noticeably from the truth.
  EXPECT_NE(noisy, truth);
}

TEST(DirectNoisyCountTest, ValidatesArguments) {
  Fixture f = Fixture::Make();
  EXPECT_TRUE(DirectNoisyCount(f.windows, f.target, 1.0, 1.0, nullptr)
                  .status()
                  .IsInvalidArgument());
  Rng rng(4);
  EXPECT_FALSE(DirectNoisyCount(f.windows, f.target, 0.0, 1.0, &rng).ok());
  EXPECT_FALSE(DirectNoisyCount(f.windows, f.target, 1.0, 0.0, &rng).ok());
}

TEST(DirectNoisyCountTest, ClampsToValidRange) {
  Fixture f = Fixture::Make(20);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    double c = DirectNoisyCount(f.windows, f.target, 0.05, 1.0, &rng).value();
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 20.0);
  }
}

TEST(DirectNoisyCountTest, UnbiasedAtModerateEpsilon) {
  Fixture f = Fixture::Make();
  double truth = static_cast<double>(f.TrueCount());
  Rng rng(6);
  RunningStats stats;
  for (int i = 0; i < 2000; ++i) {
    stats.Add(DirectNoisyCount(f.windows, f.target, 1.0, 1.0, &rng).value());
  }
  EXPECT_NEAR(stats.mean(), truth, 0.2);
}

TEST(DirectNoisyCountTest, ErrorShrinksWithEpsilon) {
  Fixture f = Fixture::Make();
  double truth = static_cast<double>(f.TrueCount());
  auto mean_abs_err = [&](double eps) {
    Rng rng(7);
    RunningStats err;
    for (int i = 0; i < 500; ++i) {
      double c = DirectNoisyCount(f.windows, f.target, eps, 1.0, &rng).value();
      err.Add(std::abs(c - truth));
    }
    return err.mean();
  };
  EXPECT_GT(mean_abs_err(0.1), mean_abs_err(2.0));
}

TEST(NumericComparisonTest, DirectCountBeatsPostProcessingAtLowEpsilon) {
  // The documented trade-off: per-window flips accumulate, one Laplace draw
  // does not. At small ε the direct aggregate is far more accurate.
  Fixture f = Fixture::Make(400);
  double truth = static_cast<double>(f.TrueCount());
  const double eps = 0.5;

  f.world.epsilon = eps;
  UniformPatternPpm ppm;
  ASSERT_TRUE(ppm.Initialize(f.world.Context()).ok());

  Rng rng(8);
  RunningStats post_err;
  RunningStats direct_err;
  for (int i = 0; i < 60; ++i) {
    ppm.Reset();
    double post = static_cast<double>(
        CountViaPublishedViews(&ppm, f.windows, f.target, &rng).value());
    post_err.Add(std::abs(post - truth));
    double direct =
        DirectNoisyCount(f.windows, f.target, eps, 1.0, &rng).value();
    direct_err.Add(std::abs(direct - truth));
  }
  EXPECT_GT(post_err.mean(), direct_err.mean());
}

}  // namespace
}  // namespace pldp
