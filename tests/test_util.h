// Copyright 2026 The PLDP Authors.
//
// Shared fixtures for the PPM and pipeline tests: a small world with a
// known event-type space, private/target patterns, and handcrafted windows.

#ifndef PLDP_TESTS_TEST_UTIL_H_
#define PLDP_TESTS_TEST_UTIL_H_

#include <initializer_list>
#include <utility>
#include <vector>

#include "cep/pattern.h"
#include "event/event_type.h"
#include "ppm/mechanism.h"
#include "stream/window.h"

namespace pldp {
namespace testing_util {

/// A self-contained mechanism test world. Keeps the registries alive for
/// the duration of the test (MechanismContext holds raw pointers).
struct World {
  EventTypeRegistry types;
  PatternRegistry patterns;
  std::vector<PatternId> private_ids;
  std::vector<PatternId> target_ids;
  std::vector<Window> history;
  double epsilon = 1.0;
  double alpha = 0.5;

  MechanismContext Context() const {
    MechanismContext ctx;
    ctx.event_types = &types;
    ctx.patterns = &patterns;
    ctx.private_patterns = private_ids;
    ctx.target_patterns = target_ids;
    ctx.epsilon = epsilon;
    ctx.alpha = alpha;
    ctx.history = history.empty() ? nullptr : &history;
    return ctx;
  }
};

/// Builds a world with `num_types` event types named t0.. and no patterns.
inline World MakeWorld(size_t num_types) {
  World w;
  w.types = EventTypeRegistry::MakeDense(num_types, "t");
  return w;
}

/// Registers a pattern; returns its id.
inline PatternId AddPattern(World* w, const std::string& name,
                            std::vector<EventTypeId> elems,
                            DetectionMode mode, bool is_private,
                            bool is_target) {
  PatternId id =
      w->patterns.Register(Pattern::Create(name, std::move(elems), mode)
                               .value())
          .value();
  if (is_private) w->private_ids.push_back(id);
  if (is_target) w->target_ids.push_back(id);
  return id;
}

/// A window at [index, index+1) containing one event per listed type.
inline Window MakeWindow(size_t index,
                         std::initializer_list<EventTypeId> types) {
  Window win;
  win.start = static_cast<Timestamp>(index);
  win.end = win.start + 1;
  for (EventTypeId t : types) {
    win.events.emplace_back(t, win.start);
  }
  return win;
}

}  // namespace testing_util
}  // namespace pldp

#endif  // PLDP_TESTS_TEST_UTIL_H_
