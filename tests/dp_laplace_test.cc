// Copyright 2026 The PLDP Authors.

#include "dp/laplace.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace pldp {
namespace {

TEST(LaplaceMechanismTest, CreateValidates) {
  EXPECT_TRUE(LaplaceMechanism::Create(1.0, 1.0).ok());
  EXPECT_FALSE(LaplaceMechanism::Create(0.0, 1.0).ok());
  EXPECT_FALSE(LaplaceMechanism::Create(1.0, 0.0).ok());
  EXPECT_FALSE(LaplaceMechanism::Create(-1.0, 1.0).ok());
  EXPECT_FALSE(LaplaceMechanism::Create(1.0, -1.0).ok());
}

TEST(LaplaceMechanismTest, ScaleIsSensitivityOverEpsilon) {
  auto m = LaplaceMechanism::Create(2.0, 0.5).value();
  EXPECT_DOUBLE_EQ(m.scale(), 4.0);
  EXPECT_DOUBLE_EQ(m.sensitivity(), 2.0);
  EXPECT_DOUBLE_EQ(m.epsilon(), 0.5);
}

TEST(LaplaceMechanismTest, NoiseIsZeroMeanWithCorrectSpread) {
  auto m = LaplaceMechanism::Create(1.0, 0.5).value();  // scale 2
  Rng rng(42);
  const int n = 200000;
  double sum = 0;
  double abs_sum = 0;
  for (int i = 0; i < n; ++i) {
    double noisy = m.AddNoise(10.0, &rng);
    sum += noisy - 10.0;
    abs_sum += std::abs(noisy - 10.0);
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(abs_sum / n, 2.0, 0.05);  // E|Laplace(b)| = b
}

TEST(LaplaceMechanismTest, IntervalProbabilityMatchesCdf) {
  auto m = LaplaceMechanism::Create(1.0, 1.0).value();  // scale 1
  // P(|X| < b) for Laplace(0, 1) at b=1: 1 - e^{-1}.
  EXPECT_NEAR(m.IntervalProbability(0.0, -1.0, 1.0), 1.0 - std::exp(-1.0),
              1e-12);
  // Symmetric around the true value.
  EXPECT_NEAR(m.IntervalProbability(5.0, 4.0, 6.0), 1.0 - std::exp(-1.0),
              1e-12);
  // Degenerate interval.
  EXPECT_DOUBLE_EQ(m.IntervalProbability(0.0, 2.0, 1.0), 0.0);
}

TEST(LaplaceMechanismTest, EmpiricalIntervalMatchesAnalytic) {
  auto m = LaplaceMechanism::Create(1.0, 2.0).value();
  Rng rng(7);
  const int n = 100000;
  int in_interval = 0;
  for (int i = 0; i < n; ++i) {
    double x = m.AddNoise(3.0, &rng);
    if (x > 2.5 && x < 4.0) ++in_interval;
  }
  double analytic = m.IntervalProbability(3.0, 2.5, 4.0);
  EXPECT_NEAR(static_cast<double>(in_interval) / n, analytic, 0.01);
}

TEST(LaplaceMechanismTest, EmpiricalPrivacyLossBoundedByEpsilon) {
  // The defining DP property: for neighboring values v, v' with
  // |v - v'| <= sensitivity, the density ratio anywhere is <= e^ε.
  // Check on a discretized histogram.
  const double eps = 1.0;
  auto m = LaplaceMechanism::Create(1.0, eps).value();
  Rng rng(99);
  const int n = 400000;
  const int bins = 20;
  const double lo = -5.0, hi = 7.0;
  std::vector<double> h0(bins, 0.0), h1(bins, 0.0);
  for (int i = 0; i < n; ++i) {
    double a = m.AddNoise(0.0, &rng);
    double b = m.AddNoise(1.0, &rng);
    auto bin = [&](double x) {
      int k = static_cast<int>((x - lo) / (hi - lo) * bins);
      return std::min(std::max(k, 0), bins - 1);
    };
    h0[static_cast<size_t>(bin(a))] += 1.0;
    h1[static_cast<size_t>(bin(b))] += 1.0;
  }
  for (int k = 0; k < bins; ++k) {
    if (h0[static_cast<size_t>(k)] < 500 || h1[static_cast<size_t>(k)] < 500) {
      continue;  // skip noisy tails
    }
    double ratio = h0[static_cast<size_t>(k)] / h1[static_cast<size_t>(k)];
    EXPECT_LT(std::abs(std::log(ratio)), eps + 0.15) << "bin " << k;
  }
}

}  // namespace
}  // namespace pldp
