// Copyright 2026 The PLDP Authors.
//
// Property tests for the batched ingest path: OnEventBatch through
// ParallelStreamingEngine (any shard count, any batch shape) must produce
// exactly the per-query detection multiset of the sequential per-event
// StreamingCepEngine on keyed streams — including empty batches and
// maximally skewed (single-subject) streams. Also pins the per-tick batch
// mode of StreamReplayer against per-event replay for default subscribers.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cep/streaming_engine.h"
#include "common/random.h"
#include "runtime/parallel_engine.h"
#include "stream/event_stream.h"
#include "stream/replay.h"

namespace pldp {
namespace {

constexpr size_t kTypesPerSubject = 3;

Pattern MakePattern(const char* name, std::vector<EventTypeId> elems,
                    DetectionMode mode) {
  return Pattern::Create(name, std::move(elems), mode).value();
}

EventStream KeyedStream(size_t subjects, size_t num_events, uint64_t seed) {
  Rng rng(seed);
  EventStream stream;
  stream.Reserve(num_events);
  for (size_t i = 0; i < num_events; ++i) {
    const auto subject = static_cast<StreamId>(rng.UniformUint64(subjects));
    const auto type = static_cast<EventTypeId>(
        subject * kTypesPerSubject + rng.UniformUint64(kTypesPerSubject));
    stream.AppendUnchecked(
        Event(type, static_cast<Timestamp>(i / 4), subject));
  }
  return stream;
}

template <typename EngineT>
void RegisterKeyedQueries(EngineT& engine, size_t subjects,
                          Timestamp window) {
  for (size_t k = 0; k < subjects; ++k) {
    const auto base = static_cast<EventTypeId>(k * kTypesPerSubject);
    ASSERT_TRUE(engine
                    .AddQuery(MakePattern("seq", {base, base + 1, base + 2},
                                          DetectionMode::kSequence),
                              window)
                    .ok());
    ASSERT_TRUE(engine
                    .AddQuery(MakePattern("conj", {base + 2, base},
                                          DetectionMode::kConjunction),
                              window)
                    .ok());
  }
}

/// Sequential per-event reference results for `stream`.
std::vector<std::vector<Timestamp>> ReferenceDetections(
    const EventStream& stream, size_t subjects, Timestamp window) {
  StreamingCepEngine reference;
  RegisterKeyedQueries(reference, subjects, window);
  for (const Event& e : stream) EXPECT_TRUE(reference.OnEvent(e).ok());
  std::vector<std::vector<Timestamp>> detections;
  for (size_t q = 0; q < reference.query_count(); ++q) {
    detections.push_back(reference.DetectionsOf(q).value());
  }
  return detections;
}

void ExpectEngineMatches(const ParallelStreamingEngine& engine,
                         const std::vector<std::vector<Timestamp>>& expected,
                         const char* label) {
  ASSERT_EQ(engine.query_count(), expected.size()) << label;
  for (size_t q = 0; q < expected.size(); ++q) {
    EXPECT_EQ(engine.DetectionsOf(q).value(), expected[q])
        << label << " query=" << q;
  }
}

TEST(BatchedIngestTest, FixedChunkBatchesMatchSequentialEngine) {
  constexpr size_t kSubjects = 16;
  constexpr Timestamp kWindow = 6;
  const EventStream stream = KeyedStream(kSubjects, 20000, /*seed=*/13);
  const auto expected = ReferenceDetections(stream, kSubjects, kWindow);

  // Batch sizes chosen to hit: sub-queue-capacity, exactly-capacity,
  // larger-than-capacity (forcing PushN to chunk), and a ragged tail.
  for (size_t batch : {1u, 7u, 64u, 100u, 1000u}) {
    for (size_t shards : {1u, 2u, 4u}) {
      ParallelEngineOptions options;
      options.shard_count = shards;
      options.queue_capacity = 64;
      ParallelStreamingEngine engine(options);
      RegisterKeyedQueries(engine, kSubjects, kWindow);
      ASSERT_TRUE(engine.Start().ok());

      const std::vector<Event>& events = stream.events();
      for (size_t i = 0; i < events.size(); i += batch) {
        const size_t n =
            batch < events.size() - i ? batch : events.size() - i;
        ASSERT_TRUE(engine.OnEventBatch(EventSpan(events.data() + i, n)).ok());
      }
      ASSERT_TRUE(engine.Drain().ok());

      EXPECT_EQ(engine.events_processed(), stream.size());
      ExpectEngineMatches(engine, expected, "fixed-chunk");
      ASSERT_TRUE(engine.Stop().ok());
    }
  }
}

TEST(BatchedIngestTest, TickBatchedReplayMatchesSequentialEngine) {
  constexpr size_t kSubjects = 12;
  constexpr Timestamp kWindow = 6;
  const EventStream stream = KeyedStream(kSubjects, 20000, /*seed=*/29);
  const auto expected = ReferenceDetections(stream, kSubjects, kWindow);

  for (size_t shards : {1u, 3u, 4u}) {
    ParallelEngineOptions options;
    options.shard_count = shards;
    options.queue_capacity = 128;
    ParallelStreamingEngine engine(options);
    RegisterKeyedQueries(engine, kSubjects, kWindow);
    ASSERT_TRUE(engine.Start().ok());

    StreamReplayer replayer;
    replayer.Subscribe(&engine);
    ASSERT_TRUE(replayer.Run(stream, ReplayMode::kBatchPerTick).ok());

    EXPECT_EQ(engine.events_processed(), stream.size());
    ExpectEngineMatches(engine, expected, "tick-batched");
    ASSERT_TRUE(engine.Stop().ok());
  }
}

TEST(BatchedIngestTest, EmptyBatchesAreNoOps) {
  ParallelEngineOptions options;
  options.shard_count = 2;
  ParallelStreamingEngine engine(options);
  ASSERT_TRUE(engine
                  .AddQuery(MakePattern("p", {0, 1}, DetectionMode::kSequence),
                            /*window=*/10)
                  .ok());
  ASSERT_TRUE(engine.Start().ok());
  ASSERT_TRUE(engine.OnEventBatch(EventSpan()).ok());
  Event one(0, 1);
  ASSERT_TRUE(engine.OnEventBatch(EventSpan(&one, 1)).ok());
  ASSERT_TRUE(engine.OnEventBatch(EventSpan()).ok());
  ASSERT_TRUE(engine.Drain().ok());
  EXPECT_EQ(engine.events_processed(), 1u);
  ASSERT_TRUE(engine.Stop().ok());
}

// Maximal skew: every event belongs to one subject, so every batch lands on
// a single shard's queue (smaller than the batches), exercising the
// chunked bulk-push path end to end.
TEST(BatchedIngestTest, SingleSubjectSkewMatchesSequentialEngine) {
  constexpr Timestamp kWindow = 6;
  const EventStream stream = KeyedStream(/*subjects=*/1, 20000, /*seed=*/31);
  const auto expected = ReferenceDetections(stream, 1, kWindow);

  ParallelEngineOptions options;
  options.shard_count = 4;
  options.queue_capacity = 32;  // far smaller than the 512-event batches
  ParallelStreamingEngine engine(options);
  RegisterKeyedQueries(engine, 1, kWindow);
  ASSERT_TRUE(engine.Start().ok());

  const std::vector<Event>& events = stream.events();
  for (size_t i = 0; i < events.size(); i += 512) {
    const size_t n = 512 < events.size() - i ? 512 : events.size() - i;
    ASSERT_TRUE(engine.OnEventBatch(EventSpan(events.data() + i, n)).ok());
  }
  ASSERT_TRUE(engine.Drain().ok());

  EXPECT_EQ(engine.events_processed(), stream.size());
  ExpectEngineMatches(engine, expected, "single-subject");

  // Only one shard did any work.
  size_t loaded_shards = 0;
  for (const ShardStats& s : engine.ShardStatsSnapshot()) {
    if (s.events_processed > 0) ++loaded_shards;
  }
  EXPECT_EQ(loaded_shards, 1u);
  ASSERT_TRUE(engine.Stop().ok());
}

// Per-tick batch replay must be observationally identical to per-event
// replay for subscribers that keep the default OnEventBatch (loop over
// OnEvent), including tick callback ordering.
TEST(BatchedIngestTest, BatchReplayEqualsPerEventReplayForDefaultSubscribers) {
  const EventStream stream = KeyedStream(/*subjects=*/4, 500, /*seed=*/3);

  struct Recorder : StreamSubscriber {
    std::vector<std::pair<char, Timestamp>> log;
    Status OnEvent(const Event& e) override {
      log.emplace_back('e', e.timestamp());
      return Status::OK();
    }
    Status OnTick(Timestamp t) override {
      log.emplace_back('t', t);
      return Status::OK();
    }
    Status OnEnd() override {
      log.emplace_back('z', 0);
      return Status::OK();
    }
  };

  Recorder per_event;
  Recorder batched;
  StreamReplayer r1;
  r1.Subscribe(&per_event);
  ASSERT_TRUE(r1.Run(stream).ok());
  StreamReplayer r2;
  r2.Subscribe(&batched);
  ASSERT_TRUE(r2.Run(stream, ReplayMode::kBatchPerTick).ok());
  EXPECT_EQ(per_event.log, batched.log);
}

}  // namespace
}  // namespace pldp
