// Copyright 2026 The PLDP Authors.
//
// Tests for the adaptive PPM / Algorithm 1: feasibility invariants of the
// search (Σ ε_i preserved, box respected), quality monotonicity vs the
// uniform start, and the documented fallbacks.

#include "ppm/adaptive.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "test_util.h"

namespace pldp {
namespace {

using testing_util::AddPattern;
using testing_util::MakeWindow;
using testing_util::MakeWorld;
using testing_util::World;

/// A world where budget skew is clearly profitable: the private pattern is
/// {0,1,2}; the target pattern is {0,3}. Protecting type 0 hurts the target
/// directly, while types 1 and 2 are irrelevant to it — the optimizer
/// should shift budget onto element 0.
World SkewedWorld(uint64_t seed, size_t num_windows = 120) {
  World w = MakeWorld(5);
  AddPattern(&w, "priv", {0, 1, 2}, DetectionMode::kConjunction, true, false);
  AddPattern(&w, "tgt", {0, 3}, DetectionMode::kConjunction, false, true);
  Rng rng(seed);
  for (size_t i = 0; i < num_windows; ++i) {
    Window win;
    win.start = static_cast<Timestamp>(i);
    win.end = win.start + 1;
    for (EventTypeId t = 0; t < 5; ++t) {
      if (rng.Bernoulli(0.5)) win.events.emplace_back(t, win.start);
    }
    w.history.push_back(std::move(win));
  }
  w.epsilon = 1.5;
  return w;
}

AdaptivePpmOptions FastOptions() {
  AdaptivePpmOptions opt;
  opt.trials = 24;
  opt.max_rounds = 12;
  return opt;
}

TEST(EvaluateAllocationQualityTest, RequiresHistoryAndTargets) {
  World w = SkewedWorld(1);
  auto alloc = BudgetAllocation::Uniform(1.5, 3).value();
  const Pattern& priv = w.patterns.Get(w.private_ids[0]);

  World no_history = w;
  no_history.history.clear();
  EXPECT_TRUE(EvaluateAllocationQuality(alloc, priv, no_history.Context(), 8,
                                        1)
                  .status()
                  .IsFailedPrecondition());

  World no_targets = w;
  no_targets.target_ids.clear();
  EXPECT_TRUE(EvaluateAllocationQuality(alloc, priv, no_targets.Context(), 8,
                                        1)
                  .status()
                  .IsFailedPrecondition());

  EXPECT_TRUE(EvaluateAllocationQuality(alloc, priv, w.Context(), 0, 1)
                  .status()
                  .IsInvalidArgument());
}

TEST(EvaluateAllocationQualityTest, QualityInZeroOneRange) {
  World w = SkewedWorld(2);
  const Pattern& priv = w.patterns.Get(w.private_ids[0]);
  auto alloc = BudgetAllocation::Uniform(1.5, 3).value();
  double q =
      EvaluateAllocationQuality(alloc, priv, w.Context(), 16, 3).value();
  EXPECT_GE(q, 0.0);
  EXPECT_LE(q, 1.0);
}

TEST(EvaluateAllocationQualityTest, MoreBudgetGivesBetterQuality) {
  World w = SkewedWorld(3);
  const Pattern& priv = w.patterns.Get(w.private_ids[0]);
  auto tight = BudgetAllocation::Uniform(0.1, 3).value();
  auto loose = BudgetAllocation::Uniform(20.0, 3).value();
  double q_tight =
      EvaluateAllocationQuality(tight, priv, w.Context(), 32, 5).value();
  double q_loose =
      EvaluateAllocationQuality(loose, priv, w.Context(), 32, 5).value();
  EXPECT_GT(q_loose, q_tight);
}

TEST(EvaluateAllocationQualityTest, DeterministicGivenSeed) {
  World w = SkewedWorld(4);
  const Pattern& priv = w.patterns.Get(w.private_ids[0]);
  auto alloc = BudgetAllocation::Uniform(1.5, 3).value();
  double a =
      EvaluateAllocationQuality(alloc, priv, w.Context(), 16, 99).value();
  double b =
      EvaluateAllocationQuality(alloc, priv, w.Context(), 16, 99).value();
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(StepwiseSearchTest, PreservesTotalBudget) {
  World w = SkewedWorld(5);
  const Pattern& priv = w.patterns.Get(w.private_ids[0]);
  auto result =
      BidirectionalStepwiseSearch(priv, w.Context(), FastOptions()).value();
  EXPECT_NEAR(result.Total(), w.epsilon, 1e-9);
  for (size_t i = 0; i < result.size(); ++i) {
    EXPECT_GE(result[i], 0.0);
    EXPECT_LE(result[i], w.epsilon + 1e-9);
  }
}

TEST(StepwiseSearchTest, SingleElementReturnsImmediately) {
  World w = MakeWorld(2);
  AddPattern(&w, "priv", {0}, DetectionMode::kConjunction, true, false);
  AddPattern(&w, "tgt", {1}, DetectionMode::kConjunction, false, true);
  w.history.push_back(MakeWindow(0, {0, 1}));
  w.epsilon = 2.0;
  const Pattern& priv = w.patterns.Get(w.private_ids[0]);
  auto result =
      BidirectionalStepwiseSearch(priv, w.Context(), FastOptions()).value();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_DOUBLE_EQ(result[0], 2.0);
}

TEST(StepwiseSearchTest, NeverWorseThanUniformStart) {
  // The search only accepts shifts that do not decrease Q, so the tuned
  // allocation's quality (measured with the same evaluation seed) is at
  // least the uniform allocation's.
  World w = SkewedWorld(6);
  const Pattern& priv = w.patterns.Get(w.private_ids[0]);
  AdaptivePpmOptions opt = FastOptions();

  auto tuned = BidirectionalStepwiseSearch(priv, w.Context(), opt).value();
  auto uniform = BudgetAllocation::Uniform(w.epsilon, priv.length()).value();

  uint64_t probe_seed = 4242;
  double q_tuned =
      EvaluateAllocationQuality(tuned, priv, w.Context(), 128, probe_seed)
          .value();
  double q_uniform =
      EvaluateAllocationQuality(uniform, priv, w.Context(), 128, probe_seed)
          .value();
  EXPECT_GE(q_tuned, q_uniform - 0.02);  // tolerance for MC noise
}

TEST(StepwiseSearchTest, ShiftsBudgetTowardTargetCriticalElement) {
  // In SkewedWorld, element 0 is the only one the target cares about;
  // quality improves when its bit is *more* accurate (higher ε_0).
  World w = SkewedWorld(7, /*num_windows=*/200);
  const Pattern& priv = w.patterns.Get(w.private_ids[0]);
  AdaptivePpmOptions opt;
  opt.trials = 48;
  opt.max_rounds = 25;
  auto tuned = BidirectionalStepwiseSearch(priv, w.Context(), opt).value();
  EXPECT_GT(tuned[0], tuned[1]);
  EXPECT_GT(tuned[0], tuned[2]);
}

TEST(AdaptivePpmTest, FallsBackToUniformWithoutHistory) {
  World w = MakeWorld(4);
  AddPattern(&w, "priv", {0, 1}, DetectionMode::kConjunction, true, false);
  AddPattern(&w, "tgt", {2}, DetectionMode::kConjunction, false, true);
  w.epsilon = 2.0;
  // No history windows.
  AdaptivePatternPpm ppm(FastOptions());
  ASSERT_TRUE(ppm.Initialize(w.Context()).ok());
  const BudgetAllocation& alloc = ppm.allocation(0);
  EXPECT_DOUBLE_EQ(alloc[0], 1.0);
  EXPECT_DOUBLE_EQ(alloc[1], 1.0);
}

TEST(AdaptivePpmTest, InitializeTunesAllPrivatePatterns) {
  World w = SkewedWorld(8);
  AddPattern(&w, "priv2", {3, 4}, DetectionMode::kConjunction, true, false);
  AdaptivePatternPpm ppm(FastOptions());
  ASSERT_TRUE(ppm.Initialize(w.Context()).ok());
  ASSERT_EQ(ppm.private_pattern_count(), 2u);
  EXPECT_NEAR(ppm.PatternEpsilon(0), w.epsilon, 1e-9);
  EXPECT_NEAR(ppm.PatternEpsilon(1), w.epsilon, 1e-9);
}

TEST(AdaptivePpmTest, PublishesLikePatternLevelMechanism) {
  World w = SkewedWorld(9);
  AdaptivePatternPpm ppm(FastOptions());
  ASSERT_TRUE(ppm.Initialize(w.Context()).ok());
  Rng rng(31);
  Window win = MakeWindow(0, {0, 3, 4});
  PublishedView v = ppm.PublishWindow(win, &rng).value();
  // Types 3 and 4 are outside the private pattern: truthful.
  EXPECT_TRUE(v.presence[3]);
  EXPECT_TRUE(v.presence[4]);
  ASSERT_EQ(v.presence.size(), 5u);
}

TEST(AdaptivePpmTest, DefaultStepSizeIsPaperSuggestion) {
  // δε = m·ε/100 (Algorithm 1 line 2). We can't observe δε directly, but a
  // custom large step must change the outcome vs the default on a skewed
  // world, proving the option is wired through.
  World w = SkewedWorld(10);
  AdaptivePpmOptions default_opt = FastOptions();
  AdaptivePpmOptions big_step = FastOptions();
  big_step.step_epsilon = w.epsilon / 2.0;

  const Pattern& priv = w.patterns.Get(w.private_ids[0]);
  auto a = BidirectionalStepwiseSearch(priv, w.Context(), default_opt).value();
  auto b = BidirectionalStepwiseSearch(priv, w.Context(), big_step).value();
  // Different step sizes explore different allocations (both remain valid).
  EXPECT_NEAR(a.Total(), b.Total(), 1e-9);
}

}  // namespace
}  // namespace pldp
