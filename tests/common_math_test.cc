// Copyright 2026 The PLDP Authors.

#include "common/math_utils.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pldp {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sem(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared devs = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, SemShrinksWithN) {
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 10; ++i) a.Add(i % 2);
  for (int i = 0; i < 1000; ++i) b.Add(i % 2);
  EXPECT_GT(a.sem(), b.sem());
}

TEST(RunningStatsTest, NumericallyStableOnLargeOffset) {
  RunningStats s;
  // Classic catastrophic-cancellation case for naive sum-of-squares.
  for (double x : {1e9 + 4, 1e9 + 7, 1e9 + 13, 1e9 + 16}) s.Add(x);
  EXPECT_NEAR(s.mean(), 1e9 + 10, 1e-3);
  EXPECT_NEAR(s.variance(), 30.0, 1e-6);
}

TEST(StableSumTest, CompensatesSmallTerms) {
  // Naive left-to-right addition loses the 1.0 entirely: (1e16 + 1) - 1e16
  // rounds to 0 or 2. Kahan compensation recovers it.
  std::vector<double> xs{1e16, 1.0, -1e16};
  EXPECT_DOUBLE_EQ(StableSum(xs), 1.0);
}

TEST(StableSumTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(StableSum({}), 0.0);
}

TEST(MeanTest, Basic) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(ClampTest, Basic) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(NearTest, Basic) {
  EXPECT_TRUE(Near(1.0, 1.0001, 0.001));
  EXPECT_FALSE(Near(1.0, 1.01, 0.001));
}

TEST(PercentileTest, MedianAndExtremes) {
  std::vector<double> xs{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 5.0);
}

TEST(PercentileTest, Interpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 25), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(xs, 75), 7.5);
}

TEST(PercentileTest, EmptyAndClamping) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
  std::vector<double> xs{1.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, -10), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 200), 2.0);
}

}  // namespace
}  // namespace pldp
