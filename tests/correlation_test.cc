// Copyright 2026 The PLDP Authors.
//
// Tests for the §V-C correlation analysis: association statistics and the
// latent-relevant-event suggestions.

#include "cep/correlation.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace pldp {
namespace {

Window MakeWindow(size_t index, std::initializer_list<EventTypeId> types) {
  Window w;
  w.start = static_cast<Timestamp>(index);
  w.end = w.start + 1;
  for (EventTypeId t : types) w.events.emplace_back(t, w.start);
  return w;
}

const EventPatternCorrelation& Find(
    const std::vector<EventPatternCorrelation>& all, EventTypeId t,
    PatternId p) {
  for (const auto& c : all) {
    if (c.event_type == t && c.pattern == p) return c;
  }
  static EventPatternCorrelation none;
  return none;
}

TEST(CorrelationTest, ValidatesInput) {
  PatternRegistry patterns;
  EXPECT_FALSE(AnalyzeEventPatternCorrelations({}, patterns, 3).ok());
  std::vector<Window> h{MakeWindow(0, {0})};
  EXPECT_FALSE(AnalyzeEventPatternCorrelations(h, patterns, 0).ok());
}

TEST(CorrelationTest, ExactStatisticsOnHandcraftedHistory) {
  PatternRegistry patterns;
  PatternId p =
      patterns
          .Register(Pattern::Create("p", {0, 1},
                                    DetectionMode::kConjunction)
                        .value())
          .value();
  // 4 windows: {0,1}, {0,1,2}, {2}, {0}.
  std::vector<Window> h{MakeWindow(0, {0, 1}), MakeWindow(1, {0, 1, 2}),
                        MakeWindow(2, {2}), MakeWindow(3, {0})};
  auto all = AnalyzeEventPatternCorrelations(h, patterns, 3).value();
  ASSERT_EQ(all.size(), 3u);

  // support(P) = 2/4; support(e2) = 2/4; joint(e2, P) = 1.
  const auto& c2 = Find(all, 2, p);
  EXPECT_DOUBLE_EQ(c2.support_event, 0.5);
  EXPECT_DOUBLE_EQ(c2.support_pattern, 0.5);
  EXPECT_DOUBLE_EQ(c2.confidence, 0.5);  // 1 of 2 windows with e2
  EXPECT_DOUBLE_EQ(c2.lift, 1.0);        // independent

  // e0 occurs in 3 windows, 2 of which have the pattern.
  const auto& c0 = Find(all, 0, p);
  EXPECT_DOUBLE_EQ(c0.support_event, 0.75);
  EXPECT_NEAR(c0.confidence, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(c0.lift, (2.0 / 3.0) / 0.5, 1e-12);
}

TEST(CorrelationTest, NeverOccurringEventHasZeroConfidence) {
  PatternRegistry patterns;
  (void)patterns.Register(
      Pattern::Create("p", {0}, DetectionMode::kConjunction).value());
  std::vector<Window> h{MakeWindow(0, {0}), MakeWindow(1, {0})};
  auto all = AnalyzeEventPatternCorrelations(h, patterns, 2).value();
  const auto& c = Find(all, 1, 0);
  EXPECT_DOUBLE_EQ(c.support_event, 0.0);
  EXPECT_DOUBLE_EQ(c.confidence, 0.0);
}

TEST(CorrelationTest, NeverDetectedPatternHasZeroLift) {
  PatternRegistry patterns;
  (void)patterns.Register(
      Pattern::Create("p", {5}, DetectionMode::kConjunction).value());
  std::vector<Window> h{MakeWindow(0, {0})};
  auto all = AnalyzeEventPatternCorrelations(h, patterns, 6).value();
  for (const auto& c : all) {
    EXPECT_DOUBLE_EQ(c.lift, 0.0);
  }
}

TEST(SuggestRelevantEventsTest, FindsLatentCompanionEvent) {
  // Event 2 co-occurs with the pattern {0,1} far more often than chance:
  // whenever the pattern fires, 2 fires too; otherwise 2 is rare.
  Pattern p =
      Pattern::Create("p", {0, 1}, DetectionMode::kConjunction).value();
  std::vector<Window> h;
  Rng rng(3);
  for (size_t i = 0; i < 400; ++i) {
    bool fire = rng.Bernoulli(0.3);
    std::vector<EventTypeId> types;
    if (fire) {
      types = {0, 1, 2};  // pattern + companion
    } else {
      if (rng.Bernoulli(0.5)) types.push_back(0);
      if (rng.Bernoulli(0.1)) types.push_back(2);  // rare otherwise
      if (rng.Bernoulli(0.5)) types.push_back(3);  // independent noise
    }
    Window w;
    w.start = static_cast<Timestamp>(i);
    w.end = w.start + 1;
    for (EventTypeId t : types) w.events.emplace_back(t, w.start);
    h.push_back(std::move(w));
  }
  auto suggested = SuggestRelevantEvents(h, p, 4).value();
  // The companion event 2 must be suggested; the independent event 3 not.
  ASSERT_FALSE(suggested.empty());
  EXPECT_EQ(suggested[0], 2u);
  for (EventTypeId t : suggested) EXPECT_NE(t, 3u);
}

TEST(SuggestRelevantEventsTest, DeclaredElementsNeverSuggested) {
  Pattern p =
      Pattern::Create("p", {0, 1}, DetectionMode::kConjunction).value();
  std::vector<Window> h;
  for (size_t i = 0; i < 50; ++i) h.push_back(MakeWindow(i, {0, 1}));
  auto suggested = SuggestRelevantEvents(h, p, 2).value();
  EXPECT_TRUE(suggested.empty());
}

TEST(SuggestRelevantEventsTest, ThresholdsFilter) {
  Pattern p = Pattern::Create("p", {0}, DetectionMode::kConjunction).value();
  std::vector<Window> h;
  for (size_t i = 0; i < 100; ++i) {
    // Event 1 always co-occurs: lift = 1/support(P) = 2.
    h.push_back(i % 2 == 0 ? MakeWindow(i, {0, 1}) : MakeWindow(i, {2}));
  }
  auto loose = SuggestRelevantEvents(h, p, 3, /*min_lift=*/1.5).value();
  EXPECT_EQ(loose, (std::vector<EventTypeId>{1}));
  auto strict = SuggestRelevantEvents(h, p, 3, /*min_lift=*/5.0).value();
  EXPECT_TRUE(strict.empty());
}

}  // namespace
}  // namespace pldp
