// Copyright 2026 The PLDP Authors.
//
// Tests for correlation key extraction (cep/correlation_key.h): spec
// validation, deterministic value hashing, the compiled extractors, and the
// query-needs analysis that picks the finest safe spec.

#include "cep/correlation_key.h"

#include <gtest/gtest.h>

#include <vector>

namespace pldp {
namespace {

Pattern MakePattern(const char* name, std::vector<EventTypeId> elems,
                    DetectionMode mode) {
  return Pattern::Create(name, std::move(elems), mode).value();
}

TEST(CorrelationKeySpecTest, Validation) {
  EXPECT_TRUE(ValidateCorrelationKeySpec(CorrelationKeySpec::Global()).ok());
  EXPECT_TRUE(ValidateCorrelationKeySpec(CorrelationKeySpec::Subject()).ok());
  EXPECT_TRUE(
      ValidateCorrelationKeySpec(CorrelationKeySpec::ByEventType()).ok());
  EXPECT_TRUE(
      ValidateCorrelationKeySpec(CorrelationKeySpec::ByAttribute("region"))
          .ok());
  // kAttribute without a name is malformed.
  EXPECT_FALSE(
      ValidateCorrelationKeySpec(CorrelationKeySpec::ByAttribute("")).ok());
  // A name on a kind that ignores it is a configuration smell.
  CorrelationKeySpec stray = CorrelationKeySpec::Global();
  stray.attribute = "region";
  EXPECT_FALSE(ValidateCorrelationKeySpec(stray).ok());
}

TEST(CorrelationValueKeyTest, EqualValuesShareKeysDistinctValuesDiffer) {
  EXPECT_EQ(CorrelationValueKey(Value(int64_t{7})),
            CorrelationValueKey(Value(int64_t{7})));
  EXPECT_EQ(CorrelationValueKey(Value("cell_3")),
            CorrelationValueKey(Value("cell_3")));
  EXPECT_NE(CorrelationValueKey(Value(int64_t{7})),
            CorrelationValueKey(Value(int64_t{8})));
  EXPECT_NE(CorrelationValueKey(Value("a")), CorrelationValueKey(Value("b")));
  // Kinds are part of the key: int 1 and bool true must not collide.
  EXPECT_NE(CorrelationValueKey(Value(int64_t{1})),
            CorrelationValueKey(Value(true)));
  // Both zeros of double compare equal and must share a key.
  EXPECT_EQ(CorrelationValueKey(Value(0.0)), CorrelationValueKey(Value(-0.0)));
}

TEST(MakeCorrelationKeyFnTest, ExtractorsMatchTheirSpec) {
  Event event(/*type=*/5, /*ts=*/10, /*stream=*/3);
  event.SetAttribute("region", Value(int64_t{42}));

  auto global = MakeCorrelationKeyFn(CorrelationKeySpec::Global()).value();
  EXPECT_EQ(global(event), 0u);

  auto subject = MakeCorrelationKeyFn(CorrelationKeySpec::Subject()).value();
  EXPECT_EQ(subject(event), 3u);

  auto by_type =
      MakeCorrelationKeyFn(CorrelationKeySpec::ByEventType()).value();
  EXPECT_EQ(by_type(event), 5u);

  auto by_attr =
      MakeCorrelationKeyFn(CorrelationKeySpec::ByAttribute("region")).value();
  EXPECT_EQ(by_attr(event), CorrelationValueKey(Value(int64_t{42})));
  // Same attribute value on a different subject/type: same key — that is
  // the whole point of cross-subject correlation.
  Event other(/*type=*/9, /*ts=*/11, /*stream=*/77);
  other.SetAttribute("region", Value(int64_t{42}));
  EXPECT_EQ(by_attr(event), by_attr(other));
  // Missing attribute co-locates with the global partition.
  EXPECT_EQ(by_attr(Event(0, 0)), 0u);

  EXPECT_FALSE(MakeCorrelationKeyFn(CorrelationKeySpec::ByAttribute("")).ok());
}

TEST(SuggestCorrelationSpecTest, SingleTypePatternsKeyByType) {
  const std::vector<Pattern> singles = {
      MakePattern("p", {4}, DetectionMode::kDisjunction),
      // Repeated elements still collapse to one distinct type.
      MakePattern("q", {7, 7}, DetectionMode::kSequence),
  };
  EXPECT_EQ(SuggestCorrelationSpec(singles).value().kind,
            CorrelationKeySpec::Kind::kEventType);
}

TEST(SuggestCorrelationSpecTest, MultiTypePatternsFallBackToGlobal) {
  const std::vector<Pattern> mixed = {
      MakePattern("p", {4}, DetectionMode::kDisjunction),
      MakePattern("q", {1, 2}, DetectionMode::kConjunction),
  };
  EXPECT_EQ(SuggestCorrelationSpec(mixed).value().kind,
            CorrelationKeySpec::Kind::kGlobal);
  EXPECT_FALSE(SuggestCorrelationSpec({}).ok());
}

}  // namespace
}  // namespace pldp
