// Copyright 2026 The PLDP Authors.
//
// Tests for the taxi simulator: area proportions (the paper's 20 % / 50 % /
// 50 %-overlap construction), trajectory validity, stream structure, and
// determinism.

#include "datasets/taxi.h"

#include <gtest/gtest.h>

#include <set>

namespace pldp {
namespace {

TaxiOptions SmallOptions() {
  TaxiOptions opt;
  opt.grid_width = 10;
  opt.grid_height = 10;
  opt.num_taxis = 20;
  opt.num_ticks = 50;
  return opt;
}

TEST(TaxiTest, AreaProportionsMatchPaper) {
  TaxiOptions opt = SmallOptions();
  auto ds = GenerateTaxi(opt, 1).value();
  const size_t cells = 100;
  // 20% private.
  EXPECT_NEAR(static_cast<double>(ds.private_cells.size()) / cells, 0.2,
              0.02);
  // 50% target overall.
  EXPECT_NEAR(static_cast<double>(ds.target_cells.size()) / cells, 0.5,
              0.02);
  // Half of the private cells are target.
  std::set<int64_t> target(ds.target_cells.begin(), ds.target_cells.end());
  size_t overlap = 0;
  for (int64_t c : ds.private_cells) overlap += target.count(c);
  EXPECT_NEAR(static_cast<double>(overlap) /
                  static_cast<double>(ds.private_cells.size()),
              0.5, 0.1);
}

TEST(TaxiTest, CellIdsWithinGrid) {
  auto ds = GenerateTaxi(SmallOptions(), 2).value();
  for (int64_t c : ds.private_cells) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 100);
  }
  for (int64_t c : ds.target_cells) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 100);
  }
}

TEST(TaxiTest, MergedStreamIsTemporallyOrdered) {
  auto ds = GenerateTaxi(SmallOptions(), 3).value();
  EXPECT_TRUE(ds.merged_stream.IsTemporallyOrdered());
  // One event per taxi per tick.
  EXPECT_EQ(ds.merged_stream.size(), 20u * 50u);
}

TEST(TaxiTest, EventsCarryCellAttribute) {
  auto ds = GenerateTaxi(SmallOptions(), 4).value();
  const Event& e = ds.merged_stream[0];
  auto cell = e.GetAttribute("cell");
  ASSERT_TRUE(cell.has_value());
  EXPECT_EQ(cell->AsInt().value(), static_cast<int64_t>(e.type()));
}

TEST(TaxiTest, TrajectoriesMoveAtMostOneCellPerTick) {
  TaxiOptions opt = SmallOptions();
  opt.num_taxis = 5;
  auto ds = GenerateTaxi(opt, 5).value();
  // Group events per taxi and check Manhattan step <= 1 per tick (the
  // greedy step moves along one axis only).
  for (StreamId taxi = 0; taxi < 5; ++taxi) {
    int64_t prev_x = -1, prev_y = -1;
    for (const Event& e : ds.merged_stream) {
      if (e.stream() != taxi) continue;
      int64_t cell = e.GetAttribute("cell")->AsInt().value();
      int64_t x = cell % 10;
      int64_t y = cell / 10;
      if (prev_x >= 0) {
        EXPECT_LE(std::abs(x - prev_x) + std::abs(y - prev_y), 1)
            << "taxi " << taxi;
      }
      prev_x = x;
      prev_y = y;
    }
  }
}

TEST(TaxiTest, WindowsCoverAllTicks) {
  TaxiOptions opt = SmallOptions();
  auto ds = GenerateTaxi(opt, 6).value();
  EXPECT_EQ(ds.dataset.windows.size(), opt.num_ticks);
  size_t total_events = 0;
  for (const Window& w : ds.dataset.windows) total_events += w.events.size();
  EXPECT_EQ(total_events, ds.merged_stream.size());
}

TEST(TaxiTest, MultiTickWindows) {
  TaxiOptions opt = SmallOptions();
  opt.window_ticks = 5;
  auto ds = GenerateTaxi(opt, 7).value();
  EXPECT_EQ(ds.dataset.windows.size(), opt.num_ticks / 5);
}

TEST(TaxiTest, PatternsMatchAreas) {
  auto ds = GenerateTaxi(SmallOptions(), 8).value();
  EXPECT_EQ(ds.dataset.private_patterns.size(), ds.private_cells.size());
  EXPECT_EQ(ds.dataset.target_patterns.size(), ds.target_cells.size());
  // Every private pattern is a single-element disjunction on its cell type.
  for (size_t i = 0; i < ds.dataset.private_patterns.size(); ++i) {
    const Pattern& p =
        ds.dataset.patterns.Get(ds.dataset.private_patterns[i]);
    EXPECT_EQ(p.length(), 1u);
    EXPECT_EQ(p.mode(), DetectionMode::kDisjunction);
    EXPECT_EQ(p.elements()[0],
              static_cast<EventTypeId>(ds.private_cells[i]));
  }
}

TEST(TaxiTest, SameSeedReproduces) {
  auto a = GenerateTaxi(SmallOptions(), 42).value();
  auto b = GenerateTaxi(SmallOptions(), 42).value();
  ASSERT_EQ(a.merged_stream.size(), b.merged_stream.size());
  for (size_t i = 0; i < a.merged_stream.size(); ++i) {
    ASSERT_EQ(a.merged_stream[i], b.merged_stream[i]);
  }
  EXPECT_EQ(a.private_cells, b.private_cells);
  EXPECT_EQ(a.target_cells, b.target_cells);
}

TEST(TaxiTest, DifferentSeedsDiffer) {
  auto a = GenerateTaxi(SmallOptions(), 1).value();
  auto b = GenerateTaxi(SmallOptions(), 2).value();
  EXPECT_NE(a.private_cells, b.private_cells);
}

TEST(TaxiTest, SamplingIntervalSpacesTimestamps) {
  TaxiOptions opt = SmallOptions();
  opt.sampling_interval_s = 177;  // the paper's cadence
  auto ds = GenerateTaxi(opt, 9).value();
  std::set<Timestamp> stamps;
  for (const Event& e : ds.merged_stream) stamps.insert(e.timestamp());
  for (Timestamp t : stamps) {
    EXPECT_EQ(t % 177, 0);
  }
  EXPECT_EQ(stamps.size(), opt.num_ticks);
}

TEST(TaxiTest, HotspotBiasConcentratesTraffic) {
  // With strong hotspot attraction, visits concentrate on few cells; with
  // no bias they spread out. Compare distinct-cell coverage.
  TaxiOptions biased = SmallOptions();
  biased.hotspot_bias = 0.95;
  biased.num_hotspots = 1;
  biased.num_ticks = 200;
  TaxiOptions free_walk = biased;
  free_walk.hotspot_bias = 0.0;

  auto count_cells = [](const TaxiDataset& ds) {
    std::set<EventTypeId> cells;
    // Skip a burn-in prefix: taxis start uniformly and need time to reach
    // the hotspot.
    size_t skip = ds.merged_stream.size() / 2;
    for (size_t i = skip; i < ds.merged_stream.size(); ++i) {
      cells.insert(ds.merged_stream[i].type());
    }
    return cells.size();
  };
  size_t biased_cells = count_cells(GenerateTaxi(biased, 10).value());
  size_t free_cells = count_cells(GenerateTaxi(free_walk, 10).value());
  EXPECT_LT(biased_cells, free_cells);
}

TEST(TaxiTest, ValidatesOptions) {
  TaxiOptions zero_grid = SmallOptions();
  zero_grid.grid_width = 0;
  EXPECT_FALSE(GenerateTaxi(zero_grid, 1).ok());

  TaxiOptions zero_taxis = SmallOptions();
  zero_taxis.num_taxis = 0;
  EXPECT_FALSE(GenerateTaxi(zero_taxis, 1).ok());

  TaxiOptions bad_interval = SmallOptions();
  bad_interval.sampling_interval_s = 0;
  EXPECT_FALSE(GenerateTaxi(bad_interval, 1).ok());

  TaxiOptions bad_fraction = SmallOptions();
  bad_fraction.private_cell_fraction = 1.5;
  EXPECT_FALSE(GenerateTaxi(bad_fraction, 1).ok());
}

}  // namespace
}  // namespace pldp
