// Copyright 2026 The PLDP Authors.
//
// Planner equivalence pinning for the declarative PipelineBuilder API:
// every topology the planner can choose — sequential, sharded,
// exchange (including two cross queries with *different* correlation keys
// in one pipeline), and private — must produce detections identical to
// the hand-wired engines under fixed seeds, at 1/2/4 shards. Also pins
// the typed-handle contract: results are only reachable through
// FinishedPipeline, and invalid/foreign handles are hard errors rather
// than silently empty results.

#include "api/pipeline_builder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/private_engine.h"
#include "event/symbol_table.h"
#include "ppm/factory.h"
#include "ppm/subject_publisher.h"
#include "stream/replay.h"
#include "stream/window.h"

namespace pldp {
namespace {

constexpr uint64_t kSeed = 0x5eedULL;
constexpr Timestamp kQueryWindow = 8;
constexpr size_t kGroups = 4;
constexpr size_t kTypesPerGroup = 3;
constexpr size_t kSubjects = 16;

Pattern MakePattern(const char* name, std::vector<EventTypeId> elems,
                    DetectionMode mode) {
  return Pattern::Create(name, std::move(elems), mode).value();
}

/// Group-alphabet pattern: all three types of group `g`.
Pattern GroupPattern(size_t g, DetectionMode mode) {
  const auto base = static_cast<EventTypeId>(g * kTypesPerGroup);
  return MakePattern("group", {base, base + 1, base + 2}, mode);
}

/// A stream whose types come from per-group alphabets while subjects are
/// drawn independently, so group matches span subjects — the cross-subject
/// regime. Every event carries the group as a `zone` symbol attribute, so
/// attribute keying and the type-derived grouping agree.
EventStream CrossStream(size_t num_events, uint64_t seed) {
  const AttrId zone_attr = AttrNames().Intern("zone");
  std::vector<Value> zones;
  for (size_t g = 0; g < kGroups; ++g) {
    zones.push_back(Value::Sym("zone-" + std::to_string(g)));
  }
  Rng rng(seed);
  EventStream stream;
  stream.Reserve(num_events);
  for (size_t i = 0; i < num_events; ++i) {
    const size_t group = rng.UniformUint64(kGroups);
    const auto type = static_cast<EventTypeId>(
        group * kTypesPerGroup + rng.UniformUint64(kTypesPerGroup));
    const auto subject = static_cast<StreamId>(rng.UniformUint64(kSubjects));
    Event e(type, static_cast<Timestamp>(i / 8), subject);
    e.SetAttribute(zone_attr, zones[group]);
    stream.AppendUnchecked(std::move(e));
  }
  return stream;
}

/// Subject-local stream: per-subject alphabets (type = subject's group).
EventStream SubjectStream(size_t num_events, uint64_t seed) {
  Rng rng(seed);
  EventStream stream;
  stream.Reserve(num_events);
  for (size_t i = 0; i < num_events; ++i) {
    const auto subject =
        static_cast<StreamId>(rng.UniformUint64(kGroups));
    const auto type = static_cast<EventTypeId>(
        subject * kTypesPerGroup + rng.UniformUint64(kTypesPerGroup));
    stream.AppendUnchecked(
        Event(type, static_cast<Timestamp>(i / 8), subject));
  }
  return stream;
}

/// Hand-wired sequential reference over the full stream.
std::vector<std::vector<Timestamp>> SequentialDetections(
    const EventStream& stream, const std::vector<Pattern>& patterns) {
  StreamingCepEngine reference;
  std::vector<size_t> indices;
  for (const Pattern& p : patterns) {
    indices.push_back(reference.AddQuery(p, kQueryWindow).value());
  }
  for (const Event& e : stream) (void)reference.OnEvent(e);
  std::vector<std::vector<Timestamp>> result;
  for (size_t index : indices) {
    std::vector<Timestamp> d = reference.DetectionsOf(index).value();
    std::sort(d.begin(), d.end());
    result.push_back(std::move(d));
  }
  return result;
}

std::vector<Timestamp> Sorted(std::vector<Timestamp> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// --- Planner decisions -----------------------------------------------------

TEST(PipelinePlannerTest, BudgetOnePlansSequential) {
  PipelineBuilder builder;
  QueryHandle q = builder.AddQuery(GroupPattern(0, DetectionMode::kSequence),
                                   kQueryWindow);
  CrossQueryHandle c = builder.AddCrossQuery(
      GroupPattern(1, DetectionMode::kConjunction), kQueryWindow);
  auto pipeline_or = builder.WithShards(1).Build();
  ASSERT_TRUE(pipeline_or.ok()) << pipeline_or.status().ToString();
  const PipelinePlan& plan = pipeline_or.value()->plan();
  EXPECT_TRUE(plan.sequential);
  EXPECT_EQ(plan.shard_count, 1u);
  EXPECT_EQ(plan.plain_queries, 1u);
  ASSERT_EQ(plan.cross_groups.size(), 1u);
  // Sequential topology spins up no merge shards at all.
  EXPECT_EQ(plan.cross_groups[0].merge_shards, 0u);
  EXPECT_TRUE(q.valid());
  EXPECT_TRUE(c.valid());
  EXPECT_FALSE(plan.Describe().empty());
}

TEST(PipelinePlannerTest, DistinctKeysGetDistinctLaneGroups) {
  PipelineBuilder builder;
  (void)builder.AddCrossQuery(GroupPattern(0, DetectionMode::kConjunction),
                              kQueryWindow,
                              CorrelationKey::ByAttribute("zone"));
  (void)builder.AddCrossQuery(GroupPattern(1, DetectionMode::kConjunction),
                              kQueryWindow, CorrelationKey::Global());
  (void)builder.AddCrossQuery(GroupPattern(2, DetectionMode::kConjunction),
                              kQueryWindow,
                              CorrelationKey::ByAttribute("zone"));
  auto pipeline_or = builder.WithShards(2).WithCrossShards(2).Build();
  ASSERT_TRUE(pipeline_or.ok()) << pipeline_or.status().ToString();
  const PipelinePlan& plan = pipeline_or.value()->plan();
  EXPECT_FALSE(plan.sequential);
  ASSERT_EQ(plan.cross_groups.size(), 2u);
  EXPECT_EQ(plan.cross_groups[0].key_id, "attr:zone");
  EXPECT_EQ(plan.cross_groups[0].query_count, 2u);
  EXPECT_EQ(plan.cross_groups[1].key_id, "global");
  EXPECT_EQ(plan.cross_groups[1].query_count, 1u);
}

TEST(PipelinePlannerTest, AutoKeyRunsQueryNeedsAnalysis) {
  const auto t0 = static_cast<EventTypeId>(0);
  PipelineBuilder builder;
  // Single distinct element type -> the analysis picks the event-type key.
  (void)builder.AddCrossQuery(
      MakePattern("pair", {t0, t0}, DetectionMode::kSequence), kQueryWindow);
  // Three distinct types -> nothing finer than global is safe.
  (void)builder.AddCrossQuery(GroupPattern(1, DetectionMode::kConjunction),
                              kQueryWindow);
  auto pipeline_or = builder.WithShards(2).WithCrossShards(2).Build();
  ASSERT_TRUE(pipeline_or.ok()) << pipeline_or.status().ToString();
  const PipelinePlan& plan = pipeline_or.value()->plan();
  ASSERT_EQ(plan.cross_groups.size(), 2u);
  EXPECT_EQ(plan.cross_groups[0].key_id, "event-type");
  EXPECT_EQ(plan.cross_groups[1].key_id, "global");
}

TEST(PipelinePlannerTest, ValidationErrors) {
  {
    PipelineBuilder builder;
    EXPECT_TRUE(builder.Build().status().IsInvalidArgument());
  }
  {
    // Private query without a mechanism.
    PipelineBuilder builder;
    builder.AddPrivatePattern(
        MakePattern("p", {0, 1}, DetectionMode::kConjunction));
    (void)builder.AddPrivateQuery(
        "q", MakePattern("t", {0, 1}, DetectionMode::kConjunction));
    EXPECT_TRUE(
        builder.WithPrivacyWindow(5).Build().status().IsInvalidArgument());
  }
  {
    // Malformed pattern latches and surfaces at Build.
    PipelineBuilder builder;
    QueryHandle handle = builder.AddQuery(
        Pattern::Create("empty", {}, DetectionMode::kSequence), kQueryWindow);
    EXPECT_FALSE(handle.valid());
    EXPECT_FALSE(builder.Build().ok());
  }
  {
    // Builders are single-use.
    PipelineBuilder builder;
    (void)builder.AddQuery(GroupPattern(0, DetectionMode::kSequence),
                           kQueryWindow);
    ASSERT_TRUE(builder.WithShards(1).Build().ok());
    EXPECT_TRUE(builder.Build().status().IsFailedPrecondition());
  }
}

// --- Equivalence: plain (sequential + sharded topologies) ------------------

TEST(PipelineEquivalenceTest, PlainQueriesMatchSequentialEngine) {
  const EventStream stream = SubjectStream(20000, 7);
  std::vector<Pattern> patterns;
  for (size_t g = 0; g < kGroups; ++g) {
    patterns.push_back(GroupPattern(g, DetectionMode::kSequence));
  }
  const auto reference = SequentialDetections(stream, patterns);

  for (size_t shards : {1u, 2u, 4u}) {
    PipelineBuilder builder;
    std::vector<QueryHandle> handles;
    for (const Pattern& p : patterns) {
      handles.push_back(builder.AddQuery(p, kQueryWindow));
    }
    auto pipeline_or = builder.WithShards(shards).WithSeed(kSeed).Build();
    ASSERT_TRUE(pipeline_or.ok()) << pipeline_or.status().ToString();
    Pipeline& pipeline = *pipeline_or.value();
    EXPECT_EQ(pipeline.plan().sequential, shards == 1);

    StreamReplayer replayer;
    replayer.Subscribe(&pipeline);
    ASSERT_TRUE(replayer.Run(stream, ReplayMode::kBatchPerTick).ok());

    auto finished_or = pipeline.Finish();
    ASSERT_TRUE(finished_or.ok());
    const FinishedPipeline& finished = finished_or.value();
    for (size_t q = 0; q < handles.size(); ++q) {
      auto detections = finished.Detections(handles[q]);
      ASSERT_TRUE(detections.ok());
      EXPECT_EQ(Sorted(detections.value()), reference[q])
          << "shards=" << shards << " q=" << q;
    }
    EXPECT_EQ(pipeline.events_processed(), stream.size());
  }
}

// --- Equivalence: two cross queries with different keys in one pipeline ----

TEST(PipelineEquivalenceTest, PerQueryCorrelationKeysMatchSequentialEngine) {
  const EventStream stream = CrossStream(20000, 11);
  const Pattern zone_pattern = GroupPattern(0, DetectionMode::kConjunction);
  const Pattern global_pattern = GroupPattern(1, DetectionMode::kSequence);
  const auto reference =
      SequentialDetections(stream, {zone_pattern, global_pattern});

  for (size_t shards : {1u, 2u, 4u}) {
    PipelineBuilder builder;
    // Two cross queries, each under its own correlation key — the
    // "per-query keys" capability one pipeline could not express before.
    CrossQueryHandle by_zone = builder.AddCrossQuery(
        zone_pattern, kQueryWindow, CorrelationKey::ByAttribute("zone"));
    CrossQueryHandle by_global = builder.AddCrossQuery(
        global_pattern, kQueryWindow, CorrelationKey::Global());
    auto pipeline_or =
        builder.WithShards(shards).WithCrossShards(2).WithSeed(kSeed).Build();
    ASSERT_TRUE(pipeline_or.ok()) << pipeline_or.status().ToString();
    Pipeline& pipeline = *pipeline_or.value();
    if (shards > 1) {
      ASSERT_EQ(pipeline.plan().cross_groups.size(), 2u);
    }

    StreamReplayer replayer;
    replayer.Subscribe(&pipeline);
    ASSERT_TRUE(replayer.Run(stream, ReplayMode::kBatchPerTick).ok());

    auto finished_or = pipeline.Finish();
    ASSERT_TRUE(finished_or.ok());
    const FinishedPipeline& finished = finished_or.value();
    auto zone_hits = finished.Detections(by_zone);
    auto global_hits = finished.Detections(by_global);
    ASSERT_TRUE(zone_hits.ok());
    ASSERT_TRUE(global_hits.ok());
    EXPECT_EQ(Sorted(zone_hits.value()), reference[0]) << "shards=" << shards;
    EXPECT_EQ(Sorted(global_hits.value()), reference[1])
        << "shards=" << shards;
  }
}

// --- Equivalence: custom key functions -------------------------------------

TEST(PipelineEquivalenceTest, CustomKeyFunctionsShareLaneGroupByName) {
  const EventStream stream = CrossStream(12000, 13);
  const auto group_of = [](const Event& e) {
    return static_cast<uint64_t>(e.type()) / kTypesPerGroup;
  };
  std::vector<Pattern> patterns;
  for (size_t g = 0; g < kGroups; ++g) {
    patterns.push_back(GroupPattern(g, DetectionMode::kConjunction));
  }
  const auto reference = SequentialDetections(stream, patterns);

  PipelineBuilder builder;
  std::vector<CrossQueryHandle> handles;
  for (const Pattern& p : patterns) {
    handles.push_back(builder.AddCrossQuery(
        p, kQueryWindow, CorrelationKey::Custom("group", group_of)));
  }
  auto pipeline_or =
      builder.WithShards(2).WithCrossShards(2).WithSeed(kSeed).Build();
  ASSERT_TRUE(pipeline_or.ok()) << pipeline_or.status().ToString();
  Pipeline& pipeline = *pipeline_or.value();
  // Same custom name -> one shared lane-group.
  ASSERT_EQ(pipeline.plan().cross_groups.size(), 1u);
  EXPECT_EQ(pipeline.plan().cross_groups[0].key_id, "custom:group");

  StreamReplayer replayer;
  replayer.Subscribe(&pipeline);
  ASSERT_TRUE(replayer.Run(stream, ReplayMode::kBatchPerTick).ok());
  auto finished_or = pipeline.Finish();
  ASSERT_TRUE(finished_or.ok());
  for (size_t q = 0; q < handles.size(); ++q) {
    auto detections = finished_or.value().Detections(handles[q]);
    ASSERT_TRUE(detections.ok());
    EXPECT_EQ(Sorted(detections.value()), reference[q]) << "q=" << q;
  }
}

// --- Equivalence: the full mixed workload ----------------------------------

/// The acceptance scenario: one pipeline registers a plain query, a
/// cross-subject query with its own correlation key, and a private query;
/// the planner-built topology must match the sequential engines for every
/// lane at 1/2/4 shards.
TEST(PipelineEquivalenceTest, MixedPlainCrossPrivateMatchesSequentialEngines) {
  constexpr Timestamp kPrivacyWindow = 5;
  constexpr double kEpsilon = 1.0;

  // A 3-type vocabulary for the private lane; plain/cross queries reuse the
  // same low type ids.
  const EventStream stream = SubjectStream(8000, 17);
  const Pattern plain_pattern = GroupPattern(0, DetectionMode::kSequence);
  const Pattern cross_pattern = GroupPattern(1, DetectionMode::kConjunction);
  const auto reference =
      SequentialDetections(stream, {plain_pattern, cross_pattern});

  // Sequential private reference: per-subject PrivateCepEngine with the
  // per-subject seed the sharded engine derives internally.
  const Pattern private_pattern =
      MakePattern("meds", {0, 1}, DetectionMode::kConjunction);
  const Pattern target_pattern =
      MakePattern("came_home", {0, 2}, DetectionMode::kConjunction);
  std::map<StreamId, AnswerSeries> private_reference;
  for (StreamId subject = 0; subject < kGroups * kTypesPerGroup; ++subject) {
    EventStream sub;
    for (const Event& e : stream) {
      if (e.stream() == subject) sub.AppendUnchecked(e);
    }
    if (sub.empty()) continue;
    PrivateCepEngine seq;
    for (size_t t = 0; t < kGroups * kTypesPerGroup; ++t) {
      (void)seq.InternEventType("t" + std::to_string(t));
    }
    ASSERT_TRUE(seq.RegisterPrivatePattern(private_pattern).ok());
    ASSERT_TRUE(seq.RegisterTargetQuery("came_home", target_pattern).ok());
    ASSERT_TRUE(
        seq.Activate(MakeMechanism("uniform").value(), kEpsilon).ok());
    Rng rng(SubjectSeed(kSeed, subject));
    auto results =
        seq.ProcessStream(sub, TumblingWindower(kPrivacyWindow), &rng);
    ASSERT_TRUE(results.ok());
    private_reference.emplace(subject, results.value().answers[0]);
  }

  for (size_t shards : {1u, 2u, 4u}) {
    PipelineBuilder builder;
    for (size_t t = 0; t < kGroups * kTypesPerGroup; ++t) {
      (void)builder.InternEventType("t" + std::to_string(t));
    }
    QueryHandle plain_q = builder.AddQuery(plain_pattern, kQueryWindow);
    CrossQueryHandle cross_q = builder.AddCrossQuery(
        cross_pattern, kQueryWindow, CorrelationKey::Global());
    PrivateQueryHandle private_q =
        builder.AddPrivateQuery("came_home", target_pattern);
    builder.AddPrivatePattern(private_pattern);
    auto pipeline_or = builder.WithShards(shards)
                           .WithCrossShards(2)
                           .WithSeed(kSeed)
                           .WithPrivacyWindow(kPrivacyWindow)
                           .WithMechanism("uniform")
                           .WithEpsilon(kEpsilon)
                           .Build();
    ASSERT_TRUE(pipeline_or.ok()) << pipeline_or.status().ToString();
    Pipeline& pipeline = *pipeline_or.value();
    EXPECT_TRUE(pipeline.plan().has_private);

    StreamReplayer replayer;
    replayer.Subscribe(&pipeline);
    ASSERT_TRUE(replayer.Run(stream, ReplayMode::kBatchPerTick).ok());
    auto finished_or = pipeline.Finish();
    ASSERT_TRUE(finished_or.ok()) << finished_or.status().ToString();
    const FinishedPipeline& finished = finished_or.value();

    auto plain_hits = finished.Detections(plain_q);
    ASSERT_TRUE(plain_hits.ok());
    EXPECT_EQ(Sorted(plain_hits.value()), reference[0])
        << "shards=" << shards;
    auto cross_hits = finished.Detections(cross_q);
    ASSERT_TRUE(cross_hits.ok());
    EXPECT_EQ(Sorted(cross_hits.value()), reference[1])
        << "shards=" << shards;

    ASSERT_EQ(finished.Subjects().size(), private_reference.size())
        << "shards=" << shards;
    for (const auto& entry : private_reference) {
      auto answers = finished.AnswersOf(private_q, entry.first);
      ASSERT_TRUE(answers.ok()) << "subject=" << entry.first;
      EXPECT_EQ(answers.value().answers(), entry.second.answers())
          << "shards=" << shards << " subject=" << entry.first;
    }
    EXPECT_GT(finished.total_windows(), 0u);
  }
}

// --- The typed-handle contract ---------------------------------------------

TEST(PipelineHandleTest, ForeignAndInvalidHandlesAreHardErrors) {
  PipelineBuilder builder_a;
  QueryHandle q_a = builder_a.AddQuery(
      GroupPattern(0, DetectionMode::kSequence), kQueryWindow);
  auto pipeline_a = builder_a.WithShards(1).Build();
  ASSERT_TRUE(pipeline_a.ok());

  PipelineBuilder builder_b;
  QueryHandle q_b = builder_b.AddQuery(
      GroupPattern(0, DetectionMode::kSequence), kQueryWindow);
  auto pipeline_b = builder_b.WithShards(1).Build();
  ASSERT_TRUE(pipeline_b.ok());

  auto finished_a = pipeline_a.value()->Finish();
  ASSERT_TRUE(finished_a.ok());
  // The right handle works; a handle of another pipeline is refused loudly
  // (the old facades' unknown-name lookup returned silently empty results).
  EXPECT_TRUE(finished_a.value().Detections(q_a).ok());
  EXPECT_TRUE(
      finished_a.value().Detections(q_b).status().IsInvalidArgument());
  // A default-constructed (never registered) handle is refused too.
  EXPECT_TRUE(finished_a.value()
                  .Detections(QueryHandle())
                  .status()
                  .IsInvalidArgument());
  (void)pipeline_b.value()->Finish();
}

// --- Detection callbacks (QueryHandle::OnDetection) ------------------------

TEST(PipelineCallbackTest, SequentialCallbacksFireSynchronously) {
  const EventStream stream = SubjectStream(8000, 19);
  const Pattern pattern = GroupPattern(0, DetectionMode::kSequence);
  const auto reference = SequentialDetections(stream, {pattern});

  PipelineBuilder builder;
  std::vector<Timestamp> fired;
  QueryHandle q = builder.AddQuery(pattern, kQueryWindow);
  q.OnDetection([&fired](Timestamp at) { fired.push_back(at); });
  auto pipeline_or = builder.WithShards(1).WithSeed(kSeed).Build();
  ASSERT_TRUE(pipeline_or.ok()) << pipeline_or.status().ToString();
  Pipeline& pipeline = *pipeline_or.value();
  ASSERT_TRUE(pipeline.plan().sequential);

  StreamReplayer replayer;
  replayer.Subscribe(&pipeline);
  ASSERT_TRUE(replayer.Run(stream, ReplayMode::kBatchPerTick).ok());
  auto finished_or = pipeline.Finish();
  ASSERT_TRUE(finished_or.ok());

  ASSERT_FALSE(reference[0].empty());
  EXPECT_EQ(Sorted(fired), reference[0]);
  EXPECT_EQ(Sorted(fired),
            Sorted(finished_or.value().Detections(q).value()));
}

TEST(PipelineCallbackTest, ShardedPlainAndCrossCallbacksSeeEveryDetection) {
  const EventStream stream = CrossStream(12000, 31);
  const Pattern plain_pattern = GroupPattern(0, DetectionMode::kSequence);
  const Pattern cross_pattern = GroupPattern(1, DetectionMode::kConjunction);

  for (size_t shards : {2u, 4u}) {
    PipelineBuilder builder;
    // Sharded plans dispatch on worker threads, so the sinks take a lock.
    std::mutex mu;
    std::vector<Timestamp> plain_fired;
    std::vector<Timestamp> cross_fired;
    QueryHandle plain_q = builder.AddQuery(plain_pattern, kQueryWindow);
    plain_q.OnDetection([&](Timestamp at) {
      std::lock_guard<std::mutex> lock(mu);
      plain_fired.push_back(at);
    });
    CrossQueryHandle cross_q = builder.AddCrossQuery(
        cross_pattern, kQueryWindow, CorrelationKey::Global());
    cross_q.OnDetection([&](Timestamp at) {
      std::lock_guard<std::mutex> lock(mu);
      cross_fired.push_back(at);
    });
    auto pipeline_or =
        builder.WithShards(shards).WithCrossShards(2).WithSeed(kSeed).Build();
    ASSERT_TRUE(pipeline_or.ok()) << pipeline_or.status().ToString();
    Pipeline& pipeline = *pipeline_or.value();
    ASSERT_FALSE(pipeline.plan().sequential);

    StreamReplayer replayer;
    replayer.Subscribe(&pipeline);
    ASSERT_TRUE(replayer.Run(stream, ReplayMode::kBatchPerTick).ok());
    auto finished_or = pipeline.Finish();
    ASSERT_TRUE(finished_or.ok());
    const FinishedPipeline& finished = finished_or.value();

    std::lock_guard<std::mutex> lock(mu);
    EXPECT_FALSE(plain_fired.empty()) << "shards=" << shards;
    EXPECT_EQ(Sorted(plain_fired),
              Sorted(finished.Detections(plain_q).value()))
        << "shards=" << shards;
    EXPECT_EQ(Sorted(cross_fired),
              Sorted(finished.Detections(cross_q).value()))
        << "shards=" << shards;
  }
}

TEST(PipelineCallbackTest, InvalidHandleCallbackIsIgnored) {
  PipelineBuilder builder;
  QueryHandle bad = builder.AddQuery(
      Pattern::Create("empty", {}, DetectionMode::kSequence), kQueryWindow);
  EXPECT_FALSE(bad.valid());
  // Must not crash or register anything; the latched pattern error still
  // surfaces at Build().
  bad.OnDetection([](Timestamp) {});
  QueryHandle detached;
  detached.OnDetection([](Timestamp) {});
  EXPECT_FALSE(builder.Build().ok());
}

TEST(PipelineHandleTest, IngestionAfterFinishIsRefusedAndFinishIdempotent) {
  PipelineBuilder builder;
  QueryHandle q = builder.AddQuery(GroupPattern(0, DetectionMode::kSequence),
                                   kQueryWindow);
  auto pipeline_or = builder.WithShards(2).Build();
  ASSERT_TRUE(pipeline_or.ok());
  Pipeline& pipeline = *pipeline_or.value();
  ASSERT_TRUE(pipeline.OnEvent(Event(0, 1, 0)).ok());
  auto first = pipeline.Finish();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(pipeline.OnEvent(Event(1, 2, 0)).IsFailedPrecondition());
  auto second = pipeline.Finish();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().Detections(q).ok());
}

}  // namespace
}  // namespace pldp
