// Copyright 2026 The PLDP Authors.
//
// Tests for the deterministic RNG: reproducibility, ranges, and
// distributional sanity of every sampler the library depends on.

#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace pldp {
namespace {

TEST(SplitMix64Test, DeterministicSequence) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformUint64RespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.UniformUint64(bound), bound);
    }
  }
}

TEST(RngTest, UniformUint64BoundOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformUint64(1), 0u);
  }
}

TEST(RngTest, UniformUint64CoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformUint64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(5);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.UniformDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanNearHalf) {
  Rng rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliRateMatchesP) {
  Rng rng(23);
  const int n = 100000;
  for (double p : {0.1, 0.25, 0.5, 0.9}) {
    int hits = 0;
    for (int i = 0; i < n; ++i) hits += rng.Bernoulli(p);
    EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01) << "p=" << p;
  }
}

TEST(RngTest, LaplaceZeroMeanAndScale) {
  Rng rng(29);
  const int n = 200000;
  const double scale = 2.0;
  double sum = 0;
  double abs_sum = 0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Laplace(scale);
    sum += x;
    abs_sum += std::abs(x);
  }
  // E[X] = 0, E[|X|] = scale for Laplace(0, scale).
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(abs_sum / n, scale, 0.05);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(31);
  const int n = 200000;
  const double rate = 4.0;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Exponential(rate);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(37);
  const int n = 200000;
  double sum = 0;
  double sq = 0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Gaussian(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngTest, GeometricMeanMatches) {
  Rng rng(41);
  const int n = 100000;
  const double p = 0.25;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Geometric(p));
  // E = (1-p)/p = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, GeometricWithPOneIsZero) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Geometric(1.0), 0u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(47);
  Rng child = parent.Fork();
  // The child stream must differ from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(53);
  Rng b(53);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa.NextUint64(), fb.NextUint64());
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(59);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(61);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(67);
  for (int trial = 0; trial < 50; ++trial) {
    auto s = rng.SampleWithoutReplacement(20, 5);
    ASSERT_EQ(s.size(), 5u);
    std::set<size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 5u);
    for (size_t x : s) EXPECT_LT(x, 20u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(71);
  auto s = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(RngTest, SampleWithoutReplacementKExceedsN) {
  Rng rng(73);
  auto s = rng.SampleWithoutReplacement(3, 10);
  EXPECT_EQ(s.size(), 3u);
}

TEST(RngTest, SampleIsApproximatelyUniform) {
  Rng rng(79);
  std::vector<int> counts(10, 0);
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    for (size_t x : rng.SampleWithoutReplacement(10, 3)) ++counts[x];
  }
  // Each index appears with probability 3/10.
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.3, 0.02);
  }
}

/// Determinism holds across samplers, parameterized over seeds.
class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, FullStreamReproducible) {
  Rng a(GetParam());
  Rng b(GetParam());
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(a.UniformDouble(), b.UniformDouble());
    ASSERT_EQ(a.Laplace(1.5), b.Laplace(1.5));
    ASSERT_EQ(a.Bernoulli(0.3), b.Bernoulli(0.3));
    ASSERT_EQ(a.Gaussian(0, 1), b.Gaussian(0, 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 42ull,
                                           0xdeadbeefull,
                                           0xffffffffffffffffull));

}  // namespace
}  // namespace pldp
