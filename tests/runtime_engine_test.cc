// Copyright 2026 The PLDP Authors.
//
// Tests for the sharded parallel streaming runtime.
//
// The central property: for keyed synthetic streams — streams in which
// every pattern match is subject-local, the paper's setting — a
// ParallelStreamingEngine with N shards produces exactly the same
// per-query detection multiset as one sequential StreamingCepEngine,
// for every N. The test builds such streams by giving each subject a
// private event-type alphabet, so no match can span subjects.

#include "runtime/parallel_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "cep/streaming_engine.h"
#include "common/random.h"
#include "runtime/router.h"
#include "stream/event_stream.h"
#include "stream/replay.h"

namespace pldp {
namespace {

constexpr size_t kTypesPerSubject = 3;

Pattern MakePattern(const char* name, std::vector<EventTypeId> elems,
                    DetectionMode mode) {
  return Pattern::Create(name, std::move(elems), mode).value();
}

/// A keyed synthetic stream: `subjects` data subjects interleaved on a
/// global clock; subject k only ever emits types
/// {k*kTypesPerSubject .. k*kTypesPerSubject + kTypesPerSubject - 1}, so
/// pattern matches over those alphabets are subject-local by construction.
EventStream KeyedStream(size_t subjects, size_t num_events, uint64_t seed) {
  Rng rng(seed);
  EventStream stream;
  stream.Reserve(num_events);
  for (size_t i = 0; i < num_events; ++i) {
    const auto subject = static_cast<StreamId>(rng.UniformUint64(subjects));
    const auto type = static_cast<EventTypeId>(
        subject * kTypesPerSubject + rng.UniformUint64(kTypesPerSubject));
    // Global clock advances every few events; subjects interleave within
    // and across ticks.
    stream.AppendUnchecked(
        Event(type, static_cast<Timestamp>(i / 4), subject));
  }
  return stream;
}

/// Registers, per subject, one sequence and one conjunction query over the
/// subject's alphabet on `engine` (works for both engine types).
template <typename EngineT>
void RegisterKeyedQueries(EngineT& engine, size_t subjects,
                          Timestamp window) {
  for (size_t k = 0; k < subjects; ++k) {
    const auto base = static_cast<EventTypeId>(k * kTypesPerSubject);
    ASSERT_TRUE(engine
                    .AddQuery(MakePattern("seq", {base, base + 1, base + 2},
                                          DetectionMode::kSequence),
                              window)
                    .ok());
    ASSERT_TRUE(engine
                    .AddQuery(MakePattern("conj", {base + 2, base},
                                          DetectionMode::kConjunction),
                              window)
                    .ok());
  }
}

TEST(EventRouterTest, DeterministicAndInRange) {
  EventRouter router(4);
  for (uint64_t key = 0; key < 1000; ++key) {
    const size_t shard = router.ShardOfKey(key);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(shard, router.ShardOfKey(key));  // stable
  }
  // All events of one subject route to one shard.
  Event a(0, 10, 7);
  Event b(5, 99, 7);
  EXPECT_EQ(router.ShardOf(a), router.ShardOf(b));
}

TEST(EventRouterTest, SpreadsDenseKeys) {
  EventRouter router(8);
  std::vector<size_t> hits(8, 0);
  for (uint64_t key = 0; key < 8000; ++key) ++hits[router.ShardOfKey(key)];
  for (size_t shard = 0; shard < 8; ++shard) {
    // Perfectly uniform would be 1000 per shard; accept a generous band.
    EXPECT_GT(hits[shard], 700u) << "shard " << shard;
    EXPECT_LT(hits[shard], 1300u) << "shard " << shard;
  }
}

TEST(EventRouterTest, CustomKeyFunction) {
  EventRouter router(4, [](const Event& e) {
    return static_cast<uint64_t>(e.type());  // partition by type instead
  });
  Event a(3, 0, 1);
  Event b(3, 50, 2);  // different subject, same type
  EXPECT_EQ(router.ShardOf(a), router.ShardOf(b));
}

TEST(ParallelEngineTest, LifecycleErrors) {
  ParallelEngineOptions options;
  options.shard_count = 2;
  ParallelStreamingEngine engine(options);
  // OnEvent before Start is refused.
  EXPECT_FALSE(engine.OnEvent(Event(0, 0)).ok());
  ASSERT_TRUE(engine
                  .AddQuery(MakePattern("p", {0, 1}, DetectionMode::kSequence),
                            10)
                  .ok());
  ASSERT_TRUE(engine.Start().ok());
  // AddQuery after Start is refused.
  EXPECT_FALSE(engine
                   .AddQuery(MakePattern("q", {2}, DetectionMode::kSequence),
                             10)
                   .ok());
  EXPECT_TRUE(engine.Stop().ok());
  EXPECT_TRUE(engine.Stop().ok());  // idempotent
}

TEST(ParallelEngineTest, EquivalentToSequentialEngineOnKeyedStreams) {
  constexpr size_t kSubjects = 16;
  constexpr Timestamp kWindow = 6;
  const EventStream stream = KeyedStream(kSubjects, 20000, /*seed=*/7);

  // Sequential reference.
  StreamingCepEngine reference;
  RegisterKeyedQueries(reference, kSubjects, kWindow);
  StreamReplayer replayer;
  replayer.Subscribe(&reference);
  ASSERT_TRUE(replayer.Run(stream).ok());
  ASSERT_GT(reference.total_detections(), 0u)
      << "degenerate test: the reference detected nothing";

  for (size_t shards : {1u, 2u, 3u, 4u, 8u}) {
    ParallelEngineOptions options;
    options.shard_count = shards;
    options.queue_capacity = 64;  // small: exercise backpressure
    ParallelStreamingEngine parallel(options);
    RegisterKeyedQueries(parallel, kSubjects, kWindow);
    ASSERT_TRUE(parallel.Start().ok());

    StreamReplayer parallel_replayer;
    parallel_replayer.Subscribe(&parallel);
    // Run ends with OnEnd → Drain, so results are consistent here.
    ASSERT_TRUE(parallel_replayer.Run(stream).ok());

    EXPECT_EQ(parallel.events_processed(), stream.size());
    EXPECT_EQ(parallel.total_detections(), reference.total_detections())
        << "shards=" << shards;
    for (size_t q = 0; q < parallel.query_count(); ++q) {
      EXPECT_EQ(parallel.DetectionsOf(q).value(),
                reference.DetectionsOf(q).value())
          << "shards=" << shards << " query=" << q;
    }
    ASSERT_TRUE(parallel.Stop().ok());
  }
}

// Regression (ISSUE 2): StreamReplayer::Run ends with OnEnd, which must
// drain the shard queues — otherwise results read right after Run() can
// silently miss events still in flight. With the OnEnd → Drain override
// removed, the worker lags the router and the processed-count check below
// fails with overwhelming probability.
TEST(ParallelEngineTest, OnEndDrainsBeforeResultsAreRead) {
  constexpr size_t kSubjects = 4;
  const EventStream stream = KeyedStream(kSubjects, 50000, /*seed=*/11);

  ParallelEngineOptions options;
  options.shard_count = 2;
  options.queue_capacity = 65536;  // roomy: the router never has to wait
  ParallelStreamingEngine engine(options);
  RegisterKeyedQueries(engine, kSubjects, /*window=*/6);
  ASSERT_TRUE(engine.Start().ok());

  StreamReplayer replayer;
  replayer.Subscribe(&engine);
  ASSERT_TRUE(replayer.Run(stream).ok());

  // No explicit Drain(): Run's OnEnd must have done it.
  size_t processed = 0;
  for (const ShardStats& s : engine.ShardStatsSnapshot()) {
    processed += s.events_processed;
  }
  EXPECT_EQ(processed, stream.size());
  ASSERT_TRUE(engine.Stop().ok());
}

// Regression (ISSUE 2): Drain()/stats() from a thread other than the pusher
// raced on the non-atomic pushed_/backpressure_waits_ counters. They are
// atomics now; this test runs a dedicated producer thread while the main
// thread drains and snapshots stats concurrently, so the TSan CI job pins
// the fix.
TEST(ParallelEngineTest, DrainAndStatsFromSecondThread) {
  constexpr size_t kSubjects = 8;
  const EventStream stream = KeyedStream(kSubjects, 20000, /*seed=*/5);

  ParallelEngineOptions options;
  options.shard_count = 2;
  options.queue_capacity = 64;  // small: force backpressure waits
  ParallelStreamingEngine engine(options);
  RegisterKeyedQueries(engine, kSubjects, /*window=*/6);
  ASSERT_TRUE(engine.Start().ok());

  std::atomic<bool> done{false};
  std::atomic<bool> push_failed{false};
  std::thread producer([&] {
    // Always set `done` on exit, even on a push error — otherwise the main
    // thread's poll loop below would hang instead of failing the test.
    for (const Event& e : stream) {
      if (!engine.OnEvent(e).ok()) {
        push_failed.store(true, std::memory_order_relaxed);
        break;
      }
    }
    done.store(true, std::memory_order_release);
  });

  // Concurrent drains and stat snapshots from this (non-pusher) thread.
  while (!done.load(std::memory_order_acquire)) {
    ASSERT_TRUE(engine.Drain().ok());
    size_t seen = 0;
    for (const ShardStats& s : engine.ShardStatsSnapshot()) {
      seen += s.events_processed + s.backpressure_waits;
    }
    EXPECT_LE(seen, stream.size() * 2);  // monotone, never garbage
  }
  producer.join();
  ASSERT_FALSE(push_failed.load(std::memory_order_relaxed));

  ASSERT_TRUE(engine.Drain().ok());
  size_t processed = 0;
  for (const ShardStats& s : engine.ShardStatsSnapshot()) {
    processed += s.events_processed;
  }
  EXPECT_EQ(processed, stream.size());
  ASSERT_TRUE(engine.Stop().ok());
}

TEST(ParallelEngineTest, ShardStatsAccountForEveryEvent) {
  constexpr size_t kSubjects = 8;
  const EventStream stream = KeyedStream(kSubjects, 5000, /*seed=*/21);

  ParallelEngineOptions options;
  options.shard_count = 4;
  options.queue_capacity = 32;
  ParallelStreamingEngine engine(options);
  RegisterKeyedQueries(engine, kSubjects, /*window=*/6);
  ASSERT_TRUE(engine.Start().ok());
  for (const Event& e : stream) ASSERT_TRUE(engine.OnEvent(e).ok());
  ASSERT_TRUE(engine.Drain().ok());

  size_t total_events = 0;
  size_t total_detections = 0;
  const std::vector<ShardStats> stats = engine.ShardStatsSnapshot();
  ASSERT_EQ(stats.size(), 4u);
  for (const ShardStats& s : stats) {
    total_events += s.events_processed;
    total_detections += s.detections;
  }
  EXPECT_EQ(total_events, stream.size());
  EXPECT_EQ(total_detections, engine.total_detections());
  ASSERT_TRUE(engine.Stop().ok());
}

TEST(ShardTest, PushAfterStopFailsFastInsteadOfSpinning) {
  Shard shard(/*index=*/0, /*queue_capacity=*/16, /*seed=*/1);
  ASSERT_TRUE(shard.AddQuery(MakePattern("p", {0, 1},
                                         DetectionMode::kSequence),
                             /*window=*/10)
                  .ok());
  ASSERT_TRUE(shard.Start().ok());
  ASSERT_TRUE(shard.Push(Event(0, 1)).ok());
  ASSERT_TRUE(shard.Stop().ok());
  // If this spun on the dead worker's full queue the test would time out;
  // the contract is an immediate FailedPrecondition.
  EXPECT_FALSE(shard.Push(Event(1, 2)).ok());
  Event batch[2] = {Event(0, 3), Event(1, 4)};
  EXPECT_FALSE(shard.PushN(batch, 2).ok());
  EXPECT_EQ(shard.stats().events_processed, 1u);
}

TEST(ShardTest, BulkPushDeliversEverythingInOrder) {
  Shard shard(/*index=*/0, /*queue_capacity=*/8, /*seed=*/1);
  ASSERT_TRUE(shard.AddQuery(MakePattern("p", {0, 1},
                                         DetectionMode::kSequence),
                             /*window=*/10)
                  .ok());
  ASSERT_TRUE(shard.Start().ok());
  // Larger than the queue: PushN must chunk through backpressure.
  std::vector<Event> events;
  for (int i = 0; i < 1000; ++i) {
    events.push_back(Event(static_cast<EventTypeId>(i % 2),
                           static_cast<Timestamp>(i)));
  }
  ASSERT_TRUE(shard.PushN(events.data(), events.size()).ok());
  ASSERT_TRUE(shard.Drain().ok());
  EXPECT_EQ(shard.stats().events_processed, 1000u);
  // Alternating 0,1 within window 10 → the sequence completes repeatedly;
  // exact multiplicity is the matcher's business, but it must detect.
  EXPECT_GT(shard.stats().detections, 0u);
  EXPECT_EQ(shard.stats().detections, shard.engine().total_detections());
  ASSERT_TRUE(shard.Stop().ok());
}

TEST(ParallelEngineTest, IngestionMayContinueAfterDrain) {
  ParallelEngineOptions options;
  options.shard_count = 2;
  ParallelStreamingEngine engine(options);
  ASSERT_TRUE(engine
                  .AddQuery(MakePattern("p", {0, 1}, DetectionMode::kSequence),
                            /*window=*/10)
                  .ok());
  ASSERT_TRUE(engine.Start().ok());

  ASSERT_TRUE(engine.OnEvent(Event(0, 1, /*stream=*/3)).ok());
  ASSERT_TRUE(engine.Drain().ok());
  EXPECT_EQ(engine.total_detections(), 0u);

  ASSERT_TRUE(engine.OnEvent(Event(1, 2, /*stream=*/3)).ok());
  ASSERT_TRUE(engine.Drain().ok());
  EXPECT_EQ(engine.total_detections(), 1u);
  ASSERT_TRUE(engine.Stop().ok());
}

TEST(ParallelEngineTest, UnknownQueryLookupsAreHardErrors) {
  ParallelEngineOptions options;
  options.shard_count = 2;
  options.exchange.enabled = true;
  options.exchange.shard_count = 1;
  ParallelStreamingEngine engine(options);
  ASSERT_TRUE(engine
                  .AddQuery(Pattern::Create("q", {0, 1},
                                            DetectionMode::kSequence)
                                .value(),
                            /*window=*/4)
                  .ok());
  ASSERT_TRUE(engine
                  .AddCrossQuery(Pattern::Create("c", {0, 1},
                                                 DetectionMode::kConjunction)
                                     .value(),
                                 /*window=*/4)
                  .ok());
  ASSERT_TRUE(engine.Start().ok());
  ASSERT_TRUE(engine.Drain().ok());
  // A stage-1 index past the registered count errors instead of returning
  // an empty (or, worse, another query's) result — and the message points
  // at the separate cross index space.
  EXPECT_TRUE(engine.DetectionsOf(1).status().IsOutOfRange());
  EXPECT_TRUE(engine.CrossDetectionsOf(1).status().IsOutOfRange());
  EXPECT_TRUE(engine.DetectionsOf(0).ok());
  EXPECT_TRUE(engine.CrossDetectionsOf(0).ok());
  ASSERT_TRUE(engine.Stop().ok());
}

TEST(ParallelEngineTest, DeterministicAcrossRuns) {
  constexpr size_t kSubjects = 8;
  const EventStream stream = KeyedStream(kSubjects, 8000, /*seed=*/3);

  std::vector<std::vector<Timestamp>> first;
  for (int run = 0; run < 2; ++run) {
    ParallelEngineOptions options;
    options.shard_count = 4;
    ParallelStreamingEngine engine(options);
    RegisterKeyedQueries(engine, kSubjects, /*window=*/6);
    ASSERT_TRUE(engine.Start().ok());
    for (const Event& e : stream) ASSERT_TRUE(engine.OnEvent(e).ok());
    ASSERT_TRUE(engine.Stop().ok());

    std::vector<std::vector<Timestamp>> detections;
    for (size_t q = 0; q < engine.query_count(); ++q) {
      detections.push_back(engine.DetectionsOf(q).value());
    }
    if (run == 0) {
      first = std::move(detections);
    } else {
      EXPECT_EQ(detections, first);
    }
  }
}

}  // namespace
}  // namespace pldp
