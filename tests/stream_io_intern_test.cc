// Copyright 2026 The PLDP Authors.
//
// The intern-on-decode path of stream/stream_io.h: with
// StreamCsvOptions::intern_strings, "s:" payloads come back as Value::Sym
// flyweights. Pins (a) semantic equivalence to the legacy owned-string
// decode — every event, attribute, and value compares equal — and (b) the
// budget guard: an exhausted SymbolNames() budget fails the read with
// ResourceExhausted instead of silently allocating.

#include "stream/stream_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "event/symbol_table.h"

namespace pldp {
namespace {

class TempFile {
 public:
  explicit TempFile(const char* name)
      : path_(::testing::TempDir() + "/" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

EventStream AttributedStream() {
  const AttrId zone = AttrNames().Intern("zone");
  const AttrId cell = AttrNames().Intern("cell");
  EventStream stream;
  for (size_t i = 0; i < 64; ++i) {
    Event e(static_cast<EventTypeId>(i % 3), static_cast<Timestamp>(i),
            static_cast<StreamId>(i % 4));
    e.SetAttribute(zone, Value("district-" + std::to_string(i % 5)));
    e.SetAttribute(cell, Value(static_cast<int64_t>(i)));
    if (i % 2 == 0) {
      e.SetAttribute("flag", Value(true));
    }
    stream.AppendUnchecked(std::move(e));
  }
  return stream;
}

TEST(StreamIoInternTest, InternedDecodeIsEquivalentToLegacyDecode) {
  TempFile file("intern_equiv.csv");
  EventTypeRegistry registry = EventTypeRegistry::MakeDense(3, "t");
  const EventStream original = AttributedStream();
  ASSERT_TRUE(WriteStreamCsv(file.path(), original, registry).ok());

  EventTypeRegistry legacy_reg = EventTypeRegistry::MakeDense(3, "t");
  auto legacy = ReadStreamCsv(file.path(), &legacy_reg);
  ASSERT_TRUE(legacy.ok());

  StreamCsvOptions options;
  options.intern_strings = true;
  EventTypeRegistry interned_reg = EventTypeRegistry::MakeDense(3, "t");
  auto interned = ReadStreamCsv(file.path(), &interned_reg, options);
  ASSERT_TRUE(interned.ok());

  ASSERT_EQ(legacy.value().size(), interned.value().size());
  ASSERT_EQ(interned.value().size(), original.size());
  for (size_t i = 0; i < legacy.value().size(); ++i) {
    const Event& a = legacy.value()[i];
    const Event& b = interned.value()[i];
    EXPECT_EQ(a.type(), b.type());
    EXPECT_EQ(a.timestamp(), b.timestamp());
    EXPECT_EQ(a.stream(), b.stream());
    ASSERT_EQ(a.attribute_count(), b.attribute_count());
    for (size_t k = 0; k < a.attribute_count(); ++k) {
      EXPECT_EQ(a.attribute_name(k), b.attribute_name(k));
      // Cross-kind text equality: Sym("x") == String("x").
      EXPECT_EQ(a.attribute(k).value, b.attribute(k).value)
          << "event " << i << " attribute " << k;
    }
  }

  // The interned read really produced flyweights for text payloads.
  const Event& probe = interned.value()[0];
  const Value* zone = probe.FindAttribute("zone");
  ASSERT_NE(zone, nullptr);
  EXPECT_TRUE(zone->is_symbol());
  const Value* legacy_zone = legacy.value()[0].FindAttribute("zone");
  ASSERT_NE(legacy_zone, nullptr);
  EXPECT_TRUE(legacy_zone->is_string());
}

TEST(StreamIoInternTest, DecodeValueTaggedHonorsInternFlag) {
  auto legacy = DecodeValueTagged("s:hello-world-payload");
  ASSERT_TRUE(legacy.ok());
  EXPECT_TRUE(legacy.value().is_string());

  auto interned = DecodeValueTagged("s:hello-world-payload", true);
  ASSERT_TRUE(interned.ok());
  EXPECT_TRUE(interned.value().is_symbol());
  EXPECT_EQ(legacy.value(), interned.value());

  // Non-string kinds are untouched by the flag.
  auto number = DecodeValueTagged("i:42", true);
  ASSERT_TRUE(number.ok());
  EXPECT_TRUE(number.value().is_int());
}

TEST(StreamIoInternTest, ExhaustedSymbolBudgetFailsTheReadLoudly) {
  TempFile file("intern_budget.csv");
  EventTypeRegistry registry = EventTypeRegistry::MakeDense(1, "t");
  // More distinct payloads than the budget we will set leaves room for.
  EventStream stream;
  for (size_t i = 0; i < 32; ++i) {
    Event e(0, static_cast<Timestamp>(i), 0);
    e.SetAttribute("payload",
                   Value("unique-payload-" + std::to_string(i) +
                         "-of-unbounded-cardinality"));
    stream.AppendUnchecked(std::move(e));
  }
  ASSERT_TRUE(WriteStreamCsv(file.path(), stream, registry).ok());

  // Budget = whatever is interned now + 8: the 32 distinct payloads above
  // must exhaust it mid-read.
  InternTable& symbols = SymbolNames();
  symbols.SetBudget(symbols.size() + 8);
  StreamCsvOptions options;
  options.intern_strings = true;
  EventTypeRegistry reg = EventTypeRegistry::MakeDense(1, "t");
  auto result = ReadStreamCsv(file.path(), &reg, options);
  symbols.SetBudget(0);  // restore the default before asserting
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());

  // Without interning the same file reads fine regardless of any budget.
  auto legacy = ReadStreamCsv(file.path(), &reg);
  EXPECT_TRUE(legacy.ok());
}

}  // namespace
}  // namespace pldp
