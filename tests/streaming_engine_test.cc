// Copyright 2026 The PLDP Authors.
//
// Tests for the online CEP engine, including the equivalence property
// against the window-batch path on tumbling windows.

#include "cep/streaming_engine.h"

#include <gtest/gtest.h>

#include "cep/engine.h"
#include "common/random.h"
#include "stream/window.h"

namespace pldp {
namespace {

Pattern Seq(std::vector<EventTypeId> elems) {
  return Pattern::Create("seq", std::move(elems), DetectionMode::kSequence)
      .value();
}

TEST(StreamingEngineTest, AddQueryValidates) {
  StreamingCepEngine engine;
  EXPECT_EQ(engine.AddQuery(Seq({0, 1}), 10).value(), 0u);
  EXPECT_EQ(engine.AddQuery(Seq({2}), 10).value(), 1u);
  EXPECT_EQ(engine.query_count(), 2u);
}

TEST(StreamingEngineTest, DetectsAndCounts) {
  StreamingCepEngine engine;
  size_t q = engine.AddQuery(Seq({0, 1}), 10).value();
  ASSERT_TRUE(engine.OnEvent(Event(0, 1)).ok());
  ASSERT_TRUE(engine.OnEvent(Event(1, 3)).ok());
  ASSERT_TRUE(engine.OnEvent(Event(2, 4)).ok());
  EXPECT_EQ(engine.events_processed(), 3u);
  EXPECT_EQ(engine.total_detections(), 1u);
  auto det = engine.DetectionsOf(q).value();
  ASSERT_EQ(det.size(), 1u);
  EXPECT_EQ(det[0], 3);
}

TEST(StreamingEngineTest, DetectionsOfValidatesIndex) {
  StreamingCepEngine engine;
  EXPECT_TRUE(engine.DetectionsOf(0).status().IsOutOfRange());
}

TEST(StreamingEngineTest, CallbackFiresPerDetection) {
  StreamingCepEngine engine;
  engine.AddQuery(Seq({0}), 0).value();
  engine.AddQuery(Seq({0, 0}), 0).value();
  std::vector<StreamingDetection> seen;
  engine.SetCallback(
      [&seen](const StreamingDetection& d) { seen.push_back(d); });
  engine.OnEvent(Event(0, 1)).ok();  // query 0 fires
  engine.OnEvent(Event(0, 2)).ok();  // both fire
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].query_index, 0u);
  EXPECT_EQ(seen[1].query_index, 0u);
  EXPECT_EQ(seen[2].query_index, 1u);
  EXPECT_EQ(seen[2].at, 2);
}

TEST(StreamingEngineTest, ResetStateKeepsQueries) {
  StreamingCepEngine engine;
  size_t q = engine.AddQuery(Seq({0}), 0).value();
  engine.OnEvent(Event(0, 1)).ok();
  EXPECT_EQ(engine.total_detections(), 1u);
  engine.ResetState();
  EXPECT_EQ(engine.total_detections(), 0u);
  EXPECT_EQ(engine.events_processed(), 0u);
  EXPECT_EQ(engine.query_count(), 1u);
  EXPECT_TRUE(engine.DetectionsOf(q).value().empty());
}

TEST(StreamingEngineTest, WorksAsReplaySubscriber) {
  StreamingCepEngine engine;
  size_t q = engine.AddQuery(Seq({0, 1}), 100).value();
  EventStream s;
  s.AppendUnchecked(Event(0, 1));
  s.AppendUnchecked(Event(1, 5));
  s.AppendUnchecked(Event(0, 9));
  s.AppendUnchecked(Event(1, 12));
  StreamReplayer replayer;
  replayer.Subscribe(&engine);
  ASSERT_TRUE(replayer.Run(s).ok());
  EXPECT_EQ(engine.events_processed(), 4u);
  EXPECT_EQ(engine.DetectionsOf(q).value().size(), 2u);
}

/// Equivalence property: on streams whose events fall in disjoint tumbling
/// windows, the streaming engine with a window constraint equal to the
/// tumbling size detects a pattern iff some batch window contains it —
/// provided matches cannot straddle window boundaries. We enforce that by
/// giving each window its own disjoint timestamp range and a constraint
/// strictly smaller than the gap between windows.
class StreamVsBatchSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamVsBatchSweep, TumblingWindowDetectionAgrees) {
  Rng rng(GetParam());
  const size_t kTypes = 3;
  Pattern p = Seq({0, 1});

  // Build windows of 5 events at timestamps [100k, 100k+5).
  std::vector<Window> windows;
  EventStream stream;
  const size_t num_windows = 10;
  for (size_t wi = 0; wi < num_windows; ++wi) {
    Window w;
    w.start = static_cast<Timestamp>(wi * 100);
    w.end = w.start + 100;
    for (size_t j = 0; j < 5; ++j) {
      Event e(static_cast<EventTypeId>(rng.UniformUint64(kTypes)),
              w.start + static_cast<Timestamp>(j));
      w.events.push_back(e);
      stream.AppendUnchecked(e);
    }
    windows.push_back(std::move(w));
  }

  size_t batch_hits = 0;
  for (const Window& w : windows) {
    if (PatternOccursInWindow(w, p).value()) ++batch_hits;
  }

  StreamingCepEngine engine;
  size_t q = engine.AddQuery(p, /*window=*/10).value();
  for (const Event& e : stream) ASSERT_TRUE(engine.OnEvent(e).ok());

  // The streaming matcher reports every completion; count distinct batch
  // windows with at least one detection.
  auto detections = engine.DetectionsOf(q).value();
  std::set<Timestamp> hit_windows;
  for (Timestamp t : detections) hit_windows.insert(t / 100);
  EXPECT_EQ(hit_windows.size(), batch_hits) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomStreams, StreamVsBatchSweep,
                         ::testing::Range<uint64_t>(0, 30));

}  // namespace
}  // namespace pldp
