// Copyright 2026 The PLDP Authors.
//
// Tests for the Algorithm-2 synthetic generator: structure, determinism,
// the paper's default parameters, and statistical sanity of the occurrence
// model.

#include "datasets/synthetic.h"

#include <gtest/gtest.h>

#include <set>

namespace pldp {
namespace {

TEST(SyntheticTest, PaperDefaultsProduceExpectedShape) {
  SyntheticOptions opt;  // 20 types, 1000 windows, 20 patterns, 3/5 roles
  auto ds = GenerateSynthetic(opt, 1).value();
  EXPECT_EQ(ds.dataset.event_types.size(), 20u);
  EXPECT_EQ(ds.dataset.windows.size(), 1000u);
  EXPECT_EQ(ds.dataset.patterns.size(), 20u);
  EXPECT_EQ(ds.dataset.private_patterns.size(), 3u);
  EXPECT_EQ(ds.dataset.target_patterns.size(), 5u);
  EXPECT_EQ(ds.occurrence_probabilities.size(), 20u);
}

TEST(SyntheticTest, PatternsHaveConfiguredLengthAndConjunctionMode) {
  auto ds = GenerateSynthetic(SyntheticOptions{}, 2).value();
  for (PatternId p = 0; p < ds.dataset.patterns.size(); ++p) {
    const Pattern& pat = ds.dataset.patterns.Get(p);
    EXPECT_EQ(pat.length(), 3u);
    EXPECT_EQ(pat.mode(), DetectionMode::kConjunction);
    // Elements are distinct (drawn without replacement).
    std::set<EventTypeId> uniq(pat.elements().begin(), pat.elements().end());
    EXPECT_EQ(uniq.size(), 3u);
  }
}

TEST(SyntheticTest, DisjointRolesByDefault) {
  auto ds = GenerateSynthetic(SyntheticOptions{}, 3).value();
  std::set<PatternId> priv(ds.dataset.private_patterns.begin(),
                           ds.dataset.private_patterns.end());
  for (PatternId t : ds.dataset.target_patterns) {
    EXPECT_EQ(priv.count(t), 0u);
  }
}

TEST(SyntheticTest, SameSeedReproducesExactly) {
  auto a = GenerateSynthetic(SyntheticOptions{}, 42).value();
  auto b = GenerateSynthetic(SyntheticOptions{}, 42).value();
  ASSERT_EQ(a.dataset.windows.size(), b.dataset.windows.size());
  for (size_t i = 0; i < a.dataset.windows.size(); ++i) {
    ASSERT_EQ(a.dataset.windows[i].events.size(),
              b.dataset.windows[i].events.size());
    for (size_t j = 0; j < a.dataset.windows[i].events.size(); ++j) {
      ASSERT_EQ(a.dataset.windows[i].events[j],
                b.dataset.windows[i].events[j]);
    }
  }
  EXPECT_EQ(a.occurrence_probabilities, b.occurrence_probabilities);
  EXPECT_EQ(a.dataset.private_patterns, b.dataset.private_patterns);
  EXPECT_EQ(a.dataset.target_patterns, b.dataset.target_patterns);
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  auto a = GenerateSynthetic(SyntheticOptions{}, 1).value();
  auto b = GenerateSynthetic(SyntheticOptions{}, 2).value();
  EXPECT_NE(a.occurrence_probabilities, b.occurrence_probabilities);
}

TEST(SyntheticTest, EmpiricalOccurrenceMatchesProbabilities) {
  SyntheticOptions opt;
  opt.num_windows = 4000;
  auto ds = GenerateSynthetic(opt, 5).value();
  for (size_t t = 0; t < opt.num_event_types; ++t) {
    size_t hits = 0;
    for (const Window& w : ds.dataset.windows) {
      if (w.ContainsType(static_cast<EventTypeId>(t))) ++hits;
    }
    double rate = static_cast<double>(hits) /
                  static_cast<double>(ds.dataset.windows.size());
    EXPECT_NEAR(rate, ds.occurrence_probabilities[t], 0.03) << "type " << t;
  }
}

TEST(SyntheticTest, EachTypeOccursAtMostOncePerWindow) {
  auto ds = GenerateSynthetic(SyntheticOptions{}, 6).value();
  for (const Window& w : ds.dataset.windows) {
    std::set<EventTypeId> seen;
    for (const Event& e : w.events) {
      EXPECT_TRUE(seen.insert(e.type()).second);
    }
  }
}

TEST(SyntheticTest, WindowTimestampsAreSequential) {
  auto ds = GenerateSynthetic(SyntheticOptions{}, 7).value();
  for (size_t i = 0; i < ds.dataset.windows.size(); ++i) {
    EXPECT_EQ(ds.dataset.windows[i].start, static_cast<Timestamp>(i));
    EXPECT_EQ(ds.dataset.windows[i].end, static_cast<Timestamp>(i + 1));
  }
}

TEST(SyntheticTest, OccurrenceRangeClampingApplies) {
  SyntheticOptions opt;
  opt.min_occurrence = 0.3;
  opt.max_occurrence = 0.7;
  auto ds = GenerateSynthetic(opt, 8).value();
  for (double p : ds.occurrence_probabilities) {
    EXPECT_GE(p, 0.3);
    EXPECT_LE(p, 0.7);
  }
}

TEST(SyntheticTest, ValidatesOptions) {
  SyntheticOptions zero_types;
  zero_types.num_event_types = 0;
  EXPECT_FALSE(GenerateSynthetic(zero_types, 1).ok());

  SyntheticOptions long_pattern;
  long_pattern.pattern_length = 25;
  EXPECT_FALSE(GenerateSynthetic(long_pattern, 1).ok());

  SyntheticOptions too_many_roles;
  too_many_roles.num_private = 18;
  too_many_roles.num_target = 5;  // 18+5 > 20 disjoint
  EXPECT_FALSE(GenerateSynthetic(too_many_roles, 1).ok());

  SyntheticOptions bad_range;
  bad_range.min_occurrence = 0.8;
  bad_range.max_occurrence = 0.2;
  EXPECT_FALSE(GenerateSynthetic(bad_range, 1).ok());
}

TEST(SyntheticTest, OverlappingRolesAllowedWhenConfigured) {
  SyntheticOptions opt;
  opt.disjoint_roles = false;
  opt.num_private = 15;
  opt.num_target = 15;
  // 15 + 15 > 20 is fine without disjoint roles.
  auto ds = GenerateSynthetic(opt, 9).value();
  EXPECT_EQ(ds.dataset.private_patterns.size(), 15u);
  EXPECT_EQ(ds.dataset.target_patterns.size(), 15u);
}

TEST(SyntheticTest, SplitHistoryCutsWindows) {
  auto ds = GenerateSynthetic(SyntheticOptions{}, 10).value();
  auto [history, eval] = ds.dataset.SplitHistory(0.3).value();
  EXPECT_EQ(history.size(), 300u);
  EXPECT_EQ(eval.size(), 700u);
  EXPECT_FALSE(ds.dataset.SplitHistory(0.0).ok());
  EXPECT_FALSE(ds.dataset.SplitHistory(1.0).ok());
}

/// Seed sweep: the generator must produce structurally valid datasets for
/// any seed.
class SyntheticSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SyntheticSeedSweep, StructurallyValid) {
  SyntheticOptions opt;
  opt.num_windows = 100;
  auto ds = GenerateSynthetic(opt, GetParam()).value();
  EXPECT_EQ(ds.dataset.windows.size(), 100u);
  for (PatternId p : ds.dataset.private_patterns) {
    EXPECT_TRUE(ds.dataset.patterns.Contains(p));
  }
  for (PatternId p : ds.dataset.target_patterns) {
    EXPECT_TRUE(ds.dataset.patterns.Contains(p));
  }
  for (double prob : ds.occurrence_probabilities) {
    EXPECT_GE(prob, 0.0);
    EXPECT_LE(prob, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticSeedSweep,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace pldp
