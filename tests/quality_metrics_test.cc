// Copyright 2026 The PLDP Authors.
//
// Tests for the paper's quality metrics (eqs. 1-4).

#include "quality/metrics.h"

#include <gtest/gtest.h>

namespace pldp {
namespace {

TEST(ConfusionMatrixTest, AddRoutesToCells) {
  ConfusionMatrix cm;
  cm.Add(true, true);    // TP
  cm.Add(true, false);   // FN
  cm.Add(false, true);   // FP
  cm.Add(false, false);  // TN
  EXPECT_EQ(cm.tp(), 1u);
  EXPECT_EQ(cm.fn(), 1u);
  EXPECT_EQ(cm.fp(), 1u);
  EXPECT_EQ(cm.tn(), 1u);
  EXPECT_EQ(cm.total(), 4u);
}

TEST(ConfusionMatrixTest, PrecisionRecallKnownValues) {
  ConfusionMatrix cm;
  for (int i = 0; i < 6; ++i) cm.Add(true, true);    // TP=6
  for (int i = 0; i < 2; ++i) cm.Add(false, true);   // FP=2
  for (int i = 0; i < 4; ++i) cm.Add(true, false);   // FN=4
  EXPECT_DOUBLE_EQ(cm.Precision(), 0.75);  // 6/8
  EXPECT_DOUBLE_EQ(cm.Recall(), 0.6);      // 6/10
}

TEST(ConfusionMatrixTest, DegenerateCases) {
  // No predictions, nothing to find: perfect by convention.
  ConfusionMatrix silent_empty;
  silent_empty.Add(false, false);
  EXPECT_DOUBLE_EQ(silent_empty.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(silent_empty.Recall(), 1.0);

  // No predictions, positives existed: precision 0 convention, recall 0.
  ConfusionMatrix silent_missing;
  silent_missing.Add(true, false);
  EXPECT_DOUBLE_EQ(silent_missing.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(silent_missing.Recall(), 0.0);

  // Fully empty matrix.
  ConfusionMatrix empty;
  EXPECT_DOUBLE_EQ(empty.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(empty.Recall(), 1.0);
}

TEST(ConfusionMatrixTest, F1HarmonicMean) {
  ConfusionMatrix cm;
  for (int i = 0; i < 6; ++i) cm.Add(true, true);
  for (int i = 0; i < 2; ++i) cm.Add(false, true);
  for (int i = 0; i < 4; ++i) cm.Add(true, false);
  double p = 0.75, r = 0.6;
  EXPECT_DOUBLE_EQ(cm.F1(), 2 * p * r / (p + r));
}

TEST(ConfusionMatrixTest, QualityInterpolatesPrecisionRecall) {
  ConfusionMatrix cm;
  for (int i = 0; i < 6; ++i) cm.Add(true, true);
  for (int i = 0; i < 2; ++i) cm.Add(false, true);
  for (int i = 0; i < 4; ++i) cm.Add(true, false);
  EXPECT_DOUBLE_EQ(cm.Quality(1.0).value(), cm.Precision());
  EXPECT_DOUBLE_EQ(cm.Quality(0.0).value(), cm.Recall());
  EXPECT_DOUBLE_EQ(cm.Quality(0.5).value(),
                   0.5 * cm.Precision() + 0.5 * cm.Recall());
}

TEST(ConfusionMatrixTest, QualityValidatesAlpha) {
  ConfusionMatrix cm;
  EXPECT_FALSE(cm.Quality(-0.1).ok());
  EXPECT_FALSE(cm.Quality(1.1).ok());
}

TEST(ConfusionMatrixTest, MergeAccumulates) {
  ConfusionMatrix a;
  a.Add(true, true);
  ConfusionMatrix b;
  b.Add(false, true);
  b.Add(true, false);
  a.Merge(b);
  EXPECT_EQ(a.tp(), 1u);
  EXPECT_EQ(a.fp(), 1u);
  EXPECT_EQ(a.fn(), 1u);
  EXPECT_EQ(a.total(), 3u);
}

TEST(ConfusionMatrixTest, ToStringContainsCounts) {
  ConfusionMatrix cm;
  cm.Add(true, true);
  std::string s = cm.ToString();
  EXPECT_NE(s.find("tp=1"), std::string::npos);
}

TEST(CompareSeriesTest, BuildsConfusionFromAnswerSeries) {
  AnswerSeries truth({true, true, false, false});
  AnswerSeries observed({true, false, true, false});
  ConfusionMatrix cm = CompareSeries(truth, observed).value();
  EXPECT_EQ(cm.tp(), 1u);
  EXPECT_EQ(cm.fn(), 1u);
  EXPECT_EQ(cm.fp(), 1u);
  EXPECT_EQ(cm.tn(), 1u);
}

TEST(CompareSeriesTest, RejectsLengthMismatch) {
  AnswerSeries a({true});
  AnswerSeries b({true, false});
  EXPECT_FALSE(CompareSeries(a, b).ok());
}

TEST(MeanRelativeErrorTest, PaperFormula) {
  EXPECT_DOUBLE_EQ(MeanRelativeError(1.0, 0.8).value(), 0.2);
  EXPECT_DOUBLE_EQ(MeanRelativeError(0.8, 0.8).value(), 0.0);
  // Negative MRE (mechanism outperformed ground truth by chance) kept.
  EXPECT_DOUBLE_EQ(MeanRelativeError(0.5, 0.6).value(), -0.2);
}

TEST(MeanRelativeErrorTest, ValidatesInputs) {
  EXPECT_FALSE(MeanRelativeError(0.0, 0.5).ok());
  EXPECT_FALSE(MeanRelativeError(-1.0, 0.5).ok());
  EXPECT_FALSE(
      MeanRelativeError(1.0, std::numeric_limits<double>::quiet_NaN()).ok());
}

/// Q(α) is monotone in α when precision > recall, and constant when equal.
class QualityAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(QualityAlphaSweep, QualityIsConvexCombination) {
  double alpha = GetParam();
  ConfusionMatrix cm;
  for (int i = 0; i < 9; ++i) cm.Add(true, true);
  cm.Add(false, true);              // precision 0.9
  for (int i = 0; i < 6; ++i) cm.Add(true, false);  // recall 0.6
  double q = cm.Quality(alpha).value();
  EXPECT_GE(q, 0.6 - 1e-12);
  EXPECT_LE(q, 0.9 + 1e-12);
  EXPECT_NEAR(q, alpha * 0.9 + (1 - alpha) * 0.6, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Alphas, QualityAlphaSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace pldp
