// Copyright 2026 The PLDP Authors.
//
// Tests for the exchange credit protocol (runtime/exchange.h) and the
// hard-bounded stage-2 reorder buffers (runtime/merge_shard.h) —
// docs/ARCHITECTURE.md, "Credit-based flow control".
//
// What is pinned here:
//   - a lane's credit budget is exactly the consumer's reorder capacity:
//     emitting the full budget never waits, one more does;
//   - a stalled or absent consumer BACKPRESSURES its producers — the
//     blocked producer spins allocation-free (alloc-hook-verified) with
//     at most budget-many events in flight, instead of buffering without
//     bound;
//   - reorder saturation drives the /healthz degraded rule;
//   - under permanent credit starvation (tiny budgets) the two-stage
//     pipeline still drains, finishes, and produces detections positionally
//     identical to a sequential engine — flow control changes latency,
//     never results.

#define PLDP_ENABLE_ALLOC_HOOK
#include "bench/bench_util.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cep/correlation_key.h"
#include "cep/streaming_engine.h"
#include "common/random.h"
#include "obs/health.h"
#include "runtime/exchange.h"
#include "runtime/merge_shard.h"
#include "runtime/parallel_engine.h"
#include "stream/event_stream.h"
#include "stream/replay.h"

namespace pldp {
namespace {

constexpr size_t kTypesPerGroup = 3;
constexpr Timestamp kWindow = 6;

Pattern MakePattern(const char* name, std::vector<EventTypeId> elems,
                    DetectionMode mode) {
  return Pattern::Create(name, std::move(elems), mode).value();
}

bool PollUntil(const std::function<bool()>& done,
               std::chrono::seconds deadline = std::chrono::seconds(30)) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return done();
}

// --- Raw fabric: the credit budget is exact --------------------------------

TEST(FlowControlTest, CreditBudgetExactlyCoversTheReorderCapacity) {
  ExchangeFabric fabric(/*producers=*/1, /*consumers=*/1,
                        /*lane_capacity=*/16, /*reorder_capacity=*/4);
  MergeShard merge(0, fabric.Column(0));
  EXPECT_EQ(merge.reorder_capacity(), 4u);
  ExchangeEmitter emitter(fabric.Row(0), /*key_fn=*/nullptr, &fabric);

  // Emitting exactly the budget consumes every credit without waiting —
  // the reorder buffer can hold all of it.
  for (uint64_t seq = 0; seq < 4; ++seq) {
    emitter.BeginTrigger(seq);
    ASSERT_TRUE(emitter.Emit(Event(0, static_cast<Timestamp>(seq), 1)).ok());
  }
  EXPECT_EQ(fabric.lane(0, 0).credits.load(), 0u);
  EXPECT_EQ(emitter.stats().credit_exhausted_waits, 0u);
  EXPECT_EQ(emitter.stats().forwarded, 4u);

  // The consumer releases everything and hands every credit back.
  ASSERT_TRUE(merge.Start().ok());
  ASSERT_TRUE(emitter.Broadcast(kExchangeSeqEnd).ok());
  ASSERT_TRUE(merge.WaitSafe(kExchangeSeqEnd).ok());
  EXPECT_EQ(merge.stats().events_processed, 4u);
  EXPECT_EQ(fabric.lane(0, 0).credits.load(),
            fabric.lane(0, 0).initial_credits);
  ASSERT_TRUE(merge.Stop().ok());
}

TEST(FlowControlTest, AbsentConsumerBackpressuresTheProducerBoundedly) {
  // No merge shard at all: nobody ever returns a credit. The producer must
  // stop after the budget — blocked, bounded, and allocation-free — and
  // fail fast once the fabric aborts.
  ExchangeFabric fabric(/*producers=*/1, /*consumers=*/1,
                        /*lane_capacity=*/64, /*reorder_capacity=*/4);
  ExchangeEmitter emitter(fabric.Row(0), /*key_fn=*/nullptr, &fabric);

  std::atomic<size_t> emitted{0};
  Status blocked_status = Status::OK();
  std::thread producer([&] {
    for (uint64_t seq = 0; seq < 10000; ++seq) {
      emitter.BeginTrigger(seq);
      Status s = emitter.Emit(Event(0, static_cast<Timestamp>(seq), 1));
      if (!s.ok()) {
        blocked_status = s;
        return;
      }
      emitted.fetch_add(1, std::memory_order_relaxed);
    }
  });

  ASSERT_TRUE(PollUntil(
      [&] { return emitter.stats().credit_exhausted_waits >= 1; }))
      << "producer never hit the credit wall";
  EXPECT_EQ(emitted.load(), 4u);
  // In flight: the 4 budgeted events plus the frontier watermark the
  // blocked producer broadcast before spinning (credit-free by design).
  EXPECT_LE(fabric.lane(0, 0).queue.ApproxSize(), 5u);
  EXPECT_EQ(fabric.lane(0, 0).credits.load(), 0u);

  if (bench::kAllocHookActive) {
    // A credit-blocked producer spins with backoff; it must not allocate.
    bench::ResetAllocCounters();
    bench::SetAllocCounting(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    bench::SetAllocCounting(false);
    EXPECT_EQ(bench::GetAllocCounters().allocs, 0u)
        << "blocked producer allocated while waiting for credits";
  }

  fabric.Abort();
  producer.join();
  EXPECT_FALSE(blocked_status.ok());
  EXPECT_EQ(emitter.stats().forwarded, 4u);
  EXPECT_EQ(emitted.load(), 4u);
}

TEST(FlowControlTest, SilentLaneHoldsReleasesAndSaturationReadsDegraded) {
  // Two producers, one consumer. A fills its credit budget; B stays
  // silent, so nothing is provably safe to release: the reorder buffer
  // holds A's events, A's credits stay consumed, and the health rule sees
  // the saturation.
  ExchangeFabric fabric(/*producers=*/2, /*consumers=*/1,
                        /*lane_capacity=*/16, /*reorder_capacity=*/4);
  MergeShard merge(0, fabric.Column(0));
  EXPECT_EQ(merge.reorder_capacity(), 8u);  // 2 lanes x 4 credits
  ExchangeEmitter emitter_a(fabric.Row(0), nullptr, &fabric);
  ExchangeEmitter emitter_b(fabric.Row(1), nullptr, &fabric);

  for (uint64_t seq = 0; seq < 4; ++seq) {
    emitter_a.BeginTrigger(seq);
    ASSERT_TRUE(
        emitter_a.Emit(Event(0, static_cast<Timestamp>(seq), 1)).ok());
  }
  ASSERT_TRUE(merge.Start().ok());

  // The merge pulls everything into the reorder buffer but releases
  // nothing — lane B's bound proves nothing yet.
  ASSERT_TRUE(PollUntil([&] { return merge.reorder_buffered() == 4; }));
  EXPECT_EQ(merge.stats().events_processed, 0u);
  EXPECT_EQ(fabric.lane(0, 0).credits.load(), 0u)
      << "credits must return on release, not on receipt";

  // The saturation feeds the /healthz degraded rule (engines fill the row
  // from exactly these two accessors).
  obs::PipelineHealth health;
  obs::PipelineHealth::GroupRow row;
  row.lane = "plain";
  row.group = "default";
  row.merge_shard = 0;
  row.reorder_depth = merge.reorder_buffered();
  row.reorder_capacity = merge.reorder_capacity();
  health.groups.push_back(row);
  obs::HealthThresholds thresholds;
  thresholds.degraded_saturation = 0.5;  // 4/8 trips it
  obs::FinalizeHealth(&health, thresholds);
  EXPECT_EQ(health.state, obs::PipelineHealth::State::kDegraded);
  ASSERT_EQ(health.issues.size(), 1u);
  EXPECT_NE(health.issues[0].find("reorder"), std::string::npos);
  EXPECT_NE(obs::RenderHealthJson(health).find("\"reorder_capacity\":8"),
            std::string::npos);

  // B's terminal watermark unblocks every release; the credits come home.
  ASSERT_TRUE(emitter_b.Broadcast(kExchangeSeqEnd).ok());
  ASSERT_TRUE(emitter_a.Broadcast(kExchangeSeqEnd).ok());
  ASSERT_TRUE(merge.WaitSafe(kExchangeSeqEnd).ok());
  EXPECT_EQ(merge.stats().events_processed, 4u);
  EXPECT_EQ(merge.reorder_buffered(), 0u);
  EXPECT_EQ(fabric.lane(0, 0).credits.load(), 4u);
  ASSERT_TRUE(merge.Stop().ok());
}

TEST(FlowControlTest, DegradedRuleUsesTheDefaultSaturationThreshold) {
  obs::PipelineHealth health;
  obs::PipelineHealth::GroupRow row;
  row.lane = "plain";
  row.group = "default";
  row.reorder_depth = 9;
  row.reorder_capacity = 10;  // 0.9 == the default threshold
  health.groups.push_back(row);
  obs::FinalizeHealth(&health, obs::HealthThresholds{});
  EXPECT_EQ(health.state, obs::PipelineHealth::State::kDegraded);

  // Below the threshold, and on pre-flow-control rows (capacity 0), the
  // rule stays quiet.
  obs::PipelineHealth quiet;
  row.reorder_depth = 5;
  quiet.groups.push_back(row);
  row.reorder_depth = 1000;
  row.reorder_capacity = 0;
  quiet.groups.push_back(row);
  obs::FinalizeHealth(&quiet, obs::HealthThresholds{});
  EXPECT_EQ(quiet.state, obs::PipelineHealth::State::kHealthy);
  EXPECT_TRUE(quiet.issues.empty());
}

// --- Engine-level: starvation changes latency, never results ---------------

/// Cross-subject stream over per-group alphabets (see
/// runtime_exchange_test.cc): matches span subjects but stay key-local.
EventStream CrossSubjectStream(size_t groups, size_t subjects,
                               size_t num_events, uint64_t seed) {
  Rng rng(seed);
  EventStream stream;
  stream.Reserve(num_events);
  for (size_t i = 0; i < num_events; ++i) {
    const auto group = rng.UniformUint64(groups);
    const auto type = static_cast<EventTypeId>(
        group * kTypesPerGroup + rng.UniformUint64(kTypesPerGroup));
    const auto subject = static_cast<StreamId>(rng.UniformUint64(subjects));
    Event event(type, static_cast<Timestamp>(i / 4), subject);
    event.SetAttribute("grp", Value(static_cast<int64_t>(group)));
    stream.AppendUnchecked(std::move(event));
  }
  return stream;
}

template <typename AddFn>
void RegisterGroupQueries(AddFn add, size_t groups) {
  for (size_t g = 0; g < groups; ++g) {
    const auto base = static_cast<EventTypeId>(g * kTypesPerGroup);
    ASSERT_TRUE(add(MakePattern("seq", {base, base + 1, base + 2},
                                DetectionMode::kSequence),
                    kWindow)
                    .ok());
    ASSERT_TRUE(add(MakePattern("conj", {base + 2, base},
                                DetectionMode::kConjunction),
                    kWindow)
                    .ok());
  }
}

TEST(FlowControlTest, DrainUnderCreditStarvationMatchesSequentialEngine) {
  constexpr size_t kGroups = 4;
  const EventStream stream =
      CrossSubjectStream(kGroups, /*subjects=*/32, 20000, /*seed=*/7);
  StreamingCepEngine reference;
  RegisterGroupQueries(
      [&reference](Pattern p, Timestamp w) {
        return reference.AddQuery(std::move(p), w);
      },
      kGroups);
  for (const Event& e : stream) ASSERT_TRUE(reference.OnEvent(e).ok());
  ASSERT_GT(reference.total_detections(), 0u);

  // A plain array, not a vector: the alloc-hook TU replaces operator
  // new/delete with malloc/free wrappers, and GCC's inliner would flag the
  // (correctly paired) replacement as a mismatched new/delete.
  constexpr std::pair<size_t, size_t> kTopologies[] = {{1, 1}, {2, 2}, {4, 4}};
  for (const auto& [stage1, stage2] : kTopologies) {
    ParallelEngineOptions options;
    options.shard_count = stage1;
    options.queue_capacity = 128;
    options.exchange.enabled = true;
    options.exchange.shard_count = stage2;
    options.exchange.lane_capacity = 64;
    // A starvation-sized budget: every producer exhausts its credits
    // constantly, so the whole run exercises the slow path + liveness.
    options.exchange.reorder_capacity = 4;
    options.exchange.key = CorrelationKeySpec::ByAttribute("grp");
    ParallelStreamingEngine engine(options);
    RegisterGroupQueries(
        [&engine](Pattern p, Timestamp w) {
          return engine.AddCrossQuery(std::move(p), w);
        },
        kGroups);
    ASSERT_TRUE(engine.Start().ok());

    StreamReplayer replayer;
    replayer.Subscribe(&engine);
    ASSERT_TRUE(replayer.Run(stream, stage1 % 2 == 0
                                         ? ReplayMode::kBatchPerTick
                                         : ReplayMode::kPerEvent)
                    .ok());

    for (size_t q = 0; q < engine.cross_query_count(); ++q) {
      EXPECT_EQ(engine.CrossDetectionsOf(q).value(),
                reference.DetectionsOf(q).value())
          << "stage1=" << stage1 << " stage2=" << stage2 << " query=" << q;
    }
    ASSERT_TRUE(engine.Stop().ok());
  }
}

TEST(FlowControlTest, FinishUnderCreditStarvationSealsThePipeline) {
  // The harshest finalize topology: four producers funneling into ONE
  // merge shard on two credits per lane. Finish() must post end-of-stream
  // to every shard before waiting on any (one shard's finalize emissions
  // are only releasable once the others' terminal watermarks are in
  // flight) — a per-shard wait would deadlock here.
  const EventStream stream =
      CrossSubjectStream(/*groups=*/1, /*subjects=*/32, 5000, /*seed=*/13);
  StreamingCepEngine reference;
  RegisterGroupQueries(
      [&reference](Pattern p, Timestamp w) {
        return reference.AddQuery(std::move(p), w);
      },
      1);
  for (const Event& e : stream) ASSERT_TRUE(reference.OnEvent(e).ok());

  ParallelEngineOptions options;
  options.shard_count = 4;
  options.queue_capacity = 128;
  options.exchange.enabled = true;
  options.exchange.shard_count = 1;
  options.exchange.lane_capacity = 16;
  options.exchange.reorder_capacity = 2;
  options.exchange.key = CorrelationKeySpec::Global();
  ParallelStreamingEngine engine(options);
  RegisterGroupQueries(
      [&engine](Pattern p, Timestamp w) {
        return engine.AddCrossQuery(std::move(p), w);
      },
      1);
  ASSERT_TRUE(engine.Start().ok());
  for (const Event& e : stream) ASSERT_TRUE(engine.OnEvent(e).ok());

  ASSERT_TRUE(engine.Finish().ok());
  for (size_t q = 0; q < engine.cross_query_count(); ++q) {
    EXPECT_EQ(engine.CrossDetectionsOf(q).value(),
              reference.DetectionsOf(q).value())
        << "query=" << q;
  }
  ASSERT_TRUE(engine.Finish().ok());  // latched: idempotent
  ASSERT_TRUE(engine.Stop().ok());
}

TEST(FlowControlTest, StalledMergeShardBackpressuresIngestNotMemory) {
  // A stage-2 consumer blocked inside a detection callback: credits run
  // out, the stage-1 worker blocks in Emit, the shard queue fills, and the
  // ingest thread finally blocks in the queue push — bounded in-flight
  // events end to end, zero allocations while stalled, and full recovery
  // once the consumer resumes.
  ParallelEngineOptions options;
  options.shard_count = 1;
  options.queue_capacity = 8;
  options.exchange.enabled = true;
  options.exchange.shard_count = 1;
  options.exchange.lane_capacity = 8;
  options.exchange.reorder_capacity = 4;
  options.exchange.key = CorrelationKeySpec::Global();
  ParallelStreamingEngine engine(options);
  ASSERT_TRUE(
      engine.AddCrossQuery(MakePattern("seq", {0, 1}, DetectionMode::kSequence),
                           kWindow)
          .ok());

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> stalled{false};
  ASSERT_TRUE(engine
                  .SetCrossQueryCallback(0,
                                         [&](Timestamp) {
                                           std::unique_lock<std::mutex> lock(
                                               mu);
                                           stalled.store(true);
                                           cv.wait(lock,
                                                   [&] { return release; });
                                         })
                  .ok());
  ASSERT_TRUE(engine.Start().ok());

  // CollectHealth must report the hard reorder bound (1 lane x 4 credits).
  obs::PipelineHealth wired;
  engine.CollectHealth(&wired, "plain");
  ASSERT_EQ(wired.groups.size(), 1u);
  EXPECT_EQ(wired.groups[0].reorder_capacity, 4u);

  constexpr size_t kFlood = 1000;
  std::atomic<size_t> pushed{0};
  std::atomic<bool> done{false};
  std::thread ingest([&] {
    // Seq 0/1 complete the pattern: the merge worker blocks on detection.
    for (size_t i = 0; i < 2 + kFlood; ++i) {
      const auto type = static_cast<EventTypeId>(i < 2 ? i : 2);
      if (!engine.OnEvent(Event(type, static_cast<Timestamp>(i), 1)).ok()) {
        break;
      }
      pushed.fetch_add(1, std::memory_order_relaxed);
    }
    done.store(true);
  });

  ASSERT_TRUE(PollUntil([&] { return stalled.load(); }))
      << "merge worker never reached the callback";
  // Wait for the pipeline to wedge: the pushed count plateaus once every
  // bounded buffer between ingest and the stalled consumer is full.
  size_t last = pushed.load();
  int stable_rounds = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (stable_rounds < 5 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const size_t now = pushed.load();
    stable_rounds = now == last ? stable_rounds + 1 : 0;
    last = now;
  }
  ASSERT_EQ(stable_rounds, 5) << "ingest never plateaued";
  EXPECT_FALSE(done.load()) << "ingest was never backpressured";
  // Bounded end to end: queue (8) + lane (8) + reorder budget (4) + the
  // handful in worker hands — nowhere near the flood size.
  EXPECT_LT(pushed.load(), 100u);

  if (bench::kAllocHookActive) {
    bench::ResetAllocCounters();
    bench::SetAllocCounting(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    bench::SetAllocCounting(false);
    EXPECT_EQ(bench::GetAllocCounters().allocs, 0u)
        << "stalled pipeline allocated while backpressured";
  }

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  ingest.join();
  ASSERT_TRUE(engine.Drain().ok());
  EXPECT_EQ(pushed.load(), 2 + kFlood);
  EXPECT_EQ(engine.events_processed(), 2 + kFlood);
  EXPECT_EQ(engine.CrossDetectionsOf(0).value().size(), 1u);
  ASSERT_TRUE(engine.Stop().ok());
}

}  // namespace
}  // namespace pldp
