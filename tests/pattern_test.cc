// Copyright 2026 The PLDP Authors.

#include "cep/pattern.h"

#include <gtest/gtest.h>

namespace pldp {
namespace {

Pattern Make(const std::string& name, std::vector<EventTypeId> elems,
             DetectionMode mode = DetectionMode::kSequence) {
  return Pattern::Create(name, std::move(elems), mode).value();
}

TEST(PatternTest, CreateValidatesNonEmpty) {
  EXPECT_FALSE(Pattern::Create("p", {}, DetectionMode::kSequence).ok());
  EXPECT_TRUE(Pattern::Create("p", {1}, DetectionMode::kSequence).ok());
}

TEST(PatternTest, BasicAccessors) {
  Pattern p = Make("p", {3, 1, 3});
  EXPECT_EQ(p.name(), "p");
  EXPECT_EQ(p.length(), 3u);
  EXPECT_EQ(p.mode(), DetectionMode::kSequence);
  EXPECT_TRUE(p.ContainsType(1));
  EXPECT_TRUE(p.ContainsType(3));
  EXPECT_FALSE(p.ContainsType(2));
}

TEST(PatternTest, DistinctTypesPreservesFirstSeenOrder) {
  Pattern p = Make("p", {3, 1, 3, 2, 1});
  EXPECT_EQ(p.DistinctTypes(), (std::vector<EventTypeId>{3, 1, 2}));
}

TEST(PatternTest, TypeOverlapIsSymmetricOnSharedTypes) {
  Pattern a = Make("a", {1, 2});
  Pattern b = Make("b", {2, 3});
  Pattern c = Make("c", {4, 5});
  EXPECT_TRUE(a.TypeOverlaps(b));
  EXPECT_TRUE(b.TypeOverlaps(a));
  EXPECT_FALSE(a.TypeOverlaps(c));
  EXPECT_FALSE(c.TypeOverlaps(a));
  EXPECT_TRUE(a.TypeOverlaps(a));
}

TEST(PatternTest, ToStringRendersModeAndElements) {
  EventTypeRegistry reg;
  EventTypeId a = reg.Intern("a");
  EventTypeId b = reg.Intern("b");
  Pattern p = Make("p", {a, b}, DetectionMode::kConjunction);
  EXPECT_EQ(p.ToString(&reg), "p=AND(a,b)");
  EXPECT_EQ(p.ToString(), "p=AND(0,1)");
}

TEST(DetectionModeTest, Names) {
  EXPECT_EQ(DetectionModeToString(DetectionMode::kSequence), "SEQ");
  EXPECT_EQ(DetectionModeToString(DetectionMode::kConjunction), "AND");
  EXPECT_EQ(DetectionModeToString(DetectionMode::kDisjunction), "OR");
}

TEST(PatternRegistryTest, RegisterAssignsDenseIds) {
  PatternRegistry reg;
  EXPECT_EQ(reg.Register(Make("a", {0})).value(), 0u);
  EXPECT_EQ(reg.Register(Make("b", {1})).value(), 1u);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_TRUE(reg.Contains(1));
  EXPECT_FALSE(reg.Contains(2));
}

TEST(PatternRegistryTest, RejectsDuplicateNames) {
  PatternRegistry reg;
  ASSERT_TRUE(reg.Register(Make("a", {0})).ok());
  EXPECT_TRUE(reg.Register(Make("a", {1})).status().IsAlreadyExists());
}

TEST(PatternRegistryTest, LookupByName) {
  PatternRegistry reg;
  ASSERT_TRUE(reg.Register(Make("x", {0})).ok());
  EXPECT_EQ(reg.LookupByName("x").value(), 0u);
  EXPECT_TRUE(reg.LookupByName("y").status().IsNotFound());
}

TEST(PatternRegistryTest, TypeOverlappingFindsPeers) {
  PatternRegistry reg;
  PatternId a = reg.Register(Make("a", {1, 2})).value();
  PatternId b = reg.Register(Make("b", {2, 3})).value();
  PatternId c = reg.Register(Make("c", {7})).value();
  EXPECT_EQ(reg.TypeOverlapping(a), (std::vector<PatternId>{b}));
  EXPECT_EQ(reg.TypeOverlapping(b), (std::vector<PatternId>{a}));
  EXPECT_TRUE(reg.TypeOverlapping(c).empty());
  EXPECT_TRUE(reg.TypeOverlapping(99).empty());
}

}  // namespace
}  // namespace pldp
