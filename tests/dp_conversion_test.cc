// Copyright 2026 The PLDP Authors.
//
// Tests for the budget conversions that put the baselines on an
// equal-strength footing with the pattern-level PPMs (paper §VI-A2).

#include "dp/budget_conversion.h"

#include <gtest/gtest.h>

namespace pldp {
namespace {

TEST(AggregatePatternBudgetTest, SumsSelectedTimestamps) {
  std::vector<double> schedule{0.1, 0.2, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(AggregatePatternBudget(schedule, {0, 2}).value(), 0.4);
  EXPECT_DOUBLE_EQ(AggregatePatternBudget(schedule, {}).value(), 0.0);
  EXPECT_DOUBLE_EQ(AggregatePatternBudget(schedule, {1, 1}).value(), 0.4);
}

TEST(AggregatePatternBudgetTest, ValidatesInput) {
  std::vector<double> schedule{0.1, -0.2};
  EXPECT_TRUE(AggregatePatternBudget(schedule, {1}).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(AggregatePatternBudget(schedule, {5}).status().IsOutOfRange());
}

TEST(WEventConversionTest, ForwardFormula) {
  // span k, window w: pattern-level ε = k·ε_w/w.
  EXPECT_DOUBLE_EQ(WEventPatternLevelEpsilon(10.0, 10, 3).value(), 3.0);
  EXPECT_DOUBLE_EQ(WEventPatternLevelEpsilon(1.0, 4, 4).value(), 1.0);
  EXPECT_DOUBLE_EQ(WEventPatternLevelEpsilon(2.0, 8, 1).value(), 0.25);
}

TEST(WEventConversionTest, InverseRoundTrips) {
  for (double eps_p : {0.1, 1.0, 5.0}) {
    for (size_t w : {1ul, 5ul, 20ul}) {
      for (size_t span : {1ul, 3ul, 7ul}) {
        double native =
            WEventBudgetForPatternLevel(eps_p, w, span).value();
        double back = WEventPatternLevelEpsilon(native, w, span).value();
        EXPECT_NEAR(back, eps_p, 1e-12)
            << "eps=" << eps_p << " w=" << w << " span=" << span;
      }
    }
  }
}

TEST(WEventConversionTest, ValidatesArguments) {
  EXPECT_FALSE(WEventPatternLevelEpsilon(0.0, 10, 3).ok());
  EXPECT_FALSE(WEventPatternLevelEpsilon(1.0, 0, 3).ok());
  EXPECT_FALSE(WEventPatternLevelEpsilon(1.0, 10, 0).ok());
  EXPECT_FALSE(WEventBudgetForPatternLevel(-1.0, 10, 3).ok());
}

TEST(LandmarkConversionTest, ForwardFormula) {
  // span · f · ε / L.
  EXPECT_DOUBLE_EQ(LandmarkPatternLevelEpsilon(10.0, 0.5, 5, 2).value(), 2.0);
  EXPECT_DOUBLE_EQ(LandmarkPatternLevelEpsilon(4.0, 1.0, 4, 1).value(), 1.0);
}

TEST(LandmarkConversionTest, InverseRoundTrips) {
  for (double eps_p : {0.2, 1.0, 3.0}) {
    for (double f : {0.25, 0.5, 1.0}) {
      for (size_t L : {1ul, 10ul, 100ul}) {
        double native =
            LandmarkBudgetForPatternLevel(eps_p, f, L, 2).value();
        double back = LandmarkPatternLevelEpsilon(native, f, L, 2).value();
        EXPECT_NEAR(back, eps_p, 1e-12);
      }
    }
  }
}

TEST(LandmarkConversionTest, ValidatesArguments) {
  EXPECT_FALSE(LandmarkPatternLevelEpsilon(1.0, 0.0, 5, 2).ok());
  EXPECT_FALSE(LandmarkPatternLevelEpsilon(1.0, 1.5, 5, 2).ok());
  EXPECT_FALSE(LandmarkPatternLevelEpsilon(1.0, 0.5, 0, 2).ok());
  EXPECT_FALSE(LandmarkPatternLevelEpsilon(1.0, 0.5, 5, 0).ok());
  EXPECT_FALSE(LandmarkBudgetForPatternLevel(0.0, 0.5, 5, 2).ok());
}

TEST(ConversionConsistencyTest, MoreTimestampsMeansWeakerNativeBudget) {
  // To deliver the same pattern-level ε over a longer pattern span, the
  // native w-event budget may shrink proportionally.
  double short_span = WEventBudgetForPatternLevel(1.0, 10, 1).value();
  double long_span = WEventBudgetForPatternLevel(1.0, 10, 5).value();
  EXPECT_GT(short_span, long_span);
}

}  // namespace
}  // namespace pldp
