// Copyright 2026 The PLDP Authors.

#include "common/strings.h"

#include <gtest/gtest.h>

namespace pldp {
namespace {

TEST(SplitTest, BasicFields) {
  auto f = Split("a,b,c", ',');
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "b");
  EXPECT_EQ(f[2], "c");
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  auto f = Split("", ',');
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], "");
}

TEST(SplitTest, AdjacentSeparators) {
  auto f = Split("a,,b,", ',');
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[3], "");
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts{"x", "", "yz"};
  EXPECT_EQ(Split(Join(parts, ';'), ';'), parts);
}

TEST(JoinTest, EmptyVector) {
  EXPECT_EQ(Join({}, ','), "");
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("nowhitespace"), "nowhitespace");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("pattern", "pat"));
  EXPECT_TRUE(StartsWith("pattern", ""));
  EXPECT_FALSE(StartsWith("pat", "pattern"));
  EXPECT_FALSE(StartsWith("pattern", "att"));
}

TEST(ParseDoubleTest, ValidNumbers) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("  2.25 ").value(), 2.25);
  EXPECT_DOUBLE_EQ(ParseDouble("0").value(), 0.0);
}

TEST(ParseDoubleTest, RejectsBadInput) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("1.5 2.5").ok());
}

TEST(ParseInt64Test, ValidNumbers) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64(" 1000 ").value(), 1000);
  EXPECT_EQ(ParseInt64("9223372036854775807").value(),
            std::numeric_limits<int64_t>::max());
}

TEST(ParseInt64Test, RejectsBadInput) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12.5").ok());
  EXPECT_FALSE(ParseInt64("x12").ok());
  EXPECT_TRUE(ParseInt64("99999999999999999999").status().IsOutOfRange());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StrFormatTest, LongOutput) {
  std::string big(500, 'a');
  EXPECT_EQ(StrFormat("%s", big.c_str()).size(), 500u);
}

}  // namespace
}  // namespace pldp
