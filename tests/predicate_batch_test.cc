// Copyright 2026 The PLDP Authors.
//
// Eval ↔ EvalBatch equivalence for the predicate layer (cep/predicate.h).
// EvalBatch is the SIMD-ready bulk entry point the shard pop loop uses as
// its relevance prefilter; its contract is bit i of the mask == Eval on
// event i (with Eval errors mapping to "not matching" — batch callers use
// the mask as a prefilter, never for error reporting), and every
// remaining bit of each touched mask word cleared. Fixed seeds pin the
// agreement on the same streams every run, across:
//
//   * the base-class scalar fallback (composites: And/Or/Not),
//   * the vectorizable leaf overrides (TypeIs),
//   * both TypeAnyOf forms — the bitmap (max type < 2^16) and the sorted
//     binary search (sparse huge type ids) — plus its strided variant
//     over StampedEvent-embedded events, the shard pop loop's actual
//     call shape.

#include "cep/predicate.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "runtime/shard.h"

namespace pldp {
namespace {

std::vector<Event> RandomEvents(size_t count, EventTypeId type_span,
                                uint64_t seed, bool with_attr = false) {
  const AttrId cell = AttrNames().Intern("batch_test_cell");
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Event e(static_cast<EventTypeId>(rng.UniformUint64(type_span)),
            static_cast<Timestamp>(i), static_cast<StreamId>(i % 7));
    // Half the events carry the attribute: exercises the "absent data
    // cannot satisfy a filter" mapping inside the batch path too.
    if (with_attr && i % 2 == 0) {
      e.SetAttribute(cell, Value(static_cast<int64_t>(i % 100)));
    }
    events.push_back(std::move(e));
  }
  return events;
}

/// Asserts mask == per-event Eval over `events`, including cleared tail
/// bits in the last touched word.
void ExpectMaskMatchesEval(const Predicate& pred,
                           const std::vector<Event>& events) {
  const size_t words = (events.size() + 63) / 64;
  // Poison: EvalBatch must fully overwrite every touched word.
  std::vector<uint64_t> mask(words, ~uint64_t{0});
  pred.EvalBatch(EventSpan(events.data(), events.size()), mask.data());
  for (size_t i = 0; i < events.size(); ++i) {
    const auto eval = pred.Eval(events[i]);
    const bool expected = eval.ok() && eval.value();
    const bool got = ((mask[i / 64] >> (i % 64)) & 1) != 0;
    ASSERT_EQ(got, expected) << "event " << i << " of " << events.size()
                             << " under " << pred.ToString();
  }
  for (size_t i = events.size(); i < words * 64; ++i) {
    ASSERT_EQ((mask[i / 64] >> (i % 64)) & 1, 0u)
        << "tail bit " << i << " not cleared under " << pred.ToString();
  }
}

TEST(PredicateBatchTest, ScalarFallbackMatchesEval) {
  // 1000 is deliberately not a multiple of 64: exercises the tail word.
  const std::vector<Event> events =
      RandomEvents(1000, /*type_span=*/16, /*seed=*/3, /*with_attr=*/true);
  ExpectMaskMatchesEval(*MakeTrue(), events);
  ExpectMaskMatchesEval(
      *MakeNumericCompare("batch_test_cell", CompareOp::kLt, 50.0), events);
  ExpectMaskMatchesEval(
      *MakeAnd({MakeTypeIs(3),
                MakeNumericCompare("batch_test_cell", CompareOp::kGe, 10.0)}),
      events);
  ExpectMaskMatchesEval(*MakeOr({MakeTypeIs(1), MakeTypeIs(5)}), events);
  ExpectMaskMatchesEval(*MakeNot(MakeTypeIs(0)), events);
}

TEST(PredicateBatchTest, TypeIsOverrideMatchesEval) {
  const std::vector<Event> events =
      RandomEvents(777, /*type_span=*/8, /*seed=*/5);
  for (EventTypeId t : {0, 3, 7, 9 /* absent from the stream */}) {
    ExpectMaskMatchesEval(*MakeTypeIs(t), events);
  }
}

TEST(PredicateBatchTest, TypeAnyOfBitmapFormMatchesEval) {
  const std::vector<Event> events =
      RandomEvents(1000, /*type_span=*/64, /*seed=*/7);
  // Small ids → bitmap form (duplicates must be tolerated).
  const auto pred = MakeTypeAnyOf({1, 5, 5, 9, 30, 63});
  EXPECT_EQ(pred->type_count(), 5u);
  ExpectMaskMatchesEval(*pred, events);
  ExpectMaskMatchesEval(*MakeTypeAnyOf({}), events);  // empty set: all false
}

TEST(PredicateBatchTest, TypeAnyOfBinarySearchFormMatchesEval) {
  // One member above 2^16 forces the sorted binary-search form for the
  // whole set; the events still draw small ids, so membership decisions
  // hit both inside and outside the set.
  const std::vector<Event> events =
      RandomEvents(1000, /*type_span=*/64, /*seed=*/9);
  ExpectMaskMatchesEval(*MakeTypeAnyOf({1, 5, 9, 30, 70000}), events);
}

TEST(PredicateBatchTest, StridedVariantMatchesContiguous) {
  const std::vector<Event> events =
      RandomEvents(500, /*type_span=*/32, /*seed=*/11);
  // Embed the events in StampedEvent records — the shard pop loop's
  // actual memory layout (runtime/shard.h).
  std::vector<StampedEvent> stamped;
  stamped.reserve(events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    stamped.push_back(StampedEvent{i, events[i]});
  }
  const auto pred = MakeTypeAnyOf({2, 4, 8, 16});

  const size_t words = (events.size() + 63) / 64;
  std::vector<uint64_t> contiguous(words, ~uint64_t{0});
  pred->EvalBatch(EventSpan(events.data(), events.size()), contiguous.data());
  std::vector<uint64_t> strided(words, 0);
  pred->EvalTypesStrided(&stamped[0].event, sizeof(StampedEvent),
                         stamped.size(), strided.data());
  EXPECT_EQ(strided, contiguous);
}

}  // namespace
}  // namespace pldp
