// Copyright 2026 The PLDP Authors.
//
// End-to-end integration tests: raw streams through windowing, pattern
// registration, every mechanism, and the evaluation pipeline — on both the
// synthetic (Algorithm 2) and taxi substrates. These tests pin the *shape*
// of the paper's results at small scale.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/pldp.h"

namespace pldp {
namespace {

EvaluationConfig FastConfig(size_t reps = 6) {
  EvaluationConfig cfg;
  cfg.repetitions = reps;
  cfg.mechanism_options.adaptive.trials = 8;
  cfg.mechanism_options.adaptive.max_rounds = 4;
  return cfg;
}

TEST(IntegrationTest, EveryMechanismRunsOnSynthetic) {
  SyntheticOptions opt;
  opt.num_windows = 150;
  Dataset ds = GenerateSynthetic(opt, 17).value().dataset;
  for (const std::string& name : AllMechanismNames()) {
    EvaluationConfig cfg = FastConfig(3);
    cfg.mechanism = name;
    auto r = RunEvaluation(ds, cfg);
    ASSERT_TRUE(r.ok()) << name << ": " << r.status().ToString();
    EXPECT_LE(r->mre.mean(), 1.0) << name;
  }
}

TEST(IntegrationTest, EveryMechanismRunsOnTaxi) {
  TaxiOptions opt;
  opt.grid_width = 8;
  opt.grid_height = 8;
  opt.num_taxis = 25;
  opt.num_ticks = 120;
  Dataset ds = GenerateTaxi(opt, 19).value().dataset;
  for (const std::string& name : AllMechanismNames()) {
    EvaluationConfig cfg = FastConfig(3);
    cfg.mechanism = name;
    auto r = RunEvaluation(ds, cfg);
    ASSERT_TRUE(r.ok()) << name << ": " << r.status().ToString();
  }
}

TEST(IntegrationTest, PaperShapeOnSynthetic) {
  SyntheticOptions opt;
  opt.num_windows = 400;
  Dataset ds = GenerateSynthetic(opt, 7).value().dataset;
  EvaluationConfig cfg = FastConfig(8);
  cfg.mechanism_options.adaptive.trials = 16;
  auto sweep =
      SweepEpsilons(ds, {"uniform", "adaptive", "bd", "ba", "landmark"},
                    {1.0, 5.0}, cfg)
          .value();
  // Pattern-level PPMs beat every stream-level baseline at both budgets.
  for (size_t e = 0; e < 2; ++e) {
    EXPECT_LT(sweep.mre[0][e], sweep.mre[2][e]) << "uniform vs bd, e=" << e;
    EXPECT_LT(sweep.mre[0][e], sweep.mre[3][e]) << "uniform vs ba, e=" << e;
    EXPECT_LT(sweep.mre[0][e], sweep.mre[4][e])
        << "uniform vs landmark, e=" << e;
    EXPECT_LT(sweep.mre[1][e], sweep.mre[2][e]) << "adaptive vs bd, e=" << e;
  }
  // MRE decreases with ε for the pattern-level PPMs.
  EXPECT_GT(sweep.mre[0][0], sweep.mre[0][1]);
  EXPECT_GT(sweep.mre[1][0], sweep.mre[1][1]);
}

TEST(IntegrationTest, UniformEqualsAdaptiveOnSingleElementPatterns) {
  // The taxi experiment's observation: with pattern length 1, Algorithm 1
  // has nothing to redistribute — the two pattern-level PPMs coincide.
  TaxiOptions opt;
  opt.grid_width = 8;
  opt.grid_height = 8;
  opt.num_taxis = 20;
  opt.num_ticks = 100;
  Dataset ds = GenerateTaxi(opt, 23).value().dataset;
  EvaluationConfig cfg = FastConfig(5);
  cfg.epsilon = 1.0;
  cfg.mechanism = "uniform";
  auto uniform = RunEvaluation(ds, cfg).value();
  cfg.mechanism = "adaptive";
  auto adaptive = RunEvaluation(ds, cfg).value();
  EXPECT_DOUBLE_EQ(uniform.mre.mean(), adaptive.mre.mean());
}

TEST(IntegrationTest, FullPipelineDeterministic) {
  SyntheticOptions opt;
  opt.num_windows = 100;
  Dataset ds = GenerateSynthetic(opt, 29).value().dataset;
  EvaluationConfig cfg = FastConfig(4);
  cfg.mechanism = "ba";
  double first = RunEvaluation(ds, cfg).value().mre.mean();
  double second = RunEvaluation(ds, cfg).value().mre.mean();
  EXPECT_DOUBLE_EQ(first, second);
}

TEST(IntegrationTest, PrivateEngineMatchesEvaluationPath) {
  // The PrivateCepEngine facade and the evaluation pipeline publish through
  // the same mechanism; with a huge budget both must reproduce ground truth.
  PrivateCepEngine engine;
  EventTypeId a = engine.InternEventType("a");
  EventTypeId b = engine.InternEventType("b");
  ASSERT_TRUE(engine
                  .RegisterPrivatePattern(
                      Pattern::Create("priv", {a},
                                      DetectionMode::kConjunction)
                          .value())
                  .ok());
  QueryId q = engine
                  .RegisterTargetQuery(
                      "q", Pattern::Create("tgt", {a, b},
                                           DetectionMode::kConjunction)
                               .value())
                  .value();
  ASSERT_TRUE(
      engine.Activate(std::make_unique<UniformPatternPpm>(), 100.0).ok());

  EventStream stream;
  Rng gen(31);
  for (Timestamp t = 0; t < 200; ++t) {
    if (gen.Bernoulli(0.5)) stream.AppendUnchecked(Event(a, t));
    if (gen.Bernoulli(0.5)) stream.AppendUnchecked(Event(b, t));
  }
  TumblingWindower windower(10);
  auto windows = windower.Apply(stream).value();
  Rng rng(37);
  auto published = engine.ProcessWindows(windows, &rng).value();
  auto truth = engine.GroundTruth(windows).value();
  EXPECT_EQ(published.answers[q].answers(), truth.answers[q].answers());
}

TEST(IntegrationTest, StreamRoundTripFeedsPipeline) {
  // Persist a taxi stream to CSV, reload it, re-window, and verify the
  // evaluation still runs — exercising the IO path end-to-end.
  TaxiOptions opt;
  opt.grid_width = 6;
  opt.grid_height = 6;
  opt.num_taxis = 10;
  opt.num_ticks = 40;
  TaxiDataset taxi = GenerateTaxi(opt, 41).value();

  std::string path =
      (std::filesystem::temp_directory_path() / "pldp_integration.csv")
          .string();
  ASSERT_TRUE(
      WriteStreamCsv(path, taxi.merged_stream, taxi.dataset.event_types)
          .ok());
  EventTypeRegistry reloaded_types;
  EventStream reloaded = ReadStreamCsv(path, &reloaded_types).value();
  ASSERT_EQ(reloaded.size(), taxi.merged_stream.size());

  TumblingWindower windower(opt.sampling_interval_s);
  auto windows = windower.Apply(reloaded).value();
  EXPECT_EQ(windows.size(), taxi.dataset.windows.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pldp
