// Copyright 2026 The PLDP Authors.
//
// Pins the MetricsRegistry registration/snapshot race: Snapshot() (scrape
// thread) walks the entry list while Add* (topology build) grows it. The
// registry's contract is that registration happens under `mu_` and every
// Snapshot/instrument_count read takes the same mutex — instruments
// themselves live in stable heap slots, so handed-out pointers stay valid
// across later registrations. Before entries were created fully under the
// lock, a scrape racing a registration could observe a half-constructed
// Entry or a vector mid-growth. These loops exercise exactly that window;
// the TSan CI job turns any regression into a hard failure.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace pldp {
namespace obs {
namespace {

TEST(MetricsRaceTest, SnapshotRacingRegistration) {
  MetricsRegistry registry;

  std::atomic<bool> stop{false};
  std::atomic<size_t> snapshots{0};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const MetricsSnapshot snapshot = registry.Snapshot();
      // Families appear atomically: a visible family always has >= 1
      // fully-formed sample.
      for (const MetricFamily& family : snapshot.families) {
        ASSERT_FALSE(family.name.empty());
        ASSERT_FALSE(family.samples.empty());
      }
      (void)registry.instrument_count();
      snapshots.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Registration is fast; make sure the scraper is actually running before
  // the window this test exists to exercise opens.
  while (snapshots.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }

  constexpr size_t kPerType = 64;
  std::vector<Counter*> counters;
  for (size_t i = 0; i < kPerType; ++i) {
    const std::string label = std::to_string(i);
    Counter* counter = registry.AddCounter(
        "race_events_total", "events", {{"shard", label}});
    ASSERT_NE(counter, nullptr);
    counter->Inc(i);
    counters.push_back(counter);

    Gauge* gauge =
        registry.AddGauge("race_depth", "queue depth", {{"shard", label}});
    ASSERT_NE(gauge, nullptr);
    gauge->Set(static_cast<double>(i));

    Histogram* histogram = registry.AddHistogram(
        "race_latency_ns", "latency", {{"shard", label}});
    ASSERT_NE(histogram, nullptr);
    histogram->Record(i + 1);
  }

  stop.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_GT(snapshots.load(), 0u);
  EXPECT_EQ(registry.instrument_count(), 3 * kPerType);

  // Pointers handed out during the race stay live and exact.
  for (size_t i = 0; i < counters.size(); ++i) {
    EXPECT_EQ(counters[i]->Value(), i);
  }
  const MetricsSnapshot final_snapshot = registry.Snapshot();
  const MetricFamily* events = final_snapshot.Find("race_events_total");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->samples.size(), kPerType);
}

TEST(MetricsRaceTest, HotUpdatesRacingSnapshots) {
  // The wait-free half of the split: instrument updates never take the
  // registry mutex, so a tight update loop must coexist with a tight
  // snapshot loop (and the final values must reconcile exactly once the
  // writer is done).
  MetricsRegistry registry;
  Counter* counter = registry.AddCounter("hot_total", "hot counter");
  Histogram* histogram = registry.AddHistogram("hot_ns", "hot histogram");
  ASSERT_NE(counter, nullptr);
  ASSERT_NE(histogram, nullptr);

  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)registry.Snapshot();
    }
  });

  constexpr uint64_t kUpdates = 200000;
  for (uint64_t i = 0; i < kUpdates; ++i) {
    counter->Inc();
    histogram->Record(i & 1023);
  }

  stop.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_EQ(counter->Value(), kUpdates);
  EXPECT_EQ(histogram->TotalCount(), kUpdates);
}

}  // namespace
}  // namespace obs
}  // namespace pldp
