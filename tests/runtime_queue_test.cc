// Copyright 2026 The PLDP Authors.
//
// Tests for the runtime's SPSC ring buffer: single-threaded semantics
// (FIFO, capacity, wraparound, move-only payloads) and correctness under a
// real producer/consumer thread pair.

#include "runtime/spsc_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace pldp {
namespace {

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 2u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
  EXPECT_EQ(SpscQueue<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscQueue<int>(8).capacity(), 8u);
}

TEST(SpscQueueTest, FifoOrderSingleThreaded) {
  SpscQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(int{i}));
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.TryPop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.TryPop(out));
}

TEST(SpscQueueTest, PushFailsWhenFullPopFailsWhenEmpty) {
  SpscQueue<int> q(2);
  int out = 0;
  EXPECT_FALSE(q.TryPop(out));
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full: capacity 2
  EXPECT_TRUE(q.TryPop(out));
  EXPECT_TRUE(q.TryPush(3));  // slot freed
  EXPECT_EQ(q.ApproxSize(), 2u);
}

TEST(SpscQueueTest, WrapsAroundManyLaps) {
  SpscQueue<uint64_t> q(4);
  uint64_t out = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(q.TryPush(uint64_t{i}));
    ASSERT_TRUE(q.TryPop(out));
    ASSERT_EQ(out, i);
  }
  EXPECT_TRUE(q.ApproxEmpty());
}

TEST(SpscQueueTest, MoveOnlyPayload) {
  SpscQueue<std::unique_ptr<int>> q(2);
  ASSERT_TRUE(q.TryPush(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.TryPop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

// The load-bearing test: a dedicated producer thread races a dedicated
// consumer thread through a deliberately tiny queue (forcing constant
// wraparound and full/empty transitions). The consumer must observe every
// value exactly once, in order.
TEST(SpscQueueTest, ProducerConsumerThreadPairPreservesSequence) {
  constexpr uint64_t kCount = 200000;
  SpscQueue<uint64_t> q(8);

  std::thread producer([&q] {
    for (uint64_t i = 0; i < kCount; ++i) {
      while (!q.TryPush(uint64_t{i})) std::this_thread::yield();
    }
  });

  uint64_t expected = 0;
  uint64_t out = 0;
  while (expected < kCount) {
    if (q.TryPop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(q.ApproxEmpty());
}

// Same pair but with a heap-owning payload, so TSan + ASan cover the
// slot handoff of non-trivial types.
TEST(SpscQueueTest, ProducerConsumerThreadPairMoveOnly) {
  constexpr int kCount = 20000;
  SpscQueue<std::unique_ptr<int>> q(4);

  std::thread producer([&q] {
    for (int i = 0; i < kCount; ++i) {
      auto v = std::make_unique<int>(i);
      while (!q.TryPush(std::move(v))) std::this_thread::yield();
    }
  });

  int expected = 0;
  std::unique_ptr<int> out;
  while (expected < kCount) {
    if (q.TryPop(out)) {
      ASSERT_NE(out, nullptr);
      ASSERT_EQ(*out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
}

}  // namespace
}  // namespace pldp
