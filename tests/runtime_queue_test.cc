// Copyright 2026 The PLDP Authors.
//
// Tests for the runtime's SPSC ring buffer: single-threaded semantics
// (FIFO, capacity, wraparound, move-only payloads) and correctness under a
// real producer/consumer thread pair.

#include "runtime/spsc_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace pldp {
namespace {

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 2u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
  EXPECT_EQ(SpscQueue<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscQueue<int>(8).capacity(), 8u);
}

TEST(SpscQueueTest, NextPowerOfTwoSaturatesInsteadOfLooping) {
  // Above 2^63 there is no next power of two; the guard saturates rather
  // than spinning forever on an overflowed shift.
  constexpr size_t kHighBit = size_t{1} << 63;
  static_assert(NextPowerOfTwo(kHighBit) == kHighBit, "exact high bit");
  static_assert(NextPowerOfTwo(kHighBit + 1) == kHighBit, "above high bit");
  static_assert(NextPowerOfTwo(SIZE_MAX) == kHighBit, "SIZE_MAX");
  EXPECT_EQ(NextPowerOfTwo(kHighBit - 1), kHighBit);
}

TEST(SpscQueueTest, AbsurdCapacityRequestIsClamped) {
  // A bogus capacity must not demand a near-2^64 allocation.
  SpscQueue<int> q(SIZE_MAX);
  EXPECT_EQ(q.capacity(), kMaxSpscCapacity);
  EXPECT_TRUE(q.TryPush(7));
  int out = 0;
  EXPECT_TRUE(q.TryPop(out));
  EXPECT_EQ(out, 7);
}

TEST(SpscQueueTest, BulkPushPopSingleThreaded) {
  SpscQueue<int> q(8);
  int in[6] = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(q.TryPushN(in, 6), 6u);
  EXPECT_EQ(q.ApproxSize(), 6u);

  // Partial push when nearly full: only 2 slots remain.
  int more[5] = {6, 7, 8, 9, 10};
  EXPECT_EQ(q.TryPushN(more, 5), 2u);
  EXPECT_EQ(q.ApproxSize(), 8u);
  EXPECT_EQ(q.TryPushN(more, 5), 0u);  // full

  int out[16] = {0};
  EXPECT_EQ(q.TryPopN(out, 3), 3u);  // partial pop
  EXPECT_EQ(q.TryPopN(out + 3, 16), 5u);  // rest, bounded by occupancy
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(q.TryPopN(out, 16), 0u);  // empty

  // Zero-count calls are no-ops.
  EXPECT_EQ(q.TryPushN(in, 0), 0u);
  EXPECT_EQ(q.TryPopN(out, 0), 0u);
}

TEST(SpscQueueTest, BulkOpsWrapAround) {
  SpscQueue<uint64_t> q(4);
  uint64_t buf[3];
  uint64_t out[3];
  uint64_t next = 0;
  uint64_t expected = 0;
  for (int lap = 0; lap < 500; ++lap) {
    for (auto& v : buf) v = next++;
    ASSERT_EQ(q.TryPushN(buf, 3), 3u);
    ASSERT_EQ(q.TryPopN(out, 3), 3u);
    for (uint64_t v : out) ASSERT_EQ(v, expected++);
  }
  EXPECT_TRUE(q.ApproxEmpty());
}

TEST(SpscQueueTest, BulkOpsMoveOnlyPayload) {
  SpscQueue<std::unique_ptr<int>> q(4);
  std::unique_ptr<int> in[3];
  for (int i = 0; i < 3; ++i) in[i] = std::make_unique<int>(i);
  ASSERT_EQ(q.TryPushN(in, 3), 3u);
  for (const auto& p : in) EXPECT_EQ(p, nullptr);  // moved out
  std::unique_ptr<int> out[3];
  ASSERT_EQ(q.TryPopN(out, 3), 3u);
  for (int i = 0; i < 3; ++i) {
    ASSERT_NE(out[i], nullptr);
    EXPECT_EQ(*out[i], i);
  }
}

// Bulk producer races bulk consumer through a tiny queue; every value must
// arrive exactly once, in order, regardless of burst fragmentation. TSan
// covers the single-release-store-per-burst publication.
TEST(SpscQueueTest, BulkProducerConsumerThreadPairPreservesSequence) {
  constexpr uint64_t kCount = 200000;
  constexpr size_t kBurst = 17;  // deliberately not a divisor of capacity
  SpscQueue<uint64_t> q(16);

  std::thread producer([&q] {
    uint64_t buf[kBurst];
    uint64_t next = 0;
    while (next < kCount) {
      size_t want = kBurst;
      if (kCount - next < want) want = static_cast<size_t>(kCount - next);
      for (size_t i = 0; i < want; ++i) buf[i] = next + i;
      size_t done = 0;
      while (done < want) {
        const size_t n = q.TryPushN(buf + done, want - done);
        if (n == 0) {
          std::this_thread::yield();
        } else {
          done += n;
        }
      }
      next += want;
    }
  });

  uint64_t out[kBurst];
  uint64_t expected = 0;
  while (expected < kCount) {
    const size_t n = q.TryPopN(out, kBurst);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], expected++);
  }
  producer.join();
  EXPECT_TRUE(q.ApproxEmpty());
}

TEST(SpscQueueTest, FifoOrderSingleThreaded) {
  SpscQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(int{i}));
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.TryPop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.TryPop(out));
}

TEST(SpscQueueTest, PushFailsWhenFullPopFailsWhenEmpty) {
  SpscQueue<int> q(2);
  int out = 0;
  EXPECT_FALSE(q.TryPop(out));
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full: capacity 2
  EXPECT_TRUE(q.TryPop(out));
  EXPECT_TRUE(q.TryPush(3));  // slot freed
  EXPECT_EQ(q.ApproxSize(), 2u);
}

TEST(SpscQueueTest, WrapsAroundManyLaps) {
  SpscQueue<uint64_t> q(4);
  uint64_t out = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(q.TryPush(uint64_t{i}));
    ASSERT_TRUE(q.TryPop(out));
    ASSERT_EQ(out, i);
  }
  EXPECT_TRUE(q.ApproxEmpty());
}

TEST(SpscQueueTest, MoveOnlyPayload) {
  SpscQueue<std::unique_ptr<int>> q(2);
  ASSERT_TRUE(q.TryPush(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.TryPop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

// The load-bearing test: a dedicated producer thread races a dedicated
// consumer thread through a deliberately tiny queue (forcing constant
// wraparound and full/empty transitions). The consumer must observe every
// value exactly once, in order.
TEST(SpscQueueTest, ProducerConsumerThreadPairPreservesSequence) {
  constexpr uint64_t kCount = 200000;
  SpscQueue<uint64_t> q(8);

  std::thread producer([&q] {
    for (uint64_t i = 0; i < kCount; ++i) {
      while (!q.TryPush(uint64_t{i})) std::this_thread::yield();
    }
  });

  uint64_t expected = 0;
  uint64_t out = 0;
  while (expected < kCount) {
    if (q.TryPop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(q.ApproxEmpty());
}

// Same pair but with a heap-owning payload, so TSan + ASan cover the
// slot handoff of non-trivial types.
TEST(SpscQueueTest, ProducerConsumerThreadPairMoveOnly) {
  constexpr int kCount = 20000;
  SpscQueue<std::unique_ptr<int>> q(4);

  std::thread producer([&q] {
    for (int i = 0; i < kCount; ++i) {
      auto v = std::make_unique<int>(i);
      while (!q.TryPush(std::move(v))) std::this_thread::yield();
    }
  });

  int expected = 0;
  std::unique_ptr<int> out;
  while (expected < kCount) {
    if (q.TryPop(out)) {
      ASSERT_NE(out, nullptr);
      ASSERT_EQ(*out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
}

}  // namespace
}  // namespace pldp
