// Copyright 2026 The PLDP Authors.
//
// Tests for the MPSC ingest front-end (ParallelEngineOptions::
// ingest_producers / ParallelStreamingEngine::producer): P concurrent
// producer handles over per-producer × per-shard SPSC lanes.
//
// The central property: producer p of P stamps the arithmetic progression
// p, p+P, p+2P, ..., so a stream partitioned ROUND-ROBIN over the handles
// (event i driven by producer i % P, each handle in order) reproduces the
// single-producer sequence stamping bit-for-bit — and therefore the exact
// same per-query detection sequences, for every producer count × shard
// count, per-event and batched. Fixed seeds make every run of this file
// compare identical streams.
//
// Also pinned here: the engine-level OnEvent/OnEventBatch refusal at
// P > 1, the Drain barrier with idle producers (quiescent lanes must not
// gate the shard merges), the shedding-policy incompatibility, and the
// builder-level WithIngestProducers surface (api/pipeline_builder.h).

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "api/pipeline_builder.h"
#include "cep/streaming_engine.h"
#include "common/random.h"
#include "runtime/parallel_engine.h"
#include "stream/event_stream.h"
#include "stream/replay.h"

namespace pldp {
namespace {

constexpr size_t kTypesPerSubject = 3;
constexpr size_t kSubjects = 16;
constexpr Timestamp kWindow = 6;

Pattern MakePattern(const char* name, std::vector<EventTypeId> elems,
                    DetectionMode mode) {
  return Pattern::Create(name, std::move(elems), mode).value();
}

/// Keyed synthetic stream (same shape as runtime_engine_test.cc): subject
/// k only emits types from its private alphabet, so matches are
/// subject-local by construction.
EventStream KeyedStream(size_t num_events, uint64_t seed) {
  Rng rng(seed);
  EventStream stream;
  stream.Reserve(num_events);
  for (size_t i = 0; i < num_events; ++i) {
    const auto subject = static_cast<StreamId>(rng.UniformUint64(kSubjects));
    const auto type = static_cast<EventTypeId>(
        subject * kTypesPerSubject + rng.UniformUint64(kTypesPerSubject));
    stream.AppendUnchecked(
        Event(type, static_cast<Timestamp>(i / 4), subject));
  }
  return stream;
}

template <typename EngineT>
void RegisterKeyedQueries(EngineT& engine) {
  for (size_t k = 0; k < kSubjects; ++k) {
    const auto base = static_cast<EventTypeId>(k * kTypesPerSubject);
    ASSERT_TRUE(engine
                    .AddQuery(MakePattern("seq", {base, base + 1, base + 2},
                                          DetectionMode::kSequence),
                              kWindow)
                    .ok());
    ASSERT_TRUE(engine
                    .AddQuery(MakePattern("conj", {base + 2, base},
                                          DetectionMode::kConjunction),
                              kWindow)
                    .ok());
  }
}

/// Round-robin partition of `stream` for producer `p` of `producers`:
/// events p, p + P, p + 2P, ... in stream order, copied contiguous so the
/// batched driver can feed spans.
std::vector<Event> PartitionOf(const EventStream& stream, size_t p,
                               size_t producers) {
  std::vector<Event> part;
  part.reserve(stream.size() / producers + 1);
  for (size_t i = p; i < stream.size(); i += producers) {
    part.push_back(stream.events()[i]);
  }
  return part;
}

enum class DriveMode { kPerEvent, kBatched };

/// Drives `stream` through `engine` with P concurrent round-robin
/// producer threads; returns false on any ingest error.
bool DriveRoundRobin(ParallelStreamingEngine& engine,
                     const EventStream& stream, DriveMode mode) {
  const size_t producers = engine.producer_count();
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&engine, &stream, &failed, p, producers, mode] {
      IngestProducer* handle = engine.producer(p);
      const std::vector<Event> part = PartitionOf(stream, p, producers);
      if (mode == DriveMode::kPerEvent) {
        for (const Event& e : part) {
          if (!handle->OnEvent(e).ok()) {
            failed.store(true);
            return;
          }
        }
        // An idle lane's stale floor gates the shard merges; a handle
        // that stops ingesting publishes its floor (the Drain barrier
        // would also do this, but the explicit call is the documented
        // contract for handles that go quiet while others continue).
        handle->PublishFloor();
      } else {
        constexpr size_t kBatch = 512;
        for (size_t i = 0; i < part.size(); i += kBatch) {
          const size_t n = std::min(kBatch, part.size() - i);
          if (!handle->OnEventBatch(EventSpan(part.data() + i, n)).ok()) {
            failed.store(true);
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return !failed.load();
}

TEST(MpscIngestTest, RoundRobinPartitioningEqualsSingleProducer) {
  const EventStream stream = KeyedStream(20000, /*seed=*/7);

  // Sequential ground truth.
  StreamingCepEngine reference;
  RegisterKeyedQueries(reference);
  for (const Event& e : stream) ASSERT_TRUE(reference.OnEvent(e).ok());
  ASSERT_GT(reference.total_detections(), 0u)
      << "degenerate test: the reference detected nothing";

  for (size_t shards : {1u, 2u, 4u}) {
    for (size_t producers : {1u, 2u, 4u}) {
      for (DriveMode mode : {DriveMode::kPerEvent, DriveMode::kBatched}) {
        ParallelEngineOptions options;
        options.shard_count = shards;
        options.queue_capacity = 256;  // small: exercise lane backpressure
        options.ingest_producers = producers;
        ParallelStreamingEngine engine(options);
        RegisterKeyedQueries(engine);
        ASSERT_TRUE(engine.Start().ok());
        ASSERT_EQ(engine.producer_count(), producers);

        ASSERT_TRUE(DriveRoundRobin(engine, stream, mode))
            << "shards=" << shards << " producers=" << producers;
        ASSERT_TRUE(engine.Drain().ok());

        EXPECT_EQ(engine.events_processed(), stream.size())
            << "shards=" << shards << " producers=" << producers;
        EXPECT_EQ(engine.total_detections(), reference.total_detections())
            << "shards=" << shards << " producers=" << producers;
        // Positional equality per query: round-robin partitioning over the
        // strided handles reproduces the single-producer (= global ingest
        // order) stamping exactly, so the detection sequences match
        // bit-for-bit, not just as multisets.
        for (size_t q = 0; q < engine.query_count(); ++q) {
          EXPECT_EQ(engine.DetectionsOf(q).value(),
                    reference.DetectionsOf(q).value())
              << "shards=" << shards << " producers=" << producers
              << " query=" << q;
        }
        ASSERT_TRUE(engine.Stop().ok());
      }
    }
  }
}

TEST(MpscIngestTest, EngineLevelIngestRefusedWithMultipleProducers) {
  ParallelEngineOptions options;
  options.shard_count = 2;
  options.ingest_producers = 2;
  ParallelStreamingEngine engine(options);
  RegisterKeyedQueries(engine);
  ASSERT_TRUE(engine.Start().ok());

  // The engine-level StreamSubscriber entry points cannot participate in
  // the per-producer stamping contract; with P > 1 they are refused and
  // the caller must drive producer(i).
  EXPECT_FALSE(engine.OnEvent(Event(0, 0, 0)).ok());
  const Event one(0, 0, 0);
  EXPECT_FALSE(engine.OnEventBatch(EventSpan(&one, 1)).ok());
  EXPECT_TRUE(engine.producer(0)->OnEvent(one).ok());
  ASSERT_TRUE(engine.Drain().ok());
  EXPECT_EQ(engine.events_processed(), 1u);
  ASSERT_TRUE(engine.Stop().ok());
}

// An idle producer must not wedge the pipeline — during INGEST, not just
// at the barrier. The stream here overflows the per-lane capacity many
// times over while handles 1..3 never ingest: without stall floors
// (ParallelStreamingEngine::PublishStallFloors) the shard merges stay
// gated on the idle lanes' floor-0, producer 0 blocks forever on its
// full lane, and the Drain that would refresh the floors is never
// reached. Drain itself then publishes the frontier bound on the idle
// handles' behalf so the lane merges run fully dry.
TEST(MpscIngestTest, DrainCompletesWithIdleProducers) {
  const EventStream stream = KeyedStream(10000, /*seed=*/13);

  ParallelEngineOptions options;
  options.shard_count = 2;
  options.queue_capacity = 256;
  options.ingest_producers = 4;
  ParallelStreamingEngine engine(options);
  RegisterKeyedQueries(engine);
  ASSERT_TRUE(engine.Start().ok());

  // Only producer 0 ingests; handles 1..3 stay completely idle.
  IngestProducer* handle = engine.producer(0);
  for (const Event& e : stream) ASSERT_TRUE(handle->OnEvent(e).ok());
  ASSERT_TRUE(engine.Drain().ok());
  EXPECT_EQ(engine.events_processed(), stream.size());

  // And ingestion still works after the barrier (the congruence-preserving
  // resync keeps post-barrier stamps above the flushed bound).
  for (const Event& e : stream) ASSERT_TRUE(handle->OnEvent(e).ok());
  ASSERT_TRUE(engine.Drain().ok());
  EXPECT_EQ(engine.events_processed(), 2 * stream.size());
  ASSERT_TRUE(engine.Stop().ok());
}

TEST(MpscIngestTest, RequiresBlockingOverloadPolicy) {
  ParallelEngineOptions options;
  options.shard_count = 2;
  options.ingest_producers = 2;
  options.overload.policy = OverloadPolicy::kShedOldest;
  ParallelStreamingEngine engine(options);
  RegisterKeyedQueries(engine);
  // The admission layer is single-producer; construction latches the
  // error and Start surfaces it.
  EXPECT_FALSE(engine.Start().ok());
}

TEST(MpscIngestTest, BuilderSurfaceEqualsSingleProducer) {
  const EventStream stream = KeyedStream(20000, /*seed=*/21);

  // Single-producer pipeline as the reference.
  size_t reference_detections = 0;
  {
    PipelineBuilder builder;
    for (size_t k = 0; k < kSubjects; ++k) {
      const auto base = static_cast<EventTypeId>(k * kTypesPerSubject);
      (void)builder.AddQuery(MakePattern("seq", {base, base + 1, base + 2},
                                         DetectionMode::kSequence),
                             kWindow);
    }
    auto pipeline_or = builder.WithShards(2).Build();
    ASSERT_TRUE(pipeline_or.ok());
    Pipeline& pipeline = *pipeline_or.value();
    for (const Event& e : stream) ASSERT_TRUE(pipeline.OnEvent(e).ok());
    auto finished = pipeline.Finish();
    ASSERT_TRUE(finished.ok());
    reference_detections = finished.value().total_detections();
    ASSERT_TRUE(pipeline.Stop().ok());
  }
  ASSERT_GT(reference_detections, 0u);

  PipelineBuilder builder;
  for (size_t k = 0; k < kSubjects; ++k) {
    const auto base = static_cast<EventTypeId>(k * kTypesPerSubject);
    (void)builder.AddQuery(MakePattern("seq", {base, base + 1, base + 2},
                                       DetectionMode::kSequence),
                           kWindow);
  }
  auto pipeline_or =
      builder.WithShards(2).WithIngestProducers(2).WithCoreAffinity().Build();
  ASSERT_TRUE(pipeline_or.ok());
  Pipeline& pipeline = *pipeline_or.value();
  ASSERT_EQ(pipeline.producer_count(), 2u);

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (size_t p = 0; p < 2; ++p) {
    threads.emplace_back([&pipeline, &stream, &failed, p] {
      PipelineProducer* handle = pipeline.producer(p);
      for (size_t i = p; i < stream.size(); i += 2) {
        if (!handle->OnEvent(stream.events()[i]).ok()) {
          failed.store(true);
          return;
        }
      }
      handle->PublishFloor();
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_FALSE(failed.load());

  auto finished = pipeline.Finish();
  ASSERT_TRUE(finished.ok());
  EXPECT_EQ(finished.value().total_detections(), reference_detections);
  ASSERT_TRUE(pipeline.Stop().ok());
}

TEST(MpscIngestTest, BuilderRejectsIncompatiblePlans) {
  // MPSC + load shedding: the admission layer is single-producer.
  {
    PipelineBuilder builder;
    (void)builder.AddQuery(MakePattern("p", {0, 1}, DetectionMode::kSequence),
                           kWindow);
    auto result = builder.WithShards(2)
                      .WithIngestProducers(2)
                      .WithOverloadPolicy(OverloadPolicy::kShedOldest)
                      .Build();
    EXPECT_FALSE(result.ok());
  }
}

}  // namespace
}  // namespace pldp
