// Copyright 2026 The PLDP Authors.
//
// Tests for the landmark-privacy baseline: landmark classification, budget
// split between landmark and regular timestamps, history-based estimation,
// and the conversion from pattern-level ε.

#include "ppm/landmark.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace pldp {
namespace {

using testing_util::AddPattern;
using testing_util::MakeWindow;
using testing_util::MakeWorld;
using testing_util::World;

World LandmarkWorld(double epsilon = 2.0) {
  World w = MakeWorld(5);
  AddPattern(&w, "priv", {0, 1}, DetectionMode::kConjunction, true, false);
  AddPattern(&w, "tgt", {2, 3}, DetectionMode::kConjunction, false, true);
  w.epsilon = epsilon;
  return w;
}

LandmarkOptions PinnedOptions(size_t horizon = 100, size_t landmarks = 20) {
  LandmarkOptions opt;
  opt.horizon = horizon;
  opt.landmark_count = landmarks;
  return opt;
}

TEST(LandmarkPpmTest, InitializeValidates) {
  LandmarkPpm ppm(PinnedOptions());
  MechanismContext empty;
  EXPECT_TRUE(ppm.Initialize(empty).IsInvalidArgument());

  World w = LandmarkWorld();
  w.epsilon = -1.0;
  EXPECT_TRUE(ppm.Initialize(w.Context()).IsInvalidArgument());

  LandmarkOptions bad_frac;
  bad_frac.landmark_fraction = 1.0;  // must be < 1
  bad_frac.horizon = 10;
  bad_frac.landmark_count = 5;
  LandmarkPpm bad(bad_frac);
  World ok = LandmarkWorld();
  EXPECT_TRUE(bad.Initialize(ok.Context()).IsInvalidArgument());
}

TEST(LandmarkPpmTest, NeedsHintsOrHistory) {
  World w = LandmarkWorld();
  LandmarkPpm ppm;  // no hints, and the world has no history
  EXPECT_TRUE(ppm.Initialize(w.Context()).IsFailedPrecondition());
}

TEST(LandmarkPpmTest, EstimatesLandmarksFromHistory) {
  World w = LandmarkWorld();
  // History: 4 windows, 2 contain private-pattern types.
  w.history.push_back(MakeWindow(0, {0, 2}));  // landmark (type 0)
  w.history.push_back(MakeWindow(1, {2, 3}));  // regular
  w.history.push_back(MakeWindow(2, {1}));     // landmark (type 1)
  w.history.push_back(MakeWindow(3, {4}));     // regular
  LandmarkPpm ppm;
  ASSERT_TRUE(ppm.Initialize(w.Context()).ok());
  // landmark_count estimated 2, horizon 4 -> per-ts budgets both positive.
  EXPECT_GT(ppm.landmark_epsilon_per_ts(), 0.0);
  EXPECT_GT(ppm.regular_epsilon_per_ts(), 0.0);
}

TEST(LandmarkPpmTest, IsLandmarkDetectsPrivateTypes) {
  World w = LandmarkWorld();
  LandmarkPpm ppm(PinnedOptions());
  ASSERT_TRUE(ppm.Initialize(w.Context()).ok());
  EXPECT_TRUE(ppm.IsLandmark(MakeWindow(0, {0})));
  EXPECT_TRUE(ppm.IsLandmark(MakeWindow(0, {1, 4})));
  EXPECT_FALSE(ppm.IsLandmark(MakeWindow(0, {2, 3, 4})));
  EXPECT_FALSE(ppm.IsLandmark(MakeWindow(0, {})));
}

TEST(LandmarkPpmTest, NativeBudgetMatchesConversion) {
  // span = 2 (longest private pattern), f = 0.5, L = 20:
  // native = ε_p · L / (span · f) = 2.0 · 20 / (2 · 0.5) = 40.
  World w = LandmarkWorld(/*epsilon=*/2.0);
  LandmarkPpm ppm(PinnedOptions(100, 20));
  ASSERT_TRUE(ppm.Initialize(w.Context()).ok());
  EXPECT_NEAR(ppm.native_epsilon(), 40.0, 1e-9);
  // Per-landmark-timestamp: f·native/L = 1.0 = ε_p/span · span... = 1.
  EXPECT_NEAR(ppm.landmark_epsilon_per_ts(), 1.0, 1e-9);
  // Regular: (1-f)·native/(T-L) = 0.5·40/80 = 0.25.
  EXPECT_NEAR(ppm.regular_epsilon_per_ts(), 0.25, 1e-9);
}

TEST(LandmarkPpmTest, PublishesPresenceForAllTypes) {
  World w = LandmarkWorld();
  LandmarkPpm ppm(PinnedOptions());
  ASSERT_TRUE(ppm.Initialize(w.Context()).ok());
  Rng rng(1);
  PublishedView v = ppm.PublishWindow(MakeWindow(0, {0, 2}), &rng).value();
  EXPECT_EQ(v.presence.size(), 5u);
}

TEST(LandmarkPpmTest, RequiresInitialize) {
  LandmarkPpm ppm;
  Rng rng(1);
  EXPECT_TRUE(ppm.PublishWindow(Window{}, &rng).status()
                  .IsFailedPrecondition());
}

TEST(LandmarkPpmTest, HighBudgetTracksTruth) {
  World w = LandmarkWorld(/*epsilon=*/100.0);
  LandmarkPpm ppm(PinnedOptions(50, 10));
  ASSERT_TRUE(ppm.Initialize(w.Context()).ok());
  Rng rng(3);
  int errors = 0;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    bool has2 = (i % 3 == 0);
    Window win = has2 ? MakeWindow(static_cast<size_t>(i), {2})
                      : MakeWindow(static_cast<size_t>(i), {4});
    PublishedView v = ppm.PublishWindow(win, &rng).value();
    if (v.presence[2] != has2) ++errors;
  }
  EXPECT_LT(errors, n / 5);
}

TEST(LandmarkPpmTest, TinyBudgetNoisesEverything) {
  World w = LandmarkWorld(/*epsilon=*/0.02);
  LandmarkPpm ppm(PinnedOptions(1000, 500));
  ASSERT_TRUE(ppm.Initialize(w.Context()).ok());
  Rng rng(5);
  int errors = 0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    PublishedView v =
        ppm.PublishWindow(MakeWindow(static_cast<size_t>(i), {2}), &rng)
            .value();
    if (v.presence[4] || !v.presence[2]) ++errors;
  }
  EXPECT_GT(errors, 20);
}

TEST(LandmarkPpmTest, ResetRestoresInitialState) {
  World w = LandmarkWorld();
  LandmarkPpm ppm(PinnedOptions());
  ASSERT_TRUE(ppm.Initialize(w.Context()).ok());
  Rng ra(7);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        ppm.PublishWindow(MakeWindow(static_cast<size_t>(i), {0, 2}), &ra)
            .ok());
  }
  ppm.Reset();
  // After reset, identical rng seed reproduces the original first output.
  LandmarkPpm fresh(PinnedOptions());
  ASSERT_TRUE(fresh.Initialize(w.Context()).ok());
  Rng r1(9);
  Rng r2(9);
  EXPECT_EQ(ppm.PublishWindow(MakeWindow(0, {0, 2}), &r1).value().presence,
            fresh.PublishWindow(MakeWindow(0, {0, 2}), &r2).value().presence);
}

}  // namespace
}  // namespace pldp
