// Copyright 2026 The PLDP Authors.
//
// Tests for the exponential mechanism: selection distribution, the ε-DP
// ratio bound, and empirical agreement with the analytic probabilities.

#include "dp/exponential.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pldp {
namespace {

TEST(ExponentialMechanismTest, CreateValidates) {
  EXPECT_TRUE(ExponentialMechanism::Create(1.0, 1.0).ok());
  EXPECT_FALSE(ExponentialMechanism::Create(0.0, 1.0).ok());
  EXPECT_FALSE(ExponentialMechanism::Create(1.0, 0.0).ok());
  EXPECT_FALSE(ExponentialMechanism::Create(-1.0, 1.0).ok());
}

TEST(ExponentialMechanismTest, ProbabilitiesNormalizedAndOrdered) {
  auto mech = ExponentialMechanism::Create(2.0, 1.0).value();
  auto probs = mech.SelectionProbabilities({3.0, 1.0, 2.0}).value();
  ASSERT_EQ(probs.size(), 3u);
  double total = probs[0] + probs[1] + probs[2];
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Higher utility => higher probability.
  EXPECT_GT(probs[0], probs[2]);
  EXPECT_GT(probs[2], probs[1]);
}

TEST(ExponentialMechanismTest, EqualUtilitiesUniform) {
  auto mech = ExponentialMechanism::Create(1.0, 1.0).value();
  auto probs = mech.SelectionProbabilities({5.0, 5.0, 5.0, 5.0}).value();
  for (double p : probs) EXPECT_NEAR(p, 0.25, 1e-12);
}

TEST(ExponentialMechanismTest, KnownRatio) {
  // P(i)/P(j) = exp(ε (u_i - u_j) / (2Δu)).
  auto mech = ExponentialMechanism::Create(2.0, 1.0).value();
  auto probs = mech.SelectionProbabilities({1.0, 0.0}).value();
  EXPECT_NEAR(probs[0] / probs[1], std::exp(1.0), 1e-9);
}

TEST(ExponentialMechanismTest, ValidatesUtilities) {
  auto mech = ExponentialMechanism::Create(1.0, 1.0).value();
  EXPECT_FALSE(mech.SelectionProbabilities({}).ok());
  EXPECT_FALSE(mech.SelectionProbabilities(
                       {1.0, std::numeric_limits<double>::infinity()})
                   .ok());
  Rng rng(1);
  EXPECT_FALSE(mech.Select({1.0}, nullptr).ok());
}

TEST(ExponentialMechanismTest, StableUnderLargeUtilities) {
  // The max-subtraction must prevent overflow.
  auto mech = ExponentialMechanism::Create(1.0, 1.0).value();
  auto probs = mech.SelectionProbabilities({1e6, 1e6 - 1.0}).value();
  EXPECT_NEAR(probs[0] + probs[1], 1.0, 1e-12);
  EXPECT_GT(probs[0], probs[1]);
}

TEST(ExponentialMechanismTest, EmpiricalSelectionMatchesAnalytic) {
  auto mech = ExponentialMechanism::Create(1.5, 1.0).value();
  std::vector<double> utilities{2.0, 0.5, 1.0};
  auto probs = mech.SelectionProbabilities(utilities).value();
  Rng rng(42);
  const int n = 100000;
  std::vector<int> counts(3, 0);
  for (int i = 0; i < n; ++i) {
    ++counts[mech.Select(utilities, &rng).value()];
  }
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, probs[i], 0.01)
        << "candidate " << i;
  }
}

TEST(ExponentialMechanismTest, DpRatioBoundHolds) {
  // For neighboring utility vectors (each utility moves by at most Δu),
  // the selection probability of any candidate changes by at most e^ε.
  const double eps = 1.0;
  auto mech = ExponentialMechanism::Create(eps, 1.0).value();
  std::vector<double> u1{3.0, 1.0, 2.0};
  std::vector<double> u2{2.0, 2.0, 1.0};  // each moved by exactly Δu = 1
  auto p1 = mech.SelectionProbabilities(u1).value();
  auto p2 = mech.SelectionProbabilities(u2).value();
  for (size_t i = 0; i < p1.size(); ++i) {
    EXPECT_LE(std::abs(std::log(p1[i] / p2[i])), eps + 1e-9)
        << "candidate " << i;
  }
}

/// Higher ε concentrates on the argmax.
class ExponentialEpsilonSweep : public ::testing::TestWithParam<double> {};

TEST_P(ExponentialEpsilonSweep, ArgmaxProbabilityGrowsWithEpsilon) {
  double eps = GetParam();
  auto loose = ExponentialMechanism::Create(eps, 1.0).value();
  auto tight = ExponentialMechanism::Create(eps * 4.0, 1.0).value();
  std::vector<double> u{1.0, 0.0, 0.0};
  double p_loose = loose.SelectionProbabilities(u).value()[0];
  double p_tight = tight.SelectionProbabilities(u).value()[0];
  EXPECT_GT(p_tight, p_loose);
}

INSTANTIATE_TEST_SUITE_P(Budgets, ExponentialEpsilonSweep,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0));

}  // namespace
}  // namespace pldp
