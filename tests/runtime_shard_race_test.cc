// Copyright 2026 The PLDP Authors.
//
// Pins the Shard exchange-hook registration race: AddExchange (orchestrator,
// pre-Start) grows the hook vector while stats() / exchange_count() scrapes
// may run from any thread at any time. The fix routes every hook-list read
// through `reg_mu_` and hands the worker a one-time snapshot at startup
// (src/runtime/shard.h, `SnapshotHooks`). Before the fix, a scrape racing a
// registration read a std::vector mid-growth — undefined behavior that TSan
// flags reliably; this test is the regression pin (it runs in the TSan CI
// job like every other test).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/exchange.h"
#include "runtime/shard.h"

namespace pldp {
namespace {

constexpr uint64_t kSeed = 0x5eedc0deULL;

TEST(ShardRaceTest, StatsScrapeRacingExchangeRegistration) {
  constexpr size_t kRounds = 32;
  constexpr size_t kHooks = 4;

  for (size_t round = 0; round < kRounds; ++round) {
    Shard shard(0, 64, kSeed + round);
    std::vector<std::unique_ptr<ExchangeFabric>> fabrics;

    std::atomic<bool> stop{false};
    std::atomic<size_t> scrapes{0};
    std::thread scraper([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const ShardStats stats = shard.stats();
        ASSERT_EQ(stats.shard_index, 0u);
        const size_t count = shard.exchange_count();
        ASSERT_LE(count, kHooks);
        scrapes.fetch_add(1, std::memory_order_relaxed);
      }
    });

    // Registrations are microseconds of work; without this the scraper may
    // not even be scheduled before they finish and the round tests nothing.
    while (scrapes.load(std::memory_order_relaxed) == 0) {
      std::this_thread::yield();
    }

    for (size_t i = 0; i < kHooks; ++i) {
      fabrics.push_back(std::make_unique<ExchangeFabric>(1, 1, 64));
      auto emitter = std::make_unique<ExchangeEmitter>(
          fabrics.back()->Row(0), nullptr, fabrics.back().get());
      ASSERT_TRUE(
          shard.AddExchange(std::move(emitter), /*forward_raw_events=*/false)
              .ok());
    }

    stop.store(true, std::memory_order_release);
    scraper.join();

    EXPECT_EQ(shard.exchange_count(), kHooks);
    EXPECT_GT(scrapes.load(), 0u);
  }
}

TEST(ShardRaceTest, WorkerSnapshotSurvivesConcurrentScrapes) {
  // A running worker iterates its startup snapshot of the hook list while
  // scrape threads take the registration mutex — the two must not contend
  // or race. Sink-driven hooks only (nothing drains the lanes here).
  Shard shard(0, 64, kSeed);
  ExchangeFabric fabric(1, 1, 64);
  auto emitter =
      std::make_unique<ExchangeEmitter>(fabric.Row(0), nullptr, &fabric);
  ASSERT_TRUE(
      shard.AddExchange(std::move(emitter), /*forward_raw_events=*/false)
          .ok());
  ASSERT_TRUE(shard.Start().ok());

  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)shard.stats();
      (void)shard.exchange_count();
    }
  });

  for (uint64_t i = 0; i < 512; ++i) {
    ASSERT_TRUE(
        shard.Push(Event(/*type=*/0, static_cast<Timestamp>(i))).ok());
  }
  ASSERT_TRUE(shard.Drain().ok());

  stop.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_EQ(shard.stats().events_processed, 512u);
  ASSERT_TRUE(shard.Stop().ok());
}

}  // namespace
}  // namespace pldp
