// Copyright 2026 The PLDP Authors.
//
// Allocation-regression pin for the zero-allocation data plane: after
// warmup, the sharded plain pipeline must process events carrying interned
// attributes with ZERO heap allocations — across the router, the staging
// buffers, the SPSC queues, and the per-shard engines, worker threads
// included. The measurement uses the same operator-new counting hook the
// bench harness ships (bench/bench_util.h); under sanitizer builds the
// hook is inactive and the test skips (the sanitizer owns the allocator).
//
// The measured segment emits only pattern prefixes (never a completion),
// so matcher detection vectors — which legitimately grow with results —
// stay quiet and the assertion can be exact, not approximate.

#define PLDP_ENABLE_ALLOC_HOOK
#include "bench/bench_util.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "event/symbol_table.h"
#include "obs/metrics.h"
#include "runtime/parallel_engine.h"
#include "stream/event_stream.h"

namespace pldp {
namespace {

constexpr size_t kSubjects = 8;
constexpr size_t kTypesPerSubject = 3;
constexpr Timestamp kWindow = 4;

/// `full_alphabet` draws all three per-subject types (warmup: completions
/// happen, detection vectors and staging buffers grow); the measurement
/// stream draws only the first two (prefix updates, no completions, no
/// growth). `ts_base` keeps timestamps monotone across the two segments.
EventStream MakeStream(size_t num_events, bool full_alphabet,
                       Timestamp ts_base, uint64_t seed) {
  const AttrId cell = AttrNames().Intern("alloc_test_cell");
  const AttrId zone = AttrNames().Intern("alloc_test_zone");
  const Value zones[2] = {Value::Sym("alloc-test-zone-east"),
                          Value::Sym("alloc-test-zone-west")};
  Rng rng(seed);
  EventStream stream;
  stream.Reserve(num_events);
  const size_t alphabet = full_alphabet ? kTypesPerSubject
                                        : kTypesPerSubject - 1;
  for (size_t i = 0; i < num_events; ++i) {
    const auto subject = static_cast<StreamId>(rng.UniformUint64(kSubjects));
    const auto type = static_cast<EventTypeId>(
        subject * kTypesPerSubject + rng.UniformUint64(alphabet));
    Event e(type, ts_base + static_cast<Timestamp>(i / 8), subject);
    e.SetAttribute(cell, Value(static_cast<int64_t>(i % 64)));
    e.SetAttribute(zone, zones[i % 2]);
    stream.AppendUnchecked(std::move(e));
  }
  return stream;
}

Status IngestBatched(ParallelStreamingEngine& engine,
                     const EventStream& stream) {
  constexpr size_t kBatch = 1024;
  const std::vector<Event>& events = stream.events();
  for (size_t i = 0; i < events.size(); i += kBatch) {
    const size_t n = std::min(kBatch, events.size() - i);
    PLDP_RETURN_IF_ERROR(engine.OnEventBatch(EventSpan(events.data() + i, n)));
  }
  return Status::OK();
}

TEST(AllocRegressionTest, ShardedPlainPipelineSteadyStateIsAllocationFree) {
  if (!bench::kAllocHookActive) {
    GTEST_SKIP() << "allocation hook inactive under sanitizers";
  }

  ParallelEngineOptions options;
  options.shard_count = 2;
  options.queue_capacity = 4096;
  ParallelStreamingEngine engine(options);
  for (size_t k = 0; k < kSubjects; ++k) {
    const auto base = static_cast<EventTypeId>(k * kTypesPerSubject);
    auto pattern = Pattern::Create("seq", {base, base + 1, base + 2},
                                   DetectionMode::kSequence);
    ASSERT_TRUE(pattern.ok());
    ASSERT_TRUE(engine.AddQuery(std::move(pattern).value(), kWindow).ok());
  }
  ASSERT_TRUE(engine.Start().ok());

  // Warmup: completions occur, every buffer reaches steady-state capacity.
  const EventStream warmup =
      MakeStream(40000, /*full_alphabet=*/true, /*ts_base=*/0, /*seed=*/7);
  ASSERT_TRUE(IngestBatched(engine, warmup).ok());
  ASSERT_TRUE(engine.Drain().ok());

  // Steady state: batched AND per-event ingest, drains included — all of
  // it allocation-free. Streams are built before counting starts (event
  // construction interns and may grow the stream vector; the data plane
  // under test is everything from OnEvent on).
  const Timestamp warm_end = 40000 / 8 + 1;
  const EventStream batched =
      MakeStream(50000, /*full_alphabet=*/false, warm_end, /*seed=*/11);
  const EventStream per_event =
      MakeStream(10000, /*full_alphabet=*/false, warm_end + 50000 / 8 + 1,
                 /*seed=*/13);

  bench::ResetAllocCounters();
  bench::SetAllocCounting(true);
  ASSERT_TRUE(IngestBatched(engine, batched).ok());
  ASSERT_TRUE(engine.Drain().ok());
  for (const Event& e : per_event) {
    ASSERT_TRUE(engine.OnEvent(e).ok());
  }
  ASSERT_TRUE(engine.Drain().ok());
  bench::SetAllocCounting(false);

  const bench::AllocCounters counters = bench::GetAllocCounters();
  EXPECT_EQ(counters.allocs, 0u)
      << "steady-state hot path allocated " << counters.allocs << " times ("
      << counters.bytes << " bytes) across "
      << (batched.size() + per_event.size()) << " events";

  EXPECT_EQ(engine.events_processed(),
            warmup.size() + batched.size() + per_event.size());
  ASSERT_TRUE(engine.Stop().ok());
}

// Telemetry must not break the zero-allocation guarantee: with every
// instrument wired (counters, latency histograms, queue gauges), the
// steady-state hot path still performs ZERO heap allocations — instrument
// updates are relaxed atomics on pre-registered slots, never lookups.
TEST(AllocRegressionTest, MetricsEnabledSteadyStateIsAllocationFree) {
  if (!bench::kAllocHookActive) {
    GTEST_SKIP() << "allocation hook inactive under sanitizers";
  }

  ParallelEngineOptions options;
  options.shard_count = 2;
  options.queue_capacity = 4096;
  ParallelStreamingEngine engine(options);
  for (size_t k = 0; k < kSubjects; ++k) {
    const auto base = static_cast<EventTypeId>(k * kTypesPerSubject);
    auto pattern = Pattern::Create("seq", {base, base + 1, base + 2},
                                   DetectionMode::kSequence);
    ASSERT_TRUE(pattern.ok());
    ASSERT_TRUE(engine.AddQuery(std::move(pattern).value(), kWindow).ok());
  }
  obs::MetricsRegistry registry;
  ASSERT_TRUE(engine.EnableMetrics(&registry, "plain").ok());
  ASSERT_TRUE(engine.Start().ok());

  const EventStream warmup =
      MakeStream(40000, /*full_alphabet=*/true, /*ts_base=*/0, /*seed=*/7);
  ASSERT_TRUE(IngestBatched(engine, warmup).ok());
  ASSERT_TRUE(engine.Drain().ok());

  const Timestamp warm_end = 40000 / 8 + 1;
  const EventStream batched =
      MakeStream(50000, /*full_alphabet=*/false, warm_end, /*seed=*/11);

  bench::ResetAllocCounters();
  bench::SetAllocCounting(true);
  ASSERT_TRUE(IngestBatched(engine, batched).ok());
  ASSERT_TRUE(engine.Drain().ok());
  bench::SetAllocCounting(false);

  const bench::AllocCounters counters = bench::GetAllocCounters();
  EXPECT_EQ(counters.allocs, 0u)
      << "metrics-enabled hot path allocated " << counters.allocs
      << " times (" << counters.bytes << " bytes) across " << batched.size()
      << " events";

  // The instruments reconciled exactly while staying allocation-free.
  engine.RefreshMetricGauges();
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  const size_t total = warmup.size() + batched.size();
  EXPECT_EQ(obs::SumSamples(snapshot.Find("pldp_shard_events_total")),
            static_cast<double>(total));
  EXPECT_EQ(
      obs::AggregateHistogram(snapshot.Find("pldp_shard_process_latency_ns"))
          .count,
      static_cast<uint64_t>(total));
  ASSERT_TRUE(engine.Stop().ok());
}

/// Cross-subject variant of MakeStream for the exchange pipeline: the
/// type is drawn from a per-group alphabet while the subject is drawn
/// independently, and every event carries the group as an inline int
/// attribute (`grp`) — the exchange correlation key. Prefix-only
/// measurement streams draw only the first two types of each group, so
/// the registered sequences never complete and detection vectors stay
/// quiet.
EventStream MakeCrossStream(size_t num_events, bool full_alphabet,
                            Timestamp ts_base, uint64_t seed) {
  const AttrId grp = AttrNames().Intern("grp");
  Rng rng(seed);
  EventStream stream;
  stream.Reserve(num_events);
  const size_t alphabet = full_alphabet ? kTypesPerSubject
                                        : kTypesPerSubject - 1;
  for (size_t i = 0; i < num_events; ++i) {
    const auto group = rng.UniformUint64(kSubjects);
    const auto type = static_cast<EventTypeId>(
        group * kTypesPerSubject + rng.UniformUint64(alphabet));
    const auto subject = static_cast<StreamId>(rng.UniformUint64(kSubjects));
    Event e(type, ts_base + static_cast<Timestamp>(i / 8), subject);
    e.SetAttribute(grp, Value(static_cast<int64_t>(group)));
    stream.AppendUnchecked(std::move(e));
  }
  return stream;
}

// The two-stage exchange pipeline must hold the same steady-state
// contract as the plain pipeline: after warmup, batched ingest through a
// 2x2 topology (2 stage-1 shards emitting over the lane matrix into 2
// watermark-gated merge shards) stays allocation-free up to a small
// drain-barrier allowance. This pins the merge-shard reorder-ring
// pre-sizing: before the rings were pre-sized from the per-lane credit
// budget, every reorder past the initial capacity grew a heap ring —
// a per-event cost this assertion would catch immediately.
TEST(AllocRegressionTest, ExchangePipelineSteadyStateIsAllocationFree) {
  if (!bench::kAllocHookActive) {
    GTEST_SKIP() << "allocation hook inactive under sanitizers";
  }

  ParallelEngineOptions options;
  options.shard_count = 2;
  options.queue_capacity = 4096;
  options.exchange.enabled = true;
  options.exchange.shard_count = 2;
  options.exchange.lane_capacity = 1024;
  options.exchange.key = CorrelationKeySpec::ByAttribute("grp");
  ParallelStreamingEngine engine(options);
  for (size_t k = 0; k < kSubjects; ++k) {
    const auto base = static_cast<EventTypeId>(k * kTypesPerSubject);
    auto pattern = Pattern::Create("seq", {base, base + 1, base + 2},
                                   DetectionMode::kSequence);
    ASSERT_TRUE(pattern.ok());
    ASSERT_TRUE(
        engine.AddCrossQuery(std::move(pattern).value(), kWindow).ok());
  }
  ASSERT_TRUE(engine.Start().ok());

  // Warmup: completions occur; queues, staging buffers, exchange lanes,
  // and the merge reorder rings all reach steady-state capacity.
  const EventStream warmup = MakeCrossStream(40000, /*full_alphabet=*/true,
                                             /*ts_base=*/0, /*seed=*/17);
  ASSERT_TRUE(IngestBatched(engine, warmup).ok());
  ASSERT_TRUE(engine.Drain().ok());

  const Timestamp warm_end = 40000 / 8 + 1;
  const EventStream batched =
      MakeCrossStream(50000, /*full_alphabet=*/false, warm_end, /*seed=*/19);

  bench::ResetAllocCounters();
  bench::SetAllocCounting(true);
  ASSERT_TRUE(IngestBatched(engine, batched).ok());
  ASSERT_TRUE(engine.Drain().ok());
  bench::SetAllocCounting(false);

  const bench::AllocCounters counters = bench::GetAllocCounters();
  // The drain barrier's watermark round-trip may allocate O(shards) small
  // bookkeeping nodes; per-EVENT costs would blow through this bound by
  // three orders of magnitude (0.007 allocs/event over 50k events = 350).
  const double per_event = static_cast<double>(counters.allocs) /
                           static_cast<double>(batched.size());
  EXPECT_LE(per_event, 0.007)
      << "exchange steady state allocated " << counters.allocs << " times ("
      << counters.bytes << " bytes) across " << batched.size() << " events";

  ASSERT_TRUE(engine.Stop().ok());
}

TEST(AllocRegressionTest, EventCopyWithInlineInternedAttrsIsAllocationFree) {
  if (!bench::kAllocHookActive) {
    GTEST_SKIP() << "allocation hook inactive under sanitizers";
  }
  Event e(3, 17, 5);
  e.SetAttribute("alloc_test_cell", Value(int64_t{12}));
  e.SetAttribute("alloc_test_zone", Value::Sym("alloc-test-zone-east"));

  bench::ResetAllocCounters();
  bench::SetAllocCounting(true);
  Event copy = e;            // flyweight copy
  Event assigned;
  assigned = copy;           // and copy-assignment
  bench::SetAllocCounting(false);

  EXPECT_EQ(assigned, e);
  EXPECT_EQ(bench::GetAllocCounters().allocs, 0u);
}

}  // namespace
}  // namespace pldp
