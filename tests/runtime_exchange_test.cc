// Copyright 2026 The PLDP Authors.
//
// Tests for the repartition/exchange stage (runtime/exchange.h,
// runtime/merge_shard.h, and the two-stage ParallelStreamingEngine).
//
// The central property: for streams whose cross-subject matches are
// key-local — every event of a potential match shares the correlation
// key — the exchange pipeline produces exactly the same per-query
// detection sequence as one sequential StreamingCepEngine over the whole
// stream, for every (stage-1, stage-2) shard combination. The merge
// releases events in exact ingest order, so the equality is positional,
// not just multiset. Edge cases pinned here: empty stage-1 shards, all
// keys hashing to one stage-2 shard (skew), zero-event streams, and drain
// barriers with events still in flight on the exchange lanes.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "cep/correlation_key.h"
#include "cep/streaming_engine.h"
#include "common/random.h"
#include "runtime/parallel_engine.h"
#include "stream/event_stream.h"
#include "stream/replay.h"

namespace pldp {
namespace {

constexpr size_t kTypesPerGroup = 3;
constexpr Timestamp kWindow = 6;

Pattern MakePattern(const char* name, std::vector<EventTypeId> elems,
                    DetectionMode mode) {
  return Pattern::Create(name, std::move(elems), mode).value();
}

/// A cross-subject stream: every event carries a `grp` attribute and a
/// type from that group's private alphabet, but subjects are drawn
/// independently — so group matches span many subjects and no stage-1
/// shard ever sees a whole match. Matches are key-local by construction
/// (group alphabets are disjoint).
EventStream CrossSubjectStream(size_t groups, size_t subjects,
                               size_t num_events, uint64_t seed) {
  Rng rng(seed);
  EventStream stream;
  stream.Reserve(num_events);
  for (size_t i = 0; i < num_events; ++i) {
    const auto group = rng.UniformUint64(groups);
    const auto type = static_cast<EventTypeId>(
        group * kTypesPerGroup + rng.UniformUint64(kTypesPerGroup));
    const auto subject = static_cast<StreamId>(rng.UniformUint64(subjects));
    Event event(type, static_cast<Timestamp>(i / 4), subject);
    event.SetAttribute("grp", Value(static_cast<int64_t>(group)));
    stream.AppendUnchecked(std::move(event));
  }
  return stream;
}

/// One sequence and one conjunction query per group, over the group's
/// alphabet (works for both engine types via their AddQuery/AddCrossQuery).
template <typename AddFn>
void RegisterGroupQueries(AddFn add, size_t groups) {
  for (size_t g = 0; g < groups; ++g) {
    const auto base = static_cast<EventTypeId>(g * kTypesPerGroup);
    ASSERT_TRUE(add(MakePattern("seq", {base, base + 1, base + 2},
                                DetectionMode::kSequence),
                    kWindow)
                    .ok());
    ASSERT_TRUE(add(MakePattern("conj", {base + 2, base},
                                DetectionMode::kConjunction),
                    kWindow)
                    .ok());
  }
}

/// Sequential reference over the full stream.
StreamingCepEngine MakeReference(const EventStream& stream, size_t groups) {
  StreamingCepEngine reference;
  RegisterGroupQueries(
      [&reference](Pattern p, Timestamp w) {
        return reference.AddQuery(std::move(p), w);
      },
      groups);
  for (const Event& e : stream) EXPECT_TRUE(reference.OnEvent(e).ok());
  return reference;
}

ParallelEngineOptions ExchangeConfig(size_t stage1, size_t stage2,
                                     CorrelationKeySpec key) {
  ParallelEngineOptions options;
  options.shard_count = stage1;
  options.queue_capacity = 128;
  options.exchange.enabled = true;
  options.exchange.shard_count = stage2;
  options.exchange.lane_capacity = 64;  // small: exercise lane backpressure
  options.exchange.key = std::move(key);
  return options;
}

TEST(ExchangeEngineTest, CrossDetectionsEqualSequentialEngine) {
  constexpr size_t kGroups = 6;
  const EventStream stream =
      CrossSubjectStream(kGroups, /*subjects=*/32, 20000, /*seed=*/7);
  const StreamingCepEngine reference = MakeReference(stream, kGroups);
  ASSERT_GT(reference.total_detections(), 0u)
      << "degenerate test: the reference detected nothing";

  for (const auto& [stage1, stage2] :
       std::vector<std::pair<size_t, size_t>>{
           {1, 1}, {2, 2}, {4, 4}, {1, 4}, {4, 1}, {2, 3}}) {
    ParallelEngineOptions options = ExchangeConfig(
        stage1, stage2, CorrelationKeySpec::ByAttribute("grp"));
    ParallelStreamingEngine engine(options);
    RegisterGroupQueries(
        [&engine](Pattern p, Timestamp w) {
          return engine.AddCrossQuery(std::move(p), w);
        },
        kGroups);
    ASSERT_TRUE(engine.Start().ok());

    StreamReplayer replayer;
    replayer.Subscribe(&engine);
    // Run ends with OnEnd → Drain across both stages.
    ASSERT_TRUE(replayer.Run(stream, stage1 % 2 == 0
                                         ? ReplayMode::kBatchPerTick
                                         : ReplayMode::kPerEvent)
                    .ok());

    EXPECT_EQ(engine.total_cross_detections(),
              reference.total_detections())
        << "stage1=" << stage1 << " stage2=" << stage2;
    for (size_t q = 0; q < engine.cross_query_count(); ++q) {
      EXPECT_EQ(engine.CrossDetectionsOf(q).value(),
                reference.DetectionsOf(q).value())
          << "stage1=" << stage1 << " stage2=" << stage2 << " query=" << q;
    }
    // Every ingested event crossed the fabric exactly once (raw-forward
    // mode), whatever the topology.
    size_t forwarded = 0;
    for (const ShardStats& s : engine.ShardStatsSnapshot()) {
      forwarded += s.forwarded;
    }
    EXPECT_EQ(forwarded, stream.size());
    size_t merged = 0;
    for (const ShardStats& s : engine.CrossShardStatsSnapshot()) {
      merged += s.events_processed;
    }
    EXPECT_EQ(merged, stream.size());
    ASSERT_TRUE(engine.Stop().ok());
  }
}

// Satellite edge case: the global key hashes everything onto ONE stage-2
// shard — maximal skew. The other merge shards stay empty and must neither
// stall the drain barrier nor corrupt results.
TEST(ExchangeEngineTest, GlobalKeySkewsToSingleMergeShard) {
  constexpr size_t kGroups = 4;
  const EventStream stream =
      CrossSubjectStream(kGroups, /*subjects=*/16, 8000, /*seed=*/13);
  const StreamingCepEngine reference = MakeReference(stream, kGroups);

  ParallelEngineOptions options =
      ExchangeConfig(/*stage1=*/3, /*stage2=*/4, CorrelationKeySpec::Global());
  ParallelStreamingEngine engine(options);
  RegisterGroupQueries(
      [&engine](Pattern p, Timestamp w) {
        return engine.AddCrossQuery(std::move(p), w);
      },
      kGroups);
  ASSERT_TRUE(engine.Start().ok());
  for (const Event& e : stream) ASSERT_TRUE(engine.OnEvent(e).ok());
  ASSERT_TRUE(engine.Drain().ok());

  size_t busy_shards = 0;
  for (const ShardStats& s : engine.CrossShardStatsSnapshot()) {
    if (s.events_processed > 0) {
      ++busy_shards;
      EXPECT_EQ(s.events_processed, stream.size());
    }
  }
  EXPECT_EQ(busy_shards, 1u);
  for (size_t q = 0; q < engine.cross_query_count(); ++q) {
    EXPECT_EQ(engine.CrossDetectionsOf(q).value(),
              reference.DetectionsOf(q).value())
        << "query=" << q;
  }
  ASSERT_TRUE(engine.Stop().ok());
}

// Satellite edge case: more stage-1 shards than subjects, so some stage-1
// shards never receive a single event. Their exchange rows only ever carry
// watermarks; the merge must still release everything.
TEST(ExchangeEngineTest, EmptyStageOneShardsDoNotStallTheMerge) {
  constexpr size_t kGroups = 3;
  // One subject: exactly one stage-1 shard of 6 gets traffic.
  const EventStream stream =
      CrossSubjectStream(kGroups, /*subjects=*/1, 6000, /*seed=*/29);
  const StreamingCepEngine reference = MakeReference(stream, kGroups);
  ASSERT_GT(reference.total_detections(), 0u);

  ParallelEngineOptions options = ExchangeConfig(
      /*stage1=*/6, /*stage2=*/2, CorrelationKeySpec::ByAttribute("grp"));
  ParallelStreamingEngine engine(options);
  RegisterGroupQueries(
      [&engine](Pattern p, Timestamp w) {
        return engine.AddCrossQuery(std::move(p), w);
      },
      kGroups);
  ASSERT_TRUE(engine.Start().ok());
  for (const Event& e : stream) ASSERT_TRUE(engine.OnEvent(e).ok());
  ASSERT_TRUE(engine.Drain().ok());

  size_t idle_shards = 0;
  for (const ShardStats& s : engine.ShardStatsSnapshot()) {
    if (s.events_processed == 0) ++idle_shards;
  }
  EXPECT_GE(idle_shards, 5u);  // all but the one subject's shard
  for (size_t q = 0; q < engine.cross_query_count(); ++q) {
    EXPECT_EQ(engine.CrossDetectionsOf(q).value(),
              reference.DetectionsOf(q).value())
        << "query=" << q;
  }
  ASSERT_TRUE(engine.Stop().ok());
}

// Liveness regression for the same skew: with five silent stage-1 shards,
// the merge must progress *between* barriers, not only at them. Idle
// shards learn the stream's progress from the router's producer floor and
// keep watermarking their lanes; without that, nothing merges until
// Drain() and this poll loop times out.
TEST(ExchangeEngineTest, SilentShardsDoNotStallMergeBetweenBarriers) {
  constexpr size_t kGroups = 3;
  const EventStream stream =
      CrossSubjectStream(kGroups, /*subjects=*/1, 6000, /*seed=*/59);

  ParallelEngineOptions options = ExchangeConfig(
      /*stage1=*/6, /*stage2=*/2, CorrelationKeySpec::ByAttribute("grp"));
  ParallelStreamingEngine engine(options);
  RegisterGroupQueries(
      [&engine](Pattern p, Timestamp w) {
        return engine.AddCrossQuery(std::move(p), w);
      },
      kGroups);
  ASSERT_TRUE(engine.Start().ok());
  // Per-event ingest crosses the floor-publication period (1024) several
  // times; no drain yet.
  for (const Event& e : stream) ASSERT_TRUE(engine.OnEvent(e).ok());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  size_t merged = 0;
  while (merged == 0 && std::chrono::steady_clock::now() < deadline) {
    for (const ShardStats& s : engine.CrossShardStatsSnapshot()) {
      merged += s.events_processed;
    }
    if (merged == 0) std::this_thread::yield();
  }
  EXPECT_GT(merged, 0u) << "merge made no progress without a drain barrier";
  ASSERT_TRUE(engine.Drain().ok());
  ASSERT_TRUE(engine.Stop().ok());
}

// Satellite edge case: a zero-event stream must flow end-of-stream through
// both stages (replayer OnEnd → drain barrier at bound 0) without hanging.
TEST(ExchangeEngineTest, ZeroEventStream) {
  ParallelEngineOptions options = ExchangeConfig(
      /*stage1=*/2, /*stage2=*/2, CorrelationKeySpec::ByAttribute("grp"));
  ParallelStreamingEngine engine(options);
  ASSERT_TRUE(engine
                  .AddCrossQuery(MakePattern("p", {0, 1},
                                             DetectionMode::kSequence),
                                 kWindow)
                  .ok());
  ASSERT_TRUE(engine.Start().ok());

  StreamReplayer replayer;
  replayer.Subscribe(&engine);
  ASSERT_TRUE(replayer.Run(EventStream()).ok());

  EXPECT_EQ(engine.events_processed(), 0u);
  EXPECT_EQ(engine.total_cross_detections(), 0u);
  EXPECT_TRUE(engine.CrossDetectionsOf(0).value().empty());
  ASSERT_TRUE(engine.Finish().ok());  // sealing an empty pipeline is fine
  ASSERT_TRUE(engine.Stop().ok());
}

// Satellite edge case: Drain() while the exchange lanes are still full of
// in-flight events must block until stage-2 processed them — and ingestion
// may continue afterwards, across repeated drain cycles.
TEST(ExchangeEngineTest, DrainWithInFlightExchangeLanes) {
  constexpr size_t kGroups = 4;
  const EventStream stream =
      CrossSubjectStream(kGroups, /*subjects=*/16, 12000, /*seed=*/43);
  const size_t half = stream.size() / 2;

  // Separate references for the prefix and the full stream (incremental
  // matching is causal, so prefix detections are a true snapshot).
  StreamingCepEngine prefix_reference;
  RegisterGroupQueries(
      [&prefix_reference](Pattern p, Timestamp w) {
        return prefix_reference.AddQuery(std::move(p), w);
      },
      kGroups);
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(prefix_reference.OnEvent(stream[i]).ok());
  }
  const StreamingCepEngine full_reference = MakeReference(stream, kGroups);

  ParallelEngineOptions options = ExchangeConfig(
      /*stage1=*/2, /*stage2=*/3, CorrelationKeySpec::ByAttribute("grp"));
  ParallelStreamingEngine engine(options);
  RegisterGroupQueries(
      [&engine](Pattern p, Timestamp w) {
        return engine.AddCrossQuery(std::move(p), w);
      },
      kGroups);
  ASSERT_TRUE(engine.Start().ok());

  // Burst the whole prefix in and drain immediately: the barrier races
  // events sitting in stage-1 queues, exchange lanes, and reorder buffers.
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(engine.OnEvent(stream[i]).ok());
  }
  ASSERT_TRUE(engine.Drain().ok());
  EXPECT_EQ(engine.total_cross_detections(),
            prefix_reference.total_detections());
  for (size_t q = 0; q < engine.cross_query_count(); ++q) {
    EXPECT_EQ(engine.CrossDetectionsOf(q).value(),
              prefix_reference.DetectionsOf(q).value())
        << "after first drain, query=" << q;
  }

  // Ingestion continues after the barrier; a second drain must account for
  // everything.
  for (size_t i = half; i < stream.size(); ++i) {
    ASSERT_TRUE(engine.OnEvent(stream[i]).ok());
  }
  ASSERT_TRUE(engine.Drain().ok());
  for (size_t q = 0; q < engine.cross_query_count(); ++q) {
    EXPECT_EQ(engine.CrossDetectionsOf(q).value(),
              full_reference.DetectionsOf(q).value())
        << "after second drain, query=" << q;
  }
  ASSERT_TRUE(engine.Stop().ok());
}

// Stage-1 (per-subject) and stage-2 (cross-subject) queries coexist in one
// pipeline: per-subject sequences over subject alphabets, plus a
// disjunction watching single types across all subjects (single-event
// matches are key-local under any correlation key).
TEST(ExchangeEngineTest, StageOneAndCrossQueriesCoexist) {
  constexpr size_t kSubjects = 8;
  Rng rng(11);
  EventStream stream;
  for (size_t i = 0; i < 10000; ++i) {
    const auto subject = static_cast<StreamId>(rng.UniformUint64(kSubjects));
    const auto type = static_cast<EventTypeId>(
        subject * kTypesPerGroup + rng.UniformUint64(kTypesPerGroup));
    stream.AppendUnchecked(
        Event(type, static_cast<Timestamp>(i / 4), subject));
  }

  // References: per-subject queries on one engine, the cross disjunction on
  // another (both sequential over the full stream).
  StreamingCepEngine subject_reference;
  for (size_t k = 0; k < kSubjects; ++k) {
    const auto base = static_cast<EventTypeId>(k * kTypesPerGroup);
    ASSERT_TRUE(subject_reference
                    .AddQuery(MakePattern("seq", {base, base + 1, base + 2},
                                          DetectionMode::kSequence),
                              kWindow)
                    .ok());
  }
  const Pattern watch =
      MakePattern("watch", {0, 3, 6}, DetectionMode::kDisjunction);
  StreamingCepEngine cross_reference;
  ASSERT_TRUE(cross_reference.AddQuery(watch, kWindow).ok());
  for (const Event& e : stream) {
    ASSERT_TRUE(subject_reference.OnEvent(e).ok());
    ASSERT_TRUE(cross_reference.OnEvent(e).ok());
  }
  ASSERT_GT(subject_reference.total_detections(), 0u);
  ASSERT_GT(cross_reference.total_detections(), 0u);

  ParallelEngineOptions options = ExchangeConfig(
      /*stage1=*/4, /*stage2=*/2, CorrelationKeySpec::ByEventType());
  ParallelStreamingEngine engine(options);
  for (size_t k = 0; k < kSubjects; ++k) {
    const auto base = static_cast<EventTypeId>(k * kTypesPerGroup);
    ASSERT_TRUE(engine
                    .AddQuery(MakePattern("seq", {base, base + 1, base + 2},
                                          DetectionMode::kSequence),
                              kWindow)
                    .ok());
  }
  ASSERT_TRUE(engine.AddCrossQuery(watch, kWindow).ok());
  ASSERT_TRUE(engine.Start().ok());

  StreamReplayer replayer;
  replayer.Subscribe(&engine);
  ASSERT_TRUE(replayer.Run(stream, ReplayMode::kBatchPerTick).ok());

  for (size_t q = 0; q < engine.query_count(); ++q) {
    EXPECT_EQ(engine.DetectionsOf(q).value(),
              subject_reference.DetectionsOf(q).value())
        << "stage-1 query=" << q;
  }
  EXPECT_EQ(engine.CrossDetectionsOf(0).value(),
            cross_reference.DetectionsOf(0).value());
  ASSERT_TRUE(engine.Stop().ok());
}

TEST(ExchangeEngineTest, DeterministicAcrossRuns) {
  constexpr size_t kGroups = 4;
  const EventStream stream =
      CrossSubjectStream(kGroups, /*subjects=*/12, 8000, /*seed=*/3);

  std::vector<std::vector<Timestamp>> first;
  for (int run = 0; run < 2; ++run) {
    ParallelEngineOptions options = ExchangeConfig(
        /*stage1=*/3, /*stage2=*/2, CorrelationKeySpec::ByAttribute("grp"));
    ParallelStreamingEngine engine(options);
    RegisterGroupQueries(
        [&engine](Pattern p, Timestamp w) {
          return engine.AddCrossQuery(std::move(p), w);
        },
        kGroups);
    ASSERT_TRUE(engine.Start().ok());
    for (const Event& e : stream) ASSERT_TRUE(engine.OnEvent(e).ok());
    ASSERT_TRUE(engine.Drain().ok());

    std::vector<std::vector<Timestamp>> detections;
    for (size_t q = 0; q < engine.cross_query_count(); ++q) {
      detections.push_back(engine.CrossDetectionsOf(q).value());
    }
    ASSERT_TRUE(engine.Stop().ok());
    if (run == 0) {
      first = std::move(detections);
    } else {
      EXPECT_EQ(detections, first);
    }
  }
}

TEST(ExchangeEngineTest, FinishSealsThePipeline) {
  ParallelEngineOptions options = ExchangeConfig(
      /*stage1=*/2, /*stage2=*/2, CorrelationKeySpec::ByEventType());
  ParallelStreamingEngine engine(options);
  ASSERT_TRUE(engine
                  .AddCrossQuery(MakePattern("watch", {0},
                                             DetectionMode::kDisjunction),
                                 kWindow)
                  .ok());
  ASSERT_TRUE(engine.Start().ok());
  ASSERT_TRUE(engine.OnEvent(Event(0, 1, /*stream=*/4)).ok());
  ASSERT_TRUE(engine.Finish().ok());
  ASSERT_TRUE(engine.Finish().ok());  // idempotent
  // Terminal: the ingest gate is closed.
  EXPECT_FALSE(engine.OnEvent(Event(0, 2)).ok());
  EXPECT_EQ(engine.total_cross_detections(), 1u);
  ASSERT_TRUE(engine.Stop().ok());
}

TEST(ExchangeEngineTest, LifecycleErrors) {
  {
    // Cross queries without the exchange stage are refused.
    ParallelEngineOptions options;
    options.shard_count = 2;
    ParallelStreamingEngine engine(options);
    EXPECT_FALSE(engine
                     .AddCrossQuery(MakePattern("p", {0},
                                                DetectionMode::kDisjunction),
                                    kWindow)
                     .ok());
    EXPECT_FALSE(engine.CrossDetectionsOf(0).ok());
  }
  {
    // A malformed correlation spec surfaces at Start.
    ParallelEngineOptions options = ExchangeConfig(
        /*stage1=*/2, /*stage2=*/2, CorrelationKeySpec::ByAttribute(""));
    ParallelStreamingEngine engine(options);
    EXPECT_FALSE(engine.Start().ok());
  }
}

}  // namespace
}  // namespace pldp
