// Copyright 2026 The PLDP Authors.
//
// Fixed-seed equivalence of the private cross-subject path: cross-subject
// target queries registered on ParallelPrivateEngine are matched over the
// exchanged *protected-view* stream (presence events derived from each
// published view), and must produce — at every shard count — exactly the
// detections of a sequential reference: one SubjectViewPublisher over the
// whole stream (same seed, same per-subject mechanisms), its published
// views flattened in publication order and fed to a sequential
// StreamingCepEngine (compared as canonical sorted multisets, since view
// timestamps interleave across subjects). This pins the exchange merge
// keys end to end: normal publications ride their trigger's ingest
// sequence number, finalize-time publications ride (finish bound,
// subject) — so the merged processing order equals the sequential
// publication order, and the per-seed detection sets match exactly.

#include "core/parallel_private_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/private_engine.h"
#include "ppm/factory.h"
#include "stream/replay.h"

namespace pldp {
namespace {

constexpr Timestamp kWindowSize = 5;
constexpr Timestamp kCrossWindow = 2 * kWindowSize;
constexpr double kEpsilon = 1.0;
constexpr uint64_t kSeed = 0xfeedULL;

Pattern MakePattern(const char* name, std::vector<EventTypeId> elems,
                    DetectionMode mode) {
  return Pattern::Create(name, std::move(elems), mode).value();
}

/// Same setup phase as the per-subject equivalence test: 3 types, one
/// private pattern, two per-subject target queries.
template <typename EngineT>
void RegisterSetup(EngineT& engine) {
  const EventTypeId a = engine.InternEventType("door");
  const EventTypeId b = engine.InternEventType("motion");
  const EventTypeId c = engine.InternEventType("kettle");
  ASSERT_TRUE(engine
                  .RegisterPrivatePattern(MakePattern(
                      "private", {a, b}, DetectionMode::kConjunction))
                  .ok());
  ASSERT_TRUE(
      engine
          .RegisterTargetQuery(
              "q0", MakePattern("t0", {a, b}, DetectionMode::kConjunction))
          .ok());
  ASSERT_TRUE(
      engine
          .RegisterTargetQuery(
              "q1", MakePattern("t1", {b, c}, DetectionMode::kSequence))
          .ok());
}

/// Cross-subject queries over the protected-view stream (presence events).
std::vector<std::pair<Pattern, Timestamp>> CrossQueries() {
  return {
      {MakePattern("x_conj", {0, 2}, DetectionMode::kConjunction),
       kCrossWindow},
      {MakePattern("x_seq", {0, 1}, DetectionMode::kSequence), kCrossWindow},
      {MakePattern("x_any", {2}, DetectionMode::kDisjunction), kCrossWindow},
  };
}

/// A multi-subject stream with window-skipping timestamp jumps (mirrors
/// the per-subject equivalence test's generator).
EventStream InterleavedStream(size_t subjects, size_t num_events,
                              uint64_t seed) {
  Rng rng(seed);
  EventStream stream;
  Timestamp ts = 0;
  for (size_t i = 0; i < num_events; ++i) {
    if (rng.UniformUint64(8) == 0) {
      ts += static_cast<Timestamp>(rng.UniformUint64(3 * kWindowSize));
    } else if (rng.UniformUint64(2) == 0) {
      ++ts;
    }
    const auto subject = static_cast<StreamId>(rng.UniformUint64(subjects));
    const auto type = static_cast<EventTypeId>(rng.UniformUint64(3));
    stream.AppendUnchecked(Event(type, ts, subject));
  }
  return stream;
}

/// Sequential reference: one publisher over the whole stream, views
/// flattened to presence events in publication order, matched sequentially.
std::vector<std::vector<Timestamp>> SequentialCrossReference(
    const EventStream& stream, const std::string& mechanism) {
  PrivateCepEngine setup;
  RegisterSetup(setup);

  SubjectPublisherOptions opts;
  opts.context = setup.BuildContext(kEpsilon);
  opts.factory = NamedMechanismFactory(mechanism);
  opts.queries = setup.queries();
  opts.window_size = kWindowSize;
  opts.seed = kSeed;
  SubjectViewPublisher publisher(opts);

  std::vector<Event> protected_events;
  publisher.SetViewCallback(
      [&protected_events](StreamId subject, const Window& window,
                          const PublishedView& view) {
        for (size_t t = 0; t < view.presence.size(); ++t) {
          if (view.presence[t]) {
            protected_events.push_back(Event(static_cast<EventTypeId>(t),
                                             window.start, subject));
          }
        }
      });
  for (const Event& e : stream) publisher.Absorb(e);
  EXPECT_TRUE(publisher.Finalize().ok());

  StreamingCepEngine engine;
  for (auto& [pattern, window] : CrossQueries()) {
    EXPECT_TRUE(engine.AddQuery(pattern, window).ok());
  }
  for (const Event& e : protected_events) {
    EXPECT_TRUE(engine.OnEvent(e).ok());
  }
  std::vector<std::vector<Timestamp>> detections;
  for (size_t q = 0; q < engine.query_count(); ++q) {
    detections.push_back(engine.DetectionsOf(q).value());
    // The view stream is only per-subject ordered (windows close on
    // subject-local triggers), so detection timestamps interleave; compare
    // in the canonical sorted-multiset form CrossDetectionsOf returns.
    std::sort(detections.back().begin(), detections.back().end());
  }
  return detections;
}

TEST(ParallelPrivateCrossTest, FixedSeedEquivalenceAtEveryShardCount) {
  constexpr size_t kSubjects = 9;
  const EventStream stream = InterleavedStream(kSubjects, 6000, /*seed=*/31);
  const auto reference = SequentialCrossReference(stream, "uniform");
  size_t reference_total = 0;
  for (const auto& d : reference) reference_total += d.size();
  ASSERT_GT(reference_total, 0u)
      << "degenerate test: the reference detected nothing";

  for (size_t shards : {1u, 2u, 4u}) {
    ParallelPrivateOptions options;
    options.shard_count = shards;
    options.window_size = kWindowSize;
    options.seed = kSeed;
    // Global correlation key: all protected views meet on one merge shard,
    // the always-sound default for multi-type cross patterns.
    options.exchange.shard_count = shards;
    ParallelPrivateEngine parallel(options);
    RegisterSetup(parallel);
    for (auto& [pattern, window] : CrossQueries()) {
      ASSERT_TRUE(
          parallel.RegisterCrossTargetQuery(pattern.name(), pattern, window)
              .ok());
    }
    ASSERT_TRUE(
        parallel.Activate(NamedMechanismFactory("uniform"), kEpsilon).ok());

    StreamReplayer replayer;
    replayer.Subscribe(&parallel);
    // Run's OnEnd finishes the service phase: worker-side Finalize forwards
    // the last views through the exchange before the terminal watermark.
    ASSERT_TRUE(replayer.Run(stream, ReplayMode::kBatchPerTick).ok());

    ASSERT_EQ(parallel.cross_query_count(), reference.size());
    for (size_t q = 0; q < reference.size(); ++q) {
      EXPECT_EQ(parallel.CrossDetectionsOf(q).value(), reference[q])
          << "shards=" << shards << " cross query=" << q;
    }
    EXPECT_EQ(parallel.total_cross_detections(), reference_total)
        << "shards=" << shards;
    ASSERT_TRUE(parallel.Stop().ok());
  }
}

TEST(ParallelPrivateCrossTest, PerSubjectAnswersUnaffectedByExchange) {
  constexpr size_t kSubjects = 6;
  const EventStream stream = InterleavedStream(kSubjects, 3000, /*seed=*/53);

  // One engine with the exchange, one without; the per-subject protected
  // answers must be identical (the exchange only observes, never perturbs).
  std::vector<std::vector<std::vector<bool>>> answers(2);
  for (int with_cross = 0; with_cross < 2; ++with_cross) {
    ParallelPrivateOptions options;
    options.shard_count = 2;
    options.window_size = kWindowSize;
    options.seed = kSeed;
    ParallelPrivateEngine engine(options);
    RegisterSetup(engine);
    if (with_cross == 1) {
      for (auto& [pattern, window] : CrossQueries()) {
        ASSERT_TRUE(
            engine.RegisterCrossTargetQuery(pattern.name(), pattern, window)
                .ok());
      }
    }
    ASSERT_TRUE(
        engine.Activate(NamedMechanismFactory("uniform"), kEpsilon).ok());
    StreamReplayer replayer;
    replayer.Subscribe(&engine);
    ASSERT_TRUE(replayer.Run(stream, ReplayMode::kBatchPerTick).ok());

    for (StreamId subject : engine.SubjectIds()) {
      StatusOr<SubjectResults> results = engine.ResultsFor(subject);
      ASSERT_TRUE(results.ok());
      for (const AnswerSeries& series : results.value().answers) {
        answers[with_cross].push_back(series.answers());
      }
    }
    ASSERT_TRUE(engine.Stop().ok());
  }
  EXPECT_EQ(answers[0], answers[1]);
}

TEST(ParallelPrivateCrossTest, EmptyStreamAndLifecycle) {
  ParallelPrivateOptions options;
  options.shard_count = 2;
  options.window_size = kWindowSize;
  options.seed = kSeed;
  ParallelPrivateEngine engine(options);
  RegisterSetup(engine);
  for (auto& [pattern, window] : CrossQueries()) {
    ASSERT_TRUE(
        engine.RegisterCrossTargetQuery(pattern.name(), pattern, window)
            .ok());
  }
  // Cross registration after Activate is refused.
  ASSERT_TRUE(
      engine.Activate(NamedMechanismFactory("uniform"), kEpsilon).ok());
  EXPECT_FALSE(engine
                   .RegisterCrossTargetQuery(
                       "late", MakePattern("late", {0},
                                           DetectionMode::kDisjunction),
                       kCrossWindow)
                   .ok());
  // Cross results are gated on Finish.
  EXPECT_FALSE(engine.CrossDetectionsOf(0).ok());
  ASSERT_TRUE(engine.Finish().ok());
  ASSERT_TRUE(engine.Finish().ok());  // idempotent
  for (size_t q = 0; q < engine.cross_query_count(); ++q) {
    EXPECT_TRUE(engine.CrossDetectionsOf(q).value().empty());
  }
  EXPECT_EQ(engine.total_cross_detections(), 0u);
  EXPECT_EQ(engine.CrossShardStatsSnapshot().size(), 2u);
  ASSERT_TRUE(engine.Stop().ok());
}

}  // namespace
}  // namespace pldp
