// Copyright 2026 The PLDP Authors.
//
// Unit coverage of the telemetry layer: instrument semantics (counter,
// gauge, log-scale histogram buckets and quantiles), registry conflict
// detection, Prometheus/JSON exposition (including label escaping and
// cumulative histogram buckets), family aggregation helpers, the health
// roll-up classifier, and the blocking TCP scrape endpoint.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/endpoint.h"
#include "obs/health.h"

namespace pldp {
namespace obs {
namespace {

TEST(InstrumentTest, CounterAndGaugeBasics) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Inc();
  counter.Inc(41);
  EXPECT_EQ(counter.Value(), 42u);

  Gauge gauge;
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.5);
  gauge.Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 1.5);
}

TEST(InstrumentTest, HistogramBucketBoundaries) {
  // Bucket i holds values <= 2^i: the boundary value lands in its own
  // bucket, the next value in the next one.
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 0u);
  EXPECT_EQ(Histogram::BucketOf(2), 1u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 2u);
  EXPECT_EQ(Histogram::BucketOf(5), 3u);
  EXPECT_EQ(Histogram::BucketOf(1024), 10u);
  EXPECT_EQ(Histogram::BucketOf(1025), 11u);
  // Everything past the last finite bound lands in the +Inf bucket.
  EXPECT_EQ(Histogram::BucketOf(~uint64_t{0}), Histogram::kBuckets - 1);

  Histogram h;
  h.Record(1);
  h.Record(100);
  h.Record(100);
  EXPECT_EQ(h.TotalCount(), 3u);
  EXPECT_EQ(h.Sum(), 201u);
  EXPECT_EQ(h.BinCount(0), 1u);
  EXPECT_EQ(h.BinCount(Histogram::BucketOf(100)), 2u);
}

TEST(InstrumentTest, HistogramQuantileInterpolation) {
  MetricsRegistry registry;
  Histogram* h = registry.AddHistogram("q", "quantile test");
  ASSERT_NE(h, nullptr);
  for (int i = 0; i < 1000; ++i) h->Record(100);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const MetricFamily* family = snapshot.Find("q");
  ASSERT_NE(family, nullptr);
  const HistogramData& data = family->samples[0].histogram;
  EXPECT_EQ(data.count, 1000u);
  EXPECT_EQ(data.sum, 100000u);
  // All mass sits in the (64, 128] bucket; every quantile interpolates
  // inside it.
  for (double q : {0.5, 0.99, 0.999}) {
    EXPECT_GT(data.Quantile(q), 64.0) << q;
    EXPECT_LE(data.Quantile(q), 128.0) << q;
  }
  EXPECT_DOUBLE_EQ(HistogramData().Quantile(0.5), 0.0);
}

TEST(RegistryTest, DuplicateAndTypeConflictsReturnNull) {
  MetricsRegistry registry;
  Counter* a = registry.AddCounter("m", "help", {{"shard", "0"}});
  ASSERT_NE(a, nullptr);
  // Exact duplicate (name + labels) is a wiring bug.
  EXPECT_EQ(registry.AddCounter("m", "help", {{"shard", "0"}}), nullptr);
  // Same family, different labels: fine.
  EXPECT_NE(registry.AddCounter("m", "help", {{"shard", "1"}}), nullptr);
  // Same name, different type: refused.
  EXPECT_EQ(registry.AddGauge("m", "help", {{"shard", "2"}}), nullptr);
  EXPECT_EQ(registry.AddHistogram("m", "help", {{"shard", "3"}}), nullptr);
  EXPECT_EQ(registry.instrument_count(), 2u);

  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.families.size(), 1u);
  EXPECT_EQ(snapshot.families[0].samples.size(), 2u);
  EXPECT_EQ(snapshot.Find("absent"), nullptr);
}

TEST(RegistryTest, SnapshotKeepsRegistrationOrder) {
  MetricsRegistry registry;
  registry.AddCounter("zz_first", "first");
  registry.AddGauge("aa_second", "second");
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.families.size(), 2u);
  EXPECT_EQ(snapshot.families[0].name, "zz_first");
  EXPECT_EQ(snapshot.families[1].name, "aa_second");
}

TEST(RenderTest, PrometheusTextFormat) {
  MetricsRegistry registry;
  Counter* events = registry.AddCounter("pldp_events_total", "Events seen",
                                        {{"lane", "plain"}, {"shard", "0"}});
  events->Inc(7);
  Gauge* depth = registry.AddGauge("pldp_depth", "Queue depth");
  depth->Set(3);
  Histogram* lat = registry.AddHistogram("pldp_latency_ns", "Latency");
  lat->Record(1);
  lat->Record(3);

  const std::string text = RenderPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# HELP pldp_events_total Events seen"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE pldp_events_total counter"), std::string::npos);
  EXPECT_NE(
      text.find("pldp_events_total{lane=\"plain\",shard=\"0\"} 7"),
      std::string::npos);
  EXPECT_NE(text.find("# TYPE pldp_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("pldp_depth 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pldp_latency_ns histogram"), std::string::npos);
  // Cumulative buckets: the value 3 (bucket le=4) includes the value 1.
  EXPECT_NE(text.find("pldp_latency_ns_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("pldp_latency_ns_bucket{le=\"4\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("pldp_latency_ns_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("pldp_latency_ns_sum 4"), std::string::npos);
  EXPECT_NE(text.find("pldp_latency_ns_count 2"), std::string::npos);
}

TEST(RenderTest, PrometheusLabelEscaping) {
  MetricsRegistry registry;
  registry.AddCounter("esc", "help",
                      {{"path", "a\\b\"c\nd"}});
  const std::string text = RenderPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("esc{path=\"a\\\\b\\\"c\\nd\"} 0"), std::string::npos);
}

TEST(RenderTest, JsonCarriesQuantiles) {
  MetricsRegistry registry;
  Histogram* lat = registry.AddHistogram("lat", "Latency");
  for (int i = 0; i < 100; ++i) lat->Record(100);
  const std::string json = RenderJson(registry.Snapshot());
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":100"), std::string::npos);
}

TEST(RenderTest, AggregateAndSumHelpers) {
  MetricsRegistry registry;
  Histogram* a = registry.AddHistogram("h", "help", {{"shard", "0"}});
  Histogram* b = registry.AddHistogram("h", "help", {{"shard", "1"}});
  a->Record(10);
  b->Record(20);
  Counter* c0 = registry.AddCounter("c", "help", {{"shard", "0"}});
  Counter* c1 = registry.AddCounter("c", "help", {{"shard", "1"}});
  c0->Inc(5);
  c1->Inc(6);

  const MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramData merged = AggregateHistogram(snapshot.Find("h"));
  EXPECT_EQ(merged.count, 2u);
  EXPECT_EQ(merged.sum, 30u);
  EXPECT_DOUBLE_EQ(SumSamples(snapshot.Find("c")), 11.0);
  EXPECT_DOUBLE_EQ(SumSamples(nullptr), 0.0);
  EXPECT_EQ(AggregateHistogram(snapshot.Find("c")).count, 0u);
}

TEST(HealthTest, ThresholdClassification) {
  {
    PipelineHealth health;
    health.shards.push_back({"plain", 0, 10, 1024, 10.0 / 1024});
    FinalizeHealth(&health, HealthThresholds());
    EXPECT_EQ(health.state, PipelineHealth::State::kHealthy);
    EXPECT_TRUE(health.issues.empty());
  }
  {
    PipelineHealth health;
    health.shards.push_back({"plain", 0, 1000, 1024, 1000.0 / 1024});
    FinalizeHealth(&health, HealthThresholds());
    EXPECT_EQ(health.state, PipelineHealth::State::kDegraded);
    ASSERT_EQ(health.issues.size(), 1u);
  }
  {
    // Large lag with an empty reorder buffer is an idle pipeline, not a
    // stall.
    PipelineHealth health;
    health.groups.push_back({"plain", "global", 0, uint64_t{1} << 30, 0});
    FinalizeHealth(&health, HealthThresholds());
    EXPECT_EQ(health.state, PipelineHealth::State::kHealthy);
  }
  {
    PipelineHealth health;
    health.groups.push_back({"plain", "global", 0, uint64_t{1} << 30, 5});
    FinalizeHealth(&health, HealthThresholds());
    EXPECT_EQ(health.state, PipelineHealth::State::kStalled);
    EXPECT_NE(RenderHealthJson(health).find("stalled"), std::string::npos);
  }
}

/// Minimal HTTP client for the endpoint tests: one GET, full response.
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(EndpointTest, ServesRoutesAndRefusesUnknownPaths) {
  TextEndpoint::Routes routes;
  routes.metrics_text = [] { return std::string("metric_a 1\n"); };
  routes.health_json = [] { return std::string("{\"state\":\"healthy\"}"); };
  TextEndpoint endpoint(std::move(routes));
  ASSERT_TRUE(endpoint.Start(0).ok());
  ASSERT_NE(endpoint.port(), 0);

  const std::string metrics = HttpGet(endpoint.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("metric_a 1"), std::string::npos);

  const std::string health = HttpGet(endpoint.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("healthy"), std::string::npos);

  // metrics.json has no producer registered -> 404, like unknown paths.
  EXPECT_NE(HttpGet(endpoint.port(), "/metrics.json").find("404"),
            std::string::npos);
  EXPECT_NE(HttpGet(endpoint.port(), "/nope").find("404"),
            std::string::npos);

  endpoint.Stop();
  endpoint.Stop();  // idempotent
}

TEST(EndpointTest, RejectsOccupiedPort) {
  TextEndpoint::Routes routes;
  routes.metrics_text = [] { return std::string(); };
  TextEndpoint first(routes);
  ASSERT_TRUE(first.Start(0).ok());
  TextEndpoint second(routes);
  EXPECT_FALSE(second.Start(first.port()).ok());
  first.Stop();
}

}  // namespace
}  // namespace obs
}  // namespace pldp
