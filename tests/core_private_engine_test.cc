// Copyright 2026 The PLDP Authors.
//
// Tests for the trusted private CEP engine facade: setup-phase rules,
// service-phase answering, and the passthrough/ground-truth equivalence.

#include "core/private_engine.h"

#include <gtest/gtest.h>

#include "ppm/adaptive.h"
#include "ppm/pattern_level.h"

namespace pldp {
namespace {

class PrivateEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = engine_.InternEventType("a");
    b_ = engine_.InternEventType("b");
    c_ = engine_.InternEventType("c");
  }

  Status RegisterDefaults() {
    PLDP_ASSIGN_OR_RETURN(
        auto priv, engine_.RegisterPrivatePattern(
                       Pattern::Create("priv", {a_, b_},
                                       DetectionMode::kConjunction)
                           .value()));
    (void)priv;
    PLDP_ASSIGN_OR_RETURN(
        query_, engine_.RegisterTargetQuery(
                    "q", Pattern::Create("tgt", {c_},
                                         DetectionMode::kConjunction)
                             .value()));
    return Status::OK();
  }

  EventStream MakeStream() {
    EventStream s;
    s.AppendUnchecked(Event(a_, 1));
    s.AppendUnchecked(Event(c_, 5));
    s.AppendUnchecked(Event(b_, 12));
    s.AppendUnchecked(Event(c_, 25));
    return s;
  }

  PrivateCepEngine engine_;
  EventTypeId a_ = 0, b_ = 0, c_ = 0;
  QueryId query_ = 0;
};

TEST_F(PrivateEngineTest, ActivateRequiresSetup) {
  // No private patterns yet.
  EXPECT_TRUE(engine_.Activate(std::make_unique<UniformPatternPpm>(), 1.0)
                  .IsFailedPrecondition());
  ASSERT_TRUE(engine_
                  .RegisterPrivatePattern(
                      Pattern::Create("p", {a_}, DetectionMode::kConjunction)
                          .value())
                  .ok());
  // Still no queries.
  EXPECT_TRUE(engine_.Activate(std::make_unique<UniformPatternPpm>(), 1.0)
                  .IsFailedPrecondition());
}

TEST_F(PrivateEngineTest, ActivateRejectsNullMechanism) {
  ASSERT_TRUE(RegisterDefaults().ok());
  EXPECT_TRUE(engine_.Activate(nullptr, 1.0).IsInvalidArgument());
}

TEST_F(PrivateEngineTest, SetupPhaseClosesAfterActivate) {
  ASSERT_TRUE(RegisterDefaults().ok());
  ASSERT_TRUE(
      engine_.Activate(std::make_unique<UniformPatternPpm>(), 1.0).ok());
  // Further registrations and re-activation are rejected.
  EXPECT_TRUE(engine_
                  .RegisterPrivatePattern(
                      Pattern::Create("late", {c_},
                                      DetectionMode::kConjunction)
                          .value())
                  .status()
                  .IsFailedPrecondition());
  EXPECT_TRUE(engine_
                  .RegisterTargetQuery(
                      "late_q", Pattern::Create("late_t", {a_},
                                                DetectionMode::kConjunction)
                                    .value())
                  .status()
                  .IsFailedPrecondition());
  EXPECT_TRUE(engine_.Activate(std::make_unique<UniformPatternPpm>(), 1.0)
                  .IsFailedPrecondition());
}

TEST_F(PrivateEngineTest, ProcessRequiresActivation) {
  ASSERT_TRUE(RegisterDefaults().ok());
  Rng rng(1);
  EXPECT_TRUE(engine_.ProcessWindows({}, &rng).status()
                  .IsFailedPrecondition());
}

TEST_F(PrivateEngineTest, ProcessStreamAnswersQueries) {
  ASSERT_TRUE(RegisterDefaults().ok());
  ASSERT_TRUE(
      engine_.Activate(std::make_unique<UniformPatternPpm>(), 50.0).ok());
  Rng rng(2);
  TumblingWindower windower(10);
  auto results =
      engine_.ProcessStream(MakeStream(), windower, &rng).value();
  // Windows: [0,10) has a,c; [10,20) has b; [20,30) has c.
  EXPECT_EQ(results.window_count, 3u);
  ASSERT_EQ(results.answers.size(), 1u);
  // Type c is outside the private pattern; with ε=50 the answers are
  // essentially exact: c in windows 0 and 2.
  EXPECT_EQ(results.answers[query_].answers(),
            (std::vector<bool>{true, false, true}));
}

TEST_F(PrivateEngineTest, GroundTruthIsExact) {
  ASSERT_TRUE(RegisterDefaults().ok());
  ASSERT_TRUE(
      engine_.Activate(std::make_unique<UniformPatternPpm>(), 1.0).ok());
  TumblingWindower windower(10);
  auto windows = windower.Apply(MakeStream()).value();
  auto truth = engine_.GroundTruth(windows).value();
  EXPECT_EQ(truth.answers[query_].answers(),
            (std::vector<bool>{true, false, true}));
}

TEST_F(PrivateEngineTest, RejectsNullRng) {
  ASSERT_TRUE(RegisterDefaults().ok());
  ASSERT_TRUE(
      engine_.Activate(std::make_unique<UniformPatternPpm>(), 1.0).ok());
  EXPECT_TRUE(engine_.ProcessWindows({}, nullptr).status()
                  .IsInvalidArgument());
}

TEST_F(PrivateEngineTest, MechanismAccessorExposesChoice) {
  ASSERT_TRUE(RegisterDefaults().ok());
  EXPECT_EQ(engine_.mechanism(), nullptr);
  ASSERT_TRUE(
      engine_.Activate(std::make_unique<UniformPatternPpm>(), 1.0).ok());
  ASSERT_NE(engine_.mechanism(), nullptr);
  EXPECT_EQ(engine_.mechanism()->name(), "uniform");
}

TEST_F(PrivateEngineTest, AlphaAndHistoryFeedAdaptiveMechanisms) {
  ASSERT_TRUE(RegisterDefaults().ok());
  engine_.SetAlpha(0.7);
  std::vector<Window> history(3);
  for (size_t i = 0; i < history.size(); ++i) {
    history[i].start = static_cast<Timestamp>(i * 10);
    history[i].end = history[i].start + 10;
    history[i].events = {Event(a_, history[i].start),
                         Event(c_, history[i].start + 1)};
  }
  engine_.SetHistory(history);
  // The adaptive PPM initializes successfully (it sees history + targets).
  AdaptivePpmOptions opt;
  opt.trials = 4;
  opt.max_rounds = 2;
  EXPECT_TRUE(
      engine_.Activate(std::make_unique<AdaptivePatternPpm>(opt), 1.0).ok());
}

}  // namespace
}  // namespace pldp
