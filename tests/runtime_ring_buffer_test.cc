// Copyright 2026 The PLDP Authors.
//
// The merge shards' reorder-buffer FIFO: FIFO order across growth and
// wraparound, capacity retention, and payload release on pop.

#include "runtime/ring_buffer.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace pldp {
namespace {

TEST(RingBufferTest, StartsEmptyWithNoCapacity) {
  RingBuffer<int> buffer;
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.capacity(), 0u);
}

TEST(RingBufferTest, FifoOrderAcrossGrowth) {
  RingBuffer<int> buffer;
  for (int i = 0; i < 100; ++i) buffer.push_back(i);
  EXPECT_EQ(buffer.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(buffer.front(), i);
    buffer.pop_front();
  }
  EXPECT_TRUE(buffer.empty());
}

TEST(RingBufferTest, WraparoundKeepsOrderAndCapacity) {
  RingBuffer<int> buffer;
  // Fill to the initial capacity so the indices wrap many times.
  for (int i = 0; i < 12; ++i) buffer.push_back(i);
  const size_t capacity = buffer.capacity();
  int next_push = 12;
  int next_pop = 0;
  for (int round = 0; round < 500; ++round) {
    buffer.push_back(next_push++);
    EXPECT_EQ(buffer.front(), next_pop);
    buffer.pop_front();
    ++next_pop;
  }
  // Steady-state churn never grew the ring.
  EXPECT_EQ(buffer.capacity(), capacity);
  EXPECT_EQ(buffer.size(), 12u);
}

TEST(RingBufferTest, GrowthPreservesWrappedContents) {
  RingBuffer<int> buffer;
  // Advance head so the live region wraps, then force a grow mid-wrap.
  for (int i = 0; i < 16; ++i) buffer.push_back(i);
  for (int i = 0; i < 10; ++i) buffer.pop_front();
  for (int i = 16; i < 40; ++i) buffer.push_back(i);  // grows while wrapped
  EXPECT_EQ(buffer.size(), 30u);
  for (int i = 10; i < 40; ++i) {
    EXPECT_EQ(buffer.front(), i);
    buffer.pop_front();
  }
}

TEST(RingBufferTest, PopReleasesPayloadEagerly) {
  RingBuffer<std::shared_ptr<std::string>> buffer;
  auto payload = std::make_shared<std::string>("owned");
  buffer.push_back(payload);
  EXPECT_EQ(payload.use_count(), 2);
  buffer.pop_front();
  // The slot must not keep the payload alive until it is overwritten.
  EXPECT_EQ(payload.use_count(), 1);
}

TEST(RingBufferTest, ClearEmptiesButKeepsCapacity) {
  RingBuffer<int> buffer;
  for (int i = 0; i < 50; ++i) buffer.push_back(i);
  const size_t capacity = buffer.capacity();
  buffer.clear();
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.capacity(), capacity);
  buffer.push_back(7);
  EXPECT_EQ(buffer.front(), 7);
}

}  // namespace
}  // namespace pldp
