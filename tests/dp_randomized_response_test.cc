// Copyright 2026 The PLDP Authors.
//
// Tests for randomized response: the ε ⇔ p conversions of Definition 5 /
// Theorem 1, empirical flip rates, and the exact response-probability
// computation the DP property tests build on.

#include "dp/randomized_response.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace pldp {
namespace {

TEST(RandomizedResponseTest, ConversionsAreInverse) {
  for (double eps : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    double p = RandomizedResponse::FlipProbabilityForEpsilon(eps).value();
    double back = RandomizedResponse::EpsilonForFlipProbability(p).value();
    EXPECT_NEAR(back, eps, 1e-12) << "eps=" << eps;
  }
}

TEST(RandomizedResponseTest, KnownConversionValues) {
  // ε = 0 ⇒ p = 1/2 (pure coin flip, no information).
  EXPECT_DOUBLE_EQ(
      RandomizedResponse::FlipProbabilityForEpsilon(0.0).value(), 0.5);
  // p = 1/2 ⇒ ε = 0.
  EXPECT_DOUBLE_EQ(
      RandomizedResponse::EpsilonForFlipProbability(0.5).value(), 0.0);
  // ε = ln 3 ⇒ p = 1/4.
  EXPECT_NEAR(
      RandomizedResponse::FlipProbabilityForEpsilon(std::log(3.0)).value(),
      0.25, 1e-12);
}

TEST(RandomizedResponseTest, ValidationRejectsBadParameters) {
  EXPECT_FALSE(RandomizedResponse::FromFlipProbability(0.0).ok());
  EXPECT_FALSE(RandomizedResponse::FromFlipProbability(0.6).ok());
  EXPECT_FALSE(RandomizedResponse::FromFlipProbability(-0.1).ok());
  EXPECT_TRUE(RandomizedResponse::FromFlipProbability(0.5).ok());
  EXPECT_FALSE(RandomizedResponse::FromEpsilon(-1.0).ok());
  EXPECT_FALSE(
      RandomizedResponse::FromEpsilon(std::numeric_limits<double>::infinity())
          .ok());
  EXPECT_TRUE(RandomizedResponse::FromEpsilon(0.0).ok());
}

TEST(RandomizedResponseTest, MorePrivacyMeansMoreFlipping) {
  double p_tight = RandomizedResponse::FromEpsilon(0.1).value()
                       .flip_probability();
  double p_loose = RandomizedResponse::FromEpsilon(5.0).value()
                       .flip_probability();
  EXPECT_GT(p_tight, p_loose);
  EXPECT_LE(p_tight, 0.5);
  EXPECT_GT(p_loose, 0.0);
}

TEST(RandomizedResponseTest, TrueOutputProbability) {
  auto rr = RandomizedResponse::FromFlipProbability(0.25).value();
  EXPECT_DOUBLE_EQ(rr.TrueOutputProbability(true), 0.75);
  EXPECT_DOUBLE_EQ(rr.TrueOutputProbability(false), 0.25);
}

TEST(RandomizedResponseTest, EmpiricalFlipRateMatchesP) {
  auto rr = RandomizedResponse::FromFlipProbability(0.3).value();
  Rng rng(1234);
  const int n = 100000;
  int flips_true = 0;
  int flips_false = 0;
  for (int i = 0; i < n; ++i) {
    if (!rr.Perturb(true, &rng)) ++flips_true;
    if (rr.Perturb(false, &rng)) ++flips_false;
  }
  EXPECT_NEAR(static_cast<double>(flips_true) / n, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(flips_false) / n, 0.3, 0.01);
}

TEST(PatternRandomizedResponseTest, FromAllocationBuildsPerElement) {
  auto alloc = BudgetAllocation::FromWeights({0.5, 1.0, 2.0}).value();
  auto mech = PatternRandomizedResponse::FromAllocation(alloc).value();
  ASSERT_EQ(mech.size(), 3u);
  EXPECT_NEAR(mech.mechanism(0).epsilon(), 0.5, 1e-12);
  EXPECT_NEAR(mech.mechanism(2).epsilon(), 2.0, 1e-12);
  EXPECT_NEAR(mech.TotalEpsilon(), 3.5, 1e-12);
}

TEST(PatternRandomizedResponseTest, ZeroBudgetElementIsCoinFlip) {
  auto alloc = BudgetAllocation::FromWeights({0.0, 1.0}).value();
  auto mech = PatternRandomizedResponse::FromAllocation(alloc).value();
  EXPECT_DOUBLE_EQ(mech.mechanism(0).flip_probability(), 0.5);
}

TEST(PatternRandomizedResponseTest, PerturbValidatesLength) {
  auto alloc = BudgetAllocation::Uniform(1.0, 3).value();
  auto mech = PatternRandomizedResponse::FromAllocation(alloc).value();
  Rng rng(1);
  EXPECT_FALSE(mech.Perturb({true, false}, &rng).ok());
  EXPECT_TRUE(mech.Perturb({true, false, true}, &rng).ok());
}

TEST(PatternRandomizedResponseTest, ResponseProbabilitiesSumToOne) {
  auto alloc = BudgetAllocation::FromWeights({0.3, 1.2, 0.7}).value();
  auto mech = PatternRandomizedResponse::FromAllocation(alloc).value();
  std::vector<bool> input{true, false, true};
  double total = 0.0;
  for (uint32_t mask = 0; mask < 8; ++mask) {
    std::vector<bool> resp{bool(mask & 1), bool(mask & 2), bool(mask & 4)};
    total += mech.ResponseProbability(input, resp).value();
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(PatternRandomizedResponseTest, IdentityResponseIsMostLikely) {
  auto alloc = BudgetAllocation::Uniform(6.0, 3).value();  // ε_i = 2 each
  auto mech = PatternRandomizedResponse::FromAllocation(alloc).value();
  std::vector<bool> input{true, false, true};
  double p_identity = mech.ResponseProbability(input, input).value();
  for (uint32_t mask = 0; mask < 8; ++mask) {
    std::vector<bool> resp{bool(mask & 1), bool(mask & 2), bool(mask & 4)};
    if (resp == input) continue;
    EXPECT_GT(p_identity, mech.ResponseProbability(input, resp).value());
  }
}

TEST(PatternRandomizedResponseTest, EmpiricalJointMatchesAnalytic) {
  auto alloc = BudgetAllocation::FromWeights({1.0, 2.0}).value();
  auto mech = PatternRandomizedResponse::FromAllocation(alloc).value();
  std::vector<bool> input{true, false};
  Rng rng(777);
  const int n = 200000;
  std::vector<int> counts(4, 0);
  for (int i = 0; i < n; ++i) {
    auto out = mech.Perturb(input, &rng).value();
    counts[(out[0] ? 1 : 0) | (out[1] ? 2 : 0)]++;
  }
  for (uint32_t mask = 0; mask < 4; ++mask) {
    std::vector<bool> resp{bool(mask & 1), bool(mask & 2)};
    double analytic = mech.ResponseProbability(input, resp).value();
    double empirical = static_cast<double>(counts[mask]) / n;
    EXPECT_NEAR(empirical, analytic, 0.01) << "mask=" << mask;
  }
}

/// Theorem 1 accounting: the pattern mechanism's total ε is the sum of the
/// per-element budgets, for every allocation shape.
class TotalEpsilonSweep
    : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(TotalEpsilonSweep, TotalIsSumOfParts) {
  auto alloc = BudgetAllocation::FromWeights(GetParam()).value();
  auto mech = PatternRandomizedResponse::FromAllocation(alloc).value();
  double expected = 0.0;
  for (double e : GetParam()) expected += e;
  EXPECT_NEAR(mech.TotalEpsilon(), expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Allocations, TotalEpsilonSweep,
    ::testing::Values(std::vector<double>{1.0},
                      std::vector<double>{0.5, 0.5},
                      std::vector<double>{0.1, 0.2, 0.3, 0.4},
                      std::vector<double>{0.0, 2.0},
                      std::vector<double>{3.0, 0.01, 1.5}));

}  // namespace
}  // namespace pldp
