// Copyright 2026 The PLDP Authors.
//
// Negative fixture for tools/lint_atomics.py: the `atomics_lint_negative`
// ctest case runs the lint over this file alone and asserts (via
// WILL_FAIL) that it exits non-zero — proving the lint catches both
// violation classes it claims to, not just that it exits 0 on clean
// trees. Two seeded violations:
//
//   1. An atomic op relying on the implicit seq_cst default instead of
//      naming a std::memory_order (DefaultedOrderStore).
//   2. An op that names its order but carries no adjacent `// order:`
//      rationale comment (UndocumentedOrderLoad / the CAS, which also
//      omits its failure order).
//
// The Documented* functions at the bottom are compliance controls: they
// must NOT be flagged, so a regression that makes the lint flag
// everything shows up as a diff in its finding count, and the
// atomics-allow escape stays covered.
//
// This file is NOT part of any build target; it only exists to be linted.

#include <atomic>
#include <cstdint>

namespace pldp {
namespace {

std::atomic<uint64_t> g_counter{0};
std::atomic<bool> g_flag{false};

// Violation 1: no explicit order — the silent seq_cst default the lint
// exists to forbid.
void DefaultedOrderStore() { g_flag.store(true); }

// Violation 2: explicit memory order, but no rationale comment nearby.
uint64_t UndocumentedOrderLoad() {
  return g_counter.load(std::memory_order_acquire);
}

// Violations 1 and 2 at once: a CAS naming only its success order and
// carrying no rationale.
bool UndocumentedCas(uint64_t expected) {
  return g_counter.compare_exchange_weak(expected, expected + 1,
                                         std::memory_order_acq_rel);
}

// Control: explicit order + adjacent rationale — must pass.
// order: relaxed; standalone counter used only by this fixture.
uint64_t DocumentedLoad() {
  return g_counter.load(std::memory_order_relaxed);
}

// Control: the documented escape hatch — must pass.
// atomics-allow: fixture exercising the opt-out path.
void AllowedStore() { g_flag.store(false); }

}  // namespace
}  // namespace pldp
