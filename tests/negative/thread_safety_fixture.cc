// Copyright 2026 The PLDP Authors.
//
// Negative-compile fixture for the thread-safety annotation layer.
//
// Compiled two ways by CMake (clang only, `-fsyntax-only -Wthread-safety
// -Werror=thread-safety`):
//
//   * `thread_safety_control` — no defines. Must compile clean: proves the
//     shim macros expand to attributes clang accepts and the locked path
//     below satisfies the analysis.
//   * `thread_safety_negative` — with -DPLDP_SEED_TSA_VIOLATION. Seeds an
//     unlocked read of a PLDP_GUARDED_BY member; the ctest case is marked
//     WILL_FAIL, so the suite goes red if the analysis ever stops flagging
//     it (e.g. the shim silently degrading to no-ops under clang).
//
// This file is NOT part of any build target; it is only ever syntax-checked.

#include "common/thread_annotations.h"

namespace pldp {
namespace {

class GuardedCounter {
 public:
  void Increment() {
    MutexLock lock(mu_);
    ++value_;
  }

  int Load() {
    MutexLock lock(mu_);
    return value_;
  }

#if defined(PLDP_SEED_TSA_VIOLATION)
  // Unlocked access to a guarded member: -Wthread-safety must reject this.
  int LoadUnlocked() { return value_; }
#endif

 private:
  Mutex mu_;
  int value_ PLDP_GUARDED_BY(mu_) = 0;
};

// Odr-use the class so the compiler fully checks it even at -fsyntax-only.
int UseCounter() {
  GuardedCounter counter;
  counter.Increment();
  return counter.Load();
}

}  // namespace
}  // namespace pldp
