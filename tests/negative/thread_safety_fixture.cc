// Copyright 2026 The PLDP Authors.
//
// Negative-compile fixture for the thread-safety annotation layer.
//
// Compiled two ways by CMake (clang only, `-fsyntax-only -Wthread-safety
// -Werror=thread-safety`):
//
//   * `thread_safety_control` — no defines. Must compile clean: proves the
//     shim macros expand to attributes clang accepts and the locked path
//     below satisfies the analysis.
//   * `thread_safety_negative` — with -DPLDP_SEED_TSA_VIOLATION. Seeds an
//     unlocked read of a PLDP_GUARDED_BY member; the ctest case is marked
//     WILL_FAIL, so the suite goes red if the analysis ever stops flagging
//     it (e.g. the shim silently degrading to no-ops under clang).
//   * `thread_safety_producer_token_negative` — with
//     -DPLDP_SEED_PRODUCER_TOKEN_VIOLATION. Seeds a read of a
//     ThreadRole-confined member without asserting the role first — the
//     exact mistake the MPSC ingest handles (IngestProducer) guard
//     against: touching per-producer stamping state from a thread that
//     never claimed the producer token. Also WILL_FAIL.
//
// This file is NOT part of any build target; it is only ever syntax-checked.

#include "common/thread_annotations.h"

namespace pldp {
namespace {

class GuardedCounter {
 public:
  void Increment() {
    MutexLock lock(mu_);
    ++value_;
  }

  int Load() {
    MutexLock lock(mu_);
    return value_;
  }

#if defined(PLDP_SEED_TSA_VIOLATION)
  // Unlocked access to a guarded member: -Wthread-safety must reject this.
  int LoadUnlocked() { return value_; }
#endif

 private:
  Mutex mu_;
  int value_ PLDP_GUARDED_BY(mu_) = 0;
};

/// Miniature of the MPSC ingest handle: per-producer stamping state is
/// confined to the producer's thread by a ThreadRole token, not a mutex.
/// Every public entry point asserts the role (the caller contract: "I am
/// this handle's single driving thread"), which lets the analysis check
/// the body and its callees against the confinement with zero runtime
/// cost.
class StridedStamper {
 public:
  unsigned long long NextSeq() {
    role_.Assert();
    const unsigned long long seq = seq_next_;
    seq_next_ += stride_;
    return seq;
  }

#if defined(PLDP_SEED_PRODUCER_TOKEN_VIOLATION)
  // Reads producer-confined state without asserting the producer token:
  // -Wthread-safety must reject this — it is exactly the cross-thread
  // handle misuse the MPSC ingest contract forbids.
  unsigned long long PeekSeq() { return seq_next_; }
#endif

 private:
  ThreadRole role_;
  unsigned long long seq_next_ PLDP_GUARDED_BY(role_) = 0;
  unsigned long long stride_ = 1;
};

// Odr-use the classes so the compiler fully checks them even at
// -fsyntax-only.
int UseCounter() {
  GuardedCounter counter;
  counter.Increment();
  StridedStamper stamper;
  return counter.Load() + static_cast<int>(stamper.NextSeq());
}

}  // namespace
}  // namespace pldp
