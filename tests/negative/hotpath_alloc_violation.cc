// Copyright 2026 The PLDP Authors.
//
// Negative fixture for tools/lint_hotpath.py: a PLDP_HOT function whose
// direct body allocates. The `hotpath_lint_negative` ctest case runs the
// lint over this file alone and asserts (via WILL_FAIL) that it exits
// non-zero — proving the lint actually catches the violation class it
// claims to, not just that it exits 0 on clean trees.
//
// This file is NOT part of any build target; it only exists to be linted.

#include "common/thread_annotations.h"

namespace pldp {
namespace {

PLDP_HOT int* HotButAllocates() {
  return new int(42);  // the violation the lint must flag
}

}  // namespace
}  // namespace pldp
