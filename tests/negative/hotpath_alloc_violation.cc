// Copyright 2026 The PLDP Authors.
//
// Negative fixture for tools/lint_hotpath.py: a PLDP_HOT function whose
// direct body allocates. The `hotpath_lint_negative` ctest case runs the
// lint over this file alone and asserts (via WILL_FAIL) that it exits
// non-zero — proving the lint actually catches the violation class it
// claims to, not just that it exits 0 on clean trees.
//
// This file is NOT part of any build target; it only exists to be linted.

#include <cstddef>
#include <cstdint>

#include "common/thread_annotations.h"

namespace pldp {
namespace {

PLDP_HOT int* HotButAllocates() {
  return new int(42);  // the violation the lint must flag
}

/// Shaped like Predicate::EvalBatch / the shard's batched pop loop: a
/// PLDP_HOT bulk kernel over a span writing a result bitmask. The lint
/// must flag allocation inside such bodies too — the batch path is the
/// highest-traffic code in the runtime, and a per-batch scratch vector is
/// precisely the regression the zero-allocation contract exists to stop.
PLDP_HOT size_t HotBatchKernelButAllocates(const uint16_t* types, size_t n,
                                           uint64_t* mask_out) {
  auto* scratch = new uint16_t[n];  // per-batch heap scratch: must be flagged
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    scratch[i] = types[i];
    if (types[i] == 7) {
      mask_out[i / 64] |= uint64_t{1} << (i % 64);
      ++hits;
    }
  }
  delete[] scratch;
  return hits;
}

/// The indirect shape the one-level call-graph check exists for: the hot
/// body is spotless, but it calls an unannotated helper (defined right
/// here in the scanned set) that allocates one hop away. The lint must
/// flag the CALL — `ColdScratchHelper` is neither PLDP_HOT nor on the
/// allowlist — without needing to prove the helper allocates.
int* ColdScratchHelper(size_t n) { return new int[n]; }

PLDP_HOT size_t HotButCallsColdHelper(const uint16_t* types, size_t n) {
  int* scratch = ColdScratchHelper(n);  // the call the lint must flag
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    scratch[i] = types[i];
    if (types[i] == 7) ++hits;
  }
  delete[] scratch;
  return hits;
}

}  // namespace
}  // namespace pldp
