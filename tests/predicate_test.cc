// Copyright 2026 The PLDP Authors.

#include "cep/predicate.h"

#include <gtest/gtest.h>

namespace pldp {
namespace {

Event MakeEvent(EventTypeId type, double speed, int64_t cell,
                const std::string& zone) {
  Event e(type, 0);
  e.SetAttribute("speed", Value(speed));
  e.SetAttribute("cell", Value(cell));
  e.SetAttribute("zone", Value(zone));
  return e;
}

TEST(PredicateTest, TrueAlwaysHolds) {
  EXPECT_TRUE(MakeTrue()->Eval(Event(0, 0)).value());
}

TEST(PredicateTest, TypeIs) {
  auto p = MakeTypeIs(3);
  EXPECT_TRUE(p->Eval(Event(3, 0)).value());
  EXPECT_FALSE(p->Eval(Event(4, 0)).value());
}

TEST(PredicateTest, NumericCompareAllOps) {
  Event e = MakeEvent(0, 50.0, 7, "a");
  EXPECT_TRUE(MakeNumericCompare("speed", CompareOp::kEq, 50)->Eval(e).value());
  EXPECT_TRUE(MakeNumericCompare("speed", CompareOp::kNe, 49)->Eval(e).value());
  EXPECT_TRUE(MakeNumericCompare("speed", CompareOp::kLt, 51)->Eval(e).value());
  EXPECT_TRUE(MakeNumericCompare("speed", CompareOp::kLe, 50)->Eval(e).value());
  EXPECT_TRUE(MakeNumericCompare("speed", CompareOp::kGt, 49)->Eval(e).value());
  EXPECT_TRUE(MakeNumericCompare("speed", CompareOp::kGe, 50)->Eval(e).value());
  EXPECT_FALSE(
      MakeNumericCompare("speed", CompareOp::kLt, 50)->Eval(e).value());
}

TEST(PredicateTest, NumericCompareOnIntAttribute) {
  Event e = MakeEvent(0, 1.0, 42, "a");
  EXPECT_TRUE(MakeNumericCompare("cell", CompareOp::kEq, 42)->Eval(e).value());
}

TEST(PredicateTest, NumericCompareMissingAttributeIsFalse) {
  EXPECT_FALSE(
      MakeNumericCompare("nope", CompareOp::kEq, 1)->Eval(Event(0, 0)).value());
}

TEST(PredicateTest, NumericCompareOnStringAttributeErrors) {
  Event e = MakeEvent(0, 1.0, 1, "zone9");
  EXPECT_FALSE(MakeNumericCompare("zone", CompareOp::kEq, 1)->Eval(e).ok());
}

TEST(PredicateTest, StringCompare) {
  Event e = MakeEvent(0, 1.0, 1, "downtown");
  EXPECT_TRUE(
      MakeStringCompare("zone", CompareOp::kEq, "downtown")->Eval(e).value());
  EXPECT_FALSE(
      MakeStringCompare("zone", CompareOp::kEq, "suburb")->Eval(e).value());
  EXPECT_TRUE(
      MakeStringCompare("zone", CompareOp::kNe, "suburb")->Eval(e).value());
  EXPECT_FALSE(MakeStringCompare("missing", CompareOp::kEq, "x")
                   ->Eval(e)
                   .value());
}

TEST(PredicateTest, IntSetMember) {
  Event e = MakeEvent(0, 1.0, 7, "a");
  auto p = MakeIntSetMember("cell", {3, 7, 11});
  EXPECT_TRUE(p->Eval(e).value());
  auto q = MakeIntSetMember("cell", {1, 2});
  EXPECT_FALSE(q->Eval(e).value());
  EXPECT_FALSE(MakeIntSetMember("gone", {7})->Eval(e).value());
}

TEST(PredicateTest, AndOrNotCombinators) {
  Event e = MakeEvent(2, 50.0, 7, "a");
  auto is_type2 = MakeTypeIs(2);
  auto fast = MakeNumericCompare("speed", CompareOp::kGt, 40);
  auto slow = MakeNumericCompare("speed", CompareOp::kLt, 40);

  EXPECT_TRUE(MakeAnd({is_type2, fast})->Eval(e).value());
  EXPECT_FALSE(MakeAnd({is_type2, slow})->Eval(e).value());
  EXPECT_TRUE(MakeOr({slow, fast})->Eval(e).value());
  EXPECT_FALSE(MakeOr({slow, MakeTypeIs(9)})->Eval(e).value());
  EXPECT_TRUE(MakeNot(slow)->Eval(e).value());
  EXPECT_FALSE(MakeNot(fast)->Eval(e).value());
}

TEST(PredicateTest, EmptyAndIsTrueEmptyOrIsFalse) {
  Event e(0, 0);
  EXPECT_TRUE(MakeAnd({})->Eval(e).value());
  EXPECT_FALSE(MakeOr({})->Eval(e).value());
}

TEST(PredicateTest, ToStringRendersTree) {
  auto p = MakeAnd({MakeTypeIs(1),
                    MakeNot(MakeNumericCompare("x", CompareOp::kLt, 2))});
  EXPECT_EQ(p->ToString(), "(type==1&!x < 2)");
}

TEST(CompareOpTest, Names) {
  EXPECT_EQ(CompareOpToString(CompareOp::kEq), "==");
  EXPECT_EQ(CompareOpToString(CompareOp::kGe), ">=");
}

}  // namespace
}  // namespace pldp
