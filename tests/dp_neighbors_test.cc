// Copyright 2026 The PLDP Authors.
//
// The library's central DP property tests: Theorem 1 is *verified by
// enumeration*, not assumed.
//
//  - For in-pattern neighbors (one differing element), the worst-case
//    privacy loss of the pattern randomized-response mechanism equals
//    max_i ε_i.
//  - For arbitrary pattern-instance neighbors (all elements may differ),
//    the worst-case loss equals Σ ε_i — the pattern-level ε-DP bound.

#include "dp/neighbors.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace pldp {
namespace {

PatternRandomizedResponse MechFor(std::vector<double> epsilons) {
  auto alloc = BudgetAllocation::FromWeights(std::move(epsilons)).value();
  return PatternRandomizedResponse::FromAllocation(alloc).value();
}

TEST(InPatternNeighborsTest, FlipsEachPositionOnce) {
  std::vector<bool> x{true, false, true};
  auto ns = InPatternNeighbors(x);
  ASSERT_EQ(ns.size(), 3u);
  EXPECT_EQ(ns[0], (std::vector<bool>{false, false, true}));
  EXPECT_EQ(ns[1], (std::vector<bool>{true, true, true}));
  EXPECT_EQ(ns[2], (std::vector<bool>{true, false, false}));
}

TEST(ExactPrivacyLossTest, IdenticalInputsHaveZeroLoss) {
  auto mech = MechFor({1.0, 2.0});
  std::vector<bool> x{true, false};
  EXPECT_DOUBLE_EQ(ExactPrivacyLoss(mech, x, x).value(), 0.0);
}

TEST(ExactPrivacyLossTest, SingleBitLossEqualsEpsilon) {
  // A mechanism over one element with budget ε has loss exactly ε between
  // the two inputs.
  for (double eps : {0.2, 1.0, 3.0}) {
    auto mech = MechFor({eps});
    double loss = ExactPrivacyLoss(mech, {true}, {false}).value();
    EXPECT_NEAR(loss, eps, 1e-9) << "eps=" << eps;
  }
}

TEST(ExactPrivacyLossTest, LossIsSymmetric) {
  auto mech = MechFor({0.7, 1.3});
  std::vector<bool> x{true, false};
  std::vector<bool> y{false, true};
  EXPECT_NEAR(ExactPrivacyLoss(mech, x, y).value(),
              ExactPrivacyLoss(mech, y, x).value(), 1e-12);
}

TEST(ExactPrivacyLossTest, LossDependsOnlyOnDifferingPositions) {
  auto mech = MechFor({0.5, 1.5, 2.5});
  // Differ in position 1 only, from two different base points.
  double a = ExactPrivacyLoss(mech, {false, false, false},
                              {false, true, false})
                 .value();
  double b = ExactPrivacyLoss(mech, {true, false, true},
                              {true, true, true})
                 .value();
  EXPECT_NEAR(a, 1.5, 1e-9);
  EXPECT_NEAR(b, 1.5, 1e-9);  // same single differing position, other base
  // Two differing positions compose additively.
  double c = ExactPrivacyLoss(mech, {false, false, false},
                              {false, true, true})
                 .value();
  EXPECT_NEAR(c, 1.5 + 2.5, 1e-9);
}

TEST(ExactPrivacyLossTest, ValidatesInput) {
  auto mech = MechFor({1.0, 1.0});
  EXPECT_FALSE(ExactPrivacyLoss(mech, {true}, {true, false}).ok());
}

TEST(MaxInPatternNeighborLossTest, EqualsMaxElementEpsilon) {
  auto mech = MechFor({0.4, 2.2, 1.1});
  EXPECT_NEAR(MaxInPatternNeighborLoss(mech).value(), 2.2, 1e-9);
}

TEST(MaxArbitraryNeighborLossTest, EqualsTotalEpsilon_Theorem1) {
  // THE Theorem 1 check: worst-case loss over pattern-instance neighbors is
  // the sum of per-element budgets — the claimed pattern-level ε.
  auto mech = MechFor({0.4, 2.2, 1.1});
  EXPECT_NEAR(MaxArbitraryNeighborLoss(mech).value(), 3.7, 1e-9);
}

TEST(NeighborLossTest, EnumerationRejectsHugePatterns) {
  std::vector<double> eps(21, 0.1);
  auto mech = MechFor(eps);
  EXPECT_FALSE(MaxInPatternNeighborLoss(mech).ok());
}

/// Theorem 1 sweep: for any allocation, (a) in-pattern neighbor loss equals
/// max ε_i, (b) arbitrary-neighbor loss equals Σ ε_i, and (c) both bound
/// the loss between *any* specific pair of inputs.
class Theorem1Sweep : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(Theorem1Sweep, LossMatchesClosedForms) {
  const std::vector<double>& eps = GetParam();
  auto mech = MechFor(eps);

  double max_eps = *std::max_element(eps.begin(), eps.end());
  double sum_eps = 0.0;
  for (double e : eps) sum_eps += e;

  EXPECT_NEAR(MaxInPatternNeighborLoss(mech).value(), max_eps, 1e-9);
  EXPECT_NEAR(MaxArbitraryNeighborLoss(mech).value(), sum_eps, 1e-9);
}

TEST_P(Theorem1Sweep, AllInputPairsBoundedBySum) {
  const std::vector<double>& eps = GetParam();
  auto mech = MechFor(eps);
  double sum_eps = 0.0;
  for (double e : eps) sum_eps += e;

  const size_t m = eps.size();
  for (uint32_t xm = 0; xm < (1u << m); ++xm) {
    for (uint32_t ym = 0; ym < (1u << m); ++ym) {
      std::vector<bool> x(m), y(m);
      for (size_t i = 0; i < m; ++i) {
        x[i] = (xm >> i) & 1;
        y[i] = (ym >> i) & 1;
      }
      double loss = ExactPrivacyLoss(mech, x, y).value();
      EXPECT_LE(loss, sum_eps + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Allocations, Theorem1Sweep,
    ::testing::Values(std::vector<double>{1.0},
                      std::vector<double>{0.5, 0.5},
                      std::vector<double>{1.0, 0.0},
                      std::vector<double>{0.3, 0.3, 0.4},
                      std::vector<double>{2.0, 0.1, 0.9},
                      std::vector<double>{0.25, 0.25, 0.25, 0.25},
                      std::vector<double>{4.0, 3.0, 2.0, 1.0}));

/// The uniform split makes Theorem 1's bound ε for any pattern length m:
/// pattern-level DP holds with exactly the granted budget.
class UniformBudgetSweep
    : public ::testing::TestWithParam<std::pair<double, size_t>> {};

TEST_P(UniformBudgetSweep, UniformAllocationAchievesPatternLevelEpsilon) {
  auto [total, m] = GetParam();
  auto alloc = BudgetAllocation::Uniform(total, m).value();
  auto mech = PatternRandomizedResponse::FromAllocation(alloc).value();
  EXPECT_NEAR(MaxArbitraryNeighborLoss(mech).value(), total, 1e-9);
  EXPECT_NEAR(MaxInPatternNeighborLoss(mech).value(),
              total / static_cast<double>(m), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    BudgetsAndLengths, UniformBudgetSweep,
    ::testing::Values(std::make_pair(1.0, size_t{1}),
                      std::make_pair(1.0, size_t{3}),
                      std::make_pair(2.0, size_t{5}),
                      std::make_pair(0.1, size_t{2}),
                      std::make_pair(10.0, size_t{8})));

}  // namespace
}  // namespace pldp
