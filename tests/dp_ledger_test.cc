// Copyright 2026 The PLDP Authors.
//
// Tests for the per-pattern budget ledger: grants, charges, overdraft
// protection, and the audit trail.

#include "dp/ledger.h"

#include <gtest/gtest.h>

namespace pldp {
namespace {

TEST(LedgerTest, GrantOncePerPattern) {
  PatternBudgetLedger ledger;
  EXPECT_FALSE(ledger.HasGrant(0));
  ASSERT_TRUE(ledger.Grant(0, 2.0).ok());
  EXPECT_TRUE(ledger.HasGrant(0));
  EXPECT_TRUE(ledger.Grant(0, 1.0).IsAlreadyExists());
}

TEST(LedgerTest, GrantValidatesEpsilon) {
  PatternBudgetLedger ledger;
  EXPECT_FALSE(ledger.Grant(0, 0.0).ok());
  EXPECT_FALSE(ledger.Grant(0, -1.0).ok());
}

TEST(LedgerTest, ChargeSpendsAgainstGrant) {
  PatternBudgetLedger ledger;
  ASSERT_TRUE(ledger.Grant(3, 2.0).ok());
  ASSERT_TRUE(ledger.Charge(3, 0.5, "first activation").ok());
  EXPECT_NEAR(ledger.Remaining(3).value(), 1.5, 1e-12);
  ASSERT_TRUE(ledger.Charge(3, 1.5).ok());
  EXPECT_NEAR(ledger.Remaining(3).value(), 0.0, 1e-9);
}

TEST(LedgerTest, OverdraftRefusedAndLedgerUnchanged) {
  PatternBudgetLedger ledger;
  ASSERT_TRUE(ledger.Grant(1, 1.0).ok());
  ASSERT_TRUE(ledger.Charge(1, 0.8).ok());
  EXPECT_TRUE(ledger.Charge(1, 0.5).IsPrivacyBudgetExceeded());
  EXPECT_NEAR(ledger.Remaining(1).value(), 0.2, 1e-12);
  EXPECT_EQ(ledger.entries().size(), 1u);  // failed charge not recorded
}

TEST(LedgerTest, UnknownPatternIsNotFound) {
  PatternBudgetLedger ledger;
  EXPECT_TRUE(ledger.Charge(9, 0.1).IsNotFound());
  EXPECT_TRUE(ledger.Remaining(9).status().IsNotFound());
}

TEST(LedgerTest, TotalsAggregateAcrossPatterns) {
  PatternBudgetLedger ledger;
  ASSERT_TRUE(ledger.Grant(0, 1.0).ok());
  ASSERT_TRUE(ledger.Grant(1, 2.0).ok());
  ASSERT_TRUE(ledger.Charge(0, 0.5).ok());
  ASSERT_TRUE(ledger.Charge(1, 1.0).ok());
  EXPECT_DOUBLE_EQ(ledger.TotalGranted(), 3.0);
  EXPECT_DOUBLE_EQ(ledger.TotalSpent(), 1.5);
}

TEST(LedgerTest, AuditTrailRecordsOrderAndNotes) {
  PatternBudgetLedger ledger;
  ASSERT_TRUE(ledger.Grant(0, 5.0).ok());
  ASSERT_TRUE(ledger.Charge(0, 1.0, "consumer A").ok());
  ASSERT_TRUE(ledger.Charge(0, 2.0, "consumer B").ok());
  const auto& entries = ledger.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].note, "consumer A");
  EXPECT_DOUBLE_EQ(entries[0].epsilon, 1.0);
  EXPECT_EQ(entries[1].note, "consumer B");
  EXPECT_EQ(entries[1].pattern, 0u);
}

TEST(LedgerTest, IndependentPatternsDoNotInterfere) {
  PatternBudgetLedger ledger;
  ASSERT_TRUE(ledger.Grant(0, 1.0).ok());
  ASSERT_TRUE(ledger.Grant(1, 1.0).ok());
  ASSERT_TRUE(ledger.Charge(0, 1.0).ok());
  // Pattern 0 exhausted; pattern 1 untouched.
  EXPECT_TRUE(ledger.Charge(0, 0.1).IsPrivacyBudgetExceeded());
  EXPECT_TRUE(ledger.Charge(1, 0.9).ok());
}

}  // namespace
}  // namespace pldp
