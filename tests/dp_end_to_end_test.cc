// Copyright 2026 The PLDP Authors.
//
// System-level DP verification: the pattern-level guarantee measured
// through the full engine, not just the mechanism object.
//
// Construction: two window sequences that are pattern-level neighbors
// (Definition 3) — identical everywhere except that inside occurrences of
// the private pattern one element event is replaced (Definition 1). The
// engine publishes answers to target queries on both; the empirical
// likelihood ratio of every observed answer sequence must respect e^ε.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/pldp.h"
#include "test_util.h"

namespace pldp {
namespace {

using testing_util::AddPattern;
using testing_util::MakeWindow;
using testing_util::MakeWorld;
using testing_util::World;

/// Runs the uniform PPM over `windows` many times and returns the
/// empirical distribution over published answer vectors for the target.
std::map<std::vector<bool>, double> AnswerDistribution(
    const World& world, const std::vector<Window>& windows, size_t trials,
    uint64_t seed) {
  UniformPatternPpm ppm;
  EXPECT_TRUE(ppm.Initialize(world.Context()).ok());
  const Pattern& target = world.patterns.Get(world.target_ids[0]);

  std::map<std::vector<bool>, double> dist;
  Rng rng(seed);
  for (size_t t = 0; t < trials; ++t) {
    std::vector<bool> answers;
    ppm.Reset();
    for (const Window& w : windows) {
      PublishedView view = ppm.PublishWindow(w, &rng).value();
      answers.push_back(PatternDetectedInView(view, target));
    }
    dist[answers] += 1.0;
  }
  for (auto& [key, count] : dist) count /= static_cast<double>(trials);
  return dist;
}

TEST(EndToEndDpTest, SingleWindowAnswerRatioBoundedByEpsilon) {
  // Private pattern {0,1}; target query on {0} — the worst case: the
  // answer IS the protected bit.
  World world = MakeWorld(4);
  AddPattern(&world, "priv", {0, 1}, DetectionMode::kConjunction, true,
             false);
  AddPattern(&world, "tgt", {0}, DetectionMode::kDisjunction, false, true);
  world.epsilon = 1.0;

  // Neighbor streams: the private-pattern occurrence {0,1} vs the
  // in-pattern neighbor where element 0 is replaced by another event.
  std::vector<Window> with_pattern{MakeWindow(0, {0, 1})};
  std::vector<Window> neighbor{MakeWindow(0, {2, 1})};

  const size_t kTrials = 200000;
  auto p = AnswerDistribution(world, with_pattern, kTrials, 1);
  auto q = AnswerDistribution(world, neighbor, kTrials, 2);

  // Element budget is ε/2 = 0.5; the answer bit's ratio must respect it
  // (and a fortiori the pattern-level ε = 1 bound).
  for (const auto& [answers, prob_p] : p) {
    auto it = q.find(answers);
    ASSERT_NE(it, q.end()) << "answer vector unseen under neighbor";
    double ratio = std::abs(std::log(prob_p / it->second));
    EXPECT_LE(ratio, 0.5 + 0.05) << "sampling slack exceeded";
  }
}

TEST(EndToEndDpTest, MultiWindowSequenceRespectsPatternLevelBudget) {
  // Three windows; the private pattern occurs in windows 0 and 2. The
  // neighbor stream differs in one element of each occurrence. The
  // per-occurrence guarantee is ε; the observed log-ratio over full answer
  // sequences must stay within the composed bound (2ε here) and, for
  // single-occurrence differences, within ε.
  World world = MakeWorld(4);
  AddPattern(&world, "priv", {0, 1}, DetectionMode::kConjunction, true,
             false);
  AddPattern(&world, "tgt", {0, 3}, DetectionMode::kConjunction, false,
             true);
  world.epsilon = 1.5;

  std::vector<Window> stream_a{MakeWindow(0, {0, 1, 3}), MakeWindow(1, {3}),
                               MakeWindow(2, {0, 1})};
  // Neighbor: element 0 replaced in window 0 only (one occurrence differs).
  std::vector<Window> stream_b{MakeWindow(0, {2, 1, 3}), MakeWindow(1, {3}),
                               MakeWindow(2, {0, 1})};

  const size_t kTrials = 300000;
  auto p = AnswerDistribution(world, stream_a, kTrials, 3);
  auto q = AnswerDistribution(world, stream_b, kTrials, 4);

  for (const auto& [answers, prob_p] : p) {
    auto it = q.find(answers);
    if (it == q.end() || prob_p < 0.01 || it->second < 0.01) {
      continue;  // skip rare outcomes where sampling noise dominates
    }
    double loss = std::abs(std::log(prob_p / it->second));
    // One differing element with budget ε/2 = 0.75.
    EXPECT_LE(loss, 0.75 + 0.08)
        << "answer vector loss " << loss << " too high";
  }
}

TEST(EndToEndDpTest, NonPrivateChangesLeakFreely) {
  // Sanity check of the guarantee's scope: changes OUTSIDE the private
  // pattern are not protected — the answer changes deterministically.
  // (Pattern-level DP protects the pattern, not the whole stream; this is
  // exactly the data-quality trade the paper makes.)
  World world = MakeWorld(4);
  AddPattern(&world, "priv", {0, 1}, DetectionMode::kConjunction, true,
             false);
  AddPattern(&world, "tgt", {3}, DetectionMode::kDisjunction, false, true);
  world.epsilon = 1.0;

  std::vector<Window> with3{MakeWindow(0, {3})};
  std::vector<Window> without3{MakeWindow(0, {2})};
  auto p = AnswerDistribution(world, with3, 1000, 5);
  auto q = AnswerDistribution(world, without3, 1000, 6);
  EXPECT_DOUBLE_EQ(p.at({true}), 1.0);
  EXPECT_DOUBLE_EQ(q.at({false}), 1.0);
}

}  // namespace
}  // namespace pldp
