// Copyright 2026 The PLDP Authors.
//
// Tests for the event model: values, event types, events.

#include "event/event.h"

#include <gtest/gtest.h>

#include "event/event_type.h"
#include "event/value.h"

namespace pldp {
namespace {

// --- Value -----------------------------------------------------------------

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(int64_t{4}).is_int());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("s").is_string());

  EXPECT_EQ(Value(true).AsBool().value(), true);
  EXPECT_EQ(Value(int64_t{4}).AsInt().value(), 4);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble().value(), 2.5);
  EXPECT_EQ(Value("s").AsString().value(), "s");
}

TEST(ValueTest, KindMismatchErrors) {
  EXPECT_FALSE(Value(true).AsInt().ok());
  EXPECT_FALSE(Value(int64_t{1}).AsString().ok());
  EXPECT_FALSE(Value("x").AsDouble().ok());
}

TEST(ValueTest, AsNumericConvertsIntAndDouble) {
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).AsNumeric().value(), 3.0);
  EXPECT_DOUBLE_EQ(Value(1.5).AsNumeric().value(), 1.5);
  EXPECT_FALSE(Value("x").AsNumeric().ok());
  EXPECT_FALSE(Value(true).AsNumeric().ok());
}

TEST(ValueTest, EqualityRequiresSameKind) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(1.0));  // int vs double
  EXPECT_NE(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_EQ(Value("a"), Value(std::string("a")));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("cell").ToString(), "\"cell\"");
}

TEST(ValueTest, DefaultIsIntZero) {
  Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt().value(), 0);
}

TEST(ValueTest, AsStringViewIsNonCopyingAliasOfOwnedPayload) {
  const Value v("payload");
  StatusOr<std::string_view> view = v.AsStringView();
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view.value(), "payload");
  EXPECT_FALSE(Value(int64_t{1}).AsStringView().ok());
}

TEST(EventTest, FindAttributeReturnsPointerWithoutCopy) {
  Event e(0, 5);
  e.SetAttribute("speed", Value(50.5));
  const Value* found = e.FindAttribute("speed");
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->AsDouble().value(), 50.5);
  // The pointer aliases the event's storage: a replacement shows through.
  e.SetAttribute("speed", Value(60.0));
  EXPECT_DOUBLE_EQ(e.FindAttribute("speed")->AsDouble().value(), 60.0);
  EXPECT_EQ(e.FindAttribute("missing"), nullptr);
}

// --- EventTypeRegistry -------------------------------------------------------

TEST(EventTypeRegistryTest, RegisterAssignsDenseIds) {
  EventTypeRegistry reg;
  EXPECT_EQ(reg.Register("a").value(), 0u);
  EXPECT_EQ(reg.Register("b").value(), 1u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(EventTypeRegistryTest, RegisterRejectsDuplicates) {
  EventTypeRegistry reg;
  ASSERT_TRUE(reg.Register("a").ok());
  EXPECT_TRUE(reg.Register("a").status().IsAlreadyExists());
}

TEST(EventTypeRegistryTest, InternIsIdempotent) {
  EventTypeRegistry reg;
  EventTypeId a = reg.Intern("x");
  EXPECT_EQ(reg.Intern("x"), a);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(EventTypeRegistryTest, LookupAndName) {
  EventTypeRegistry reg;
  EventTypeId id = reg.Intern("sensor");
  EXPECT_EQ(reg.Lookup("sensor").value(), id);
  EXPECT_EQ(reg.Name(id).value(), "sensor");
  EXPECT_TRUE(reg.Lookup("missing").status().IsNotFound());
  EXPECT_TRUE(reg.Name(99).status().IsNotFound());
}

TEST(EventTypeRegistryTest, MakeDenseNamesSequentially) {
  EventTypeRegistry reg = EventTypeRegistry::MakeDense(3, "e");
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.Name(0).value(), "e0");
  EXPECT_EQ(reg.Name(2).value(), "e2");
}

TEST(EventTypeRegistryTest, ContainsChecksBounds) {
  EventTypeRegistry reg = EventTypeRegistry::MakeDense(2);
  EXPECT_TRUE(reg.Contains(0));
  EXPECT_TRUE(reg.Contains(1));
  EXPECT_FALSE(reg.Contains(2));
  EXPECT_FALSE(reg.Contains(kInvalidEventType));
}

// --- Event --------------------------------------------------------------------

TEST(EventTest, BasicFields) {
  Event e(3, 100, 7);
  EXPECT_EQ(e.type(), 3u);
  EXPECT_EQ(e.timestamp(), 100);
  EXPECT_EQ(e.stream(), 7u);
}

TEST(EventTest, AttributesSetAndGet) {
  Event e(0, 0);
  e.SetAttribute("speed", Value(50.5));
  e.SetAttribute("cell", Value(int64_t{12}));
  EXPECT_EQ(e.attribute_count(), 2u);
  EXPECT_DOUBLE_EQ(e.GetAttribute("speed")->AsDouble().value(), 50.5);
  EXPECT_FALSE(e.GetAttribute("missing").has_value());
}

TEST(EventTest, SetAttributeReplaces) {
  Event e(0, 0);
  e.SetAttribute("x", Value(int64_t{1}));
  e.SetAttribute("x", Value(int64_t{2}));
  EXPECT_EQ(e.attribute_count(), 1u);
  EXPECT_EQ(e.GetAttribute("x")->AsInt().value(), 2);
}

TEST(EventTest, RequireAttributeErrorsWhenAbsent) {
  Event e(0, 0);
  EXPECT_TRUE(e.RequireAttribute("nope").status().IsNotFound());
  e.SetAttribute("yes", Value(true));
  EXPECT_TRUE(e.RequireAttribute("yes").ok());
}

TEST(EventTest, EqualityIncludesAttributes) {
  Event a(1, 5);
  Event b(1, 5);
  EXPECT_EQ(a, b);
  a.SetAttribute("k", Value(int64_t{1}));
  EXPECT_NE(a, b);
  b.SetAttribute("k", Value(int64_t{1}));
  EXPECT_EQ(a, b);
}

TEST(EventTest, ToStringWithRegistry) {
  EventTypeRegistry reg;
  EventTypeId t = reg.Intern("gps");
  Event e(t, 17);
  e.SetAttribute("cell", Value(int64_t{42}));
  EXPECT_EQ(e.ToString(&reg), "gps@17{cell=42}");
  EXPECT_EQ(Event(5, 2).ToString(), "type5@2");
}

TEST(EventTemporalOrderTest, OrdersByTimestampThenStreamThenType) {
  EventTemporalOrder lt;
  EXPECT_TRUE(lt(Event(0, 1), Event(0, 2)));
  EXPECT_FALSE(lt(Event(0, 2), Event(0, 1)));
  // Same timestamp: stream breaks the tie.
  EXPECT_TRUE(lt(Event(0, 1, 0), Event(0, 1, 1)));
  // Same timestamp and stream: type breaks the tie.
  EXPECT_TRUE(lt(Event(0, 1, 0), Event(1, 1, 0)));
  // Identical keys: not less.
  EXPECT_FALSE(lt(Event(1, 1, 1), Event(1, 1, 1)));
}

}  // namespace
}  // namespace pldp
