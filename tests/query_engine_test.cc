// Copyright 2026 The PLDP Authors.
//
// Tests for AnswerSeries, the plain CepEngine, and pattern streams.

#include "cep/engine.h"

#include <gtest/gtest.h>

namespace pldp {
namespace {

TEST(AnswerSeriesTest, AppendAndAccess) {
  AnswerSeries s;
  s.Append(true);
  s.Append(false);
  s.Append(true);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s[0]);
  EXPECT_FALSE(s[1]);
  EXPECT_EQ(s.PositiveCount(), 2u);
}

TEST(AnswerSeriesTest, HammingDistance) {
  AnswerSeries a({true, false, true});
  AnswerSeries b({true, true, false});
  EXPECT_EQ(a.HammingDistance(b).value(), 2u);
  EXPECT_EQ(a.HammingDistance(a).value(), 0u);
  AnswerSeries shorter({true});
  EXPECT_FALSE(a.HammingDistance(shorter).ok());
}

class CepEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = engine_.InternEventType("a");
    b_ = engine_.InternEventType("b");
    c_ = engine_.InternEventType("c");
    seq_ab_ = engine_
                  .RegisterPattern(Pattern::Create(
                                       "seq_ab", {a_, b_},
                                       DetectionMode::kSequence)
                                       .value())
                  .value();
    conj_bc_ = engine_
                   .RegisterPattern(Pattern::Create(
                                        "conj_bc", {b_, c_},
                                        DetectionMode::kConjunction)
                                        .value())
                   .value();
  }

  std::vector<Window> MakeWindows() {
    // w0: a then b (seq_ab yes, conj_bc no)
    // w1: c then b (seq_ab no, conj_bc yes)
    // w2: b then a (seq_ab no, conj_bc no)
    std::vector<Window> ws(3);
    ws[0].start = 0;
    ws[0].end = 10;
    ws[0].events = {Event(a_, 1), Event(b_, 5)};
    ws[1].start = 10;
    ws[1].end = 20;
    ws[1].events = {Event(c_, 11), Event(b_, 15)};
    ws[2].start = 20;
    ws[2].end = 30;
    ws[2].events = {Event(b_, 21), Event(a_, 25)};
    return ws;
  }

  CepEngine engine_;
  EventTypeId a_ = 0, b_ = 0, c_ = 0;
  PatternId seq_ab_ = 0, conj_bc_ = 0;
};

TEST_F(CepEngineTest, RegisterQueryValidatesPattern) {
  EXPECT_TRUE(engine_.RegisterQuery("q", seq_ab_).ok());
  EXPECT_TRUE(engine_.RegisterQuery("bad", 99).status().IsNotFound());
  EXPECT_TRUE(engine_.RegisterQuery("q", conj_bc_).status().IsAlreadyExists());
}

TEST_F(CepEngineTest, EvaluateQueryPerWindow) {
  QueryId q1 = engine_.RegisterQuery("q1", seq_ab_).value();
  QueryId q2 = engine_.RegisterQuery("q2", conj_bc_).value();
  auto windows = MakeWindows();
  auto ans1 = engine_.EvaluateQuery(windows, q1).value();
  auto ans2 = engine_.EvaluateQuery(windows, q2).value();
  EXPECT_EQ(ans1.answers(), (std::vector<bool>{true, false, false}));
  EXPECT_EQ(ans2.answers(), (std::vector<bool>{false, true, false}));
}

TEST_F(CepEngineTest, EvaluateUnknownQueryErrors) {
  EXPECT_TRUE(engine_.EvaluateQuery({}, 5).status().IsNotFound());
}

TEST_F(CepEngineTest, EvaluateAllMatchesIndividual) {
  engine_.RegisterQuery("q1", seq_ab_).value();
  engine_.RegisterQuery("q2", conj_bc_).value();
  auto windows = MakeWindows();
  auto all = engine_.EvaluateAll(windows).value();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].answers(),
            engine_.EvaluateQuery(windows, 0).value().answers());
  EXPECT_EQ(all[1].answers(),
            engine_.EvaluateQuery(windows, 1).value().answers());
}

TEST_F(CepEngineTest, AbstractBuildsPatternStream) {
  auto windows = MakeWindows();
  PatternStream ps = engine_.Abstract(windows).value();
  // seq_ab in w0, conj_bc in w1.
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps[0].pattern, seq_ab_);
  EXPECT_EQ(ps[0].window_index, 0u);
  EXPECT_EQ(ps[1].pattern, conj_bc_);
  EXPECT_EQ(ps[1].window_index, 1u);
}

TEST(PatternStreamTest, OfPatternFilters) {
  PatternStream ps;
  ps.Append({.pattern = 0, .window_index = 0, .event_positions = {0}});
  ps.Append({.pattern = 1, .window_index = 0, .event_positions = {1}});
  ps.Append({.pattern = 0, .window_index = 1, .event_positions = {0}});
  EXPECT_EQ(ps.OfPattern(0).size(), 2u);
  EXPECT_EQ(ps.OfPattern(1).size(), 1u);
  EXPECT_TRUE(ps.OfPattern(9).empty());
}

TEST(PatternStreamTest, OverlapRequiresSharedEventInSameWindow) {
  PatternStream ps;
  ps.Append({.pattern = 0, .window_index = 0, .event_positions = {0, 2}});
  ps.Append({.pattern = 1, .window_index = 0, .event_positions = {2, 3}});
  ps.Append({.pattern = 2, .window_index = 0, .event_positions = {4}});
  ps.Append({.pattern = 0, .window_index = 1, .event_positions = {0}});
  EXPECT_TRUE(ps.InstancesOverlap(0, 1));   // share position 2
  EXPECT_FALSE(ps.InstancesOverlap(0, 2));  // disjoint positions
  EXPECT_FALSE(ps.InstancesOverlap(0, 3));  // different windows
  auto pairs = ps.OverlappingPairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (std::pair<size_t, size_t>{0, 1}));
}

}  // namespace
}  // namespace pldp
