// Copyright 2026 The PLDP Authors.
//
// Pins the TextEndpoint shutdown ordering bug: Stop() used to close the
// listener fd BEFORE joining the accept thread. Between the close and the
// join the kernel may hand the same fd number to a concurrently opened
// socket (any client connection in these loops), so the accept thread's
// in-flight ::accept could then operate on a stranger's descriptor. The
// fix (src/obs/endpoint.cc) shuts the listener down to unblock the accept
// thread, joins it, and only then closes the fd. These loops turn that
// window into a reliably exercised path — rapid Start/Stop cycles with
// client traffic in flight — and double as a TSan check in CI.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/endpoint.h"

namespace pldp {
namespace obs {
namespace {

/// Minimal HTTP client: one GET, full response; "" on any socket failure
/// (connection refusals while the endpoint restarts are expected here).
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(EndpointRaceTest, StopRacingInFlightRequests) {
  TextEndpoint::Routes routes;
  routes.metrics_text = [] { return std::string("metric_a 1\n"); };
  TextEndpoint endpoint(std::move(routes));
  ASSERT_TRUE(endpoint.Start(0).ok());
  const uint16_t port = endpoint.port();
  ASSERT_NE(port, 0);

  std::atomic<bool> stop{false};
  std::atomic<size_t> served{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 3; ++i) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        if (HttpGet(port, "/metrics").find("200 OK") != std::string::npos) {
          served.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Let the clients get requests in flight, then stop the endpoint from
  // under them. With join-before-close this is clean; with the old
  // ordering the accept thread could touch a recycled fd number owned by
  // one of the client sockets above.
  while (served.load(std::memory_order_relaxed) < 8) {
    std::this_thread::yield();
  }
  endpoint.Stop();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();

  EXPECT_GE(served.load(), 8u);
}

TEST(EndpointRaceTest, RapidStartStopCyclesWithTraffic) {
  TextEndpoint::Routes routes;
  routes.metrics_text = [] { return std::string("cycle_metric 1\n"); };
  TextEndpoint endpoint(std::move(routes));

  std::atomic<uint16_t> current_port{0};
  std::atomic<bool> stop{false};
  std::thread client([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const uint16_t port = current_port.load(std::memory_order_acquire);
      if (port != 0) (void)HttpGet(port, "/metrics");
    }
  });

  for (int cycle = 0; cycle < 24; ++cycle) {
    ASSERT_TRUE(endpoint.Start(0).ok());
    current_port.store(endpoint.port(), std::memory_order_release);
    // At least one successful scrape per cycle keeps the accept thread
    // genuinely busy when Stop lands.
    for (int attempt = 0; attempt < 64; ++attempt) {
      if (HttpGet(endpoint.port(), "/metrics").find("200 OK") !=
          std::string::npos) {
        break;
      }
    }
    current_port.store(0, std::memory_order_release);
    endpoint.Stop();
    endpoint.Stop();  // idempotent under the new ordering too
  }

  stop.store(true, std::memory_order_release);
  client.join();
}

}  // namespace
}  // namespace obs
}  // namespace pldp
