// Copyright 2026 The PLDP Authors.

#include "dp/composition.h"

#include <gtest/gtest.h>

#include <limits>

namespace pldp {
namespace {

TEST(ComposeSequentialTest, SumsEpsilons) {
  EXPECT_DOUBLE_EQ(ComposeSequential({0.5, 0.25, 0.25}).value(), 1.0);
  EXPECT_DOUBLE_EQ(ComposeSequential({}).value(), 0.0);
  EXPECT_DOUBLE_EQ(ComposeSequential({2.0}).value(), 2.0);
}

TEST(ComposeSequentialTest, RejectsNegativeOrNonFinite) {
  EXPECT_FALSE(ComposeSequential({0.5, -0.1}).ok());
  EXPECT_FALSE(
      ComposeSequential({std::numeric_limits<double>::infinity()}).ok());
  EXPECT_FALSE(
      ComposeSequential({std::numeric_limits<double>::quiet_NaN()}).ok());
}

TEST(ComposeParallelTest, TakesMaximum) {
  EXPECT_DOUBLE_EQ(ComposeParallel({0.5, 2.0, 1.0}).value(), 2.0);
  EXPECT_DOUBLE_EQ(ComposeParallel({0.7}).value(), 0.7);
  EXPECT_DOUBLE_EQ(ComposeParallel({0.0, 0.0}).value(), 0.0);
}

TEST(ComposeParallelTest, RejectsEmptyAndInvalid) {
  EXPECT_FALSE(ComposeParallel({}).ok());
  EXPECT_FALSE(ComposeParallel({-1.0}).ok());
}

TEST(CompositionTest, ParallelNeverExceedsSequential) {
  std::vector<double> eps{0.1, 0.9, 0.4, 0.2};
  EXPECT_LE(ComposeParallel(eps).value(), ComposeSequential(eps).value());
}

}  // namespace
}  // namespace pldp
