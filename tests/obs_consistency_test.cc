// Copyright 2026 The PLDP Authors.
//
// Metrics-consistency pinning: under fixed seeds, the telemetry layer must
// reconcile EXACTLY with ground truth at 1/2/4 shards — not "roughly
// agree". Sum of per-shard events == events ingested; exchange forwarded
// == merge received == merge released; per-event latency histogram count
// == events processed; private windows/subjects/budget gauges == the
// engine's own result counters. A telemetry layer that drops or
// double-counts under concurrency is worse than none.
//
// The scrape-concurrency test runs snapshot/render/health loops against a
// live ingesting pipeline; under the TSan CI configuration it doubles as a
// data-race check of the whole instrument plane.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "api/pipeline_builder.h"
#include "common/random.h"
#include "obs/metrics.h"
#include "stream/event_stream.h"
#include "stream/replay.h"

namespace pldp {
namespace {

constexpr uint64_t kSeed = 0x0b5e7eedULL;
constexpr Timestamp kQueryWindow = 8;
constexpr size_t kTypes = 3;
constexpr size_t kSubjects = 8;

Pattern MakePattern(const char* name, std::vector<EventTypeId> elems,
                    DetectionMode mode) {
  return Pattern::Create(name, std::move(elems), mode).value();
}

/// Subjects and types drawn independently, so both subject-local and
/// cross-subject queries see work.
EventStream MakeStream(size_t num_events, uint64_t seed) {
  Rng rng(seed);
  EventStream stream;
  stream.Reserve(num_events);
  for (size_t i = 0; i < num_events; ++i) {
    const auto type = static_cast<EventTypeId>(rng.UniformUint64(kTypes));
    const auto subject = static_cast<StreamId>(rng.UniformUint64(kSubjects));
    stream.AppendUnchecked(
        Event(type, static_cast<Timestamp>(i / 8), subject));
  }
  return stream;
}

/// Sum of a family's sample values restricted to one label value.
double SumWhere(const obs::MetricFamily* family, const std::string& key,
                const std::string& value) {
  if (family == nullptr) return 0.0;
  double total = 0.0;
  for (const obs::MetricSample& sample : family->samples) {
    for (const auto& kv : sample.labels) {
      if (kv.first == key && kv.second == value) {
        total += sample.value;
        break;
      }
    }
  }
  return total;
}

/// Total histogram count restricted to one label value.
uint64_t HistCountWhere(const obs::MetricFamily* family,
                        const std::string& key, const std::string& value) {
  if (family == nullptr) return 0;
  uint64_t total = 0;
  for (const obs::MetricSample& sample : family->samples) {
    for (const auto& kv : sample.labels) {
      if (kv.first == key && kv.second == value) {
        total += sample.histogram.count;
        break;
      }
    }
  }
  return total;
}

TEST(MetricsConsistencyTest, PlainAndCrossReconcileExactly) {
  const EventStream stream = MakeStream(20000, 21);
  const Pattern plain_pattern =
      MakePattern("seq", {0, 1, 2}, DetectionMode::kSequence);
  const Pattern cross_pattern =
      MakePattern("conj", {0, 1, 2}, DetectionMode::kConjunction);

  for (size_t shards : {1u, 2u, 4u}) {
    PipelineBuilder builder;
    (void)builder.AddQuery(plain_pattern, kQueryWindow);
    (void)builder.AddCrossQuery(cross_pattern, kQueryWindow,
                                CorrelationKey::Global());
    auto pipeline_or = builder.WithShards(shards)
                           .WithCrossShards(2)
                           .WithSeed(kSeed)
                           .EnableMetrics()
                           .Build();
    ASSERT_TRUE(pipeline_or.ok()) << pipeline_or.status().ToString();
    Pipeline& pipeline = *pipeline_or.value();
    ASSERT_NE(pipeline.metrics(), nullptr);

    StreamReplayer replayer;
    replayer.Subscribe(&pipeline);
    ASSERT_TRUE(replayer.Run(stream, ReplayMode::kBatchPerTick).ok());
    ASSERT_TRUE(pipeline.Finish().ok());

    const obs::MetricsSnapshot snapshot = pipeline.MetricsSnapshot();
    const double n = static_cast<double>(stream.size());

    // Ingest == sum of per-shard processed events, exactly.
    EXPECT_EQ(obs::SumSamples(
                  snapshot.Find("pldp_pipeline_events_ingested_total")),
              n)
        << "shards=" << shards;
    EXPECT_EQ(SumWhere(snapshot.Find("pldp_shard_events_total"), "lane",
                       "plain"),
              n)
        << "shards=" << shards;
    // Every processed event recorded exactly one latency sample, and the
    // pop-burst histogram accounted for every event once.
    EXPECT_EQ(HistCountWhere(snapshot.Find("pldp_shard_process_latency_ns"),
                             "lane", "plain"),
              stream.size())
        << "shards=" << shards;
    const obs::HistogramData bursts = obs::AggregateHistogram(
        snapshot.Find("pldp_shard_batch_size"));
    EXPECT_EQ(bursts.sum, stream.size()) << "shards=" << shards;

    if (shards > 1) {
      // Conservation across the exchange: everything forwarded was
      // received, and after Finish everything received was released.
      const double forwarded = SumWhere(
          snapshot.Find("pldp_exchange_forwarded_total"), "lane", "plain");
      const double received = SumWhere(
          snapshot.Find("pldp_merge_events_received_total"), "lane", "plain");
      const double merged = SumWhere(snapshot.Find("pldp_merge_events_total"),
                                     "lane", "plain");
      EXPECT_EQ(forwarded, n) << "shards=" << shards;
      EXPECT_EQ(received, forwarded) << "shards=" << shards;
      EXPECT_EQ(merged, received) << "shards=" << shards;
      EXPECT_EQ(HistCountWhere(snapshot.Find("pldp_merge_latency_ns"), "lane",
                               "plain"),
                static_cast<uint64_t>(merged))
          << "shards=" << shards;
      // Watermark broadcasts happened (producer floors + the end seal).
      EXPECT_GT(SumWhere(snapshot.Find("pldp_exchange_watermarks_total"),
                         "lane", "plain"),
                0.0)
          << "shards=" << shards;
    }

    // Drained pipeline: every occupancy gauge reads empty.
    EXPECT_EQ(obs::SumSamples(snapshot.Find("pldp_shard_queue_depth")), 0.0)
        << "shards=" << shards;
    EXPECT_EQ(obs::SumSamples(snapshot.Find("pldp_exchange_lane_depth")), 0.0)
        << "shards=" << shards;
    EXPECT_EQ(obs::SumSamples(snapshot.Find("pldp_merge_reorder_depth")), 0.0)
        << "shards=" << shards;

    // Intern-table gauges report live occupancy against their budgets.
    EXPECT_GT(obs::SumSamples(snapshot.Find("pldp_intern_attr_budget")), 0.0);
    EXPECT_GT(obs::SumSamples(snapshot.Find("pldp_intern_symbol_budget")),
              0.0);
  }
}

TEST(MetricsConsistencyTest, PrivateLaneReconcilesExactly) {
  constexpr Timestamp kPrivacyWindow = 5;
  constexpr double kEpsilon = 1.0;
  const EventStream stream = MakeStream(8000, 23);

  for (size_t shards : {1u, 2u, 4u}) {
    PipelineBuilder builder;
    for (size_t t = 0; t < kTypes; ++t) {
      (void)builder.InternEventType("t" + std::to_string(t));
    }
    builder.AddPrivatePattern(
        MakePattern("meds", {0, 1}, DetectionMode::kConjunction));
    PrivateQueryHandle q = builder.AddPrivateQuery(
        "came_home", MakePattern("home", {0, 2}, DetectionMode::kConjunction));
    auto pipeline_or = builder.WithShards(shards)
                           .WithSeed(kSeed)
                           .WithPrivacyWindow(kPrivacyWindow)
                           .WithMechanism("uniform")
                           .WithEpsilon(kEpsilon)
                           .EnableMetrics()
                           .Build();
    ASSERT_TRUE(pipeline_or.ok()) << pipeline_or.status().ToString();
    Pipeline& pipeline = *pipeline_or.value();

    StreamReplayer replayer;
    replayer.Subscribe(&pipeline);
    ASSERT_TRUE(replayer.Run(stream, ReplayMode::kBatchPerTick).ok());
    auto finished_or = pipeline.Finish();
    ASSERT_TRUE(finished_or.ok()) << finished_or.status().ToString();
    const FinishedPipeline& finished = finished_or.value();
    ASSERT_TRUE(finished.AnswersOf(q, finished.Subjects().front()).ok());

    const obs::MetricsSnapshot snapshot = pipeline.MetricsSnapshot();
    EXPECT_EQ(SumWhere(snapshot.Find("pldp_shard_events_total"), "lane",
                       "private"),
              static_cast<double>(stream.size()))
        << "shards=" << shards;
    EXPECT_EQ(obs::SumSamples(snapshot.Find("pldp_private_windows_total")),
              static_cast<double>(finished.total_windows()))
        << "shards=" << shards;
    EXPECT_EQ(obs::SumSamples(snapshot.Find("pldp_private_subjects")),
              static_cast<double>(finished.Subjects().size()))
        << "shards=" << shards;
    // The budget ledger granted ε to the one private pattern and charged
    // the activation against it in full.
    EXPECT_EQ(obs::SumSamples(snapshot.Find("pldp_dp_budget_granted")),
              kEpsilon)
        << "shards=" << shards;
    EXPECT_EQ(obs::SumSamples(snapshot.Find("pldp_dp_budget_spent")),
              kEpsilon)
        << "shards=" << shards;
  }
}

TEST(MetricsConsistencyTest, DisabledMetricsExposeNothing) {
  PipelineBuilder builder;
  (void)builder.AddQuery(MakePattern("seq", {0, 1}, DetectionMode::kSequence),
                         kQueryWindow);
  auto pipeline_or = builder.WithShards(2).Build();
  ASSERT_TRUE(pipeline_or.ok());
  Pipeline& pipeline = *pipeline_or.value();
  EXPECT_EQ(pipeline.metrics(), nullptr);
  EXPECT_TRUE(pipeline.MetricsSnapshot().families.empty());
  // Health still works without metrics (it reads live runtime state).
  EXPECT_EQ(pipeline.Health().state, obs::PipelineHealth::State::kHealthy);
  ASSERT_TRUE(pipeline.Finish().ok());
}

/// Scrapes (snapshot + both renderings + health) race ingestion. Exactness
/// still holds at the end; under TSan this covers the whole instrument
/// plane for data races.
TEST(MetricsConsistencyTest, ConcurrentScrapeWhileIngesting) {
  const EventStream stream = MakeStream(60000, 29);
  PipelineBuilder builder;
  (void)builder.AddQuery(MakePattern("seq", {0, 1, 2},
                                     DetectionMode::kSequence),
                         kQueryWindow);
  (void)builder.AddCrossQuery(
      MakePattern("conj", {0, 1, 2}, DetectionMode::kConjunction),
      kQueryWindow, CorrelationKey::Global());
  auto pipeline_or =
      builder.WithShards(2).WithCrossShards(2).WithSeed(kSeed).EnableMetrics()
          .Build();
  ASSERT_TRUE(pipeline_or.ok()) << pipeline_or.status().ToString();
  Pipeline& pipeline = *pipeline_or.value();

  std::atomic<bool> stop{false};
  std::atomic<size_t> scrapes{0};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const obs::MetricsSnapshot snapshot = pipeline.MetricsSnapshot();
      const std::string text = obs::RenderPrometheusText(snapshot);
      const std::string json = obs::RenderJson(snapshot);
      const obs::PipelineHealth health = pipeline.Health();
      if (!text.empty() && !json.empty() && !health.Describe().empty()) {
        scrapes.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  constexpr size_t kBatch = 256;
  const std::vector<Event>& events = stream.events();
  for (size_t i = 0; i < events.size(); i += kBatch) {
    const size_t n = std::min(kBatch, events.size() - i);
    ASSERT_TRUE(
        pipeline.OnEventBatch(EventSpan(events.data() + i, n)).ok());
  }
  ASSERT_TRUE(pipeline.Finish().ok());
  stop.store(true, std::memory_order_release);
  scraper.join();
  EXPECT_GT(scrapes.load(), 0u);

  const obs::MetricsSnapshot snapshot = pipeline.MetricsSnapshot();
  const double n = static_cast<double>(stream.size());
  EXPECT_EQ(
      obs::SumSamples(snapshot.Find("pldp_pipeline_events_ingested_total")),
      n);
  EXPECT_EQ(SumWhere(snapshot.Find("pldp_shard_events_total"), "lane",
                     "plain"),
            n);
  EXPECT_EQ(SumWhere(snapshot.Find("pldp_merge_events_total"), "lane",
                     "plain"),
            SumWhere(snapshot.Find("pldp_exchange_forwarded_total"), "lane",
                     "plain"));
}

}  // namespace
}  // namespace pldp
