// Copyright 2026 The PLDP Authors.
//
// Tests for the ingest admission/shedding layer (runtime/admission.h,
// runtime/overload.h) and its engine integration.
//
// The unit tests drive an AdmissionQueue against shards whose workers are
// not running (TryPushStampedN accepts nothing then), so every park/shed
// decision is fully deterministic — no timing, no threads. The engine
// tests pin the two contracts that make shedding safe to turn on: a run
// in which nothing is shed is bit-identical to the blocking default, and
// when events ARE shed the accounting is exact — admitted + shed equals
// everything offered, and quality::SheddingStats turns that into a recall
// floor.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "api/pipeline_builder.h"
#include "common/random.h"
#include "quality/metrics.h"
#include "runtime/admission.h"
#include "runtime/overload.h"
#include "runtime/parallel_engine.h"
#include "runtime/shard.h"
#include "stream/event_stream.h"

namespace pldp {
namespace {

constexpr Timestamp kWindow = 6;

Pattern MakePattern(const char* name, std::vector<EventTypeId> elems,
                    DetectionMode mode) {
  return Pattern::Create(name, std::move(elems), mode).value();
}

StampedEvent Stamped(uint64_t seq, EventTypeId type, StreamId subject) {
  StampedEvent s;
  s.seq = seq;
  s.event = Event(type, static_cast<Timestamp>(seq), subject);
  return s;
}

// --- Policy plumbing -------------------------------------------------------

TEST(OverloadPolicyTest, NamesRoundTripThroughTheParser) {
  for (OverloadPolicy policy :
       {OverloadPolicy::kBlock, OverloadPolicy::kShedOldest,
        OverloadPolicy::kShedBySubject}) {
    auto parsed = ParseOverloadPolicy(OverloadPolicyName(policy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), policy);
  }
  EXPECT_TRUE(ParseOverloadPolicy("drop-everything").status()
                  .IsInvalidArgument());
}

// --- AdmissionQueue unit tests (deterministic: worker not running) ---------

TEST(AdmissionQueueTest, ShedOldestDropsOldestParkedEventDeterministically) {
  Shard shard(0, /*queue_capacity=*/8, /*seed=*/1);
  OverloadOptions options;
  options.policy = OverloadPolicy::kShedOldest;
  options.pending_capacity = 4;
  std::atomic<uint64_t> pushed{0};
  AdmissionQueue admission(options, {&shard}, &pushed);

  // Worker not running: the queue accepts nothing, everything parks.
  for (uint64_t seq = 0; seq < 4; ++seq) {
    EXPECT_TRUE(admission.Offer(0, Stamped(seq, 0, 1)));
  }
  EXPECT_EQ(admission.pending_total(), 4u);
  EXPECT_EQ(admission.shed_total(), 0u);
  EXPECT_EQ(admission.ClampFloor(100), 0u);  // oldest parked is seq 0

  // Overflow: each new offer evicts the oldest parked event, exactly.
  EXPECT_TRUE(admission.Offer(0, Stamped(4, 0, 1)));
  EXPECT_EQ(admission.shed_total(), 1u);     // seq 0 gone
  EXPECT_EQ(admission.ClampFloor(100), 1u);  // oldest parked is now seq 1
  EXPECT_TRUE(admission.Offer(0, Stamped(5, 0, 1)));
  EXPECT_TRUE(admission.Offer(0, Stamped(6, 0, 1)));
  EXPECT_EQ(admission.shed_total(), 3u);     // seqs 0, 1, 2 gone
  EXPECT_EQ(admission.pending_total(), 4u);  // still capped
  EXPECT_EQ(admission.ShedPerShard(), std::vector<uint64_t>{3});

  // Start the worker and flush: the surviving four (seqs 3..6) land, in
  // order, and the floor clamp lifts.
  ASSERT_TRUE(shard.Start().ok());
  ASSERT_TRUE(admission.FlushBlocking().ok());
  EXPECT_EQ(admission.pending_total(), 0u);
  EXPECT_EQ(pushed.load(), 4u);
  EXPECT_EQ(admission.ClampFloor(100), 100u);
  ASSERT_TRUE(shard.Drain().ok());
  EXPECT_EQ(shard.stats().events_processed, 4u);
  ASSERT_TRUE(shard.Stop().ok());
}

TEST(AdmissionQueueTest, ShedBySubjectQuarantinesOverflowingSubjects) {
  Shard shard(0, /*queue_capacity=*/8, /*seed=*/1);
  OverloadOptions options;
  options.policy = OverloadPolicy::kShedBySubject;
  options.pending_capacity = 2;
  std::atomic<uint64_t> pushed{0};
  AdmissionQueue admission(options, {&shard}, &pushed);

  const Event subject_a(0, 0, /*subject=*/1);
  const Event subject_b(0, 0, /*subject=*/2);

  // Nothing shed yet: no subject is quarantined.
  EXPECT_FALSE(admission.ShouldShedBeforeStamp(0, subject_a));
  EXPECT_TRUE(admission.Offer(0, Stamped(0, 0, 1)));
  EXPECT_TRUE(admission.Offer(0, Stamped(1, 0, 1)));

  // Subject 2 overflows the full pending buffer: its event is dropped and
  // the subject joins the shed set — but subject 1's parked events stay.
  EXPECT_FALSE(admission.Offer(0, Stamped(2, 0, 2)));
  EXPECT_EQ(admission.shed_total(), 1u);
  EXPECT_TRUE(admission.ShouldShedBeforeStamp(0, subject_b));
  EXPECT_EQ(admission.shed_total(), 2u);  // the pre-stamp check counts too
  EXPECT_FALSE(admission.ShouldShedBeforeStamp(0, subject_a));

  // Subject 1 overflows as well: it joins the set alongside subject 2.
  EXPECT_FALSE(admission.Offer(0, Stamped(3, 0, 1)));
  EXPECT_TRUE(admission.ShouldShedBeforeStamp(0, subject_a));
  EXPECT_EQ(admission.shed_total(), 4u);
  EXPECT_EQ(admission.pending_total(), 2u);

  // Episode end: the pending buffers drain, the shed set clears, both
  // subjects are admitted again.
  ASSERT_TRUE(shard.Start().ok());
  ASSERT_TRUE(admission.FlushBlocking().ok());
  EXPECT_EQ(admission.pending_total(), 0u);
  EXPECT_FALSE(admission.ShouldShedBeforeStamp(0, subject_a));
  EXPECT_FALSE(admission.ShouldShedBeforeStamp(0, subject_b));
  EXPECT_EQ(admission.shed_total(), 4u);  // clearing the set sheds nothing
  EXPECT_EQ(pushed.load(), 2u);
  ASSERT_TRUE(shard.Stop().ok());
}

TEST(AdmissionQueueTest, BlockPolicyParksWithoutCapAndShedsNothing) {
  Shard shard(0, /*queue_capacity=*/8, /*seed=*/1);
  OverloadOptions options;
  options.policy = OverloadPolicy::kBlock;
  options.pending_capacity = 2;
  std::atomic<uint64_t> pushed{0};
  AdmissionQueue admission(options, {&shard}, &pushed);

  for (uint64_t seq = 0; seq < 16; ++seq) {
    EXPECT_TRUE(admission.Offer(0, Stamped(seq, 0, 1)));
  }
  EXPECT_EQ(admission.pending_total(), 16u);
  EXPECT_EQ(admission.shed_total(), 0u);

  ASSERT_TRUE(shard.Start().ok());
  ASSERT_TRUE(admission.FlushBlocking().ok());
  EXPECT_EQ(pushed.load(), 16u);
  ASSERT_TRUE(shard.Stop().ok());
}

TEST(AdmissionQueueTest, PumpFlushesOpportunisticallyOnceTheQueueHasRoom) {
  Shard shard(0, /*queue_capacity=*/8, /*seed=*/1);
  OverloadOptions options;
  options.policy = OverloadPolicy::kShedOldest;
  options.pending_capacity = 4;
  std::atomic<uint64_t> pushed{0};
  AdmissionQueue admission(options, {&shard}, &pushed);

  for (uint64_t seq = 0; seq < 3; ++seq) {
    EXPECT_TRUE(admission.Offer(0, Stamped(seq, 0, 1)));
  }
  admission.Pump();  // worker down: nothing moves
  EXPECT_EQ(admission.pending_total(), 3u);

  ASSERT_TRUE(shard.Start().ok());
  admission.Pump();
  EXPECT_EQ(admission.pending_total(), 0u);
  EXPECT_EQ(pushed.load(), 3u);
  ASSERT_TRUE(shard.Stop().ok());
}

// --- Engine integration ----------------------------------------------------

/// Feeds `stream` through an engine configured with `overload` and returns
/// the per-query detections. Ingest is paced (chunks no larger than the
/// queue, a drain barrier between chunks) so the run is PROVABLY lossless:
/// a queue that is empty at every chunk start can never overflow, so the
/// shedding policies have nothing to drop and must reproduce the blocking
/// run exactly. An unpaced feed would legitimately shed — that regime is
/// covered by StalledShardShedsAndAccountsForEveryEvent below.
std::vector<std::vector<Timestamp>> RunWithPolicy(
    const EventStream& stream, const std::vector<Pattern>& patterns,
    size_t shards, OverloadOptions overload, uint64_t* shed_out) {
  constexpr size_t kChunk = 64;
  ParallelEngineOptions options;
  options.shard_count = shards;
  options.queue_capacity = 128;
  options.overload = overload;
  ParallelStreamingEngine engine(options);
  for (const Pattern& p : patterns) {
    EXPECT_TRUE(engine.AddQuery(p, kWindow).ok());
  }
  EXPECT_TRUE(engine.Start().ok());
  const std::vector<Event>& events = stream.events();
  for (size_t i = 0; i < events.size(); i += kChunk) {
    const size_t n = std::min(kChunk, events.size() - i);
    EXPECT_TRUE(engine.OnEventBatch(EventSpan(events.data() + i, n)).ok());
    EXPECT_TRUE(engine.Drain().ok());
  }
  std::vector<std::vector<Timestamp>> out;
  for (size_t q = 0; q < patterns.size(); ++q) {
    out.push_back(engine.DetectionsOf(q).value());
  }
  if (shed_out != nullptr) *shed_out = engine.events_shed();
  EXPECT_TRUE(engine.Stop().ok());
  return out;
}

/// Per-subject alphabet stream (matches are subject-local).
EventStream SubjectStream(size_t subjects, size_t num_events,
                          uint64_t seed) {
  Rng rng(seed);
  EventStream stream;
  stream.Reserve(num_events);
  for (size_t i = 0; i < num_events; ++i) {
    const auto subject = static_cast<StreamId>(rng.UniformUint64(subjects));
    const auto type =
        static_cast<EventTypeId>(subject * 3 + rng.UniformUint64(3));
    stream.AppendUnchecked(
        Event(type, static_cast<Timestamp>(i / 4), subject));
  }
  return stream;
}

TEST(AdmissionEngineTest, NoShedRunIsBitIdenticalToBlockingPolicy) {
  constexpr size_t kSubjects = 8;
  const EventStream stream = SubjectStream(kSubjects, 20000, /*seed=*/17);
  std::vector<Pattern> patterns;
  for (size_t s = 0; s < kSubjects; ++s) {
    const auto base = static_cast<EventTypeId>(s * 3);
    patterns.push_back(MakePattern("seq", {base, base + 1, base + 2},
                                   DetectionMode::kSequence));
  }

  for (size_t shards : {1u, 2u, 4u}) {
    OverloadOptions block;  // the lossless default
    uint64_t shed = 0;
    const auto reference =
        RunWithPolicy(stream, patterns, shards, block, &shed);
    ASSERT_EQ(shed, 0u);

    for (OverloadPolicy policy :
         {OverloadPolicy::kShedOldest, OverloadPolicy::kShedBySubject}) {
      OverloadOptions overload;
      overload.policy = policy;
      const auto shedding =
          RunWithPolicy(stream, patterns, shards, overload, &shed);
      // Ample queues: nothing was shed, so the run must be bit-identical
      // (positional equality per query, not just counts).
      EXPECT_EQ(shed, 0u) << "policy=" << OverloadPolicyName(policy)
                          << " shards=" << shards;
      EXPECT_EQ(shedding, reference)
          << "policy=" << OverloadPolicyName(policy) << " shards=" << shards;
    }
  }
}

TEST(AdmissionEngineTest, StalledShardShedsAndAccountsForEveryEvent) {
  // One shard whose worker blocks inside a detection callback: the queue
  // fills, the pending buffer fills, and kShedOldest starts dropping —
  // while the ingest thread (this thread) never blocks.
  ParallelEngineOptions options;
  options.shard_count = 1;
  options.queue_capacity = 8;
  options.overload.policy = OverloadPolicy::kShedOldest;
  options.overload.pending_capacity = 4;
  ParallelStreamingEngine engine(options);
  ASSERT_TRUE(
      engine.AddQuery(MakePattern("seq", {0, 1}, DetectionMode::kSequence),
                      kWindow)
          .ok());

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> blocked{false};
  ASSERT_TRUE(engine
                  .SetQueryCallback(0,
                                    [&](Timestamp) {
                                      std::unique_lock<std::mutex> lock(mu);
                                      blocked.store(true);
                                      cv.wait(lock, [&] { return release; });
                                    })
                  .ok());
  ASSERT_TRUE(engine.Start().ok());

  // Trigger the detection, then wait until the worker is provably stuck.
  ASSERT_TRUE(engine.OnEvent(Event(0, 0, /*subject=*/1)).ok());
  ASSERT_TRUE(engine.OnEvent(Event(1, 1, /*subject=*/1)).ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!blocked.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(blocked.load()) << "worker never reached the callback";

  // Flood a stalled shard. Under kShedOldest every OnEvent returns OK
  // immediately — overload becomes shedding, not ingest latency.
  constexpr size_t kFlood = 2000;
  for (size_t i = 0; i < kFlood; ++i) {
    ASSERT_TRUE(
        engine.OnEvent(Event(2, static_cast<Timestamp>(2 + i), 1)).ok());
  }
  // The stalled shard can hold at most queue + pending events; everything
  // beyond that bound must have been shed already.
  EXPECT_GE(engine.events_shed(),
            kFlood - options.queue_capacity - options.overload.pending_capacity -
                1);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  ASSERT_TRUE(engine.Drain().ok());

  // Exact conservation: every offered event was either admitted (and
  // processed) or counted as shed — nothing vanishes.
  const uint64_t offered = 2 + kFlood;
  const SheddingStats stats = engine.shedding_stats();
  EXPECT_EQ(stats.offered(), offered);
  EXPECT_EQ(stats.admitted, engine.events_processed());
  EXPECT_GT(stats.shed, 0u);
  EXPECT_LT(stats.RecallLowerBound(), 1.0);
  EXPECT_GT(stats.RecallLowerBound(), 0.0);
  EXPECT_EQ(engine.DetectionsOf(0).value().size(), 1u);
  ASSERT_TRUE(engine.Stop().ok());
}

// --- PipelineBuilder surface ----------------------------------------------

TEST(AdmissionBuilderTest, OverloadPolicyRidesThroughTheBuilder) {
  const EventStream stream = SubjectStream(4, 5000, /*seed=*/23);
  PipelineBuilder builder;
  QueryHandle q = builder.AddQuery(
      MakePattern("seq", {0, 1, 2}, DetectionMode::kSequence), kWindow);
  auto pipeline_or = builder.WithShards(2)
                         .WithOverloadPolicy(OverloadPolicy::kShedOldest,
                                             /*pending_capacity=*/64)
                         .Build();
  ASSERT_TRUE(pipeline_or.ok()) << pipeline_or.status().ToString();
  Pipeline& pipeline = *pipeline_or.value();
  EXPECT_EQ(pipeline.plan().overload_policy, OverloadPolicy::kShedOldest);
  EXPECT_NE(pipeline.plan().Describe().find("shed-oldest"),
            std::string::npos);

  // Paced feed (see RunWithPolicy): this run must be lossless so the
  // recall floor below can certify exactly that.
  const std::vector<Event>& events = stream.events();
  for (size_t i = 0; i < events.size(); i += 64) {
    const size_t n = std::min<size_t>(64, events.size() - i);
    ASSERT_TRUE(pipeline.OnEventBatch(EventSpan(events.data() + i, n)).ok());
    ASSERT_TRUE(pipeline.Drain().ok());
  }
  auto finished_or = pipeline.Finish();
  ASSERT_TRUE(finished_or.ok());
  ASSERT_TRUE(finished_or.value().Detections(q).ok());

  // Ample capacity: a lossless run, certified by the recall floor.
  EXPECT_EQ(pipeline.events_shed(), 0u);
  EXPECT_EQ(pipeline.shedding_stats().RecallLowerBound(), 1.0);
}

TEST(AdmissionBuilderTest, SequentialPlanForcesBlockingPolicy) {
  PipelineBuilder builder;
  (void)builder.AddQuery(
      MakePattern("seq", {0, 1, 2}, DetectionMode::kSequence), kWindow);
  auto pipeline_or =
      builder.WithShards(1)
          .WithOverloadPolicy(OverloadPolicy::kShedBySubject)
          .Build();
  ASSERT_TRUE(pipeline_or.ok());
  // A pure-sequential plan has no shard queues to overflow; the planner
  // pins the policy back to the lossless default.
  EXPECT_TRUE(pipeline_or.value()->plan().sequential);
  EXPECT_EQ(pipeline_or.value()->plan().overload_policy,
            OverloadPolicy::kBlock);
}

}  // namespace
}  // namespace pldp
