// Copyright 2026 The PLDP Authors.
//
// Cross-subject correlation through the declarative pipeline API.
//
// Scenario: vehicles (data subjects) report zone-entry events carrying a
// `zone` attribute. The deployment wants a pattern that no single-subject
// stream can answer: "within one time window, a zone sees an entry, a
// congestion report, and an incident report — from any mix of vehicles."
// Declaring the query with CorrelationKey::ByAttribute("zone") is all it
// takes: the planner compiles the two-stage exchange topology (stage-1
// subject shards, a zone-keyed lane-group, stage-2 merge shards) and the
// results come back sequential-engine-exact.

#include <cstdio>

#include "core/pldp.h"
#include "example_util.h"

using namespace pldp;  // NOLINT — example brevity

int main(int argc, char** argv) {
  if (example_util::WantsHelp(argc, argv)) {
    example_util::PrintUsage(
        argv[0],
        "Cross-subject correlation through the declarative pipeline API:\n"
        "a zone-keyed conjunction no single vehicle's stream can answer,\n"
        "compiled onto the two-stage exchange topology.",
        nullptr, 0);
    return 0;
  }
  constexpr EventTypeId kEntry = 0;
  constexpr EventTypeId kCongestion = 1;
  constexpr EventTypeId kIncident = 2;
  constexpr size_t kZones = 8;
  constexpr size_t kVehicles = 40;

  PipelineBuilder builder;
  CrossQueryHandle zone_alert = builder.AddCrossQuery(
      Pattern::Create("zone_alert", {kEntry, kCongestion, kIncident},
                      DetectionMode::kConjunction),
      /*window=*/10, CorrelationKey::ByAttribute("zone"));
  auto pipeline_or =
      builder.WithShards(4).WithCrossShards(2).Build();
  if (!pipeline_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 pipeline_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Pipeline> pipeline = std::move(pipeline_or).value();
  std::printf("planned topology:\n%s\n", pipeline->plan().Describe().c_str());

  // Synthesize traffic: vehicles hop zones; event types cycle per zone.
  // The zone attribute is bound once (AttrId) and carried as an interned
  // symbol, so every hop through the pipeline copies the event without a
  // single heap allocation — the zero-allocation data plane in one line.
  const AttrId zone_attr = AttrNames().Intern("zone");
  std::vector<Value> zone_names;
  for (size_t z = 0; z < kZones; ++z) {
    zone_names.push_back(Value::Sym("zone-" + std::to_string(z)));
  }
  Rng rng(2026);
  EventStream stream;
  for (size_t i = 0; i < 50000; ++i) {
    const auto zone = rng.UniformUint64(kZones);
    const auto type =
        static_cast<EventTypeId>(rng.UniformUint64(3));  // entry/cong/incid
    const auto vehicle = static_cast<StreamId>(rng.UniformUint64(kVehicles));
    Event event(type, static_cast<Timestamp>(i / 16), vehicle);
    event.SetAttribute(zone_attr, zone_names[zone]);
    stream.AppendUnchecked(std::move(event));
  }

  StreamReplayer replayer;
  replayer.Subscribe(pipeline.get());
  if (!replayer.Run(stream, ReplayMode::kBatchPerTick).ok()) {
    std::fprintf(stderr, "replay failed\n");
    return 1;
  }

  StatusOr<FinishedPipeline> finished = pipeline->Finish();
  if (!finished.ok()) {
    std::fprintf(stderr, "finish failed\n");
    return 1;
  }
  StatusOr<std::vector<Timestamp>> alerts =
      finished.value().Detections(zone_alert);
  if (!alerts.ok()) {
    std::fprintf(stderr, "lookup failed\n");
    return 1;
  }
  std::printf("events ingested:        %zu\n",
              finished.value().events_processed());
  std::printf("cross-subject alerts:   %zu\n", alerts.value().size());
  for (const ShardStats& s : pipeline->ShardStatsSnapshot()) {
    std::printf("stage-1 shard %zu: %zu events, %zu forwarded\n",
                s.shard_index, s.events_processed, s.forwarded);
  }
  for (const ShardStats& s : pipeline->CrossShardStatsSnapshot()) {
    std::printf("stage-2 shard %zu: %zu events merged, %zu detections\n",
                s.shard_index, s.events_processed, s.detections);
  }
  return pipeline->Stop().ok() ? 0 : 1;
}
