// Copyright 2026 The PLDP Authors.
//
// Cross-subject correlation on the two-stage exchange pipeline.
//
// Scenario: vehicles (data subjects) report zone-entry events carrying a
// `zone` attribute. The deployment wants a pattern that no single-subject
// stream can answer: "within one time window, a zone sees an entry, a
// congestion report, and an incident report — from any mix of vehicles."
// Stage-1 shards ingest per subject as usual; the exchange re-keys every
// event by its zone attribute onto stage-2 merge shards, where the
// cross-subject conjunction matches with sequential-engine-exact results.

#include <cstdio>

#include "core/pldp.h"

using namespace pldp;  // NOLINT — example brevity

int main() {
  constexpr EventTypeId kEntry = 0;
  constexpr EventTypeId kCongestion = 1;
  constexpr EventTypeId kIncident = 2;
  constexpr size_t kZones = 8;
  constexpr size_t kVehicles = 40;

  ParallelEngineOptions options;
  options.shard_count = 4;
  options.exchange.enabled = true;
  options.exchange.shard_count = 2;
  options.exchange.key = CorrelationKeySpec::ByAttribute("zone");

  ParallelStreamingEngine engine(options);
  StatusOr<Pattern> pattern =
      Pattern::Create("zone_alert", {kEntry, kCongestion, kIncident},
                      DetectionMode::kConjunction);
  if (!pattern.ok() ||
      !engine.AddCrossQuery(std::move(pattern).value(), /*window=*/10).ok() ||
      !engine.Start().ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  // Synthesize traffic: vehicles hop zones; event types cycle per zone.
  // The zone attribute is bound once (AttrId) and carried as an interned
  // symbol, so every hop through the pipeline copies the event without a
  // single heap allocation — the zero-allocation data plane in one line.
  const AttrId zone_attr = AttrNames().Intern("zone");
  std::vector<Value> zone_names;
  for (size_t z = 0; z < kZones; ++z) {
    zone_names.push_back(Value::Sym("zone-" + std::to_string(z)));
  }
  Rng rng(2026);
  EventStream stream;
  for (size_t i = 0; i < 50000; ++i) {
    const auto zone = rng.UniformUint64(kZones);
    const auto type =
        static_cast<EventTypeId>(rng.UniformUint64(3));  // entry/cong/incid
    const auto vehicle = static_cast<StreamId>(rng.UniformUint64(kVehicles));
    Event event(type, static_cast<Timestamp>(i / 16), vehicle);
    event.SetAttribute(zone_attr, zone_names[zone]);
    stream.AppendUnchecked(std::move(event));
  }

  StreamReplayer replayer;
  replayer.Subscribe(&engine);
  if (!replayer.Run(stream, ReplayMode::kBatchPerTick).ok()) {
    std::fprintf(stderr, "replay failed\n");
    return 1;
  }

  std::printf("events ingested:        %zu\n", engine.events_processed());
  std::printf("cross-subject alerts:   %zu\n",
              engine.total_cross_detections());
  for (const ShardStats& s : engine.ShardStatsSnapshot()) {
    std::printf("stage-1 shard %zu: %zu events, %zu forwarded\n",
                s.shard_index, s.events_processed, s.forwarded);
  }
  for (const ShardStats& s : engine.CrossShardStatsSnapshot()) {
    std::printf("stage-2 shard %zu: %zu events merged, %zu detections\n",
                s.shard_index, s.events_processed, s.detections);
  }
  return engine.Stop().ok() ? 0 : 1;
}
