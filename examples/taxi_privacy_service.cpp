// Copyright 2026 The PLDP Authors.
//
// The paper's motivating scenario end-to-end: a taxi fleet streams GPS cell
// events to the trusted CEP engine; passengers mark sensitive locations
// private; a traffic service queries target-area presence. Compares the
// service quality of the uniform pattern-level PPM against the Budget
// Division stream baseline at the same pattern-level ε.

#include <cstdio>

#include "core/pldp.h"
#include "example_util.h"

namespace {

pldp::Status Run() {
  // Simulate the city (substitute for the T-Drive dataset; DESIGN.md §4).
  pldp::TaxiOptions opt;
  opt.grid_width = 12;
  opt.grid_height = 12;
  opt.num_taxis = 80;
  opt.num_ticks = 300;
  PLDP_ASSIGN_OR_RETURN(pldp::TaxiDataset city,
                        pldp::GenerateTaxi(opt, /*seed=*/7));

  std::printf(
      "city: %zu cells | %zu taxis | %zu GPS events | %zu windows\n"
      "areas: %zu private cells, %zu target cells\n\n",
      opt.grid_width * opt.grid_height, opt.num_taxis,
      city.merged_stream.size(), city.dataset.windows.size(),
      city.private_cells.size(), city.target_cells.size());

  // Evaluate both mechanisms at the same pattern-level budget.
  for (const std::string& mech : {std::string("uniform"), std::string("bd")}) {
    pldp::EvaluationConfig cfg;
    cfg.mechanism = mech;
    cfg.epsilon = 1.0;
    cfg.repetitions = 10;
    PLDP_ASSIGN_OR_RETURN(pldp::EvaluationResult r,
                          pldp::RunEvaluation(city.dataset, cfg));
    std::printf(
        "%-8s  precision %.3f  recall %.3f  Q %.3f  MRE %.3f (±%.3f)\n",
        mech.c_str(), r.precision.mean(), r.recall.mean(), r.q_ppm.mean(),
        r.mre.mean(), r.mre.sem());
  }

  std::printf(
      "\nThe pattern-level PPM perturbs only the %zu private-cell presence\n"
      "bits per window; the w-event baseline noises all %zu cells. At equal\n"
      "pattern-level budget, the traffic service keeps far more utility.\n",
      city.private_cells.size(), opt.grid_width * opt.grid_height);
  return pldp::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  if (example_util::WantsHelp(argc, argv)) {
    example_util::PrintUsage(
        argv[0],
        "The paper's motivating scenario end-to-end: a taxi fleet streams\n"
        "GPS cell events with passenger-declared private locations;\n"
        "compares the uniform PPM against the Budget Division baseline at\n"
        "the same pattern-level epsilon.",
        nullptr, 0);
    return 0;
  }
  pldp::Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "taxi_privacy_service failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
