// Copyright 2026 The PLDP Authors.
//
// Shows the adaptive PPM's budget tuning (Algorithm 1) at work: a private
// pattern whose elements matter unequally to the consumers' target query.
// The stepwise search discovers the skew from historical data and shifts
// budget onto the element the query depends on.

#include <cstdio>

#include "core/pldp.h"
#include "example_util.h"

namespace {

pldp::Status Run() {
  // World: 6 event types. Private pattern {sensor_a, sensor_b, sensor_c};
  // the consumers' query watches {sensor_a, alarm} — only sensor_a is
  // shared, so its indicator accuracy dominates service quality.
  pldp::EventTypeRegistry types;
  pldp::EventTypeId a = types.Intern("sensor_a");
  pldp::EventTypeId b = types.Intern("sensor_b");
  pldp::EventTypeId c = types.Intern("sensor_c");
  pldp::EventTypeId alarm = types.Intern("alarm");
  types.Intern("heartbeat");

  pldp::PatternRegistry patterns;
  PLDP_ASSIGN_OR_RETURN(
      pldp::Pattern priv,
      pldp::Pattern::Create("private_combo", {a, b, c},
                            pldp::DetectionMode::kConjunction));
  PLDP_ASSIGN_OR_RETURN(pldp::PatternId priv_id,
                        patterns.Register(std::move(priv)));
  PLDP_ASSIGN_OR_RETURN(
      pldp::Pattern tgt,
      pldp::Pattern::Create("alarm_watch", {a, alarm},
                            pldp::DetectionMode::kConjunction));
  PLDP_ASSIGN_OR_RETURN(pldp::PatternId tgt_id,
                        patterns.Register(std::move(tgt)));

  // Historical windows the data subjects granted for tuning.
  std::vector<pldp::Window> history;
  pldp::Rng gen(5);
  for (size_t i = 0; i < 250; ++i) {
    pldp::Window w;
    w.start = static_cast<pldp::Timestamp>(i);
    w.end = w.start + 1;
    for (pldp::EventTypeId t = 0; t < types.size(); ++t) {
      if (gen.Bernoulli(0.5)) w.events.emplace_back(t, w.start);
    }
    history.push_back(std::move(w));
  }

  pldp::MechanismContext ctx;
  ctx.event_types = &types;
  ctx.patterns = &patterns;
  ctx.private_patterns = {priv_id};
  ctx.target_patterns = {tgt_id};
  ctx.epsilon = 2.0;
  ctx.alpha = 0.5;
  ctx.history = &history;

  const pldp::Pattern& private_pattern = patterns.Get(priv_id);

  PLDP_ASSIGN_OR_RETURN(
      auto uniform,
      pldp::BudgetAllocation::Uniform(ctx.epsilon, private_pattern.length()));
  std::printf("uniform start:   %s\n", uniform.ToString().c_str());

  pldp::AdaptivePpmOptions opt;
  opt.trials = 48;
  opt.max_rounds = 30;
  PLDP_ASSIGN_OR_RETURN(
      auto tuned,
      pldp::BidirectionalStepwiseSearch(private_pattern, ctx, opt));
  std::printf("after tuning:    %s\n", tuned.ToString().c_str());
  std::printf("  element 0 (sensor_a, shared with the query) got ε = %.3f\n",
              tuned[0]);
  std::printf("  elements 1-2 (query-irrelevant) got ε = %.3f, %.3f\n\n",
              tuned[1], tuned[2]);

  PLDP_ASSIGN_OR_RETURN(double q_uniform,
                        pldp::EvaluateAllocationQuality(
                            uniform, private_pattern, ctx, 256, 777));
  PLDP_ASSIGN_OR_RETURN(double q_tuned,
                        pldp::EvaluateAllocationQuality(
                            tuned, private_pattern, ctx, 256, 777));
  std::printf("service quality Q: uniform %.4f -> adaptive %.4f "
              "(same total ε = %.1f)\n",
              q_uniform, q_tuned, tuned.Total());
  return pldp::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  if (example_util::WantsHelp(argc, argv)) {
    example_util::PrintUsage(
        argv[0],
        "Adaptive PPM budget tuning (Algorithm 1): a stepwise search\n"
        "discovers per-element skew from historical data and shifts budget\n"
        "onto the elements the consumers' target query depends on.",
        nullptr, 0);
    return 0;
  }
  pldp::Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "adaptive_tuning failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
