// Copyright 2026 The PLDP Authors.
//
// Shared argv helpers for the examples/ binaries. Every example supports
// `--help`; the service examples add real flags on top (--metrics-port,
// --overload-policy). Deliberately tiny — stdio + strcmp, no getopt — so
// an example's main() stays a readable walkthrough, and header-only so
// the examples/*.cpp CMake glob is unaffected.

#ifndef PLDP_EXAMPLES_EXAMPLE_UTIL_H_
#define PLDP_EXAMPLES_EXAMPLE_UTIL_H_

#include <cstdio>
#include <cstring>

namespace example_util {

/// One `--flag` row of the --help text.
struct OptionDoc {
  const char* flag;
  const char* doc;
};

/// Prints the canonical usage text: one summary paragraph, then the
/// option table (every example lists --help; extras come from `options`).
inline void PrintUsage(const char* binary, const char* summary,
                       const OptionDoc* options, size_t option_count) {
  std::printf("Usage: %s [options]\n\n%s\n\nOptions:\n", binary, summary);
  for (size_t i = 0; i < option_count; ++i) {
    std::printf("  %-28s %s\n", options[i].flag, options[i].doc);
  }
  std::printf("  %-28s %s\n", "--help", "show this help and exit");
}

/// True when `--help` / `-h` is among the arguments. Callers print usage
/// and return 0 — running with no arguments stays the full walkthrough
/// (the CI examples-smoke job relies on that).
inline bool WantsHelp(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      return true;
    }
  }
  return false;
}

/// Value of `--name=value` or `--name value`; nullptr when absent.
inline const char* FlagValue(int argc, char** argv, const char* name) {
  const size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
  }
  return nullptr;
}

}  // namespace example_util

#endif  // PLDP_EXAMPLES_EXAMPLE_UTIL_H_
