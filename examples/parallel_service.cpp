// Copyright 2026 The PLDP Authors.
//
// Production-flavour deployment of the sharded runtime via the declarative
// pipeline API: a fleet of smart homes (data subjects) streams events into
// the trusted CEP middleware. The builder plans the topology — here a
// subject-sharded runtime (or a sequential engine on a 1-core budget) —
// and the typed query handle is the only way to read the detections, which
// are only reachable after Finish()'s drain barrier.
//
// This is the concurrency substrate for the paper's system model (Fig. 2):
// private patterns live inside one subject's stream, so subject-key
// sharding preserves detection semantics exactly while scaling ingest
// across cores.

// `--metrics-port=P` builds the pipeline with telemetry and serves
// GET /metrics, /metrics.json, /healthz on port P until the process is
// killed; without the flag the example runs to completion and exits.
// `--overload-policy=block|shed-oldest|shed-by-subject` selects the
// full-queue ingest behavior (docs/OPERATIONS.md, "Overload policy
// tuning").

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/pldp.h"
#include "example_util.h"

namespace {

constexpr example_util::OptionDoc kOptions[] = {
    {"--metrics-port=PORT",
     "enable telemetry and serve /metrics, /metrics.json, /healthz "
     "(0 = ephemeral port)"},
    {"--overload-policy=NAME",
     "full-queue ingest policy: block (default, lossless), shed-oldest, "
     "shed-by-subject"},
};

pldp::Status Run(int metrics_port, pldp::OverloadPolicy overload_policy) {
  // Event vocabulary shared by every home: each subject emits the same
  // logical types; the subject id on the event keeps streams apart.
  pldp::EventTypeRegistry types;
  pldp::EventTypeId door = types.Intern("front_door");
  pldp::EventTypeId motion = types.Intern("hall_motion");
  pldp::EventTypeId kettle = types.Intern("kettle_on");

  constexpr size_t kHomes = 1000;
  constexpr size_t kTicks = 200;

  // Synthesize the merged arrival stream: at every tick a random subset of
  // homes emits one event.
  pldp::Rng gen(2026);
  pldp::EventStream arrivals;
  for (pldp::Timestamp t = 0; t < static_cast<pldp::Timestamp>(kTicks); ++t) {
    for (pldp::StreamId home = 0; home < kHomes; ++home) {
      if (!gen.Bernoulli(0.2)) continue;
      const pldp::EventTypeId which =
          static_cast<pldp::EventTypeId>(gen.UniformUint64(3));
      arrivals.AppendUnchecked(pldp::Event(which, t, home));
    }
  }

  // One continuous query, evaluated per subject by construction:
  // SEQ(front_door, hall_motion, kettle_on) within 10 time units
  // ("resident came home and settled in"). The builder plans one shard per
  // hardware thread (WithShards(0)) with bounded queues and subject-key
  // routing; registration returns the typed handle.
  pldp::PipelineBuilder builder;
  pldp::QueryHandle came_home = builder.AddQuery(
      pldp::Pattern::Create("came_home", {door, motion, kettle},
                            pldp::DetectionMode::kSequence),
      /*window=*/10);
  // Streaming observer: fires the moment a match completes, on the owning
  // shard's worker thread — hence the atomic.
  std::atomic<size_t> live_detections{0};
  came_home.OnDetection([&live_detections](pldp::Timestamp) {
    live_detections.fetch_add(1, std::memory_order_relaxed);
  });
  PLDP_ASSIGN_OR_RETURN(std::unique_ptr<pldp::Pipeline> pipeline,
                        builder.WithShards(0)
                            .WithQueueCapacity(1024)
                            .WithOverloadPolicy(overload_policy)
                            .EnableMetrics(metrics_port >= 0)
                            .Build());
  std::printf("planned topology:\n%s\n", pipeline->plan().Describe().c_str());

  std::unique_ptr<pldp::obs::TextEndpoint> endpoint;
  if (metrics_port >= 0) {
    pldp::obs::TextEndpoint::Routes routes;
    pldp::Pipeline* p = pipeline.get();
    routes.metrics_text = [p] {
      return pldp::obs::RenderPrometheusText(p->MetricsSnapshot());
    };
    routes.metrics_json = [p] {
      return pldp::obs::RenderJson(p->MetricsSnapshot());
    };
    routes.health_json = [p] {
      return pldp::obs::RenderHealthJson(p->Health());
    };
    endpoint = std::make_unique<pldp::obs::TextEndpoint>(std::move(routes));
    PLDP_RETURN_IF_ERROR(
        endpoint->Start(static_cast<uint16_t>(metrics_port)));
    std::printf("metrics endpoint: http://localhost:%u/metrics\n",
                endpoint->port());
  }

  // Per-tick batch delivery: the replayer hands the pipeline one span per
  // tick and OnEventBatch bulk-pushes per shard — the cheap ingest path.
  pldp::StreamReplayer replayer;
  replayer.Subscribe(pipeline.get());
  PLDP_RETURN_IF_ERROR(
      replayer.Run(arrivals, pldp::ReplayMode::kBatchPerTick));

  // Results only exist behind the Finish() barrier — the typed handle plus
  // FinishedPipeline replace the old "remember to Drain() first" contract.
  PLDP_ASSIGN_OR_RETURN(pldp::FinishedPipeline finished, pipeline->Finish());
  PLDP_ASSIGN_OR_RETURN(std::vector<pldp::Timestamp> detections,
                        finished.Detections(came_home));
  std::printf("ingested %zu events from %zu homes across %zu shards\n",
              finished.events_processed(), kHomes,
              pipeline->plan().shard_count);
  std::printf("'came_home' detections: %zu (%zu seen live via OnDetection)",
              detections.size(), live_detections.load());
  if (!detections.empty()) {
    std::printf(" (first at t=%lld, last at t=%lld)",
                static_cast<long long>(detections.front()),
                static_cast<long long>(detections.back()));
  }
  std::printf("\n\nper-shard load:\n");
  for (const pldp::ShardStats& s : pipeline->ShardStatsSnapshot()) {
    std::printf(
        "  shard %zu: %zu events, %zu detections, %zu backpressure waits\n",
        s.shard_index, s.events_processed, s.detections,
        s.backpressure_waits);
  }
  if (overload_policy != pldp::OverloadPolicy::kBlock) {
    std::printf("events shed (%s policy): %llu\n",
                pldp::OverloadPolicyName(overload_policy),
                static_cast<unsigned long long>(pipeline->events_shed()));
  }

  if (endpoint != nullptr) {
    std::printf("serving metrics until killed (Ctrl-C to exit)\n");
    std::fflush(stdout);
    for (;;) {
      std::this_thread::sleep_for(std::chrono::seconds(1));
    }
  }
  return pipeline->Stop();
}

}  // namespace

int main(int argc, char** argv) {
  if (example_util::WantsHelp(argc, argv)) {
    example_util::PrintUsage(
        argv[0],
        "Sharded-runtime deployment demo: 1000 smart homes stream into\n"
        "a subject-sharded pipeline answering one sequence query, with\n"
        "live detection callbacks and per-shard load stats.",
        kOptions, sizeof(kOptions) / sizeof(kOptions[0]));
    return 0;
  }
  const char* port_arg =
      example_util::FlagValue(argc, argv, "--metrics-port");
  const int metrics_port = port_arg != nullptr ? std::atoi(port_arg) : -1;
  pldp::OverloadPolicy policy = pldp::OverloadPolicy::kBlock;
  if (const char* name =
          example_util::FlagValue(argc, argv, "--overload-policy")) {
    pldp::StatusOr<pldp::OverloadPolicy> parsed =
        pldp::ParseOverloadPolicy(name);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   parsed.status().ToString().c_str());
      return 2;
    }
    policy = parsed.value();
  }
  pldp::Status status = Run(metrics_port, policy);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
