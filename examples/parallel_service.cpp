// Copyright 2026 The PLDP Authors.
//
// Production-flavour deployment of the sharded runtime: a fleet of smart
// homes (data subjects) streams events into the trusted CEP middleware.
// The middleware shards subjects across worker threads, each running its
// own incremental CEP engine over the substream routed to it, and reports
// merged detections plus per-shard load after the stream drains.
//
// This is the concurrency substrate for the paper's system model (Fig. 2):
// private patterns live inside one subject's stream, so subject-key
// sharding preserves detection semantics exactly while scaling ingest
// across cores.

#include <cstdio>
#include <thread>

#include "core/pldp.h"

namespace {

pldp::Status Run() {
  // Event vocabulary shared by every home: each subject emits the same
  // logical types; the subject id on the event keeps streams apart.
  pldp::EventTypeRegistry types;
  pldp::EventTypeId door = types.Intern("front_door");
  pldp::EventTypeId motion = types.Intern("hall_motion");
  pldp::EventTypeId kettle = types.Intern("kettle_on");

  // One continuous query, evaluated per subject by construction of the
  // runtime: SEQ(front_door, hall_motion, kettle_on) within 10 time units
  // ("resident came home and settled in").
  PLDP_ASSIGN_OR_RETURN(
      pldp::Pattern came_home,
      pldp::Pattern::Create("came_home", {door, motion, kettle},
                            pldp::DetectionMode::kSequence));

  constexpr size_t kHomes = 1000;
  constexpr size_t kTicks = 200;

  // Synthesize the merged arrival stream: at every tick a random subset of
  // homes emits one event.
  pldp::Rng gen(2026);
  pldp::EventStream arrivals;
  for (pldp::Timestamp t = 0; t < static_cast<pldp::Timestamp>(kTicks); ++t) {
    for (pldp::StreamId home = 0; home < kHomes; ++home) {
      if (!gen.Bernoulli(0.2)) continue;
      const pldp::EventTypeId which =
          static_cast<pldp::EventTypeId>(gen.UniformUint64(3));
      arrivals.AppendUnchecked(pldp::Event(which, t, home));
    }
  }

  // The sharded runtime: one shard per core, bounded queues, subject-key
  // routing. It is a StreamSubscriber, so the stock replayer drives it.
  pldp::ParallelEngineOptions options;
  options.shard_count = 0;  // auto: one per hardware thread
  options.queue_capacity = 1024;
  pldp::ParallelStreamingEngine engine(options);
  PLDP_ASSIGN_OR_RETURN(size_t query,
                        engine.AddQuery(came_home, /*window=*/10));
  PLDP_RETURN_IF_ERROR(engine.Start());

  // Per-tick batch delivery: the replayer hands the engine one span per
  // tick and OnEventBatch bulk-pushes per shard — the cheap ingest path.
  // Run ends with OnEnd → Drain, so results are stable immediately after.
  pldp::StreamReplayer replayer;
  replayer.Subscribe(&engine);
  PLDP_RETURN_IF_ERROR(
      replayer.Run(arrivals, pldp::ReplayMode::kBatchPerTick));

  PLDP_ASSIGN_OR_RETURN(std::vector<pldp::Timestamp> detections,
                        engine.DetectionsOf(query));
  std::printf("ingested %zu events from %zu homes across %zu shards\n",
              engine.events_processed(), kHomes, engine.shard_count());
  std::printf("'%s' detections: %zu", came_home.name().c_str(),
              detections.size());
  if (!detections.empty()) {
    std::printf(" (first at t=%lld, last at t=%lld)",
                static_cast<long long>(detections.front()),
                static_cast<long long>(detections.back()));
  }
  std::printf("\n\nper-shard load:\n");
  for (const pldp::ShardStats& s : engine.ShardStatsSnapshot()) {
    std::printf(
        "  shard %zu: %zu events, %zu detections, %zu backpressure waits\n",
        s.shard_index, s.events_processed, s.detections,
        s.backpressure_waits);
  }
  return engine.Stop();
}

}  // namespace

int main() {
  pldp::Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
