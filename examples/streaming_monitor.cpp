// Copyright 2026 The PLDP Authors.
//
// Online deployment flavour: events arrive one at a time through the
// stream replayer; the incremental CEP engine fires detections the moment
// a pattern completes; and — before any data flows — the §V-C correlation
// advisor inspects historical data to warn the data subject about event
// types that correlate with their private pattern but were not declared.

#include <cstdio>

#include "core/pldp.h"
#include "example_util.h"

namespace {

pldp::Status Run() {
  // Event vocabulary of a small smart-home deployment.
  pldp::EventTypeRegistry types;
  pldp::EventTypeId door = types.Intern("front_door");
  pldp::EventTypeId motion = types.Intern("hall_motion");
  pldp::EventTypeId tv = types.Intern("tv_on");
  pldp::EventTypeId kettle = types.Intern("kettle_on");

  // The resident declares SEQ(front_door, hall_motion) private ("I came
  // home"). Historically the kettle goes on right after — a latent
  // correlate they did not think of.
  PLDP_ASSIGN_OR_RETURN(
      pldp::Pattern came_home,
      pldp::Pattern::Create("came_home", {door, motion},
                            pldp::DetectionMode::kSequence));

  // Historical windows: when the private pattern occurs, the kettle almost
  // always fires too; the TV is independent background.
  std::vector<pldp::Window> history;
  pldp::Rng gen(11);
  for (size_t i = 0; i < 300; ++i) {
    pldp::Window w;
    w.start = static_cast<pldp::Timestamp>(i * 60);
    w.end = w.start + 60;
    bool home = gen.Bernoulli(0.3);
    if (home) {
      w.events.emplace_back(door, w.start + 1);
      w.events.emplace_back(motion, w.start + 5);
      if (gen.Bernoulli(0.9)) w.events.emplace_back(kettle, w.start + 12);
    } else if (gen.Bernoulli(0.05)) {
      w.events.emplace_back(kettle, w.start + 3);
    }
    if (gen.Bernoulli(0.4)) w.events.emplace_back(tv, w.start + 20);
    history.push_back(std::move(w));
  }

  // --- Correlation advisory (paper §V-C) -------------------------------------
  PLDP_ASSIGN_OR_RETURN(
      auto suggestions,
      pldp::SuggestRelevantEvents(history, came_home, types.size()));
  std::printf("privacy advisory for pattern '%s':\n", came_home.name().c_str());
  if (suggestions.empty()) {
    std::printf("  no undeclared correlated events found\n");
  }
  for (pldp::EventTypeId t : suggestions) {
    PLDP_ASSIGN_OR_RETURN(std::string name, types.Name(t));
    std::printf("  '%s' strongly correlates with the private pattern — "
                "consider protecting it too\n",
                name.c_str());
  }

  // --- Online detection --------------------------------------------------------
  // A single-shard budget makes the planner pick the sequential in-process
  // engine — same declarative API as the sharded deployments, no threads.
  pldp::PipelineBuilder builder;
  pldp::QueryHandle came_home_q = builder.AddQuery(came_home, /*window=*/30);
  pldp::QueryHandle evening_q = builder.AddQuery(
      pldp::Pattern::Create("evening_routine", {tv, kettle},
                            pldp::DetectionMode::kConjunction),
      /*window=*/120);
  PLDP_ASSIGN_OR_RETURN(std::unique_ptr<pldp::Pipeline> pipeline,
                        builder.WithShards(1).Build());

  pldp::EventStream live;
  live.AppendUnchecked(pldp::Event(tv, 10));
  live.AppendUnchecked(pldp::Event(door, 95));
  live.AppendUnchecked(pldp::Event(motion, 102));   // came_home fires
  live.AppendUnchecked(pldp::Event(kettle, 110));   // evening_routine fires
  live.AppendUnchecked(pldp::Event(motion, 400));   // stale: no door nearby

  pldp::StreamReplayer replayer;
  replayer.Subscribe(pipeline.get());
  PLDP_RETURN_IF_ERROR(replayer.Run(live));

  PLDP_ASSIGN_OR_RETURN(pldp::FinishedPipeline finished, pipeline->Finish());
  PLDP_ASSIGN_OR_RETURN(auto home_hits, finished.Detections(came_home_q));
  PLDP_ASSIGN_OR_RETURN(auto evening_hits, finished.Detections(evening_q));
  std::printf("\nlive stream detections:\n");
  for (pldp::Timestamp t : home_hits) {
    std::printf("  t=%lld: came_home fired\n", static_cast<long long>(t));
  }
  for (pldp::Timestamp t : evening_hits) {
    std::printf("  t=%lld: evening_routine fired\n",
                static_cast<long long>(t));
  }
  std::printf("\nsummary: %zu events, came_home x%zu, evening_routine x%zu\n",
              finished.events_processed(), home_hits.size(),
              evening_hits.size());
  return pipeline->Stop();
}

}  // namespace

int main(int argc, char** argv) {
  if (example_util::WantsHelp(argc, argv)) {
    example_util::PrintUsage(
        argv[0],
        "Online deployment flavour: event-at-a-time replay through the\n"
        "incremental CEP engine, after the correlation advisor warns about\n"
        "event types correlated with the private pattern but undeclared.",
        nullptr, 0);
    return 0;
  }
  pldp::Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "streaming_monitor failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
