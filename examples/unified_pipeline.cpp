// Copyright 2026 The PLDP Authors.
//
// The north-star scenario the declarative API exists for: ONE pipeline
// serving a mixed workload that previously took three hand-wired engines —
//
//   * a plain per-subject query   ("vehicle refuelled then resumed"),
//   * two cross-subject queries, EACH WITH ITS OWN CORRELATION KEY
//     (a zone-keyed incident conjunction and a globally-keyed city-wide
//     sequence — two independent exchange lane-groups in one topology),
//   * a private query answered from PLDP-protected views only
//     ("vehicle visited a clinic stop", protected per subject by a
//     uniform pattern-level mechanism with budget ε).
//
// The builder plans the topology from the declarations; the typed handles
// are the only way to read each lane's results, and only after Finish().
//
// With `--metrics-port=P` the pipeline is built with telemetry enabled and
// a scrape endpoint serves GET /metrics (Prometheus text), /metrics.json,
// and /healthz on port P until the process is killed:
//
//   ./example_unified_pipeline --metrics-port=9464 &
//   curl http://localhost:9464/metrics
//
// `--overload-policy=block|shed-oldest|shed-by-subject` selects what
// ingestion does when a shard queue stays full (docs/OPERATIONS.md,
// "Overload policy tuning"); any shed events are reported at the end.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/pldp.h"
#include "example_util.h"

namespace {

constexpr example_util::OptionDoc kOptions[] = {
    {"--metrics-port=PORT",
     "enable telemetry and serve /metrics, /metrics.json, /healthz "
     "(0 = ephemeral port)"},
    {"--overload-policy=NAME",
     "full-queue ingest policy: block (default, lossless), shed-oldest, "
     "shed-by-subject"},
};

pldp::Status Run(int metrics_port, pldp::OverloadPolicy overload_policy) {
  using pldp::DetectionMode;
  using pldp::Event;
  using pldp::EventTypeId;
  using pldp::Pattern;
  using pldp::Timestamp;

  constexpr size_t kVehicles = 64;
  constexpr size_t kZones = 6;
  constexpr size_t kEvents = 40000;
  constexpr double kEpsilon = 1.5;

  // Shared vocabulary. The private lane needs names (the paper's setup
  // phase); plain/cross queries reuse the ids.
  pldp::PipelineBuilder builder;
  const EventTypeId refuel = builder.InternEventType("refuel");
  const EventTypeId resume = builder.InternEventType("resume");
  const EventTypeId entry = builder.InternEventType("zone_entry");
  const EventTypeId congestion = builder.InternEventType("congestion");
  const EventTypeId incident = builder.InternEventType("incident");
  const EventTypeId clinic = builder.InternEventType("clinic_stop");
  const EventTypeId alarm = builder.InternEventType("city_alarm");

  // Lane 1 — plain, subject-local.
  pldp::QueryHandle refuelled = builder.AddQuery(
      Pattern::Create("refuelled", {refuel, resume}, DetectionMode::kSequence),
      /*window=*/12);

  // Lane 2 — cross-subject, zone-keyed: all three reports in one zone,
  // from any mix of vehicles.
  pldp::CrossQueryHandle zone_alert = builder.AddCrossQuery(
      Pattern::Create("zone_alert", {entry, congestion, incident},
                      DetectionMode::kConjunction),
      /*window=*/10, pldp::CorrelationKey::ByAttribute("zone"));

  // Lane 2b — cross-subject under a DIFFERENT key (global): two city-wide
  // alarms in short succession, regardless of zone.
  pldp::CrossQueryHandle double_alarm = builder.AddCrossQuery(
      Pattern::Create("double_alarm", {alarm, alarm}, DetectionMode::kSequence),
      /*window=*/6, pldp::CorrelationKey::Global());

  // Lane 3 — private: clinic visits are sensitive; the consumer only ever
  // sees per-window answers derived from protected views.
  builder.AddPrivatePattern(Pattern::Create("clinic_visit", {entry, clinic},
                                            DetectionMode::kConjunction));
  pldp::PrivateQueryHandle clinic_q = builder.AddPrivateQuery(
      "clinic_visit", Pattern::Create("clinic_visit_q", {entry, clinic},
                                      DetectionMode::kConjunction));

  PLDP_ASSIGN_OR_RETURN(std::unique_ptr<pldp::Pipeline> pipeline,
                        builder.WithShards(4)
                            .WithCrossShards(2)
                            .WithSeed(2026)
                            .WithPrivacyWindow(20)
                            .WithMechanism("uniform")
                            .WithEpsilon(kEpsilon)
                            .WithOverloadPolicy(overload_policy)
                            .EnableMetrics(metrics_port >= 0)
                            .Build());
  std::printf("planned topology:\n%s\n", pipeline->plan().Describe().c_str());

  // Scrape endpoint (only with --metrics-port): every route reads the live
  // pipeline — MetricsSnapshot/Health are safe concurrent with ingestion.
  std::unique_ptr<pldp::obs::TextEndpoint> endpoint;
  if (metrics_port >= 0) {
    pldp::obs::TextEndpoint::Routes routes;
    pldp::Pipeline* p = pipeline.get();
    routes.metrics_text = [p] {
      return pldp::obs::RenderPrometheusText(p->MetricsSnapshot());
    };
    routes.metrics_json = [p] {
      return pldp::obs::RenderJson(p->MetricsSnapshot());
    };
    routes.health_json = [p] {
      return pldp::obs::RenderHealthJson(p->Health());
    };
    endpoint = std::make_unique<pldp::obs::TextEndpoint>(std::move(routes));
    PLDP_RETURN_IF_ERROR(
        endpoint->Start(static_cast<uint16_t>(metrics_port)));
    std::printf("metrics endpoint: http://localhost:%u/metrics\n",
                endpoint->port());
  }

  // Synthetic city traffic.
  const pldp::AttrId zone_attr = pldp::AttrNames().Intern("zone");
  std::vector<pldp::Value> zone_names;
  for (size_t z = 0; z < kZones; ++z) {
    zone_names.push_back(pldp::Value::Sym("zone-" + std::to_string(z)));
  }
  pldp::Rng rng(99);
  pldp::EventStream stream;
  for (size_t i = 0; i < kEvents; ++i) {
    const auto vehicle =
        static_cast<pldp::StreamId>(rng.UniformUint64(kVehicles));
    const auto t = static_cast<Timestamp>(i / 16);
    const uint64_t dice = rng.UniformUint64(16);
    EventTypeId type;
    if (dice < 3) {
      type = refuel;
    } else if (dice < 6) {
      type = resume;
    } else if (dice < 9) {
      type = entry;
    } else if (dice < 11) {
      type = congestion;
    } else if (dice < 13) {
      type = incident;
    } else if (dice < 15) {
      type = clinic;
    } else {
      type = alarm;
    }
    Event e(type, t, vehicle);
    e.SetAttribute(zone_attr, zone_names[rng.UniformUint64(kZones)]);
    stream.AppendUnchecked(std::move(e));
  }

  pldp::StreamReplayer replayer;
  replayer.Subscribe(pipeline.get());
  PLDP_RETURN_IF_ERROR(replayer.Run(stream, pldp::ReplayMode::kBatchPerTick));

  PLDP_ASSIGN_OR_RETURN(pldp::FinishedPipeline finished, pipeline->Finish());
  PLDP_ASSIGN_OR_RETURN(auto refuel_hits, finished.Detections(refuelled));
  PLDP_ASSIGN_OR_RETURN(auto zone_hits, finished.Detections(zone_alert));
  PLDP_ASSIGN_OR_RETURN(auto alarm_hits, finished.Detections(double_alarm));
  size_t clinic_positives = 0;
  for (pldp::StreamId subject : finished.Subjects()) {
    PLDP_ASSIGN_OR_RETURN(pldp::AnswerSeries answers,
                          finished.AnswersOf(clinic_q, subject));
    clinic_positives += answers.PositiveCount();
  }

  std::printf("events ingested:                  %zu\n",
              finished.events_processed());
  std::printf("plain 'refuelled' detections:     %zu\n", refuel_hits.size());
  std::printf("zone-keyed 'zone_alert' hits:     %zu\n", zone_hits.size());
  std::printf("global 'double_alarm' hits:       %zu\n", alarm_hits.size());
  std::printf("protected 'clinic_visit' windows: %zu positive of %zu "
              "(ε=%.1f)\n",
              clinic_positives, finished.total_windows(), kEpsilon);
  if (overload_policy != pldp::OverloadPolicy::kBlock) {
    std::printf("events shed (%s policy):          %llu\n",
                pldp::OverloadPolicyName(overload_policy),
                static_cast<unsigned long long>(pipeline->events_shed()));
  }

  if (endpoint != nullptr) {
    std::printf("serving metrics until killed (Ctrl-C to exit)\n");
    std::fflush(stdout);
    for (;;) {
      std::this_thread::sleep_for(std::chrono::seconds(1));
    }
  }
  return pipeline->Stop();
}

}  // namespace

int main(int argc, char** argv) {
  if (example_util::WantsHelp(argc, argv)) {
    example_util::PrintUsage(
        argv[0],
        "One declarative pipeline serving three lanes at once: a plain\n"
        "per-subject query, two cross-subject queries under different\n"
        "correlation keys, and a PLDP-protected private query.",
        kOptions, sizeof(kOptions) / sizeof(kOptions[0]));
    return 0;
  }
  const char* port_arg =
      example_util::FlagValue(argc, argv, "--metrics-port");
  const int metrics_port = port_arg != nullptr ? std::atoi(port_arg) : -1;
  pldp::OverloadPolicy policy = pldp::OverloadPolicy::kBlock;
  if (const char* name =
          example_util::FlagValue(argc, argv, "--overload-policy")) {
    pldp::StatusOr<pldp::OverloadPolicy> parsed =
        pldp::ParseOverloadPolicy(name);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   parsed.status().ToString().c_str());
      return 2;
    }
    policy = parsed.value();
  }
  pldp::Status status = Run(metrics_port, policy);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
