// Copyright 2026 The PLDP Authors.
//
// Quickstart: protect one private pattern in a small event stream with the
// uniform pattern-level PPM and answer a target query through the trusted
// engine.
//
// Scenario (the paper's running example, miniaturized): taxis report zone
// events; the private pattern is the trip fragment SEQ(downtown, hospital);
// the consumer's target query asks whether SEQ(downtown, jam) occurred in a
// window.

#include <cstdio>

#include "core/pldp.h"
#include "example_util.h"

namespace {

pldp::Status Run() {
  pldp::PrivateCepEngine engine;

  // --- Setup phase ---------------------------------------------------------
  pldp::EventTypeId downtown = engine.InternEventType("downtown");
  pldp::EventTypeId hospital = engine.InternEventType("hospital");
  pldp::EventTypeId jam = engine.InternEventType("traffic_jam");
  pldp::EventTypeId suburb = engine.InternEventType("suburb");

  // Data subject: "trips that pass downtown and end at the hospital are
  // private".
  PLDP_ASSIGN_OR_RETURN(
      pldp::Pattern private_pattern,
      pldp::Pattern::Create("to_hospital", {downtown, hospital},
                            pldp::DetectionMode::kSequence));
  PLDP_ASSIGN_OR_RETURN(auto private_id,
                        engine.RegisterPrivatePattern(private_pattern));
  (void)private_id;

  // Data consumer: "was there a jam after downtown traffic?".
  PLDP_ASSIGN_OR_RETURN(
      pldp::Pattern target_pattern,
      pldp::Pattern::Create("downtown_jam", {downtown, jam},
                            pldp::DetectionMode::kSequence));
  PLDP_ASSIGN_OR_RETURN(
      pldp::QueryId query,
      engine.RegisterTargetQuery("jam_watch", target_pattern));

  // Select the uniform pattern-level PPM with budget ε = 2.0.
  PLDP_RETURN_IF_ERROR(engine.Activate(
      std::make_unique<pldp::UniformPatternPpm>(), /*epsilon=*/2.0));

  // --- Service phase -------------------------------------------------------
  // A raw stream: four 10-tick windows worth of events.
  pldp::EventStream stream;
  auto emit = [&](pldp::EventTypeId type, pldp::Timestamp ts) {
    stream.AppendUnchecked(pldp::Event(type, ts));
  };
  emit(downtown, 1);
  emit(hospital, 4);   // window 0: private pattern occurs
  emit(downtown, 12);
  emit(jam, 15);       // window 1: target pattern occurs
  emit(suburb, 23);    // window 2: nothing of interest
  emit(downtown, 31);
  emit(hospital, 33);
  emit(jam, 36);       // window 3: both occur (overlap)

  pldp::Rng rng(/*seed=*/42);
  pldp::TumblingWindower windower(/*size=*/10);
  PLDP_ASSIGN_OR_RETURN(auto results,
                        engine.ProcessStream(stream, windower, &rng));

  PLDP_ASSIGN_OR_RETURN(auto windows, windower.Apply(stream));
  PLDP_ASSIGN_OR_RETURN(auto truth, engine.GroundTruth(windows));

  std::printf("window  truth  published\n");
  for (size_t w = 0; w < results.window_count; ++w) {
    std::printf("%6zu  %5s  %9s\n", w,
                truth.answers[query][w] ? "yes" : "no",
                results.answers[query][w] ? "yes" : "no");
  }
  std::printf(
      "\nThe published answers for the jam query stay close to the truth;\n"
      "the private to-hospital pattern is what the noise actually hides.\n");
  return pldp::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  if (example_util::WantsHelp(argc, argv)) {
    example_util::PrintUsage(
        argv[0],
        "Quickstart: protect one private pattern in a small event stream\n"
        "with the uniform pattern-level PPM and answer a target query\n"
        "through the trusted engine.",
        nullptr, 0);
    return 0;
  }
  pldp::Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "quickstart failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
