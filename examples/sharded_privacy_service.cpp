// Copyright 2026 The PLDP Authors.
//
// The paper's full service phase (Fig. 2), declared through the pipeline
// API: a fleet of smart homes (data subjects) streams events into the
// trusted CEP middleware. Declaring private patterns + private queries +
// a mechanism makes the planner compile the sharded private lane: each
// subject is routed to a worker shard, windowed shard-locally, protected
// through a per-subject pattern-level mechanism (uniform PPM, budget ε),
// and the registered target queries are answered from protected views
// only — raw events never leave the middleware.
//
// Determinism: per-subject Rngs derive from (seed, subject id), so the
// protected answers are identical at any shard count; run with different
// WithShards budgets and diff the output to see for yourself.

#include <cstdio>

#include "core/pldp.h"
#include "example_util.h"

namespace {

pldp::Status Run() {
  constexpr size_t kHomes = 500;
  constexpr size_t kTicks = 400;
  constexpr pldp::Timestamp kWindow = 20;
  constexpr double kEpsilon = 2.0;

  // --- Setup phase: subjects declare a private pattern, one consumer
  // registers target queries, the middleware grants ε. All declarative;
  // the planner validates and compiles at Build().
  pldp::PipelineBuilder builder;
  const pldp::EventTypeId door = builder.InternEventType("front_door");
  const pldp::EventTypeId motion = builder.InternEventType("hall_motion");
  const pldp::EventTypeId kettle = builder.InternEventType("kettle_on");
  const pldp::EventTypeId meds = builder.InternEventType("med_cabinet");

  // The residents consider "medication taken at home" private.
  builder.AddPrivatePattern(
      pldp::Pattern::Create("meds_at_home", {door, meds},
                            pldp::DetectionMode::kConjunction));

  // A wellness service asks two continuous queries per window.
  pldp::PrivateQueryHandle came_home = builder.AddPrivateQuery(
      "came_home",
      pldp::Pattern::Create("came_home", {door, motion, kettle},
                            pldp::DetectionMode::kConjunction));
  pldp::PrivateQueryHandle meds_taken = builder.AddPrivateQuery(
      "meds_taken", pldp::Pattern::Create("meds_taken", {door, meds},
                                          pldp::DetectionMode::kConjunction));

  PLDP_ASSIGN_OR_RETURN(std::unique_ptr<pldp::Pipeline> pipeline,
                        builder.WithShards(0)  // auto: one per hardware thread
                            .WithSeed(2026)
                            .WithPrivacyWindow(kWindow)
                            .WithMechanism("uniform")
                            .WithEpsilon(kEpsilon)
                            .Build());
  std::printf("planned topology:\n%s\n", pipeline->plan().Describe().c_str());

  // --- Service phase: synthesize the merged arrival stream and replay it
  // in per-tick batches (the batched ingest path).
  pldp::Rng gen(7);
  pldp::EventStream arrivals;
  for (pldp::Timestamp t = 0; t < static_cast<pldp::Timestamp>(kTicks); ++t) {
    for (pldp::StreamId home = 0; home < kHomes; ++home) {
      if (!gen.Bernoulli(0.15)) continue;
      const auto which =
          static_cast<pldp::EventTypeId>(gen.UniformUint64(4));
      arrivals.AppendUnchecked(pldp::Event(which, t, home));
    }
  }

  pldp::StreamReplayer replayer;
  replayer.Subscribe(pipeline.get());
  PLDP_RETURN_IF_ERROR(
      replayer.Run(arrivals, pldp::ReplayMode::kBatchPerTick));

  // --- Consumer-side view: protected answers only, reachable only behind
  // the Finish() barrier via the typed handles.
  PLDP_ASSIGN_OR_RETURN(pldp::FinishedPipeline finished, pipeline->Finish());
  const std::vector<pldp::StreamId> subjects = finished.Subjects();
  size_t came_home_positives = 0;
  size_t meds_positives = 0;
  for (pldp::StreamId subject : subjects) {
    PLDP_ASSIGN_OR_RETURN(pldp::AnswerSeries a,
                          finished.AnswersOf(came_home, subject));
    came_home_positives += a.PositiveCount();
    PLDP_ASSIGN_OR_RETURN(pldp::AnswerSeries b,
                          finished.AnswersOf(meds_taken, subject));
    meds_positives += b.PositiveCount();
  }

  std::printf(
      "ingested %zu events from %zu homes across %zu shards\n"
      "published %zu protected windows (ε=%.1f per private pattern)\n"
      "'came_home' positive in %zu windows, 'meds_taken' in %zu\n",
      finished.events_processed(), subjects.size(),
      pipeline->plan().shard_count, finished.total_windows(), kEpsilon,
      came_home_positives, meds_positives);

  std::printf("\nper-shard load:\n");
  for (const pldp::ShardStats& s : pipeline->ShardStatsSnapshot()) {
    std::printf("  shard %zu: %zu events, %zu backpressure waits\n",
                s.shard_index, s.events_processed, s.backpressure_waits);
  }
  return pipeline->Stop();
}

}  // namespace

int main(int argc, char** argv) {
  if (example_util::WantsHelp(argc, argv)) {
    example_util::PrintUsage(
        argv[0],
        "The paper's full service phase, sharded: private patterns,\n"
        "private queries, and a mechanism declared on the builder; each\n"
        "subject is windowed and protected shard-locally, and queries are\n"
        "answered from protected views only.",
        nullptr, 0);
    return 0;
  }
  pldp::Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
