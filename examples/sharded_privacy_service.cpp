// Copyright 2026 The PLDP Authors.
//
// The paper's full service phase (Fig. 2), sharded: a fleet of smart homes
// (data subjects) streams events into the trusted CEP middleware, which
// routes each subject to a worker shard, windows every subject's stream
// shard-locally, publishes privacy-protected views through a per-subject
// pattern-level mechanism (uniform PPM, budget ε), and answers the
// registered target queries from the protected views only — raw events
// never leave the middleware.
//
// Determinism: per-subject Rngs derive from (seed, subject id), so the
// protected answers are identical at any shard count; run with different
// shard counts and diff the output to see for yourself.

#include <cstdio>

#include "core/pldp.h"

namespace {

pldp::Status Run() {
  constexpr size_t kHomes = 500;
  constexpr size_t kTicks = 400;
  constexpr pldp::Timestamp kWindow = 20;
  constexpr double kEpsilon = 2.0;

  // --- Setup phase: subjects declare a private pattern, one consumer
  // registers target queries, the middleware grants ε.
  pldp::ParallelPrivateOptions options;
  options.shard_count = 0;  // auto: one shard per hardware thread
  options.window_size = kWindow;
  options.seed = 2026;
  pldp::ParallelPrivateEngine engine(options);

  const pldp::EventTypeId door = engine.InternEventType("front_door");
  const pldp::EventTypeId motion = engine.InternEventType("hall_motion");
  const pldp::EventTypeId kettle = engine.InternEventType("kettle_on");
  const pldp::EventTypeId meds = engine.InternEventType("med_cabinet");

  // The residents consider "medication taken at home" private.
  PLDP_ASSIGN_OR_RETURN(
      pldp::Pattern private_pattern,
      pldp::Pattern::Create("meds_at_home", {door, meds},
                            pldp::DetectionMode::kConjunction));
  PLDP_RETURN_IF_ERROR(
      engine.RegisterPrivatePattern(std::move(private_pattern)).status());

  // A wellness service asks two continuous queries per window.
  PLDP_ASSIGN_OR_RETURN(
      pldp::Pattern came_home,
      pldp::Pattern::Create("came_home", {door, motion, kettle},
                            pldp::DetectionMode::kConjunction));
  PLDP_RETURN_IF_ERROR(
      engine.RegisterTargetQuery("came_home", std::move(came_home)).status());
  PLDP_ASSIGN_OR_RETURN(
      pldp::Pattern meds_taken,
      pldp::Pattern::Create("meds_taken", {door, meds},
                            pldp::DetectionMode::kConjunction));
  PLDP_RETURN_IF_ERROR(
      engine.RegisterTargetQuery("meds_taken", std::move(meds_taken))
          .status());

  // Uniform pattern-level PPM; one fresh instance per data subject.
  PLDP_RETURN_IF_ERROR(
      engine.Activate(pldp::NamedMechanismFactory("uniform"), kEpsilon));

  // --- Service phase: synthesize the merged arrival stream and replay it
  // in per-tick batches (the batched ingest path).
  pldp::Rng gen(7);
  pldp::EventStream arrivals;
  for (pldp::Timestamp t = 0; t < static_cast<pldp::Timestamp>(kTicks); ++t) {
    for (pldp::StreamId home = 0; home < kHomes; ++home) {
      if (!gen.Bernoulli(0.15)) continue;
      const auto which =
          static_cast<pldp::EventTypeId>(gen.UniformUint64(4));
      arrivals.AppendUnchecked(pldp::Event(which, t, home));
    }
  }

  pldp::StreamReplayer replayer;
  replayer.Subscribe(&engine);
  PLDP_RETURN_IF_ERROR(
      replayer.Run(arrivals, pldp::ReplayMode::kBatchPerTick));
  // Run ends with OnEnd → Finish: shards drained, open windows published.

  // --- Consumer-side view: protected answers only.
  const std::vector<pldp::StreamId> subjects = engine.SubjectIds();
  size_t total_windows = 0;
  size_t came_home_positives = 0;
  size_t meds_positives = 0;
  for (pldp::StreamId subject : subjects) {
    PLDP_ASSIGN_OR_RETURN(pldp::SubjectResults results,
                          engine.ResultsFor(subject));
    total_windows += results.window_count;
    came_home_positives += results.answers[0].PositiveCount();
    meds_positives += results.answers[1].PositiveCount();
  }

  std::printf(
      "ingested %zu events from %zu homes across %zu shards\n"
      "published %zu protected windows (ε=%.1f per private pattern)\n"
      "'came_home' positive in %zu windows, 'meds_taken' in %zu\n",
      engine.events_processed(), subjects.size(), engine.shard_count(),
      total_windows, kEpsilon, came_home_positives, meds_positives);

  std::printf("\nper-shard load:\n");
  for (const pldp::ShardStats& s : engine.ShardStatsSnapshot()) {
    std::printf("  shard %zu: %zu events, %zu backpressure waits\n",
                s.shard_index, s.events_processed, s.backpressure_waits);
  }
  return engine.Stop();
}

}  // namespace

int main() {
  pldp::Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
