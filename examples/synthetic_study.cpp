// Copyright 2026 The PLDP Authors.
//
// A small privacy/utility study on the Algorithm-2 synthetic workload:
// sweeps the pattern-level budget ε for every mechanism and prints the
// resulting MRE series (a miniature of the paper's Fig. 4, right panel),
// then shows the privacy side of the trade-off: the empirical
// indistinguishability of answers with and without the private pattern.

#include <cmath>
#include <cstdio>

#include "core/pldp.h"
#include "example_util.h"

namespace {

pldp::Status Run() {
  pldp::SyntheticOptions opt;
  opt.num_windows = 400;
  PLDP_ASSIGN_OR_RETURN(pldp::SyntheticDataset synth,
                        pldp::GenerateSynthetic(opt, /*seed=*/21));

  // --- Utility side: MRE vs ε ------------------------------------------------
  pldp::EvaluationConfig cfg;
  cfg.repetitions = 8;
  cfg.mechanism_options.adaptive.trials = 16;
  PLDP_ASSIGN_OR_RETURN(
      pldp::SweepResult sweep,
      pldp::SweepEpsilons(synth.dataset, pldp::AllMechanismNames(),
                          {0.5, 1.0, 2.0, 5.0}, cfg));
  std::printf("%s\n", sweep.ToTable().ToString().c_str());

  // --- Privacy side: what the noise actually buys ----------------------------
  // Take the private pattern, build its uniform mechanism at ε = 1, and
  // compare the response distribution for "pattern present" vs "pattern
  // absent" indicator vectors: the likelihood ratio of any response is
  // bounded by e^ε (Theorem 1), verified here by exact enumeration.
  const pldp::Pattern& priv =
      synth.dataset.patterns.Get(synth.dataset.private_patterns[0]);
  PLDP_ASSIGN_OR_RETURN(auto alloc,
                        pldp::BudgetAllocation::Uniform(1.0, priv.length()));
  PLDP_ASSIGN_OR_RETURN(auto mech,
                        pldp::PatternRandomizedResponse::FromAllocation(alloc));
  PLDP_ASSIGN_OR_RETURN(double worst_loss,
                        pldp::MaxArbitraryNeighborLoss(mech));
  std::printf(
      "private pattern %s: worst-case privacy loss %.6f (granted ε = 1)\n",
      priv.name().c_str(), worst_loss);
  std::printf(
      "=> any adversary observing the published answers can shift their\n"
      "   belief about the private pattern by at most e^%.3f ≈ %.3fx.\n",
      worst_loss, std::exp(worst_loss));
  return pldp::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  if (example_util::WantsHelp(argc, argv)) {
    example_util::PrintUsage(
        argv[0],
        "Privacy/utility study on the Algorithm-2 synthetic workload:\n"
        "sweeps the budget epsilon for every mechanism (MRE series, a\n"
        "miniature of the paper's Fig. 4) and shows the empirical\n"
        "indistinguishability of answers with and without the pattern.",
        nullptr, 0);
    return 0;
  }
  pldp::Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "synthetic_study failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
