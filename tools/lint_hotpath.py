#!/usr/bin/env python3
# Copyright 2026 The PLDP Authors.
"""Static no-allocation / no-lock lint for PLDP_HOT functions.

The runtime's per-event path (shard worker loop, predicate evaluation,
exchange emit, merge release, instrument updates) is annotated with
`PLDP_HOT` (src/common/thread_annotations.h). This lint enforces the
contract the annotation documents: the DIRECT BODY of a hot function must
not

  * allocate (`new`, make_unique/make_shared, malloc/calloc/realloc),
  * build strings (`std::string(...)`, std::to_string, stringstreams), or
  * take locks (lock_guard/unique_lock/scoped_lock/shared_lock, MutexLock,
    `.lock()` / `->lock()`).

Amortized container growth (push_back on a pre-reserved vector / ring) is
deliberately NOT banned here — the runtime's allocation-counting bench
(bench/runtime_throughput, the CI allocation gate) owns that boundary; this
lint catches the categorical mistakes a reviewer can miss in a diff.

On top of the direct-body scan, the lint is one level call-graph aware:
a call from a PLDP_HOT body to a function DEFINED in the scanned files
that is neither PLDP_HOT itself nor on the small allowlist below is
flagged. A hot wrapper can no longer hide an allocation one hop away in
a cold helper — the helper must be marked PLDP_HOT (putting its body
under this lint), allowlisted here with a comment, or excused at the
call site. Calls into code outside the scanned set (std::, libc) stay
out of scope: no compiler, no headers, no way to see their bodies.

Scope and limitations (kept deliberately simple — no compiler needed):

  * The direct body of a PLDP_HOT function is checked, plus the one-level
    callee discipline above; deeper chains are covered inductively (each
    PLDP_HOT callee gets its own body + callee check).
  * Functions declared PLDP_HOT without an inline body are matched to
    their out-of-line definitions by `Qualified::Name(` lookup across the
    scanned files.
  * Callee resolution is by bare name, and only UNQUALIFIED call shapes
    are judged (`Helper(x)`, including implicit-this member calls) —
    `obj.method(...)`, `ptr->method(...)` and `Qualified::Fn(...)` are
    skipped, since bare-name matching across classes (every `size()`,
    `load()`, `value()`) would drown the signal. The unqualified shape is
    exactly the cold-helper-one-hop-away pattern this check exists for.
  * A finding can be suppressed on its line with
    `// hotpath-allow: <reason>` — the reason is mandatory and shows up
    in review.

Exit status: 0 when clean, 1 with findings (one `file:line: message` per
finding), 2 on usage errors.

Usage: lint_hotpath.py <dir-or-file> [<dir-or-file> ...]
"""

import os
import re
import sys

BANNED = [
    (re.compile(r"(?<!::)\bnew\b"), "operator new in hot path"),
    (re.compile(r"\bmake_unique\s*<"), "std::make_unique allocates"),
    (re.compile(r"\bmake_shared\s*<"), "std::make_shared allocates"),
    (re.compile(r"\b(?:malloc|calloc|realloc)\s*\("), "C allocation"),
    (re.compile(r"\bstd::string\s*[({]"), "std::string construction"),
    (re.compile(r"\bstd::to_string\s*\("), "std::to_string allocates"),
    (re.compile(r"\b[oi]?stringstream\b"), "stringstream allocates"),
    (re.compile(r"\b(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"),
     "lock acquisition"),
    (re.compile(r"\bMutexLock\b"), "lock acquisition (MutexLock)"),
    (re.compile(r"(?:\.|->)lock\s*\("), "explicit .lock()"),
]

ALLOW_RE = re.compile(r"//\s*hotpath-allow:\s*\S")
HOT_RE = re.compile(r"\bPLDP_HOT\b")
SOURCE_EXTS = (".h", ".hpp", ".cc", ".cpp")

# --- one-level call-graph awareness ---------------------------------------
CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
# Identifier-followed-by-( shapes that are not function calls.
CALL_KEYWORDS = frozenset({
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "decltype", "catch", "assert", "static_assert", "defined", "noexcept",
    "new", "delete", "throw", "case", "do", "else", "operator",
    "static_cast", "const_cast", "reinterpret_cast", "dynamic_cast",
})
# Project functions a hot body may call without a PLDP_HOT marker of their
# own. Keep this SMALL and justified; everything else needs the marker or
# a per-line hotpath-allow.
CALL_ALLOWLIST = frozenset({
    # Terminal paths: once these run the hot path is over (crash/abort or
    # an error return that ends the streaming call) — their cost is
    # irrelevant and they intentionally allocate for diagnostics.
    "ProtocolAssertFail",
    # ThreadRole debug-token bookkeeping: compiled to no-ops in release
    # builds, checked by the thread-safety suite rather than this lint.
    "Assert", "Acquire", "Release",
    # Zero-cost aliases from src/common/atomic.h: in normal builds
    # AtomicFence forwards to std::atomic_thread_fence and RaceCellMove is
    # std::move; only the PLDP_MODEL_CHECK shadow build (where speed is
    # irrelevant) gives them bodies worth the name.
    "AtomicFence", "RaceCellMove",
})
# After a call's close paren a definition shows its body or qualifiers.
DEF_TAIL_RE = re.compile(r"\s*(\{|const\b|noexcept\b|override\b|final\b)")


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving line structure.

    Newlines inside block comments survive so byte offsets keep mapping to
    the original line numbers.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            chunk = text[i:j + 2]
            out.append(re.sub(r"[^\n]", " ", chunk))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                j += 1
            chunk = text[i:j + 1]
            out.append(quote + re.sub(r"[^\n]", " ", chunk[1:-1]) + quote
                       if len(chunk) >= 2 else chunk)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def find_body(text, start):
    """From `start`, returns (body_start, body_end, had_body).

    Scans forward to the first `{` or `;` at paren depth 0; `{` opens a
    body, which is brace-matched. `= 0;` pure declarations and prototypes
    report had_body=False.
    """
    depth = 0
    i = start
    n = len(text)
    while i < n:
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
        elif depth == 0 and c == ";":
            return i, i, False
        elif depth == 0 and c == "{":
            brace = 1
            j = i + 1
            while j < n and brace > 0:
                if text[j] == "{":
                    brace += 1
                elif text[j] == "}":
                    brace -= 1
                j += 1
            return i + 1, j - 1, True
        i += 1
    return n, n, False


def matching_paren(text, open_pos):
    """Offset of the `)` closing the `(` at open_pos, or -1."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def collect_definitions(stripped):
    """Bare names of functions DEFINED (with a body) in this file.

    A definition is `name(params)` followed — after optional cv/noexcept/
    override qualifiers — by `{`. Constructors with init lists and
    `= default` members are missed; that only shrinks the checked set,
    never adds false findings.
    """
    names = set()
    for m in CALL_RE.finditer(stripped):
        name = m.group(1)
        if name in CALL_KEYWORDS:
            continue
        open_pos = stripped.index("(", m.end() - 1)
        close_pos = matching_paren(stripped, open_pos)
        if close_pos < 0:
            continue
        if DEF_TAIL_RE.match(stripped, close_pos + 1):
            names.add(name)
    return names


def hot_function_name(text, hot_end):
    """Name of the function a PLDP_HOT marker annotates: the identifier
    immediately before the first `(` after the marker."""
    m = re.compile(r"([A-Za-z_]\w*)\s*\(").search(text, hot_end)
    return m.group(1) if m else None


def scan_body(path, raw_lines, stripped, body_start, body_end, func, findings,
              hot_names=frozenset(), defined_names=frozenset()):
    body = stripped[body_start:body_end]
    base_line = line_of(stripped, body_start)
    for rel, line in enumerate(body.split("\n")):
        lineno = base_line + rel
        raw = raw_lines[lineno - 1] if lineno - 1 < len(raw_lines) else ""
        if ALLOW_RE.search(raw):
            continue
        for pattern, message in BANNED:
            if pattern.search(line):
                findings.append(
                    f"{path}:{lineno}: in PLDP_HOT `{func}`: {message}")
        # One-level call-graph check: unqualified calls to scanned-set
        # functions that are neither hot nor allowlisted.
        for call in CALL_RE.finditer(line):
            name = call.group(1)
            if (name in CALL_KEYWORDS or name in CALL_ALLOWLIST
                    or name in hot_names or name == func
                    or name not in defined_names):
                continue
            prefix = line[:call.start()].rstrip()
            if prefix.endswith((".", "->", "::", "&")):
                continue  # qualified / member / address-of — out of scope
            findings.append(
                f"{path}:{lineno}: in PLDP_HOT `{func}`: calls non-PLDP_HOT "
                f"`{name}` defined in the scanned set — mark the callee "
                "PLDP_HOT, allowlist it, or hotpath-allow this line")


def collect_files(args):
    files = []
    for arg in args:
        if os.path.isfile(arg):
            files.append(arg)
        elif os.path.isdir(arg):
            for root, _, names in os.walk(arg):
                for name in sorted(names):
                    if name.endswith(SOURCE_EXTS):
                        files.append(os.path.join(root, name))
        else:
            print(f"lint_hotpath: no such path: {arg}", file=sys.stderr)
            sys.exit(2)
    return files


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    files = collect_files(argv[1:])
    contents = {}
    for path in files:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read()
        contents[path] = (raw, raw.split("\n"), strip_comments_and_strings(raw))

    # Pre-pass for the call-graph check: every function name annotated
    # PLDP_HOT anywhere, and every function name defined in the scanned
    # set (only calls to the latter are judged — external callees are
    # invisible to a build-free lint).
    hot_names = set()
    defined_names = set()
    for path, (raw, raw_lines, stripped) in contents.items():
        defined_names |= collect_definitions(stripped)
        for m in HOT_RE.finditer(stripped):
            line_start = stripped.rfind("\n", 0, m.start()) + 1
            if stripped[line_start:m.start()].lstrip().startswith("#"):
                continue
            name = hot_function_name(stripped, m.end())
            if name is not None:
                hot_names.add(name)

    findings = []
    # Hot functions whose marker had no inline body: name -> marker site.
    pending = {}
    hot_total = 0
    for path, (raw, raw_lines, stripped) in contents.items():
        for m in HOT_RE.finditer(stripped):
            # The marker's own `#define PLDP_HOT ...` lines (and any other
            # preprocessor use) are not annotation sites.
            line_start = stripped.rfind("\n", 0, m.start()) + 1
            if stripped[line_start:m.start()].lstrip().startswith("#"):
                continue
            name = hot_function_name(stripped, m.end())
            if name is None:
                findings.append(
                    f"{path}:{line_of(stripped, m.start())}: PLDP_HOT marker "
                    "with no function declaration after it")
                continue
            hot_total += 1
            body_start, body_end, had_body = find_body(stripped, m.end())
            if had_body:
                scan_body(path, raw_lines, stripped, body_start, body_end,
                          name, findings, hot_names, defined_names)
            else:
                pending.setdefault(name, []).append(
                    f"{path}:{line_of(stripped, m.start())}")

    # Out-of-line definitions of the pending names.
    for name, sites in pending.items():
        defined = False
        def_re = re.compile(r"\b[A-Za-z_]\w*(?:<[^<>]*>)?::" + re.escape(name)
                            + r"\s*\(")
        for path, (raw, raw_lines, stripped) in contents.items():
            for m in def_re.finditer(stripped):
                body_start, body_end, had_body = find_body(stripped, m.end())
                if not had_body:
                    continue
                defined = True
                scan_body(path, raw_lines, stripped, body_start, body_end,
                          name, findings, hot_names, defined_names)
        if not defined:
            # Pure-virtual hot interfaces (e.g. Predicate::Eval) are fine as
            # long as at least one override was scanned somewhere; a name
            # with neither inline body nor definition in the scanned set is
            # reported so a typo'd marker cannot silently check nothing.
            override_re = re.compile(r"\b" + re.escape(name) + r"\s*\(")
            covered = any(
                HOT_RE.search(stripped[max(0, m.start() - 120):m.start()])
                for _, (_, _, stripped) in contents.items()
                for m in override_re.finditer(stripped))
            if not covered:
                for site in sites:
                    findings.append(
                        f"{site}: PLDP_HOT `{name}` has no body in the "
                        "scanned files (definition outside the lint scope?)")

    if findings:
        for f in findings:
            print(f)
        print(f"lint_hotpath: {len(findings)} finding(s) across "
              f"{hot_total} hot function site(s)", file=sys.stderr)
        return 1
    print(f"lint_hotpath: OK ({hot_total} PLDP_HOT site(s), "
          f"{len(files)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
