#!/usr/bin/env python3
# Copyright 2026 The PLDP Authors.
"""Memory-ordering discipline lint for the runtime's atomics.

Every atomic operation in protocol code must (a) name an EXPLICIT
std::memory_order — never the seq_cst default — and (b) carry an adjacent
`// order:` comment giving the pairing rationale ("release pairs with the
consumer's acquire in ...", "relaxed; telemetry only"). The discipline
keeps each ordering decision reviewable in place, feeds the model checker
(`pldp::Atomic` under PLDP_MODEL_CHECK has no defaulted-order overloads,
so a missing order fails to compile there), and makes a weakened order a
visible diff instead of a silent default.

Checked operations: member `.load/.store/.exchange/.fetch_*/
.compare_exchange_{weak,strong}` calls and the `AtomicFence` /
`std::atomic_thread_fence` free functions. compare_exchange must name
BOTH the success and failure order. An order is "explicit" when the
argument list names a `std::memory_order_*` constant or a project-level
`k...Order` constant (the idiom the negative-build mutations hook, e.g.
`kTailPublishOrder` in spsc_queue.h).

The `// order:` comment may sit on any line of the call expression or
within the four lines above it (the runtime's idiom is the line directly
above); when those lines land inside a longer contiguous `//` comment
block, the whole block counts, so a multi-line pairing argument keeps
its `order:` lead line. A site can opt out with `// atomics-allow:
<reason>` in the same window — the reason is mandatory and shows up in
review.

Scope and limitations (lexical, like lint_hotpath.py — no compiler):
function DEFINITIONS whose parameter list mentions std::memory_order
(wrappers like pldp::AtomicFence itself) are skipped by a followed-by-
`{`/`const` heuristic; the shadow-atomics layer (src/check/) is excluded
by the ctest invocation because the checker's internals serialize on a
global mutex and carry no ordering protocol of their own.

Exit status: 0 when clean, 1 with findings (one `file:line: message` per
finding), 2 on usage errors.

Usage: lint_atomics.py <dir-or-file> [...] [--exclude <substring>]...
"""

import os
import re
import sys

OP_RE = re.compile(
    r"(?:\.|->)\s*(load|store|exchange|fetch_add|fetch_sub|fetch_or|"
    r"fetch_and|fetch_xor|compare_exchange_weak|compare_exchange_strong)"
    r"\s*\(|\b(AtomicFence|std::atomic_thread_fence)\s*\(")

ORDER_COMMENT_RE = re.compile(r"//\s*order:\s*\S")
ALLOW_RE = re.compile(r"//\s*atomics-allow:\s*\S")
# After a definition's parameter list: body or qualifiers, not expression
# context.
DEFINITION_TAIL_RE = re.compile(r"\s*(\{|const\b|noexcept\b|override\b)")
SOURCE_EXTS = (".h", ".hpp", ".cc", ".cpp")
# Lines of context above the call where the rationale may live.
COMMENT_WINDOW = 4
# An explicit order argument: a std:: constant or a named project
# constant of the k...Order form (the hook point for seeded mutations).
EXPLICIT_ORDER_RE = re.compile(r"std::memory_order_\w+|\bk\w*Order\b")


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            chunk = text[i:j + 2]
            out.append(re.sub(r"[^\n]", " ", chunk))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                j += 1
            chunk = text[i:j + 1]
            out.append(quote + re.sub(r"[^\n]", " ", chunk[1:-1]) + quote
                       if len(chunk) >= 2 else chunk)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def matching_paren(text, open_pos):
    """Offset of the `)` closing the `(` at open_pos, or -1."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def scan_file(path, raw_lines, stripped, findings):
    sites = 0
    for m in OP_RE.finditer(stripped):
        op = m.group(1) or m.group(2)
        open_pos = stripped.index("(", m.end() - 1)
        close_pos = matching_paren(stripped, open_pos)
        if close_pos < 0:
            continue
        if DEFINITION_TAIL_RE.match(stripped, close_pos + 1):
            continue  # definition/declaration, not a call
        sites += 1
        args = stripped[open_pos + 1:close_pos]
        start_line = line_of(stripped, m.start())
        end_line = line_of(stripped, close_pos)
        lo = max(0, start_line - 1 - COMMENT_WINDOW)
        # A comment block that reaches into the window counts in full, so
        # multi-line rationales keep their `order:` lead line.
        while lo > 0 and raw_lines[lo].lstrip().startswith("//"):
            lo -= 1
        window = raw_lines[lo:end_line]
        if any(ALLOW_RE.search(line) for line in window):
            continue
        required = 2 if op.startswith("compare_exchange") else 1
        named = len(EXPLICIT_ORDER_RE.findall(args))
        if named < required:
            findings.append(
                f"{path}:{start_line}: `{op}` names {named} explicit "
                f"std::memory_order argument(s), needs {required}")
        if not any(ORDER_COMMENT_RE.search(line) for line in window):
            findings.append(
                f"{path}:{start_line}: `{op}` has no adjacent `// order:` "
                "rationale comment (within the call or the "
                f"{COMMENT_WINDOW} lines above)")
    return sites


def collect_files(paths, excludes):
    files = []
    for arg in paths:
        if os.path.isfile(arg):
            files.append(arg)
        elif os.path.isdir(arg):
            for root, _, names in os.walk(arg):
                for name in sorted(names):
                    if name.endswith(SOURCE_EXTS):
                        files.append(os.path.join(root, name))
        else:
            print(f"lint_atomics: no such path: {arg}", file=sys.stderr)
            sys.exit(2)
    return [f for f in files
            if not any(sub in f.replace(os.sep, "/") for sub in excludes)]


def main(argv):
    paths, excludes = [], []
    i = 1
    while i < len(argv):
        if argv[i] == "--exclude":
            if i + 1 >= len(argv):
                print(__doc__, file=sys.stderr)
                return 2
            excludes.append(argv[i + 1])
            i += 2
        else:
            paths.append(argv[i])
            i += 1
    if not paths:
        print(__doc__, file=sys.stderr)
        return 2

    files = collect_files(paths, excludes)
    findings = []
    sites = 0
    for path in files:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read()
        sites += scan_file(path, raw.split("\n"),
                           strip_comments_and_strings(raw), findings)

    if findings:
        for f in findings:
            print(f)
        print(f"lint_atomics: {len(findings)} finding(s) across "
              f"{sites} atomic-op site(s)", file=sys.stderr)
        return 1
    print(f"lint_atomics: OK ({sites} atomic-op site(s), "
          f"{len(files)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
