#!/usr/bin/env python3
# Copyright 2026 The PLDP Authors.
"""Intra-repo link-and-anchor checker for the project's markdown.

The docs layer (README.md, docs/, ROADMAP.md) cross-references itself
heavily — README points at docs/OPERATIONS.md sections, source-file
comments name docs/ARCHITECTURE.md headings, the docs link back. A rename
or heading edit silently strands those references; this checker makes the
break loud. For every markdown file it verifies that

  * relative link targets exist on disk (resolved against the linking
    file's directory, `path`, `path#anchor`, and `#anchor` forms), and
  * `#anchor` fragments name a real heading in the target file, using
    GitHub's slug rules (lowercase; drop everything but word characters,
    spaces, and hyphens; spaces become hyphens; duplicate slugs get -1,
    -2, ... suffixes).

External links (http/https/mailto/ftp) are deliberately NOT fetched —
this runs in CI before anything compiles and must not depend on the
network. Fenced code blocks and inline code spans are ignored on both
sides: a `](` inside a diagram is not a link, and a `# comment` inside a
```sh block is not a heading.

Scope and limitations (kept deliberately simple — stdlib only):

  * Inline `[text](target)` and image `![alt](target)` links only;
    reference-style `[text][ref]` links are not resolved (the repo's
    docs do not use them).
  * Anchor checking applies to markdown targets; links into source files
    (`src/...`) are checked for existence only.

Exit status: 0 when clean, 1 with findings (one `file:line: message` per
finding), 2 on usage errors.

Usage: check_markdown_links.py <dir-or-file> [<dir-or-file> ...]
"""

import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\)[^()\s]*)*)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.+?)\s*#*\s*$")
EXTERNAL_RE = re.compile(r"^(?:[a-z][a-z0-9+.-]*:)")
FENCE_RE = re.compile(r"^(\s*)(```|~~~)")
MARKDOWN_EXTS = (".md", ".markdown")


def blank_code_regions(lines):
    """Returns the lines with fenced blocks and inline code spans blanked,
    preserving line count so indices keep mapping to the original file."""
    out = []
    fence = None
    for line in lines:
        m = FENCE_RE.match(line)
        if fence is None and m:
            fence = m.group(2)
            out.append("")
            continue
        if fence is not None:
            if m and m.group(2) == fence:
                fence = None
            out.append("")
            continue
        # Inline spans: `...` must open and close on one line in the repo's
        # style; unbalanced backticks are left alone.
        out.append(re.sub(r"`[^`]*`", "", line))
    return out


def slugify(heading):
    """GitHub's heading-to-anchor slug, close enough for ASCII docs."""
    text = heading.strip()
    # Unwrap markdown decorations that do not contribute to the slug.
    text = re.sub(r"!?\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = text.replace("`", "")
    # NOTE: *emphasis* markers are not stripped — GitHub keeps mid-word
    # underscores (PLDP_LOG_LEVEL) and telling the two apart needs a real
    # parser. The repo's headings use code spans, never emphasis.
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def collect_anchors(lines):
    """Slug set of a file's headings, with GitHub's -1/-2 dedup suffixes."""
    anchors = set()
    seen = {}
    for line in blank_code_regions(lines):
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = slugify(m.group(2))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def collect_files(args):
    files = []
    for arg in args:
        if os.path.isfile(arg):
            files.append(arg)
        elif os.path.isdir(arg):
            for root, _, names in os.walk(arg):
                for name in sorted(names):
                    if name.endswith(MARKDOWN_EXTS):
                        files.append(os.path.join(root, name))
        else:
            print(f"check_markdown_links: no such path: {arg}",
                  file=sys.stderr)
            sys.exit(2)
    return files


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2

    files = collect_files(argv[1:])
    contents = {}
    for path in files:
        with open(path, encoding="utf-8", errors="replace") as f:
            contents[os.path.abspath(path)] = f.read().split("\n")

    anchor_cache = {}

    def anchors_of(abs_path):
        if abs_path not in anchor_cache:
            if abs_path in contents:
                lines = contents[abs_path]
            else:
                with open(abs_path, encoding="utf-8",
                          errors="replace") as f:
                    lines = f.read().split("\n")
            anchor_cache[abs_path] = collect_anchors(lines)
        return anchor_cache[abs_path]

    findings = []
    checked = 0
    for path in files:
        abs_path = os.path.abspath(path)
        lines = contents[abs_path]
        base_dir = os.path.dirname(abs_path)
        for lineno, line in enumerate(blank_code_regions(lines), start=1):
            for m in LINK_RE.finditer(line):
                target = m.group(1)
                if EXTERNAL_RE.match(target):
                    continue
                checked += 1
                rel, _, fragment = target.partition("#")
                if rel:
                    dest = os.path.normpath(os.path.join(base_dir, rel))
                    if not os.path.exists(dest):
                        findings.append(
                            f"{path}:{lineno}: dead link `{target}` "
                            f"({rel} does not exist)")
                        continue
                else:
                    dest = abs_path  # same-file `#anchor`
                if not fragment:
                    continue
                if not dest.endswith(MARKDOWN_EXTS):
                    findings.append(
                        f"{path}:{lineno}: anchor `#{fragment}` on "
                        f"non-markdown target `{rel}`")
                    continue
                if fragment not in anchors_of(dest):
                    findings.append(
                        f"{path}:{lineno}: dead anchor `{target}` "
                        f"(no heading slugs to `{fragment}` in "
                        f"{rel or os.path.basename(dest)})")

    if findings:
        for f in findings:
            print(f)
        print(f"check_markdown_links: {len(findings)} finding(s) across "
              f"{checked} intra-repo link(s)", file=sys.stderr)
        return 1
    print(f"check_markdown_links: OK ({checked} intra-repo link(s), "
          f"{len(files)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
