// Copyright 2026 The PLDP Authors.

#include "runtime/merge_shard.h"

#include <utility>

#include "runtime/affinity.h"
#include "runtime/backoff.h"

namespace pldp {
namespace {

// Per-lane receive burst: amortizes the queue's release store without
// letting one busy lane starve the merge of the others.
constexpr size_t kReceiveBatch = 128;

}  // namespace

namespace {

size_t SumCredits(const std::vector<ExchangeLane*>& inputs) {
  size_t total = 0;
  for (const ExchangeLane* lane : inputs) total += lane->initial_credits;
  return total;
}

}  // namespace

MergeShard::MergeShard(size_t index, std::vector<ExchangeLane*> inputs)
    : index_(index), reorder_capacity_(SumCredits(inputs)) {
  lanes_.reserve(inputs.size());
  for (ExchangeLane* lane : inputs) {
    lanes_.emplace_back(lane);
    // Defense-in-depth: under credit accounting a lane can never buffer
    // more than its budget; the cap turns a broken invariant into a debug
    // assert instead of silent unbounded growth.
    lanes_.back().buffer.set_capacity_limit(lane->initial_credits);
    // Pre-size the reorder ring to that same bound: the credit budget is
    // the exact worst-case occupancy, so paying the allocation here (at
    // Build()) makes the steady state allocation-flat instead of growing
    // the ring through log2(credits) reallocations under load.
    lanes_.back().buffer.reserve(lane->initial_credits);
    // This shard's worker is the lane queue's sole consumer: route the
    // lane's push doorbell (events and watermarks alike) to it.
    lane->queue.SetWaker(&doorbell_);
  }
  engine_.SetCallback([this](const StreamingDetection& d) {
    // order: relaxed; telemetry only.
    detections_.fetch_add(1, std::memory_order_relaxed);
    if (user_callback_) user_callback_(d);
  });
}

MergeShard::~MergeShard() { (void)Stop(); }

StatusOr<size_t> MergeShard::AddQuery(Pattern pattern, Timestamp window) {
  // order: relaxed; pre-start guard, orchestrator-serialized.
  if (running_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition(
        "MergeShard::AddQuery must precede Start()");
  }
  return engine_.AddQuery(std::move(pattern), window);
}

Status MergeShard::SetInstruments(const obs::MergeInstruments& instruments) {
  // order: relaxed; pre-start guard, orchestrator-serialized.
  if (running_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition(
        "MergeShard::SetInstruments must precede Start()");
  }
  obs_ = instruments;
  return Status::OK();
}

Status MergeShard::SetDetectionCallback(DetectionCallback callback) {
  // order: relaxed; pre-start guard, orchestrator-serialized.
  if (running_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition(
        "MergeShard::SetDetectionCallback must precede Start()");
  }
  user_callback_ = std::move(callback);
  return Status::OK();
}

Status MergeShard::Start() {
  // order: relaxed; orchestrator-serialized (one thread calls Start/Stop).
  if (running_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("merge shard already running");
  }
  // Pre-launch the orchestrator owns the worker role; it hands it over by
  // the thread launch (the lambda acquires it on entry).
  worker_role_.Acquire();
  const bool no_lanes = lanes_.empty();
  worker_role_.Release();
  if (no_lanes) {
    return Status::FailedPrecondition("merge shard has no input lanes");
  }
  // order: relaxed; the thread launch below is the synchronization edge.
  stop_requested_.store(false, std::memory_order_relaxed);
  doorbell_.SetCounters(obs_.parks, obs_.wakes);
  worker_ = std::thread([this] {
    if (affinity_core_ >= 0) (void)PinCurrentThreadToCore(affinity_core_);
    worker_role_.Acquire();
    RunLoop();
    worker_role_.Release();
  });
  // order: relaxed; advisory flag for running() observers.
  running_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

Status MergeShard::WaitSafe(uint64_t bound) {
  Backoff backoff;
  // order: acquire pairs with the worker's release publication (the
  // caller reads the engine after this returns).
  while (safe_primary_.load(std::memory_order_acquire) < bound) {
    backoff.Wait();
  }
  return Status::OK();
}

Status MergeShard::Stop() {
  // order: relaxed; orchestrator-serialized (one thread calls Start/Stop).
  if (!running_.load(std::memory_order_relaxed)) return Status::OK();
  // order: release so work published before the stop request is visible
  // to the worker that observes it (acquire in RunLoop).
  stop_requested_.store(true, std::memory_order_release);
  doorbell_.Ring();  // A parked worker must observe the stop flag.
  if (worker_.joinable()) worker_.join();
  // The worker is gone and (by the orchestrator's teardown order) so are
  // the producers; this thread is the sole owner now — take the worker
  // role back. Absorb anything a skipped barrier left behind, still in
  // key order so the result is a deterministic function of what arrived.
  worker_role_.Acquire();
  (void)ReceiveAvailable();
  (void)MergePass(/*force=*/true);
  worker_role_.Release();
  // order: release publishes the absorbed leftovers to WaitSafe callers.
  safe_primary_.store(kExchangeSeqEnd, std::memory_order_release);
  // order: relaxed; advisory flag for running() observers.
  running_.store(false, std::memory_order_relaxed);
  return Status::OK();
}

ShardStats MergeShard::stats() const {
  ShardStats s;
  s.shard_index = index_;
  // order: acquire pairs with the worker's release in MergePass, so a
  // reader that saw N processed also sees the engine effects of those N.
  s.events_processed =
      static_cast<size_t>(merged_.load(std::memory_order_acquire));
  // order: relaxed; telemetry only.
  s.detections =
      static_cast<size_t>(detections_.load(std::memory_order_relaxed));
  s.parks = static_cast<size_t>(doorbell_.parks());
  s.wakes = static_cast<size_t>(doorbell_.wakes());
  return s;
}

bool MergeShard::ReceiveAvailable() {
  bool any = false;
  size_t received = 0;
  ExchangeItem burst[kReceiveBatch];
  for (LaneState& lane : lanes_) {
    for (;;) {
      const size_t n = lane.lane->queue.TryPopN(burst, kReceiveBatch);
      if (n == 0) break;
      any = true;
      for (size_t i = 0; i < n; ++i) {
        ExchangeItem& item = burst[i];
        if (item.watermark) {
          // Watermarks only advance the lane's future lower bound.
          if (lane.bound < item.key) lane.bound = item.key;
        } else {
          // Events bound the future strictly: later keys exceed this one.
          lane.bound = ExchangeKey{item.key.primary, item.key.sub + 1};
#ifdef PLDP_CHECK_NEGATIVE_CREDITS
          // Seeded mutation for the model checker's negative suite:
          // returning the credit at *receipt* instead of at release lets
          // the producer put a full budget back in flight while this
          // buffer still holds the previous budget — push_back trips the
          // ring's PLDP_PROTOCOL_ASSERT capacity cap.
          // atomics-allow: seeded negative-build mutation, not a shipped
          // ordering decision.
          lane.lane->credits.fetch_add(1, std::memory_order_release);
#endif
          lane.buffer.push_back(std::move(item));
          ++received;
        }
      }
      if (n < kReceiveBatch) break;
    }
  }
  if (received > 0) {
    // order: relaxed; gauge only, scrape threads don't read the buffers.
    buffered_.fetch_add(received, std::memory_order_relaxed);
    if (obs_.events_received) obs_.events_received->Inc(received);
  }
  return any;
}

bool MergeShard::MergePass(bool force) {
  size_t released = 0;
  // Chained clock reads: one MonotonicNowNs per released event.
  uint64_t t_prev = obs_.merge_latency_ns ? obs::MonotonicNowNs() : 0;
  for (;;) {
    // Candidate: the globally smallest buffered key.
    LaneState* best = nullptr;
    for (LaneState& lane : lanes_) {
      if (lane.buffer.empty()) continue;
      if (best == nullptr ||
          lane.buffer.front().key < best->buffer.front().key) {
        best = &lane;
      }
    }
    if (best == nullptr) break;
    if (!force) {
      // Release only when every silent lane provably passed the candidate.
      const ExchangeKey& key = best->buffer.front().key;
      bool safe = true;
      for (const LaneState& lane : lanes_) {
        if (lane.buffer.empty() && lane.bound <= key) {
          safe = false;
          break;
        }
      }
      if (!safe) break;
    }
    // The engine's status is always OK today (see Shard::RunLoop); a future
    // failing engine would latch the error for the drain barrier.
    (void)engine_.OnEvent(best->buffer.front().event);
    best->buffer.pop_front();
#ifndef PLDP_CHECK_NEGATIVE_CREDITS
    // Return the flow-control credit: the event left the reorder buffer,
    // so its producer may put another one in flight on this lane.
    // order: release pairs with the producer's acquire load — the freed
    // buffer slot must be visible before it is refilled.
    best->lane->credits.fetch_add(1, std::memory_order_release);
#endif
    ++released;
    if (obs_.merge_latency_ns) {
      const uint64_t t_now = obs::MonotonicNowNs();
      obs_.merge_latency_ns->Record(t_now - t_prev);
      t_prev = t_now;
    }
  }
  if (released > 0) {
    // order: release publishes the engine effects to stats() readers.
    merged_.fetch_add(released, std::memory_order_release);
    // order: relaxed; gauge only.
    buffered_.fetch_sub(released, std::memory_order_relaxed);
    if (obs_.events_merged) obs_.events_merged->Inc(released);
  }
  return released > 0;
}

void MergeShard::PublishSafeBound() {
  uint64_t frontier = kExchangeSeqEnd;
  for (const LaneState& lane : lanes_) {
    const uint64_t lane_frontier = lane.buffer.empty()
                                       ? lane.bound.primary
                                       : lane.buffer.front().key.primary;
    if (lane_frontier < frontier) frontier = lane_frontier;
  }
  // order: relaxed; this thread is the only writer, so its own last
  // store is always visible to it.
  if (frontier > safe_primary_.load(std::memory_order_relaxed)) {
    // order: release publishes the merged engine state to WaitSafe.
    safe_primary_.store(frontier, std::memory_order_release);
  }
}

void MergeShard::RunLoop() {
  Backoff backoff;
  // Plain queue-pointer snapshot for the park predicate: the lane set is
  // frozen at construction, but `lanes_` itself is worker-role-guarded and
  // the predicate lambda is analyzed as an unannotated function — so it
  // captures only this unguarded local.
  std::vector<SpscQueue<ExchangeItem>*> lane_queues;
  lane_queues.reserve(lanes_.size());
  for (LaneState& lane : lanes_) lane_queues.push_back(&lane.lane->queue);
  for (;;) {
    const bool received = ReceiveAvailable();
    const bool merged = MergePass(/*force=*/false);
    PublishSafeBound();
    if (received || merged) {
      backoff.Reset();
      continue;
    }
    // order: acquire pairs with Stop()'s release store.
    if (stop_requested_.load(std::memory_order_acquire)) return;
    if (backoff.ShouldPark()) {
      // Every wake source rings this doorbell: lane pushes (events and
      // watermarks, via SetWaker) and Stop(). Merge progress is entirely
      // driven by lane input, so an all-empty column with no stop is
      // genuinely idle. See runtime/backoff.h for the lost-wakeup
      // argument.
      (void)doorbell_.ParkUnless([this, &lane_queues] {
        for (SpscQueue<ExchangeItem>* queue : lane_queues) {
          if (!queue->ApproxEmpty()) return true;
        }
        // order: acquire (same pairing as the loop check above).
        return stop_requested_.load(std::memory_order_acquire);
      });
      backoff.Reset();
      continue;
    }
    backoff.Wait();
  }
}

}  // namespace pldp
