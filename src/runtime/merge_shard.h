// Copyright 2026 The PLDP Authors.
//
// Stage-2 worker of the exchange pipeline: one correlation partition.
//
// A merge shard owns a worker thread, one exchange lane per stage-1
// producer (the consumer column of the fabric), and a private
// `StreamingCepEngine` holding the cross-subject queries. The worker
// restores global order with a watermark-gated k-way merge:
//
//   - every lane delivers strictly increasing `ExchangeKey`s; received
//     events are staged in a per-lane reorder buffer, received watermarks
//     only advance the lane's lower bound;
//   - the smallest buffered key is released to the engine exactly when
//     every other lane is known to be past it (a buffered head or a
//     watermark bound proves it) — so the engine sees the events of this
//     correlation partition in precisely the order a sequential engine
//     processing the whole stream would have seen them;
//   - after each pass the worker publishes `safe_primary`, the sequence
//     number through which everything has been merged and processed. Drain
//     barriers wait on it; `kExchangeSeqEnd` means the pipeline is sealed.
//
// The reorder buffers are hard-bounded by the exchange's credit protocol:
// each lane carries a credit budget equal to its reorder capacity
// (ExchangeLane::initial_credits), an Emit consumes one credit, and this
// shard returns it when the event is released to the engine — so a lane's
// in-flight events (queue + buffer) never exceed the budget, whatever the
// producers do. In steady state the buffers hold at most a few lane
// bursts, because every producer keeps watermarking its lanes when idle —
// even one that receives no traffic at all (the router periodically
// publishes a producer floor for exactly that case). When this shard
// stalls, the exhausted credits backpressure the producers (and
// transitively the ingest thread) instead of growing the buffers; the
// buffers carry a protocol-assert capacity cap documenting that bound.
//
// The consume/return credit cycle and the capacity cap are machine-checked
// by tests/check/check_credits_test.cc (model seams below); the negative
// twin PLDP_CHECK_NEGATIVE_CREDITS (merge_shard.cc) returns credits at
// receipt instead of at release and trips the cap under the checker.
//
// Threading contract: AddQuery before Start; exactly one orchestrator
// thread calls Start/Stop; WaitSafe/stats may be called from any thread.
// engine() is safe to read after WaitSafe observed the bound covering
// everything of interest (release/acquire on safe_primary), or after
// Stop().

#ifndef PLDP_RUNTIME_MERGE_SHARD_H_
#define PLDP_RUNTIME_MERGE_SHARD_H_

#include <cstdint>
#include <thread>
#include <vector>

#include "cep/streaming_engine.h"
#include "common/atomic.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/instruments.h"
#include "runtime/backoff.h"
#include "runtime/exchange.h"
#include "runtime/ring_buffer.h"
#include "runtime/shard.h"

namespace pldp {

/// Worker thread + lane column + per-partition engine.
class MergeShard {
 public:
  /// `inputs` is the fabric column this shard consumes (one lane per
  /// stage-1 producer), fixed for the shard's lifetime.
  MergeShard(size_t index, std::vector<ExchangeLane*> inputs);
  ~MergeShard();

  MergeShard(const MergeShard&) = delete;
  MergeShard& operator=(const MergeShard&) = delete;

  size_t index() const { return index_; }

  /// Registers a cross-partition query. Must precede Start().
  StatusOr<size_t> AddQuery(Pattern pattern, Timestamp window);

  /// Binds telemetry instruments (null fields are skipped). Must precede
  /// Start().
  Status SetInstruments(const obs::MergeInstruments& instruments);

  /// Installs a user detection callback (worker thread) invoked for every
  /// detection of this partition's engine. Must precede Start().
  Status SetDetectionCallback(DetectionCallback callback);

  /// Pins the worker thread to `core` at startup (no-op when negative or
  /// unsupported). Must precede Start().
  void SetAffinityCore(int core) { affinity_core_ = core; }

  /// Doorbell park/wake counts (parking-liveness tests; also in stats()).
  uint64_t parks() const { return doorbell_.parks(); }
  uint64_t wakes() const { return doorbell_.wakes(); }

  /// Launches the worker thread. Returns FailedPrecondition if running.
  Status Start();

  /// Blocks until everything with sequence number < `bound` has been merged
  /// and processed (i.e. safe_primary() >= bound). The caller must have
  /// arranged for every producer to pass `bound` (drain + watermark
  /// broadcast), or this spins until they do.
  Status WaitSafe(uint64_t bound);

  /// The published merge frontier (acquire; see file comment).
  uint64_t safe_primary() const {
    // order: acquire pairs with the worker's release publication — engine
    // reads gated on the frontier must see the absorbed events.
    return safe_primary_.load(std::memory_order_acquire);
  }

  /// Stops and joins the worker, then absorbs any leftover lane items in
  /// key order (there are none after a proper drain barrier). Idempotent.
  Status Stop();

  bool running() const {
    // order: relaxed; advisory flag, carries no payload.
    return running_.load(std::memory_order_relaxed);
  }

  /// The partition-local engine. Read-only for the orchestrator; valid
  /// after WaitSafe's bound covers the reads, or after Stop().
  const StreamingCepEngine& engine() const { return engine_; }

  /// Safe from any thread (atomics). events_processed counts events
  /// released to the engine; backpressure_waits stays 0 (producer-side
  /// waits are counted by the emitters).
  ShardStats stats() const;

  /// Instantaneous reorder-buffer occupancy across all lanes — safe from
  /// any thread (dedicated atomic; the ring buffers themselves are
  /// worker-local). Gauge/health source.
  size_t reorder_buffered() const {
    // order: relaxed; instantaneous gauge, no payload to acquire.
    return static_cast<size_t>(buffered_.load(std::memory_order_relaxed));
  }

  /// Hard occupancy bound across all lanes (sum of the lanes' credit
  /// budgets) — the denominator of reorder saturation in health/metrics.
  /// Constant after construction; safe from any thread.
  size_t reorder_capacity() const { return reorder_capacity_; }

#ifdef PLDP_MODEL_CHECK
  /// Model-check seams (tests/check/check_credits_test.cc): run the worker
  /// loop on a model thread instead of a real std::thread, and request
  /// stop without joining. Start()/Stop() are never called in a model
  /// harness — std::thread would escape the cooperative scheduler.
  void ModelRunWorker() {
    worker_role_.Acquire();
    RunLoop();
    worker_role_.Release();
  }
  void ModelRequestStop() {
    // order: release mirrors Stop(); the worker's acquire load pairs.
    stop_requested_.store(true, std::memory_order_release);
    doorbell_.Ring();
  }
  /// Post-join leftover absorption, mirroring the tail of Stop(): the
  /// worker may observe the stop request in the same iteration that its
  /// receive pass ran dry, leaving late pushes in the lanes.
  void ModelFinalize() {
    worker_role_.Acquire();
    (void)ReceiveAvailable();
    (void)MergePass(/*force=*/true);
    worker_role_.Release();
  }
#endif

 private:
  struct LaneState {
    explicit LaneState(ExchangeLane* l) : lane(l) {}
    ExchangeLane* lane;
    /// Events received but not yet safe to release, in key order. A ring
    /// (not a deque) so steady-state buffering never allocates — capacity
    /// sticks after the first bursts (see runtime/ring_buffer.h).
    RingBuffer<ExchangeItem> buffer;
    /// Lower bound on every future key of this lane (from the last
    /// received item or watermark).
    ExchangeKey bound{0, 0};
  };

  void RunLoop() PLDP_REQUIRES(worker_role_);
  /// Drains whatever the lanes currently hold into the reorder buffers.
  PLDP_HOT bool ReceiveAvailable() PLDP_REQUIRES(worker_role_);
  /// Releases every safe buffered event to the engine, in key order.
  /// When `force` (only after the producers are joined), gating by lane
  /// bounds is skipped and everything buffered is released.
  PLDP_HOT bool MergePass(bool force) PLDP_REQUIRES(worker_role_);
  void PublishSafeBound() PLDP_REQUIRES(worker_role_);

  const size_t index_;
  /// Sum of the input lanes' credit budgets (constant after construction).
  const size_t reorder_capacity_;
  /// Worker-thread confinement of the merge state: the orchestrator holds
  /// the role from construction until Start() launches the worker, the
  /// worker holds it for the thread's lifetime, and Stop() takes it back
  /// after the join to absorb leftovers. Zero-size, zero-cost — exists so
  /// the thread-safety analysis can prove the reorder buffers are never
  /// touched concurrently.
  ThreadRole worker_role_;
  std::vector<LaneState> lanes_ PLDP_GUARDED_BY(worker_role_);
  /// Wake-on-work doorbell the idle worker parks on; every input lane's
  /// queue rings it on push (events and watermarks alike), Stop() rings
  /// it directly.
  Doorbell doorbell_;
  /// Worker thread CPU affinity (-1 = unpinned).
  int affinity_core_ = -1;
  StreamingCepEngine engine_;
  std::thread worker_;
  Atomic<bool> running_{false};
  Atomic<bool> stop_requested_{false};

  /// Merge frontier: everything with primary < safe_primary_ is done.
  /// Published with release after the engine absorbed the events.
  Atomic<uint64_t> safe_primary_{0};
  Atomic<uint64_t> merged_{0};
  Atomic<uint64_t> detections_{0};
  /// Events sitting in reorder buffers (receive increments, release
  /// decrements) — kept as an atomic so scrape threads never touch the
  /// worker-local ring buffers.
  Atomic<uint64_t> buffered_{0};

  // Telemetry bundle and optional user callback, fixed before Start.
  obs::MergeInstruments obs_;
  DetectionCallback user_callback_;
};

}  // namespace pldp

#endif  // PLDP_RUNTIME_MERGE_SHARD_H_
