// Copyright 2026 The PLDP Authors.
//
// Sharded parallel streaming CEP engine.
//
// `ParallelStreamingEngine` scales `StreamingCepEngine` across cores: it
// hash-partitions incoming events by subject key (runtime/router.h) onto N
// worker shards (runtime/shard.h), each owning a private engine with the
// same registered queries, connected by bounded lock-free SPSC queues with
// backpressure. It implements `StreamSubscriber`, so it drops into the
// existing `StreamReplayer` wherever a `StreamingCepEngine` did.
//
// Subject partitioning makes per-subject patterns exact, but a pattern that
// correlates *across* subjects sees only fragments on any one shard. For
// those, the engine grows a second stage: a repartition/exchange
// (runtime/exchange.h) re-keys stage-1 output by a correlation key
// (cep/correlation_key.h) over an N1×N2 matrix of SPSC lanes, and stage-2
// merge shards (runtime/merge_shard.h) restore global order with a
// watermark-gated k-way merge before matching the cross-subject queries.
// Cross queries that need *different* correlation keys get one exchange
// lane-group each (own fabric + merge shards, see AddCrossQueryKeyed);
// stage-1 workers fan their output through every group's emitter.
//
// NOTE: prefer the declarative `PipelineBuilder` (api/pipeline_builder.h)
// over constructing this engine directly — the builder plans the minimal
// topology from the registered queries and returns typed query handles
// whose result accessors encode the drain contract. This class remains the
// planner's sharded/exchange execution target.
//
//     caller / StreamReplayer
//            │ OnEvent / OnEventBatch (stamped with ingest seq,
//            ▼                         staged per shard, bulk-pushed)
//       EventRouter ── hash(subject) % N1 ─► SpscQueue ─► Shard 0 ┐
//                                            SpscQueue ─► Shard 1 │ stage 1
//                                            ...                  ┘
//                 per-shard StreamingCepEngine (+ optional sink)
//                          │ ExchangeEmitter: re-key by correlation key
//                          ▼
//              N1×N2 exchange lanes (SPSC each, watermarked)
//                          │
//                          ▼ k-way merge by ingest seq
//                    MergeShard 0..N2-1                    stage 2
//              cross-subject StreamingCepEngine each
//            │
//            ▼
//     Drain barrier (two-phase: stage-1 drain + watermark flush,
//     then stage-2 safe-bound wait) → merged detections / stats
//
// Semantics: stage-1 detection is *partition-local by subject* — exact
// whenever matches are subject-local, the paper's setting (Fig. 2).
// Stage-2 detection is *partition-local by correlation key*: exact whenever
// all events of a potential match share the key (trivially true for the
// global key, which sends everything to one stage-2 shard). Because the
// merge releases events in exact ingest order, stage-2 detections equal a
// sequential engine's bit-for-bit, not just as a multiset.

#ifndef PLDP_RUNTIME_PARALLEL_ENGINE_H_
#define PLDP_RUNTIME_PARALLEL_ENGINE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "cep/correlation_key.h"
#include "cep/streaming_engine.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "quality/metrics.h"
#include "runtime/admission.h"
#include "runtime/exchange.h"
#include "runtime/merge_shard.h"
#include "runtime/overload.h"
#include "runtime/router.h"
#include "runtime/shard.h"
#include "runtime/stall_floor.h"
#include "stream/replay.h"

namespace pldp {

class IngestProducer;

/// Configuration of the optional repartition/exchange stage.
struct RuntimeExchangeOptions {
  /// Off by default: the engine is the familiar single-stage runtime.
  bool enabled = false;
  /// Stage-2 merge shards. 0 = as many as stage-1 shards.
  size_t shard_count = 0;
  /// Capacity of each exchange lane (rounded up to a power of two).
  size_t lane_capacity = 1024;
  /// Per-lane flow-control credit budget: a hard bound on how many events
  /// one producer may have buffered in one merge shard's reorder buffer
  /// (runtime/exchange.h). 0 = kDefaultExchangeReorderCapacity. A merge
  /// shard's total reorder memory is bounded by N1 × this value.
  size_t reorder_capacity = 0;
  /// How stage-1 output is re-keyed. Ignored when key_fn is set.
  CorrelationKeySpec key = CorrelationKeySpec::Global();
  /// Custom correlation key extractor; overrides `key` when set.
  ShardKeyFn key_fn;
  /// When true (default) every stage-1 event is forwarded downstream (the
  /// plain cross-subject path). When false, emission is sink-driven only —
  /// the private path, where nothing but protected output may cross.
  bool forward_raw_events = true;
};

/// Construction-time knobs of the runtime.
struct ParallelEngineOptions {
  /// Worker shards. 0 = one per available hardware thread.
  size_t shard_count = 0;
  /// Per-shard queue capacity (rounded up to a power of two). Bounds
  /// memory and converts overload into router-side backpressure.
  size_t queue_capacity = 1024;
  /// Partition key; default = subject (Event::stream()).
  ShardKeyFn key_fn;
  /// Seed for the per-shard Rngs (deterministic per shard).
  uint64_t seed = 0x51a9d5ULL;
  /// Optional per-shard event sink factory, called once per shard at
  /// construction. The sink runs on the shard's worker thread (see
  /// Shard::SetEventSink) — this is how shard-local PLDP perturbation
  /// attaches (core/parallel_private_engine.h).
  std::function<std::unique_ptr<ShardEventSink>(size_t shard_index)>
      sink_factory;
  /// The cross-subject exchange stage.
  RuntimeExchangeOptions exchange;
  /// What ingestion does when a shard queue is full (runtime/overload.h).
  /// The default (kBlock) keeps the historic lossless backpressure path
  /// with zero added overhead; the shedding policies interpose an
  /// AdmissionQueue in front of the shard queues.
  OverloadOptions overload;
  /// Concurrent ingest producers (the MPSC front-end). 1 (default) keeps
  /// the historic single-producer StreamSubscriber contract. With P > 1
  /// every shard exposes P independent SPSC ingest lanes; callers drive
  /// the per-producer handles (ParallelStreamingEngine::producer) from up
  /// to P concurrent threads, and the engine-level OnEvent/OnEventBatch
  /// are refused. Producer p stamps sequence numbers p, p+P, p+2P, ... so
  /// a stream partitioned round-robin over the handles reproduces the
  /// single-producer stamping bit-for-bit. Requires the blocking overload
  /// policy (the admission layer is single-producer).
  size_t ingest_producers = 1;
  /// Pin worker threads to cores at Start (round-robin: stage-1 shards
  /// first, then stage-2 merge shards). No-op on platforms without
  /// affinity support — pinning is a hint, never a correctness knob.
  bool pin_threads = false;
  /// Cap on distinct cores used when pinning (0 = all available).
  size_t affinity_cores = 0;
};

/// Multi-threaded drop-in for StreamingCepEngine (see file comment for the
/// exact semantics). Lifecycle: AddQuery*/AddCrossQuery* → Start →
/// OnEvent*/OnEventBatch* → Drain/Finish/Stop → read detections/stats.
/// DetectionsOf and stats are only stable after that barrier; OnEnd (from
/// StreamReplayer) drains, so results are consistent right after
/// StreamReplayer::Run returns.
class ParallelStreamingEngine : public StreamSubscriber {
 public:
  explicit ParallelStreamingEngine(ParallelEngineOptions options = {});
  ~ParallelStreamingEngine() override;

  ParallelStreamingEngine(const ParallelStreamingEngine&) = delete;
  ParallelStreamingEngine& operator=(const ParallelStreamingEngine&) = delete;

  size_t shard_count() const { return shards_.size(); }
  const EventRouter& router() const { return router_; }

  /// Ingest producer handles (always >= 1; see
  /// ParallelEngineOptions::ingest_producers). Handle i may be driven by
  /// exactly one thread at a time; distinct handles may ingest
  /// concurrently. With one producer, producer(0) simply forwards to the
  /// engine-level OnEvent/OnEventBatch.
  size_t producer_count() const { return producers_.size(); }
  IngestProducer* producer(size_t i) const { return producers_[i].get(); }

  bool exchange_enabled() const { return !groups_.empty(); }

  /// Stage-2 merge shards across all exchange lane-groups.
  size_t cross_shard_count() const;

  /// Registers a continuous query on every stage-1 shard (same index
  /// everywhere). Must precede Start(). Returns the query index.
  StatusOr<size_t> AddQuery(Pattern pattern, Timestamp window);

  /// Registers a cross-subject query on the default exchange lane-group
  /// (the one `options.exchange` configures). Requires
  /// options.exchange.enabled; must precede Start(). Cross queries have
  /// their own index space, separate from AddQuery's.
  StatusOr<size_t> AddCrossQuery(Pattern pattern, Timestamp window);

  /// Registers a cross-subject query on its own exchange lane-group,
  /// selected by `key_id`: queries sharing a key_id share one fabric +
  /// merge-shard set (the caller guarantees equal key_id implies equal
  /// key_fn), distinct key_ids get independent lane matrices — this is how
  /// one pipeline runs several cross queries each under its own
  /// correlation key. Groups are created on first use with
  /// options.exchange's shard_count / lane_capacity / forward defaults
  /// (options.exchange.enabled is NOT required). Must precede Start().
  /// Returns the cross query index (same global index space as
  /// AddCrossQuery).
  StatusOr<size_t> AddCrossQueryKeyed(Pattern pattern, Timestamp window,
                                      const std::string& key_id,
                                      ShardKeyFn key_fn);

  size_t query_count() const { return query_count_; }
  size_t cross_query_count() const { return cross_index_.size(); }

  /// Registers this engine's instruments in `registry` and wires them into
  /// every stage (shards, exchange emitters, merge shards). `lane` labels
  /// every metric ("plain" for the raw runtime, "private" for the PLDP
  /// lane) so two runtimes can share one registry. Call after all queries
  /// and lane-groups are registered and before Start(); at most once.
  /// `registry` must outlive the engine.
  Status EnableMetrics(obs::MetricsRegistry* registry,
                       const std::string& lane = "plain");

  /// Refreshes the snapshot-time gauges (queue depths, lane depths,
  /// reorder occupancy, watermark lag) from the live atomics. Safe from
  /// any thread; no-op when metrics are off.
  void RefreshMetricGauges();

  /// Per-query detection callback (stage-1 index space), invoked on the
  /// worker thread that matched — so implementations must be thread-safe
  /// across shards. Must precede Start().
  Status SetQueryCallback(size_t query_index,
                          std::function<void(Timestamp)> callback);

  /// Per-cross-query detection callback (global cross index space),
  /// invoked on the matching merge-shard worker. Must precede Start().
  Status SetCrossQueryCallback(size_t cross_query_index,
                               std::function<void(Timestamp)> callback);

  /// Appends this engine's health rows (per-shard queue saturation,
  /// per-group merge lag/occupancy) to `health`. Safe while running.
  void CollectHealth(obs::PipelineHealth* health,
                     const std::string& lane) const;

  /// Launches all workers (stage-2 consumers first, then stage-1).
  Status Start();

  /// Waits until every ingested event has been fully processed — through
  /// both stages when the exchange is on (stage-1 drain, watermark flush,
  /// stage-2 safe-bound wait). Workers stay alive; ingestion may continue.
  Status Drain();

  /// Terminal end-of-stream: drains, runs every sink's OnShardFinish on
  /// its worker (emitting finalize-time output through the exchange), and
  /// seals the exchange with terminal watermarks. Further ingestion is
  /// refused; workers stay alive for result reads. One-shot: the first
  /// call's outcome (success or error) latches and later calls re-return
  /// it.
  Status Finish();

  /// Drains and joins all workers. Idempotent; called by the destructor.
  Status Stop();

  // order: relaxed; status poll — lifecycle handoffs are synchronized
  // by Start/Stop themselves, not by this flag.
  bool running() const { return running_.load(std::memory_order_relaxed); }

  // StreamSubscriber — the ingest path (single producer thread). With
  // ingest_producers > 1 these entry points are refused: the MPSC
  // front-end is driven through the per-producer handles instead.
  Status OnEvent(const Event& event) override;

  /// Bulk ingest: partitions the span into per-shard staging buffers and
  /// bulk-pushes each (one queue release store per shard burst instead of
  /// one per event). Equivalent to calling OnEvent on each event, several
  /// times cheaper on the router thread.
  Status OnEventBatch(EventSpan events) override;

  /// Drains, so DetectionsOf/stats are consistent the moment
  /// StreamReplayer::Run returns — without this, results read right after
  /// Run() could silently miss events still queued on the shards.
  Status OnEnd() override { return Drain(); }

  // Results. Valid after Drain() or Stop() (and before further OnEvent).

  /// Merged detections of one stage-1 query across shards, sorted by
  /// timestamp (a canonical multiset representation).
  StatusOr<std::vector<Timestamp>> DetectionsOf(size_t query_index) const;

  /// Merged detections of one cross-subject query across merge shards,
  /// sorted by timestamp.
  StatusOr<std::vector<Timestamp>> CrossDetectionsOf(
      size_t cross_query_index) const;

  /// Total stage-1 detections across queries and shards.
  size_t total_detections() const;

  /// Total stage-2 detections across cross queries and merge shards.
  size_t total_cross_detections() const;

  /// Events ingested (== sum of per-shard events_processed after Drain).
  // order: relaxed; telemetry read, exact after external quiescence.
  size_t events_processed() const {
    return events_ingested_.load(std::memory_order_relaxed);
  }

  /// The active overload policy (kBlock unless options.overload said
  /// otherwise).
  OverloadPolicy overload_policy() const { return overload_options_.policy; }

  /// Events deliberately dropped by the overload policy (0 under kBlock).
  /// Safe from any thread.
  uint64_t events_shed() const {
    return admission_ ? admission_->shed_total() : 0;
  }

  /// Admitted/shed roll-up for quality accounting (quality/metrics.h).
  /// RecallLowerBound() == 1.0 certifies a lossless run: detections are
  /// bit-identical to the blocking policy's. Safe from any thread.
  SheddingStats shedding_stats() const {
    SheddingStats s;
    // order: relaxed; telemetry read (see events_processed).
    s.admitted = events_ingested_.load(std::memory_order_relaxed);
    s.shed = events_shed();
    return s;
  }

  /// Per-shard stage-1 counters, indexed by shard.
  std::vector<ShardStats> ShardStatsSnapshot() const;

  /// Per-shard stage-2 counters (events_processed = events released by the
  /// merge). Empty without the exchange.
  std::vector<ShardStats> CrossShardStatsSnapshot() const;

  /// The sink attached to a shard (nullptr when none); index < shard_count.
  ShardEventSink* shard_sink(size_t shard_index) const {
    return shards_[shard_index]->event_sink();
  }

 private:
  /// One exchange lane-group: a correlation key's fabric plus the merge
  /// shards consuming it. The fabric is declared before the merge shards so
  /// it is destroyed after them (their threads touch the lanes).
  struct ExchangeGroup {
    /// Dedupe token of the group's correlation key ("" = the default group
    /// configured by options.exchange).
    std::string key_id;
    std::unique_ptr<ExchangeFabric> fabric;
    std::vector<std::unique_ptr<MergeShard>> merge_shards;
    /// Cross queries registered on this group (local index space).
    size_t query_count = 0;
  };

  /// Creates a lane-group for `key_fn` (or finds the existing one with
  /// this key_id) and wires one emitter per stage-1 shard. Returns the
  /// group's index into groups_ (stable across later growth, unlike a
  /// pointer).
  StatusOr<size_t> GetOrCreateGroup(const std::string& key_id,
                                    ShardKeyFn key_fn,
                                    bool forward_raw_events);
  StatusOr<size_t> AddCrossQueryToGroup(size_t group_index, Pattern pattern,
                                        Timestamp window);

  EventRouter router_;
  /// Latched construction error (e.g. malformed correlation spec);
  /// surfaced by Start().
  Status init_error_ = Status::OK();
  /// Exchange defaults applied to lane-groups created after construction.
  RuntimeExchangeOptions exchange_options_;
  /// Overload policy (kBlock = admission_ stays null, historic path).
  OverloadOptions overload_options_;
  /// Core-pinning knobs, applied at Start() once the topology is frozen
  /// (lane-groups may be created between construction and Start).
  bool pin_threads_ = false;
  size_t affinity_cores_ = 0;
  /// Exchange lane-groups. Declared before the stage-1 shards so the
  /// fabrics are destroyed after every thread that touches their lanes.
  std::vector<ExchangeGroup> groups_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Non-null only under a shedding policy; sits between the router and
  /// the shard queues on the ingest thread. Declared after shards_ (it
  /// borrows them).
  std::unique_ptr<AdmissionQueue> admission_;
  /// Ingest confinement for the engine-level entry points: with one
  /// producer the StreamSubscriber contract holds (one thread drives
  /// OnEvent/OnEventBatch/OnEnd) and this role, asserted at those entry
  /// points, ties the staging buffers to that thread. With P > 1 the
  /// engine-level entry points are refused outright and each
  /// IngestProducer handle carries its own role for its own lane state.
  ThreadRole ingest_role_;
  /// Per-shard staging buffers reused across OnEventBatch calls.
  std::vector<std::vector<StampedEvent>> staging_
      PLDP_GUARDED_BY(ingest_role_);
  size_t query_count_ = 0;
  /// Global cross-query index -> (lane-group, group-local index).
  std::vector<std::pair<size_t, size_t>> cross_index_;
  /// Ingest producer handles (see producer()); sized at construction,
  /// never resized after. Always at least one.
  std::vector<std::unique_ptr<IngestProducer>> producers_;
  /// The resync floor + per-producer in-call flags and their Dekker
  /// fence protocol (runtime/stall_floor.h): barriers and stalled
  /// producers arm the floor, every producer bumps its next sequence
  /// number to at least it (congruence-preserving, see
  /// IngestProducer::MaybeResync) before stamping again — so events
  /// ingested after a Drain/Finish barrier can never fall below the
  /// watermark bound that barrier flushed, and a stalled producer can
  /// soundly lift a quiescent peer's lane floors on its behalf.
  StallFloorCoordinator stall_floors_;
  /// Ingest sequence numbers handed out (single ingest thread increments;
  /// drain barriers read from any thread).
  std::atomic<uint64_t> next_seq_{0};
  std::atomic<uint64_t> events_ingested_{0};
  // Written only by Start/Stop (single orchestrating thread); atomic so
  // Drain from another thread reads it race-free.
  std::atomic<bool> running_{false};
  std::atomic<bool> finished_{false};
  /// Latched first Finish() outcome (orchestrator thread only).
  Status finish_status_ = Status::OK();

  // Telemetry (EnableMetrics). The registry owns the instruments; the
  // engine keeps only the snapshot-time gauges it refreshes itself.
  // Invariant used below: shard hook index g == groups_[g] (every group
  // adds exactly one emitter to every shard, in group-creation order).
  obs::MetricsRegistry* metrics_ = nullptr;
  std::string metrics_lane_;
  std::vector<obs::Gauge*> shard_queue_gauges_;
  std::vector<std::vector<obs::Gauge*>> lane_depth_gauges_;    // [grp][prod]
  std::vector<std::vector<obs::Gauge*>> merge_reorder_gauges_;  // [grp][cons]
  std::vector<std::vector<obs::Gauge*>> merge_lag_gauges_;      // [grp][cons]
  std::vector<std::vector<obs::Gauge*>> merge_capacity_gauges_;  // [grp][cons]

  // Per-query user detection callbacks (set before Start; dispatched on
  // worker threads via one dispatcher per shard / merge shard).
  std::vector<std::function<void(Timestamp)>> query_callbacks_;
  std::vector<std::function<void(Timestamp)>> cross_query_callbacks_;

  Status FinishInternal();
  void PublishProducerFloor(uint64_t floor);
  void InstallCallbackDispatchers();
  /// Snapshot of the ingest frontier: every stamped sequence number is
  /// strictly below it. next_seq_ with one producer, the max per-producer
  /// frontier in MPSC mode. Safe from any thread (best-effort while
  /// producers race, exact once they are quiescent — same as Drain).
  uint64_t IngestFrontier() const;
  /// Pre-barrier ingest fence (Drain/FinishInternal): computes the
  /// frontier bound, publishes it as every producer's lane floor on every
  /// shard (so the lane merges can run dry), and arms the resync floor so
  /// post-barrier ingestion stamps above the bound. Returns the bound.
  uint64_t PrepareIngestBarrier();
  /// Anti-deadlock floor publication while producer `stalled` blocks on a
  /// full lane (Shard::StallFn). Publishes `own_floor` (the stalled
  /// producer's smallest not-yet-pushed sequence — sound mid-push) as its
  /// lane floor everywhere, then lifts every provably-quiescent peer's
  /// lane floors to the ingest frontier. The quiescence proof is the
  /// StallFloorCoordinator's Dekker handshake (runtime/stall_floor.h):
  /// arm the floor at the frontier, fence, read the peer's in-call flag
  /// — a peer observed out-of-call will stamp at or above the armed
  /// bound on its next call, so its lane may claim the bound now.
  /// Machine-checked by tests/check/check_stall_floor_test.cc. Without
  /// this, a
  /// merge gated on an idle peer's stale floor and a producer blocked on
  /// the resulting full lane deadlock: the barrier that would refresh the
  /// floor can never run while the push blocks.
  void PublishStallFloors(size_t stalled, uint64_t own_floor);

  friend class IngestProducer;
};

/// One handle of the MPSC ingest front-end (see
/// ParallelEngineOptions::ingest_producers). Producer p of P stamps the
/// arithmetic progression p, p+P, p+2P, ... so the union over handles is
/// gapless exactly when the caller partitions the stream round-robin —
/// and is merge-safe (unique, per-lane increasing) under any partitioning.
///
/// Threading: one thread at a time per handle (asserted via a ThreadRole;
/// one thread may legally drive several handles, e.g. a round-robin
/// driver). A handle that stops ingesting while others continue should
/// call PublishFloor() — an abandoned lane's stale floor otherwise gates
/// the shard merges until a peer's blocked push publishes stall floors on
/// its behalf (PublishStallFloors) or the next Drain/Finish barrier
/// republishes it; the explicit call skips that detour.
class IngestProducer {
 public:
  IngestProducer(const IngestProducer&) = delete;
  IngestProducer& operator=(const IngestProducer&) = delete;

  /// Stamps and routes one event / one batch to its shard lane(s).
  /// Blocking on full lanes (kBlock semantics); refused before Start()
  /// and after Finish(), like the engine-level entry points.
  Status OnEvent(const Event& event);
  Status OnEventBatch(EventSpan events);

  /// Publishes this producer's current floor (= its next sequence number)
  /// to every shard, unblocking merges gated on this lane. Called
  /// automatically every kProducerFloorPeriod events and at every batch
  /// end; call it explicitly when the handle goes idle.
  void PublishFloor();

  size_t index() const { return index_; }

  /// This producer's stamping frontier: every sequence number it handed
  /// out is strictly below this. Safe from any thread.
  // order: acquire pairs with the producer's release advance, so a
  // frontier observation also covers every event stamped below it.
  uint64_t seq_frontier() const {
    return seq_next_.load(std::memory_order_acquire);
  }

 private:
  friend class ParallelStreamingEngine;
  IngestProducer(ParallelStreamingEngine* engine, size_t index,
                 size_t stride);

  /// Applies a pending barrier resync: bumps seq_next_ to the smallest
  /// value >= the armed resync floor that keeps the (mod stride)
  /// congruence.
  void MaybeResync() PLDP_REQUIRES(role_);

  /// Scoped in-call marker: entry runs StallFloorCoordinator::EnterCall
  /// (flag store + the seq_cst fence MaybeResync's resync-floor load
  /// rides on — the producer half of the stall-floor Dekker pair). Must
  /// enclose every stamping call (OnEvent/OnEventBatch in MPSC mode)
  /// from before MaybeResync to after the last push.
  class CallScope {
   public:
    explicit CallScope(IngestProducer* producer) : producer_(producer) {
      producer_->Coordinator().EnterCall(producer_->index_);
    }
    ~CallScope() { producer_->Coordinator().ExitCall(producer_->index_); }
    CallScope(const CallScope&) = delete;
    CallScope& operator=(const CallScope&) = delete;

   private:
    IngestProducer* const producer_;
  };

  StallFloorCoordinator& Coordinator();

  /// Context threaded through Shard::PushStampedLaneN's stall hook.
  /// `rest_min` is the smallest sequence staged for a not-yet-pushed
  /// shard buffer (batched path): the published own-floor is
  /// min(next unpushed seq of the stalled push, rest_min), i.e. the
  /// producer's true landed frontier.
  struct StallContext {
    ParallelStreamingEngine* engine;
    size_t producer;
    uint64_t rest_min;
  };
  static void OnLaneStall(void* ctx, uint64_t next_seq);

  ParallelStreamingEngine* const engine_;
  const size_t index_;
  /// Total producer count P (the stamping stride). 1 = delegate mode:
  /// the handle simply forwards to the engine-level entry points.
  const size_t stride_;
  /// Single-thread confinement of the stamping state below.
  ThreadRole role_;
  /// Next sequence number to hand out (atomic so barriers and gauges can
  /// read the frontier from other threads; written only by the handle's
  /// thread, release — plus the congruence-preserving barrier resync).
  std::atomic<uint64_t> seq_next_;
  /// Events stamped since the last floor publication.
  uint64_t since_floor_ PLDP_GUARDED_BY(role_) = 0;
  /// Per-shard staging for OnEventBatch (MPSC mode only; empty in
  /// delegate mode). Capacity is retained across batches.
  std::vector<std::vector<StampedEvent>> staging_ PLDP_GUARDED_BY(role_);
  /// Optional per-producer ingest counter (EnableMetrics).
  obs::Counter* ingest_counter_ = nullptr;
};

}  // namespace pldp

#endif  // PLDP_RUNTIME_PARALLEL_ENGINE_H_
