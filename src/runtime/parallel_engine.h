// Copyright 2026 The PLDP Authors.
//
// Sharded parallel streaming CEP engine.
//
// `ParallelStreamingEngine` scales `StreamingCepEngine` across cores: it
// hash-partitions incoming events by subject key (runtime/router.h) onto N
// worker shards (runtime/shard.h), each owning a private engine with the
// same registered queries, connected by bounded lock-free SPSC queues with
// backpressure. It implements `StreamSubscriber`, so it drops into the
// existing `StreamReplayer` wherever a `StreamingCepEngine` did.
//
//     caller / StreamReplayer
//            │ OnEvent / OnEventBatch (staged per shard, bulk-pushed)
//            ▼
//       EventRouter ── hash(subject) % N ──► SpscQueue ─► Shard 0 worker
//                                            SpscQueue ─► Shard 1 worker
//                                            ...               │
//                                                              ▼
//                                            per-shard StreamingCepEngine
//                                              (+ optional ShardEventSink)
//            merged detections / stats  ◄────────── Drain barrier
//
// Semantics: detection is *partition-local* — each shard matches over the
// substream routed to it. Because routing is by subject and per-subject
// order is preserved (single producer, FIFO queues), this equals the
// single-engine result exactly whenever pattern matches are subject-local,
// which is the paper's setting: private/target patterns are properties of
// one data subject's stream (Fig. 2). Matches spanning two subjects that
// hash to different shards are not detected; callers needing cross-subject
// correlation keep the sequential engine (or supply a coarser key via
// ParallelEngineOptions::key_fn, e.g. a tenant or region key).

#ifndef PLDP_RUNTIME_PARALLEL_ENGINE_H_
#define PLDP_RUNTIME_PARALLEL_ENGINE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "cep/streaming_engine.h"
#include "common/status.h"
#include "runtime/router.h"
#include "runtime/shard.h"
#include "stream/replay.h"

namespace pldp {

/// Construction-time knobs of the runtime.
struct ParallelEngineOptions {
  /// Worker shards. 0 = one per available hardware thread.
  size_t shard_count = 0;
  /// Per-shard queue capacity (rounded up to a power of two). Bounds
  /// memory and converts overload into router-side backpressure.
  size_t queue_capacity = 1024;
  /// Partition key; default = subject (Event::stream()).
  ShardKeyFn key_fn;
  /// Seed for the per-shard Rngs (deterministic per shard).
  uint64_t seed = 0x51a9d5ULL;
  /// Optional per-shard event sink factory, called once per shard at
  /// construction. The sink runs on the shard's worker thread (see
  /// Shard::SetEventSink) — this is how shard-local PLDP perturbation
  /// attaches (core/parallel_private_engine.h).
  std::function<std::unique_ptr<ShardEventSink>(size_t shard_index)>
      sink_factory;
};

/// Multi-threaded drop-in for StreamingCepEngine (see file comment for the
/// exact semantics). Lifecycle: AddQuery* → Start → OnEvent*/OnEventBatch*
/// → Drain/Stop → read detections/stats. DetectionsOf and stats are only
/// stable after that barrier; OnEnd (from StreamReplayer) drains, so
/// results are consistent right after StreamReplayer::Run returns.
class ParallelStreamingEngine : public StreamSubscriber {
 public:
  explicit ParallelStreamingEngine(ParallelEngineOptions options = {});
  ~ParallelStreamingEngine() override;

  ParallelStreamingEngine(const ParallelStreamingEngine&) = delete;
  ParallelStreamingEngine& operator=(const ParallelStreamingEngine&) = delete;

  size_t shard_count() const { return shards_.size(); }
  const EventRouter& router() const { return router_; }

  /// Registers a continuous query on every shard (same index everywhere).
  /// Must precede Start(). Returns the query index.
  StatusOr<size_t> AddQuery(Pattern pattern, Timestamp window);

  size_t query_count() const { return query_count_; }

  /// Launches all shard workers.
  Status Start();

  /// Waits until every ingested event has been fully processed. Workers
  /// stay alive; ingestion may continue afterwards.
  Status Drain();

  /// Drains and joins all workers. Idempotent; called by the destructor.
  Status Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }

  // StreamSubscriber — the ingest path (single producer thread):
  Status OnEvent(const Event& event) override;

  /// Bulk ingest: partitions the span into per-shard staging buffers and
  /// bulk-pushes each (one queue release store per shard burst instead of
  /// one per event). Equivalent to calling OnEvent on each event, several
  /// times cheaper on the router thread.
  Status OnEventBatch(EventSpan events) override;

  /// Drains, so DetectionsOf/stats are consistent the moment
  /// StreamReplayer::Run returns — without this, results read right after
  /// Run() could silently miss events still queued on the shards.
  Status OnEnd() override { return Drain(); }

  // Results. Valid after Drain() or Stop() (and before further OnEvent).

  /// Merged detections of one query across shards, sorted by timestamp
  /// (a canonical multiset representation).
  StatusOr<std::vector<Timestamp>> DetectionsOf(size_t query_index) const;

  /// Total detections across queries and shards.
  size_t total_detections() const;

  /// Events ingested (== sum of per-shard events_processed after Drain).
  size_t events_processed() const { return events_ingested_; }

  /// Per-shard counters, indexed by shard.
  std::vector<ShardStats> ShardStatsSnapshot() const;

  /// The sink attached to a shard (nullptr when none); index < shard_count.
  ShardEventSink* shard_sink(size_t shard_index) const {
    return shards_[shard_index]->event_sink();
  }

 private:
  EventRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Per-shard staging buffers reused across OnEventBatch calls.
  std::vector<std::vector<Event>> staging_;
  size_t query_count_ = 0;
  size_t events_ingested_ = 0;
  // Written only by Start/Stop (single orchestrating thread); atomic so
  // Drain from another thread reads it race-free.
  std::atomic<bool> running_{false};
};

}  // namespace pldp

#endif  // PLDP_RUNTIME_PARALLEL_ENGINE_H_
