// Copyright 2026 The PLDP Authors.
//
// Bounded lock-free single-producer / single-consumer ring buffer.
//
// This is the only channel between the runtime's router thread and a shard
// worker (runtime/shard.h): exactly one thread calls TryPush and exactly one
// thread calls TryPop, which lets the queue get away with two atomic indices
// and no CAS loops. Capacity is fixed at construction (rounded up to a power
// of two) so a slow shard exerts backpressure on the router instead of
// growing without bound.
//
// Memory ordering: the producer publishes a slot with a release store of
// `tail_`; the consumer observes it with an acquire load, and vice versa for
// `head_` when freeing a slot. Each side additionally caches the other
// side's index so the common fast path touches only its own cache line
// (the classic Lamport queue + cached-index refinement).
//
// The index handoff (push/pop vs pop-empty/push-full races, including the
// slot payload's visibility through the release/acquire pair) is
// machine-checked by tests/check/check_spsc_test.cc; its negative twin
// (PLDP_CHECK_NEGATIVE_SPSC, which weakens the tail publication below to
// relaxed) proves the checker sees the resulting payload race.

#ifndef PLDP_RUNTIME_SPSC_QUEUE_H_
#define PLDP_RUNTIME_SPSC_QUEUE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/atomic.h"
#include "common/thread_annotations.h"
#include "runtime/backoff.h"

namespace pldp {

/// Rounds `n` up to the next power of two (minimum 2). Inputs above the
/// highest representable power of two cannot round up; they saturate there
/// instead of looping forever on `p <<= 1` overflowing to zero.
constexpr size_t NextPowerOfTwo(size_t n) {
  constexpr size_t kHighBit = size_t{1} << (8 * sizeof(size_t) - 1);
  if (n >= kHighBit) return kHighBit;
  size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

/// Upper bound on SpscQueue capacity (slots). A bounded queue exists to
/// exert backpressure; requests beyond this are treated as configuration
/// errors and clamped so a bogus capacity cannot demand a near-2^64
/// allocation.
inline constexpr size_t kMaxSpscCapacity = size_t{1} << 20;

/// Fixed-capacity wait-free SPSC queue. `T` must be default-constructible
/// and movable. Not safe for more than one producer or consumer thread.
template <typename T>
class SpscQueue {
 public:
  /// Usable capacity is `NextPowerOfTwo(capacity)` (the implementation
  /// keeps one index lap in reserve via the full/empty test, not a slot,
  /// so all slots are usable), clamped to `kMaxSpscCapacity`.
  explicit SpscQueue(size_t capacity)
      : mask_(NextPowerOfTwo(capacity < kMaxSpscCapacity ? capacity
                                                         : kMaxSpscCapacity) -
              1),
        slots_(mask_ + 1) {}

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  PLDP_HOT size_t capacity() const { return mask_ + 1; }

  /// Producer side. Returns false when the queue is full.
  PLDP_HOT bool TryPush(T&& value) {
    // order: relaxed; tail_ is producer-owned, only this thread writes it.
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      // Looks full; refresh the consumer index and re-check.
      // order: acquire pairs with the consumer's release store of head_ —
      // the slot it freed must be visible before we overwrite it.
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;
    }
    slots_[tail & mask_] = std::move(value);
    // order: release publishes the slot write above to the consumer's
    // acquire load of tail_.
    tail_.store(tail + 1, kTailPublishOrder);
    if (waker_ != nullptr) waker_->Ring();
    return true;
  }

  bool TryPush(const T& value) {
    T copy = value;
    return TryPush(std::move(copy));
  }

  /// Bulk producer path: moves up to `count` items out of `items` into the
  /// queue and publishes them with a single release store (vs one per item
  /// for TryPush — the atomic amortization batched ingest is built on).
  /// Returns the number pushed; 0 when full. Items beyond the return value
  /// are left untouched.
  PLDP_HOT size_t TryPushN(T* items, size_t count) {
    // order: relaxed; tail_ is producer-owned, only this thread writes it.
    const size_t tail = tail_.load(std::memory_order_relaxed);
    size_t free = capacity() - (tail - cached_head_);
    if (free < count) {
      // order: acquire pairs with the consumer's release store of head_.
      cached_head_ = head_.load(std::memory_order_acquire);
      free = capacity() - (tail - cached_head_);
    }
    const size_t n = count < free ? count : free;
    for (size_t i = 0; i < n; ++i) {
      slots_[(tail + i) & mask_] = std::move(items[i]);
    }
    if (n > 0) {
      // order: release publishes the whole burst of slot writes at once.
      tail_.store(tail + n, kTailPublishOrder);
      if (waker_ != nullptr) waker_->Ring();
    }
    return n;
  }

  /// Consumer side. Returns false when the queue is empty.
  PLDP_HOT bool TryPop(T& out) {
    // order: relaxed; head_ is consumer-owned, only this thread writes it.
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      // order: acquire pairs with the producer's release store of tail_ —
      // the slot contents must be visible before we move them out.
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = RaceCellMove(slots_[head & mask_]);
    // order: release frees the slot to the producer's acquire load of
    // head_ — our move-out must complete before it reuses the slot.
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Bulk consumer path: moves up to `max_count` items into `out`, freeing
  /// all of their slots with a single release store. Returns the number
  /// popped; 0 when empty.
  PLDP_HOT size_t TryPopN(T* out, size_t max_count) {
    // order: relaxed; head_ is consumer-owned, only this thread writes it.
    const size_t head = head_.load(std::memory_order_relaxed);
    size_t avail = cached_tail_ - head;
    if (avail < max_count) {
      // order: acquire pairs with the producer's release store of tail_.
      cached_tail_ = tail_.load(std::memory_order_acquire);
      avail = cached_tail_ - head;
    }
    const size_t n = max_count < avail ? max_count : avail;
    for (size_t i = 0; i < n; ++i) {
      out[i] = RaceCellMove(slots_[(head + i) & mask_]);
    }
    // order: release frees the whole burst of slots at once.
    if (n > 0) head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Racy size estimate — exact only when both sides are quiescent.
  size_t ApproxSize() const {
    // order: acquire on both indices — callers use the estimate to decide
    // "nothing below X is pending", which must not run ahead of the
    // publication the index advance covered.
    const size_t tail = tail_.load(std::memory_order_acquire);
    // order: acquire (see above).
    const size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }

  bool ApproxEmpty() const { return ApproxSize() == 0; }

  /// Attaches a doorbell rung after every successful push, so a consumer
  /// parked on it (runtime/backoff.h) wakes when work arrives. Must be set
  /// before the producer starts pushing; the queue does not own the bell.
  void SetWaker(Doorbell* waker) { waker_ = waker; }

 private:
  static constexpr size_t kCacheLine = 64;

#ifdef PLDP_CHECK_NEGATIVE_SPSC
  // Seeded mutation for the model checker's negative suite: publishing
  // the tail with relaxed ordering lets the consumer observe the new
  // index before the slot contents — the payload race the release store
  // exists to prevent.
  static constexpr std::memory_order kTailPublishOrder =
      std::memory_order_relaxed;
#else
  static constexpr std::memory_order kTailPublishOrder =
      std::memory_order_release;
#endif

  const size_t mask_;
  // RaceCell is plain T in normal builds; under PLDP_MODEL_CHECK every
  // slot access is vector-clock checked against the chosen schedule.
  std::vector<RaceCell<T>> slots_;

  // Producer-owned line: its index plus a cache of the consumer's.
  alignas(kCacheLine) Atomic<size_t> tail_{0};
  size_t cached_head_ = 0;
  Doorbell* waker_ = nullptr;

  // Consumer-owned line.
  alignas(kCacheLine) Atomic<size_t> head_{0};
  size_t cached_tail_ = 0;
};

}  // namespace pldp

#endif  // PLDP_RUNTIME_SPSC_QUEUE_H_
