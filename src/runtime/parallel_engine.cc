// Copyright 2026 The PLDP Authors.

#include "runtime/parallel_engine.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace pldp {
namespace {

size_t ResolveShardCount(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

// How often the per-event ingest path refreshes every shard's producer
// floor (power of two; amortizes the O(shards) stores).
constexpr uint64_t kProducerFloorPeriod = 1024;

}  // namespace

ParallelStreamingEngine::ParallelStreamingEngine(ParallelEngineOptions options)
    : router_(ResolveShardCount(options.shard_count), options.key_fn),
      exchange_options_(options.exchange) {
  const size_t n = router_.shard_count();

  shards_.reserve(n);
  staging_.resize(n);
  // Pre-size the per-shard staging buffers so steady-state batched ingest
  // never grows them: a batch can stage at most its own size per shard, and
  // capacity is retained across OnEventBatch calls (clear() keeps it).
  for (auto& buf : staging_) buf.reserve(options.queue_capacity);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(i, options.queue_capacity, options.seed));
    if (options.sink_factory) {
      (void)shards_.back()->SetEventSink(options.sink_factory(i));
    }
  }

  if (options.exchange.enabled) {
    // The default lane-group (key_id ""), configured by options.exchange.
    // Further groups appear on demand via AddCrossQueryKeyed.
    ShardKeyFn exchange_key = options.exchange.key_fn;
    if (!exchange_key) {
      StatusOr<CorrelationKeyFn> key_or =
          MakeCorrelationKeyFn(options.exchange.key);
      if (!key_or.ok()) {
        init_error_ = key_or.status();
      } else {
        exchange_key = std::move(key_or).value();
      }
    }
    if (init_error_.ok()) {
      StatusOr<size_t> group = GetOrCreateGroup(
          "", std::move(exchange_key), options.exchange.forward_raw_events);
      if (!group.ok()) init_error_ = group.status();
    }
  }
}

ParallelStreamingEngine::~ParallelStreamingEngine() { (void)Stop(); }

StatusOr<size_t> ParallelStreamingEngine::AddQuery(Pattern pattern,
                                                   Timestamp window) {
  if (running_) {
    return Status::FailedPrecondition(
        "ParallelStreamingEngine::AddQuery must precede Start()");
  }
  size_t index = 0;
  for (auto& shard : shards_) {
    StatusOr<size_t> result = shard->AddQuery(pattern, window);
    if (!result.ok()) return result;
    index = result.value();
  }
  query_count_ = index + 1;
  return index;
}

StatusOr<size_t> ParallelStreamingEngine::GetOrCreateGroup(
    const std::string& key_id, ShardKeyFn key_fn, bool forward_raw_events) {
  for (size_t g = 0; g < groups_.size(); ++g) {
    if (groups_[g].key_id == key_id) return g;
  }
  if (running_) {
    return Status::FailedPrecondition(
        "exchange lane-groups must be created before Start()");
  }
  if (!key_fn) {
    return Status::InvalidArgument("correlation key_fn must not be null");
  }
  const size_t n1 = shards_.size();
  const size_t n2 = exchange_options_.shard_count > 0
                        ? exchange_options_.shard_count
                        : n1;
  ExchangeGroup group;
  group.key_id = key_id;
  group.fabric = std::make_unique<ExchangeFabric>(
      n1, n2, exchange_options_.lane_capacity);
  group.merge_shards.reserve(n2);
  for (size_t c = 0; c < n2; ++c) {
    group.merge_shards.push_back(
        std::make_unique<MergeShard>(c, group.fabric->Column(c)));
  }
  for (size_t i = 0; i < n1; ++i) {
    auto emitter = std::make_unique<ExchangeEmitter>(
        group.fabric->Row(i), key_fn, group.fabric.get());
    PLDP_RETURN_IF_ERROR(
        shards_[i]->AddExchange(std::move(emitter), forward_raw_events));
  }
  groups_.push_back(std::move(group));
  return groups_.size() - 1;
}

StatusOr<size_t> ParallelStreamingEngine::AddCrossQueryToGroup(
    size_t group_index, Pattern pattern, Timestamp window) {
  ExchangeGroup& group = groups_[group_index];
  size_t local = 0;
  for (auto& merge_shard : group.merge_shards) {
    StatusOr<size_t> result = merge_shard->AddQuery(pattern, window);
    if (!result.ok()) return result;
    local = result.value();
  }
  group.query_count = local + 1;
  cross_index_.emplace_back(group_index, local);
  return cross_index_.size() - 1;
}

StatusOr<size_t> ParallelStreamingEngine::AddCrossQuery(Pattern pattern,
                                                        Timestamp window) {
  if (running_) {
    return Status::FailedPrecondition(
        "ParallelStreamingEngine::AddCrossQuery must precede Start()");
  }
  if (!exchange_options_.enabled || groups_.empty()) {
    return Status::FailedPrecondition(
        "cross queries need the exchange stage (options.exchange.enabled), "
        "or a per-query key via AddCrossQueryKeyed");
  }
  // The default group is always the first one created (key_id "").
  return AddCrossQueryToGroup(0, std::move(pattern), window);
}

StatusOr<size_t> ParallelStreamingEngine::AddCrossQueryKeyed(
    Pattern pattern, Timestamp window, const std::string& key_id,
    ShardKeyFn key_fn) {
  if (running_) {
    return Status::FailedPrecondition(
        "ParallelStreamingEngine::AddCrossQueryKeyed must precede Start()");
  }
  PLDP_ASSIGN_OR_RETURN(size_t group_index,
                        GetOrCreateGroup(key_id, std::move(key_fn),
                                         exchange_options_.forward_raw_events));
  return AddCrossQueryToGroup(group_index, std::move(pattern), window);
}

Status ParallelStreamingEngine::Start() {
  if (running_) {
    return Status::FailedPrecondition("engine already running");
  }
  PLDP_RETURN_IF_ERROR(init_error_);
  // Consumers before producers: a stage-1 worker may block on a full lane
  // the moment it starts, and only a live merge shard ever frees one.
  for (auto& group : groups_) {
    for (auto& merge_shard : group.merge_shards) {
      Status s = merge_shard->Start();
      if (!s.ok()) return s;
    }
  }
  for (auto& shard : shards_) {
    Status s = shard->Start();
    if (!s.ok()) return s;
  }
  finished_.store(false, std::memory_order_relaxed);
  running_ = true;
  return Status::OK();
}

Status ParallelStreamingEngine::Drain() {
  if (!running_) return Status::OK();
  for (auto& shard : shards_) {
    Status s = shard->Drain();
    if (!s.ok()) return s;
  }
  if (!groups_.empty()) {
    // Two-phase barrier: every producer flushes a watermark asserting it
    // forwarded everything below `bound` it will ever see (one command
    // broadcasts on every lane-group's row), then every merge shard of
    // every group is waited past that bound. Inherits Drain's best-effort
    // semantics when a producer keeps pushing concurrently.
    const uint64_t bound = next_seq_.load(std::memory_order_relaxed);
    for (auto& shard : shards_) {
      Status s = shard->RequestFlushWatermark(bound);
      if (!s.ok()) return s;
    }
    for (auto& group : groups_) {
      for (auto& merge_shard : group.merge_shards) {
        Status s = merge_shard->WaitSafe(bound);
        if (!s.ok()) return s;
      }
    }
  }
  return Status::OK();
}

Status ParallelStreamingEngine::Finish() {
  if (!running_) {
    return Status::FailedPrecondition("engine not running");
  }
  // One-shot: a failed finish leaves the pipeline in an undefined terminal
  // state, so the first outcome — success or error — latches and is
  // re-returned forever instead of a retry silently reporting OK.
  if (finished_.load(std::memory_order_relaxed)) return finish_status_;
  // Close the ingest gate before any worker finalizes: OnEvent after this
  // point is refused, so finalize-time output is really last.
  finished_.store(true, std::memory_order_relaxed);
  finish_status_ = FinishInternal();
  return finish_status_;
}

Status ParallelStreamingEngine::FinishInternal() {
  for (auto& shard : shards_) {
    PLDP_RETURN_IF_ERROR(shard->Drain());
  }
  const uint64_t bound = next_seq_.load(std::memory_order_relaxed);
  for (auto& shard : shards_) {
    PLDP_RETURN_IF_ERROR(shard->RequestFinish(bound));
  }
  for (auto& group : groups_) {
    for (auto& merge_shard : group.merge_shards) {
      PLDP_RETURN_IF_ERROR(merge_shard->WaitSafe(kExchangeSeqEnd));
    }
  }
  return Status::OK();
}

Status ParallelStreamingEngine::Stop() {
  if (!running_) return Status::OK();
  Status result = Status::OK();
  if (!groups_.empty() && !finished_.load(std::memory_order_relaxed)) {
    // Make sure stage-2 holds everything before the producers go away.
    result = Drain();
  }
  for (auto& shard : shards_) {
    Status s = shard->Stop();
    if (result.ok() && !s.ok()) result = s;
  }
  for (auto& group : groups_) {
    // Producers are joined; nothing can block on a lane anymore, and any
    // straggler Emit (there should be none) must fail fast.
    group.fabric->Abort();
    for (auto& merge_shard : group.merge_shards) {
      Status s = merge_shard->Stop();
      if (result.ok() && !s.ok()) result = s;
    }
  }
  running_ = false;
  return result;
}

Status ParallelStreamingEngine::OnEvent(const Event& event) {
  if (!running_) {
    return Status::FailedPrecondition(
        "ParallelStreamingEngine::OnEvent before Start()");
  }
  if (finished_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("ingestion after Finish()");
  }
  StampedEvent stamped;
  stamped.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  stamped.event = event;
  const size_t target = router_.ShardOf(event);
  PLDP_RETURN_IF_ERROR(shards_[target]->PushStampedN(&stamped, 1));
  events_ingested_.fetch_add(1, std::memory_order_relaxed);
  // Periodically tell every shard how far the stream has advanced, so
  // shards starved by routing skew keep watermarking their lanes (see
  // Shard::NoteProducerFloor).
  if ((stamped.seq & (kProducerFloorPeriod - 1)) ==
      kProducerFloorPeriod - 1) {
    PublishProducerFloor(stamped.seq + 1);
  }
  return Status::OK();
}

Status ParallelStreamingEngine::OnEventBatch(EventSpan events) {
  if (!running_) {
    return Status::FailedPrecondition(
        "ParallelStreamingEngine::OnEventBatch before Start()");
  }
  if (finished_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("ingestion after Finish()");
  }
  if (events.empty()) return Status::OK();
  for (auto& buf : staging_) buf.clear();
  for (const Event& e : events) {
    StampedEvent stamped;
    stamped.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    stamped.event = e;
    staging_[router_.ShardOf(e)].push_back(std::move(stamped));
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (staging_[i].empty()) continue;
    // Count exactly what each queue accepted: on a failed push (e.g.
    // racing Stop) events_ingested_ must still reconcile with the
    // per-shard pushed/processed counters.
    size_t accepted = 0;
    const Status s = shards_[i]->PushStampedN(staging_[i].data(),
                                              staging_[i].size(), &accepted);
    events_ingested_.fetch_add(accepted, std::memory_order_relaxed);
    PLDP_RETURN_IF_ERROR(s);
  }
  // Every staged event is now pushed; the whole batch is a safe floor.
  PublishProducerFloor(next_seq_.load(std::memory_order_relaxed));
  return Status::OK();
}

void ParallelStreamingEngine::PublishProducerFloor(uint64_t floor) {
  if (groups_.empty()) return;
  for (auto& shard : shards_) shard->NoteProducerFloor(floor);
}

size_t ParallelStreamingEngine::cross_shard_count() const {
  size_t total = 0;
  for (const auto& group : groups_) total += group.merge_shards.size();
  return total;
}

StatusOr<std::vector<Timestamp>> ParallelStreamingEngine::DetectionsOf(
    size_t query_index) const {
  // Validate at the facade so the error names the right index space (a
  // cross query index passed here must not silently alias a stage-1
  // query, nor the reverse).
  if (query_index >= query_count_) {
    return Status::OutOfRange(
        "unknown stage-1 query index " + std::to_string(query_index) +
        " (registered: " + std::to_string(query_count_) +
        "; cross queries live in their own index space — use "
        "CrossDetectionsOf)");
  }
  std::vector<Timestamp> merged;
  for (const auto& shard : shards_) {
    StatusOr<std::vector<Timestamp>> part =
        shard->engine().DetectionsOf(query_index);
    if (!part.ok()) return part.status();
    merged.insert(merged.end(), part.value().begin(), part.value().end());
  }
  // Per-shard vectors are in arrival order but shards interleave; sort into
  // the canonical multiset representation.
  std::sort(merged.begin(), merged.end());
  return merged;
}

StatusOr<std::vector<Timestamp>> ParallelStreamingEngine::CrossDetectionsOf(
    size_t cross_query_index) const {
  if (groups_.empty()) {
    return Status::FailedPrecondition("exchange stage is not enabled");
  }
  if (cross_query_index >= cross_index_.size()) {
    return Status::OutOfRange(
        "unknown cross query index " + std::to_string(cross_query_index) +
        " (registered: " + std::to_string(cross_index_.size()) + ")");
  }
  const auto [group_index, local_index] = cross_index_[cross_query_index];
  std::vector<Timestamp> merged;
  for (const auto& merge_shard : groups_[group_index].merge_shards) {
    StatusOr<std::vector<Timestamp>> part =
        merge_shard->engine().DetectionsOf(local_index);
    if (!part.ok()) return part.status();
    merged.insert(merged.end(), part.value().begin(), part.value().end());
  }
  std::sort(merged.begin(), merged.end());
  return merged;
}

size_t ParallelStreamingEngine::total_detections() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->engine().total_detections();
  }
  return total;
}

size_t ParallelStreamingEngine::total_cross_detections() const {
  size_t total = 0;
  for (const auto& group : groups_) {
    for (const auto& merge_shard : group.merge_shards) {
      total += merge_shard->engine().total_detections();
    }
  }
  return total;
}

std::vector<ShardStats> ParallelStreamingEngine::ShardStatsSnapshot() const {
  std::vector<ShardStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) stats.push_back(shard->stats());
  return stats;
}

std::vector<ShardStats> ParallelStreamingEngine::CrossShardStatsSnapshot()
    const {
  std::vector<ShardStats> stats;
  stats.reserve(cross_shard_count());
  for (const auto& group : groups_) {
    for (const auto& merge_shard : group.merge_shards) {
      stats.push_back(merge_shard->stats());
    }
  }
  return stats;
}

}  // namespace pldp
