// Copyright 2026 The PLDP Authors.

#include "runtime/parallel_engine.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace pldp {
namespace {

size_t ResolveShardCount(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

}  // namespace

ParallelStreamingEngine::ParallelStreamingEngine(ParallelEngineOptions options)
    : router_(ResolveShardCount(options.shard_count), options.key_fn) {
  const size_t n = router_.shard_count();
  shards_.reserve(n);
  staging_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(i, options.queue_capacity, options.seed));
    if (options.sink_factory) {
      (void)shards_.back()->SetEventSink(options.sink_factory(i));
    }
  }
}

ParallelStreamingEngine::~ParallelStreamingEngine() { (void)Stop(); }

StatusOr<size_t> ParallelStreamingEngine::AddQuery(Pattern pattern,
                                                   Timestamp window) {
  if (running_) {
    return Status::FailedPrecondition(
        "ParallelStreamingEngine::AddQuery must precede Start()");
  }
  size_t index = 0;
  for (auto& shard : shards_) {
    StatusOr<size_t> result = shard->AddQuery(pattern, window);
    if (!result.ok()) return result;
    index = result.value();
  }
  query_count_ = index + 1;
  return index;
}

Status ParallelStreamingEngine::Start() {
  if (running_) {
    return Status::FailedPrecondition("engine already running");
  }
  for (auto& shard : shards_) {
    Status s = shard->Start();
    if (!s.ok()) return s;
  }
  running_ = true;
  return Status::OK();
}

Status ParallelStreamingEngine::Drain() {
  if (!running_) return Status::OK();
  for (auto& shard : shards_) {
    Status s = shard->Drain();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status ParallelStreamingEngine::Stop() {
  if (!running_) return Status::OK();
  Status result = Status::OK();
  for (auto& shard : shards_) {
    Status s = shard->Stop();
    if (result.ok() && !s.ok()) result = s;
  }
  running_ = false;
  return result;
}

Status ParallelStreamingEngine::OnEvent(const Event& event) {
  if (!running_) {
    return Status::FailedPrecondition(
        "ParallelStreamingEngine::OnEvent before Start()");
  }
  PLDP_RETURN_IF_ERROR(shards_[router_.ShardOf(event)]->Push(event));
  ++events_ingested_;
  return Status::OK();
}

Status ParallelStreamingEngine::OnEventBatch(EventSpan events) {
  if (!running_) {
    return Status::FailedPrecondition(
        "ParallelStreamingEngine::OnEventBatch before Start()");
  }
  if (events.empty()) return Status::OK();
  for (auto& buf : staging_) buf.clear();
  for (const Event& e : events) {
    staging_[router_.ShardOf(e)].push_back(e);
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (staging_[i].empty()) continue;
    // Count exactly what each queue accepted: on a failed push (e.g.
    // racing Stop) events_ingested_ must still reconcile with the
    // per-shard pushed/processed counters.
    size_t accepted = 0;
    const Status s =
        shards_[i]->PushN(staging_[i].data(), staging_[i].size(), &accepted);
    events_ingested_ += accepted;
    PLDP_RETURN_IF_ERROR(s);
  }
  return Status::OK();
}

StatusOr<std::vector<Timestamp>> ParallelStreamingEngine::DetectionsOf(
    size_t query_index) const {
  std::vector<Timestamp> merged;
  for (const auto& shard : shards_) {
    StatusOr<std::vector<Timestamp>> part =
        shard->engine().DetectionsOf(query_index);
    if (!part.ok()) return part.status();
    merged.insert(merged.end(), part.value().begin(), part.value().end());
  }
  // Per-shard vectors are in arrival order but shards interleave; sort into
  // the canonical multiset representation.
  std::sort(merged.begin(), merged.end());
  return merged;
}

size_t ParallelStreamingEngine::total_detections() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->engine().total_detections();
  }
  return total;
}

std::vector<ShardStats> ParallelStreamingEngine::ShardStatsSnapshot() const {
  std::vector<ShardStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) stats.push_back(shard->stats());
  return stats;
}

}  // namespace pldp
