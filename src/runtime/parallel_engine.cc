// Copyright 2026 The PLDP Authors.

#include "runtime/parallel_engine.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <utility>

#include "runtime/affinity.h"

namespace pldp {
namespace {

size_t ResolveShardCount(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

// How often the per-event ingest path refreshes every shard's producer
// floor (power of two; amortizes the O(shards) stores).
constexpr uint64_t kProducerFloorPeriod = 1024;

}  // namespace

ParallelStreamingEngine::ParallelStreamingEngine(ParallelEngineOptions options)
    : router_(ResolveShardCount(options.shard_count), options.key_fn),
      exchange_options_(options.exchange),
      overload_options_(options.overload),
      pin_threads_(options.pin_threads),
      affinity_cores_(options.affinity_cores) {
  const size_t n = router_.shard_count();

  shards_.reserve(n);
  staging_.resize(n);
  // Pre-size the per-shard staging buffers so steady-state batched ingest
  // never grows them: a batch can stage at most its own size per shard, and
  // capacity is retained across OnEventBatch calls (clear() keeps it).
  for (auto& buf : staging_) buf.reserve(options.queue_capacity);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(i, options.queue_capacity, options.seed));
    if (options.sink_factory) {
      (void)shards_.back()->SetEventSink(options.sink_factory(i));
    }
  }

  if (overload_options_.policy != OverloadPolicy::kBlock) {
    // The shedding policies interpose the admission layer; the blocking
    // default keeps the historic direct-push path with zero overhead.
    std::vector<Shard*> raw;
    raw.reserve(shards_.size());
    for (auto& shard : shards_) raw.push_back(shard.get());
    admission_ = std::make_unique<AdmissionQueue>(
        overload_options_, std::move(raw), &events_ingested_);
  }

  const size_t producer_count =
      options.ingest_producers == 0 ? 1 : options.ingest_producers;
  if (producer_count > 1) {
    if (overload_options_.policy != OverloadPolicy::kBlock) {
      // The admission layer is a single-producer component (it owns the
      // TryPush path and the parked-event floor clamp); shedding under
      // MPSC ingest would need per-producer admission state.
      init_error_ = Status::FailedPrecondition(
          "ingest_producers > 1 requires the blocking overload policy");
    } else {
      for (auto& shard : shards_) {
        Status s = shard->EnableMultiProducer(producer_count);
        if (init_error_.ok() && !s.ok()) init_error_ = s;
      }
    }
  }
  stall_floors_.Configure(producer_count);
  producers_.reserve(producer_count);
  for (size_t p = 0; p < producer_count; ++p) {
    producers_.push_back(std::unique_ptr<IngestProducer>(
        new IngestProducer(this, p, producer_count)));
  }

  if (options.exchange.enabled) {
    // The default lane-group (key_id ""), configured by options.exchange.
    // Further groups appear on demand via AddCrossQueryKeyed.
    ShardKeyFn exchange_key = options.exchange.key_fn;
    if (!exchange_key) {
      StatusOr<CorrelationKeyFn> key_or =
          MakeCorrelationKeyFn(options.exchange.key);
      if (!key_or.ok()) {
        init_error_ = key_or.status();
      } else {
        exchange_key = std::move(key_or).value();
      }
    }
    if (init_error_.ok()) {
      StatusOr<size_t> group = GetOrCreateGroup(
          "", std::move(exchange_key), options.exchange.forward_raw_events);
      if (!group.ok()) init_error_ = group.status();
    }
  }
}

ParallelStreamingEngine::~ParallelStreamingEngine() { (void)Stop(); }

StatusOr<size_t> ParallelStreamingEngine::AddQuery(Pattern pattern,
                                                   Timestamp window) {
  if (running_) {
    return Status::FailedPrecondition(
        "ParallelStreamingEngine::AddQuery must precede Start()");
  }
  size_t index = 0;
  for (auto& shard : shards_) {
    StatusOr<size_t> result = shard->AddQuery(pattern, window);
    if (!result.ok()) return result;
    index = result.value();
  }
  query_count_ = index + 1;
  return index;
}

StatusOr<size_t> ParallelStreamingEngine::GetOrCreateGroup(
    const std::string& key_id, ShardKeyFn key_fn, bool forward_raw_events) {
  for (size_t g = 0; g < groups_.size(); ++g) {
    if (groups_[g].key_id == key_id) return g;
  }
  if (running_) {
    return Status::FailedPrecondition(
        "exchange lane-groups must be created before Start()");
  }
  if (!key_fn) {
    return Status::InvalidArgument("correlation key_fn must not be null");
  }
  const size_t n1 = shards_.size();
  const size_t n2 = exchange_options_.shard_count > 0
                        ? exchange_options_.shard_count
                        : n1;
  ExchangeGroup group;
  group.key_id = key_id;
  group.fabric = std::make_unique<ExchangeFabric>(
      n1, n2, exchange_options_.lane_capacity,
      exchange_options_.reorder_capacity);
  group.merge_shards.reserve(n2);
  for (size_t c = 0; c < n2; ++c) {
    group.merge_shards.push_back(
        std::make_unique<MergeShard>(c, group.fabric->Column(c)));
  }
  for (size_t i = 0; i < n1; ++i) {
    auto emitter = std::make_unique<ExchangeEmitter>(
        group.fabric->Row(i), key_fn, group.fabric.get());
    PLDP_RETURN_IF_ERROR(
        shards_[i]->AddExchange(std::move(emitter), forward_raw_events));
  }
  groups_.push_back(std::move(group));
  return groups_.size() - 1;
}

StatusOr<size_t> ParallelStreamingEngine::AddCrossQueryToGroup(
    size_t group_index, Pattern pattern, Timestamp window) {
  ExchangeGroup& group = groups_[group_index];
  size_t local = 0;
  for (auto& merge_shard : group.merge_shards) {
    StatusOr<size_t> result = merge_shard->AddQuery(pattern, window);
    if (!result.ok()) return result;
    local = result.value();
  }
  group.query_count = local + 1;
  cross_index_.emplace_back(group_index, local);
  return cross_index_.size() - 1;
}

StatusOr<size_t> ParallelStreamingEngine::AddCrossQuery(Pattern pattern,
                                                        Timestamp window) {
  if (running_) {
    return Status::FailedPrecondition(
        "ParallelStreamingEngine::AddCrossQuery must precede Start()");
  }
  if (!exchange_options_.enabled || groups_.empty()) {
    return Status::FailedPrecondition(
        "cross queries need the exchange stage (options.exchange.enabled), "
        "or a per-query key via AddCrossQueryKeyed");
  }
  // The default group is always the first one created (key_id "").
  return AddCrossQueryToGroup(0, std::move(pattern), window);
}

StatusOr<size_t> ParallelStreamingEngine::AddCrossQueryKeyed(
    Pattern pattern, Timestamp window, const std::string& key_id,
    ShardKeyFn key_fn) {
  if (running_) {
    return Status::FailedPrecondition(
        "ParallelStreamingEngine::AddCrossQueryKeyed must precede Start()");
  }
  PLDP_ASSIGN_OR_RETURN(size_t group_index,
                        GetOrCreateGroup(key_id, std::move(key_fn),
                                         exchange_options_.forward_raw_events));
  return AddCrossQueryToGroup(group_index, std::move(pattern), window);
}

Status ParallelStreamingEngine::EnableMetrics(obs::MetricsRegistry* registry,
                                              const std::string& lane) {
  if (running_) {
    return Status::FailedPrecondition(
        "EnableMetrics must precede Start()");
  }
  if (registry == nullptr) {
    return Status::InvalidArgument("registry must not be null");
  }
  if (metrics_ != nullptr) {
    return Status::FailedPrecondition("metrics already enabled");
  }
  metrics_ = registry;
  metrics_lane_ = lane;

  shard_queue_gauges_.resize(shards_.size(), nullptr);
  for (size_t i = 0; i < shards_.size(); ++i) {
    const std::string shard_label = std::to_string(i);
    obs::ShardInstruments ins;
    ins.events = registry->AddCounter(
        "pldp_shard_events_total", "Events popped and processed by a shard",
        {{"lane", lane}, {"shard", shard_label}});
    ins.backpressure_waits = registry->AddCounter(
        "pldp_shard_backpressure_waits_total",
        "Full-queue waits a producer spent pushing to a shard",
        {{"lane", lane}, {"shard", shard_label}});
    ins.batch_size = registry->AddHistogram(
        "pldp_shard_batch_size", "Events per worker pop burst",
        {{"lane", lane}, {"shard", shard_label}});
    ins.process_latency_ns = registry->AddHistogram(
        "pldp_shard_process_latency_ns",
        "Per-event shard processing latency (engine + sink + exchange), ns",
        {{"lane", lane}, {"shard", shard_label}});
    ins.parks = registry->AddCounter(
        "pldp_shard_parks_total",
        "Times an idle shard worker parked on its doorbell",
        {{"lane", lane}, {"shard", shard_label}});
    ins.wakes = registry->AddCounter(
        "pldp_shard_wakes_total",
        "Slow-path doorbell notifies that woke a parked shard worker",
        {{"lane", lane}, {"shard", shard_label}});
    shard_queue_gauges_[i] = registry->AddGauge(
        "pldp_shard_queue_depth", "Instantaneous shard input-queue depth",
        {{"lane", lane}, {"shard", shard_label}});
    ins.queue_depth = shard_queue_gauges_[i];
    PLDP_RETURN_IF_ERROR(shards_[i]->SetInstruments(ins));
    if (admission_ != nullptr) {
      admission_->SetShedInstrument(
          i, registry->AddCounter(
                 "pldp_shed_events_total",
                 "Events deliberately dropped by the overload policy",
                 {{"lane", lane},
                  {"shard", shard_label},
                  {"policy", OverloadPolicyName(overload_options_.policy)}}));
    }
  }

  lane_depth_gauges_.assign(groups_.size(), {});
  merge_reorder_gauges_.assign(groups_.size(), {});
  merge_lag_gauges_.assign(groups_.size(), {});
  merge_capacity_gauges_.assign(groups_.size(), {});
  for (size_t g = 0; g < groups_.size(); ++g) {
    const ExchangeGroup& group = groups_[g];
    const std::string group_label =
        group.key_id.empty() ? "default" : group.key_id;
    lane_depth_gauges_[g].resize(shards_.size(), nullptr);
    for (size_t p = 0; p < shards_.size(); ++p) {
      const std::string producer_label = std::to_string(p);
      obs::ExchangeInstruments ins;
      ins.forwarded = registry->AddCounter(
          "pldp_exchange_forwarded_total",
          "Events a producer emitted into an exchange lane-group",
          {{"lane", lane}, {"group", group_label},
           {"producer", producer_label}});
      ins.watermarks = registry->AddCounter(
          "pldp_exchange_watermarks_total",
          "Watermark broadcasts on a producer's exchange row",
          {{"lane", lane}, {"group", group_label},
           {"producer", producer_label}});
      ins.backpressure_waits = registry->AddCounter(
          "pldp_exchange_backpressure_waits_total",
          "Full-lane waits a producer spent emitting downstream",
          {{"lane", lane}, {"group", group_label},
           {"producer", producer_label}});
      ins.credit_exhausted_waits = registry->AddCounter(
          "pldp_exchange_credit_exhausted_waits_total",
          "Credit-exhausted stalls a producer spent waiting on a merge shard",
          {{"lane", lane}, {"group", group_label},
           {"producer", producer_label}});
      lane_depth_gauges_[g][p] = registry->AddGauge(
          "pldp_exchange_lane_depth",
          "Instantaneous occupancy of a producer's exchange row",
          {{"lane", lane}, {"group", group_label},
           {"producer", producer_label}});
      ins.lane_depth = lane_depth_gauges_[g][p];
      // Shard hook index g is groups_[g]'s emitter (see header invariant).
      shards_[p]->exchange_emitter(g)->SetInstruments(ins);
    }
    merge_reorder_gauges_[g].resize(group.merge_shards.size(), nullptr);
    merge_lag_gauges_[g].resize(group.merge_shards.size(), nullptr);
    merge_capacity_gauges_[g].resize(group.merge_shards.size(), nullptr);
    for (size_t c = 0; c < group.merge_shards.size(); ++c) {
      const std::string shard_label = std::to_string(c);
      obs::MergeInstruments ins;
      ins.events_received = registry->AddCounter(
          "pldp_merge_events_received_total",
          "Events a merge shard popped from its exchange lanes",
          {{"lane", lane}, {"group", group_label}, {"shard", shard_label}});
      ins.events_merged = registry->AddCounter(
          "pldp_merge_events_total",
          "Events a merge shard released to its engine in global order",
          {{"lane", lane}, {"group", group_label}, {"shard", shard_label}});
      ins.merge_latency_ns = registry->AddHistogram(
          "pldp_merge_latency_ns",
          "Per-released-event merge+match latency, ns",
          {{"lane", lane}, {"group", group_label}, {"shard", shard_label}});
      ins.parks = registry->AddCounter(
          "pldp_merge_parks_total",
          "Times an idle merge-shard worker parked on its doorbell",
          {{"lane", lane}, {"group", group_label}, {"shard", shard_label}});
      ins.wakes = registry->AddCounter(
          "pldp_merge_wakes_total",
          "Slow-path doorbell notifies that woke a parked merge worker",
          {{"lane", lane}, {"group", group_label}, {"shard", shard_label}});
      merge_reorder_gauges_[g][c] = registry->AddGauge(
          "pldp_merge_reorder_depth",
          "Instantaneous reorder-buffer occupancy of a merge shard",
          {{"lane", lane}, {"group", group_label}, {"shard", shard_label}});
      ins.reorder_depth = merge_reorder_gauges_[g][c];
      merge_lag_gauges_[g][c] = registry->AddGauge(
          "pldp_merge_watermark_lag",
          "Ingest frontier minus a merge shard's safe watermark (events)",
          {{"lane", lane}, {"group", group_label}, {"shard", shard_label}});
      ins.watermark_lag = merge_lag_gauges_[g][c];
      merge_capacity_gauges_[g][c] = registry->AddGauge(
          "pldp_merge_reorder_capacity",
          "Hard reorder-buffer bound of a merge shard (sum of lane credits)",
          {{"lane", lane}, {"group", group_label}, {"shard", shard_label}});
      ins.reorder_capacity = merge_capacity_gauges_[g][c];
      merge_capacity_gauges_[g][c]->Set(
          static_cast<double>(group.merge_shards[c]->reorder_capacity()));
      PLDP_RETURN_IF_ERROR(group.merge_shards[c]->SetInstruments(ins));
    }
  }
  for (size_t p = 0; p < producers_.size(); ++p) {
    producers_[p]->ingest_counter_ = registry->AddCounter(
        "pldp_ingest_events_total",
        "Events accepted through an ingest producer handle",
        {{"lane", lane}, {"producer", std::to_string(p)}});
  }
  return Status::OK();
}

void ParallelStreamingEngine::RefreshMetricGauges() {
  if (metrics_ == nullptr) return;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shard_queue_gauges_[i] != nullptr) {
      shard_queue_gauges_[i]->Set(
          static_cast<double>(shards_[i]->queue_depth()));
    }
  }
  const uint64_t frontier = IngestFrontier();
  for (size_t g = 0; g < groups_.size(); ++g) {
    for (size_t p = 0; p < shards_.size(); ++p) {
      if (lane_depth_gauges_[g][p] != nullptr) {
        lane_depth_gauges_[g][p]->Set(
            static_cast<double>(shards_[p]->exchange_emitter(g)->RowDepth()));
      }
    }
    for (size_t c = 0; c < groups_[g].merge_shards.size(); ++c) {
      const MergeShard& merge = *groups_[g].merge_shards[c];
      if (merge_reorder_gauges_[g][c] != nullptr) {
        merge_reorder_gauges_[g][c]->Set(
            static_cast<double>(merge.reorder_buffered()));
      }
      if (merge_lag_gauges_[g][c] != nullptr) {
        const uint64_t safe = merge.safe_primary();
        merge_lag_gauges_[g][c]->Set(
            safe >= frontier ? 0.0
                             : static_cast<double>(frontier - safe));
      }
      if (merge_capacity_gauges_[g][c] != nullptr) {
        merge_capacity_gauges_[g][c]->Set(
            static_cast<double>(merge.reorder_capacity()));
      }
    }
  }
}

Status ParallelStreamingEngine::SetQueryCallback(
    size_t query_index, std::function<void(Timestamp)> callback) {
  if (running_) {
    return Status::FailedPrecondition(
        "SetQueryCallback must precede Start()");
  }
  if (query_index >= query_count_) {
    return Status::OutOfRange("unknown stage-1 query index " +
                              std::to_string(query_index));
  }
  if (query_callbacks_.size() < query_count_) {
    query_callbacks_.resize(query_count_);
  }
  query_callbacks_[query_index] = std::move(callback);
  return Status::OK();
}

Status ParallelStreamingEngine::SetCrossQueryCallback(
    size_t cross_query_index, std::function<void(Timestamp)> callback) {
  if (running_) {
    return Status::FailedPrecondition(
        "SetCrossQueryCallback must precede Start()");
  }
  if (cross_query_index >= cross_index_.size()) {
    return Status::OutOfRange("unknown cross query index " +
                              std::to_string(cross_query_index));
  }
  if (cross_query_callbacks_.size() < cross_index_.size()) {
    cross_query_callbacks_.resize(cross_index_.size());
  }
  cross_query_callbacks_[cross_query_index] = std::move(callback);
  return Status::OK();
}

void ParallelStreamingEngine::InstallCallbackDispatchers() {
  bool any_plain = false;
  for (const auto& cb : query_callbacks_) {
    if (cb) any_plain = true;
  }
  if (any_plain) {
    for (auto& shard : shards_) {
      // One dispatcher per shard; callbacks_ is frozen once Start ran, so
      // worker-thread reads are race-free. The same user callback may fire
      // concurrently from several shards — documented as thread-safe.
      (void)shard->SetDetectionCallback([this](const StreamingDetection& d) {
        if (d.query_index < query_callbacks_.size() &&
            query_callbacks_[d.query_index]) {
          query_callbacks_[d.query_index](d.at);
        }
      });
    }
  }
  bool any_cross = false;
  for (const auto& cb : cross_query_callbacks_) {
    if (cb) any_cross = true;
  }
  if (any_cross) {
    // Merge-shard engines use group-local indices; invert cross_index_
    // into one local->global map per group for the dispatchers.
    std::vector<std::vector<size_t>> local_to_global(groups_.size());
    for (size_t g = 0; g < groups_.size(); ++g) {
      local_to_global[g].resize(groups_[g].query_count, SIZE_MAX);
    }
    for (size_t global = 0; global < cross_index_.size(); ++global) {
      const auto [g, local] = cross_index_[global];
      local_to_global[g][local] = global;
    }
    for (size_t g = 0; g < groups_.size(); ++g) {
      auto map = local_to_global[g];
      for (auto& merge_shard : groups_[g].merge_shards) {
        (void)merge_shard->SetDetectionCallback(
            [this, map](const StreamingDetection& d) {
              if (d.query_index >= map.size()) return;
              const size_t global = map[d.query_index];
              if (global < cross_query_callbacks_.size() &&
                  cross_query_callbacks_[global]) {
                cross_query_callbacks_[global](d.at);
              }
            });
      }
    }
  }
}

void ParallelStreamingEngine::CollectHealth(obs::PipelineHealth* health,
                                            const std::string& lane) const {
  for (size_t i = 0; i < shards_.size(); ++i) {
    obs::PipelineHealth::ShardRow row;
    row.lane = lane;
    row.shard = i;
    row.queue_depth = shards_[i]->queue_depth();
    row.queue_capacity = shards_[i]->queue_capacity();
    row.saturation = row.queue_capacity == 0
                         ? 0.0
                         : static_cast<double>(row.queue_depth) /
                               static_cast<double>(row.queue_capacity);
    health->shards.push_back(std::move(row));
  }
  const uint64_t frontier = IngestFrontier();
  for (const auto& group : groups_) {
    for (size_t c = 0; c < group.merge_shards.size(); ++c) {
      const MergeShard& merge = *group.merge_shards[c];
      obs::PipelineHealth::GroupRow row;
      row.lane = lane;
      row.group = group.key_id.empty() ? "default" : group.key_id;
      row.merge_shard = c;
      const uint64_t safe = merge.safe_primary();
      row.watermark_lag = safe >= frontier ? 0 : frontier - safe;
      row.reorder_depth = merge.reorder_buffered();
      row.reorder_capacity = merge.reorder_capacity();
      health->groups.push_back(std::move(row));
    }
  }
}

Status ParallelStreamingEngine::Start() {
  if (running_) {
    return Status::FailedPrecondition("engine already running");
  }
  PLDP_RETURN_IF_ERROR(init_error_);
  InstallCallbackDispatchers();
  if (pin_threads_) {
    // Round-robin core assignment, stage-1 shards first so they land on
    // distinct cores before the merge shards start sharing. Purely a
    // placement hint: PinCurrentThreadToCore degrades to a no-op on
    // unsupported platforms, and oversubscription just wraps around.
    size_t cores = AvailableCoreCount();
    if (affinity_cores_ > 0 && affinity_cores_ < cores) {
      cores = affinity_cores_;
    }
    size_t next_core = 0;
    for (auto& shard : shards_) {
      shard->SetAffinityCore(static_cast<int>(next_core++ % cores));
    }
    for (auto& group : groups_) {
      for (auto& merge_shard : group.merge_shards) {
        merge_shard->SetAffinityCore(static_cast<int>(next_core++ % cores));
      }
    }
  }
  // Consumers before producers: a stage-1 worker may block on a full lane
  // the moment it starts, and only a live merge shard ever frees one.
  for (auto& group : groups_) {
    for (auto& merge_shard : group.merge_shards) {
      Status s = merge_shard->Start();
      if (!s.ok()) return s;
    }
  }
  for (auto& shard : shards_) {
    Status s = shard->Start();
    if (!s.ok()) return s;
  }
  // order: relaxed; the finished_ latch is only touched on the
  // externally-serialized orchestration/ingest roles (role asserts) —
  // the atomic guards torn reads from stats paths, not a handoff.
  finished_.store(false, std::memory_order_relaxed);
  running_ = true;
  return Status::OK();
}

Status ParallelStreamingEngine::Drain() {
  if (!running_) return Status::OK();
  if (admission_ != nullptr) {
    // Parked events are part of the ingested stream; the barrier is only a
    // barrier once they have landed in their shard queues.
    PLDP_RETURN_IF_ERROR(admission_->FlushBlocking());
  }
  // The ingest fence must precede the shard drains: in MPSC mode a shard
  // can only run its lanes dry once every producer's floor passed the
  // bound (a stale floor gates the lane merge forever).
  const uint64_t bound = PrepareIngestBarrier();
  for (auto& shard : shards_) {
    Status s = shard->Drain();
    if (!s.ok()) return s;
  }
  if (!groups_.empty()) {
    // Two-phase barrier: every producer flushes a watermark asserting it
    // forwarded everything below `bound` it will ever see (one command
    // broadcasts on every lane-group's row), then every merge shard of
    // every group is waited past that bound. Inherits Drain's best-effort
    // semantics when a producer keeps pushing concurrently.
    for (auto& shard : shards_) {
      Status s = shard->RequestFlushWatermark(bound);
      if (!s.ok()) return s;
    }
    for (auto& group : groups_) {
      for (auto& merge_shard : group.merge_shards) {
        Status s = merge_shard->WaitSafe(bound);
        if (!s.ok()) return s;
      }
    }
  }
  return Status::OK();
}

Status ParallelStreamingEngine::Finish() {
  if (!running_) {
    return Status::FailedPrecondition("engine not running");
  }
  // One-shot: a failed finish leaves the pipeline in an undefined terminal
  // state, so the first outcome — success or error — latches and is
  // re-returned forever instead of a retry silently reporting OK.
  // order: relaxed; see the Start() rationale on the finished_ latch.
  if (finished_.load(std::memory_order_relaxed)) return finish_status_;
  // Close the ingest gate before any worker finalizes: OnEvent after this
  // point is refused, so finalize-time output is really last.
  // order: relaxed; see the Start() rationale on the finished_ latch.
  finished_.store(true, std::memory_order_relaxed);
  finish_status_ = FinishInternal();
  return finish_status_;
}

Status ParallelStreamingEngine::FinishInternal() {
  if (admission_ != nullptr) {
    PLDP_RETURN_IF_ERROR(admission_->FlushBlocking());
  }
  // Ingest fence before the shard drains — see Drain() for why.
  const uint64_t bound = PrepareIngestBarrier();
  for (auto& shard : shards_) {
    PLDP_RETURN_IF_ERROR(shard->Drain());
  }
  // Post the finish command to EVERY shard before waiting on ANY ack.
  // Finalize-time emissions run against bounded credit budgets: shard A's
  // sink output may only become releasable — and its credits returnable —
  // once shard B's terminal watermark is in flight. Waiting for A's ack
  // before posting to B would deadlock under small reorder capacities.
  std::vector<uint64_t> tokens;
  tokens.reserve(shards_.size());
  for (auto& shard : shards_) {
    PLDP_ASSIGN_OR_RETURN(uint64_t token, shard->PostFinish(bound));
    tokens.push_back(token);
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    PLDP_RETURN_IF_ERROR(shards_[i]->WaitCommandAck(tokens[i]));
  }
  for (auto& group : groups_) {
    for (auto& merge_shard : group.merge_shards) {
      PLDP_RETURN_IF_ERROR(merge_shard->WaitSafe(kExchangeSeqEnd));
    }
  }
  return Status::OK();
}

Status ParallelStreamingEngine::Stop() {
  if (!running_) return Status::OK();
  Status result = Status::OK();
  if (admission_ != nullptr) {
    // Land parked events before the shards go away; a shard racing into
    // stop makes this fail fast, which is the best Stop can do.
    Status s = admission_->FlushBlocking();
    if (result.ok() && !s.ok()) result = s;
  }
  // order: relaxed; see the Start() rationale on the finished_ latch.
  if (!groups_.empty() && !finished_.load(std::memory_order_relaxed)) {
    // Make sure stage-2 holds everything before the producers go away.
    result = Drain();
  }
  for (auto& shard : shards_) {
    Status s = shard->Stop();
    if (result.ok() && !s.ok()) result = s;
  }
  for (auto& group : groups_) {
    // Producers are joined; nothing can block on a lane anymore, and any
    // straggler Emit (there should be none) must fail fast.
    group.fabric->Abort();
    for (auto& merge_shard : group.merge_shards) {
      Status s = merge_shard->Stop();
      if (result.ok() && !s.ok()) result = s;
    }
  }
  running_ = false;
  return result;
}

Status ParallelStreamingEngine::OnEvent(const Event& event) {
  if (producers_.size() > 1) {
    return Status::FailedPrecondition(
        "MPSC ingest: drive the per-producer handles (producer(i)), not "
        "the engine-level OnEvent");
  }
  ingest_role_.Assert();
  if (!running_) {
    return Status::FailedPrecondition(
        "ParallelStreamingEngine::OnEvent before Start()");
  }
  // order: relaxed; see the Start() rationale on the finished_ latch.
  if (finished_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("ingestion after Finish()");
  }
  const size_t target = router_.ShardOf(event);
  if (admission_ != nullptr &&
      admission_->ShouldShedBeforeStamp(target, event)) {
    // Dropped pre-stamping: the sequence space stays gapless, so shedding
    // leaves the watermark protocol untouched.
    return Status::OK();
  }
  StampedEvent stamped;
  // order: relaxed; only ticket uniqueness matters — the event itself is
  // published by the queue push, and floors ride their own releases.
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  stamped.seq = seq;
  stamped.event = event;
  if (admission_ != nullptr) {
    // Queue full turns into park-or-shed instead of blocking; admitted
    // events are counted (via the shared counter) only when they land.
    (void)admission_->Offer(target, std::move(stamped));
  } else {
    PLDP_RETURN_IF_ERROR(shards_[target]->PushStampedN(&stamped, 1));
    // order: relaxed; standalone telemetry counter.
    events_ingested_.fetch_add(1, std::memory_order_relaxed);
  }
  // Periodically tell every shard how far the stream has advanced, so
  // shards starved by routing skew keep watermarking their lanes (see
  // Shard::NoteProducerFloor).
  if ((seq & (kProducerFloorPeriod - 1)) == kProducerFloorPeriod - 1) {
    PublishProducerFloor(seq + 1);
  }
  return Status::OK();
}

Status ParallelStreamingEngine::OnEventBatch(EventSpan events) {
  if (producers_.size() > 1) {
    return Status::FailedPrecondition(
        "MPSC ingest: drive the per-producer handles (producer(i)), not "
        "the engine-level OnEventBatch");
  }
  ingest_role_.Assert();
  if (!running_) {
    return Status::FailedPrecondition(
        "ParallelStreamingEngine::OnEventBatch before Start()");
  }
  // order: relaxed; see the Start() rationale on the finished_ latch.
  if (finished_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("ingestion after Finish()");
  }
  if (events.empty()) return Status::OK();
  if (admission_ != nullptr) {
    // Per-event admission: the policies need the queue-full decision at
    // event granularity, so the bulk staging fast path does not apply.
    for (const Event& e : events) {
      const size_t target = router_.ShardOf(e);
      if (admission_->ShouldShedBeforeStamp(target, e)) continue;
      StampedEvent stamped;
      // order: relaxed; ticket uniqueness only (see OnEvent).
      stamped.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
      stamped.event = e;
      (void)admission_->Offer(target, std::move(stamped));
    }
    admission_->Pump();
    // order: relaxed; same-thread read of our own fetch_adds, and the
    // floor publication below carries its own release semantics.
    PublishProducerFloor(next_seq_.load(std::memory_order_relaxed));
    return Status::OK();
  }
  for (auto& buf : staging_) buf.clear();
  for (const Event& e : events) {
    StampedEvent stamped;
    // order: relaxed; ticket uniqueness only (see OnEvent).
    stamped.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    stamped.event = e;
    staging_[router_.ShardOf(e)].push_back(std::move(stamped));
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (staging_[i].empty()) continue;
    // Count exactly what each queue accepted: on a failed push (e.g.
    // racing Stop) events_ingested_ must still reconcile with the
    // per-shard pushed/processed counters.
    size_t accepted = 0;
    const Status s = shards_[i]->PushStampedN(staging_[i].data(),
                                              staging_[i].size(), &accepted);
    // order: relaxed; standalone telemetry counter.
    events_ingested_.fetch_add(accepted, std::memory_order_relaxed);
    PLDP_RETURN_IF_ERROR(s);
  }
  // Every staged event is now pushed; the whole batch is a safe floor.
  // order: relaxed; same-thread read (see the single-event path).
  PublishProducerFloor(next_seq_.load(std::memory_order_relaxed));
  return Status::OK();
}

void ParallelStreamingEngine::PublishProducerFloor(uint64_t floor) {
  if (groups_.empty()) return;
  if (admission_ != nullptr) {
    // A parked event's sequence number must never fall below a published
    // floor — a late flush would then violate watermark monotonicity.
    floor = admission_->ClampFloor(floor);
  }
  for (auto& shard : shards_) shard->NoteProducerFloor(floor);
}

size_t ParallelStreamingEngine::cross_shard_count() const {
  size_t total = 0;
  for (const auto& group : groups_) total += group.merge_shards.size();
  return total;
}

StatusOr<std::vector<Timestamp>> ParallelStreamingEngine::DetectionsOf(
    size_t query_index) const {
  // Validate at the facade so the error names the right index space (a
  // cross query index passed here must not silently alias a stage-1
  // query, nor the reverse).
  if (query_index >= query_count_) {
    return Status::OutOfRange(
        "unknown stage-1 query index " + std::to_string(query_index) +
        " (registered: " + std::to_string(query_count_) +
        "; cross queries live in their own index space — use "
        "CrossDetectionsOf)");
  }
  std::vector<Timestamp> merged;
  for (const auto& shard : shards_) {
    StatusOr<std::vector<Timestamp>> part =
        shard->engine().DetectionsOf(query_index);
    if (!part.ok()) return part.status();
    merged.insert(merged.end(), part.value().begin(), part.value().end());
  }
  // Per-shard vectors are in arrival order but shards interleave; sort into
  // the canonical multiset representation.
  std::sort(merged.begin(), merged.end());
  return merged;
}

StatusOr<std::vector<Timestamp>> ParallelStreamingEngine::CrossDetectionsOf(
    size_t cross_query_index) const {
  if (groups_.empty()) {
    return Status::FailedPrecondition("exchange stage is not enabled");
  }
  if (cross_query_index >= cross_index_.size()) {
    return Status::OutOfRange(
        "unknown cross query index " + std::to_string(cross_query_index) +
        " (registered: " + std::to_string(cross_index_.size()) + ")");
  }
  const auto [group_index, local_index] = cross_index_[cross_query_index];
  std::vector<Timestamp> merged;
  for (const auto& merge_shard : groups_[group_index].merge_shards) {
    StatusOr<std::vector<Timestamp>> part =
        merge_shard->engine().DetectionsOf(local_index);
    if (!part.ok()) return part.status();
    merged.insert(merged.end(), part.value().begin(), part.value().end());
  }
  std::sort(merged.begin(), merged.end());
  return merged;
}

size_t ParallelStreamingEngine::total_detections() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->engine().total_detections();
  }
  return total;
}

size_t ParallelStreamingEngine::total_cross_detections() const {
  size_t total = 0;
  for (const auto& group : groups_) {
    for (const auto& merge_shard : group.merge_shards) {
      total += merge_shard->engine().total_detections();
    }
  }
  return total;
}

std::vector<ShardStats> ParallelStreamingEngine::ShardStatsSnapshot() const {
  std::vector<ShardStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) stats.push_back(shard->stats());
  return stats;
}

uint64_t ParallelStreamingEngine::IngestFrontier() const {
  if (producers_.size() <= 1) {
    // order: relaxed; a frontier snapshot may lag — callers treat it as
    // a monotonic hint, and queue pushes publish the events themselves.
    return next_seq_.load(std::memory_order_relaxed);
  }
  uint64_t frontier = 0;
  for (const auto& producer : producers_) {
    frontier = std::max(frontier, producer->seq_frontier());
  }
  return frontier;
}

uint64_t ParallelStreamingEngine::PrepareIngestBarrier() {
  if (producers_.size() <= 1) {
    // order: relaxed; single-producer mode, the caller is that producer.
    return next_seq_.load(std::memory_order_relaxed);
  }
  const uint64_t bound = IngestFrontier();
  // Arm the producer-side resync first: a producer ingesting again after
  // this barrier must stamp at or above `bound`, or its events would fall
  // below the watermark the barrier is about to flush (monotone — a
  // concurrent barrier with a larger bound must win).
  stall_floors_.ArmResyncFloor(bound);
  // Publish `bound` as every producer's floor on every shard: quiescent
  // producers' lanes are then provably past every pending candidate, so
  // the lane merges can run dry during the shard drains that follow.
  for (size_t p = 0; p < producers_.size(); ++p) {
    for (auto& shard : shards_) shard->NoteLaneFloor(p, bound);
  }
  return bound;
}

void ParallelStreamingEngine::PublishStallFloors(size_t stalled,
                                                 uint64_t own_floor) {
  // The stalled producer's own claim first: every sequence it stamped
  // below `own_floor` has landed in a lane already (own_floor is its
  // smallest unpushed stamp), so this is sound even mid-push — and it is
  // what lets a SECOND stalled producer's shard merge past this one.
  for (auto& shard : shards_) shard->NoteLaneFloor(stalled, own_floor);
  // Quiescent peers: lift their lane floors to the ingest frontier so a
  // merge gated on an idle peer cannot hold this push full forever. Arm
  // the resync floor BEFORE proving quiescence: the coordinator's Dekker
  // handshake (runtime/stall_floor.h) guarantees a peer whose in-call
  // flag reads false here either never enters a stamping call again or
  // enters one whose MaybeResync observes the armed bound — both keep
  // every future stamp of that peer at or above the floor published for
  // it. A peer seen in-call is skipped: its own pushes, periodic floors,
  // and (should it stall too) its own stall hook keep its lanes live.
  const uint64_t bound = IngestFrontier();
  stall_floors_.ArmResyncFloor(bound);
  stall_floors_.QuiescenceFence();
  for (size_t p = 0; p < producers_.size(); ++p) {
    if (p == stalled) continue;
    if (stall_floors_.InCall(p)) continue;
    for (auto& shard : shards_) shard->NoteLaneFloor(p, bound);
  }
}

void IngestProducer::OnLaneStall(void* ctx, uint64_t next_seq) {
  auto* stall = static_cast<StallContext*>(ctx);
  stall->engine->PublishStallFloors(stall->producer,
                                    std::min(next_seq, stall->rest_min));
}

IngestProducer::IngestProducer(ParallelStreamingEngine* engine, size_t index,
                               size_t stride)
    : engine_(engine), index_(index), stride_(stride), seq_next_(index) {
  if (stride_ > 1) {
    staging_.resize(engine_->shards_.size());
    // Mirror the engine-level staging: pre-size to the per-lane queue
    // capacity so steady-state batched ingest never grows the buffers
    // (queue_capacity() aggregates over the P lanes, hence the division).
    for (auto& buf : staging_) {
      buf.reserve(engine_->shards_.empty()
                      ? 0
                      : engine_->shards_[0]->queue_capacity() / stride_);
    }
  }
}

StallFloorCoordinator& IngestProducer::Coordinator() {
  return engine_->stall_floors_;
}

void IngestProducer::MaybeResync() {
  // Callers enter through CallScope, whose EnterCall fence precedes this
  // load: paired with the stall side's QuiescenceFence it guarantees
  // that a handle proven out-of-call there cannot miss a bound armed
  // there (the Dekker argument in runtime/stall_floor.h).
  const uint64_t rf = engine_->stall_floors_.AcquireResyncFloor();
  // order: relaxed; this thread is seq_next_'s only writer.
  const uint64_t next = seq_next_.load(std::memory_order_relaxed);
  if (next >= rf) return;
  // Smallest value >= rf that keeps this producer's residue (mod stride).
  seq_next_.store(rf + (index_ + stride_ - rf % stride_) % stride_,
                  std::memory_order_relaxed);
}

void IngestProducer::PublishFloor() {
  role_.Assert();
  if (stride_ == 1) return;  // single-producer floors ride the engine path
  // order: relaxed; same-thread read of our own store below OnEvent.
  const uint64_t floor = seq_next_.load(std::memory_order_relaxed);
  for (auto& shard : engine_->shards_) shard->NoteLaneFloor(index_, floor);
  since_floor_ = 0;
}

Status IngestProducer::OnEvent(const Event& event) {
  if (stride_ == 1) {
    Status s = engine_->OnEvent(event);
    if (s.ok() && ingest_counter_ != nullptr) ingest_counter_->Inc(1);
    return s;
  }
  role_.Assert();
  if (!engine_->running_) {
    return Status::FailedPrecondition(
        "IngestProducer::OnEvent before Start()");
  }
  // order: relaxed; see the Start() rationale on the finished_ latch.
  if (engine_->finished_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("ingestion after Finish()");
  }
  CallScope in_call(this);
  MaybeResync();
  StampedEvent stamped;
  // order: relaxed; seq_next_ is written only by this producer thread.
  const uint64_t seq = seq_next_.load(std::memory_order_relaxed);
  stamped.seq = seq;
  stamped.event = event;
  // Frontier semantics ("every handed-out seq is strictly below it")
  // require the advance before the possibly-blocking push.
  // order: release pairs with seq_frontier()'s acquire, so a stall
  // claimant that reads the frontier also sees everything stamped below.
  seq_next_.store(seq + stride_, std::memory_order_release);
  const size_t target = engine_->router_.ShardOf(event);
  StallContext stall{engine_, index_,
                     std::numeric_limits<uint64_t>::max()};
  PLDP_RETURN_IF_ERROR(engine_->shards_[target]->PushStampedLaneN(
      index_, &stamped, 1, nullptr, &IngestProducer::OnLaneStall, &stall));
  // order: relaxed; standalone telemetry counter.
  engine_->events_ingested_.fetch_add(1, std::memory_order_relaxed);
  if (ingest_counter_ != nullptr) ingest_counter_->Inc(1);
  if (++since_floor_ >= kProducerFloorPeriod) PublishFloor();
  return Status::OK();
}

Status IngestProducer::OnEventBatch(EventSpan events) {
  if (stride_ == 1) {
    Status s = engine_->OnEventBatch(events);
    if (s.ok() && ingest_counter_ != nullptr) {
      ingest_counter_->Inc(events.size());
    }
    return s;
  }
  role_.Assert();
  if (!engine_->running_) {
    return Status::FailedPrecondition(
        "IngestProducer::OnEventBatch before Start()");
  }
  // order: relaxed; see the Start() rationale on the finished_ latch.
  if (engine_->finished_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("ingestion after Finish()");
  }
  if (events.empty()) return Status::OK();
  CallScope in_call(this);
  MaybeResync();
  for (auto& buf : staging_) buf.clear();
  // order: relaxed; seq_next_ is written only by this producer thread.
  uint64_t seq = seq_next_.load(std::memory_order_relaxed);
  for (const Event& e : events) {
    StampedEvent stamped;
    stamped.seq = seq;
    seq += stride_;
    stamped.event = e;
    staging_[engine_->router_.ShardOf(e)].push_back(std::move(stamped));
  }
  // order: release pairs with seq_frontier()'s acquire (see OnEvent).
  seq_next_.store(seq, std::memory_order_release);
  for (size_t i = 0; i < staging_.size(); ++i) {
    if (staging_[i].empty()) continue;
    // Stall floor while this shard's push blocks: the smallest sequence
    // this producer has not landed anywhere is either still inside THIS
    // buffer (the hook receives it) or the head of a buffer yet to be
    // pushed — buffers are filled in stream order, so a later buffer can
    // hold smaller sequences than this one's tail.
    uint64_t rest_min = std::numeric_limits<uint64_t>::max();
    for (size_t j = i + 1; j < staging_.size(); ++j) {
      if (!staging_[j].empty() && staging_[j].front().seq < rest_min) {
        rest_min = staging_[j].front().seq;
      }
    }
    StallContext stall{engine_, index_, rest_min};
    size_t accepted = 0;
    const Status s = engine_->shards_[i]->PushStampedLaneN(
        index_, staging_[i].data(), staging_[i].size(), &accepted,
        &IngestProducer::OnLaneStall, &stall);
    // order: relaxed; standalone telemetry counter.
    engine_->events_ingested_.fetch_add(accepted,
                                        std::memory_order_relaxed);
    if (ingest_counter_ != nullptr) ingest_counter_->Inc(accepted);
    PLDP_RETURN_IF_ERROR(s);
  }
  // Every staged event is pushed; the whole batch is a safe floor.
  PublishFloor();
  return Status::OK();
}

std::vector<ShardStats> ParallelStreamingEngine::CrossShardStatsSnapshot()
    const {
  std::vector<ShardStats> stats;
  stats.reserve(cross_shard_count());
  for (const auto& group : groups_) {
    for (const auto& merge_shard : group.merge_shards) {
      stats.push_back(merge_shard->stats());
    }
  }
  return stats;
}

}  // namespace pldp
