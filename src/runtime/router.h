// Copyright 2026 The PLDP Authors.
//
// Subject-key routing for the sharded runtime.
//
// The paper's system model (Fig. 2) has the trusted CEP middleware ingest
// one event stream per data subject; private patterns are properties of an
// individual subject's stream. That makes the subject key (Event::stream())
// the natural partition axis: all events of one subject land on one shard,
// so a shard-local matcher sees exactly the substream it needs and
// per-subject event order is preserved end-to-end.
//
// Assignment is a pure function of (key, shard_count) — deterministic
// across runs and platforms — so replaying a stream reproduces the exact
// same placement, and tests can pin it.

#ifndef PLDP_RUNTIME_ROUTER_H_
#define PLDP_RUNTIME_ROUTER_H_

#include <cstdint>
#include <functional>

#include "common/thread_annotations.h"
#include "event/event.h"

namespace pldp {

/// Extracts the partition key from an event. The default extracts the
/// subject (stream id); workloads keyed differently (e.g. by a tenant
/// attribute) supply their own.
using ShardKeyFn = std::function<uint64_t(const Event&)>;

/// Hash-partitions events onto `shard_count` shards by subject key.
class EventRouter {
 public:
  /// `shard_count` must be >= 1 (clamped). Default key: Event::stream().
  explicit EventRouter(size_t shard_count, ShardKeyFn key_fn = nullptr);

  size_t shard_count() const { return shard_count_; }

  /// The partition key of `event`.
  PLDP_HOT uint64_t KeyOf(const Event& event) const;

  /// Deterministic shard assignment: MixKey(KeyOf(event)) mapped onto
  /// [0, shard_count) by multiply-shift range reduction (see ShardOfKey).
  PLDP_HOT size_t ShardOf(const Event& event) const;

  /// Shard assignment for a raw key (exposed so tests and capacity planners
  /// can reason about placement without building events).
  PLDP_HOT size_t ShardOfKey(uint64_t key) const;

  /// SplitMix64 — scrambles dense subject ids (0,1,2,...) into well-spread
  /// hashes so range-reduced placement stays balanced.
  static uint64_t MixKey(uint64_t key);

 private:
  size_t shard_count_;
  ShardKeyFn key_fn_;
};

}  // namespace pldp

#endif  // PLDP_RUNTIME_ROUTER_H_
