// Copyright 2026 The PLDP Authors.
//
// Ingest admission control for the sharded runtime: the layer between the
// router and the shard queues that decides what happens when a queue is
// full (runtime/overload.h picks the policy).
//
// Under the shedding policies every shard gets a small pending FIFO in
// front of its queue. Admission always flushes the FIFO before pushing a
// new event, so admitted events reach the shard in exact ingest order —
// the policies only ever DROP, never reorder, which is what makes a run
// that sheds nothing bit-identical to the blocking default. When both the
// queue and the FIFO are full:
//
//   kShedOldest     the oldest parked event is dropped to admit the newest
//   kShedBySubject  the incoming event's subject joins a sticky shed set
//                   and the event is dropped pre-stamping; the set clears
//                   when every pending FIFO drains (episode end)
//
// Every drop is counted (per shard, exposed through the
// `pldp_shed_events_total` metric family and the engine's
// quality::SheddingStats roll-up).
//
// Parked events interact with the exchange watermark protocol: a parked
// event's sequence number must never fall below a published producer
// floor, or a late flush would violate watermark monotonicity and corrupt
// the stage-2 merge order. ClampFloor() is that guard — the engine runs
// every floor it publishes through it.
//
// Threading: single-threaded by design — every mutating call happens on
// the one ingest thread (the same contract as Shard's producer side);
// the ThreadRole token makes the analysis check it. The counters are
// atomics so stats/metrics scrapes from other threads are race-free.

#ifndef PLDP_RUNTIME_ADMISSION_H_
#define PLDP_RUNTIME_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "event/event.h"
#include "obs/instruments.h"
#include "runtime/overload.h"
#include "runtime/ring_buffer.h"
#include "runtime/shard.h"

namespace pldp {

/// Per-shard pending FIFOs + shed policy state, owned by the ingest
/// thread. Constructed only for the shedding policies (the blocking
/// default needs no layer at all).
class AdmissionQueue {
 public:
  /// `shards` are borrowed and must outlive this object. `pushed_counter`
  /// (optional) is incremented for every event that actually enters a
  /// shard queue — the engine points it at its ingested-events counter so
  /// parked events are counted when they land, not when they park.
  AdmissionQueue(OverloadOptions options, std::vector<Shard*> shards,
                 std::atomic<uint64_t>* pushed_counter);

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  OverloadPolicy policy() const { return options_.policy; }

  /// Pre-stamping shed check (kShedBySubject only, false otherwise): true
  /// when the event's subject is in the active shed set and the event must
  /// be dropped before a sequence number is assigned. Counts the drop
  /// against `shard_index`.
  bool ShouldShedBeforeStamp(size_t shard_index, const Event& event);

  /// Admits one stamped event destined for `shard_index`: flushes that
  /// shard's pending FIFO as far as the queue allows, then pushes the
  /// event, parks it, or sheds per policy. Returns true when the event was
  /// admitted (queued or parked), false when it was shed. Never blocks.
  bool Offer(size_t shard_index, StampedEvent stamped);

  /// Opportunistic non-blocking flush of every pending FIFO. Cheap when
  /// everything is empty; call it once per ingest batch.
  void Pump();

  /// Blocking flush of every pending FIFO — the drain/finish barrier
  /// path. Fails fast (like Shard::PushStampedN) when a shard stops.
  Status FlushBlocking();

  /// min(floor, oldest parked sequence number across shards): the value
  /// that is actually safe to publish as a producer floor.
  uint64_t ClampFloor(uint64_t floor) const;

  /// Binds the per-shard shed-event counter (pldp_shed_events_total).
  /// Call before ingestion starts.
  void SetShedInstrument(size_t shard_index, obs::Counter* counter);

  /// Events parked across all shards right now (atomic; any thread).
  // order: relaxed; telemetry reads of ingest-thread-owned counters.
  size_t pending_total() const {
    return static_cast<size_t>(
        pending_total_.load(std::memory_order_relaxed));
  }

  /// Events deliberately dropped so far (atomic; any thread).
  // order: relaxed; see pending_total().
  uint64_t shed_total() const {
    return shed_total_.load(std::memory_order_relaxed);
  }

  /// Per-shard shed counts (atomic; any thread).
  std::vector<uint64_t> ShedPerShard() const;

 private:
  struct PerShard {
    Shard* shard = nullptr;
    RingBuffer<StampedEvent> pending;
    obs::Counter* shed_counter = nullptr;
    std::atomic<uint64_t> shed{0};
    /// Oldest parked sequence number (~0 when nothing is parked),
    /// mirrored into an atomic so ClampFloor and scrapes stay
    /// annotation-clean.
    std::atomic<uint64_t> oldest_pending_seq{~uint64_t{0}};
  };

  size_t PendingCapacity(const PerShard& ps) const;
  /// Non-blocking: pushes parked events until the queue refuses or the
  /// FIFO empties. Returns true when the FIFO is empty afterwards.
  bool FlushShard(PerShard& ps) PLDP_REQUIRES(ingest_role_);
  void NoteShed(PerShard& ps, size_t count) PLDP_REQUIRES(ingest_role_);
  void SyncPendingSeq(PerShard& ps) PLDP_REQUIRES(ingest_role_);
  /// Ends a kShedBySubject episode when every FIFO drained.
  void MaybeClearShedSet() PLDP_REQUIRES(ingest_role_);

  const OverloadOptions options_;
  /// Single ingest thread drives every mutating entry point (asserted).
  ThreadRole ingest_role_;
  std::vector<PerShard> state_;
  std::unordered_set<StreamId> shed_subjects_ PLDP_GUARDED_BY(ingest_role_);
  std::atomic<uint64_t>* pushed_counter_;
  std::atomic<uint64_t> pending_total_{0};
  std::atomic<uint64_t> shed_total_{0};
};

}  // namespace pldp

#endif  // PLDP_RUNTIME_ADMISSION_H_
