// Copyright 2026 The PLDP Authors.
//
// A single-threaded growable FIFO over a power-of-two ring.
//
// The merge shards' reorder buffers used to be std::deque, whose block
// allocation pattern costs roughly one heap allocation per few buffered
// exchange items (each block holds only a handful of Event-sized slots) —
// measured at ~0.34 allocations per event on the exchange workload. This
// ring grows geometrically and never releases capacity, so the steady
// state pays zero allocations: pushes and pops are index arithmetic.
// Single-threaded by design (one merge worker owns each buffer); the
// concurrent counterpart is runtime/spsc_queue.h.

#ifndef PLDP_RUNTIME_RING_BUFFER_H_
#define PLDP_RUNTIME_RING_BUFFER_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/atomic.h"

namespace pldp {

template <typename T>
class RingBuffer {
 public:
  /// Initial capacity is deferred to the first push (an empty buffer costs
  /// nothing — most lanes of a skewed exchange stay empty).
  RingBuffer() = default;

  bool empty() const { return head_ == tail_; }
  size_t size() const { return tail_ - head_; }
  size_t capacity() const { return slots_.size(); }

  /// Optional hard occupancy cap (0 = unlimited, the default). Exceeding
  /// it is a caller bug, checked by PLDP_PROTOCOL_ASSERT: the merge
  /// shards set it to their lane's credit budget, under which the producer
  /// can never have more items in flight than the limit — the assert is
  /// the defense-in-depth proof that the credit accounting holds. Under
  /// PLDP_MODEL_CHECK the model checker explores every consume/return
  /// interleaving against it (tests/check/check_credits_test.cc); its
  /// negative twin (PLDP_CHECK_NEGATIVE_CREDITS, which returns the credit
  /// at receipt instead of at release) trips exactly this assert.
  void set_capacity_limit(size_t limit) { capacity_limit_ = limit; }
  size_t capacity_limit() const { return capacity_limit_; }

  /// The oldest element; undefined when empty.
  T& front() { return slots_[head_ & mask_]; }
  const T& front() const { return slots_[head_ & mask_]; }

  void push_back(T value) {
    PLDP_PROTOCOL_ASSERT(capacity_limit_ == 0 || size() < capacity_limit_);
    if (size() == slots_.size()) Grow();
    slots_[tail_ & mask_] = std::move(value);
    ++tail_;
  }

  void pop_front() {
    // Release the payload eagerly (a moved-from slot may still own memory,
    // e.g. a spilled event); the slot itself is reused in place.
    slots_[head_ & mask_] = T();
    ++head_;
  }

  void clear() {
    while (!empty()) pop_front();
  }

  /// Grows capacity to the next power of two >= `n` up front (contents
  /// preserved; no-op when already that large). Callers that know their
  /// occupancy bound — the merge shards' per-lane credit budget — reserve
  /// at wiring time so the steady state never pays a growth allocation.
  void reserve(size_t n) {
    if (n <= slots_.size()) return;
    size_t target = slots_.size() == 0 ? kInitialCapacity : slots_.size();
    while (target < n) target *= 2;
    GrowTo(target);
  }

 private:
  void Grow() {
    GrowTo(slots_.size() == 0 ? kInitialCapacity : slots_.size() * 2);
  }

  void GrowTo(size_t new_capacity) {
    std::vector<T> grown(new_capacity);
    const size_t count = size();
    for (size_t i = 0; i < count; ++i) {
      grown[i] = std::move(slots_[(head_ + i) & mask_]);
    }
    slots_ = std::move(grown);
    mask_ = new_capacity - 1;
    head_ = 0;
    tail_ = count;
  }

  static constexpr size_t kInitialCapacity = 16;

  size_t capacity_limit_ = 0;
  std::vector<T> slots_;
  size_t mask_ = 0;
  /// Monotone indices; position = index & mask_. head_ == tail_ means
  /// empty, tail_ - head_ == capacity means full.
  size_t head_ = 0;
  size_t tail_ = 0;
};

}  // namespace pldp

#endif  // PLDP_RUNTIME_RING_BUFFER_H_
