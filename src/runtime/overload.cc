// Copyright 2026 The PLDP Authors.

#include "runtime/overload.h"

namespace pldp {

const char* OverloadPolicyName(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock:
      return "block";
    case OverloadPolicy::kShedOldest:
      return "shed-oldest";
    case OverloadPolicy::kShedBySubject:
      return "shed-by-subject";
  }
  return "unknown";
}

StatusOr<OverloadPolicy> ParseOverloadPolicy(const std::string& name) {
  if (name == "block") return OverloadPolicy::kBlock;
  if (name == "shed-oldest") return OverloadPolicy::kShedOldest;
  if (name == "shed-by-subject") return OverloadPolicy::kShedBySubject;
  return Status::InvalidArgument(
      "unknown overload policy '" + name +
      "' (expected block | shed-oldest | shed-by-subject)");
}

}  // namespace pldp
