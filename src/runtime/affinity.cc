// Copyright 2026 The PLDP Authors.

#include "runtime/affinity.h"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace pldp {

bool PinCurrentThreadToCore(int core) {
#if defined(__linux__)
  if (core < 0 || static_cast<size_t>(core) >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<size_t>(core), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

size_t AvailableCoreCount() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

}  // namespace pldp
