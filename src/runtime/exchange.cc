// Copyright 2026 The PLDP Authors.

#include "runtime/exchange.h"

#include <utility>

#include "runtime/backoff.h"

namespace pldp {

ExchangeFabric::ExchangeFabric(size_t producers, size_t consumers,
                               size_t lane_capacity,
                               size_t reorder_capacity)
    : producers_(producers < 1 ? 1 : producers),
      consumers_(consumers < 1 ? 1 : consumers) {
  const size_t credits = reorder_capacity == 0
                             ? kDefaultExchangeReorderCapacity
                             : reorder_capacity;
  lanes_.reserve(producers_ * consumers_);
  for (size_t i = 0; i < producers_ * consumers_; ++i) {
    lanes_.push_back(std::make_unique<ExchangeLane>(lane_capacity, credits));
  }
}

std::vector<ExchangeLane*> ExchangeFabric::Row(size_t producer) {
  std::vector<ExchangeLane*> row;
  row.reserve(consumers_);
  for (size_t c = 0; c < consumers_; ++c) row.push_back(&lane(producer, c));
  return row;
}

std::vector<ExchangeLane*> ExchangeFabric::Column(size_t consumer) {
  std::vector<ExchangeLane*> column;
  column.reserve(producers_);
  for (size_t p = 0; p < producers_; ++p) {
    column.push_back(&lane(p, consumer));
  }
  return column;
}

ExchangeEmitter::ExchangeEmitter(std::vector<ExchangeLane*> row,
                                 ShardKeyFn key_fn, ExchangeFabric* fabric)
    : row_(std::move(row)),
      router_(row_.size(), std::move(key_fn)),
      fabric_(fabric) {}

Status ExchangeEmitter::PushToLane(size_t consumer, ExchangeItem item) {
  Backoff backoff;
  bool waited = false;
  while (!row_[consumer]->queue.TryPush(std::move(item))) {
    if (fabric_->aborted()) {
      return Status::FailedPrecondition("exchange fabric aborted");
    }
    waited = true;
    backoff.Wait();
  }
  if (waited) {
    // order: relaxed; telemetry only.
    backpressure_waits_.fetch_add(1, std::memory_order_relaxed);
    if (obs_.backpressure_waits) obs_.backpressure_waits->Inc();
  }
  return Status::OK();
}

Status ExchangeEmitter::AcquireCreditSlow(ExchangeLane& lane) {
  // One count per wait episode (mirrors the backpressure-wait accounting).
  // order: relaxed; telemetry only.
  credit_exhausted_waits_.fetch_add(1, std::memory_order_relaxed);
  if (obs_.credit_exhausted_waits) obs_.credit_exhausted_waits->Inc();
  // Publish the exact frontier before blocking: every future item of this
  // row has key >= (trigger_, sub_next_) — including the one we are about
  // to emit. This lets the merge release every buffered item strictly
  // below the frontier even though this row has gone quiet, which returns
  // the credits we are waiting for. Without it, two producers blocked on
  // each other's unreleased items would deadlock the merge.
  PLDP_RETURN_IF_ERROR(BroadcastKey(ExchangeKey{trigger_, sub_next_}));
  Backoff backoff;
  // order: acquire pairs with the consumer's release credit return — the
  // buffer slot it freed must be visible before we fill it again.
  while (lane.credits.load(std::memory_order_acquire) == 0) {
    if (fabric_->aborted()) {
      return Status::FailedPrecondition("exchange fabric aborted");
    }
    backoff.Wait();
  }
  return Status::OK();
}

Status ExchangeEmitter::Emit(const Event& event) {
  driver_role_.Assert();
  ExchangeItem item;
  item.key = ExchangeKey{trigger_, sub_next_++};
  item.event = event;
  const size_t consumer = router_.ShardOf(item.event);
  ExchangeLane& lane = *row_[consumer];
  // One credit per event. Only this thread decrements (single producer
  // per lane), so a non-zero read cannot underflow on the fetch_sub.
  // order: acquire pairs with the consumer's release credit return.
  if (lane.credits.load(std::memory_order_acquire) == 0) {
    PLDP_RETURN_IF_ERROR(AcquireCreditSlow(lane));
  }
  // order: acq_rel; the RMW joins the release sequence on the counter so
  // the consumer's next return composes with ours, and the acquire half
  // covers a consume that raced past the load above.
  lane.credits.fetch_sub(1, std::memory_order_acq_rel);
  PLDP_RETURN_IF_ERROR(PushToLane(consumer, std::move(item)));
  // order: relaxed; telemetry only.
  forwarded_.fetch_add(1, std::memory_order_relaxed);
  if (obs_.forwarded) obs_.forwarded->Inc();
  return Status::OK();
}

Status ExchangeEmitter::BroadcastKey(ExchangeKey bound) {
  if (broadcast_any_ && bound <= last_broadcast_) return Status::OK();
  for (size_t c = 0; c < row_.size(); ++c) {
    ExchangeItem item;
    item.key = bound;
    item.watermark = true;
    PLDP_RETURN_IF_ERROR(PushToLane(c, std::move(item)));
  }
  last_broadcast_ = bound;
  broadcast_any_ = true;
  // order: relaxed; telemetry only.
  watermarks_.fetch_add(1, std::memory_order_relaxed);
  if (obs_.watermarks) obs_.watermarks->Inc();
  return Status::OK();
}

Status ExchangeEmitter::Broadcast(uint64_t bound) {
  driver_role_.Assert();
  return BroadcastKey(ExchangeKey{bound, 0});
}

ExchangeEmitterStats ExchangeEmitter::stats() const {
  ExchangeEmitterStats s;
  // order: relaxed on all four; independent monotonic telemetry counters.
  s.forwarded =
      static_cast<size_t>(forwarded_.load(std::memory_order_relaxed));
  s.watermarks =
      static_cast<size_t>(watermarks_.load(std::memory_order_relaxed));
  // order: relaxed; see above.
  s.backpressure_waits = static_cast<size_t>(
      backpressure_waits_.load(std::memory_order_relaxed));
  s.credit_exhausted_waits = static_cast<size_t>(
      credit_exhausted_waits_.load(std::memory_order_relaxed));
  return s;
}

}  // namespace pldp
