// Copyright 2026 The PLDP Authors.

#include "runtime/shard.h"

#include <chrono>
#include <utility>
#include <vector>

namespace pldp {
namespace {

// Escalating wait used by both the producer (queue full) and the worker
// (queue empty): burn a few iterations, then yield, then sleep. Keeps
// latency low under load without pinning a core when idle.
class Backoff {
 public:
  void Wait() {
    if (spins_ < kSpinLimit) {
      ++spins_;
    } else if (spins_ < kSpinLimit + kYieldLimit) {
      ++spins_;
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  void Reset() { spins_ = 0; }

 private:
  static constexpr int kSpinLimit = 64;
  static constexpr int kYieldLimit = 64;
  int spins_ = 0;
};

// Worker-side pop burst size: large enough to amortize the release store
// and the backoff bookkeeping, small enough to keep the drain latency of a
// partially filled queue negligible.
constexpr size_t kPopBatch = 256;

}  // namespace

Shard::Shard(size_t index, size_t queue_capacity, uint64_t seed)
    : index_(index),
      queue_(queue_capacity),
      rng_(SplitMix64(seed ^ (0xdecaf000ULL + index)).Next()) {
  engine_.SetCallback([this](const StreamingDetection&) {
    detections_.fetch_add(1, std::memory_order_relaxed);
  });
}

Shard::~Shard() { (void)Stop(); }

StatusOr<size_t> Shard::AddQuery(Pattern pattern, Timestamp window) {
  if (running_) {
    return Status::FailedPrecondition(
        "Shard::AddQuery must precede Start()");
  }
  return engine_.AddQuery(std::move(pattern), window);
}

Status Shard::SetEventSink(std::unique_ptr<ShardEventSink> sink) {
  if (running_) {
    return Status::FailedPrecondition(
        "Shard::SetEventSink must precede Start()");
  }
  sink_ = std::move(sink);
  return Status::OK();
}

Status Shard::Start() {
  if (running_) {
    return Status::FailedPrecondition("shard already running");
  }
  stop_requested_.store(false, std::memory_order_relaxed);
  worker_ = std::thread([this] { RunLoop(); });
  running_ = true;
  return Status::OK();
}

Status Shard::Push(Event event) {
  return PushN(&event, 1);
}

Status Shard::PushN(Event* events, size_t count, size_t* accepted) {
  if (accepted != nullptr) *accepted = 0;
  if (!running_) {
    return Status::FailedPrecondition("shard not running");
  }
  Backoff backoff;
  bool waited = false;
  size_t done = 0;
  while (done < count) {
    // Fail fast instead of spinning forever when the worker is gone (a
    // Push racing Stop(), or a producer outliving the shard's shutdown).
    // Events enqueued before the cutoff still count as pushed; Stop()
    // processes any queue leftovers after joining the worker, so Drain
    // stays consistent even if the worker missed them.
    if (stop_requested_.load(std::memory_order_relaxed)) {
      if (done > 0) pushed_.fetch_add(done, std::memory_order_relaxed);
      if (accepted != nullptr) *accepted = done;
      return Status::FailedPrecondition("push after shard stop");
    }
    const size_t n = queue_.TryPushN(events + done, count - done);
    if (n == 0) {
      waited = true;
      backoff.Wait();
    } else {
      done += n;
      backoff.Reset();
    }
  }
  if (waited) backpressure_waits_.fetch_add(1, std::memory_order_relaxed);
  pushed_.fetch_add(count, std::memory_order_relaxed);
  if (accepted != nullptr) *accepted = count;
  return Status::OK();
}

Status Shard::Drain() {
  if (!running_) return Status::OK();
  const uint64_t target = pushed_.load(std::memory_order_relaxed);
  Backoff backoff;
  while (processed_.load(std::memory_order_acquire) < target) {
    backoff.Wait();
  }
  return Status::OK();
}

Status Shard::Stop() {
  if (!running_) return Status::OK();
  Status drained = Drain();
  stop_requested_.store(true, std::memory_order_release);
  if (worker_.joinable()) worker_.join();
  // A push racing the stop flag can land an event after the worker's final
  // empty-queue check. The join above makes this thread the sole owner, so
  // absorb any leftovers here — no pushed event is ever silently dropped,
  // and a concurrent Drain() waiting on processed_ is released.
  Event leftover;
  while (queue_.TryPop(leftover)) {
    (void)engine_.OnEvent(leftover);
    if (sink_ != nullptr) sink_->OnShardEvent(leftover);
    processed_.fetch_add(1, std::memory_order_release);
  }
  running_ = false;
  return drained;
}

ShardStats Shard::stats() const {
  ShardStats s;
  s.shard_index = index_;
  s.events_processed =
      static_cast<size_t>(processed_.load(std::memory_order_acquire));
  s.detections =
      static_cast<size_t>(detections_.load(std::memory_order_relaxed));
  s.backpressure_waits = static_cast<size_t>(
      backpressure_waits_.load(std::memory_order_relaxed));
  return s;
}

void Shard::RunLoop() {
  Backoff backoff;
  std::vector<Event> batch(kPopBatch);
  for (;;) {
    const size_t n = queue_.TryPopN(batch.data(), batch.size());
    if (n > 0) {
      backoff.Reset();
      for (size_t i = 0; i < n; ++i) {
        // The engine's status is always OK today (OnEvent cannot fail); if
        // a future engine surfaces errors we will carry them to Drain().
        (void)engine_.OnEvent(batch[i]);
        if (sink_ != nullptr) sink_->OnShardEvent(batch[i]);
      }
      // One release store per burst: the publication point Drain acquires.
      processed_.fetch_add(n, std::memory_order_release);
      continue;
    }
    if (stop_requested_.load(std::memory_order_acquire) &&
        queue_.ApproxEmpty()) {
      return;
    }
    backoff.Wait();
  }
}

}  // namespace pldp
