// Copyright 2026 The PLDP Authors.

#include "runtime/shard.h"

#include <utility>

#include "common/logging.h"
#include "runtime/backoff.h"

namespace pldp {
namespace {

// Worker-side pop burst size: large enough to amortize the release store
// and the backoff bookkeeping, small enough to keep the drain latency of a
// partially filled queue negligible.
constexpr size_t kPopBatch = 256;

}  // namespace

Shard::Shard(size_t index, size_t queue_capacity, uint64_t seed)
    : index_(index),
      queue_(queue_capacity),
      rng_(SplitMix64(seed ^ (0xdecaf000ULL + index)).Next()) {
  engine_.SetCallback([this](const StreamingDetection& d) {
    detections_.fetch_add(1, std::memory_order_relaxed);
    if (user_callback_) user_callback_(d);
  });
}

Shard::~Shard() { (void)Stop(); }

StatusOr<size_t> Shard::AddQuery(Pattern pattern, Timestamp window) {
  if (running_) {
    return Status::FailedPrecondition(
        "Shard::AddQuery must precede Start()");
  }
  return engine_.AddQuery(std::move(pattern), window);
}

Status Shard::SetEventSink(std::unique_ptr<ShardEventSink> sink) {
  if (running_) {
    return Status::FailedPrecondition(
        "Shard::SetEventSink must precede Start()");
  }
  sink_ = std::move(sink);
  if (sink_ != nullptr) {
    // Emitters wired in before the sink existed still reach it.
    MutexLock lock(reg_mu_);
    for (ExchangeHook& hook : hooks_) {
      sink_->AttachExchangeEmitter(hook.emitter.get());
    }
  }
  return Status::OK();
}

Status Shard::SetInstruments(const obs::ShardInstruments& instruments) {
  if (running_) {
    return Status::FailedPrecondition(
        "Shard::SetInstruments must precede Start()");
  }
  obs_ = instruments;
  return Status::OK();
}

Status Shard::SetDetectionCallback(DetectionCallback callback) {
  if (running_) {
    return Status::FailedPrecondition(
        "Shard::SetDetectionCallback must precede Start()");
  }
  user_callback_ = std::move(callback);
  return Status::OK();
}

Status Shard::AddExchange(std::unique_ptr<ExchangeEmitter> emitter,
                          bool forward_raw_events) {
  if (running_) {
    return Status::FailedPrecondition(
        "Shard::AddExchange must precede Start()");
  }
  if (emitter == nullptr) {
    return Status::InvalidArgument("emitter must not be null");
  }
  // The lock makes a late AddExchange well-defined against a concurrent
  // stats()/exchange_count() scrape: push_back can reallocate the vector
  // under an unlocked reader (the bug -Wthread-safety pinned down once
  // hooks_ was annotated; regression: runtime_shard_race_test).
  MutexLock lock(reg_mu_);
  ExchangeHook hook;
  hook.emitter = std::move(emitter);
  hook.forward_raw_events = forward_raw_events;
  hooks_.push_back(std::move(hook));
  if (sink_ != nullptr) {
    sink_->AttachExchangeEmitter(hooks_.back().emitter.get());
  }
  return Status::OK();
}

std::vector<Shard::ExchangeHookRef> Shard::SnapshotHooks() const {
  MutexLock lock(reg_mu_);
  std::vector<ExchangeHookRef> refs;
  refs.reserve(hooks_.size());
  for (const ExchangeHook& hook : hooks_) {
    refs.push_back({hook.emitter.get(), hook.forward_raw_events});
  }
  return refs;
}

Status Shard::Start() {
  if (running_) {
    return Status::FailedPrecondition("shard already running");
  }
  stop_requested_.store(false, std::memory_order_relaxed);
  worker_ = std::thread([this] {
    worker_role_.Acquire();
    RunLoop();
    worker_role_.Release();
  });
  running_ = true;
  return Status::OK();
}

Status Shard::Push(Event event) {
  producer_role_.Assert();  // Single-producer contract (see header).
  StampedEvent stamped;
  stamped.seq = auto_seq_++;
  stamped.event = std::move(event);
  return PushStampedN(&stamped, 1);
}

Status Shard::PushN(Event* events, size_t count, size_t* accepted) {
  producer_role_.Assert();  // Single-producer contract (see header).
  scratch_.clear();
  scratch_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    StampedEvent stamped;
    stamped.seq = auto_seq_++;
    stamped.event = std::move(events[i]);
    scratch_.push_back(std::move(stamped));
  }
  return PushStampedN(scratch_.data(), count, accepted);
}

Status Shard::PushStampedN(StampedEvent* events, size_t count,
                           size_t* accepted) {
  if (accepted != nullptr) *accepted = 0;
  if (!running_) {
    return Status::FailedPrecondition("shard not running");
  }
  Backoff backoff;
  bool waited = false;
  size_t done = 0;
  while (done < count) {
    // Fail fast instead of spinning forever when the worker is gone (a
    // Push racing Stop(), or a producer outliving the shard's shutdown).
    // Events enqueued before the cutoff still count as pushed; Stop()
    // processes any queue leftovers after joining the worker, so Drain
    // stays consistent even if the worker missed them.
    if (stop_requested_.load(std::memory_order_relaxed)) {
      if (done > 0) pushed_.fetch_add(done, std::memory_order_relaxed);
      if (accepted != nullptr) *accepted = done;
      PLDP_LOG(Warning) << "shard " << index_ << ": push after stop, "
                        << (count - done) << " of " << count
                        << " events rejected";
      return Status::FailedPrecondition("push after shard stop");
    }
    const size_t n = queue_.TryPushN(events + done, count - done);
    if (n == 0) {
      waited = true;
      backoff.Wait();
    } else {
      done += n;
      backoff.Reset();
    }
  }
  if (waited) {
    backpressure_waits_.fetch_add(1, std::memory_order_relaxed);
    if (obs_.backpressure_waits) obs_.backpressure_waits->Inc();
  }
  pushed_.fetch_add(count, std::memory_order_relaxed);
  if (accepted != nullptr) *accepted = count;
  return Status::OK();
}

size_t Shard::TryPushStampedN(StampedEvent* events, size_t count) {
  if (!running_ || stop_requested_.load(std::memory_order_relaxed)) {
    return 0;
  }
  const size_t n = queue_.TryPushN(events, count);
  if (n > 0) pushed_.fetch_add(n, std::memory_order_relaxed);
  return n;
}

Status Shard::Drain() {
  if (!running_) return Status::OK();
  const uint64_t target = pushed_.load(std::memory_order_relaxed);
  Backoff backoff;
  while (processed_.load(std::memory_order_acquire) < target) {
    backoff.Wait();
  }
  return Status::OK();
}

StatusOr<uint64_t> Shard::PostCommand(uint32_t kind, uint64_t payload) {
  if (!running_) {
    return Status::FailedPrecondition("shard not running");
  }
  cmd_payload_.store(payload, std::memory_order_relaxed);
  cmd_kind_.store(kind, std::memory_order_relaxed);
  return cmd_gen_.fetch_add(1, std::memory_order_release) + 1;
}

Status Shard::WaitCommandAck(uint64_t token) {
  Backoff backoff;
  while (cmd_ack_.load(std::memory_order_acquire) < token) {
    if (stop_requested_.load(std::memory_order_relaxed)) {
      return Status::FailedPrecondition("shard stopping before command ran");
    }
    backoff.Wait();
  }
  return Status::OK();
}

Status Shard::RequestCommand(uint32_t kind, uint64_t payload) {
  PLDP_ASSIGN_OR_RETURN(uint64_t token, PostCommand(kind, payload));
  return WaitCommandAck(token);
}

Status Shard::RequestFlushWatermark(uint64_t bound) {
  return RequestCommand(kCmdFlushWatermark, bound);
}

Status Shard::RequestFinish(uint64_t finish_seq) {
  return RequestCommand(kCmdFinish, finish_seq);
}

StatusOr<uint64_t> Shard::PostFinish(uint64_t finish_seq) {
  return PostCommand(kCmdFinish, finish_seq);
}

Status Shard::Stop() {
  if (!running_) return Status::OK();
  Status drained = Drain();
  stop_requested_.store(true, std::memory_order_release);
  if (worker_.joinable()) worker_.join();
  // A push racing the stop flag can land an event after the worker's final
  // empty-queue check. The join above makes this thread the sole owner —
  // the worker-role handoff — so absorb any leftovers here: no pushed
  // event is ever silently dropped, and a concurrent Drain() waiting on
  // processed_ is released.
  worker_role_.Acquire();
  const std::vector<ExchangeHookRef> hooks = SnapshotHooks();
  StampedEvent leftover;
  while (queue_.TryPop(leftover)) {
    ProcessOne(leftover, hooks);
    if (obs_.events) obs_.events->Inc();
    if (obs_.batch_size) obs_.batch_size->Record(1);
    if (obs_.process_latency_ns) obs_.process_latency_ns->Record(0);
    processed_.fetch_add(1, std::memory_order_release);
  }
  worker_role_.Release();
  running_ = false;
  return drained;
}

ShardStats Shard::stats() const {
  ShardStats s;
  s.shard_index = index_;
  s.events_processed =
      static_cast<size_t>(processed_.load(std::memory_order_acquire));
  s.detections =
      static_cast<size_t>(detections_.load(std::memory_order_relaxed));
  s.backpressure_waits = static_cast<size_t>(
      backpressure_waits_.load(std::memory_order_relaxed));
  MutexLock lock(reg_mu_);
  for (const ExchangeHook& hook : hooks_) {
    const ExchangeEmitterStats e = hook.emitter->stats();
    s.forwarded += e.forwarded;
    s.exchange_backpressure_waits += e.backpressure_waits;
  }
  return s;
}

void Shard::ExecuteCommand(const std::vector<ExchangeHookRef>& hooks) {
  const uint64_t gen = cmd_gen_.load(std::memory_order_acquire);
  if (gen == cmd_ack_.load(std::memory_order_relaxed)) return;
  const uint32_t kind = cmd_kind_.load(std::memory_order_relaxed);
  const uint64_t payload = cmd_payload_.load(std::memory_order_relaxed);
  switch (kind) {
    case kCmdFlushWatermark:
      // The emitters skip bounds they already passed, so a stale request
      // (issued before newer idle watermarks) is free.
      for (const ExchangeHookRef& hook : hooks) {
        (void)hook.emitter->Broadcast(payload);
      }
      break;
    case kCmdFinish:
      // End-of-stream: finalize-time sink output first (stamped with the
      // finish bound), then close every lane of every row for good.
      if (sink_ != nullptr) sink_->OnShardFinish(payload);
      for (const ExchangeHookRef& hook : hooks) {
        (void)hook.emitter->Broadcast(kExchangeSeqEnd);
      }
      break;
    default:
      break;
  }
  cmd_ack_.store(gen, std::memory_order_release);
}

void Shard::ProcessOne(const StampedEvent& stamped,
                       const std::vector<ExchangeHookRef>& hooks) {
  // One exchange trigger scope per event and per lane-group: everything
  // emitted while processing it — raw forwards and sink-driven output
  // alike — is stamped (seq, 0), (seq, 1), ... independently on every
  // group's row.
  for (const ExchangeHookRef& hook : hooks) {
    hook.emitter->BeginTrigger(stamped.seq);
  }
  // The engine's status is always OK today (OnEvent cannot fail); if
  // a future engine surfaces errors we will carry them to Drain().
  (void)engine_.OnEvent(stamped.event);
  if (sink_ != nullptr) sink_->OnShardEvent(stamped.event);
  for (const ExchangeHookRef& hook : hooks) {
    if (hook.forward_raw_events) (void)hook.emitter->Emit(stamped.event);
  }
  last_seq_ = stamped.seq;
  processed_any_ = true;
}

void Shard::RunLoop() {
  Backoff backoff;
  std::vector<StampedEvent> batch(kPopBatch);
  // One snapshot for the thread's lifetime: AddExchange refuses once the
  // shard runs, so the list is frozen and the per-event path stays off
  // the registration mutex.
  const std::vector<ExchangeHookRef> hooks = SnapshotHooks();
  for (;;) {
    const size_t n = queue_.TryPopN(batch.data(), batch.size());
    if (n > 0) {
      backoff.Reset();
      if (obs_.batch_size) obs_.batch_size->Record(n);
      // Chained clock reads: one MonotonicNowNs per event, each delta is
      // that event's full processing latency (engine + sink + exchange).
      uint64_t t_prev = obs_.process_latency_ns ? obs::MonotonicNowNs() : 0;
      for (size_t i = 0; i < n; ++i) {
        ProcessOne(batch[i], hooks);
        if (obs_.process_latency_ns) {
          const uint64_t t_now = obs::MonotonicNowNs();
          obs_.process_latency_ns->Record(t_now - t_prev);
          t_prev = t_now;
        }
      }
      if (obs_.events) obs_.events->Inc(n);
      // One release store per burst: the publication point Drain acquires.
      processed_.fetch_add(n, std::memory_order_release);
      // Commands are handled on burst boundaries too, so a saturating
      // producer cannot starve a drain barrier.
      ExecuteCommand(hooks);
      continue;
    }
    ExecuteCommand(hooks);
    if (stop_requested_.load(std::memory_order_acquire) &&
        queue_.ApproxEmpty()) {
      return;
    }
    // Idle: let downstream merges progress past everything we processed —
    // or, when the producer vouches that every event below its floor has
    // been pushed somewhere and our queue is empty, past the global floor
    // (a shard starved by routing skew must not silence its lanes).
    // Broadcast dedups repeat bounds, so the steady idle loop stays free.
    if (!hooks.empty()) {
      uint64_t bound = processed_any_ ? last_seq_ + 1 : 0;
      const uint64_t floor =
          producer_floor_.load(std::memory_order_acquire);
      // The floor's pushes happened before its release store, so an empty
      // queue observed after the acquire means we processed all of ours.
      if (floor > bound && queue_.ApproxEmpty()) bound = floor;
      if (bound > 0) {
        for (const ExchangeHookRef& hook : hooks) {
          (void)hook.emitter->Broadcast(bound);
        }
      }
    }
    backoff.Wait();
  }
}

}  // namespace pldp
