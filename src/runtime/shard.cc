// Copyright 2026 The PLDP Authors.

#include "runtime/shard.h"

#include <chrono>
#include <utility>

namespace pldp {
namespace {

// Escalating wait used by both the producer (queue full) and the worker
// (queue empty): burn a few iterations, then yield, then sleep. Keeps
// latency low under load without pinning a core when idle.
class Backoff {
 public:
  void Wait() {
    if (spins_ < kSpinLimit) {
      ++spins_;
    } else if (spins_ < kSpinLimit + kYieldLimit) {
      ++spins_;
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  void Reset() { spins_ = 0; }

 private:
  static constexpr int kSpinLimit = 64;
  static constexpr int kYieldLimit = 64;
  int spins_ = 0;
};

}  // namespace

Shard::Shard(size_t index, size_t queue_capacity, uint64_t seed)
    : index_(index),
      queue_(queue_capacity),
      rng_(SplitMix64(seed ^ (0xdecaf000ULL + index)).Next()) {}

Shard::~Shard() { (void)Stop(); }

StatusOr<size_t> Shard::AddQuery(Pattern pattern, Timestamp window) {
  if (running_) {
    return Status::FailedPrecondition(
        "Shard::AddQuery must precede Start()");
  }
  return engine_.AddQuery(std::move(pattern), window);
}

Status Shard::Start() {
  if (running_) {
    return Status::FailedPrecondition("shard already running");
  }
  stop_requested_.store(false, std::memory_order_relaxed);
  worker_ = std::thread([this] { RunLoop(); });
  running_ = true;
  return Status::OK();
}

Status Shard::Push(Event event) {
  if (!running_) {
    return Status::FailedPrecondition("shard not running");
  }
  Backoff backoff;
  bool waited = false;
  while (!queue_.TryPush(std::move(event))) {
    waited = true;
    backoff.Wait();
  }
  if (waited) ++backpressure_waits_;
  ++pushed_;
  return Status::OK();
}

Status Shard::Drain() {
  if (!running_) return Status::OK();
  Backoff backoff;
  while (processed_.load(std::memory_order_acquire) < pushed_) {
    backoff.Wait();
  }
  return Status::OK();
}

Status Shard::Stop() {
  if (!running_) return Status::OK();
  Status drained = Drain();
  stop_requested_.store(true, std::memory_order_release);
  if (worker_.joinable()) worker_.join();
  running_ = false;
  return drained;
}

ShardStats Shard::stats() const {
  ShardStats s;
  s.shard_index = index_;
  s.events_processed =
      static_cast<size_t>(processed_.load(std::memory_order_acquire));
  s.detections = engine_.total_detections();
  s.backpressure_waits = static_cast<size_t>(backpressure_waits_);
  return s;
}

void Shard::RunLoop() {
  Backoff backoff;
  Event event;
  for (;;) {
    if (queue_.TryPop(event)) {
      backoff.Reset();
      // The engine's status is always OK today (OnEvent cannot fail); if a
      // future engine surfaces errors we will carry them to Drain().
      (void)engine_.OnEvent(event);
      processed_.fetch_add(1, std::memory_order_release);
      continue;
    }
    if (stop_requested_.load(std::memory_order_acquire) &&
        queue_.ApproxEmpty()) {
      return;
    }
    backoff.Wait();
  }
}

}  // namespace pldp
