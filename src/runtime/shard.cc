// Copyright 2026 The PLDP Authors.

#include "runtime/shard.h"

#include <limits>
#include <utility>

#include "cep/predicate.h"
#include "common/logging.h"
#include "runtime/affinity.h"
#include "runtime/backoff.h"

namespace pldp {
namespace {

// Worker-side pop burst size: large enough to amortize the release store
// and the backoff bookkeeping, small enough to keep the drain latency of a
// partially filled queue negligible.
constexpr size_t kPopBatch = 256;

}  // namespace

Shard::Shard(size_t index, size_t queue_capacity, uint64_t seed)
    : index_(index),
      queue_(queue_capacity),
      rng_(SplitMix64(seed ^ (0xdecaf000ULL + index)).Next()) {
  queue_.SetWaker(&doorbell_);
  engine_.SetCallback([this](const StreamingDetection& d) {
    // order: relaxed; telemetry only.
    detections_.fetch_add(1, std::memory_order_relaxed);
    if (user_callback_) user_callback_(d);
  });
}

Shard::~Shard() { (void)Stop(); }

StatusOr<size_t> Shard::AddQuery(Pattern pattern, Timestamp window) {
  // order: relaxed; pre-start guard, orchestrator-serialized.
  if (running_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition(
        "Shard::AddQuery must precede Start()");
  }
  return engine_.AddQuery(std::move(pattern), window);
}

Status Shard::SetEventSink(std::unique_ptr<ShardEventSink> sink) {
  // order: relaxed; pre-start guard, orchestrator-serialized.
  if (running_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition(
        "Shard::SetEventSink must precede Start()");
  }
  sink_ = std::move(sink);
  if (sink_ != nullptr) {
    // Emitters wired in before the sink existed still reach it.
    MutexLock lock(reg_mu_);
    for (ExchangeHook& hook : hooks_) {
      sink_->AttachExchangeEmitter(hook.emitter.get());
    }
  }
  return Status::OK();
}

Status Shard::SetInstruments(const obs::ShardInstruments& instruments) {
  // order: relaxed; pre-start guard, orchestrator-serialized.
  if (running_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition(
        "Shard::SetInstruments must precede Start()");
  }
  obs_ = instruments;
  return Status::OK();
}

Status Shard::SetDetectionCallback(DetectionCallback callback) {
  // order: relaxed; pre-start guard, orchestrator-serialized.
  if (running_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition(
        "Shard::SetDetectionCallback must precede Start()");
  }
  user_callback_ = std::move(callback);
  return Status::OK();
}

Status Shard::EnableMultiProducer(size_t producer_count) {
  // order: relaxed; pre-start guard, orchestrator-serialized.
  if (running_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition(
        "Shard::EnableMultiProducer must precede Start()");
  }
  if (producer_count == 0) {
    return Status::InvalidArgument("producer_count must be >= 1");
  }
  lanes_.clear();
  lanes_.reserve(producer_count);
  for (size_t p = 0; p < producer_count; ++p) {
    // Each producer gets the full configured capacity: per-lane
    // backpressure then behaves like single-lane mode per producer.
    lanes_.push_back(std::make_unique<SpscQueue<StampedEvent>>(
        queue_.capacity()));
    lanes_.back()->SetWaker(&doorbell_);
  }
  lane_floors_ = std::make_unique<Atomic<uint64_t>[]>(producer_count);
  for (size_t p = 0; p < producer_count; ++p) {
    // order: relaxed; pre-start initialization, Start() synchronizes.
    lane_floors_[p].store(0, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status Shard::AddExchange(std::unique_ptr<ExchangeEmitter> emitter,
                          bool forward_raw_events) {
  // order: relaxed; pre-start guard, orchestrator-serialized.
  if (running_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition(
        "Shard::AddExchange must precede Start()");
  }
  if (emitter == nullptr) {
    return Status::InvalidArgument("emitter must not be null");
  }
  // The lock makes a late AddExchange well-defined against a concurrent
  // stats()/exchange_count() scrape: push_back can reallocate the vector
  // under an unlocked reader (the bug -Wthread-safety pinned down once
  // hooks_ was annotated; regression: runtime_shard_race_test).
  MutexLock lock(reg_mu_);
  ExchangeHook hook;
  hook.emitter = std::move(emitter);
  hook.forward_raw_events = forward_raw_events;
  hooks_.push_back(std::move(hook));
  if (sink_ != nullptr) {
    sink_->AttachExchangeEmitter(hooks_.back().emitter.get());
  }
  return Status::OK();
}

std::vector<Shard::ExchangeHookRef> Shard::SnapshotHooks() const {
  MutexLock lock(reg_mu_);
  std::vector<ExchangeHookRef> refs;
  refs.reserve(hooks_.size());
  for (const ExchangeHook& hook : hooks_) {
    refs.push_back({hook.emitter.get(), hook.forward_raw_events});
  }
  return refs;
}

Status Shard::Start() {
  // order: relaxed; orchestrator-serialized (one thread calls Start/Stop).
  if (running_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("shard already running");
  }
  // order: relaxed; the thread launch below is the synchronization edge.
  stop_requested_.store(false, std::memory_order_relaxed);
  doorbell_.SetCounters(obs_.parks, obs_.wakes);
  worker_ = std::thread([this] {
    if (affinity_core_ >= 0) (void)PinCurrentThreadToCore(affinity_core_);
    worker_role_.Acquire();
    if (lanes_.empty()) {
      RunLoop();
    } else {
      MultiRunLoop();
    }
    worker_role_.Release();
  });
  // order: relaxed; advisory flag for running() observers.
  running_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

Status Shard::Push(Event event) {
  producer_role_.Assert();  // Single-producer contract (see header).
  StampedEvent stamped;
  stamped.seq = auto_seq_++;
  stamped.event = std::move(event);
  return PushStampedN(&stamped, 1);
}

Status Shard::PushN(Event* events, size_t count, size_t* accepted) {
  producer_role_.Assert();  // Single-producer contract (see header).
  scratch_.clear();
  scratch_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    StampedEvent stamped;
    stamped.seq = auto_seq_++;
    stamped.event = std::move(events[i]);
    scratch_.push_back(std::move(stamped));
  }
  return PushStampedN(scratch_.data(), count, accepted);
}

Status Shard::PushStampedN(StampedEvent* events, size_t count,
                           size_t* accepted) {
  if (accepted != nullptr) *accepted = 0;
  // order: relaxed; advisory guard — a racing Stop is caught by the
  // fail-fast stop_requested_ check inside the push loop.
  if (!running_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("shard not running");
  }
  if (!lanes_.empty()) {
    return Status::FailedPrecondition(
        "shard is in multi-producer mode; use PushStampedLaneN");
  }
  Backoff backoff;
  bool waited = false;
  size_t done = 0;
  while (done < count) {
    // Fail fast instead of spinning forever when the worker is gone (a
    // Push racing Stop(), or a producer outliving the shard's shutdown).
    // Events enqueued before the cutoff still count as pushed; Stop()
    // processes any queue leftovers after joining the worker, so Drain
    // stays consistent even if the worker missed them.
    // order: relaxed; fail-fast hint — Stop()'s post-join leftover pass
    // makes the cutoff exact regardless of what this load observes.
    if (stop_requested_.load(std::memory_order_relaxed)) {
      // order: relaxed; Drain reads pushed_ from the producer thread.
      if (done > 0) pushed_.fetch_add(done, std::memory_order_relaxed);
      if (accepted != nullptr) *accepted = done;
      PLDP_LOG(Warning) << "shard " << index_ << ": push after stop, "
                        << (count - done) << " of " << count
                        << " events rejected";
      return Status::FailedPrecondition("push after shard stop");
    }
    const size_t n = queue_.TryPushN(events + done, count - done);
    if (n == 0) {
      waited = true;
      backoff.Wait();
    } else {
      done += n;
      backoff.Reset();
    }
  }
  if (waited) {
    // order: relaxed; telemetry only.
    backpressure_waits_.fetch_add(1, std::memory_order_relaxed);
    if (obs_.backpressure_waits) obs_.backpressure_waits->Inc();
  }
  // order: relaxed; Drain reads it from the producer thread itself (or
  // under an external happens-before), and the queue push above already
  // published the events with release.
  pushed_.fetch_add(count, std::memory_order_relaxed);
  if (accepted != nullptr) *accepted = count;
  return Status::OK();
}

size_t Shard::TryPushStampedN(StampedEvent* events, size_t count) {
  // order: relaxed on both flags; advisory fail-fast guards (see
  // PushStampedN).
  if (!running_.load(std::memory_order_relaxed) || !lanes_.empty() ||
      stop_requested_.load(std::memory_order_relaxed)) {
    return 0;
  }
  const size_t n = queue_.TryPushN(events, count);
  // order: relaxed; same contract as PushStampedN's pushed_ update.
  if (n > 0) pushed_.fetch_add(n, std::memory_order_relaxed);
  return n;
}

Status Shard::PushStampedLaneN(size_t producer, StampedEvent* events,
                               size_t count, size_t* accepted,
                               StallFn stall, void* stall_ctx) {
  if (accepted != nullptr) *accepted = 0;
  if (producer >= lanes_.size()) {
    return Status::InvalidArgument("producer lane index out of range");
  }
  // order: relaxed; advisory guard (see PushStampedN).
  if (!running_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("shard not running");
  }
  SpscQueue<StampedEvent>& lane = *lanes_[producer];
  Backoff backoff;
  bool waited = false;
  size_t done = 0;
  while (done < count) {
    // Same fail-fast-on-stop contract as PushStampedN.
    // order: relaxed; fail-fast hint (see PushStampedN).
    if (stop_requested_.load(std::memory_order_relaxed)) {
      // order: relaxed; see PushStampedN.
      if (done > 0) pushed_.fetch_add(done, std::memory_order_relaxed);
      if (accepted != nullptr) *accepted = done;
      PLDP_LOG(Warning) << "shard " << index_ << ": lane " << producer
                        << " push after stop, " << (count - done) << " of "
                        << count << " events rejected";
      return Status::FailedPrecondition("push after shard stop");
    }
    const size_t n = lane.TryPushN(events + done, count - done);
    if (n == 0) {
      waited = true;
      // A persistently full lane means the worker is not merging — which
      // in MPSC mode can be THIS producer's fault structurally: the merge
      // may be gated on a quiescent peer's stale floor that only an
      // ingest barrier would normally refresh, and the barrier can never
      // run while this call blocks. The stall hook breaks the cycle from
      // here (throttled to the post-budget backoff cadence, ~50us).
      if (stall != nullptr && backoff.ShouldPark()) {
        stall(stall_ctx, events[done].seq);
      }
      backoff.Wait();
    } else {
      done += n;
      backoff.Reset();
    }
  }
  if (waited) {
    // order: relaxed; telemetry only.
    backpressure_waits_.fetch_add(1, std::memory_order_relaxed);
    if (obs_.backpressure_waits) obs_.backpressure_waits->Inc();
  }
  // order: relaxed; see PushStampedN's pushed_ update.
  pushed_.fetch_add(count, std::memory_order_relaxed);
  if (accepted != nullptr) *accepted = count;
  return Status::OK();
}

Status Shard::Drain() {
  // order: relaxed; advisory guard.
  if (!running_.load(std::memory_order_relaxed)) return Status::OK();
  // order: relaxed; best-effort snapshot of the push count (see the
  // threading contract in the header).
  const uint64_t target = pushed_.load(std::memory_order_relaxed);
  Backoff backoff;
  // order: acquire pairs with the worker's release — once the count
  // covers the target, the engine/sink effects are visible too.
  while (processed_.load(std::memory_order_acquire) < target) {
    backoff.Wait();
  }
  return Status::OK();
}

StatusOr<uint64_t> Shard::PostCommand(uint32_t kind, uint64_t payload) {
  // order: relaxed; advisory guard (WaitCommandAck fails fast on stop).
  if (!running_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("shard not running");
  }
  // order: relaxed on both; the generation bump below publishes them.
  cmd_payload_.store(payload, std::memory_order_relaxed);
  cmd_kind_.store(kind, std::memory_order_relaxed);
  // order: release publishes payload/kind to the worker's acquire of
  // cmd_gen_.
  const uint64_t token = cmd_gen_.fetch_add(1, std::memory_order_release) + 1;
  doorbell_.Ring();
  return token;
}

Status Shard::WaitCommandAck(uint64_t token) {
  Backoff backoff;
  // order: acquire pairs with the worker's release ack — command side
  // effects (watermarks, finish emissions) are visible once acked.
  while (cmd_ack_.load(std::memory_order_acquire) < token) {
    // order: relaxed; fail-fast hint only.
    if (stop_requested_.load(std::memory_order_relaxed)) {
      return Status::FailedPrecondition("shard stopping before command ran");
    }
    backoff.Wait();
  }
  return Status::OK();
}

Status Shard::RequestCommand(uint32_t kind, uint64_t payload) {
  PLDP_ASSIGN_OR_RETURN(uint64_t token, PostCommand(kind, payload));
  return WaitCommandAck(token);
}

Status Shard::RequestFlushWatermark(uint64_t bound) {
  return RequestCommand(kCmdFlushWatermark, bound);
}

Status Shard::RequestFinish(uint64_t finish_seq) {
  return RequestCommand(kCmdFinish, finish_seq);
}

StatusOr<uint64_t> Shard::PostFinish(uint64_t finish_seq) {
  return PostCommand(kCmdFinish, finish_seq);
}

Status Shard::Stop() {
  // order: relaxed; orchestrator-serialized (one thread calls Start/Stop).
  if (!running_.load(std::memory_order_relaxed)) return Status::OK();
  Status drained = Drain();
  // order: release so work published before the stop request is visible
  // to the worker that observes it (acquire in the run loops).
  stop_requested_.store(true, std::memory_order_release);
  doorbell_.Ring();  // A parked worker must observe the stop flag.
  if (worker_.joinable()) worker_.join();
  // A push racing the stop flag can land an event after the worker's final
  // empty-queue check. The join above makes this thread the sole owner —
  // the worker-role handoff — so absorb any leftovers here: no pushed
  // event is ever silently dropped, and a concurrent Drain() waiting on
  // processed_ is released.
  worker_role_.Acquire();
  const std::vector<ExchangeHookRef> hooks = SnapshotHooks();
  if (lanes_.empty()) {
    StampedEvent leftover;
    while (queue_.TryPop(leftover)) {
      ProcessOne(leftover, hooks);
      if (obs_.events) obs_.events->Inc();
      if (obs_.batch_size) obs_.batch_size->Record(1);
      if (obs_.process_latency_ns) obs_.process_latency_ns->Record(0);
      // order: release; releases a concurrent Drain (see header contract).
      processed_.fetch_add(1, std::memory_order_release);
    }
  } else {
    // Multi-producer leftovers merge across lanes in sequence order
    // (ingest is over, so the floors no longer gate anything).
    const size_t lane_count = lanes_.size();
    std::vector<StampedEvent> heads(lane_count);
    std::vector<char> valid(lane_count, 0);
    for (;;) {
      size_t min_p = lane_count;
      for (size_t p = 0; p < lane_count; ++p) {
        if (!valid[p]) valid[p] = lanes_[p]->TryPop(heads[p]) ? 1 : 0;
        if (valid[p] &&
            (min_p == lane_count || heads[p].seq < heads[min_p].seq)) {
          min_p = p;
        }
      }
      if (min_p == lane_count) break;
      ProcessOne(heads[min_p], hooks);
      if (obs_.events) obs_.events->Inc();
      if (obs_.batch_size) obs_.batch_size->Record(1);
      if (obs_.process_latency_ns) obs_.process_latency_ns->Record(0);
      // order: release; releases a concurrent Drain (see header contract).
      processed_.fetch_add(1, std::memory_order_release);
      valid[min_p] = 0;
    }
  }
  worker_role_.Release();
  // order: relaxed; advisory flag for running() observers.
  running_.store(false, std::memory_order_relaxed);
  return drained;
}

ShardStats Shard::stats() const {
  ShardStats s;
  s.shard_index = index_;
  // order: acquire pairs with the worker's release publication.
  s.events_processed =
      static_cast<size_t>(processed_.load(std::memory_order_acquire));
  // order: relaxed; telemetry only (both counters below too).
  s.detections =
      static_cast<size_t>(detections_.load(std::memory_order_relaxed));
  s.backpressure_waits = static_cast<size_t>(
      backpressure_waits_.load(std::memory_order_relaxed));
  s.parks = static_cast<size_t>(doorbell_.parks());
  s.wakes = static_cast<size_t>(doorbell_.wakes());
  MutexLock lock(reg_mu_);
  for (const ExchangeHook& hook : hooks_) {
    const ExchangeEmitterStats e = hook.emitter->stats();
    s.forwarded += e.forwarded;
    s.exchange_backpressure_waits += e.backpressure_waits;
  }
  return s;
}

void Shard::ExecuteCommand(const std::vector<ExchangeHookRef>& hooks) {
  // order: acquire pairs with PostCommand's release bump, covering the
  // payload/kind stores before it.
  const uint64_t gen = cmd_gen_.load(std::memory_order_acquire);
  // order: relaxed; this thread is cmd_ack_'s only writer.
  if (gen == cmd_ack_.load(std::memory_order_relaxed)) return;
  // order: relaxed on both; published by the acquired generation bump.
  const uint32_t kind = cmd_kind_.load(std::memory_order_relaxed);
  const uint64_t payload = cmd_payload_.load(std::memory_order_relaxed);
  switch (kind) {
    case kCmdFlushWatermark:
      // The emitters skip bounds they already passed, so a stale request
      // (issued before newer idle watermarks) is free.
      for (const ExchangeHookRef& hook : hooks) {
        (void)hook.emitter->Broadcast(payload);
      }
      break;
    case kCmdFinish:
      // End-of-stream: finalize-time sink output first (stamped with the
      // finish bound), then close every lane of every row for good.
      if (sink_ != nullptr) sink_->OnShardFinish(payload);
      for (const ExchangeHookRef& hook : hooks) {
        (void)hook.emitter->Broadcast(kExchangeSeqEnd);
      }
      break;
    default:
      break;
  }
  // order: release publishes the command's side effects to
  // WaitCommandAck's acquire.
  cmd_ack_.store(gen, std::memory_order_release);
}

void Shard::ProcessOne(const StampedEvent& stamped,
                       const std::vector<ExchangeHookRef>& hooks,
                       bool engine_relevant) {
  // One exchange trigger scope per event and per lane-group: everything
  // emitted while processing it — raw forwards and sink-driven output
  // alike — is stamped (seq, 0), (seq, 1), ... independently on every
  // group's row.
  for (const ExchangeHookRef& hook : hooks) {
    hook.emitter->BeginTrigger(stamped.seq);
  }
  // The engine's status is always OK today (OnEvent cannot fail); if
  // a future engine surfaces errors we will carry them to Drain().
  // `engine_relevant` is the batch prefilter's verdict: an event whose
  // type no pattern references is a matcher no-op, so the call is skipped
  // wholesale (pinned equivalent by the EvalBatch fixed-seed tests).
  if (engine_relevant) (void)engine_.OnEvent(stamped.event);
  if (sink_ != nullptr) sink_->OnShardEvent(stamped.event);
  for (const ExchangeHookRef& hook : hooks) {
    if (hook.forward_raw_events) (void)hook.emitter->Emit(stamped.event);
  }
  last_seq_ = stamped.seq;
  processed_any_ = true;
}

void Shard::RunLoop() {
  Backoff backoff;
  std::vector<StampedEvent> batch(kPopBatch);
  // One snapshot for the thread's lifetime: AddExchange refuses once the
  // shard runs, so the list is frozen and the per-event path stays off
  // the registration mutex.
  const std::vector<ExchangeHookRef> hooks = SnapshotHooks();
  // Engine-relevance prefilter: one vectorizable type-compare pass per pop
  // burst replaces a per-event engine dispatch for every event whose type
  // no registered pattern references (cep/predicate.h).
  const std::shared_ptr<const TypeAnyOfPredicate> prefilter =
      MakeTypeAnyOf(engine_.RelevantEventTypes());
  uint64_t relevance[kPopBatch / 64];
  // Sequence bound of the last idle watermark this loop broadcast — the
  // park predicate watches the producer floor against it.
  uint64_t last_idle_bound = 0;
  for (;;) {
    const size_t n = queue_.TryPopN(batch.data(), batch.size());
    if (n > 0) {
      backoff.Reset();
      if (obs_.batch_size) obs_.batch_size->Record(n);
      prefilter->EvalTypesStrided(&batch[0].event, sizeof(StampedEvent), n,
                                  relevance);
      // Chained clock reads: one MonotonicNowNs per event, each delta is
      // that event's full processing latency (engine + sink + exchange).
      uint64_t t_prev = obs_.process_latency_ns ? obs::MonotonicNowNs() : 0;
      for (size_t i = 0; i < n; ++i) {
        const bool relevant =
            ((relevance[i >> 6] >> (i & 63)) & uint64_t{1}) != 0;
        ProcessOne(batch[i], hooks, relevant);
        if (obs_.process_latency_ns) {
          const uint64_t t_now = obs::MonotonicNowNs();
          obs_.process_latency_ns->Record(t_now - t_prev);
          t_prev = t_now;
        }
      }
      if (obs_.events) obs_.events->Inc(n);
      // One release store per burst: the publication point Drain acquires.
      // order: release (see comment above).
      processed_.fetch_add(n, std::memory_order_release);
      // Commands are handled on burst boundaries too, so a saturating
      // producer cannot starve a drain barrier.
      ExecuteCommand(hooks);
      continue;
    }
    ExecuteCommand(hooks);
    // order: acquire pairs with Stop()'s release store.
    if (stop_requested_.load(std::memory_order_acquire) &&
        queue_.ApproxEmpty()) {
      return;
    }
    // Idle: let downstream merges progress past everything we processed —
    // or, when the producer vouches that every event below its floor has
    // been pushed somewhere and our queue is empty, past the global floor
    // (a shard starved by routing skew must not silence its lanes).
    // Broadcast dedups repeat bounds, so the steady idle loop stays free.
    if (!hooks.empty()) {
      uint64_t bound = processed_any_ ? last_seq_ + 1 : 0;
      // order: acquire pairs with NoteProducerFloor's release (the empty
      // check below relies on the covered pushes being visible).
      const uint64_t floor =
          producer_floor_.load(std::memory_order_acquire);
      // The floor's pushes happened before its release store, so an empty
      // queue observed after the acquire means we processed all of ours.
      if (floor > bound && queue_.ApproxEmpty()) bound = floor;
      if (bound > 0) {
        for (const ExchangeHookRef& hook : hooks) {
          (void)hook.emitter->Broadcast(bound);
        }
        last_idle_bound = bound;
      }
    }
    if (backoff.ShouldPark()) {
      // Park until work arrives. The predicate reads only atomics (queue
      // indices, command generation, stop flag, producer floor) — never
      // worker-guarded state — and covers every wake source: a push rings
      // via the queue's waker, PostCommand / Stop / NoteProducerFloor
      // ring directly. See runtime/backoff.h for the lost-wakeup
      // argument; `watch_floor` wakes the loop when there is new idle-
      // watermark progress to broadcast.
      const bool watch_floor = !hooks.empty();
      const uint64_t idle_bound = last_idle_bound;
      (void)doorbell_.ParkUnless([this, watch_floor, idle_bound] {
        if (!queue_.ApproxEmpty()) return true;
        // order: acquire/relaxed, same pairing as ExecuteCommand.
        if (cmd_gen_.load(std::memory_order_acquire) !=
            cmd_ack_.load(std::memory_order_relaxed)) {
          return true;
        }
        // order: acquire pairs with Stop()'s release store.
        if (stop_requested_.load(std::memory_order_acquire)) return true;
        // order: acquire pairs with NoteProducerFloor's release.
        return watch_floor &&
               producer_floor_.load(std::memory_order_acquire) > idle_bound;
      });
      // Woken (or preempted by work) — spin afresh before parking again.
      backoff.Reset();
      continue;
    }
    backoff.Wait();
  }
}

void Shard::MultiRunLoop() {
  Backoff backoff;
  const std::vector<ExchangeHookRef> hooks = SnapshotHooks();
  const size_t lane_count = lanes_.size();
  // Per-lane merge state: the head slot (smallest not-yet-released event
  // of that lane) and the last floor observed from its producer.
  std::vector<StampedEvent> heads(lane_count);
  std::vector<char> valid(lane_count, 0);
  std::vector<uint64_t> floors(lane_count, 0);
  std::vector<StampedEvent> batch;
  batch.reserve(kPopBatch);
  uint64_t last_idle_bound = 0;
  for (;;) {
    // Refill order matters: floor first, head second. A producer release-
    // stores its floor after the pushes it covers, so a floor acquired
    // BEFORE an empty TryPop proves the lane holds nothing below it.
    for (size_t p = 0; p < lane_count; ++p) {
      // order: acquire pairs with NoteLaneFloor's release CAS — the floor
      // only proves emptiness if the covered pushes are visible first.
      floors[p] = lane_floors_[p].load(std::memory_order_acquire);
      if (!valid[p]) valid[p] = lanes_[p]->TryPop(heads[p]) ? 1 : 0;
    }
    // Merge pass: release the minimum head while every headless lane's
    // floor proves it cannot still produce something smaller — the same
    // watermark-style gate the stage-2 exchange merge uses.
    batch.clear();
    while (batch.size() < kPopBatch) {
      size_t min_p = lane_count;
      for (size_t p = 0; p < lane_count; ++p) {
        if (valid[p] &&
            (min_p == lane_count || heads[p].seq < heads[min_p].seq)) {
          min_p = p;
        }
      }
      if (min_p == lane_count) break;
      const uint64_t candidate = heads[min_p].seq;
      bool gated = false;
      for (size_t p = 0; p < lane_count; ++p) {
        if (!valid[p] && floors[p] <= candidate) {
          gated = true;
          break;
        }
      }
      if (gated) break;  // The outer loop re-reads floors and retries.
      batch.push_back(std::move(heads[min_p]));
      valid[min_p] = lanes_[min_p]->TryPop(heads[min_p]) ? 1 : 0;
    }
    if (!batch.empty()) {
      backoff.Reset();
      const size_t n = batch.size();
      if (obs_.batch_size) obs_.batch_size->Record(n);
      uint64_t t_prev = obs_.process_latency_ns ? obs::MonotonicNowNs() : 0;
      for (size_t i = 0; i < n; ++i) {
        ProcessOne(batch[i], hooks);
        if (obs_.process_latency_ns) {
          const uint64_t t_now = obs::MonotonicNowNs();
          obs_.process_latency_ns->Record(t_now - t_prev);
          t_prev = t_now;
        }
      }
      if (obs_.events) obs_.events->Inc(n);
      // order: release; the publication point Drain acquires.
      processed_.fetch_add(n, std::memory_order_release);
      ExecuteCommand(hooks);
      continue;
    }
    ExecuteCommand(hooks);
    // order: acquire pairs with Stop()'s release store.
    if (stop_requested_.load(std::memory_order_acquire)) {
      // Ingest is over: force-merge every remaining head and lane
      // leftover in sequence order, ignoring the (possibly stale) floors
      // — no smaller sequence can arrive anymore. The worker never
      // returns holding a valid head.
      for (;;) {
        size_t min_p = lane_count;
        for (size_t p = 0; p < lane_count; ++p) {
          if (!valid[p]) valid[p] = lanes_[p]->TryPop(heads[p]) ? 1 : 0;
          if (valid[p] &&
              (min_p == lane_count || heads[p].seq < heads[min_p].seq)) {
            min_p = p;
          }
        }
        if (min_p == lane_count) return;
        ProcessOne(heads[min_p], hooks);
        if (obs_.events) obs_.events->Inc();
        if (obs_.batch_size) obs_.batch_size->Record(1);
        if (obs_.process_latency_ns) obs_.process_latency_ns->Record(0);
        // order: release; the publication point Drain acquires.
        processed_.fetch_add(1, std::memory_order_release);
        valid[min_p] = 0;
      }
    }
    // Idle watermark: everything merged so far — or the lanes' common
    // floor when every lane is drained and headless (all producers vouch
    // nothing below it is outstanding).
    if (!hooks.empty()) {
      uint64_t bound = processed_any_ ? last_seq_ + 1 : 0;
      bool all_idle = true;
      uint64_t min_floor = std::numeric_limits<uint64_t>::max();
      for (size_t p = 0; p < lane_count; ++p) {
        if (valid[p] || !lanes_[p]->ApproxEmpty()) {
          all_idle = false;
          break;
        }
        if (floors[p] < min_floor) min_floor = floors[p];
      }
      if (all_idle && lane_count > 0 && min_floor > bound) bound = min_floor;
      if (bound > 0) {
        for (const ExchangeHookRef& hook : hooks) {
          (void)hook.emitter->Broadcast(bound);
        }
        last_idle_bound = bound;
      }
    }
    if (backoff.ShouldPark()) {
      // Wake on: any lane push (queue waker), any floor movement vs the
      // snapshot in `floors` (NoteLaneFloor rings), a posted command, or
      // stop. Only atomics and loop-local state — no guarded members.
      const bool watch_floor = !hooks.empty();
      const uint64_t idle_bound = last_idle_bound;
      (void)doorbell_.ParkUnless([this, &floors, lane_count, watch_floor,
                                  idle_bound] {
        for (size_t p = 0; p < lane_count; ++p) {
          if (!lanes_[p]->ApproxEmpty()) return true;
          // order: acquire; same pairing as the refill loop's floor read.
          const uint64_t f = lane_floors_[p].load(std::memory_order_acquire);
          if (f != floors[p]) return true;
          if (watch_floor && f > idle_bound) return true;
        }
        // order: acquire/relaxed, same pairing as ExecuteCommand.
        if (cmd_gen_.load(std::memory_order_acquire) !=
            cmd_ack_.load(std::memory_order_relaxed)) {
          return true;
        }
        // order: acquire pairs with Stop()'s release store.
        return stop_requested_.load(std::memory_order_acquire);
      });
      backoff.Reset();
      continue;
    }
    backoff.Wait();
  }
}

}  // namespace pldp
