// Copyright 2026 The PLDP Authors.
//
// Ingest overload policies: what the runtime does when a stage-1 shard
// queue is full and stays full.
//
// The default (`kBlock`) is the behavior the pipeline always had — the
// ingest thread spins with backoff until the queue drains, so overload
// turns into caller-side latency and nothing is ever lost. The shedding
// policies trade completeness for bounded ingest latency instead: events
// are parked in a small per-shard pending buffer and, when that overflows
// too, deliberately dropped — counted per shard through the
// `pldp_shed_events_total` metric family and the engine's
// `quality::SheddingStats` roll-up so the degradation is measurable
// (see docs/OPERATIONS.md, "Overload policy tuning").
//
// Shedding never reorders: admitted events reach their shard in exact
// ingest order, so a run in which nothing was shed is bit-identical to a
// `kBlock` run (pinned by runtime_admission_test).

#ifndef PLDP_RUNTIME_OVERLOAD_H_
#define PLDP_RUNTIME_OVERLOAD_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace pldp {

/// What to do when a shard queue (and the pending buffer behind it) is
/// full at ingest time.
enum class OverloadPolicy {
  /// Block the ingest thread (spin + yield) until the queue drains. The
  /// lossless default; overload becomes caller-visible backpressure.
  kBlock,
  /// Drop the OLDEST parked event to admit the newest — freshness wins.
  /// Good for monitoring workloads where a stale event is worth less than
  /// a current one.
  kShedOldest,
  /// Drop every event of the subjects that overflowed the buffer, for as
  /// long as the overload episode lasts (the shed set clears when the
  /// pending buffers fully drain). Keeps the other subjects' detection
  /// streams complete instead of degrading everyone a little.
  kShedBySubject,
};

/// Admission-control configuration (ParallelEngineOptions::overload,
/// PipelineBuilder::WithOverloadPolicy).
struct OverloadOptions {
  OverloadPolicy policy = OverloadPolicy::kBlock;
  /// Per-shard pending-buffer capacity for the shedding policies: how many
  /// events may be parked behind a full queue before the policy starts
  /// dropping. 0 = same as the shard queue capacity. Ignored under kBlock.
  size_t pending_capacity = 0;
};

/// Stable lower-case name ("block", "shed-oldest", "shed-by-subject") —
/// the `policy` metric label and the `--overload-policy` flag vocabulary.
const char* OverloadPolicyName(OverloadPolicy policy);

/// Parses what OverloadPolicyName produces. InvalidArgument on anything
/// else (the error message lists the accepted spellings).
StatusOr<OverloadPolicy> ParseOverloadPolicy(const std::string& name);

}  // namespace pldp

#endif  // PLDP_RUNTIME_OVERLOAD_H_
