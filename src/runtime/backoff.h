// Copyright 2026 The PLDP Authors.
//
// Escalating wait shared by every spin site of the runtime: producers on a
// full queue, workers on an empty queue, drain barriers on a lagging
// counter. Burn a few iterations, then yield, then sleep — low latency
// under load without pinning a core when idle.

#ifndef PLDP_RUNTIME_BACKOFF_H_
#define PLDP_RUNTIME_BACKOFF_H_

#include <chrono>
#include <thread>

namespace pldp {

class Backoff {
 public:
  void Wait() {
    if (spins_ < kSpinLimit) {
      ++spins_;
    } else if (spins_ < kSpinLimit + kYieldLimit) {
      ++spins_;
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  void Reset() { spins_ = 0; }

 private:
  static constexpr int kSpinLimit = 64;
  static constexpr int kYieldLimit = 64;
  int spins_ = 0;
};

}  // namespace pldp

#endif  // PLDP_RUNTIME_BACKOFF_H_
