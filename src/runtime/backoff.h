// Copyright 2026 The PLDP Authors.
//
// Escalating wait shared by every spin site of the runtime: producers on a
// full queue, workers on an empty queue, drain barriers on a lagging
// counter. Burn a few iterations, then yield, then sleep — low latency
// under load without pinning a core when idle.
//
// Workers additionally escalate past the sleep phase into a real park on a
// `Doorbell` (condition-variable wait): once ShouldPark() reports that the
// spin and yield budgets are exhausted, the worker re-checks its work
// predicate under the doorbell's protocol and blocks until a producer
// rings. Producers never park — their wait is always bounded by a live
// consumer draining the queue.
//
// Under PLDP_MODEL_CHECK a Backoff::Wait is a model-scheduler yield and
// the budgets collapse to one iteration, so spin loops become explicit
// schedule points instead of wall-clock burns. The Doorbell protocol is
// machine-checked by tests/check/check_doorbell_test.cc (the lost-wakeup
// argument below, explored exhaustively).

#ifndef PLDP_RUNTIME_BACKOFF_H_
#define PLDP_RUNTIME_BACKOFF_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/atomic.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

#ifdef PLDP_MODEL_CHECK
#include "check/model.h"
#endif

namespace pldp {

class Backoff {
 public:
  void Wait() {
#ifdef PLDP_MODEL_CHECK
    ++spins_;
    check::ModelYieldSpin();
#else
    if (spins_ < kSpinLimit) {
      ++spins_;
    } else if (spins_ < kSpinLimit + kYieldLimit) {
      ++spins_;
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
#endif
  }

  /// True once the spin and yield budgets are exhausted — the point where a
  /// worker that owns a Doorbell should park instead of sleep-polling.
  bool ShouldPark() const { return spins_ >= kSpinLimit + kYieldLimit; }

  void Reset() { spins_ = 0; }

 private:
#ifdef PLDP_MODEL_CHECK
  // One model yield is a full "budget": parks and stall hooks become
  // reachable within a handful of schedule points instead of 128.
  static constexpr int kSpinLimit = 1;
  static constexpr int kYieldLimit = 0;
#else
  static constexpr int kSpinLimit = 64;
  static constexpr int kYieldLimit = 64;
#endif
  int spins_ = 0;
};

/// Wake-on-work doorbell: one parked consumer, any number of ringers.
///
/// The consumer calls `ParkUnless(has_work)` when its queues look empty;
/// producers call `Ring()` after publishing work (an SpscQueue push, a
/// command post, a producer-floor store, a stop flag). The fast path of
/// Ring() is a fence plus one relaxed load — no lock, no allocation — so
/// ringing with no one parked (the common case under load) is nearly free.
///
/// Lost-wakeup argument (why a Ring between the consumer's last empty
/// check and its cv wait cannot strand it):
///
///   1. Producer order:  publish work (atomic store) → seq_cst fence
///      [inside Ring] → load waiters_. Consumer order: increment waiters_
///      → seq_cst fence → has_work() (atomic loads). These fences form the
///      classic Dekker/store-buffering pair: in the single total order of
///      seq_cst fences, one executes first. If the consumer's fence is
///      first, the producer's waiters_ load sees the increment and Ring
///      takes the slow path (notify). If the producer's fence is first,
///      the consumer's has_work() is guaranteed to observe the published
///      work and the consumer does not park. Either way: no lost wakeup
///      at the predicate check.
///   2. Between has_work() returning false and the cv wait actually
///      blocking there is still a window. It is closed by the epoch: the
///      consumer reads epoch_ BEFORE advertising itself as a waiter, and
///      RingSlow() bumps epoch_ under the mutex before notifying. The cv
///      wait's predicate is `epoch_ != observed` and is evaluated under
///      that same mutex, so a bump from any concurrent ring — even one
///      that fired before the consumer reached the wait — is seen there
///      and the wait returns immediately.
///   3. A bump from an unrelated ring at worst causes a spurious return;
///      the consumer re-polls its queues, which is always correct.
///
/// Both halves of the argument are machine-checked: the model suite
/// tests/check/check_doorbell_test.cc explores every schedule of
/// park-vs-ring within the preemption bound, and its negative twin
/// (PLDP_CHECK_NEGATIVE_DOORBELL, which deletes the Ring fence below)
/// proves the checker sees the resulting lost wakeup as a deadlock.
///
/// The mutex is pldp::SyncMutex (std::mutex in normal builds, the model
/// mutex under PLDP_MODEL_CHECK) because the condition variable needs it;
/// nothing else is guarded by it — epoch_ is bumped under it purely to
/// order the bump against the wait predicate.
class Doorbell {
 public:
  /// Producer side: call after publishing work with at least one atomic
  /// release store (queue tail, command generation, stop flag, floor).
  /// Nearly free when no one is parked.
  PLDP_HOT void Ring() {
#ifndef PLDP_CHECK_NEGATIVE_DOORBELL
    // order: seq_cst fence pairs with the one in ParkUnless — the Dekker
    // pair of the lost-wakeup argument (file comment, point 1).
    AtomicFence(std::memory_order_seq_cst);
#endif
    // order: relaxed is enough — the fence above orders this load after
    // the caller's work publication in the SC order.
    if (waiters_.load(std::memory_order_relaxed) != 0) {
      RingSlow();  // hotpath-allow: cold half — runs only with a parked consumer
    }
  }

  /// Consumer side: parks until the next Ring unless `has_work` already
  /// holds. `has_work` must read only atomics (it runs on this thread but
  /// races producers by design) and must be monotone under the producers'
  /// publications: once work is published, it returns true until the
  /// consumer itself consumes it. Returns true when the thread actually
  /// parked (and was woken), false when has_work() preempted the park.
  /// At most one thread may park on a doorbell at a time.
  template <typename HasWork>
  bool ParkUnless(HasWork&& has_work) {
    // order: acquire so the epoch observed here is no older than any ring
    // whose work publication we have already seen (file comment, point 2).
    const uint64_t observed = epoch_.load(std::memory_order_acquire);
    // order: relaxed; ordering against has_work() comes from the fence.
    waiters_.fetch_add(1, std::memory_order_relaxed);
    // order: seq_cst fence pairs with the one in Ring (point 1).
    AtomicFence(std::memory_order_seq_cst);
    if (has_work()) {
      // order: relaxed; no payload is published by de-advertising.
      waiters_.fetch_sub(1, std::memory_order_relaxed);
      return false;
    }
    // order: relaxed; telemetry only.
    parks_.fetch_add(1, std::memory_order_relaxed);
    if (park_counter_ != nullptr) park_counter_->Inc();
    {
      std::unique_lock<SyncMutex> lock(mu_);
      cv_.wait(lock, [&] {
        // order: relaxed; the mutex orders this read against RingSlow's
        // bump (point 2).
        return epoch_.load(std::memory_order_relaxed) != observed;
      });
    }
    // order: relaxed; no payload is published by de-advertising.
    waiters_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  /// Optional telemetry counters (obs registry owns them); set before the
  /// consumer starts. The internal atomics below always count, so tests
  /// can assert parking behavior without a registry.
  void SetCounters(obs::Counter* parks, obs::Counter* wakes) {
    park_counter_ = parks;
    wake_counter_ = wakes;
  }

  uint64_t parks() const {
    // order: relaxed; monotonic telemetry counter.
    return parks_.load(std::memory_order_relaxed);
  }
  uint64_t wakes() const {
    // order: relaxed; monotonic telemetry counter.
    return wakes_.load(std::memory_order_relaxed);
  }

 private:
  void RingSlow() {
    {
      std::lock_guard<SyncMutex> lock(mu_);
      // order: relaxed; bumped under mu_ so the cv predicate orders
      // against it without further fences (file comment, point 2).
      epoch_.fetch_add(1, std::memory_order_relaxed);
    }
    cv_.notify_all();
    // order: relaxed; telemetry only.
    wakes_.fetch_add(1, std::memory_order_relaxed);
    if (wake_counter_ != nullptr) wake_counter_->Inc();
  }

  SyncMutex mu_;
  SyncCondVar cv_;
  /// Number of threads past the park decision (0 or 1 in practice).
  Atomic<int> waiters_{0};
  /// Ring generation; bumped under mu_ so the cv predicate orders against
  /// it without further fences.
  Atomic<uint64_t> epoch_{0};
  Atomic<uint64_t> parks_{0};
  Atomic<uint64_t> wakes_{0};
  obs::Counter* park_counter_ = nullptr;
  obs::Counter* wake_counter_ = nullptr;
};

}  // namespace pldp

#endif  // PLDP_RUNTIME_BACKOFF_H_
