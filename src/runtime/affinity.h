// Copyright 2026 The PLDP Authors.
//
// Thread → CPU-core pinning for the multi-core execution layer.
//
// Pinning shard and merge workers to distinct cores removes scheduler
// migrations from the latency tail and keeps each worker's queue and
// engine state warm in its own cache hierarchy. It is strictly opt-in
// (WithCoreAffinity on the builder, --cores on the bench harness): the
// default remains fully scheduler-managed, and on platforms without
// pthread_setaffinity_np pinning degrades to a no-op rather than an
// error, as does asking for more workers than cores (assignments wrap
// round-robin — oversubscribed, but deterministic).

#ifndef PLDP_RUNTIME_AFFINITY_H_
#define PLDP_RUNTIME_AFFINITY_H_

#include <cstddef>

namespace pldp {

/// Pins the calling thread to `core` (0-based logical CPU id). Returns
/// true on success, false when the platform does not support affinity or
/// the core id is invalid — callers treat false as graceful degradation,
/// never an error.
bool PinCurrentThreadToCore(int core);

/// Number of logical cores the scheduler reports (>= 1; falls back to 1
/// when detection fails). Used to clamp affinity plans and to warn when a
/// bench run asks for more parallelism than the machine has.
size_t AvailableCoreCount();

}  // namespace pldp

#endif  // PLDP_RUNTIME_AFFINITY_H_
