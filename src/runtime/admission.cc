// Copyright 2026 The PLDP Authors.

#include "runtime/admission.h"

#include <utility>

namespace pldp {

AdmissionQueue::AdmissionQueue(OverloadOptions options,
                               std::vector<Shard*> shards,
                               std::atomic<uint64_t>* pushed_counter)
    : options_(options),
      state_(shards.size()),
      pushed_counter_(pushed_counter) {
  for (size_t i = 0; i < shards.size(); ++i) state_[i].shard = shards[i];
}

size_t AdmissionQueue::PendingCapacity(const PerShard& ps) const {
  if (options_.pending_capacity > 0) return options_.pending_capacity;
  return ps.shard->queue_capacity();
}

bool AdmissionQueue::ShouldShedBeforeStamp(size_t shard_index,
                                           const Event& event) {
  ingest_role_.Assert();
  if (options_.policy != OverloadPolicy::kShedBySubject) return false;
  if (shed_subjects_.empty()) return false;
  if (shed_subjects_.count(event.stream()) == 0) return false;
  NoteShed(state_[shard_index], 1);
  return true;
}

bool AdmissionQueue::FlushShard(PerShard& ps) {
  bool emptied = true;
  while (!ps.pending.empty()) {
    if (ps.shard->TryPushStampedN(&ps.pending.front(), 1) != 1) {
      emptied = false;
      break;
    }
    ps.pending.pop_front();
    // order: relaxed; both counters are written only by the ingest
    // thread (ingest_role_) and read elsewhere as telemetry hints.
    pending_total_.fetch_sub(1, std::memory_order_relaxed);
    if (pushed_counter_ != nullptr) {
      pushed_counter_->fetch_add(1, std::memory_order_relaxed);
    }
  }
  SyncPendingSeq(ps);
  return emptied;
}

void AdmissionQueue::NoteShed(PerShard& ps, size_t count) {
  // order: relaxed; shed tallies are standalone telemetry counters.
  ps.shed.fetch_add(count, std::memory_order_relaxed);
  shed_total_.fetch_add(count, std::memory_order_relaxed);
  if (ps.shed_counter != nullptr) ps.shed_counter->Inc(count);
}

void AdmissionQueue::SyncPendingSeq(PerShard& ps) {
  // order: relaxed; a cross-thread ClampFloor reader needs only an
  // eventually-current hint — the queue push itself publishes events.
  ps.oldest_pending_seq.store(
      ps.pending.empty() ? ~uint64_t{0} : ps.pending.front().seq,
      std::memory_order_relaxed);
}

void AdmissionQueue::MaybeClearShedSet() {
  if (options_.policy != OverloadPolicy::kShedBySubject) return;
  if (shed_subjects_.empty()) return;
  // order: relaxed; same-thread read of an ingest-thread-owned counter.
  if (pending_total_.load(std::memory_order_relaxed) == 0) {
    // Episode over: every parked event landed, the queues have room again.
    shed_subjects_.clear();
  }
}

bool AdmissionQueue::Offer(size_t shard_index, StampedEvent stamped) {
  ingest_role_.Assert();
  PerShard& ps = state_[shard_index];
  // Order preservation: parked events always leave before new ones enter.
  if (FlushShard(ps)) {
    if (ps.shard->TryPushStampedN(&stamped, 1) == 1) {
      if (pushed_counter_ != nullptr) {
        // order: relaxed; standalone telemetry counter.
        pushed_counter_->fetch_add(1, std::memory_order_relaxed);
      }
      MaybeClearShedSet();
      return true;
    }
  }
  // Queue full (or older events still parked): park or shed.
  if (ps.pending.size() >= PendingCapacity(ps)) {
    switch (options_.policy) {
      case OverloadPolicy::kShedOldest:
        // Freshness wins: the oldest parked event makes room for this one.
        ps.pending.pop_front();
        // order: relaxed; ingest-thread-owned counter (telemetry hint).
        pending_total_.fetch_sub(1, std::memory_order_relaxed);
        NoteShed(ps, 1);
        break;
      case OverloadPolicy::kShedBySubject:
        // This subject overflowed the buffer: drop the event and keep
        // dropping the subject (pre-stamping) until the episode ends.
        shed_subjects_.insert(stamped.event.stream());
        NoteShed(ps, 1);
        return false;
      case OverloadPolicy::kBlock:
        // The engine never routes through AdmissionQueue under kBlock;
        // tolerate it anyway by parking without a cap.
        break;
    }
  }
  ps.pending.push_back(std::move(stamped));
  // order: relaxed; ingest-thread-owned counter (telemetry hint).
  pending_total_.fetch_add(1, std::memory_order_relaxed);
  SyncPendingSeq(ps);
  return true;
}

void AdmissionQueue::Pump() {
  ingest_role_.Assert();
  // order: relaxed; same-thread read of an ingest-thread-owned counter.
  if (pending_total_.load(std::memory_order_relaxed) == 0) return;
  for (PerShard& ps : state_) FlushShard(ps);
  MaybeClearShedSet();
}

Status AdmissionQueue::FlushBlocking() {
  ingest_role_.Assert();
  for (PerShard& ps : state_) {
    while (!ps.pending.empty()) {
      PLDP_RETURN_IF_ERROR(ps.shard->PushStampedN(&ps.pending.front(), 1));
      ps.pending.pop_front();
      // order: relaxed; ingest-thread-owned counters (telemetry hints).
      pending_total_.fetch_sub(1, std::memory_order_relaxed);
      if (pushed_counter_ != nullptr) {
        pushed_counter_->fetch_add(1, std::memory_order_relaxed);
      }
    }
    SyncPendingSeq(ps);
  }
  MaybeClearShedSet();
  return Status::OK();
}

uint64_t AdmissionQueue::ClampFloor(uint64_t floor) const {
  uint64_t clamped = floor;
  for (const PerShard& ps : state_) {
    // order: relaxed; a stale hint only makes the clamp conservative —
    // the floor never overtakes events still parked here.
    const uint64_t oldest =
        ps.oldest_pending_seq.load(std::memory_order_relaxed);
    if (oldest < clamped) clamped = oldest;
  }
  return clamped;
}

void AdmissionQueue::SetShedInstrument(size_t shard_index,
                                       obs::Counter* counter) {
  state_[shard_index].shed_counter = counter;
}

std::vector<uint64_t> AdmissionQueue::ShedPerShard() const {
  std::vector<uint64_t> out;
  out.reserve(state_.size());
  for (const PerShard& ps : state_) {
    // order: relaxed; telemetry read.
    out.push_back(ps.shed.load(std::memory_order_relaxed));
  }
  return out;
}

}  // namespace pldp
