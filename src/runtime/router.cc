// Copyright 2026 The PLDP Authors.

#include "runtime/router.h"

#include "common/random.h"

namespace pldp {

EventRouter::EventRouter(size_t shard_count, ShardKeyFn key_fn)
    : shard_count_(shard_count < 1 ? 1 : shard_count),
      key_fn_(std::move(key_fn)) {}

uint64_t EventRouter::KeyOf(const Event& event) const {
  if (key_fn_) return key_fn_(event);
  return static_cast<uint64_t>(event.stream());
}

size_t EventRouter::ShardOf(const Event& event) const {
  return ShardOfKey(KeyOf(event));
}

size_t EventRouter::ShardOfKey(uint64_t key) const {
  if (shard_count_ == 1) return 0;
  // Lemire multiply-shift: maps the mixed hash uniformly onto
  // [0, shard_count) without a 64-bit divide — this runs once per event.
  return static_cast<size_t>(
      (static_cast<unsigned __int128>(MixKey(key)) * shard_count_) >> 64);
}

uint64_t EventRouter::MixKey(uint64_t key) {
  return SplitMix64(key).Next();
}

}  // namespace pldp
