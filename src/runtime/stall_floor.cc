// Copyright 2026 The PLDP Authors.

#include "runtime/stall_floor.h"

namespace pldp {

void StallFloorCoordinator::Configure(size_t producer_count) {
  producer_count_ = producer_count;
  in_call_ = std::make_unique<Atomic<bool>[]>(producer_count);
  for (size_t p = 0; p < producer_count; ++p) {
    // order: relaxed; pre-start initialization, the producer thread
    // launches (or is handed the role) after Configure returns.
    in_call_[p].store(false, std::memory_order_relaxed);
  }
}

void StallFloorCoordinator::EnterCall(size_t p) {
  // order: relaxed; the fence below is what orders this store against
  // the resync-floor load (the producer half of the Dekker pair — see
  // the header's protocol comment).
  in_call_[p].store(true, std::memory_order_relaxed);
  AtomicFence(std::memory_order_seq_cst);
}

void StallFloorCoordinator::ExitCall(size_t p) {
  // order: release so every push of this call is visible to a stall side
  // that observes the flag cleared and claims a floor for this producer.
  in_call_[p].store(false, std::memory_order_release);
}

uint64_t StallFloorCoordinator::AcquireResyncFloor() const {
  // order: acquire — the armed bound may carry barrier state published
  // before it; EnterCall's fence is what makes the read current.
  return resync_floor_.load(std::memory_order_acquire);
}

uint64_t StallFloorCoordinator::ArmResyncFloor(uint64_t bound) {
  // order: relaxed; the CAS below re-validates, a stale read only costs
  // one extra loop iteration.
  uint64_t prev = resync_floor_.load(std::memory_order_relaxed);
  while (prev < bound) {
    // order: release on success so state published before the arm rides
    // the floor to AcquireResyncFloor; relaxed on failure — the reloaded
    // value is only compared.
    if (resync_floor_.compare_exchange_weak(prev, bound,
                                            std::memory_order_release,
                                            std::memory_order_relaxed)) {
      return bound;
    }
  }
  return prev;
}

void StallFloorCoordinator::QuiescenceFence() {
#ifndef PLDP_CHECK_NEGATIVE_STALL
  // order: seq_cst fence pairs with the one in EnterCall — the stall half
  // of the Dekker pair (header comment). Without it a peer's in-call
  // store and this side's in-call load can both miss each other: the
  // peer is "proven" quiescent while mid-call with a pre-arm floor, and
  // its next stamp lands below the floor just claimed for it — the
  // idle-peer deadlock's root cause, re-introduced by the
  // PLDP_CHECK_NEGATIVE_STALL mutation so the model checker can
  // demonstrate it catches this bug class.
  AtomicFence(std::memory_order_seq_cst);
#endif
}

bool StallFloorCoordinator::InCall(size_t p) const {
  // order: acquire, and it matters beyond the Dekker pair: when this read
  // observes ExitCall's release store, it pulls the peer's completed
  // pushes into the caller's happens-before past, so the caller's
  // subsequent release publication of the claimed floor hands those
  // pushes to the merge worker along with the floor. A relaxed read would
  // let the merge see "floor lifted, lane empty" while the peer's last
  // pre-exit push is still in flight — exactly the out-of-order release
  // the model harness in tests/check/check_stall_floor_test.cc
  // (ClaimAfterExitCarriesPushes) demonstrates. QuiescenceFence
  // (sequenced before this read) separately gives a false read its
  // mid-call meaning — see the header contract.
  return in_call_[p].load(std::memory_order_acquire);
}

}  // namespace pldp
