// Copyright 2026 The PLDP Authors.
//
// One worker shard of the parallel streaming runtime.
//
// A shard owns a worker thread, a bounded SPSC queue feeding it, a private
// `StreamingCepEngine` (never touched by any other thread while running),
// a deterministic per-shard `Rng`, optionally a `ShardEventSink` the worker
// feeds every event to after the engine — the hook the shard-local PLDP
// perturbation pipeline (core/parallel_private_engine.h) plugs into — and
// any number of `ExchangeEmitter`s (runtime/exchange.h) through which the
// worker re-keys its output into stage-2 fabrics. Each emitter belongs to
// one exchange lane-group (one correlation key); a pipeline with per-query
// correlation keys attaches one emitter per distinct key, and the worker
// fans every processed event out through all of them.
//
// Every queued event carries its global ingest sequence number
// (`StampedEvent`); the worker opens an exchange trigger scope per event so
// everything emitted downstream is stamped with a merge key that restores
// global order on the stage-2 side.
//
// Threading contract:
//   - Default (single-lane) mode: exactly one thread (the router /
//     ParallelStreamingEngine caller) may call Push / PushN at a time; the
//     worker thread is the only consumer. With EnableMultiProducer(P) the
//     shard instead exposes P independent SPSC ingest lanes — exactly one
//     thread per lane index may call PushStampedLaneN / NoteLaneFloor, and
//     the worker merges the lanes back into global sequence order.
//   - AddQuery / SetEventSink / AddExchange must happen before Start. Start
//     and Stop must not race each other or a pushing producer (they manage
//     the worker thread), but Push racing a Stop fails fast instead of
//     hanging.
//   - Drain() and stats() may be called from any thread, including while a
//     producer is pushing: the counters (and the running flag) are atomics,
//     so the calls are race-free. A Drain that races a producer waits for
//     the events pushed at the moment it reads `pushed_` (best effort by
//     construction).
//   - RequestFlushWatermark / RequestFinish are issued by one orchestrator
//     thread after a Drain; they run on the worker and return once it
//     acknowledged. The orchestrator's claim that the shard has seen every
//     event below the given bound inherits Drain's best-effort semantics
//     under racing producers.
//   - engine() and event_sink() contents are safe to read after Drain() or
//     Stop() returned: the worker publishes each processed batch with a
//     release store that Drain observes with an acquire load, which orders
//     all engine/sink mutations before the caller's reads. Command
//     acknowledgements publish the same way.
//
// The multi-producer lane-floor handshake (NoteLaneFloor vs the merging
// worker, including the stall-floor path that keeps an idle peer from
// wedging a full lane) is machine-checked by
// tests/check/check_stall_floor_test.cc; the negative twin
// PLDP_CHECK_NEGATIVE_STALL (runtime/stall_floor.cc) re-introduces the
// idle-peer deadlock and proves the checker reports it.

#ifndef PLDP_RUNTIME_SHARD_H_
#define PLDP_RUNTIME_SHARD_H_

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "cep/streaming_engine.h"
#include "common/atomic.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "event/event.h"
#include "obs/instruments.h"
#include "runtime/backoff.h"
#include "runtime/exchange.h"
#include "runtime/spsc_queue.h"

namespace pldp {

/// Counters one shard exposes to the orchestrator.
struct ShardStats {
  size_t shard_index = 0;
  /// Events delivered to this shard's engine.
  size_t events_processed = 0;
  /// Detections across this shard's queries.
  size_t detections = 0;
  /// Times the producer found the queue full and had to wait — a direct
  /// measure of backpressure on this shard.
  size_t backpressure_waits = 0;
  /// Events this shard emitted into the exchange fabric (0 when the shard
  /// has no emitter).
  size_t forwarded = 0;
  /// Times a full exchange lane made this shard's worker wait — direct
  /// backpressure from stage-2 (0 without an emitter).
  size_t exchange_backpressure_waits = 0;
  /// Times the idle worker parked on its doorbell (runtime/backoff.h) and
  /// how often a producer's ring took the slow notify path.
  size_t parks = 0;
  size_t wakes = 0;
};

/// A queued event plus its global ingest sequence number — the exchange
/// merge key's primary component (see runtime/exchange.h).
struct StampedEvent {
  uint64_t seq = 0;
  Event event;
};

/// Receives every event the shard worker processes, after the shard engine
/// saw it, on the worker thread, in arrival order. Implementations own any
/// state they need (it is worker-local while running; see the threading
/// contract above for when the orchestrator may read it).
class ShardEventSink {
 public:
  virtual ~ShardEventSink() = default;
  virtual void OnShardEvent(const Event& event) = 0;

  /// Called once per exchange fabric the shard is wired into, before
  /// Start (in AddExchange order). Sinks that emit downstream (e.g.
  /// protected views) keep the pointer; it outlives the sink. Default:
  /// ignore.
  virtual void AttachExchangeEmitter(ExchangeEmitter* /*emitter*/) {}

  /// End-of-stream, delivered on the worker thread by RequestFinish after
  /// every event. `finish_seq` is the sequence bound of the stream (all
  /// processed events have seq < finish_seq); finalize-time emissions must
  /// use it as their trigger. Default: no-op.
  virtual void OnShardFinish(uint64_t /*finish_seq*/) {}
};

/// Worker thread + queue + per-shard engine.
class Shard {
 public:
  /// `queue_capacity` is rounded up to a power of two (and clamped to
  /// kMaxSpscCapacity). `seed` derives the per-shard Rng (deterministic per
  /// shard across runs).
  Shard(size_t index, size_t queue_capacity, uint64_t seed);
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  size_t index() const { return index_; }

  /// Registers a query on this shard's engine. Must precede Start().
  StatusOr<size_t> AddQuery(Pattern pattern, Timestamp window);

  /// Installs the worker-side event sink. Must precede Start().
  Status SetEventSink(std::unique_ptr<ShardEventSink> sink);

  /// Binds telemetry instruments (obs/instruments.h). Null fields are
  /// skipped at update sites; copy-by-value, the registry owns the
  /// instruments. Must precede Start().
  Status SetInstruments(const obs::ShardInstruments& instruments);

  /// Installs a user detection callback invoked on the worker thread for
  /// every detection this shard's engine fires, in addition to the internal
  /// detection counter. Must precede Start().
  Status SetDetectionCallback(DetectionCallback callback);

  ShardEventSink* event_sink() const { return sink_.get(); }

  /// Switches ingest to `producer_count` independent SPSC lanes (the MPSC
  /// front-end): producer `p` pushes pre-stamped events with strictly
  /// increasing sequence numbers through PushStampedLaneN(p, ...), and the
  /// worker merges all lanes back into global sequence order before
  /// processing. Merge progress across an idle lane requires its producer
  /// to publish floors via NoteLaneFloor (the engine's per-producer floor
  /// protocol; the engine's stall-floor path publishes on behalf of
  /// quiescent producers so an idle lane cannot wedge a push — see
  /// ParallelStreamingEngine::PublishStallFloors). Must precede Start();
  /// `producer_count` >= 1.
  Status EnableMultiProducer(size_t producer_count);

  /// Number of ingest lanes (0 in default single-lane mode).
  size_t producer_lane_count() const { return lanes_.size(); }

  /// Pins the worker thread to `core` at startup (no-op when negative or
  /// unsupported on this platform). Must precede Start().
  void SetAffinityCore(int core) { affinity_core_ = core; }

  /// Wires this shard into one more exchange fabric (one lane-group). When
  /// `forward_raw_events` is set the worker emits every processed event
  /// through this emitter (the plain cross-subject path); otherwise this
  /// emitter's emission is entirely sink-driven (the private path, where
  /// only protected views may cross). May be called once per lane-group;
  /// must precede Start().
  Status AddExchange(std::unique_ptr<ExchangeEmitter> emitter,
                     bool forward_raw_events) PLDP_EXCLUDES(reg_mu_);

  /// Launches the worker thread. Returns FailedPrecondition if running.
  Status Start();

  /// Enqueues one event, blocking (spin + yield) while the queue is full.
  /// Producer thread only; requires a running worker — fails fast with
  /// FailedPrecondition when the shard is stopped or stopping, instead of
  /// spinning forever on a queue nobody drains. Events pushed through this
  /// overload are stamped with a shard-local sequence (standalone use);
  /// the sharded engine pushes pre-stamped events carrying global numbers.
  Status Push(Event event);

  /// Bulk enqueue: moves `count` events out of `events` into the queue,
  /// blocking while it is full. Same preconditions as Push; one release
  /// store per queue burst instead of one per event. When `accepted` is
  /// non-null it receives the number of events actually enqueued (== count
  /// on success, possibly fewer when failing fast on a stop).
  Status PushN(Event* events, size_t count, size_t* accepted = nullptr);

  /// Pre-stamped bulk enqueue (the sharded engine's path). Sequence numbers
  /// must be strictly increasing across all pushes to this shard. Single-
  /// lane mode only — FailedPrecondition after EnableMultiProducer.
  Status PushStampedN(StampedEvent* events, size_t count,
                      size_t* accepted = nullptr);

  /// Stall hook for PushStampedLaneN: invoked with `ctx` and the sequence
  /// number of the next unpushed event each backoff step after the push
  /// has exhausted its spin/yield budget on a full lane. The MPSC engine
  /// uses it to publish stall floors (ParallelStreamingEngine::
  /// PublishStallFloors): without them, a merge gated on a quiescent
  /// peer's stale lane floor and a producer blocked on the resulting full
  /// lane deadlock each other.
  using StallFn = void (*)(void* ctx, uint64_t next_seq);

  /// Multi-producer variant of PushStampedN: producer `producer` pushes
  /// into its own lane. Exactly one thread per lane index; sequence
  /// numbers must be strictly increasing within each lane. Blocking with
  /// the same fail-fast-on-stop semantics as PushStampedN; `stall` (if
  /// non-null) fires periodically while the lane stays full.
  Status PushStampedLaneN(size_t producer, StampedEvent* events,
                          size_t count, size_t* accepted = nullptr,
                          StallFn stall = nullptr,
                          void* stall_ctx = nullptr);

  /// Per-producer floor (multi-producer mode): every event producer
  /// `producer` will ever push to ANY shard with seq < `floor` has been
  /// pushed already. The worker needs these to merge across an idle lane
  /// (see MultiRunLoop) and to broadcast idle watermarks. Called by the
  /// lane's producer thread and by the engine's drain barrier on behalf
  /// of quiescent producers — the monotone CAS keeps the floor from ever
  /// regressing whichever writer is slower. Rings the worker doorbell,
  /// but only when the floor actually advanced: the stall-floor path
  /// republishes the same bound every backoff step, and an unconditional
  /// ring would wake parked workers on every repeat for nothing (a no-op
  /// publish carries no information the park predicate could act on).
  void NoteLaneFloor(size_t producer, uint64_t floor) {
    // order: relaxed; the CAS below re-validates, a stale read only costs
    // one extra loop iteration.
    uint64_t prev = lane_floors_[producer].load(std::memory_order_relaxed);
    while (prev < floor) {
      // order: release on success so every event pushed before this floor
      // claim is visible to the worker's acquire of the floor; relaxed on
      // failure — the reloaded value is only compared, not dereferenced.
      if (lane_floors_[producer].compare_exchange_weak(
              prev, floor, std::memory_order_release,
              std::memory_order_relaxed)) {
        doorbell_.Ring();
        return;
      }
    }
  }

  /// Non-blocking variant: enqueues as many leading events as the queue
  /// has room for and returns that number (0 when full, stopped, or not
  /// running — never waits). Same producer contract and stamping rules as
  /// PushStampedN; the admission/shedding layer (runtime/admission.h) is
  /// built on it.
  size_t TryPushStampedN(StampedEvent* events, size_t count);

  /// Producer-side progress hint: every event with seq < `floor` has been
  /// pushed to its target shard already (this one or another). Lets a
  /// shard that receives little or no traffic broadcast idle watermarks
  /// that track the global stream instead of staying silent until the
  /// next drain barrier — without it, skewed routings buffer everything
  /// downstream. Same caller as Push (the single ingest thread).
  void NoteProducerFloor(uint64_t floor) {
    // order: release so everything pushed before the floor claim is
    // visible to the worker's acquire load.
    producer_floor_.store(floor, std::memory_order_release);
    doorbell_.Ring();
  }

  /// Blocks until every event pushed so far has been processed. The worker
  /// stays alive; more events may be pushed after.
  Status Drain();

  /// Asks the worker to broadcast `watermark(bound)` on its exchange row
  /// and blocks until it did. Call after Drain so the bound's claim —
  /// "this shard forwarded everything below `bound` it will ever see" —
  /// holds. No-op without an emitter (still acknowledged).
  Status RequestFlushWatermark(uint64_t bound);

  /// Delivers end-of-stream on the worker: the sink's OnShardFinish runs
  /// (emitting any finalize-time output), then the exchange row is closed
  /// with terminal watermarks. Call after Drain, with ingestion stopped.
  Status RequestFinish(uint64_t finish_seq);

  /// Split finish for multi-shard orchestration: posts the end-of-stream
  /// command without waiting and returns the acknowledgement token for
  /// WaitCommandAck. Under bounded exchange credits one shard's finalize
  /// emissions may only be releasable once every other shard's terminal
  /// watermark is in flight — so the orchestrator must post finish to ALL
  /// shards before waiting on ANY (see ParallelStreamingEngine::Finish).
  StatusOr<uint64_t> PostFinish(uint64_t finish_seq);

  /// Blocks until the worker acknowledged the posted command `token`.
  /// Fails fast when the shard begins stopping first.
  Status WaitCommandAck(uint64_t token);

  /// Drains, stops, and joins the worker. Idempotent.
  Status Stop();

  bool running() const {
    // order: relaxed; advisory flag, carries no payload.
    return running_.load(std::memory_order_relaxed);
  }

  /// The shard-local engine. Read-only access for the orchestrator; only
  /// valid when the shard is stopped or drained (see threading contract).
  const StreamingCepEngine& engine() const { return engine_; }

  /// Shard-local deterministic Rng (shard-local stochastic work).
  Rng& rng() { return rng_; }

  /// Safe from any thread at any time: the counters are atomics, and the
  /// attached-hook list is read under the registration mutex so a scrape
  /// racing a late AddExchange (both pre-Start) is well-defined.
  ShardStats stats() const PLDP_EXCLUDES(reg_mu_);

  /// Instantaneous queue occupancy / capacity — safe from any thread
  /// (SPSC indices are atomics); used for queue-depth gauges and health.
  /// In multi-producer mode these aggregate over all ingest lanes.
  size_t queue_depth() const {
    if (lanes_.empty()) return queue_.ApproxSize();
    size_t depth = 0;
    for (const auto& lane : lanes_) depth += lane->ApproxSize();
    return depth;
  }
  size_t queue_capacity() const {
    if (lanes_.empty()) return queue_.capacity();
    size_t cap = 0;
    for (const auto& lane : lanes_) cap += lane->capacity();
    return cap;
  }

  /// Doorbell park/wake counts (always tracked, even un-instrumented);
  /// used by stats() and the parking-liveness tests.
  uint64_t parks() const { return doorbell_.parks(); }
  uint64_t wakes() const { return doorbell_.wakes(); }

  /// Attached exchange lane-groups, in AddExchange order (which is the
  /// orchestrator's group order). Emitter stats/depth reads are
  /// thread-safe; used to wire per-lane instruments.
  size_t exchange_count() const PLDP_EXCLUDES(reg_mu_) {
    MutexLock lock(reg_mu_);
    return hooks_.size();
  }
  ExchangeEmitter* exchange_emitter(size_t i) PLDP_EXCLUDES(reg_mu_) {
    MutexLock lock(reg_mu_);
    return hooks_[i].emitter.get();
  }

 private:
  enum CommandKind : uint32_t {
    kCmdNone = 0,
    kCmdFlushWatermark = 1,
    kCmdFinish = 2,
  };

  /// One attached exchange lane-group: the emitter plus whether the worker
  /// forwards every raw event through it (vs sink-driven emission only).
  struct ExchangeHook {
    std::unique_ptr<ExchangeEmitter> emitter;
    bool forward_raw_events = false;
  };

  /// Non-owning view of one hook: what the worker loop actually iterates.
  /// The worker snapshots the hook list once at startup (the list is
  /// frozen by then — AddExchange refuses while running) so the per-event
  /// path never touches the mutex-guarded vector.
  struct ExchangeHookRef {
    ExchangeEmitter* emitter = nullptr;
    bool forward_raw_events = false;
  };

  std::vector<ExchangeHookRef> SnapshotHooks() const PLDP_EXCLUDES(reg_mu_);

  void RunLoop() PLDP_REQUIRES(worker_role_);
  /// Multi-producer worker loop: merges the P ingest lanes back into
  /// global sequence order. A lane's head may only be released once every
  /// other lane either shows a head (so the minimum is known) or has a
  /// published floor above the candidate — the same watermark-style gate
  /// the exchange merge uses.
  void MultiRunLoop() PLDP_REQUIRES(worker_role_);
  /// Delivers one event to the engine, the sink, and every exchange hook —
  /// the per-event section of the worker loop (also used by Stop's
  /// post-join leftover absorption, under the role handoff). When
  /// `engine_relevant` is false the engine call is skipped (the batch
  /// prefilter proved no pattern references this event's type); the sink,
  /// raw forwards, and ordering bookkeeping are unconditional.
  PLDP_HOT void ProcessOne(const StampedEvent& stamped,
                           const std::vector<ExchangeHookRef>& hooks,
                           bool engine_relevant = true)
      PLDP_REQUIRES(worker_role_);
  void ExecuteCommand(const std::vector<ExchangeHookRef>& hooks)
      PLDP_REQUIRES(worker_role_);
  StatusOr<uint64_t> PostCommand(uint32_t kind, uint64_t payload);
  Status RequestCommand(uint32_t kind, uint64_t payload);

  const size_t index_;
  SpscQueue<StampedEvent> queue_;
  /// Multi-producer ingest lanes (empty in single-lane mode). Frozen by
  /// EnableMultiProducer before Start; unique_ptr keeps SpscQueue stable
  /// (it is neither movable nor copyable).
  std::vector<std::unique_ptr<SpscQueue<StampedEvent>>> lanes_;
  /// Per-lane producer floors (multi-producer mode), released by each
  /// producer and acquired by the merging worker.
  std::unique_ptr<Atomic<uint64_t>[]> lane_floors_;
  /// Wake-on-work doorbell the idle worker parks on; rung by every queue
  /// push (SetWaker), floor publication, posted command, and stop.
  Doorbell doorbell_;
  /// Worker thread CPU affinity (-1 = unpinned).
  int affinity_core_ = -1;
  StreamingCepEngine engine_;
  Rng rng_;
  std::unique_ptr<ShardEventSink> sink_;
  /// Guards the hook list: AddExchange (orchestrator, pre-Start) can race
  /// a stats()/exchange_count() scrape, and vector growth is not atomic.
  /// The worker never takes it (see SnapshotHooks).
  mutable Mutex reg_mu_;
  std::vector<ExchangeHook> hooks_ PLDP_GUARDED_BY(reg_mu_);
  // Telemetry bundle (null fields = un-instrumented) and the optional user
  // detection callback; both fixed before Start, read on the worker.
  obs::ShardInstruments obs_;
  DetectionCallback user_callback_;
  std::thread worker_;
  // Written only by Start/Stop; atomic so Drain/stats from other threads
  // read it race-free.
  Atomic<bool> running_{false};

  /// Confinement tokens (zero-size, zero-cost — see thread_annotations.h):
  /// worker_role_ is held by the worker thread (and by Stop after the
  /// join, the documented handoff); producer_role_ is the single-pushing-
  /// thread contract, asserted at the Push entry points.
  ThreadRole worker_role_;
  ThreadRole producer_role_;

  // Producer-side state. The counters are written by the producer thread
  // only (relaxed) but read from arbitrary threads by Drain()/stats(),
  // hence atomic; auto_seq_/scratch_ are producer-private.
  Atomic<uint64_t> pushed_{0};
  Atomic<uint64_t> backpressure_waits_{0};
  Atomic<uint64_t> producer_floor_{0};
  uint64_t auto_seq_ PLDP_GUARDED_BY(producer_role_) = 0;
  std::vector<StampedEvent> scratch_ PLDP_GUARDED_BY(producer_role_);

  // Orchestrator → worker command channel: payload/kind are published by
  // the generation counter (release) and acknowledged by the worker
  // (release on cmd_ack_).
  Atomic<uint64_t> cmd_gen_{0};
  Atomic<uint64_t> cmd_ack_{0};
  Atomic<uint64_t> cmd_payload_{0};
  Atomic<uint32_t> cmd_kind_{kCmdNone};

  // Worker → producer publication point: incremented (release) after the
  // engine has absorbed a batch; Drain spins on it (acquire).
  Atomic<uint64_t> processed_{0};
  // Worker-side detection counter (fed by the engine callback) so stats()
  // never has to touch the non-atomic engine internals.
  Atomic<uint64_t> detections_{0};
  Atomic<bool> stop_requested_{false};

  // Worker-local: sequence of the last processed event, for idle-time
  // progress watermarks.
  uint64_t last_seq_ PLDP_GUARDED_BY(worker_role_) = 0;
  bool processed_any_ PLDP_GUARDED_BY(worker_role_) = false;
};

}  // namespace pldp

#endif  // PLDP_RUNTIME_SHARD_H_
