// Copyright 2026 The PLDP Authors.
//
// One worker shard of the parallel streaming runtime.
//
// A shard owns a worker thread, a bounded SPSC queue feeding it, a private
// `StreamingCepEngine` (never touched by any other thread while running),
// a deterministic per-shard `Rng`, and optionally a `ShardEventSink` the
// worker feeds every event to after the engine — the hook the shard-local
// PLDP perturbation pipeline (core/parallel_private_engine.h) plugs into.
//
// Threading contract:
//   - Exactly one thread (the router / ParallelStreamingEngine caller) may
//     call Push / PushN at a time; the worker thread is the only consumer.
//   - AddQuery / SetEventSink must happen before Start. Start and Stop must
//     not race each other or a pushing producer (they manage the worker
//     thread), but Push racing a Stop fails fast instead of hanging.
//   - Drain() and stats() may be called from any thread, including while a
//     producer is pushing: the counters (and the running flag) are atomics,
//     so the calls are race-free. A Drain that races a producer waits for
//     the events pushed at the moment it reads `pushed_` (best effort by
//     construction).
//   - engine() and event_sink() contents are safe to read after Drain() or
//     Stop() returned: the worker publishes each processed batch with a
//     release store that Drain observes with an acquire load, which orders
//     all engine/sink mutations before the caller's reads.

#ifndef PLDP_RUNTIME_SHARD_H_
#define PLDP_RUNTIME_SHARD_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "cep/streaming_engine.h"
#include "common/random.h"
#include "common/status.h"
#include "event/event.h"
#include "runtime/spsc_queue.h"

namespace pldp {

/// Counters one shard exposes to the orchestrator.
struct ShardStats {
  size_t shard_index = 0;
  /// Events delivered to this shard's engine.
  size_t events_processed = 0;
  /// Detections across this shard's queries.
  size_t detections = 0;
  /// Times the producer found the queue full and had to wait — a direct
  /// measure of backpressure on this shard.
  size_t backpressure_waits = 0;
};

/// Receives every event the shard worker processes, after the shard engine
/// saw it, on the worker thread, in arrival order. Implementations own any
/// state they need (it is worker-local while running; see the threading
/// contract above for when the orchestrator may read it).
class ShardEventSink {
 public:
  virtual ~ShardEventSink() = default;
  virtual void OnShardEvent(const Event& event) = 0;
};

/// Worker thread + queue + per-shard engine.
class Shard {
 public:
  /// `queue_capacity` is rounded up to a power of two (and clamped to
  /// kMaxSpscCapacity). `seed` derives the per-shard Rng (deterministic per
  /// shard across runs).
  Shard(size_t index, size_t queue_capacity, uint64_t seed);
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  size_t index() const { return index_; }

  /// Registers a query on this shard's engine. Must precede Start().
  StatusOr<size_t> AddQuery(Pattern pattern, Timestamp window);

  /// Installs the worker-side event sink. Must precede Start().
  Status SetEventSink(std::unique_ptr<ShardEventSink> sink);

  ShardEventSink* event_sink() const { return sink_.get(); }

  /// Launches the worker thread. Returns FailedPrecondition if running.
  Status Start();

  /// Enqueues one event, blocking (spin + yield) while the queue is full.
  /// Producer thread only; requires a running worker — fails fast with
  /// FailedPrecondition when the shard is stopped or stopping, instead of
  /// spinning forever on a queue nobody drains.
  Status Push(Event event);

  /// Bulk enqueue: moves `count` events out of `events` into the queue,
  /// blocking while it is full. Same preconditions as Push; one release
  /// store per queue burst instead of one per event. When `accepted` is
  /// non-null it receives the number of events actually enqueued (== count
  /// on success, possibly fewer when failing fast on a stop).
  Status PushN(Event* events, size_t count, size_t* accepted = nullptr);

  /// Blocks until every event pushed so far has been processed. The worker
  /// stays alive; more events may be pushed after.
  Status Drain();

  /// Drains, stops, and joins the worker. Idempotent.
  Status Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }

  /// The shard-local engine. Read-only access for the orchestrator; only
  /// valid when the shard is stopped or drained (see threading contract).
  const StreamingCepEngine& engine() const { return engine_; }

  /// Shard-local deterministic Rng (shard-local stochastic work).
  Rng& rng() { return rng_; }

  /// Safe from any thread at any time (all counters are atomics).
  ShardStats stats() const;

 private:
  void RunLoop();

  const size_t index_;
  SpscQueue<Event> queue_;
  StreamingCepEngine engine_;
  Rng rng_;
  std::unique_ptr<ShardEventSink> sink_;
  std::thread worker_;
  // Written only by Start/Stop; atomic so Drain/stats from other threads
  // read it race-free.
  std::atomic<bool> running_{false};

  // Producer-side counters. Written by the producer thread only (relaxed),
  // but read from arbitrary threads by Drain()/stats(), hence atomic.
  std::atomic<uint64_t> pushed_{0};
  std::atomic<uint64_t> backpressure_waits_{0};

  // Worker → producer publication point: incremented (release) after the
  // engine has absorbed a batch; Drain spins on it (acquire).
  std::atomic<uint64_t> processed_{0};
  // Worker-side detection counter (fed by the engine callback) so stats()
  // never has to touch the non-atomic engine internals.
  std::atomic<uint64_t> detections_{0};
  std::atomic<bool> stop_requested_{false};
};

}  // namespace pldp

#endif  // PLDP_RUNTIME_SHARD_H_
