// Copyright 2026 The PLDP Authors.
//
// One worker shard of the parallel streaming runtime.
//
// A shard owns a worker thread, a bounded SPSC queue feeding it, a private
// `StreamingCepEngine` (never touched by any other thread while running),
// and a deterministic per-shard `Rng` reserved for shard-local stochastic
// work (e.g. PLDP perturbation moved onto the shard in a later PR).
//
// Threading contract:
//   - Exactly one thread (the router / ParallelStreamingEngine caller) may
//     call Push / Drain / Stop; the worker thread is the only consumer.
//   - AddQuery must happen before Start.
//   - engine() and stats() are safe after Drain() or Stop() returned: the
//     worker publishes each processed event with a release store that
//     Drain observes with an acquire load, which orders all engine mutations
//     before the caller's reads.

#ifndef PLDP_RUNTIME_SHARD_H_
#define PLDP_RUNTIME_SHARD_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "cep/streaming_engine.h"
#include "common/random.h"
#include "common/status.h"
#include "event/event.h"
#include "runtime/spsc_queue.h"

namespace pldp {

/// Counters one shard exposes to the orchestrator.
struct ShardStats {
  size_t shard_index = 0;
  /// Events delivered to this shard's engine.
  size_t events_processed = 0;
  /// Detections across this shard's queries.
  size_t detections = 0;
  /// Times the producer found the queue full and had to wait — a direct
  /// measure of backpressure on this shard.
  size_t backpressure_waits = 0;
};

/// Worker thread + queue + per-shard engine.
class Shard {
 public:
  /// `queue_capacity` is rounded up to a power of two. `seed` derives the
  /// per-shard Rng (deterministic per shard across runs).
  Shard(size_t index, size_t queue_capacity, uint64_t seed);
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  size_t index() const { return index_; }

  /// Registers a query on this shard's engine. Must precede Start().
  StatusOr<size_t> AddQuery(Pattern pattern, Timestamp window);

  /// Launches the worker thread. Returns FailedPrecondition if running.
  Status Start();

  /// Enqueues one event, blocking (spin + yield) while the queue is full.
  /// Producer thread only; requires a running worker (else the wait could
  /// never end — returns FailedPrecondition).
  Status Push(Event event);

  /// Blocks until every pushed event has been processed. Producer thread
  /// only. The worker stays alive; more events may be pushed after.
  Status Drain();

  /// Drains, stops, and joins the worker. Idempotent.
  Status Stop();

  bool running() const { return running_; }

  /// The shard-local engine. Read-only access for the orchestrator; only
  /// valid when the shard is stopped or drained (see threading contract).
  const StreamingCepEngine& engine() const { return engine_; }

  /// Shard-local deterministic Rng (future perturbation hooks).
  Rng& rng() { return rng_; }

  ShardStats stats() const;

 private:
  void RunLoop();

  const size_t index_;
  SpscQueue<Event> queue_;
  StreamingCepEngine engine_;
  Rng rng_;
  std::thread worker_;
  bool running_ = false;

  // Producer-side counters (written by the producer thread only).
  uint64_t pushed_ = 0;
  uint64_t backpressure_waits_ = 0;

  // Worker → producer publication point: incremented (release) after the
  // engine has absorbed an event; Drain spins on it (acquire).
  std::atomic<uint64_t> processed_{0};
  std::atomic<bool> stop_requested_{false};
};

}  // namespace pldp

#endif  // PLDP_RUNTIME_SHARD_H_
