// Copyright 2026 The PLDP Authors.
//
// The stall-floor handshake of the MPSC ingest front-end, extracted into
// its own protocol object so the Dekker argument below is stated — and
// machine-checked — in one place instead of being smeared across
// ParallelStreamingEngine and IngestProducer.
//
// Problem (PR 9's idle-peer deadlock): shard lane merges are gated on
// every producer's lane floor. A producer P1 blocked on a full lane
// cannot run the drain barrier that would normally refresh a quiescent
// peer P0's stale floor — so the merge stays gated on P0, the lane stays
// full, and P1 spins forever. The fix lets the *stalled* producer lift
// quiescent peers' floors to the ingest frontier on their behalf, which
// is only sound if a peer proven "quiescent" can never again stamp a
// sequence number below the lifted floor.
//
// The quiescence proof is a classic Dekker / store-buffering pair:
//
//   producer entry (EnterCall):        stall side (ArmResyncFloor +
//     store in_call_[p] = true           QuiescenceFence):
//     seq_cst fence                      store resync_floor_ = bound
//     load resync_floor_                 seq_cst fence
//     (AcquireResyncFloor)               load in_call_[p]  (InCall)
//
// In the single total order of seq_cst fences one side's fence is first.
// If the producer's fence is first, the stall side's in_call_ load sees
// true and the peer is skipped — no floor is claimed for it. If the
// stall side's fence is first, the producer's resync-floor load is
// guaranteed to observe the armed bound, so its next stamp lands at or
// above it — the claimed floor holds. Either way a peer observed
// out-of-call cannot stamp below the bound armed before the proof.
//
// Both halves are machine-checked by tests/check/check_stall_floor_test.cc
// under the model checker (every interleaving within the preemption
// bound); the negative twin PLDP_CHECK_NEGATIVE_STALL (stall_floor.cc)
// deletes the stall-side fence and the checker reports the resulting
// stale-floor stamp — the bug class this object exists to exclude.
//
// Threading: EnterCall/ExitCall/AcquireResyncFloor are per-producer (one
// thread per index at a time, the IngestProducer role contract);
// ArmResyncFloor/QuiescenceFence/InCall may run on any thread (a stalled
// producer's push loop, a drain barrier).

#ifndef PLDP_RUNTIME_STALL_FLOOR_H_
#define PLDP_RUNTIME_STALL_FLOOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/atomic.h"

namespace pldp {

/// The resync floor + per-producer in-call flags, with the fence protocol
/// that makes "this peer is quiescent" a sound claim.
class StallFloorCoordinator {
 public:
  /// Constructed unconfigured (producer_count() == 0); Configure() is
  /// called once, before any producer runs.
  StallFloorCoordinator() = default;
  StallFloorCoordinator(const StallFloorCoordinator&) = delete;
  StallFloorCoordinator& operator=(const StallFloorCoordinator&) = delete;

  /// Sizes the flag array. Must precede all other calls; not thread-safe.
  void Configure(size_t producer_count);

  size_t producer_count() const { return producer_count_; }

  // ---- Producer half (one thread per index; the IngestProducer role) ----

  /// Marks producer `p` inside a stamping call and issues the producer
  /// half of the Dekker fence pair. Must precede AcquireResyncFloor.
  void EnterCall(size_t p);

  /// Clears the in-call mark after the producer's last push of the call.
  void ExitCall(size_t p);

  /// The armed resync floor: the producer must stamp at or above it.
  /// Sound only between EnterCall and ExitCall (the entry fence is what
  /// guarantees an armed bound cannot be missed).
  uint64_t AcquireResyncFloor() const;

  // ---- Stall/barrier half (any thread) ----

  /// Monotonically raises the resync floor to `bound` (release; a
  /// concurrent arm with a larger bound wins). Returns the floor after
  /// the raise (>= bound).
  uint64_t ArmResyncFloor(uint64_t bound);

  /// The stall half of the Dekker fence pair. Must run after
  /// ArmResyncFloor and before the InCall reads it licenses.
  void QuiescenceFence();

  /// Whether producer `p` is inside a stamping call. A `false` read is a
  /// quiescence proof ONLY when sequenced after ArmResyncFloor(bound) +
  /// QuiescenceFence(); it then licenses claiming `bound` as p's floor.
  /// The read is acquire: observing ExitCall's release store pulls the
  /// peer's completed pushes into the caller's past, so a floor claimed
  /// and release-published afterwards hands those pushes to the merge
  /// worker together with the floor (see InCall's definition).
  bool InCall(size_t p) const;

 private:
  size_t producer_count_ = 0;
  /// Barrier/stall-published resync floor: every producer bumps its next
  /// sequence number to at least this value before stamping again.
  Atomic<uint64_t> resync_floor_{0};
  /// Per-producer in-call flags (heap array: Atomic is not movable and
  /// the count is runtime-configured).
  std::unique_ptr<Atomic<bool>[]> in_call_;
};

}  // namespace pldp

#endif  // PLDP_RUNTIME_STALL_FLOOR_H_
