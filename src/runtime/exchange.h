// Copyright 2026 The PLDP Authors.
//
// The repartition/exchange fabric between the two shard stages.
//
// Stage-1 shards partition by data subject; a pattern that correlates
// events *across* subjects needs its events re-keyed by a correlation key
// (cep/correlation_key.h) and re-partitioned so all participants of one
// potential match meet on one stage-2 shard. The fabric is the classic
// dataflow exchange: an N1×N2 matrix of the runtime's bounded SPSC queues,
// where lane (p, c) is written only by stage-1 worker p and read only by
// stage-2 worker c — every lane keeps the proven single-producer /
// single-consumer discipline, and the matrix as a whole is the
// multi-producer ingest primitive the stage-2 side needs.
//
//   stage-1 shard p ──ExchangeEmitter── lane(p,0) ──► merge shard 0
//                  │                    lane(p,1) ──► merge shard 1
//                  │                       ...
//                  └─ BeginTrigger(seq) stamps every emission with an
//                     ExchangeKey; Broadcast(bound) sends watermarks.
//
// Ordering is restored downstream by merging on `ExchangeKey`, a global
// sequence stamp: (primary, sub) where `primary` is the ingest-order
// sequence number of the event whose processing caused the emission and
// `sub` counts emissions within that trigger. Each lane carries strictly
// increasing keys, so a stage-2 k-way merge by key reproduces exactly the
// order a sequential engine would have seen — detection equivalence holds
// bit-for-bit, not just as a multiset.
//
// Watermarks solve the empty-lane problem: a merge cannot release an event
// until every other lane is known to be past its key. A producer therefore
// broadcasts `watermark(b)` ("every future item on this lane has key >=
// (b, 0)") when idle and at drain barriers; `kExchangeSeqEnd` is the
// terminal watermark closing a lane at end of stream.
//
// Flow control: each lane carries a credit counter initialized to the
// consumer's reorder-buffer capacity. An Emit consumes one credit; the
// merge returns it when the event is released to the engine. Events
// in flight on a lane (queue + reorder buffer) therefore never exceed
// the credit budget, which caps the reorder buffer — a stalled merge
// shard backpressures its producers (and transitively the ingest
// thread) instead of buffering without bound. Watermarks are credit-free:
// they carry no payload and the merge consumes them immediately, so flow
// control can never silence the progress protocol. A credit-blocked
// producer broadcasts its exact frontier before spinning, which lets the
// merge release everything below it and return credits — the liveness
// argument is spelled out in docs/ARCHITECTURE.md ("Credit-based flow
// control").
//
// The credit protocol (consume on Emit, return on release, buffer never
// exceeding the budget) is machine-checked by
// tests/check/check_credits_test.cc; its negative twin
// (PLDP_CHECK_NEGATIVE_CREDITS in merge_shard.cc, which returns the
// credit at receipt instead of at release) trips the reorder buffer's
// capacity assert under the model checker.

#ifndef PLDP_RUNTIME_EXCHANGE_H_
#define PLDP_RUNTIME_EXCHANGE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/atomic.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "event/event.h"
#include "obs/instruments.h"
#include "runtime/router.h"
#include "runtime/spsc_queue.h"

namespace pldp {

/// Terminal watermark bound: no item ever carries a primary this large, so
/// a lane whose bound reached it is closed forever.
inline constexpr uint64_t kExchangeSeqEnd = ~uint64_t{0};

/// Global merge stamp: lexicographic (primary, sub). `primary` is the
/// ingest sequence number of the triggering event; `sub` disambiguates
/// multiple emissions of one trigger (and, at finalize time, one producer
/// from another — see ExchangeEmitter::BeginTrigger's sub_base overload).
struct ExchangeKey {
  uint64_t primary = 0;
  uint64_t sub = 0;

  bool operator<(const ExchangeKey& o) const {
    return primary != o.primary ? primary < o.primary : sub < o.sub;
  }
  bool operator<=(const ExchangeKey& o) const { return !(o < *this); }
  bool operator==(const ExchangeKey& o) const {
    return primary == o.primary && sub == o.sub;
  }
};

/// One slot of an exchange lane: a keyed event, or a watermark whose key
/// lower-bounds every later item on the lane.
struct ExchangeItem {
  ExchangeKey key;
  bool watermark = false;
  Event event;
};

/// Default per-lane credit budget (== the consumer's per-lane reorder
/// capacity) when the caller does not size it explicitly.
inline constexpr size_t kDefaultExchangeReorderCapacity = 1024;

/// One SPSC lane of the matrix, plus its flow-control credit counter.
struct ExchangeLane {
  ExchangeLane(size_t capacity, size_t credit_budget)
      : queue(capacity),
        initial_credits(credit_budget),
        credits(credit_budget) {}
  SpscQueue<ExchangeItem> queue;
  /// The lane's credit budget — also the hard capacity of the consumer's
  /// per-lane reorder buffer (see MergeShard). Fixed at construction.
  const size_t initial_credits;
  /// Remaining credits. Decremented by the producer (one per Emit),
  /// incremented by the consumer (one per event released to its engine).
  /// Watermarks bypass it entirely.
  Atomic<uint64_t> credits;
};

/// The N1×N2 lane matrix. Constructed before the shards on either side and
/// destroyed after them (it owns the queues both sides touch).
class ExchangeFabric {
 public:
  /// `producers`/`consumers` must be >= 1; `lane_capacity` bounds each lane
  /// like any runtime queue (rounded up to a power of two, clamped).
  /// `reorder_capacity` is each lane's credit budget == the hard capacity
  /// of the consumer-side reorder buffer fed by that lane (0 = the
  /// default, kDefaultExchangeReorderCapacity).
  ExchangeFabric(size_t producers, size_t consumers, size_t lane_capacity,
                 size_t reorder_capacity = 0);

  size_t producer_count() const { return producers_; }
  size_t consumer_count() const { return consumers_; }

  ExchangeLane& lane(size_t producer, size_t consumer) {
    return *lanes_[producer * consumers_ + consumer];
  }

  /// All lanes written by one producer, indexed by consumer.
  std::vector<ExchangeLane*> Row(size_t producer);
  /// All lanes read by one consumer, indexed by producer.
  std::vector<ExchangeLane*> Column(size_t consumer);

  /// Emergency brake: makes every blocked or future Emit fail fast instead
  /// of spinning on a lane nobody will ever drain (torn-down consumers).
  void Abort() {
    // order: release so whatever state motivated the abort is visible to
    // an emitter that observes it and bails out.
    abort_.store(true, std::memory_order_release);
  }
  bool aborted() const {
    // order: acquire pairs with Abort's release store.
    return abort_.load(std::memory_order_acquire);
  }

 private:
  size_t producers_;
  size_t consumers_;
  std::vector<std::unique_ptr<ExchangeLane>> lanes_;
  Atomic<bool> abort_{false};
};

/// Counters one emitter exposes (readable from any thread).
struct ExchangeEmitterStats {
  /// Events emitted into the fabric.
  size_t forwarded = 0;
  /// Watermark broadcasts (each reaches every lane of the row).
  size_t watermarks = 0;
  /// Times a full lane made the producer wait.
  size_t backpressure_waits = 0;
  /// Times an exhausted credit budget made the producer wait for the
  /// consumer to release buffered events (one per wait episode).
  size_t credit_exhausted_waits = 0;
};

/// The stage-1 side of the fabric: owned by one shard, driven only by that
/// shard's worker thread (single producer per lane). Routes each emitted
/// event to its consumer lane by correlation key and stamps it with the
/// current trigger's ExchangeKey.
class ExchangeEmitter {
 public:
  /// `row` is the producer's lane row (one lane per consumer); `key_fn`
  /// extracts the correlation key (nullptr = subject key, see EventRouter).
  ExchangeEmitter(std::vector<ExchangeLane*> row, ShardKeyFn key_fn,
                  ExchangeFabric* fabric);

  ExchangeEmitter(const ExchangeEmitter&) = delete;
  ExchangeEmitter& operator=(const ExchangeEmitter&) = delete;

  size_t consumer_count() const { return row_.size(); }

  /// Opens the emission scope of one trigger: subsequent Emit calls stamp
  /// (primary, sub_base + n) for n = 0, 1, ... Keys must be opened in
  /// strictly increasing order per emitter; the worker opens one scope per
  /// processed event (primary = the event's ingest sequence number).
  PLDP_HOT void BeginTrigger(uint64_t primary, uint64_t sub_base = 0) {
    driver_role_.Assert();
    trigger_ = primary;
    sub_next_ = sub_base;
  }

  /// Routes `event` to its consumer lane, blocking (with backoff) while
  /// the lane is full or its credit budget is exhausted (i.e. the
  /// consumer's reorder buffer holds the whole budget). Fails fast when
  /// the fabric was aborted.
  PLDP_HOT Status Emit(const Event& event);

  /// Sends `watermark(bound)` — every future item on this row has key >=
  /// (bound, 0) — to all lanes. Monotone: bounds at or below the last
  /// broadcast are skipped. Watermarks consume no credits; blocking/abort
  /// behavior on a full queue is the same as Emit's.
  Status Broadcast(uint64_t bound);

  ExchangeEmitterStats stats() const;

  /// Binds telemetry instruments. Must precede the owning shard's Start()
  /// (the emitter is driven by that shard's worker).
  void SetInstruments(const obs::ExchangeInstruments& instruments) {
    obs_ = instruments;
  }

  /// Instantaneous sum of this row's lane occupancies — safe from any
  /// thread (SPSC indices are atomics); the lane-depth gauge source.
  size_t RowDepth() const {
    size_t depth = 0;
    for (const ExchangeLane* lane : row_) depth += lane->queue.ApproxSize();
    return depth;
  }

 private:
  PLDP_HOT Status PushToLane(size_t consumer, ExchangeItem item)
      PLDP_REQUIRES(driver_role_);

  /// Full-key watermark: every future item on this row has key >= `bound`.
  /// Broadcast(b) is BroadcastKey({b, 0}); the credit slow path uses the
  /// exact frontier (trigger_, sub_next_) so consumers can release
  /// everything strictly below the item the producer is blocked on.
  Status BroadcastKey(ExchangeKey bound) PLDP_REQUIRES(driver_role_);

  /// Credit-exhaustion wait: counts the episode, publishes the frontier
  /// watermark (without it a cycle of credit-blocked producers could
  /// deadlock the merge), then spins until the consumer returns a credit
  /// or the fabric aborts.
  Status AcquireCreditSlow(ExchangeLane& lane) PLDP_REQUIRES(driver_role_);

  std::vector<ExchangeLane*> row_;
  EventRouter router_;
  ExchangeFabric* fabric_;

  /// Single-driver contract: BeginTrigger/Emit/Broadcast are driven by one
  /// thread at a time — the owning shard's worker while it runs, the
  /// orchestrator absorbing leftovers after the join. Asserted (not
  /// acquired) at each entry point so the capability documents the caller
  /// contract without a handoff protocol of its own.
  ThreadRole driver_role_;

  // Worker-local emission state.
  uint64_t trigger_ PLDP_GUARDED_BY(driver_role_) = 0;
  uint64_t sub_next_ PLDP_GUARDED_BY(driver_role_) = 0;
  ExchangeKey last_broadcast_ PLDP_GUARDED_BY(driver_role_) = {0, 0};
  bool broadcast_any_ PLDP_GUARDED_BY(driver_role_) = false;

  // Stats written by the worker (relaxed), read from any thread.
  Atomic<uint64_t> forwarded_{0};
  Atomic<uint64_t> watermarks_{0};
  Atomic<uint64_t> backpressure_waits_{0};
  Atomic<uint64_t> credit_exhausted_waits_{0};

  // Telemetry bundle (null fields = un-instrumented), fixed before Start.
  obs::ExchangeInstruments obs_;
};

}  // namespace pldp

#endif  // PLDP_RUNTIME_EXCHANGE_H_
