// Copyright 2026 The PLDP Authors.

#include "stream/stream_io.h"

#include "common/csv.h"
#include "common/strings.h"
#include "event/symbol_table.h"

namespace pldp {

std::string EncodeValueTagged(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kBool:
      return std::string("b:") + (v.AsBool().value() ? "true" : "false");
    case ValueKind::kInt:
      return "i:" + std::to_string(v.AsInt().value());
    case ValueKind::kDouble:
      return "d:" + StrFormat("%.17g", v.AsDouble().value());
    case ValueKind::kString:
    case ValueKind::kSymbol:
      // Symbols serialize as their text; decoding yields an owned string.
      // The round trip normalizes the kind but not the content — Value's
      // cross-kind text equality keeps the stream semantically identical.
      return "s:" + v.AsString().value();
  }
  return "i:0";
}

StatusOr<Value> DecodeValueTagged(const std::string& s, bool intern_strings) {
  if (s.size() < 2 || s[1] != ':') {
    return Status::InvalidArgument("malformed tagged value: '" + s + "'");
  }
  std::string payload = s.substr(2);
  switch (s[0]) {
    case 'b':
      if (payload == "true") return Value(true);
      if (payload == "false") return Value(false);
      return Status::InvalidArgument("malformed bool: '" + payload + "'");
    case 'i': {
      PLDP_ASSIGN_OR_RETURN(int64_t i, ParseInt64(payload));
      return Value(i);
    }
    case 'd': {
      PLDP_ASSIGN_OR_RETURN(double d, ParseDouble(payload));
      return Value(d);
    }
    case 's':
      if (intern_strings) {
        // TryIntern, not Value::Sym: exhausting the SymbolNames() budget
        // must fail the read loudly — the silent fallback to an owned
        // string would quietly reintroduce per-copy allocations the
        // caller opted out of (see StreamCsvOptions::intern_strings).
        PLDP_ASSIGN_OR_RETURN(SymbolId id, SymbolNames().TryIntern(payload));
        return Value(Symbol(id));
      }
      return Value(std::move(payload));
    default:
      return Status::InvalidArgument("unknown value tag: '" + s + "'");
  }
}

Status WriteStreamCsv(const std::string& path, const EventStream& stream,
                      const EventTypeRegistry& registry) {
  CsvWriter writer(path);
  PLDP_RETURN_IF_ERROR(writer.status());
  PLDP_RETURN_IF_ERROR(writer.WriteRow({"timestamp", "stream", "type"}));
  for (const Event& e : stream) {
    PLDP_ASSIGN_OR_RETURN(std::string type_name, registry.Name(e.type()));
    std::vector<std::string> row = {std::to_string(e.timestamp()),
                                    std::to_string(e.stream()),
                                    std::move(type_name)};
    for (size_t i = 0; i < e.attribute_count(); ++i) {
      row.push_back(std::string(e.attribute_name(i)) + "=" +
                    EncodeValueTagged(e.attribute(i).value));
    }
    PLDP_RETURN_IF_ERROR(writer.WriteRow(row));
  }
  return writer.Close();
}

StatusOr<EventStream> ReadStreamCsv(const std::string& path,
                                    EventTypeRegistry* registry,
                                    const StreamCsvOptions& options) {
  if (registry == nullptr) {
    return Status::InvalidArgument("registry must not be null");
  }
  PLDP_ASSIGN_OR_RETURN(auto rows, ReadCsvFile(path, /*skip_header=*/true));
  EventStream stream;
  stream.Reserve(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() < 3) {
      return Status::InvalidArgument(
          StrFormat("row %zu: expected >=3 fields, got %zu", r, row.size()));
    }
    PLDP_ASSIGN_OR_RETURN(int64_t ts, ParseInt64(row[0]));
    PLDP_ASSIGN_OR_RETURN(int64_t sid, ParseInt64(row[1]));
    if (sid < 0 || sid > static_cast<int64_t>(UINT32_MAX)) {
      return Status::OutOfRange(StrFormat("row %zu: bad stream id", r));
    }
    Event e(registry->Intern(row[2]), ts, static_cast<StreamId>(sid));
    for (size_t f = 3; f < row.size(); ++f) {
      size_t eq = row[f].find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument(
            StrFormat("row %zu: attribute without '=': '%s'", r,
                      row[f].c_str()));
      }
      PLDP_ASSIGN_OR_RETURN(
          Value v,
          DecodeValueTagged(row[f].substr(eq + 1), options.intern_strings));
      e.SetAttribute(row[f].substr(0, eq), std::move(v));
    }
    PLDP_RETURN_IF_ERROR(stream.Append(std::move(e)));
  }
  return stream;
}

}  // namespace pldp
