// Copyright 2026 The PLDP Authors.
//
// Online replay of finite streams.
//
// The CEP engine consumes events one at a time, as they would arrive from
// data subjects. `StreamReplayer` drives that: it feeds a finite
// `EventStream` to any number of subscribers in temporal order, optionally
// batched by timestamp (all events of one tick delivered before the tick
// boundary callback fires).

#ifndef PLDP_STREAM_REPLAY_H_
#define PLDP_STREAM_REPLAY_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "stream/event_stream.h"

namespace pldp {

// EventSpan moved to event/event.h (the predicate layer's batch evaluation
// consumes it too); re-exported here via the include chain.

/// Receives replayed events. Implementations: the CEP engine, stream-DP
/// baseline mechanisms, statistics collectors.
class StreamSubscriber {
 public:
  virtual ~StreamSubscriber() = default;

  /// Called once per event, in temporal order.
  virtual Status OnEvent(const Event& event) = 0;

  /// Bulk delivery: a contiguous run of events in temporal order,
  /// equivalent to calling OnEvent on each (the default does exactly that).
  /// Subscribers with a cheaper bulk path (ParallelStreamingEngine) override
  /// this to amortize per-event synchronization.
  virtual Status OnEventBatch(EventSpan events) {
    for (const Event& e : events) PLDP_RETURN_IF_ERROR(OnEvent(e));
    return Status::OK();
  }

  /// Called after all events with timestamp <= tick have been delivered and
  /// before any event with a later timestamp. Default: no-op.
  virtual Status OnTick(Timestamp /*tick*/) { return Status::OK(); }

  /// Called once after the final event. Default: no-op.
  virtual Status OnEnd() { return Status::OK(); }
};

/// How StreamReplayer::Run hands events to subscribers.
enum class ReplayMode {
  /// One OnEvent call per event (the historical default).
  kPerEvent,
  /// One OnEventBatch call per timestamp tick (all events of the tick in a
  /// single span). Semantically identical for subscribers that keep the
  /// default OnEventBatch; much cheaper for bulk-aware subscribers.
  kBatchPerTick,
};

/// Replays a finite stream into subscribers.
class StreamReplayer {
 public:
  StreamReplayer() = default;

  /// Registers a subscriber (not owned; must outlive Run()).
  void Subscribe(StreamSubscriber* subscriber);

  size_t subscriber_count() const { return subscribers_.size(); }

  /// Delivers every event of `stream` to every subscriber in order, firing
  /// OnTick at each timestamp change and OnEnd at the end. Returns the
  /// first non-OK status from any callback. `mode` selects per-event or
  /// per-tick-batch delivery (see ReplayMode).
  ///
  /// End-of-stream always propagates: even when an OnEvent/OnTick error
  /// aborts the replay early, every subscriber still receives OnEnd before
  /// Run returns — subscribers with worker threads (the sharded runtime)
  /// rely on that drain barrier to leave no events in flight. The replay
  /// error takes precedence over any OnEnd error in the returned status.
  Status Run(const EventStream& stream,
             ReplayMode mode = ReplayMode::kPerEvent);

 private:
  Status RunEvents(const EventStream& stream, ReplayMode mode);

  std::vector<StreamSubscriber*> subscribers_;
};

/// Adapts a lambda to StreamSubscriber for tests and examples.
class CallbackSubscriber : public StreamSubscriber {
 public:
  explicit CallbackSubscriber(std::function<Status(const Event&)> on_event)
      : on_event_(std::move(on_event)) {}

  Status OnEvent(const Event& event) override { return on_event_(event); }

 private:
  std::function<Status(const Event&)> on_event_;
};

}  // namespace pldp

#endif  // PLDP_STREAM_REPLAY_H_
