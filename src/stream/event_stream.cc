// Copyright 2026 The PLDP Authors.

#include "stream/event_stream.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace pldp {

StatusOr<EventStream> EventStream::FromEvents(std::vector<Event> events) {
  for (size_t i = 1; i < events.size(); ++i) {
    if (events[i].timestamp() < events[i - 1].timestamp()) {
      return Status::InvalidArgument(
          "events not in temporal order at index " + std::to_string(i));
    }
  }
  EventStream s;
  s.events_ = std::move(events);
  return s;
}

Status EventStream::Append(Event event) {
  if (!events_.empty() && event.timestamp() < events_.back().timestamp()) {
    return Status::InvalidArgument(
        "appending event at t=" + std::to_string(event.timestamp()) +
        " before stream tail t=" + std::to_string(events_.back().timestamp()));
  }
  events_.push_back(std::move(event));
  return Status::OK();
}

void EventStream::AppendUnchecked(Event event) {
  assert(events_.empty() || event.timestamp() >= events_.back().timestamp());
  events_.push_back(std::move(event));
}

bool EventStream::IsTemporallyOrdered() const {
  for (size_t i = 1; i < events_.size(); ++i) {
    if (events_[i].timestamp() < events_[i - 1].timestamp()) return false;
  }
  return true;
}

size_t EventStream::CountType(EventTypeId type) const {
  return static_cast<size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [type](const Event& e) { return e.type() == type; }));
}

std::vector<Event> EventStream::Slice(Timestamp from, Timestamp to) const {
  // Events are sorted by timestamp, so binary-search the boundaries.
  auto lo = std::lower_bound(
      events_.begin(), events_.end(), from,
      [](const Event& e, Timestamp t) { return e.timestamp() < t; });
  auto hi = std::lower_bound(
      lo, events_.end(), to,
      [](const Event& e, Timestamp t) { return e.timestamp() < t; });
  return std::vector<Event>(lo, hi);
}

EventStream MergeStreams(const std::vector<EventStream>& streams) {
  // K-way merge with a heap of (stream index, position) cursors.
  struct Cursor {
    size_t stream;
    size_t pos;
  };
  EventTemporalOrder order;
  auto greater = [&](const Cursor& a, const Cursor& b) {
    const Event& ea = streams[a.stream][a.pos];
    const Event& eb = streams[b.stream][b.pos];
    // priority_queue is a max-heap; invert for min-heap behaviour.
    return order(eb, ea);
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(greater)> heap(
      greater);

  size_t total = 0;
  for (size_t i = 0; i < streams.size(); ++i) {
    total += streams[i].size();
    if (!streams[i].empty()) heap.push({i, 0});
  }

  EventStream out;
  out.Reserve(total);
  while (!heap.empty()) {
    Cursor c = heap.top();
    heap.pop();
    out.AppendUnchecked(streams[c.stream][c.pos]);
    if (c.pos + 1 < streams[c.stream].size()) {
      heap.push({c.stream, c.pos + 1});
    }
  }
  return out;
}

}  // namespace pldp
