// Copyright 2026 The PLDP Authors.

#include "stream/replay.h"

namespace pldp {

void StreamReplayer::Subscribe(StreamSubscriber* subscriber) {
  if (subscriber != nullptr) subscribers_.push_back(subscriber);
}

Status StreamReplayer::Run(const EventStream& stream, ReplayMode mode) {
  Status result = RunEvents(stream, mode);
  // End-of-stream propagates even when the replay aborted on an error:
  // subscribers with in-flight state (the sharded engines queue events on
  // worker threads) need OnEnd's drain barrier before the caller reads
  // results or tears them down. The first error — replay or OnEnd — wins.
  for (StreamSubscriber* s : subscribers_) {
    const Status end = s->OnEnd();
    if (result.ok() && !end.ok()) result = end;
  }
  return result;
}

Status StreamReplayer::RunEvents(const EventStream& stream, ReplayMode mode) {
  if (mode == ReplayMode::kBatchPerTick) {
    // One span per tick: the events of a tick are contiguous because the
    // stream is temporally ordered.
    size_t i = 0;
    while (i < stream.size()) {
      size_t j = i + 1;
      while (j < stream.size() &&
             stream[j].timestamp() == stream[i].timestamp()) {
        ++j;
      }
      const EventSpan tick(&stream[i], j - i);
      for (StreamSubscriber* s : subscribers_) {
        PLDP_RETURN_IF_ERROR(s->OnEventBatch(tick));
      }
      for (StreamSubscriber* s : subscribers_) {
        PLDP_RETURN_IF_ERROR(s->OnTick(stream[i].timestamp()));
      }
      i = j;
    }
  } else {
    for (size_t i = 0; i < stream.size(); ++i) {
      const Event& e = stream[i];
      for (StreamSubscriber* s : subscribers_) {
        PLDP_RETURN_IF_ERROR(s->OnEvent(e));
      }
      bool tick_boundary =
          (i + 1 == stream.size()) ||
          (stream[i + 1].timestamp() != e.timestamp());
      if (tick_boundary) {
        for (StreamSubscriber* s : subscribers_) {
          PLDP_RETURN_IF_ERROR(s->OnTick(e.timestamp()));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace pldp
