// Copyright 2026 The PLDP Authors.
//
// CSV persistence of event streams.
//
// Format (one event per row):
//   timestamp,stream,type_name[,key=value ...]
// Attribute values are encoded with a one-letter kind tag so the reader can
// restore the exact Value kind: b:true, i:42, d:3.5, s:cell_7.

#ifndef PLDP_STREAM_STREAM_IO_H_
#define PLDP_STREAM_STREAM_IO_H_

#include <string>

#include "common/status.h"
#include "event/event_type.h"
#include "stream/event_stream.h"

namespace pldp {

/// Writes `stream` to `path`; type names come from `registry`.
Status WriteStreamCsv(const std::string& path, const EventStream& stream,
                      const EventTypeRegistry& registry);

/// Reads a stream from `path`, interning unseen type names into `registry`.
StatusOr<EventStream> ReadStreamCsv(const std::string& path,
                                    EventTypeRegistry* registry);

/// Encoding helpers (exposed for tests).
std::string EncodeValueTagged(const Value& v);
StatusOr<Value> DecodeValueTagged(const std::string& s);

}  // namespace pldp

#endif  // PLDP_STREAM_STREAM_IO_H_
