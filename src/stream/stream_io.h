// Copyright 2026 The PLDP Authors.
//
// CSV persistence of event streams.
//
// Format (one event per row):
//   timestamp,stream,type_name[,key=value ...]
// Attribute values are encoded with a one-letter kind tag so the reader can
// restore the exact Value kind: b:true, i:42, d:3.5, s:cell_7.

#ifndef PLDP_STREAM_STREAM_IO_H_
#define PLDP_STREAM_STREAM_IO_H_

#include <string>

#include "common/status.h"
#include "event/event_type.h"
#include "stream/event_stream.h"

namespace pldp {

/// Decode-side knobs of ReadStreamCsv.
struct StreamCsvOptions {
  /// When true, "s:" payloads decode to interned `Value::Sym` flyweights
  /// (event/symbol_table.h) instead of owned `std::string`s, so every
  /// later copy of the event through queues, lanes, and staging buffers is
  /// allocation-free. Semantically invisible: symbol and string values
  /// compare equal by content (tests/stream_io_intern_test.cc pins it).
  /// Off by default because wire data has unbounded payload cardinality —
  /// turn it on for streams whose string vocabulary is bounded, and set a
  /// SymbolNames() budget (InternTable::SetBudget) as the guard rail; an
  /// exhausted budget fails the read with ResourceExhausted rather than
  /// silently falling back to allocating copies.
  bool intern_strings = false;
};

/// Writes `stream` to `path`; type names come from `registry`.
Status WriteStreamCsv(const std::string& path, const EventStream& stream,
                      const EventTypeRegistry& registry);

/// Reads a stream from `path`, interning unseen type names into `registry`.
StatusOr<EventStream> ReadStreamCsv(const std::string& path,
                                    EventTypeRegistry* registry,
                                    const StreamCsvOptions& options = {});

/// Encoding helpers (exposed for tests). `intern_strings` as in
/// StreamCsvOptions.
std::string EncodeValueTagged(const Value& v);
StatusOr<Value> DecodeValueTagged(const std::string& s,
                                  bool intern_strings = false);

}  // namespace pldp

#endif  // PLDP_STREAM_STREAM_IO_H_
