// Copyright 2026 The PLDP Authors.

#include "stream/window.h"

#include <algorithm>

#include "common/strings.h"

namespace pldp {

bool Window::ContainsType(EventTypeId type) const {
  return std::any_of(events.begin(), events.end(),
                     [type](const Event& e) { return e.type() == type; });
}

size_t Window::CountType(EventTypeId type) const {
  return static_cast<size_t>(
      std::count_if(events.begin(), events.end(),
                    [type](const Event& e) { return e.type() == type; }));
}

TumblingWindower::TumblingWindower(Timestamp size, Timestamp origin)
    : size_(size), origin_(origin) {}

StatusOr<std::vector<Window>> TumblingWindower::Apply(
    const EventStream& stream) const {
  if (size_ <= 0) return Status::InvalidArgument("window size must be > 0");
  std::vector<Window> windows;
  if (stream.empty()) return windows;

  Timestamp first = stream.min_timestamp();
  Timestamp last = stream.max_timestamp();
  Timestamp start = AlignWindowStart(first, origin_, size_);

  size_t pos = 0;
  for (; start <= last; start += size_) {
    Window w;
    w.start = start;
    w.end = start + size_;
    while (pos < stream.size() && stream[pos].timestamp() < w.end) {
      // Events before w.start cannot occur: the stream is sorted and
      // previous windows consumed them.
      w.events.push_back(stream[pos]);
      ++pos;
    }
    windows.push_back(std::move(w));
  }
  return windows;
}

std::string TumblingWindower::ToString() const {
  return StrFormat("tumbling(size=%lld)", static_cast<long long>(size_));
}

SlidingWindower::SlidingWindower(Timestamp size, Timestamp slide,
                                 Timestamp origin)
    : size_(size), slide_(slide), origin_(origin) {}

StatusOr<std::vector<Window>> SlidingWindower::Apply(
    const EventStream& stream) const {
  if (size_ <= 0 || slide_ <= 0) {
    return Status::InvalidArgument("window size and slide must be > 0");
  }
  std::vector<Window> windows;
  if (stream.empty()) return windows;

  Timestamp first = stream.min_timestamp();
  Timestamp last = stream.max_timestamp();
  // Smallest aligned start whose window [start, start+size) still covers the
  // first event, i.e. the smallest origin_ + k*slide_ with start + size_ >
  // first. k = ceil((first - size_ + 1 - origin_) / slide_).
  Timestamp num = first - size_ + 1 - origin_;
  Timestamp k = num / slide_;
  if (origin_ + k * slide_ + size_ <= first) ++k;  // floor -> ceil fixup
  Timestamp start = origin_ + k * slide_;

  for (; start <= last; start += slide_) {
    Window w;
    w.start = start;
    w.end = start + size_;
    w.events = stream.Slice(w.start, w.end);
    windows.push_back(std::move(w));
  }
  return windows;
}

std::string SlidingWindower::ToString() const {
  return StrFormat("sliding(size=%lld,slide=%lld)",
                   static_cast<long long>(size_),
                   static_cast<long long>(slide_));
}

CountWindower::CountWindower(size_t count, bool drop_partial)
    : count_(count), drop_partial_(drop_partial) {}

StatusOr<std::vector<Window>> CountWindower::Apply(
    const EventStream& stream) const {
  if (count_ == 0) return Status::InvalidArgument("window count must be > 0");
  std::vector<Window> windows;
  for (size_t i = 0; i < stream.size(); i += count_) {
    size_t n = std::min(count_, stream.size() - i);
    if (n < count_ && drop_partial_) break;
    Window w;
    w.events.assign(stream.events().begin() + static_cast<ptrdiff_t>(i),
                    stream.events().begin() + static_cast<ptrdiff_t>(i + n));
    w.start = w.events.front().timestamp();
    w.end = w.events.back().timestamp() + 1;
    windows.push_back(std::move(w));
  }
  return windows;
}

std::string CountWindower::ToString() const {
  return StrFormat("count(n=%zu%s)", count_,
                   drop_partial_ ? ",drop_partial" : "");
}

}  // namespace pldp
