// Copyright 2026 The PLDP Authors.
//
// In-memory event streams.
//
// The paper treats streams as conceptually infinite; experiments replay
// finite prefixes. `EventStream` is that finite prefix: an append-only,
// temporally ordered sequence of events with cheap iteration. Online
// arrival is modeled by `StreamReplayer` (replay.h).

#ifndef PLDP_STREAM_EVENT_STREAM_H_
#define PLDP_STREAM_EVENT_STREAM_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "event/event.h"

namespace pldp {

/// Append-only, temporally ordered sequence of events.
class EventStream {
 public:
  EventStream() = default;

  /// Takes ownership of pre-built events. Returns InvalidArgument if the
  /// events are not in non-decreasing timestamp order.
  static StatusOr<EventStream> FromEvents(std::vector<Event> events);

  /// Appends an event. Returns InvalidArgument if `event` would violate
  /// non-decreasing timestamp order.
  Status Append(Event event);

  /// Appends without the order check (for generators that produce sorted
  /// data by construction; validated in debug builds).
  void AppendUnchecked(Event event);

  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  const Event& operator[](size_t i) const { return events_[i]; }
  const std::vector<Event>& events() const { return events_; }

  std::vector<Event>::const_iterator begin() const { return events_.begin(); }
  std::vector<Event>::const_iterator end() const { return events_.end(); }

  /// Timestamp of the first/last event; 0 when empty.
  Timestamp min_timestamp() const {
    return events_.empty() ? 0 : events_.front().timestamp();
  }
  Timestamp max_timestamp() const {
    return events_.empty() ? 0 : events_.back().timestamp();
  }

  /// True if every adjacent pair is in non-decreasing timestamp order.
  bool IsTemporallyOrdered() const;

  /// Counts events of the given type.
  size_t CountType(EventTypeId type) const;

  /// Events whose timestamp lies in [from, to).
  std::vector<Event> Slice(Timestamp from, Timestamp to) const;

  void Clear() { events_.clear(); }

  void Reserve(size_t n) { events_.reserve(n); }

 private:
  std::vector<Event> events_;
};

/// K-way merges event streams into one temporally ordered stream
/// (paper §III-A: multiple data subjects' event streams are merged; ties on
/// timestamp are broken deterministically by EventTemporalOrder).
EventStream MergeStreams(const std::vector<EventStream>& streams);

}  // namespace pldp

#endif  // PLDP_STREAM_EVENT_STREAM_H_
