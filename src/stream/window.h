// Copyright 2026 The PLDP Authors.
//
// Windowing over event streams.
//
// CEP queries are evaluated per window. PLDP supports the three classical
// policies:
//   - tumbling time windows (the synthetic dataset: one window per
//     Algorithm-2 list),
//   - sliding time windows (the taxi experiment),
//   - count windows (every N events).
//
// A `Window` holds copies of the member events plus its bounds; the
// `Windower` interface turns a finite stream into a window sequence.

#ifndef PLDP_STREAM_WINDOW_H_
#define PLDP_STREAM_WINDOW_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "stream/event_stream.h"

namespace pldp {

/// One evaluation window: the events with timestamps in [start, end).
struct Window {
  Timestamp start = 0;
  Timestamp end = 0;
  std::vector<Event> events;

  /// True if any member event has the given type.
  bool ContainsType(EventTypeId type) const;

  /// Number of member events with the given type.
  size_t CountType(EventTypeId type) const;
};

/// Largest window start aligned to `origin + k*size` at or before `ts`
/// (correct for negative timestamps). The single source of truth for
/// tumbling-window alignment: TumblingWindower::Apply and the streaming
/// per-subject windower (ppm/subject_publisher.h) must agree bit-for-bit
/// or their fixed-seed equivalence breaks. `size` must be > 0.
inline Timestamp AlignWindowStart(Timestamp ts, Timestamp origin,
                                  Timestamp size) {
  Timestamp k = (ts - origin) / size;
  if (origin + k * size > ts) --k;
  return origin + k * size;
}

/// Strategy interface: slices a stream into windows.
class Windower {
 public:
  virtual ~Windower() = default;

  /// Produces the full window sequence for `stream`. Windows are emitted in
  /// order of their start bound.
  virtual StatusOr<std::vector<Window>> Apply(
      const EventStream& stream) const = 0;

  /// Human-readable description for reports.
  virtual std::string ToString() const = 0;
};

/// Non-overlapping windows of fixed duration, aligned to `origin`.
/// Emits all windows between the stream's first and last event, including
/// empty ones (a window with no events is still a query evaluation point).
class TumblingWindower : public Windower {
 public:
  /// `size` must be > 0.
  explicit TumblingWindower(Timestamp size, Timestamp origin = 0);

  StatusOr<std::vector<Window>> Apply(const EventStream& stream) const override;
  std::string ToString() const override;

  Timestamp size() const { return size_; }

 private:
  Timestamp size_;
  Timestamp origin_;
};

/// Overlapping windows of fixed duration emitted every `slide` time units.
class SlidingWindower : public Windower {
 public:
  /// `size` and `slide` must be > 0; `slide` <= `size` gives overlap.
  SlidingWindower(Timestamp size, Timestamp slide, Timestamp origin = 0);

  StatusOr<std::vector<Window>> Apply(const EventStream& stream) const override;
  std::string ToString() const override;

  Timestamp size() const { return size_; }
  Timestamp slide() const { return slide_; }

 private:
  Timestamp size_;
  Timestamp slide_;
  Timestamp origin_;
};

/// Windows of exactly `count` consecutive events (the final partial window
/// is emitted too unless `drop_partial` is set).
class CountWindower : public Windower {
 public:
  explicit CountWindower(size_t count, bool drop_partial = false);

  StatusOr<std::vector<Window>> Apply(const EventStream& stream) const override;
  std::string ToString() const override;

 private:
  size_t count_;
  bool drop_partial_;
};

}  // namespace pldp

#endif  // PLDP_STREAM_WINDOW_H_
