// Copyright 2026 The PLDP Authors.
//
// The declarative pipeline API: one entry point that *plans* the topology.
//
// The engines underneath this header — StreamingCepEngine,
// ParallelStreamingEngine, PrivateCepEngine, ParallelPrivateEngine — grew
// up as separate facades with divergent registration, drain, and
// result-lookup contracts. `PipelineBuilder` replaces them at the API
// boundary: callers declare *what* they want (plain per-subject queries,
// cross-subject queries with per-query correlation keys, private target
// queries plus a privacy mechanism) and a shard budget; `Build()` runs a
// planner that analyzes each query's correlation needs
// (cep/correlation_key.h) and compiles the minimal topology:
//
//   only plain/cross queries, budget 1   -> one in-process sequential
//                                           engine (no threads, no lanes)
//   plain queries, budget N              -> sharded ParallelStreamingEngine
//   cross queries, budget N              -> + one exchange lane-group PER
//                                           DISTINCT correlation key (a
//                                           pipeline may correlate one
//                                           query by "zone" and another by
//                                           event type simultaneously)
//   private queries                      -> ParallelPrivateEngine lane
//                                           (per-subject windows, one
//                                           mechanism instance per subject;
//                                           private cross queries ride a
//                                           protected-view exchange)
//
// Registration returns *typed handles* (QueryHandle, CrossQueryHandle,
// PrivateQueryHandle, PrivateCrossQueryHandle). Handles are the only way
// to look results up, and results are only reachable through the
// `FinishedPipeline` view that `Finish()` returns — so the two classic
// footguns of the old facades are unrepresentable: reading results before
// the drain barrier (there is no accessor on `Pipeline`), and looking up
// an unknown query name/index (a handle exists only if registration
// succeeded, and a foreign or invalid handle is a hard error).
//
//   PipelineBuilder b;
//   auto came_home = b.AddQuery(Pattern::Create(...), /*window=*/10);
//   auto zone_alert = b.AddCrossQuery(Pattern::Create(...), 10,
//                                     CorrelationKey::ByAttribute("zone"));
//   auto pipeline_or = b.WithShards(4).Build();   // plans + starts
//   ...  // pipeline->OnEvent / OnEventBatch (or a StreamReplayer)
//   auto finished_or = pipeline->Finish();        // drain barrier, typed
//   auto hits = finished_or.value().Detections(came_home);

#ifndef PLDP_API_PIPELINE_BUILDER_H_
#define PLDP_API_PIPELINE_BUILDER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cep/correlation_key.h"
#include "cep/streaming_engine.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/parallel_private_engine.h"
#include "obs/health.h"
#include "obs/instruments.h"
#include "obs/metrics.h"
#include "ppm/mechanism.h"
#include "runtime/parallel_engine.h"
#include "stream/replay.h"

namespace pldp {

class PipelineBuilder;
class Pipeline;
class PipelineProducer;
class FinishedPipeline;

/// How a cross-subject query's correlation key is derived. `Auto()` lets
/// the planner run the query-needs analysis (SuggestCorrelationSpec) on
/// the query's own pattern; the named constructors pin a spec; `Custom`
/// supplies an arbitrary extractor under a caller-chosen identity (two
/// Custom keys with the same name share one exchange lane-group — the
/// caller guarantees same name implies same function).
class CorrelationKey {
 public:
  static CorrelationKey Auto();
  static CorrelationKey Global();
  static CorrelationKey ByEventType();
  static CorrelationKey ByAttribute(std::string attribute);
  static CorrelationKey Custom(std::string name, CorrelationKeyFn fn);

 private:
  friend class PipelineBuilder;

  enum class Mode { kAuto, kSpec, kCustom };

  Mode mode_ = Mode::kAuto;
  CorrelationKeySpec spec_ = CorrelationKeySpec::Global();
  std::string custom_name_;
  CorrelationKeyFn custom_fn_;
};

namespace internal {

/// Shared representation of the typed handles: which pipeline issued it
/// (a process-unique id) and the dense per-kind registration index. An
/// invalid handle (failed registration — the error surfaces at Build())
/// has index kInvalid.
struct QueryHandleRep {
  static constexpr size_t kInvalid = static_cast<size_t>(-1);
  uint64_t builder_uid = 0;
  size_t index = kInvalid;
  bool valid() const { return index != kInvalid; }
};

}  // namespace internal

/// Handle of a plain (subject-local) continuous query.
class QueryHandle {
 public:
  QueryHandle() = default;
  /// False when the registration that produced this handle failed (the
  /// error itself is reported by PipelineBuilder::Build()).
  bool valid() const { return rep_.valid(); }

  /// Registers a streaming detection callback for this query, called with
  /// the completion timestamp of every match the moment it fires. Must be
  /// called before Build() while the builder is alive (later calls are
  /// ignored). Sequential plans invoke the callback synchronously on the
  /// ingest thread; sharded plans invoke it on the owning worker thread,
  /// so the callback must be thread-safe. No-op on invalid handles.
  QueryHandle& OnDetection(std::function<void(Timestamp)> callback);

 private:
  friend class PipelineBuilder;
  friend class FinishedPipeline;
  internal::QueryHandleRep rep_;
  PipelineBuilder* builder_ = nullptr;
};

/// Handle of a cross-subject query (its own correlation key / lane-group).
class CrossQueryHandle {
 public:
  CrossQueryHandle() = default;
  bool valid() const { return rep_.valid(); }

  /// Streaming detection callback; see QueryHandle::OnDetection. Sharded
  /// plans invoke it on the query's merge-shard worker thread.
  CrossQueryHandle& OnDetection(std::function<void(Timestamp)> callback);

 private:
  friend class PipelineBuilder;
  friend class FinishedPipeline;
  internal::QueryHandleRep rep_;
  PipelineBuilder* builder_ = nullptr;
};

/// Handle of a private (per-subject, protected-view) target query.
class PrivateQueryHandle {
 public:
  PrivateQueryHandle() = default;
  bool valid() const { return rep_.valid(); }

 private:
  friend class PipelineBuilder;
  friend class FinishedPipeline;
  internal::QueryHandleRep rep_;
};

/// Handle of a private cross-subject query (matched over the exchanged
/// protected-view stream).
class PrivateCrossQueryHandle {
 public:
  PrivateCrossQueryHandle() = default;
  bool valid() const { return rep_.valid(); }

 private:
  friend class PipelineBuilder;
  friend class FinishedPipeline;
  internal::QueryHandleRep rep_;
};

/// What the planner decided, for inspection, tests, and logs.
struct PipelinePlan {
  /// Resolved stage-1 shard budget (after 0 -> hardware concurrency).
  size_t shard_count = 0;
  /// True when the plain/cross lane runs on one in-process sequential
  /// engine (budget 1: no worker threads, no exchange).
  bool sequential = false;
  size_t plain_queries = 0;

  /// One exchange lane-group per distinct correlation key.
  struct CrossGroupPlan {
    /// Human-readable key identity, e.g. "attr:zone", "event-type",
    /// "global", "custom:region".
    std::string key_id;
    size_t query_count = 0;
    size_t merge_shards = 0;
  };
  std::vector<CrossGroupPlan> cross_groups;

  bool has_private = false;
  size_t private_queries = 0;
  size_t private_cross_queries = 0;

  /// Concurrent ingest producer handles (the MPSC front-end). 1 = the
  /// classic single-driver ingest; > 1 forces the sharded plan (even at
  /// shard budget 1) and moves ingestion to Pipeline::producer handles.
  size_t ingest_producers = 1;
  /// True when worker threads are pinned round-robin to cores at start.
  bool pin_threads = false;

  /// Resolved ingest overload policy (kBlock unless WithOverloadPolicy
  /// chose a shedding policy; always kBlock for the sequential plan).
  OverloadPolicy overload_policy = OverloadPolicy::kBlock;
  /// Per-lane exchange credit budget (0 = engine default).
  size_t reorder_capacity = 0;

  /// Multi-line rendering of the plan.
  std::string Describe() const;
};

/// The immutable, drained view of a pipeline's results. Only
/// Pipeline::Finish() hands these out, so holding one *is* the proof that
/// the drain barrier ran — the typed replacement for the old "remember to
/// Drain() before DetectionsOf" contract. Borrows the Pipeline; must not
/// outlive it.
class FinishedPipeline {
 public:
  /// Detections (completion timestamps, sorted) of a plain query.
  /// InvalidArgument for invalid handles or handles of another pipeline.
  StatusOr<std::vector<Timestamp>> Detections(const QueryHandle& handle) const;

  /// Detections of a cross-subject query, merged across its lane-group.
  StatusOr<std::vector<Timestamp>> Detections(
      const CrossQueryHandle& handle) const;

  /// Detections of a private cross-subject query (window-start timestamps
  /// over the protected-view stream).
  StatusOr<std::vector<Timestamp>> Detections(
      const PrivateCrossQueryHandle& handle) const;

  /// Data subjects the private lane observed, ascending. Empty when the
  /// pipeline has no private queries.
  std::vector<StreamId> Subjects() const;

  /// Protected per-window answers of one private query for one subject.
  /// NotFound when the subject never emitted an event.
  StatusOr<AnswerSeries> AnswersOf(const PrivateQueryHandle& handle,
                                   StreamId subject) const;

  /// Protected windows published across all subjects (0 without privacy).
  size_t total_windows() const;

  size_t total_detections() const;
  size_t total_cross_detections() const;
  size_t events_processed() const;

 private:
  friend class Pipeline;
  explicit FinishedPipeline(const Pipeline* pipeline) : pipeline_(pipeline) {}
  const Pipeline* pipeline_;
};

/// A built, running pipeline. Obtained from PipelineBuilder::Build()
/// (already started); ingests via the StreamSubscriber interface, so a
/// StreamReplayer drives it directly. Results are reachable only through
/// Finish().
class Pipeline : public StreamSubscriber {
 public:
  ~Pipeline() override;

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  const PipelinePlan& plan() const { return plan_; }

  // Ingest (single producer thread; the driver-role contract below).

  /// Feeds one event to every lane. Thread contract: one thread drives all
  /// of OnEvent/OnEventBatch/OnEnd/Finish (a StreamReplayer satisfies
  /// this). Backpressure: under the default overload policy a full shard
  /// queue BLOCKS this call until the worker catches up — memory stays
  /// bounded, the caller slows to the pipeline's pace; under a shedding
  /// policy the call never blocks on a full queue and may drop instead
  /// (see PipelineBuilder::WithOverloadPolicy). Errors:
  /// FailedPrecondition after Finish()/OnEnd or when a worker stopped
  /// mid-push.
  Status OnEvent(const Event& event) override;

  /// Bulk ingest; semantically identical to calling OnEvent per element
  /// but several times cheaper on the ingest thread (per-shard staging,
  /// one queue release store per shard burst). Same thread, backpressure,
  /// and error contract as OnEvent.
  Status OnEventBatch(EventSpan events) override;

  /// End-of-stream from a StreamReplayer: runs the terminal finish (drain
  /// + finalize + exchange seal). Ingestion afterwards is refused; call
  /// Finish() to obtain the result view.
  Status OnEnd() override;

  /// Non-terminal flow-control barrier: waits until everything ingested so
  /// far has been processed by the plain/cross lane (workers stay alive,
  /// ingestion may continue). Deliberately NOT a result gate — results stay
  /// behind Finish(); this exists for warmup/backpressure checkpoints
  /// (e.g. the bench harness). The private lane only drains at Finish().
  Status Drain();

  /// MPSC ingest handles (WithIngestProducers). Empty unless the plan has
  /// ingest_producers > 1; then handle i may be driven by exactly one
  /// thread at a time (one thread may drive several handles), the
  /// engine-level OnEvent/OnEventBatch are refused, and the terminal
  /// Finish()/OnEnd must run only after every producer thread quiesced.
  size_t producer_count() const { return producers_.size(); }
  PipelineProducer* producer(size_t i) const { return producers_[i].get(); }

  /// Terminal drain barrier: drains every lane, finalizes the private
  /// publishers, seals the exchanges, and returns the typed result view.
  /// Idempotent — later calls return the same view. The view borrows this
  /// pipeline and is valid until the pipeline is destroyed.
  StatusOr<FinishedPipeline> Finish();

  /// Joins all workers. Idempotent; the destructor calls it.
  Status Stop();

  size_t events_processed() const;

  /// Events deliberately dropped by the overload policy across all lanes
  /// (always 0 under the default kBlock policy and in sequential plans).
  /// Safe from any thread, concurrent with ingestion.
  uint64_t events_shed() const;

  /// Admitted/shed roll-up for quality accounting. A
  /// RecallLowerBound() of 1.0 certifies the run was lossless — its
  /// detections are bit-identical to a kBlock run. Safe from any thread.
  SheddingStats shedding_stats() const;

  std::vector<ShardStats> ShardStatsSnapshot() const;
  std::vector<ShardStats> CrossShardStatsSnapshot() const;

  // --- Telemetry (PipelineBuilder::EnableMetrics) -------------------------

  /// Point-in-time view of every registered instrument: refreshes the
  /// snapshot-time gauges (queue depths, exchange occupancy, watermark
  /// lag, intern-table occupancy) and freezes the registry. Safe from any
  /// thread, concurrent with ingestion — this is what a scrape thread
  /// calls. Empty when metrics are disabled.
  obs::MetricsSnapshot MetricsSnapshot();

  /// Pipeline-wide health roll-up from live runtime state (works with or
  /// without metrics). Safe from any thread while the pipeline runs.
  obs::PipelineHealth Health(const obs::HealthThresholds& thresholds =
                                 obs::HealthThresholds()) const;

  /// The instrument registry; nullptr when metrics are disabled.
  obs::MetricsRegistry* metrics() const { return metrics_.get(); }

 private:
  friend class PipelineBuilder;
  friend class PipelineProducer;
  friend class FinishedPipeline;

  Pipeline() = default;
  Status FinishInternal();

  PipelinePlan plan_;
  uint64_t builder_uid_ = 0;

  /// Plain/cross lane: exactly one of these is set when the pipeline has
  /// plain or cross queries.
  std::unique_ptr<StreamingCepEngine> sequential_;
  std::unique_ptr<ParallelStreamingEngine> runtime_;

  /// Private lane.
  std::unique_ptr<ParallelPrivateEngine> private_engine_;

  /// MPSC ingest handles (populated by Build() iff ingest_producers > 1).
  std::vector<std::unique_ptr<PipelineProducer>> producers_;

  /// Handle-index translation: registration index -> engine query index.
  /// (Sequential mode interleaves plain and cross queries in one engine's
  /// index space; the maps keep handles stable either way.)
  std::vector<size_t> plain_map_;
  std::vector<size_t> cross_map_;
  std::vector<QueryId> private_map_;
  std::vector<size_t> private_cross_map_;

  /// Telemetry (set iff the builder enabled metrics). The registry owns
  /// every instrument; the raw pointers below are stable borrows. The
  /// sequential plan has no Shard worker, so the pipeline itself records
  /// the lane="plain",shard="0" instruments around the in-process engine —
  /// keeping the exposition schema identical across plans.
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  obs::Counter* ingest_counter_ = nullptr;
  obs::ShardInstruments seq_obs_;
  obs::Gauge* intern_attr_entries_ = nullptr;
  obs::Gauge* intern_attr_budget_ = nullptr;
  obs::Gauge* intern_symbol_entries_ = nullptr;
  obs::Gauge* intern_symbol_budget_ = nullptr;

  /// Single-driver contract: one thread drives ingest and the terminal
  /// finish (a StreamReplayer calls OnEvent*/OnEnd from its one thread).
  /// Scrape-side entry points (MetricsSnapshot, Health, events_processed)
  /// deliberately touch only atomics and engine-internal synchronization.
  ThreadRole driver_role_;
  bool finished_ PLDP_GUARDED_BY(driver_role_) = false;
  Status finish_status_ PLDP_GUARDED_BY(driver_role_) = Status::OK();
  /// Atomic so a scrape thread may read events_processed() mid-ingest.
  std::atomic<uint64_t> events_ingested_{0};
};

/// One MPSC ingest handle of a pipeline built WithIngestProducers(P > 1)
/// (see Pipeline::producer). Thin typed wrapper over the runtime's
/// IngestProducer that keeps the pipeline-level ingest accounting
/// (events_processed, pldp_pipeline_events_ingested_total) consistent
/// with the classic single-driver path.
class PipelineProducer {
 public:
  PipelineProducer(const PipelineProducer&) = delete;
  PipelineProducer& operator=(const PipelineProducer&) = delete;

  /// Stamps and routes one event / one batch; blocks on full lanes.
  /// Exactly one thread at a time per handle.
  Status OnEvent(const Event& event);
  Status OnEventBatch(EventSpan events);

  /// Publishes this producer's sequence floor to every shard. Call when
  /// the handle goes idle while other producers keep ingesting — a stale
  /// floor gates the shard merges until the next Finish() barrier.
  void PublishFloor();

  size_t index() const;

 private:
  friend class PipelineBuilder;
  PipelineProducer(Pipeline* pipeline, IngestProducer* producer)
      : pipeline_(pipeline), producer_(producer) {}

  Pipeline* const pipeline_;
  IngestProducer* const producer_;
};

/// Declarative builder: declare queries and budgets, then Build() to plan,
/// construct, and start the minimal topology. The builder is single-use
/// (Build() moves its state into the Pipeline).
class PipelineBuilder {
 public:
  PipelineBuilder();

  // --- Topology budgets --------------------------------------------------

  /// Stage-1 worker budget. 0 (default) = one per hardware thread; 1 plans
  /// the sequential in-process engine for the plain/cross lane.
  PipelineBuilder& WithShards(size_t shard_budget);
  /// Stage-2 merge shards per exchange lane-group. 0 = same as stage-1.
  PipelineBuilder& WithCrossShards(size_t merge_shards);
  /// Per-shard input-queue capacity (rounded up to a power of two). This
  /// is the primary memory/backpressure knob: a full queue blocks the
  /// ingest thread (default policy) or triggers the overload policy.
  PipelineBuilder& WithQueueCapacity(size_t capacity);
  /// Capacity of each exchange lane (rounded up to a power of two).
  PipelineBuilder& WithExchangeCapacity(size_t lane_capacity);
  /// Per-lane flow-control credit budget of the exchange: a hard bound on
  /// how many events one stage-1 producer may have waiting in one merge
  /// shard's reorder buffer. A merge shard's reorder memory is bounded by
  /// shards × this value; exhausted credit backpressures the producer
  /// (counted by pldp_exchange_credit_exhausted_waits_total). 0 (default)
  /// = kDefaultExchangeReorderCapacity.
  PipelineBuilder& WithReorderCapacity(size_t credits_per_lane);
  /// What ingestion does when a shard queue is full. kBlock (default)
  /// blocks the ingest thread until the worker catches up — lossless.
  /// kShedOldest / kShedBySubject bound ingest latency instead by
  /// dropping events once a per-shard pending buffer of
  /// `pending_capacity` events (0 = queue capacity) also fills; drops are
  /// counted in pldp_shed_events_total and Pipeline::events_shed().
  /// Shedding never reorders admitted events, so a run that sheds nothing
  /// is bit-identical to kBlock. Ignored by the sequential plan (no
  /// queues). See runtime/overload.h for the policy semantics.
  PipelineBuilder& WithOverloadPolicy(OverloadPolicy policy,
                                      size_t pending_capacity = 0);
  /// Base seed for every deterministic Rng in the pipeline (per-shard and
  /// per-subject mechanism Rngs derive from it).
  PipelineBuilder& WithSeed(uint64_t seed);
  /// Concurrent ingest producer handles (the MPSC front-end). 1 (default)
  /// keeps the classic single-driver StreamSubscriber ingest. With P > 1
  /// the plan is always sharded (even at shard budget 1), ingestion moves
  /// to the Pipeline::producer handles (the pipeline-level OnEvent /
  /// OnEventBatch are refused), and producer p stamps the arithmetic
  /// progression p, p+P, p+2P, ... — so a stream partitioned round-robin
  /// over the handles reproduces single-producer results bit-for-bit.
  /// Build() errors when combined with private queries or a shedding
  /// overload policy (both are single-producer components).
  PipelineBuilder& WithIngestProducers(size_t producers);
  /// Pins worker threads round-robin to cores at start (stage-1 shards
  /// first, then merge shards), capped to `max_cores` distinct cores
  /// (0 = all available). A placement hint: unsupported platforms and
  /// oversubscribed budgets degrade gracefully, never fail.
  PipelineBuilder& WithCoreAffinity(size_t max_cores = 0);

  // --- Telemetry ----------------------------------------------------------

  /// Builds the pipeline with a `obs::MetricsRegistry` and instruments
  /// every stage (shards, exchange lanes, merge shards, private
  /// publishers, budget ledger, intern tables). Hot-path cost is a few
  /// relaxed atomic ops per event — still allocation-free. Off by default.
  PipelineBuilder& EnableMetrics(bool enabled = true);

  // --- Privacy configuration (required iff private queries exist) --------

  /// Tumbling evaluation window applied to every subject's stream.
  PipelineBuilder& WithPrivacyWindow(Timestamp size, Timestamp origin = 0);
  /// Pattern-level privacy budget granted to the mechanism.
  PipelineBuilder& WithEpsilon(double epsilon);
  /// Mechanism by registry name ("uniform", "adaptive", ...).
  PipelineBuilder& WithMechanism(const std::string& name);
  /// Or an explicit factory (one fresh instance per data subject).
  PipelineBuilder& WithMechanismFactory(MechanismFactory factory);
  /// Consumer-side quality parameter α (adaptive mechanisms).
  PipelineBuilder& WithAlpha(double alpha);
  /// Historical windows granted for adaptive tuning.
  PipelineBuilder& WithHistory(std::vector<Window> history);

  // --- Vocabulary ---------------------------------------------------------

  /// Interns an event type name for the private lane's registries (the
  /// paper's setup phase: subjects and consumers agree on names). Plain
  /// queries may use the returned ids too.
  EventTypeId InternEventType(const std::string& name);

  // --- Query declarations -------------------------------------------------
  // Each returns its typed handle immediately; a failed registration
  // (malformed pattern, invalid key) yields an invalid handle and latches
  // the error, which Build() reports. Accepting StatusOr<Pattern> lets
  // callers pass Pattern::Create(...) results straight through.

  /// Plain continuous query, evaluated per data subject.
  QueryHandle AddQuery(StatusOr<Pattern> pattern, Timestamp window);

  /// Cross-subject continuous query with its own correlation key. Distinct
  /// keys get independent exchange lane-groups; Auto() derives the finest
  /// safe key from this query's pattern.
  CrossQueryHandle AddCrossQuery(StatusOr<Pattern> pattern, Timestamp window,
                                 CorrelationKey key = CorrelationKey::Auto());

  /// Declares a data subject's private pattern (what the mechanism
  /// protects). At least one is required for a private lane.
  PipelineBuilder& AddPrivatePattern(StatusOr<Pattern> pattern);

  /// Private target query: answered per subject and window from protected
  /// views only.
  PrivateQueryHandle AddPrivateQuery(const std::string& name,
                                     StatusOr<Pattern> pattern);

  /// Private cross-subject query, matched over the exchanged
  /// protected-view stream with all elements within `window`.
  PrivateCrossQueryHandle AddPrivateCrossQuery(const std::string& name,
                                               StatusOr<Pattern> pattern,
                                               Timestamp window);

  // --- Compilation --------------------------------------------------------

  /// Plans the minimal topology for the declared queries, constructs the
  /// engines, and starts the workers. Reports the first latched
  /// registration error instead, if any. Single-use.
  StatusOr<std::unique_ptr<Pipeline>> Build();

 private:
  friend class QueryHandle;
  friend class CrossQueryHandle;

  struct PlainDecl {
    Pattern pattern;
    Timestamp window = 0;
    std::function<void(Timestamp)> callback;
  };
  struct CrossDecl {
    Pattern pattern;
    Timestamp window = 0;
    CorrelationKey key;
    std::function<void(Timestamp)> callback;
  };
  struct PrivateDecl {
    std::string name;
    Pattern pattern;
  };
  struct PrivateCrossDecl {
    std::string name;
    Pattern pattern;
    Timestamp window = 0;
  };

  void LatchError(Status status);
  /// Resolves a CorrelationKey against `pattern` into (key_id, extractor).
  StatusOr<std::pair<std::string, CorrelationKeyFn>> ResolveKey(
      const CorrelationKey& key, const Pattern& pattern) const;

  /// Handle back-channels (QueryHandle::OnDetection). No-ops after Build().
  void SetPlainCallback(size_t index, std::function<void(Timestamp)> callback);
  void SetCrossCallback(size_t index, std::function<void(Timestamp)> callback);

  uint64_t uid_ = 0;
  Status error_ = Status::OK();
  bool built_ = false;
  bool metrics_enabled_ = false;

  size_t shard_budget_ = 0;
  size_t cross_shards_ = 0;
  size_t queue_capacity_ = 1024;
  size_t exchange_capacity_ = 1024;
  size_t reorder_capacity_ = 0;
  OverloadOptions overload_;
  uint64_t seed_ = 0x9111bea5ULL;
  size_t ingest_producers_ = 1;
  bool pin_threads_ = false;
  size_t affinity_cores_ = 0;

  Timestamp window_size_ = 0;
  Timestamp window_origin_ = 0;
  double epsilon_ = 0.0;
  double alpha_ = 0.5;
  MechanismFactory mechanism_factory_;
  std::vector<Window> history_;

  std::vector<std::string> event_type_names_;

  std::vector<PlainDecl> plain_;
  std::vector<CrossDecl> cross_;
  std::vector<Pattern> private_patterns_;
  std::vector<PrivateDecl> private_queries_;
  std::vector<PrivateCrossDecl> private_cross_;
};

}  // namespace pldp

#endif  // PLDP_API_PIPELINE_BUILDER_H_
